// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation. Each benchmark regenerates the corresponding artifact
// (the same code cmd/experiments runs) and reports headline metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. Per-experiment notes and paper-vs-measured
// values live in EXPERIMENTS.md.
package main

import (
	"io"
	"testing"

	"atomique/internal/exp"
	"atomique/internal/report"
)

// runExperiment drives one experiment per benchmark iteration, rendering its
// tables to io.Discard so table formatting is part of the measured work.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var tables []*report.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables = e.Run()
		for _, t := range tables {
			t.Render(io.Discard)
		}
	}
	b.StopTimer()
	rows := 0
	for _, t := range tables {
		rows += len(t.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkTab1(b *testing.B)  { runExperiment(b, "tab1") }
func BenchmarkTab2(b *testing.B)  { runExperiment(b, "tab2") }
func BenchmarkTab3(b *testing.B)  { runExperiment(b, "tab3") }
func BenchmarkFig12(b *testing.B) { runExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B) { runExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B) { runExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B) { runExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B) { runExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B) { runExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B) { runExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B) { runExperiment(b, "fig19") }
func BenchmarkFig20(b *testing.B) { runExperiment(b, "fig20") }
func BenchmarkFig21(b *testing.B) { runExperiment(b, "fig21") }
func BenchmarkFig22(b *testing.B) { runExperiment(b, "fig22") }
func BenchmarkFig23(b *testing.B) { runExperiment(b, "fig23") }
func BenchmarkFig24(b *testing.B) { runExperiment(b, "fig24") }
func BenchmarkFig25(b *testing.B) { runExperiment(b, "fig25") }

// BenchmarkAblation covers the design-choice sweeps DESIGN.md calls out
// (gamma decay, SABRE lookahead, reverse passes) beyond the paper's Fig 21.
func BenchmarkAblation(b *testing.B) { runExperiment(b, "ablation") }

// BenchmarkScaling measures compile time versus circuit size (the
// scalability claim behind Fig 14 / Table II).
func BenchmarkScaling(b *testing.B) { runExperiment(b, "scaling") }
