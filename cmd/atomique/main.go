// Command atomique compiles a benchmark circuit for a reconfigurable atom
// array and prints the compilation metrics: two-qubit gates, depth (movement
// stages), SWAP overhead, movement distance, cooling events, execution time,
// and the fidelity breakdown.
//
// Usage:
//
//	atomique -bench QAOA-regu5-40 [-slm 10] [-aods 2] [-aodsize 10]
//	         [-serial] [-dense] [-relax 1,2,3] [-schedule] [-seed 7]
//	atomique -list
package main

import (
	"flag"
	"fmt"
	"os"

	"atomique/internal/bench"
	"atomique/internal/core"
	"atomique/internal/fidelity"
	"atomique/internal/hardware"
	"atomique/internal/qasm"
	"atomique/internal/viz"
)

func main() {
	var (
		name     = flag.String("bench", "QAOA-regu5-40", "benchmark name (see -list)")
		qasmIn   = flag.String("qasm", "", "compile an OpenQASM 2.0 file instead of a benchmark")
		emit     = flag.String("emit", "", "write the selected benchmark as OpenQASM 2.0 to this file and exit ('-' for stdout)")
		list     = flag.Bool("list", false, "list available benchmarks and exit")
		slm      = flag.Int("slm", 10, "SLM array side length")
		aods     = flag.Int("aods", 2, "number of AOD arrays")
		aodSize  = flag.Int("aodsize", 10, "AOD array side length")
		seed     = flag.Int64("seed", 7, "compilation seed")
		serial   = flag.Bool("serial", false, "ablate: serial router (one gate per stage)")
		dense    = flag.Bool("dense", false, "ablate: round-robin array mapper")
		relax    = flag.String("relax", "", "comma-separated constraints to relax (1,2,3)")
		schedule = flag.Bool("schedule", false, "print the movement/gate schedule")
		vizFlag  = flag.Bool("viz", false, "render placement + stage diagrams")
		jsonOut  = flag.String("json", "", "export the schedule as JSON to this file ('-' for stdout)")
	)
	flag.Parse()

	if *list {
		for _, b := range bench.Table2Suite() {
			s := b.Circ.ComputeStats()
			fmt.Printf("%-20s %-8s %3d qubits  %5d 2Q  %5d 1Q\n",
				b.Name, b.Type, s.Qubits, s.Num2Q, s.Num1Q)
		}
		return
	}

	var circ *bench.Benchmark
	if *qasmIn != "" {
		f, err := os.Open(*qasmIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "atomique: %v\n", err)
			os.Exit(1)
		}
		parsed, err := qasm.Parse(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "atomique: %v\n", err)
			os.Exit(1)
		}
		circ = &bench.Benchmark{Name: *qasmIn, Type: "QASM", Circ: parsed}
	} else {
		b, ok := bench.ByName(*name)
		if !ok {
			fmt.Fprintf(os.Stderr, "atomique: unknown benchmark %q (try -list)\n", *name)
			os.Exit(1)
		}
		circ = &b
	}

	if *emit != "" {
		out := os.Stdout
		if *emit != "-" {
			f, err := os.Create(*emit)
			if err != nil {
				fmt.Fprintf(os.Stderr, "atomique: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := qasm.Write(out, circ.Circ); err != nil {
			fmt.Fprintf(os.Stderr, "atomique: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := hardware.BuildConfig(*slm, *aods, *aodSize, hardware.NeutralAtom())
	opts := core.Options{Seed: *seed, SerialRouter: *serial, DenseMapper: *dense}
	if err := opts.ApplyRelax(*relax); err != nil {
		fmt.Fprintf(os.Stderr, "atomique: bad -relax flag: %v\n", err)
		os.Exit(1)
	}

	res, err := core.Compile(cfg, circ.Circ, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "atomique: %v\n", err)
		os.Exit(1)
	}
	m := res.Metrics
	fmt.Printf("benchmark        %s (%d qubits, %d 2Q + %d 1Q gates)\n",
		circ.Name, circ.Circ.N, circ.Circ.Num2Q(), circ.Circ.Num1Q())
	fmt.Printf("machine          %dx%d SLM + %d x %dx%d AOD\n",
		*slm, *slm, *aods, *aodSize, *aodSize)
	fmt.Printf("2Q executed      %d (swaps inserted: %d, +%d CNOT)\n",
		m.N2Q, m.SwapCount, m.AddedCNOTs)
	fmt.Printf("depth (stages)   %d   max parallel gates: %d\n",
		m.Depth2Q, res.Schedule.MaxParallelism())
	fmt.Printf("movement         %.3f mm total, %d cooling events, %d overlap rejections\n",
		m.TotalMoveDist*1e3, m.CoolingEvents, m.Overlaps)
	fmt.Printf("execution time   %.4f s\n", m.ExecutionTime)
	fmt.Printf("compile time     %v\n", m.CompileTime)
	if len(m.Passes) > 0 {
		fmt.Printf("pipeline        ")
		for _, p := range m.Passes {
			fmt.Printf(" %s %.3fms", p.Name, p.Seconds*1e3)
		}
		fmt.Println()
	}
	fmt.Printf("fidelity         %.4f\n", m.FidelityTotal())
	labels := fidelity.Labels()
	for i, v := range m.Fidelity.NegLog() {
		fmt.Printf("  -log10 %-18s %.4g\n", labels[i], v)
	}

	if *schedule {
		fmt.Println()
		for i, st := range res.Schedule.Stages {
			fmt.Printf("stage %4d: %d 1Q, %d moves, %d 2Q gates\n",
				i, len(st.OneQ), len(st.Moves), len(st.Gates))
			for _, g := range st.Gates {
				fmt.Printf("  %s %s <-> %s\n", g.Op,
					res.SiteOf[g.SlotA], res.SiteOf[g.SlotB])
			}
		}
	}

	if *vizFlag {
		fmt.Println()
		viz.Summary(os.Stdout, cfg, res)
	}

	if *jsonOut != "" {
		out := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "atomique: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := core.ExportJSON(out, cfg, res); err != nil {
			fmt.Fprintf(os.Stderr, "atomique: %v\n", err)
			os.Exit(1)
		}
	}
}
