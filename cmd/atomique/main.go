// Command atomique compiles a benchmark circuit with any registered compiler
// backend and prints the compilation metrics: two-qubit gates, depth
// (movement stages), SWAP overhead, movement distance, cooling events,
// execution time, and the fidelity breakdown.
//
// Usage:
//
//	atomique -bench QAOA-regu5-40 [-backend atomique] [-slm 10] [-aods 2]
//	         [-aodsize 10] [-serial] [-dense] [-relax 1,2,3] [-schedule]
//	         [-seed 7] [-noisy] [-shots 5000] [-sample] [-shotoffset 0]
//	atomique -backend sabre -family triangular -bench QV-32
//	atomique -backend zoned -bench QV-32 [-zstorage 12] [-zsites 6] [-zgap 80]
//	atomique -list          # benchmarks
//	atomique -backends      # registered compiler backends
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"atomique/internal/bench"
	"atomique/internal/compiler"
	"atomique/internal/core"
	"atomique/internal/fidelity"
	"atomique/internal/hardware"
	"atomique/internal/obs"
	"atomique/internal/qasm"
	"atomique/internal/viz"

	_ "atomique/internal/compiler/backends" // register the built-in backends
)

func main() {
	var (
		name         = flag.String("bench", "QAOA-regu5-40", "benchmark name (see -list)")
		qasmIn       = flag.String("qasm", "", "compile an OpenQASM 2.0 file instead of a benchmark")
		emit         = flag.String("emit", "", "write the selected benchmark as OpenQASM 2.0 to this file and exit ('-' for stdout)")
		list         = flag.Bool("list", false, "list available benchmarks and exit")
		listBackends = flag.Bool("backends", false, "list registered compiler backends and exit")
		backendName  = flag.String("backend", "atomique", "compiler backend (see -backends)")
		family       = flag.String("family", "", "coupling family for fixed-topology backends (superconducting, rectangular, triangular, long-range)")
		slm          = flag.Int("slm", 10, "SLM array side length (FPQA backends)")
		aods         = flag.Int("aods", 2, "number of AOD arrays (FPQA backends)")
		aodSize      = flag.Int("aodsize", 10, "AOD array side length (FPQA backends)")
		zStorage     = flag.Int("zstorage", 0, "storage-zone side length (zoned backends; 0 = sized for the circuit)")
		zSites       = flag.Int("zsites", 0, "entangling-zone gate sites (zoned backends; 0 = default)")
		zGap         = flag.Float64("zgap", 0, "storage-entangling zone gap in um (zoned backends; 0 = default)")
		seed         = flag.Int64("seed", 7, "compilation seed")
		serial       = flag.Bool("serial", false, "ablate: serial router (one gate per stage)")
		dense        = flag.Bool("dense", false, "ablate: round-robin array mapper")
		relax        = flag.String("relax", "", "comma-separated constraints to relax (1,2,3)")
		exact        = flag.Bool("exact", false, "solver backends: exact (exponential) mode")
		budget       = flag.Float64("budget", 0, "solver backends: compile budget in seconds (0 = default)")
		noisy        = flag.Bool("noisy", false, "run Monte-Carlo trajectory noise estimation after compiling")
		shots        = flag.Int("shots", 0, "noisy-simulation trajectory count (implies -noisy; 0 with -noisy = 2000)")
		sample       = flag.Bool("sample", false, "sample measurement bitstrings instead of estimating fidelity (histogram over -shots, default 4096)")
		shotOffset   = flag.Int64("shotoffset", 0, "global index of the first sampled shot (-sample shard/resume support)")
		noiseSeed    = flag.Int64("noiseseed", 0, "noisy-simulation sampling seed")
		noiseScale   = flag.Float64("noisescale", 0, "multiply every noise-channel probability (0 = 1.0)")
		traceFlag    = flag.Bool("trace", false, "record a span trace of the compilation and print the tree")
		schedule     = flag.Bool("schedule", false, "print the movement/gate schedule")
		vizFlag      = flag.Bool("viz", false, "render placement + stage diagrams")
		jsonOut      = flag.String("json", "", "export the schedule as JSON to this file ('-' for stdout)")
	)
	flag.Parse()

	if *list {
		for _, b := range bench.Table2Suite() {
			s := b.Circ.ComputeStats()
			fmt.Printf("%-20s %-8s %3d qubits  %5d 2Q  %5d 1Q\n",
				b.Name, b.Type, s.Qubits, s.Num2Q, s.Num1Q)
		}
		return
	}
	if *listBackends {
		for _, b := range compiler.List() {
			caps := b.Capabilities()
			kinds := ""
			if caps.FPQA {
				kinds += " fpqa"
			}
			if caps.Coupling {
				kinds += " coupling"
			}
			fmt.Printf("%-10s%-10s %s\n", b.Name(), kinds, caps.Description)
		}
		return
	}

	backend, ok := compiler.Lookup(*backendName)
	if !ok {
		fmt.Fprintf(os.Stderr, "atomique: unknown backend %q (registered: %v)\n",
			*backendName, compiler.Names())
		os.Exit(1)
	}
	caps := backend.Capabilities()

	var circ *bench.Benchmark
	if *qasmIn != "" {
		f, err := os.Open(*qasmIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "atomique: %v\n", err)
			os.Exit(1)
		}
		parsed, err := qasm.Parse(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "atomique: %v\n", err)
			os.Exit(1)
		}
		circ = &bench.Benchmark{Name: *qasmIn, Type: "QASM", Circ: parsed}
	} else {
		b, ok := bench.ByName(*name)
		if !ok {
			fmt.Fprintf(os.Stderr, "atomique: unknown benchmark %q (try -list)\n", *name)
			os.Exit(1)
		}
		circ = &b
	}

	if *emit != "" {
		out := os.Stdout
		if *emit != "-" {
			f, err := os.Create(*emit)
			if err != nil {
				fmt.Fprintf(os.Stderr, "atomique: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := qasm.Write(out, circ.Circ); err != nil {
			fmt.Fprintf(os.Stderr, "atomique: %v\n", err)
			os.Exit(1)
		}
		return
	}

	// Device selection. Flags for the other target kind are rejected, not
	// silently ignored — matching the service's resolveTarget policy.
	// (Option flags like -serial/-relax are backend-independent knobs that
	// non-atomique backends legitimately ignore.) An FPQA backend with no
	// machine flags gets the auto target, i.e. its own canonical device
	// (atomique: the paper-default machine grown to fit; solverref: the
	// 16x16 OLSQ-DPQA arrays) — exactly like an unset -family resolves to a
	// coupling backend's canonical topology.
	machineFlagSet := false
	zoneFlagSet := false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "slm", "aods", "aodsize":
			machineFlagSet = true
		case "zstorage", "zsites", "zgap":
			zoneFlagSet = true
		}
	})
	if zoneFlagSet && !caps.Zoned {
		fmt.Fprintf(os.Stderr, "atomique: -zstorage/-zsites/-zgap apply only to zoned backends (%s is not one)\n", backend.Name())
		os.Exit(1)
	}
	var tgt compiler.Target
	var cfg hardware.Config
	var zones hardware.ZoneGeometry
	switch {
	case caps.Zoned:
		if *family != "" || machineFlagSet {
			fmt.Fprintf(os.Stderr, "atomique: %s compiles zoned machines; use -zstorage/-zsites/-zgap instead of -family or -slm/-aods/-aodsize\n", backend.Name())
			os.Exit(1)
		}
		zones = hardware.ZonesFor(circ.Circ.N)
		if zoneFlagSet {
			if *zStorage < 0 || *zSites < 0 || *zGap < 0 {
				fmt.Fprintln(os.Stderr, "atomique: -zstorage/-zsites/-zgap must be non-negative (0 = default)")
				os.Exit(1)
			}
			if *zStorage > 0 {
				zones.StorageRows, zones.StorageCols = *zStorage, *zStorage
			}
			if *zSites > 0 {
				zones.EntangleSites = *zSites
			}
			if *zGap > 0 {
				zones.ZoneGap = *zGap * 1e-6
			}
			tgt = compiler.Zoned(zones)
			if err := tgt.Validate(); err != nil {
				fmt.Fprintf(os.Stderr, "atomique: %v\n", err)
				os.Exit(1)
			}
		}
	case caps.FPQA:
		if *family != "" {
			fmt.Fprintf(os.Stderr, "atomique: -family applies only to fixed-topology backends (%s compiles FPQA machines)\n", backend.Name())
			os.Exit(1)
		}
		if machineFlagSet {
			cfg = hardware.BuildConfig(*slm, *aods, *aodSize, hardware.NeutralAtom())
			tgt = compiler.FPQA(cfg)
		} else {
			// cfg is still needed for -viz/-json rendering; for the auto
			// target the atomique backend compiles on exactly this machine.
			cfg = compiler.DefaultFPQAConfig(circ.Circ.N)
		}
	default:
		if machineFlagSet {
			fmt.Fprintf(os.Stderr, "atomique: -slm/-aods/-aodsize apply only to FPQA backends (%s compiles fixed topologies; use -family)\n", backend.Name())
			os.Exit(1)
		}
		if *family != "" {
			tgt = compiler.Coupling(*family, 0)
			if err := tgt.Validate(); err != nil {
				fmt.Fprintf(os.Stderr, "atomique: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if *budget < 0 {
		fmt.Fprintln(os.Stderr, "atomique: -budget must be non-negative seconds")
		os.Exit(1)
	}
	if *shots < 0 || *noiseScale < 0 {
		fmt.Fprintln(os.Stderr, "atomique: -shots and -noisescale must be non-negative")
		os.Exit(1)
	}
	noisyShots := *shots
	if noisyShots == 0 && *noisy {
		noisyShots = 2000
	}
	if noisyShots == 0 && *sample {
		noisyShots = 4096
	}
	if noisyShots == 0 && (*noiseSeed != 0 || *noiseScale != 0) {
		fmt.Fprintln(os.Stderr, "atomique: -noiseseed/-noisescale need -noisy, -sample, or -shots")
		os.Exit(1)
	}
	if *shotOffset != 0 && !*sample {
		fmt.Fprintln(os.Stderr, "atomique: -shotoffset needs -sample")
		os.Exit(1)
	}
	if *shotOffset < 0 {
		fmt.Fprintln(os.Stderr, "atomique: -shotoffset must be non-negative")
		os.Exit(1)
	}
	opts := compiler.Options{Seed: *seed, SerialRouter: *serial, DenseMapper: *dense,
		Exact: *exact, BudgetSeconds: *budget,
		NoisyShots: noisyShots, NoiseSeed: *noiseSeed, NoiseScale: *noiseScale,
		SampleBits: *sample, ShotOffset: *shotOffset}
	if err := opts.ApplyRelax(*relax); err != nil {
		fmt.Fprintf(os.Stderr, "atomique: bad -relax flag: %v\n", err)
		os.Exit(1)
	}

	// -trace threads a span through the same instrumentation the compile
	// service uses: the pipeline runner and trajectory engine attach their
	// spans to whatever the context carries.
	ctx := context.Background()
	var tr *obs.Trace
	if *traceFlag {
		tr = obs.NewTrace("", "compile")
		tr.Root.SetAttr("backend", backend.Name())
		tr.Root.SetAttr("benchmark", circ.Name)
		ctx = obs.ContextWithSpan(ctx, tr.Root)
	}
	res, err := backend.Compile(ctx, tgt, circ.Circ, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "atomique: %v\n", err)
		os.Exit(1)
	}
	if err := compiler.AttachNoise(ctx, tgt, res, opts); err != nil {
		fmt.Fprintf(os.Stderr, "atomique: %v\n", err)
		os.Exit(1)
	}
	if tr != nil {
		tr.Root.End()
	}
	m := res.Metrics
	coreRes, hasSchedule := res.Artifact.(*core.Result)

	fmt.Printf("backend          %s\n", res.Backend)
	fmt.Printf("benchmark        %s (%d qubits, %d 2Q + %d 1Q gates)\n",
		circ.Name, circ.Circ.N, circ.Circ.Num2Q(), circ.Circ.Num1Q())
	switch {
	case caps.Zoned:
		fmt.Printf("machine          %dx%d storage + %d gate sites (zone gap %.0f um)\n",
			zones.StorageRows, zones.StorageCols, zones.EntangleSites, zones.ZoneGap*1e6)
	case caps.FPQA && (machineFlagSet || hasSchedule):
		// The atomique backend compiles on cfg even for the auto target.
		fmt.Printf("machine          %dx%d SLM + %d x %dx%d AOD\n",
			cfg.SLM.Rows, cfg.SLM.Cols, len(cfg.AODs), cfg.AODs[0].Rows, cfg.AODs[0].Cols)
	case caps.FPQA:
		fmt.Printf("machine          auto (%s default)\n", res.Backend)
	default:
		fmt.Printf("device           %s (%s)\n", m.Arch, tgt)
	}
	if res.TimedOut {
		fmt.Printf("TIMED OUT after  %v\n", m.CompileTime)
		return
	}
	fmt.Printf("2Q executed      %d (swaps inserted: %d, +%d CNOT)\n",
		m.N2Q, m.SwapCount, m.AddedCNOTs)
	if hasSchedule {
		fmt.Printf("depth (stages)   %d   max parallel gates: %d\n",
			m.Depth2Q, coreRes.Schedule.MaxParallelism())
		fmt.Printf("movement         %.3f mm total, %d cooling events, %d overlap rejections\n",
			m.TotalMoveDist*1e3, m.CoolingEvents, m.Overlaps)
	} else {
		fmt.Printf("depth (2Q)       %d\n", m.Depth2Q)
	}
	fmt.Printf("execution time   %.4f s\n", m.ExecutionTime)
	fmt.Printf("compile time     %v\n", m.CompileTime)
	if len(m.Passes) > 0 {
		fmt.Printf("pipeline        ")
		for _, p := range m.Passes {
			fmt.Printf(" %s %.3fms", p.Name, p.Seconds*1e3)
		}
		fmt.Println()
	}
	if len(res.Extra) > 0 {
		keys := make([]string, 0, len(res.Extra))
		for k := range res.Extra {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("%-16s %g\n", k, res.Extra[k])
		}
	}
	if m.FidelityTotal() > 0 {
		fmt.Printf("fidelity         %.4f\n", m.FidelityTotal())
		labels := fidelity.Labels()
		for i, v := range m.Fidelity.NegLog() {
			fmt.Printf("  -log10 %-18s %.4g\n", labels[i], v)
		}
	}
	if sr := res.Sample; sr != nil {
		fmt.Printf("sampled          shots [%d, %d) on engine=%s: %d distinct outcomes, %d error shots, %d atoms lost\n",
			sr.Offset, sr.Offset+int64(sr.Shots), sr.Engine, sr.Distinct, sr.ErrorShots, sr.LostShots)
		// Histogram, most frequent first, capped so wide registers stay
		// readable; ties broken by bitstring for a stable listing.
		type kv struct {
			bits  string
			count int64
		}
		hist := make([]kv, 0, len(sr.Counts))
		for b, c := range sr.Counts {
			hist = append(hist, kv{b, c})
		}
		sort.Slice(hist, func(i, j int) bool {
			if hist[i].count != hist[j].count {
				return hist[i].count > hist[j].count
			}
			return hist[i].bits < hist[j].bits
		})
		const maxRows = 16
		shown := hist
		if len(shown) > maxRows {
			shown = shown[:maxRows]
		}
		for _, h := range shown {
			fmt.Printf("  %s  %6d  %.4f\n", h.bits, h.count, float64(h.count)/float64(sr.Shots))
		}
		if rest := len(hist) - len(shown); rest > 0 {
			fmt.Printf("  (+%d more outcomes)\n", rest)
		}
	}
	if est := res.Noise; est != nil {
		fmt.Printf("noisy sim        %d shots: fidelity %.4f ± %.4f (95%% CI), survival %.4f, analytic %.4f\n",
			est.Shots, est.Fidelity, 1.96*est.StdErr, est.Survival, est.Analytic)
		fmt.Printf("  %d shots with errors, %d atoms lost\n", est.ErrorShots, est.LostShots)
		for _, c := range est.Channels {
			fmt.Printf("  channel %-14s p=%.3g x%-6d %d events\n", c.Label, c.Prob, c.Trials, c.Events)
		}
	}

	if tr != nil {
		fmt.Printf("\ntrace %s\n", tr.ID)
		tr.Root.Snapshot().WriteTree(os.Stdout)
	}

	if (*schedule || *vizFlag || *jsonOut != "") && !hasSchedule {
		fmt.Fprintf(os.Stderr, "atomique: backend %q does not produce a movement schedule (-schedule/-viz/-json need the atomique backend)\n", res.Backend)
		os.Exit(1)
	}

	if *schedule {
		fmt.Println()
		for i, st := range coreRes.Schedule.Stages {
			fmt.Printf("stage %4d: %d 1Q, %d moves, %d 2Q gates\n",
				i, len(st.OneQ), len(st.Moves), len(st.Gates))
			for _, g := range st.Gates {
				fmt.Printf("  %s %s <-> %s\n", g.Op,
					coreRes.SiteOf[g.SlotA], coreRes.SiteOf[g.SlotB])
			}
		}
	}

	if *vizFlag {
		fmt.Println()
		viz.Summary(os.Stdout, cfg, coreRes)
	}

	if *jsonOut != "" {
		out := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "atomique: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := core.ExportJSON(out, cfg, coreRes); err != nil {
			fmt.Fprintf(os.Stderr, "atomique: %v\n", err)
			os.Exit(1)
		}
	}
}
