// Command atomiqued serves the Atomique compiler over HTTP/JSON: a bounded
// job queue drained by a worker pool, with a content-addressed result cache
// so repeated identical requests compile once.
//
// Usage:
//
//	atomiqued [-addr :8791] [-workers 8] [-queue 64] [-cache 256]
//	          [-slm 10] [-aods 2] [-aodsize 10]
//
// Endpoints: POST /v1/compile, POST /v1/compile/batch, GET /v1/jobs/{id},
// DELETE /v1/jobs/{id}, GET /v1/backends, GET /v1/benchmarks,
// GET /v1/healthz, GET /v1/stats. Requests select a compiler backend via
// the "backend" field (default "atomique"; discover via GET /v1/backends).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"atomique/internal/compiler"
	"atomique/internal/core"
	"atomique/internal/hardware"
	"atomique/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8791", "listen address")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 64, "job queue capacity")
		cache   = flag.Int("cache", 256, "result cache entries")
		slm     = flag.Int("slm", 10, "default SLM array side length")
		aods    = flag.Int("aods", 2, "default number of AOD arrays")
		aodSize = flag.Int("aodsize", 10, "default AOD array side length")
	)
	flag.Parse()

	hw := hardware.BuildConfig(*slm, *aods, *aodSize, hardware.NeutralAtom())
	if err := hw.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "atomiqued: %v\n", err)
		os.Exit(1)
	}

	engine := service.New(service.Config{
		Workers:   *workers,
		QueueSize: *queue,
		CacheSize: *cache,
		Hardware:  hw,
	})
	defer engine.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           engine.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("atomiqued: listening on %s (%dx%d SLM + %d x %dx%d AOD, queue %d, cache %d)\n",
		*addr, *slm, *slm, *aods, *aodSize, *aodSize, *queue, *cache)
	fmt.Printf("atomiqued: compile pipeline: %s (per-pass timings in GET /v1/stats)\n",
		strings.Join(core.PassNames(), " -> "))
	fmt.Printf("atomiqued: backends: %s (select via the request backend field)\n",
		strings.Join(compiler.Names(), ", "))

	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fmt.Fprintf(os.Stderr, "atomiqued: shutdown: %v\n", err)
		}
		fmt.Println("atomiqued: shut down")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "atomiqued: %v\n", err)
			os.Exit(1)
		}
	}
}
