// Command atomiqued serves the Atomique compiler over HTTP/JSON: a bounded
// job queue drained by a worker pool, with a content-addressed result cache
// so repeated identical requests compile once.
//
// Usage:
//
//	atomiqued [-addr :8791] [-workers 8] [-queue 64] [-cache 256]
//	          [-workers-min 1] [-workers-max 16] [-admission]
//	          [-admission-slo 250ms] [-slm 10] [-aods 2] [-aodsize 10]
//	          [-ops-addr :8792] [-log-level info] [-trace-buffer 256]
//	          [-trace-sample 1] [-slo-config slo.json] [-bundle-dir dir]
//	          [-bundle-max 8] [-smoke]
//
// -admission enables the saturation-aware admission controller: the worker
// pool autoscales within [-workers-min, -workers-max] and submissions are
// shed with 429 + Retry-After before the queue saturates (batch-class first;
// interactive requests keep their -admission-slo queue-wait objective).
//
// -slo-config loads declarative burn-rate objectives (default: availability
// and latency objectives per request class); GET /v1/slo reports their
// state. -bundle-dir enables the flight recorder: an SLO page, the onset of
// admission shedding, or a worker panic captures a diagnostic bundle
// (CPU/goroutine/heap profiles, pinned traces, admission model, metrics
// dump, resolved config) into a bounded on-disk ring browsable under
// GET /v1/debug/bundles. -trace-sample keeps only that fraction of fast
// successful traces; errors, sheds, and slow-tail traces are always pinned.
//
// Endpoints: POST /v1/compile, POST /v1/simulate, POST /v1/compile/batch,
// GET /v1/jobs/{id}, DELETE /v1/jobs/{id}, GET /v1/backends,
// GET /v1/benchmarks, GET /v1/healthz, GET /v1/stats, GET /v1/traces,
// GET /v1/slo, GET+POST /v1/debug/bundles, GET /metrics (OpenMetrics with
// trace-ID exemplars when the Accept header asks for it). Requests select a
// compiler backend via the "backend" field (default "atomique"; discover via
// GET /v1/backends) and may carry an X-Trace-Id header to name their request
// trace.
//
// -ops-addr starts a second listener with net/http/pprof under /debug/pprof/
// and a /metrics mirror, so profiling and scraping need not share the API
// port. -smoke boots the server on a loopback port, drives a compile and a
// noisy simulate through it, validates the /metrics exposition (both classic
// and OpenMetrics-with-exemplars forms), /v1/traces, /v1/slo, and a manual
// flight-recorder bundle, and exits — the CI end-to-end check.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"atomique/internal/admission"
	"atomique/internal/compiler"
	"atomique/internal/core"
	"atomique/internal/hardware"
	"atomique/internal/obs"
	"atomique/internal/obs/slo"
	"atomique/internal/service"
)

// parseLogLevel maps the -log-level flag to a slog level.
func parseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown log level %q (debug|info|warn|error)", s)
	}
}

// opsHandler is the ops-listener mux: pprof plus a /metrics mirror.
func opsHandler(engine *service.Engine) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", engine.MetricsHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func main() {
	var (
		addr        = flag.String("addr", ":8791", "listen address")
		workers     = flag.Int("workers", 0, "initial worker pool size (0 = GOMAXPROCS)")
		workersMin  = flag.Int("workers-min", 0, "worker pool floor for the admission controller (0 = fixed pool at -workers)")
		workersMax  = flag.Int("workers-max", 0, "worker pool ceiling for the admission controller (0 = fixed pool at -workers)")
		admit       = flag.Bool("admission", false, "enable saturation-aware admission control + pool autoscaling")
		admitSLO    = flag.Duration("admission-slo", 250*time.Millisecond, "interactive queue-wait objective for admission control")
		queue       = flag.Int("queue", 64, "job queue capacity")
		cache       = flag.Int("cache", 256, "result cache entries")
		slm         = flag.Int("slm", 10, "default SLM array side length")
		aods        = flag.Int("aods", 2, "default number of AOD arrays")
		aodSize     = flag.Int("aodsize", 10, "default AOD array side length")
		opsAddr     = flag.String("ops-addr", "", "ops listen address for pprof + /metrics (empty = disabled)")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, error")
		traceBuffer = flag.Int("trace-buffer", 256, "finished traces kept for GET /v1/traces")
		traceSample = flag.Float64("trace-sample", 1, "probability a fast successful trace enters the ring (errors, sheds, and slow-tail traces are always kept)")
		sloConfig   = flag.String("slo-config", "", "JSON SLO config for the burn-rate engine (empty = default per-class objectives)")
		bundleDir   = flag.String("bundle-dir", "", "flight-recorder bundle directory (empty = recorder disabled; -smoke defaults it to a temp dir)")
		bundleMax   = flag.Int("bundle-max", 8, "diagnostic bundles kept on disk before the oldest is deleted")
		smoke       = flag.Bool("smoke", false, "boot on a loopback port, self-check compile/simulate/metrics/traces/slo/bundles, exit")
	)
	flag.Parse()

	level, err := parseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "atomiqued: %v\n", err)
		os.Exit(1)
	}
	logger := obs.NewLogger(os.Stderr, level)

	hw := hardware.BuildConfig(*slm, *aods, *aodSize, hardware.NeutralAtom())
	if err := hw.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "atomiqued: %v\n", err)
		os.Exit(1)
	}

	var sloCfg slo.Config
	if *sloConfig != "" {
		sloCfg, err = slo.LoadConfig(*sloConfig)
		if err != nil {
			fmt.Fprintf(os.Stderr, "atomiqued: %v\n", err)
			os.Exit(1)
		}
	}
	// The smoke check exercises the bundle endpoints, so it needs a recorder
	// even when the caller did not pass -bundle-dir.
	if *smoke && *bundleDir == "" {
		dir, err := os.MkdirTemp("", "atomiqued-bundles-")
		if err != nil {
			fmt.Fprintf(os.Stderr, "atomiqued: %v\n", err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
		*bundleDir = dir
	}

	engine := service.New(service.Config{
		Workers:     *workers,
		WorkersMin:  *workersMin,
		WorkersMax:  *workersMax,
		QueueSize:   *queue,
		CacheSize:   *cache,
		Hardware:    hw,
		TraceBuffer: *traceBuffer,
		TraceSample: *traceSample,
		SLO:         sloCfg,
		Bundles:     service.BundleConfig{Dir: *bundleDir, MaxBundles: *bundleMax},
		Logger:      logger,
		Admission: admission.Config{
			Enabled:         *admit,
			TargetQueueWait: *admitSLO,
		},
	})
	defer engine.Close()

	if *smoke {
		if err := runSmoke(engine, logger); err != nil {
			fmt.Fprintf(os.Stderr, "atomiqued: smoke: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("atomiqued: smoke check passed")
		return
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           engine.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	if *opsAddr != "" {
		ops := &http.Server{Addr: *opsAddr, Handler: opsHandler(engine), ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := ops.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("ops listener failed", "addr", *opsAddr, "error", err.Error())
			}
		}()
		defer ops.Close()
		logger.Info("ops listener up", "addr", *opsAddr, "pprof", "/debug/pprof/", "metrics", "/metrics")
	}
	fmt.Printf("atomiqued: listening on %s (%dx%d SLM + %d x %dx%d AOD, queue %d, cache %d)\n",
		*addr, *slm, *slm, *aods, *aodSize, *aodSize, *queue, *cache)
	fmt.Printf("atomiqued: compile pipeline: %s (per-pass timings in GET /v1/stats)\n",
		strings.Join(core.PassNames(), " -> "))
	fmt.Printf("atomiqued: backends: %s (select via the request backend field)\n",
		strings.Join(compiler.Names(), ", "))
	logger.Info("serving", "addr", *addr, "workers", *workers, "queue", *queue,
		"cache", *cache, "traceBuffer", *traceBuffer,
		"admission", *admit, "workersMin", *workersMin, "workersMax", *workersMax)

	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fmt.Fprintf(os.Stderr, "atomiqued: shutdown: %v\n", err)
		}
		fmt.Println("atomiqued: shut down")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "atomiqued: %v\n", err)
			os.Exit(1)
		}
	}
}
