package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"time"

	"atomique/internal/obs"
	"atomique/internal/service"
)

// runSmoke is the -smoke mode: serve the real handler on an ephemeral
// loopback port, drive a compile and a noisy simulate through it over HTTP,
// and verify the observability surface end to end — /metrics parses as valid
// Prometheus exposition and carries the expected families, and /v1/traces
// returns the jobs' trace IDs with full span trees. CI runs this as its
// boot-and-scrape job.
func runSmoke(engine *service.Engine, logger *slog.Logger) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: engine.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // torn down via Close below
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	logger.Info("smoke server up", "addr", ln.Addr().String())

	client := &http.Client{Timeout: 60 * time.Second}
	post := func(path, traceID string, body any) (*service.Job, error) {
		js, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		req, err := http.NewRequest(http.MethodPost, base+path, bytes.NewReader(js))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		if traceID != "" {
			req.Header.Set(service.TraceHeader, traceID)
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("POST %s: status %d: %s", path, resp.StatusCode, raw)
		}
		var jv service.Job
		if err := json.Unmarshal(raw, &jv); err != nil {
			return nil, fmt.Errorf("POST %s: decode: %w", path, err)
		}
		if jv.State != service.StateDone {
			return nil, fmt.Errorf("POST %s: job state %s (%s)", path, jv.State, jv.Error)
		}
		if echoed := resp.Header.Get(service.TraceHeader); echoed != jv.TraceID {
			return nil, fmt.Errorf("POST %s: header trace %q != job trace %q", path, echoed, jv.TraceID)
		}
		return &jv, nil
	}

	compiled, err := post("/v1/compile", "smoke-compile", service.Request{Benchmark: "H2-4", Seed: 1})
	if err != nil {
		return err
	}
	simulated, err := post("/v1/simulate", "", service.Request{Benchmark: "H2-4", Seed: 1, Shots: 256})
	if err != nil {
		return err
	}
	if compiled.TraceID != "smoke-compile" {
		return fmt.Errorf("client trace ID not honoured: got %q", compiled.TraceID)
	}

	// /metrics must be valid exposition and cover both request classes.
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	expo, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	samples, err := obs.ParseExposition(bytes.NewReader(expo))
	if err != nil {
		return fmt.Errorf("/metrics exposition invalid: %w", err)
	}
	for _, want := range []string{
		`atomique_request_duration_seconds_p50{backend="atomique",class="compile"}`,
		`atomique_request_duration_seconds_p99{backend="atomique",class="simulate"}`,
		`atomique_requests_total{backend="atomique",class="compile",outcome="done"}`,
		`atomique_queue_wait_seconds_count`,
		`atomique_cache_events_total{event="miss"}`,
		`atomique_trajectory_shots_total`,
		`atomique_workers_busy`,
	} {
		if !strings.Contains(string(expo), want) {
			return fmt.Errorf("/metrics missing %q", want)
		}
	}
	logger.Info("metrics exposition valid", "samples", samples)

	// /v1/traces must return both jobs' traces with populated span trees.
	for _, id := range []string{compiled.TraceID, simulated.TraceID} {
		resp, err := client.Get(base + "/v1/traces/" + id)
		if err != nil {
			return err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET /v1/traces/%s: status %d", id, resp.StatusCode)
		}
		var tv struct {
			TraceID string            `json:"traceId"`
			Spans   *obs.SpanSnapshot `json:"spans"`
		}
		if err := json.Unmarshal(raw, &tv); err != nil {
			return err
		}
		if tv.TraceID != id || tv.Spans == nil || len(tv.Spans.Children) == 0 {
			return fmt.Errorf("trace %s incomplete: %s", id, raw)
		}
	}
	logger.Info("traces browsable", "compile", compiled.TraceID, "simulate", simulated.TraceID)
	return nil
}
