package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"time"

	"atomique/internal/obs"
	"atomique/internal/service"
)

// runSmoke is the -smoke mode: serve the real handler on an ephemeral
// loopback port, drive a compile and a noisy simulate through it over HTTP,
// and verify the observability surface end to end — /metrics parses as valid
// Prometheus exposition and carries the expected families, and /v1/traces
// returns the jobs' trace IDs with full span trees. CI runs this as its
// boot-and-scrape job.
func runSmoke(engine *service.Engine, logger *slog.Logger) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: engine.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // torn down via Close below
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	logger.Info("smoke server up", "addr", ln.Addr().String())

	client := &http.Client{Timeout: 60 * time.Second}
	post := func(path, traceID string, body any) (*service.Job, error) {
		js, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		req, err := http.NewRequest(http.MethodPost, base+path, bytes.NewReader(js))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		if traceID != "" {
			req.Header.Set(service.TraceHeader, traceID)
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("POST %s: status %d: %s", path, resp.StatusCode, raw)
		}
		var jv service.Job
		if err := json.Unmarshal(raw, &jv); err != nil {
			return nil, fmt.Errorf("POST %s: decode: %w", path, err)
		}
		if jv.State != service.StateDone {
			return nil, fmt.Errorf("POST %s: job state %s (%s)", path, jv.State, jv.Error)
		}
		if echoed := resp.Header.Get(service.TraceHeader); echoed != jv.TraceID {
			return nil, fmt.Errorf("POST %s: header trace %q != job trace %q", path, echoed, jv.TraceID)
		}
		return &jv, nil
	}

	compiled, err := post("/v1/compile", "smoke-compile", service.Request{Benchmark: "H2-4", Seed: 1})
	if err != nil {
		return err
	}
	simulated, err := post("/v1/simulate", "", service.Request{Benchmark: "H2-4", Seed: 1, Shots: 256})
	if err != nil {
		return err
	}
	if compiled.TraceID != "smoke-compile" {
		return fmt.Errorf("client trace ID not honoured: got %q", compiled.TraceID)
	}

	// /metrics must be valid exposition and cover both request classes.
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	expo, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	samples, err := obs.ParseExposition(bytes.NewReader(expo))
	if err != nil {
		return fmt.Errorf("/metrics exposition invalid: %w", err)
	}
	for _, want := range []string{
		`atomique_request_duration_seconds_p50{backend="atomique",class="compile"}`,
		`atomique_request_duration_seconds_p99{backend="atomique",class="simulate"}`,
		`atomique_requests_total{backend="atomique",class="compile",outcome="done"}`,
		`atomique_queue_wait_seconds_count`,
		`atomique_cache_events_total{event="miss"}`,
		`atomique_trajectory_shots_total`,
		`atomique_workers_busy`,
	} {
		if !strings.Contains(string(expo), want) {
			return fmt.Errorf("/metrics missing %q", want)
		}
	}
	logger.Info("metrics exposition valid", "samples", samples)

	// /v1/traces must return both jobs' traces with populated span trees.
	for _, id := range []string{compiled.TraceID, simulated.TraceID} {
		resp, err := client.Get(base + "/v1/traces/" + id)
		if err != nil {
			return err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET /v1/traces/%s: status %d", id, resp.StatusCode)
		}
		var tv struct {
			TraceID string            `json:"traceId"`
			Spans   *obs.SpanSnapshot `json:"spans"`
		}
		if err := json.Unmarshal(raw, &tv); err != nil {
			return err
		}
		if tv.TraceID != id || tv.Spans == nil || len(tv.Spans.Children) == 0 {
			return fmt.Errorf("trace %s incomplete: %s", id, raw)
		}
	}
	logger.Info("traces browsable", "compile", compiled.TraceID, "simulate", simulated.TraceID)

	// The negotiated OpenMetrics form must carry trace-ID exemplars, end in
	// # EOF, and still satisfy the strict parser.
	omReq, err := http.NewRequest(http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return err
	}
	omReq.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	omResp, err := client.Do(omReq)
	if err != nil {
		return err
	}
	om, err := io.ReadAll(omResp.Body)
	omResp.Body.Close()
	if err != nil {
		return err
	}
	if ct := omResp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		return fmt.Errorf("negotiated scrape content type %q", ct)
	}
	if _, err := obs.ParseExposition(bytes.NewReader(om)); err != nil {
		return fmt.Errorf("OpenMetrics exposition invalid: %w", err)
	}
	if !strings.Contains(string(om), `# {trace_id="`) {
		return fmt.Errorf("OpenMetrics scrape carries no exemplars")
	}
	if !strings.HasSuffix(strings.TrimRight(string(om), "\n"), "# EOF") {
		return fmt.Errorf("OpenMetrics scrape does not end with # EOF")
	}
	logger.Info("openmetrics exposition valid, exemplars present")

	// /v1/slo must report every objective evaluated and healthy — the smoke
	// traffic is far too small to burn budget.
	resp, err = client.Get(base + "/v1/slo")
	if err != nil {
		return err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	var sloStatus struct {
		Worst      string `json:"worst"`
		Objectives []struct {
			Name  string `json:"name"`
			State string `json:"state"`
		} `json:"objectives"`
	}
	if err := json.Unmarshal(raw, &sloStatus); err != nil {
		return fmt.Errorf("GET /v1/slo: decode: %w", err)
	}
	if sloStatus.Worst != "ok" || len(sloStatus.Objectives) == 0 {
		return fmt.Errorf("GET /v1/slo: worst=%q objectives=%d, want ok with objectives: %s",
			sloStatus.Worst, len(sloStatus.Objectives), raw)
	}
	logger.Info("slo engine healthy", "objectives", len(sloStatus.Objectives))

	// A manual flight-recorder trigger must produce a complete bundle with
	// non-empty profiles.
	trigResp, err := client.Post(base+"/v1/debug/bundles?reason=smoke", "application/json", nil)
	if err != nil {
		return err
	}
	trigRaw, err := io.ReadAll(trigResp.Body)
	trigResp.Body.Close()
	if err != nil {
		return err
	}
	if trigResp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("POST /v1/debug/bundles: status %d: %s", trigResp.StatusCode, trigRaw)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(trigRaw, &created); err != nil || created.ID == "" {
		return fmt.Errorf("POST /v1/debug/bundles: bad response %s", trigRaw)
	}
	var bundle obs.BundleMeta
	for deadline := time.Now().Add(30 * time.Second); ; {
		resp, err := client.Get(base + "/v1/debug/bundles/" + created.ID)
		if err != nil {
			return err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET /v1/debug/bundles/%s: status %d", created.ID, resp.StatusCode)
		}
		if err := json.Unmarshal(raw, &bundle); err != nil {
			return err
		}
		if bundle.Complete {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("bundle %s not complete after 30s", created.ID)
		}
		time.Sleep(100 * time.Millisecond)
	}
	want := map[string]bool{"cpu.pprof": false, "goroutine.pprof": false, "heap.pprof": false,
		"traces.json": false, "admission.json": false, "stats.json": false,
		"config.json": false, "metrics.prom": false}
	for _, f := range bundle.Files {
		if _, ok := want[f.Name]; ok {
			want[f.Name] = f.Bytes > 0 && f.Error == ""
		}
	}
	for name, ok := range want {
		if !ok {
			return fmt.Errorf("bundle %s: file %s missing, empty, or errored: %+v", created.ID, name, bundle.Files)
		}
	}
	logger.Info("flight recorder bundle complete", "bundle", created.ID, "files", len(bundle.Files))
	return nil
}
