// Command experiments regenerates the paper's tables and figures as
// plain-text tables.
//
// Usage:
//
//	experiments -run all            # everything, paper order
//	experiments -run fig13,fig18    # selected artifacts
//	experiments -run all -service   # route compiles through the compile
//	                                # service (cached; repeats are free)
//	experiments -list               # available experiment ids
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"atomique/internal/circuit"
	"atomique/internal/compiler"
	"atomique/internal/exp"
	"atomique/internal/hardware"
	"atomique/internal/metrics"
	"atomique/internal/service"
)

func main() {
	var (
		run     = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		useSvc  = flag.Bool("service", false, "run Atomique compiles through the compile service's batch path (content-addressed cache dedupes repeated sweeps)")
		workers = flag.Int("workers", 0, "service worker pool size (with -service; 0 = GOMAXPROCS)")

		benchRecordPath = flag.String("bench-record", "", "measure the tracked benchmark workloads (Tab2 compile, per-backend compile, noisy-shot throughput), write the JSON perf record to this file, and exit")
		benchBaseline   = flag.String("bench-baseline", "", "pre-change Tab2 baseline to diff against in -bench-record: seconds/op, a BENCH_*.json file, or a directory holding BENCH_*.json records (latest wins); empty = none; >2% regression fails the run")
	)
	flag.Parse()

	if *benchRecordPath != "" {
		baseline, source, err := resolveBaseline(*benchBaseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: bench-baseline: %v\n", err)
			os.Exit(1)
		}
		if source != "" {
			fmt.Printf("baseline from %s: %.6fs\n", source, baseline)
		}
		if err := runBenchRecord(*benchRecordPath, baseline); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: bench-record: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *useSvc {
		engine := service.New(service.Config{Workers: *workers})
		defer func() {
			st := engine.Stats()
			fmt.Printf("[service: %d compiles, %d cache hits, %d misses, %d cached entries]\n",
				st.Submitted, st.CacheHits, st.CacheMisses, st.CacheEntries)
			engine.Close()
		}()
		exp.SetCompiler(func(cfg hardware.Config, c *circuit.Circuit, opts compiler.Options) (metrics.Compiled, error) {
			return engine.CompileMetrics(context.Background(), cfg, c, opts)
		})
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-7s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []exp.Experiment
	if *run == "all" {
		selected = exp.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := exp.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown id %q (try -list)\n", id)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		tables := e.Run()
		for _, t := range tables {
			t.Render(os.Stdout)
		}
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
