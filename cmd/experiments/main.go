// Command experiments regenerates the paper's tables and figures as
// plain-text tables.
//
// Usage:
//
//	experiments -run all            # everything, paper order
//	experiments -run fig13,fig18    # selected artifacts
//	experiments -list               # available experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"atomique/internal/exp"
)

func main() {
	var (
		run  = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		list = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-7s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []exp.Experiment
	if *run == "all" {
		selected = exp.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := exp.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown id %q (try -list)\n", id)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		tables := e.Run()
		for _, t := range tables {
			t.Render(os.Stdout)
		}
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
