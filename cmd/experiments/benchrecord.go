package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"time"

	"atomique/internal/bench"
	"atomique/internal/compiler"
	"atomique/internal/core"
	"atomique/internal/hardware"
	"atomique/internal/noise"
)

// benchRecord is the committed perf-trajectory record (BENCH_NNNN.json): the
// same workloads the repo's Go benchmarks run (BenchmarkTab2Compile,
// BenchmarkBackends, BenchmarkNoisyShots), measured directly so the numbers
// can be serialized with machine context and compared across PRs.
type benchRecord struct {
	RecordedAt string `json:"recordedAt"`
	GoVersion  string `json:"goVersion"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPUs       int    `json:"cpus"`

	// Tab2CompileSeconds is one compile of the full Table II suite through
	// the atomique pass pipeline (Seed 1), best of Runs — the workload of
	// BenchmarkTab2Compile and the ≤2% instrumentation-overhead gate.
	Tab2CompileSeconds float64 `json:"tab2CompileSeconds"`
	// Tab2BaselineSeconds is the pre-change number the run is compared
	// against (passed via -bench-baseline; 0 = none recorded).
	Tab2BaselineSeconds float64 `json:"tab2BaselineSeconds,omitempty"`
	// Tab2OverheadPct is (current - baseline) / baseline * 100.
	Tab2OverheadPct float64 `json:"tab2OverheadPct,omitempty"`
	Runs            int     `json:"runs"`

	// BackendCompileSeconds is one QAOA-regu5-40 compile per registered
	// backend (auto target, Seed 7, best of Runs) — BenchmarkBackends.
	BackendCompileSeconds map[string]float64 `json:"backendCompileSeconds"`

	// NoisyShotsPerSecond is trajectory throughput (16384 shots of
	// QAOA-regu3-12) per worker count — BenchmarkNoisyShots.
	NoisyShotsPerSecond map[string]float64 `json:"noisyShotsPerSecond"`

	// StabShotsPerSecond is Pauli-frame trajectory throughput on the
	// stabilizer engine (16384 shots of a 128-qubit GHZ witness, default
	// workers) — BenchmarkStabTrajectory. The dense engine cannot run this
	// workload at all.
	StabShotsPerSecond float64 `json:"stabShotsPerSecond,omitempty"`

	// SampleShotsPerSecond is measurement-sampling throughput (noise.Sample,
	// default workers) per workload: the dense engine on the 12-qubit QAOA
	// witness and the stabilizer affine-subspace sampler on 64- and
	// 128-qubit GHZ witnesses.
	SampleShotsPerSecond map[string]float64 `json:"sampleShotsPerSecond,omitempty"`
	// SampleStabVsDenseSpeedup is stab GHZ-64 sampled-shot throughput over
	// the dense workload's — the Clifford fast path's win on the sampling
	// product specifically.
	SampleStabVsDenseSpeedup float64 `json:"sampleStabVsDenseSpeedup,omitempty"`
}

// resolveBaseline turns the -bench-baseline flag into Tab2 seconds/op. The
// flag accepts three forms: a bare number (back-compat), a path to one
// committed BENCH_*.json record, or a directory of them — the
// lexically-latest record wins, so pointing CI at the repo root always diffs
// against the most recent committed trajectory point. Returns the seconds,
// the source description ("" for the literal-number form), and any error;
// an empty flag resolves to no baseline.
func resolveBaseline(arg string) (float64, string, error) {
	if arg == "" {
		return 0, "", nil
	}
	if sec, err := strconv.ParseFloat(arg, 64); err == nil {
		if sec < 0 {
			return 0, "", fmt.Errorf("negative baseline %v", sec)
		}
		return sec, "", nil
	}
	info, err := os.Stat(arg)
	if err != nil {
		return 0, "", err
	}
	path := arg
	if info.IsDir() {
		records, err := filepath.Glob(filepath.Join(arg, "BENCH_*.json"))
		if err != nil {
			return 0, "", err
		}
		if len(records) == 0 {
			return 0, "", fmt.Errorf("no BENCH_*.json records in %s", arg)
		}
		sort.Strings(records)
		path = records[len(records)-1]
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, "", err
	}
	var rec benchRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return 0, "", fmt.Errorf("%s: %w", path, err)
	}
	if rec.Tab2CompileSeconds <= 0 {
		return 0, "", fmt.Errorf("%s: no tab2CompileSeconds recorded", path)
	}
	return rec.Tab2CompileSeconds, path, nil
}

// bestOf returns the minimum wall time of n runs of fn — the same
// least-noise estimator `go test -bench` users apply across -count runs.
func bestOf(n int, fn func() error) (float64, error) {
	best := 0.0
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if sec := time.Since(start).Seconds(); i == 0 || sec < best {
			best = sec
		}
	}
	return best, nil
}

// runBenchRecord measures the three tracked workloads and writes the JSON
// record to path. baseline (seconds, 0 = none) is the pre-change Tab2 number
// to diff against; the run fails loudly if overhead exceeds 2%.
func runBenchRecord(path string, baseline float64) error {
	const runs = 5
	rec := benchRecord{
		RecordedAt:            time.Now().UTC().Format(time.RFC3339),
		GoVersion:             runtime.Version(),
		GOOS:                  runtime.GOOS,
		GOARCH:                runtime.GOARCH,
		CPUs:                  runtime.GOMAXPROCS(0),
		Runs:                  runs,
		BackendCompileSeconds: make(map[string]float64),
		NoisyShotsPerSecond:   make(map[string]float64),
	}

	// BenchmarkTab2Compile: the full Table II suite, Seed 1.
	cfg := hardware.DefaultConfig()
	suite := bench.Table2Suite()
	sec, err := bestOf(runs, func() error {
		for _, bm := range suite {
			if _, err := core.Compile(cfg, bm.Circ, core.Options{Seed: 1}); err != nil {
				return fmt.Errorf("%s: %w", bm.Name, err)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	rec.Tab2CompileSeconds = sec
	if baseline > 0 {
		rec.Tab2BaselineSeconds = baseline
		rec.Tab2OverheadPct = (sec - baseline) / baseline * 100
	}
	fmt.Printf("tab2 suite: %.4fs/op (best of %d)", sec, runs)
	if baseline > 0 {
		fmt.Printf("  baseline %.4fs  overhead %+.2f%%", baseline, rec.Tab2OverheadPct)
	}
	fmt.Println()

	// BenchmarkBackends: QAOA-regu5-40 per registered backend, Seed 7.
	qaoa := bench.QAOARegular(40, 5, 15)
	for _, be := range compiler.List() {
		be := be
		sec, err := bestOf(3, func() error {
			_, err := be.Compile(context.Background(), compiler.Target{}, qaoa, compiler.Options{Seed: 7})
			return err
		})
		if err != nil {
			return fmt.Errorf("backend %s: %w", be.Name(), err)
		}
		rec.BackendCompileSeconds[be.Name()] = sec
		fmt.Printf("backend %-10s %.4fs/op\n", be.Name(), sec)
	}

	// BenchmarkNoisyShots: 16384 trajectories of QAOA-regu3-12 per worker
	// count (1, 2, 4, ... up to GOMAXPROCS).
	be, ok := compiler.Lookup("atomique")
	if !ok {
		return fmt.Errorf("atomique backend not registered")
	}
	circ := bench.QAOARegular(12, 3, 15)
	res, err := be.Compile(context.Background(), compiler.Target{}, circ, compiler.Options{Seed: 7})
	if err != nil {
		return err
	}
	model := noise.Build(hardware.NeutralAtom(), res.Metrics)
	w := noise.Witness{NSlots: res.Program.NSlots, Gates: res.Program.Gates}
	const shots = 16384
	maxWorkers := runtime.GOMAXPROCS(0)
	for workers := 1; ; workers *= 2 {
		if workers > maxWorkers {
			workers = maxWorkers
		}
		sec, err := bestOf(3, func() error {
			_, err := noise.Simulate(context.Background(), model, w,
				noise.Run{Shots: shots, Seed: 1, Workers: workers})
			return err
		})
		if err != nil {
			return err
		}
		key := fmt.Sprintf("workers-%d", workers)
		rec.NoisyShotsPerSecond[key] = float64(shots) / sec
		fmt.Printf("noisy %-11s %.0f shots/s\n", key, rec.NoisyShotsPerSecond[key])
		if workers == maxWorkers {
			break
		}
	}

	// BenchmarkStabTrajectory: 16384 Pauli-frame trajectories of a
	// 128-qubit GHZ witness through the stabilizer engine.
	const stabWidth = 128
	ghz := bench.GHZ(stabWidth)
	stabW := noise.Witness{NSlots: stabWidth, Gates: ghz.Gates}
	stabModel := noise.Model{Channels: []noise.Channel{
		{Label: "1q-gate", Kind: noise.Pauli1Q, Trials: 1, Prob: 2e-3},
		{Label: "2q-gate", Kind: noise.Pauli2Q, Trials: stabWidth - 1, Prob: 5e-3},
		{Label: "decoherence", Kind: noise.Dephase, Trials: stabWidth, Prob: 1e-3},
		{Label: "transfer", Kind: noise.Loss, Trials: stabWidth, Prob: 2e-4},
	}}
	sec, err = bestOf(3, func() error {
		est, err := noise.Simulate(context.Background(), stabModel, stabW,
			noise.Run{Shots: shots, Seed: 1})
		if err != nil {
			return err
		}
		if est.Engine != noise.EngineStab {
			return fmt.Errorf("stab workload dispatched to engine %q", est.Engine)
		}
		return nil
	})
	if err != nil {
		return err
	}
	rec.StabShotsPerSecond = float64(shots) / sec
	fmt.Printf("stab ghz-%d    %.0f shots/s\n", stabWidth, rec.StabShotsPerSecond)

	// Measurement-sampling throughput (the /v1/sample hot path): the dense
	// CDF sampler on the 12-qubit QAOA witness vs the stabilizer
	// affine-subspace sampler on GHZ witnesses far past the dense wall.
	rec.SampleShotsPerSecond = make(map[string]float64)
	sampleRate := func(label string, mo noise.Model, sw noise.Witness) (float64, error) {
		sec, err := bestOf(3, func() error {
			_, err := noise.Sample(context.Background(), mo, sw,
				noise.SampleRun{Shots: shots, Seed: 1})
			return err
		})
		if err != nil {
			return 0, fmt.Errorf("sample %s: %w", label, err)
		}
		rate := float64(shots) / sec
		rec.SampleShotsPerSecond[label] = rate
		fmt.Printf("sample %-12s %.0f shots/s\n", label, rate)
		return rate, nil
	}
	denseRate, err := sampleRate("dense-qaoa-12", model, w)
	if err != nil {
		return err
	}
	var stab64Rate float64
	for _, n := range []int{64, 128} {
		g := bench.GHZ(n)
		mo := noise.Model{Channels: []noise.Channel{
			{Label: "1q-gate", Kind: noise.Pauli1Q, Trials: 1, Prob: 2e-3},
			{Label: "2q-gate", Kind: noise.Pauli2Q, Trials: n - 1, Prob: 5e-3},
			{Label: "decoherence", Kind: noise.Dephase, Trials: n, Prob: 1e-3},
			{Label: "transfer", Kind: noise.Loss, Trials: n, Prob: 2e-4},
		}}
		rate, err := sampleRate(fmt.Sprintf("stab-ghz-%d", n), mo, noise.Witness{NSlots: n, Gates: g.Gates})
		if err != nil {
			return err
		}
		if n == 64 {
			stab64Rate = rate
		}
	}
	rec.SampleStabVsDenseSpeedup = stab64Rate / denseRate
	fmt.Printf("sample stab-ghz-64 vs dense: %.1fx\n", rec.SampleStabVsDenseSpeedup)

	js, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(js, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	if baseline > 0 && rec.Tab2OverheadPct > 2 {
		return fmt.Errorf("tab2 compile overhead %.2f%% exceeds the 2%% budget", rec.Tab2OverheadPct)
	}
	return nil
}
