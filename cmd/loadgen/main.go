// Command loadgen drives an atomiqued instance with open-loop interactive
// and batch traffic, with an optional mid-run burst window that multiplies
// both arrival rates. It is the admission-control workout: run atomiqued
// with -admission and watch atomique_workers_target track the burst while
// shed requests come back as 429 + Retry-After instead of queueing.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8791 [-duration 30s] [-rps 20]
//	        [-batch-rps 5] [-sample-rps 0] [-sample-shots 20000]
//	        [-burst 10] [-burst-start 10s] [-burst-len 10s]
//	        [-benchmark H2-4] [-timeout 30s]
//
// -sample-rps mixes in POST /v1/sample jobs (batch priority, -sample-shots
// measurement shots each) — the sampling-product workout: trajectory
// sampling throughput under the same admission control as everything else.
//
// Every request carries a unique seed so the content-addressed result cache
// never absorbs the load. Per-class p50/p90/p99 latency, shed counts, and
// the observed worker-target trajectory are printed at the end. The exit
// code is 1 if any request drew a 5xx, a transport error, or a 429 without
// Retry-After — 429s themselves are expected output under overload, not
// failures.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

type result struct {
	class      string
	status     int // 0 = transport error
	latency    time.Duration
	retryAfter bool
}

type classSummary struct {
	sent, ok, shed, failed, transport int
	missingRetryAfter                 int
	latencies                         []time.Duration
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

func main() {
	var (
		addr       = flag.String("addr", "http://127.0.0.1:8791", "atomiqued base URL")
		duration   = flag.Duration("duration", 30*time.Second, "total run length")
		rps        = flag.Float64("rps", 20, "baseline interactive arrivals per second")
		batchRPS   = flag.Float64("batch-rps", 5, "baseline batch arrivals per second")
		sampleRPS  = flag.Float64("sample-rps", 0, "baseline /v1/sample arrivals per second (0 = no sampling traffic)")
		sampleN    = flag.Int("sample-shots", 20000, "measurement shots per sampling request")
		burst      = flag.Float64("burst", 10, "rate multiplier during the burst window (1 = no burst)")
		burstStart = flag.Duration("burst-start", 10*time.Second, "burst window start offset")
		burstLen   = flag.Duration("burst-len", 10*time.Second, "burst window length")
		benchmark  = flag.String("benchmark", "H2-4", "benchmark circuit to compile")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-request timeout")
	)
	flag.Parse()

	client := &http.Client{Timeout: *timeout}
	results := make(chan result, 4096)
	var inflight sync.WaitGroup
	var seed atomic.Int64
	start := time.Now()
	stop := time.After(*duration)

	fire := func(class string) {
		defer inflight.Done()
		// Sampling jobs vary the noise seed instead of the compile seed: each
		// request is a fresh trajectory run (cache miss on the sampling work)
		// over the one cached compilation — the realistic shape of a sharded
		// million-shot job.
		endpoint, payload := "/v1/compile", map[string]any{
			"benchmark": *benchmark,
			"seed":      seed.Add(1),
			"priority":  class,
		}
		if class == "sample" {
			endpoint, payload = "/v1/sample", map[string]any{
				"benchmark": *benchmark,
				"noiseSeed": seed.Add(1),
				"shots":     *sampleN,
			}
		}
		body, _ := json.Marshal(payload)
		t0 := time.Now()
		resp, err := client.Post(*addr+endpoint, "application/json", bytes.NewReader(body))
		if err != nil {
			results <- result{class: class}
			return
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drained for keep-alive reuse
		resp.Body.Close()
		results <- result{
			class:      class,
			status:     resp.StatusCode,
			latency:    time.Since(t0),
			retryAfter: resp.Header.Get("Retry-After") != "",
		}
	}

	// Open-loop generator: arrivals keep coming at the scheduled rate whether
	// or not earlier requests finished, so a saturated server sees real queue
	// pressure instead of the closed-loop self-throttling artifact.
	generate := func(class string, baseRPS float64, done <-chan struct{}) {
		defer inflight.Done()
		if baseRPS <= 0 {
			return
		}
		for {
			elapsed := time.Since(start)
			rate := baseRPS
			if *burst > 1 && elapsed >= *burstStart && elapsed < *burstStart+*burstLen {
				rate = baseRPS * *burst
			}
			select {
			case <-done:
				return
			case <-time.After(time.Duration(float64(time.Second) / rate)):
				inflight.Add(1)
				go fire(class)
			}
		}
	}

	// Sample the worker target so the report shows the pool tracking load.
	targets := make(chan string, 1)
	sampleDone := make(chan struct{})
	go func() {
		type stats struct {
			WorkersTarget int `json:"workersTarget"`
		}
		var trajectory []int
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-sampleDone:
				targets <- fmt.Sprint(trajectory)
				return
			case <-tick.C:
				resp, err := client.Get(*addr + "/v1/stats")
				if err != nil {
					continue
				}
				var st stats
				json.NewDecoder(resp.Body).Decode(&st) //nolint:errcheck // best-effort sample
				resp.Body.Close()
				if n := len(trajectory); n == 0 || trajectory[n-1] != st.WorkersTarget {
					trajectory = append(trajectory, st.WorkersTarget)
				}
			}
		}
	}()

	genDone := make(chan struct{})
	inflight.Add(3)
	go generate("interactive", *rps, genDone)
	go generate("batch", *batchRPS, genDone)
	go generate("sample", *sampleRPS, genDone)

	collected := make(map[string]*classSummary)
	for _, c := range []string{"interactive", "batch", "sample"} {
		collected[c] = &classSummary{}
	}
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		for r := range results {
			s := collected[r.class]
			s.sent++
			switch {
			case r.status == 0:
				s.transport++
			case r.status < 300:
				s.ok++
				s.latencies = append(s.latencies, r.latency)
			case r.status == http.StatusTooManyRequests:
				s.shed++
				if !r.retryAfter {
					s.missingRetryAfter++
				}
			default:
				s.failed++
			}
		}
	}()

	<-stop
	close(genDone)
	inflight.Wait()
	close(results)
	<-collectorDone
	close(sampleDone)

	exit := 0
	for _, class := range []string{"interactive", "batch", "sample"} {
		s := collected[class]
		if class == "sample" && s.sent == 0 {
			continue
		}
		sort.Slice(s.latencies, func(i, j int) bool { return s.latencies[i] < s.latencies[j] })
		fmt.Printf("%-12s sent=%d ok=%d shed=%d failed=%d transport=%d p50=%s p90=%s p99=%s\n",
			class, s.sent, s.ok, s.shed, s.failed, s.transport,
			percentile(s.latencies, 50).Round(time.Millisecond),
			percentile(s.latencies, 90).Round(time.Millisecond),
			percentile(s.latencies, 99).Round(time.Millisecond))
		if s.failed > 0 || s.transport > 0 {
			fmt.Fprintf(os.Stderr, "loadgen: %s: %d failed, %d transport errors\n", class, s.failed, s.transport)
			exit = 1
		}
		if s.missingRetryAfter > 0 {
			fmt.Fprintf(os.Stderr, "loadgen: %s: %d shed responses lacked Retry-After\n", class, s.missingRetryAfter)
			exit = 1
		}
	}
	fmt.Printf("workersTarget trajectory: %s\n", <-targets)
	os.Exit(exit)
}
