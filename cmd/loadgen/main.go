// Command loadgen drives an atomiqued instance with open-loop interactive
// and batch traffic, with an optional mid-run burst window that multiplies
// both arrival rates. It is the admission-control workout: run atomiqued
// with -admission and watch atomique_workers_target track the burst while
// shed requests come back as 429 + Retry-After instead of queueing.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8791 [-duration 30s] [-rps 20]
//	        [-batch-rps 5] [-sample-rps 0] [-sample-shots 20000]
//	        [-burst 10] [-burst-start 10s] [-burst-len 10s]
//	        [-benchmark H2-4] [-timeout 30s] [-json] [-scrape]
//
// -sample-rps mixes in POST /v1/sample jobs (batch priority, -sample-shots
// measurement shots each) — the sampling-product workout: trajectory
// sampling throughput under the same admission control as everything else.
//
// Every request carries a unique seed so the content-addressed result cache
// never absorbs the load. Per-class p50/p90/p99 latency, shed counts, and
// the observed worker-target trajectory are printed at the end. The exit
// code is 1 if any request drew a 5xx, a transport error, or a 429 without
// Retry-After — 429s themselves are expected output under overload, not
// failures.
//
// -json replaces the human-readable report with one JSON object on stdout
// ({"classes": {...}, "workersTarget": [...]}) so CI can assert on exact
// counts with jq instead of grepping. -scrape fetches /metrics with the
// OpenMetrics Accept header after the run and fails the process if the
// exposition does not parse strictly or carries no trace-ID exemplars —
// a live-scrape regression check that rides along with every soak.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"atomique/internal/obs"
)

type result struct {
	class      string
	status     int // 0 = transport error
	latency    time.Duration
	retryAfter bool
}

type classSummary struct {
	sent, ok, shed, failed, transport int
	missingRetryAfter                 int
	latencies                         []time.Duration
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

func main() {
	var (
		addr       = flag.String("addr", "http://127.0.0.1:8791", "atomiqued base URL")
		duration   = flag.Duration("duration", 30*time.Second, "total run length")
		rps        = flag.Float64("rps", 20, "baseline interactive arrivals per second")
		batchRPS   = flag.Float64("batch-rps", 5, "baseline batch arrivals per second")
		sampleRPS  = flag.Float64("sample-rps", 0, "baseline /v1/sample arrivals per second (0 = no sampling traffic)")
		sampleN    = flag.Int("sample-shots", 20000, "measurement shots per sampling request")
		burst      = flag.Float64("burst", 10, "rate multiplier during the burst window (1 = no burst)")
		burstStart = flag.Duration("burst-start", 10*time.Second, "burst window start offset")
		burstLen   = flag.Duration("burst-len", 10*time.Second, "burst window length")
		benchmark  = flag.String("benchmark", "H2-4", "benchmark circuit to compile")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		jsonOut    = flag.Bool("json", false, "emit one machine-readable JSON summary on stdout instead of the table")
		scrape     = flag.Bool("scrape", false, "after the run, fetch /metrics as OpenMetrics and fail unless it parses strictly with exemplars")
	)
	flag.Parse()

	client := &http.Client{Timeout: *timeout}
	results := make(chan result, 4096)
	var inflight sync.WaitGroup
	var seed atomic.Int64
	start := time.Now()
	stop := time.After(*duration)

	fire := func(class string) {
		defer inflight.Done()
		// Sampling jobs vary the noise seed instead of the compile seed: each
		// request is a fresh trajectory run (cache miss on the sampling work)
		// over the one cached compilation — the realistic shape of a sharded
		// million-shot job.
		endpoint, payload := "/v1/compile", map[string]any{
			"benchmark": *benchmark,
			"seed":      seed.Add(1),
			"priority":  class,
		}
		if class == "sample" {
			endpoint, payload = "/v1/sample", map[string]any{
				"benchmark": *benchmark,
				"noiseSeed": seed.Add(1),
				"shots":     *sampleN,
			}
		}
		body, _ := json.Marshal(payload)
		t0 := time.Now()
		resp, err := client.Post(*addr+endpoint, "application/json", bytes.NewReader(body))
		if err != nil {
			results <- result{class: class}
			return
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drained for keep-alive reuse
		resp.Body.Close()
		results <- result{
			class:      class,
			status:     resp.StatusCode,
			latency:    time.Since(t0),
			retryAfter: resp.Header.Get("Retry-After") != "",
		}
	}

	// Open-loop generator: arrivals keep coming at the scheduled rate whether
	// or not earlier requests finished, so a saturated server sees real queue
	// pressure instead of the closed-loop self-throttling artifact.
	generate := func(class string, baseRPS float64, done <-chan struct{}) {
		defer inflight.Done()
		if baseRPS <= 0 {
			return
		}
		for {
			elapsed := time.Since(start)
			rate := baseRPS
			if *burst > 1 && elapsed >= *burstStart && elapsed < *burstStart+*burstLen {
				rate = baseRPS * *burst
			}
			select {
			case <-done:
				return
			case <-time.After(time.Duration(float64(time.Second) / rate)):
				inflight.Add(1)
				go fire(class)
			}
		}
	}

	// Sample the worker target so the report shows the pool tracking load.
	targets := make(chan []int, 1)
	sampleDone := make(chan struct{})
	go func() {
		type stats struct {
			WorkersTarget int `json:"workersTarget"`
		}
		var trajectory []int
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-sampleDone:
				targets <- trajectory
				return
			case <-tick.C:
				resp, err := client.Get(*addr + "/v1/stats")
				if err != nil {
					continue
				}
				var st stats
				json.NewDecoder(resp.Body).Decode(&st) //nolint:errcheck // best-effort sample
				resp.Body.Close()
				if n := len(trajectory); n == 0 || trajectory[n-1] != st.WorkersTarget {
					trajectory = append(trajectory, st.WorkersTarget)
				}
			}
		}
	}()

	genDone := make(chan struct{})
	inflight.Add(3)
	go generate("interactive", *rps, genDone)
	go generate("batch", *batchRPS, genDone)
	go generate("sample", *sampleRPS, genDone)

	collected := make(map[string]*classSummary)
	for _, c := range []string{"interactive", "batch", "sample"} {
		collected[c] = &classSummary{}
	}
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		for r := range results {
			s := collected[r.class]
			s.sent++
			switch {
			case r.status == 0:
				s.transport++
			case r.status < 300:
				s.ok++
				s.latencies = append(s.latencies, r.latency)
			case r.status == http.StatusTooManyRequests:
				s.shed++
				if !r.retryAfter {
					s.missingRetryAfter++
				}
			default:
				s.failed++
			}
		}
	}()

	<-stop
	close(genDone)
	inflight.Wait()
	close(results)
	<-collectorDone
	close(sampleDone)

	type classReport struct {
		Sent              int     `json:"sent"`
		OK                int     `json:"ok"`
		Shed              int     `json:"shed"`
		Failed            int     `json:"failed"`
		Transport         int     `json:"transport"`
		MissingRetryAfter int     `json:"missingRetryAfter"`
		P50Ms             float64 `json:"p50Ms"`
		P90Ms             float64 `json:"p90Ms"`
		P99Ms             float64 `json:"p99Ms"`
	}
	report := struct {
		Classes       map[string]classReport `json:"classes"`
		WorkersTarget []int                  `json:"workersTarget"`
	}{Classes: make(map[string]classReport)}

	exit := 0
	for _, class := range []string{"interactive", "batch", "sample"} {
		s := collected[class]
		if class == "sample" && s.sent == 0 {
			continue
		}
		sort.Slice(s.latencies, func(i, j int) bool { return s.latencies[i] < s.latencies[j] })
		p50 := percentile(s.latencies, 50)
		p90 := percentile(s.latencies, 90)
		p99 := percentile(s.latencies, 99)
		report.Classes[class] = classReport{
			Sent: s.sent, OK: s.ok, Shed: s.shed, Failed: s.failed, Transport: s.transport,
			MissingRetryAfter: s.missingRetryAfter,
			P50Ms:             float64(p50) / float64(time.Millisecond),
			P90Ms:             float64(p90) / float64(time.Millisecond),
			P99Ms:             float64(p99) / float64(time.Millisecond),
		}
		if !*jsonOut {
			fmt.Printf("%-12s sent=%d ok=%d shed=%d failed=%d transport=%d p50=%s p90=%s p99=%s\n",
				class, s.sent, s.ok, s.shed, s.failed, s.transport,
				p50.Round(time.Millisecond), p90.Round(time.Millisecond), p99.Round(time.Millisecond))
		}
		if s.failed > 0 || s.transport > 0 {
			fmt.Fprintf(os.Stderr, "loadgen: %s: %d failed, %d transport errors\n", class, s.failed, s.transport)
			exit = 1
		}
		if s.missingRetryAfter > 0 {
			fmt.Fprintf(os.Stderr, "loadgen: %s: %d shed responses lacked Retry-After\n", class, s.missingRetryAfter)
			exit = 1
		}
	}
	report.WorkersTarget = <-targets

	if *scrape {
		if err := scrapeOpenMetrics(client, *addr); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: scrape: %v\n", err)
			exit = 1
		} else if !*jsonOut {
			fmt.Println("openmetrics scrape: parsed with exemplars")
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(&report) //nolint:errcheck // stdout
	} else {
		fmt.Printf("workersTarget trajectory: %v\n", report.WorkersTarget)
	}
	os.Exit(exit)
}

// scrapeOpenMetrics fetches /metrics with the OpenMetrics Accept header and
// verifies the server's live exposition the same way the smoke check does:
// strict parse, exemplars present, terminated by # EOF.
func scrapeOpenMetrics(client *http.Client, addr string) error {
	req, err := http.NewRequest(http.MethodGet, addr+"/metrics", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "application/openmetrics-text") {
		return fmt.Errorf("content type %q", resp.Header.Get("Content-Type"))
	}
	if _, err := obs.ParseExposition(bytes.NewReader(raw)); err != nil {
		return fmt.Errorf("exposition invalid: %w", err)
	}
	if !strings.Contains(string(raw), `# {trace_id="`) {
		return fmt.Errorf("no exemplars in exposition")
	}
	if !strings.HasSuffix(strings.TrimRight(string(raw), "\n"), "# EOF") {
		return fmt.Errorf("exposition does not end with # EOF")
	}
	return nil
}
