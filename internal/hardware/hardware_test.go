package hardware

import (
	"math"
	"testing"
)

func TestNeutralAtomTableI(t *testing.T) {
	p := NeutralAtom()
	if p.Fidelity2Q != 0.9975 || p.Fidelity1Q != 0.99992 {
		t.Errorf("gate fidelities = %v/%v", p.Fidelity2Q, p.Fidelity1Q)
	}
	if p.Time2Q != 380e-9 || p.Time1Q != 625e-9 {
		t.Errorf("gate times = %v/%v", p.Time2Q, p.Time1Q)
	}
	if p.AtomDistance != 15e-6 || p.RydbergRadius != 2.5e-6 {
		t.Errorf("geometry = %v/%v", p.AtomDistance, p.RydbergRadius)
	}
	if p.AtomDistance < 6*p.RydbergRadius*(1-1e-12) {
		t.Errorf("pitch below 6 r_b")
	}
	if p.NvibMax != 33 || p.NvibCool != 15 || p.Lambda != 0.109 {
		t.Errorf("vibration params wrong")
	}
}

func TestSuperconducting(t *testing.T) {
	p := Superconducting()
	if p.Time2Q != 480e-9 || p.Time1Q != 35.2e-9 {
		t.Errorf("gate times = %v/%v", p.Time2Q, p.Time1Q)
	}
	if math.Abs(p.CoherenceT1-8.012e-3) > 1e-9 {
		t.Errorf("T1 = %v, want 8.012ms (10x scaled)", p.CoherenceT1)
	}
	// Equalised gate fidelities.
	if p.Fidelity2Q != 0.9975 {
		t.Errorf("f2Q = %v", p.Fidelity2Q)
	}
}

func TestConfigBasics(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.NumArrays() != 3 {
		t.Errorf("NumArrays = %d, want 3", cfg.NumArrays())
	}
	if cfg.Capacity() != 300 {
		t.Errorf("Capacity = %d, want 300", cfg.Capacity())
	}
	caps := cfg.Capacities()
	if len(caps) != 3 || caps[0] != 100 || caps[1] != 100 || caps[2] != 100 {
		t.Errorf("Capacities = %v", caps)
	}
	if cfg.Array(0) != cfg.SLM || cfg.Array(1) != cfg.AODs[0] {
		t.Errorf("Array indexing wrong")
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestSquareConfig(t *testing.T) {
	cfg := SquareConfig(8, 3)
	if cfg.NumArrays() != 4 || cfg.Capacity() != 4*64 {
		t.Errorf("SquareConfig wrong: %+v", cfg)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{SLM: ArraySpec{0, 5}, AODs: []ArraySpec{{5, 5}}, Params: NeutralAtom()},
		{SLM: ArraySpec{5, 5}, Params: NeutralAtom()},
		{SLM: ArraySpec{5, 5}, AODs: []ArraySpec{{0, 5}}, Params: NeutralAtom()},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated unexpectedly", i)
		}
	}
	// Pitch below 6 r_b.
	cfg := DefaultConfig()
	cfg.Params.AtomDistance = 5 * cfg.Params.RydbergRadius
	if err := cfg.Validate(); err == nil {
		t.Errorf("sub-6rb pitch validated")
	}
}

func TestParkOffsetsKeepIdleAtomsOutOfRydbergRange(t *testing.T) {
	cfg := DefaultConfig()
	rb := cfg.Params.RydbergRadius
	// Idle AOD atom at any site must be >= 2.5 r_b from every SLM grid point
	// and from idle atoms of the other AOD in x and y separately.
	for a := 1; a < cfg.NumArrays(); a++ {
		s := Site{Array: a, Row: 3, Col: 3}
		x, y := cfg.HomeX(s), cfg.HomeY(s)
		for r := 0; r < cfg.SLM.Rows; r++ {
			for c := 0; c < cfg.SLM.Cols; c++ {
				dx := x - cfg.SiteX(c)
				dy := y - cfg.SiteY(r)
				if d := math.Hypot(dx, dy); d < 2.5*rb {
					t.Fatalf("idle AOD%d atom within 2.5 r_b of SLM(%d,%d): %g", a-1, r, c, d)
				}
			}
		}
	}
	// Two different AODs parked at the same nominal site must not collide.
	s1 := Site{Array: 1, Row: 2, Col: 2}
	s2 := Site{Array: 2, Row: 2, Col: 2}
	d := math.Hypot(cfg.HomeX(s1)-cfg.HomeX(s2), cfg.HomeY(s1)-cfg.HomeY(s2))
	if d < 2.5*rb {
		t.Errorf("idle AOD atoms within Rydberg range of each other: %g", d)
	}
}

func TestSiteString(t *testing.T) {
	if s := (Site{0, 2, 3}).String(); s != "SLM(2,3)" {
		t.Errorf("String = %q", s)
	}
	if s := (Site{2, 0, 5}).String(); s != "AOD1(0,5)" {
		t.Errorf("String = %q", s)
	}
}
