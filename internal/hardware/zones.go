package hardware

import (
	"fmt"
	"math"
)

// ZoneGeometry describes a zoned neutral-atom machine in the style of ZAP
// (arXiv:2411.14037) and the Bluvstein et al. logical-processor experiments:
// a storage zone holding idle qubits in an SLM grid, a Rydberg entangling
// zone with a fixed number of parallel gate sites, and a readout zone, with
// atoms shuttled between zones by movable tweezers. All distances are in
// meters; the site pitch inside the storage grid is Params.AtomDistance of
// the parameter set the machine runs with.
//
// The geometry is laid out vertically: storage row 0 is the edge adjacent to
// the entangling zone (ZoneGap away), and the readout zone sits ReadoutGap
// beyond the entangling zone. Gate sites are spread evenly across the
// storage width at twice the site pitch, so simultaneously shuttled pairs
// stay outside each other's Rydberg blockade.
type ZoneGeometry struct {
	// StorageRows and StorageCols size the storage-zone SLM grid.
	StorageRows int `json:"storageRows"`
	StorageCols int `json:"storageCols"`
	// EntangleSites is the number of gate sites in the entangling zone. Each
	// site executes one two-qubit gate per shuttle round, so it bounds the
	// round's 2Q parallelism the way AOD geometry bounds the flat router's.
	EntangleSites int `json:"entangleSites"`
	// ZoneGap is the edge-to-edge storage-to-entangling distance.
	ZoneGap float64 `json:"zoneGap"`
	// ReadoutGap is the entangling-to-readout distance; every qubit crosses
	// both gaps once in the final readout shuttle.
	ReadoutGap float64 `json:"readoutGap"`
	// ShuttleSpeed is the mean inter-zone transport speed in m/s.
	ShuttleSpeed float64 `json:"shuttleSpeed"`
}

// Default zone-geometry constants: a 10x10 storage grid with ten gate
// sites, a 60 um storage-entangling gap, a 100 um entangling-readout gap,
// and the 0.55 m/s transport speed of the Bluvstein et al. shuttling
// experiments.
const (
	defaultZoneSide     = 10
	defaultZoneGap      = 60e-6
	defaultReadoutGap   = 100e-6
	defaultShuttleSpeed = 0.55
)

// maxZoneDim bounds the per-axis zone sizes so a hostile serialized geometry
// cannot overflow capacity arithmetic or drive absurd allocations.
const maxZoneDim = 1 << 12

// DefaultZones returns the default zoned machine: a 10x10 storage grid and
// ten entangling gate sites.
func DefaultZones() ZoneGeometry {
	return ZoneGeometry{
		StorageRows:   defaultZoneSide,
		StorageCols:   defaultZoneSide,
		EntangleSites: defaultZoneSide,
		ZoneGap:       defaultZoneGap,
		ReadoutGap:    defaultReadoutGap,
		ShuttleSpeed:  defaultShuttleSpeed,
	}
}

// ZonesFor returns the default zoned machine grown to a square storage grid
// just large enough for nQubits, with one gate site per storage column —
// the same auto-sizing rule DefaultFPQAConfig applies to the flat machine.
func ZonesFor(nQubits int) ZoneGeometry {
	z := DefaultZones()
	side := defaultZoneSide
	for side*side < nQubits {
		side++
	}
	z.StorageRows, z.StorageCols, z.EntangleSites = side, side, side
	return z
}

// StorageCapacity returns the number of storage-zone sites.
func (z ZoneGeometry) StorageCapacity() int { return z.StorageRows * z.StorageCols }

// Validate checks that the geometry is physically sensible.
func (z ZoneGeometry) Validate() error {
	if z.StorageRows <= 0 || z.StorageCols <= 0 {
		return fmt.Errorf("hardware: storage zone %dx%d invalid", z.StorageRows, z.StorageCols)
	}
	if z.StorageRows > maxZoneDim || z.StorageCols > maxZoneDim {
		return fmt.Errorf("hardware: storage zone %dx%d exceeds the %d per-axis limit",
			z.StorageRows, z.StorageCols, maxZoneDim)
	}
	if z.EntangleSites <= 0 || z.EntangleSites > maxZoneDim {
		return fmt.Errorf("hardware: entangling zone needs 1..%d gate sites, got %d",
			maxZoneDim, z.EntangleSites)
	}
	if !(z.ZoneGap > 0) || math.IsInf(z.ZoneGap, 0) {
		return fmt.Errorf("hardware: zone gap must be positive and finite, got %g", z.ZoneGap)
	}
	if z.ReadoutGap < 0 || math.IsInf(z.ReadoutGap, 0) || math.IsNaN(z.ReadoutGap) {
		return fmt.Errorf("hardware: readout gap must be non-negative and finite, got %g", z.ReadoutGap)
	}
	if !(z.ShuttleSpeed > 0) || math.IsInf(z.ShuttleSpeed, 0) {
		return fmt.Errorf("hardware: shuttle speed must be positive and finite, got %g", z.ShuttleSpeed)
	}
	return nil
}

// StorageSite returns the grid position of storage slot i in row-major,
// nearest-zone-first order: slot 0 is row 0 (adjacent to the entangling
// zone), column 0.
func (z ZoneGeometry) StorageSite(i int) Site {
	return Site{Array: 0, Row: i / z.StorageCols, Col: i % z.StorageCols}
}

// GateSiteX returns the horizontal coordinate of entangling-zone gate site s
// given pitch p.AtomDistance: sites sit at twice the storage pitch, centred
// on the storage width.
func (z ZoneGeometry) GateSiteX(s int, p Params) float64 {
	center := float64(z.StorageCols-1) * p.AtomDistance / 2
	return center + (float64(s)-float64(z.EntangleSites-1)/2)*2*p.AtomDistance
}

// ShuttleDistance returns the storage-to-gate-site transport distance for an
// atom at storage site st travelling to gate site s: the vertical drop to
// the entangling row plus the horizontal offset, combined Euclidean.
func (z ZoneGeometry) ShuttleDistance(st Site, s int, p Params) float64 {
	dy := z.ZoneGap + float64(st.Row)*p.AtomDistance
	dx := math.Abs(float64(st.Col)*p.AtomDistance - z.GateSiteX(s, p))
	return math.Hypot(dx, dy)
}

// ReadoutDistance returns the storage-to-readout transport distance for an
// atom at storage site st: across the entangling zone to the readout zone.
func (z ZoneGeometry) ReadoutDistance(st Site, p Params) float64 {
	return z.ZoneGap + z.ReadoutGap + float64(st.Row)*p.AtomDistance
}

// ShuttleTime returns the duration of a transport of distance d: the
// constant-speed travel time, floored at the flat machine's per-move time so
// short hops keep the Fig 12 trajectory envelope (moving faster than the
// TimePerMove profile would over-heat the atom in the Sec. IV model).
func (z ZoneGeometry) ShuttleTime(d float64, p Params) float64 {
	t := d / z.ShuttleSpeed
	if t < p.TimePerMove {
		t = p.TimePerMove
	}
	return t
}
