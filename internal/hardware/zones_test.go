package hardware

import (
	"math"
	"testing"
)

func TestDefaultZonesValid(t *testing.T) {
	if err := DefaultZones().Validate(); err != nil {
		t.Fatalf("default zones invalid: %v", err)
	}
}

func TestZonesForGrows(t *testing.T) {
	cases := []struct {
		n, side int
	}{
		{0, 10}, {1, 10}, {100, 10}, {101, 11}, {150, 13}, {400, 20},
	}
	for _, tc := range cases {
		z := ZonesFor(tc.n)
		if z.StorageRows != tc.side || z.StorageCols != tc.side {
			t.Errorf("ZonesFor(%d) storage = %dx%d, want %dx%d",
				tc.n, z.StorageRows, z.StorageCols, tc.side, tc.side)
		}
		if z.StorageCapacity() < tc.n {
			t.Errorf("ZonesFor(%d) capacity %d too small", tc.n, z.StorageCapacity())
		}
		if err := z.Validate(); err != nil {
			t.Errorf("ZonesFor(%d) invalid: %v", tc.n, err)
		}
	}
}

func TestZoneValidateRejects(t *testing.T) {
	base := DefaultZones()
	mutate := map[string]func(*ZoneGeometry){
		"zero rows":      func(z *ZoneGeometry) { z.StorageRows = 0 },
		"negative cols":  func(z *ZoneGeometry) { z.StorageCols = -3 },
		"huge rows":      func(z *ZoneGeometry) { z.StorageRows = maxZoneDim + 1 },
		"no gate sites":  func(z *ZoneGeometry) { z.EntangleSites = 0 },
		"huge sites":     func(z *ZoneGeometry) { z.EntangleSites = maxZoneDim + 1 },
		"zero gap":       func(z *ZoneGeometry) { z.ZoneGap = 0 },
		"nan gap":        func(z *ZoneGeometry) { z.ZoneGap = math.NaN() },
		"inf gap":        func(z *ZoneGeometry) { z.ZoneGap = math.Inf(1) },
		"negative rgap":  func(z *ZoneGeometry) { z.ReadoutGap = -1 },
		"nan rgap":       func(z *ZoneGeometry) { z.ReadoutGap = math.NaN() },
		"zero speed":     func(z *ZoneGeometry) { z.ShuttleSpeed = 0 },
		"negative speed": func(z *ZoneGeometry) { z.ShuttleSpeed = -0.5 },
	}
	for name, fn := range mutate {
		z := base
		fn(&z)
		if err := z.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, z)
		}
	}
}

func TestStorageSiteOrder(t *testing.T) {
	z := DefaultZones()
	if s := z.StorageSite(0); s.Row != 0 || s.Col != 0 {
		t.Errorf("slot 0 at %v, want row 0 col 0", s)
	}
	if s := z.StorageSite(z.StorageCols); s.Row != 1 || s.Col != 0 {
		t.Errorf("slot %d at %v, want row 1 col 0", z.StorageCols, s)
	}
}

func TestShuttleDistancesMonotone(t *testing.T) {
	z := DefaultZones()
	p := NeutralAtom()
	// Farther storage rows shuttle farther to the same gate site.
	near := z.ShuttleDistance(Site{Row: 0, Col: 4}, 4, p)
	far := z.ShuttleDistance(Site{Row: 5, Col: 4}, 4, p)
	if near >= far {
		t.Errorf("row 0 distance %g not below row 5 distance %g", near, far)
	}
	if near < z.ZoneGap {
		t.Errorf("distance %g below the zone gap %g", near, z.ZoneGap)
	}
	// Readout crosses both gaps.
	if d := z.ReadoutDistance(Site{Row: 0}, p); d != z.ZoneGap+z.ReadoutGap {
		t.Errorf("readout distance %g, want %g", d, z.ZoneGap+z.ReadoutGap)
	}
}

func TestShuttleTimeFloor(t *testing.T) {
	z := DefaultZones()
	p := NeutralAtom()
	// A short hop is floored at the per-move time; a long transport runs at
	// the shuttle speed.
	if got := z.ShuttleTime(1e-6, p); got != p.TimePerMove {
		t.Errorf("short shuttle time %g, want floor %g", got, p.TimePerMove)
	}
	d := 1e-3
	if got, want := z.ShuttleTime(d, p), d/z.ShuttleSpeed; math.Abs(got-want) > 1e-12 {
		t.Errorf("long shuttle time %g, want %g", got, want)
	}
}
