// Package hardware models the reconfigurable-atom-array (RAA) machine of the
// Atomique paper: one fixed SLM array plus one or more movable AOD arrays,
// together with the physical parameters of Table I. Geometry is expressed on
// a site grid with pitch Params.AtomDistance; AOD rows/columns move in
// continuous coordinates but target SLM grid sites when executing gates.
package hardware

import "fmt"

// Params are the physical device parameters (Table I of the paper, with the
// 10x coherence scaling the evaluation section applies). All times are in
// seconds, all distances in meters.
type Params struct {
	Fidelity2Q    float64 // CZ fidelity (scaled: 0.9975)
	Fidelity1Q    float64 // 1Q fidelity (scaled: 0.99992)
	Time2Q        float64 // CZ duration (380 ns)
	Time1Q        float64 // 1Q duration (625 ns)
	CoherenceT1   float64 // coherence time (15 s scaled)
	AtomDistance  float64 // SLM site pitch (15 um)
	RydbergRadius float64 // r_b (2.5 um; pitch = 6 r_b)
	TimePerMove   float64 // per movement stage (300 us)
	TransferTime  float64 // SLM<->AOD transfer (15 us)
	TransferLossP float64 // atom loss per transfer (0.0068)
	Xzpf          float64 // zero-point size (38 nm)
	Omega0        float64 // trap angular frequency (2*pi*80 kHz)
	Lambda        float64 // heating-to-error coefficient (0.109)
	NvibMax       float64 // vibrational quantum ceiling (33)
	NvibCool      float64 // cooling threshold (15)
}

// NeutralAtom returns the Table I neutral-atom parameters.
func NeutralAtom() Params {
	return Params{
		Fidelity2Q:    0.9975,
		Fidelity1Q:    0.99992,
		Time2Q:        380e-9,
		Time1Q:        625e-9,
		CoherenceT1:   15.0,
		AtomDistance:  15e-6,
		RydbergRadius: 2.5e-6,
		TimePerMove:   300e-6,
		TransferTime:  15e-6,
		TransferLossP: 0.0068,
		Xzpf:          38e-9,
		Omega0:        2 * 3.141592653589793 * 80e3,
		Lambda:        0.109,
		NvibMax:       33,
		NvibCool:      15,
	}
}

// Superconducting returns the IBM parameters of Table I with gate fidelities
// equalised to the neutral-atom values (the paper's unbiased-comparison
// setting) and coherence scaled 10x like the atom devices.
func Superconducting() Params {
	p := NeutralAtom()
	p.Time2Q = 480e-9
	p.Time1Q = 35.2e-9
	p.CoherenceT1 = 801.2e-6 * 10
	// No movement on superconducting hardware.
	p.TimePerMove = 0
	return p
}

// ArraySpec is the row/column extent of one trap array.
type ArraySpec struct {
	Rows, Cols int
}

// Capacity returns the number of trap sites.
func (a ArraySpec) Capacity() int { return a.Rows * a.Cols }

// Config describes an RAA machine: the SLM array, the AOD arrays, and the
// physical parameters. The paper's default is a 10x10 SLM with two 10x10
// AODs.
type Config struct {
	SLM    ArraySpec
	AODs   []ArraySpec
	Params Params
}

// DefaultConfig returns the paper's default machine: 10x10 SLM + two 10x10
// AODs with Table I parameters.
func DefaultConfig() Config {
	return Config{
		SLM:    ArraySpec{10, 10},
		AODs:   []ArraySpec{{10, 10}, {10, 10}},
		Params: NeutralAtom(),
	}
}

// BuildConfig returns a machine with an slm x slm SLM and aods AOD arrays of
// aodSize x aodSize, using parameters p. It is the shared constructor behind
// the CLI/daemon machine flags and the service's per-request overrides.
func BuildConfig(slm, aods, aodSize int, p Params) Config {
	cfg := Config{SLM: ArraySpec{Rows: slm, Cols: slm}, Params: p}
	for i := 0; i < aods; i++ {
		cfg.AODs = append(cfg.AODs, ArraySpec{Rows: aodSize, Cols: aodSize})
	}
	return cfg
}

// SquareConfig returns a machine with one SLM and numAODs AOD arrays, all
// size x size, with Table I parameters.
func SquareConfig(size, numAODs int) Config {
	return BuildConfig(size, numAODs, size, NeutralAtom())
}

// NumArrays returns the total array count (SLM + AODs).
func (c Config) NumArrays() int { return 1 + len(c.AODs) }

// Array returns the spec of array index a (0 = SLM, 1.. = AODs).
func (c Config) Array(a int) ArraySpec {
	if a == 0 {
		return c.SLM
	}
	return c.AODs[a-1]
}

// Capacity returns total trap sites across all arrays.
func (c Config) Capacity() int {
	t := c.SLM.Capacity()
	for _, a := range c.AODs {
		t += a.Capacity()
	}
	return t
}

// Capacities returns per-array capacities indexed like Array.
func (c Config) Capacities() []int {
	caps := make([]int, c.NumArrays())
	for i := range caps {
		caps[i] = c.Array(i).Capacity()
	}
	return caps
}

// Validate checks that the configuration is physically sensible.
func (c Config) Validate() error {
	if c.SLM.Rows <= 0 || c.SLM.Cols <= 0 {
		return fmt.Errorf("hardware: SLM spec %dx%d invalid", c.SLM.Rows, c.SLM.Cols)
	}
	if len(c.AODs) == 0 {
		return fmt.Errorf("hardware: at least one AOD array required")
	}
	for i, a := range c.AODs {
		if a.Rows <= 0 || a.Cols <= 0 {
			return fmt.Errorf("hardware: AOD %d spec %dx%d invalid", i, a.Rows, a.Cols)
		}
	}
	p := c.Params
	if p.AtomDistance < 6*p.RydbergRadius*(1-1e-12) {
		return fmt.Errorf("hardware: atom distance %g below 6*r_b = %g",
			p.AtomDistance, 6*p.RydbergRadius)
	}
	if p.TimePerMove <= 0 {
		return fmt.Errorf("hardware: TimePerMove must be positive")
	}
	return nil
}

// Site is a trap location: array index (0 = SLM) and row/column within it.
type Site struct {
	Array, Row, Col int
}

// String renders the site as e.g. "SLM(2,3)" or "AOD1(0,5)".
func (s Site) String() string {
	if s.Array == 0 {
		return fmt.Sprintf("SLM(%d,%d)", s.Row, s.Col)
	}
	return fmt.Sprintf("AOD%d(%d,%d)", s.Array-1, s.Row, s.Col)
}

// HomeX returns the nominal (idle) x-coordinate of the site in meters.
// AOD array k (1-based) parks at a diagonal interstitial offset of
// d*k/(m+1) past the grid line, where m is the AOD count. With the default
// two-AOD machine this keeps every idle atom >= 2.5 r_b from all SLM atoms
// and from idle atoms of the other AOD. For m > 2 the offsets compress and
// the geometric guarantee weakens; the router never relies on park
// coordinates for interaction checks (parked rows/columns are
// non-interacting by construction), so this only affects visualisation.
func (c Config) HomeX(s Site) float64 {
	d := c.Params.AtomDistance
	return float64(s.Col)*d + c.parkOffset(s.Array)
}

// HomeY returns the nominal (idle) y-coordinate of the site in meters.
func (c Config) HomeY(s Site) float64 {
	d := c.Params.AtomDistance
	return float64(s.Row)*d + c.parkOffset(s.Array)
}

func (c Config) parkOffset(array int) float64 {
	if array == 0 {
		return 0
	}
	m := float64(len(c.AODs))
	return c.Params.AtomDistance * float64(array) / (m + 1)
}

// SiteX returns the grid x-coordinate of SLM column col.
func (c Config) SiteX(col int) float64 { return float64(col) * c.Params.AtomDistance }

// SiteY returns the grid y-coordinate of SLM row row.
func (c Config) SiteY(row int) float64 { return float64(row) * c.Params.AtomDistance }
