package regress

import (
	"context"
	"math"
	"testing"

	"atomique/internal/bench"
	"atomique/internal/compiler"
	"atomique/internal/noise"

	_ "atomique/internal/compiler/backends" // register the built-in backends
)

// noiseValidationShots sizes the per-(backend, circuit) trajectory runs: at
// corpus fidelities (>= ~0.9) the 4-sigma binomial band is ~2% of a unit,
// tight enough to catch a miscounted channel while keeping the suite fast.
const noiseValidationShots = 3000

// TestNoiseValidationRegressCorpus is the end-to-end empirical validation of
// the analytic fidelity pipeline: every registered backend compiles the
// regression corpus (the QASM testdata plus two small generated benchmarks —
// the wide generated entries exceed the dense simulator), its execution
// witness is replayed through the Monte-Carlo trajectory engine, and the
// stated tolerance is asserted:
//
//   - the noise model's closed form reproduces the backend's reported
//     analytic fidelity to float precision (for backends with a fidelity
//     model), proving the channel derivation covers every factor;
//   - trajectory survival agrees with the analytic fidelity within 4 sigma
//     of the binomial sampling error — the Monte-Carlo estimator is
//     unbiased for the analytic product;
//   - the mean trajectory overlap is never below survival (errors can be
//     invisible, never negative), with the gap bounding the analytic
//     model's pessimism.
//
// Clifford entries at paper-scale widths (64-256 qubits) ride the same
// battery through the stabilizer engine — far beyond the dense wall — and
// additionally assert the automatic dispatch picked it.
func TestNoiseValidationRegressCorpus(t *testing.T) {
	backends := compiler.List()
	if len(backends) < 6 {
		t.Fatalf("registry has %d backends, want at least the 6 built-ins", len(backends))
	}
	entries := corpus(t)
	small := []corpusEntry{
		{name: "gen-ghz-6", circ: bench.GHZ(6)},
		{name: "gen-qaoa-regu3-8", circ: bench.QAOARegular(8, 3, 15)},
	}
	for _, e := range entries {
		if e.circ.N <= 8 {
			small = append(small, e)
		}
	}
	wide := []corpusEntry{
		{name: "gen-ghz-64", circ: bench.GHZ(64)},
		{name: "gen-bv-64", circ: bench.BV(64, 16, goldenSeed)},
		{name: "gen-teleport-65", circ: bench.TeleportChain(65)},
		{name: "gen-ghz-256", circ: bench.GHZ(256)},
	}
	validate := func(t *testing.T, b compiler.Backend, e corpusEntry, wantEngine string) {
		t.Helper()
		opts := compiler.Options{Seed: goldenSeed, NoisyShots: noiseValidationShots, NoiseSeed: 13}
		res, err := b.Compile(context.Background(), compiler.Target{}, e.circ, opts)
		if err != nil {
			t.Fatalf("%s: compile: %v", e.name, err)
		}
		if err := compiler.AttachNoise(context.Background(), compiler.Target{}, res, opts); err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		est := res.Noise
		if est == nil {
			t.Fatalf("%s: no noise estimate attached", e.name)
		}
		if wantEngine != "" && est.Engine != wantEngine {
			t.Errorf("%s: trajectory engine %q, want %q", e.name, est.Engine, wantEngine)
		}

		if analytic := res.Metrics.FidelityTotal(); analytic > 0 {
			if d := math.Abs(est.Analytic-analytic) / analytic; d > 1e-9 {
				t.Errorf("%s: model closed form %v != reported analytic fidelity %v (rel diff %v)",
					e.name, est.Analytic, analytic, d)
			}
		}

		tol := 4*est.SurvivalSigma() + 1e-9
		if d := math.Abs(est.Survival - est.Analytic); d > tol {
			t.Errorf("%s: trajectory survival %v vs analytic %v: |diff| %v exceeds the 4-sigma tolerance %v",
				e.name, est.Survival, est.Analytic, d, tol)
		}

		if est.Fidelity < est.Survival-1e-12 {
			t.Errorf("%s: mean overlap %v below survival %v — errored trajectories scored impossibly low",
				e.name, est.Fidelity, est.Survival)
		}
		if est.CILow > est.Fidelity || est.CIHigh < est.Fidelity {
			t.Errorf("%s: CI [%v, %v] does not bracket the mean %v",
				e.name, est.CILow, est.CIHigh, est.Fidelity)
		}
	}
	for _, b := range backends {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			t.Parallel()
			for _, e := range small {
				validate(t, b, e, "")
			}
			for _, e := range wide {
				validate(t, b, e, noise.EngineStab)
			}
		})
	}
}
