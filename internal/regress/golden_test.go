// Package regress is the compiler's golden-snapshot regression harness: it
// compiles a fixed corpus — every OpenQASM file under internal/qasm/testdata
// plus three generated Table II-scale benchmarks — through the registered
// compiler backends and diffs the canonical result envelope (report.Envelope
// with wall times zeroed) against checked-in goldens. The full corpus runs
// on the default "atomique" backend; the QASM files additionally run on the
// "qpilot" and "zoned" backends so non-core output is snapshot-protected
// too. Any
// refactor that changes compile output, however subtly, shows up as a
// reviewable JSON diff. Refresh the goldens after an intentional change with
//
//	go test ./internal/regress -run TestGolden -update
package regress

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"atomique/internal/bench"
	"atomique/internal/circuit"
	"atomique/internal/compiler"
	"atomique/internal/qasm"
	"atomique/internal/report"

	_ "atomique/internal/compiler/backends" // register the built-in backends
)

var update = flag.Bool("update", false, "rewrite golden files with current compile output")

// goldenSeed fixes every corpus compilation; goldens are per-seed artifacts.
const goldenSeed = 7

// corpusEntry is one named circuit of the regression corpus.
type corpusEntry struct {
	name string
	circ *circuit.Circuit
	qasm bool // parsed from the qasm testdata (also snapshotted on qpilot)
}

// corpus returns the regression inputs: the qasm testdata files (parsed
// fresh each run, so parser regressions surface here too) and three
// generated benchmarks covering the Table II circuit families (QAOA, QV,
// BV) at sizes that exercise SWAP insertion, batching, and cooling.
func corpus(t *testing.T) []corpusEntry {
	t.Helper()
	var entries []corpusEntry
	files, err := filepath.Glob(filepath.Join("..", "qasm", "testdata", "*.qasm"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no qasm testdata found")
	}
	sort.Strings(files)
	for _, f := range files {
		src, err := os.Open(f)
		if err != nil {
			t.Fatal(err)
		}
		c, err := qasm.Parse(src)
		src.Close()
		if err != nil {
			t.Fatalf("parse %s: %v", f, err)
		}
		name := strings.TrimSuffix(filepath.Base(f), ".qasm")
		entries = append(entries, corpusEntry{name: "qasm-" + name, circ: c, qasm: true})
	}
	entries = append(entries,
		corpusEntry{name: "gen-qaoa-regu5-40", circ: bench.QAOARegular(40, 5, 15)},
		corpusEntry{name: "gen-qv-32", circ: bench.QV(32, 32, 3)},
		corpusEntry{name: "gen-bv-50", circ: bench.BV(50, 22, 4)},
	)
	return entries
}

// compileCanonical runs one corpus circuit through a registered backend
// (auto target: the paper-default machine) and renders its canonical
// envelope as indented JSON.
func compileCanonical(t *testing.T, backend string, c *circuit.Circuit) []byte {
	t.Helper()
	b, ok := compiler.Lookup(backend)
	if !ok {
		t.Fatalf("backend %q not registered", backend)
	}
	res, err := b.Compile(context.Background(), compiler.Target{}, c, compiler.Options{Seed: goldenSeed})
	if err != nil {
		t.Fatal(err)
	}
	env := report.NewEnvelope(c.Fingerprint(), res.Metrics)
	env.Backend = res.Backend
	env.Extra = res.Extra
	env.TimedOut = res.TimedOut
	js, err := json.MarshalIndent(env.Canonical(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(js, '\n')
}

// checkGolden diffs (or, with -update, rewrites) one golden file.
func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("compile output diverged from golden %s.\ngot:\n%s\nwant:\n%s\n(if intentional, refresh with -update)",
			path, got, want)
	}
}

func TestGolden(t *testing.T) {
	for _, e := range corpus(t) {
		t.Run(e.name, func(t *testing.T) {
			got := compileCanonical(t, "atomique", e.circ)
			checkGolden(t, filepath.Join("testdata", e.name+".golden.json"), got)
		})
	}
}

// TestGoldenQpilot snapshots a non-core backend on the QASM corpus, so
// baseline refactors (the flying-ancilla accounting, the shared fidelity
// model) are regression-protected like the main pipeline.
func TestGoldenQpilot(t *testing.T) {
	for _, e := range corpus(t) {
		if !e.qasm {
			continue
		}
		t.Run(e.name, func(t *testing.T) {
			got := compileCanonical(t, "qpilot", e.circ)
			checkGolden(t, filepath.Join("testdata", "qpilot-"+e.name+".golden.json"), got)
		})
	}
}

// TestGoldenZoned snapshots the zoned backend on the QASM corpus: the
// shuttle-round schedule, transfer accounting, and zoned fidelity model are
// regression-protected alongside the flat pipeline. Refresh with -update
// after an intentional model change.
func TestGoldenZoned(t *testing.T) {
	for _, e := range corpus(t) {
		if !e.qasm {
			continue
		}
		t.Run(e.name, func(t *testing.T) {
			got := compileCanonical(t, "zoned", e.circ)
			checkGolden(t, filepath.Join("testdata", "zoned-"+e.name+".golden.json"), got)
		})
	}
}

// TestGoldenStableAcrossRuns guards the premise of the golden corpus: two
// in-process compiles of the same corpus entry yield identical canonical
// bytes (no map-ordering or wall-clock leakage).
func TestGoldenStableAcrossRuns(t *testing.T) {
	entries := corpus(t)
	e := entries[0]
	for _, backend := range []string{"atomique", "qpilot"} {
		a := compileCanonical(t, backend, e.circ)
		b := compileCanonical(t, backend, e.circ)
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: canonical envelope unstable across runs:\n%s\nvs\n%s", backend, a, b)
		}
	}
}
