// Package qpilot implements the Q-Pilot comparator of Fig 19. Q-Pilot
// (Wang et al., DAC 2024) compiles QAOA and quantum-simulation circuits for
// field-programmable qubit arrays using *flying ancillas*: movable ancilla
// qubits ferry parity between the fixed compute qubits, which removes SWAP
// chains and shortens depth at the cost of extra two-qubit gates per term.
//
// This analytic reference reproduces that trade-off mechanistically: each
// two-qubit interaction term executes through an ancilla parity ladder
// (four CX with the ancilla instead of one direct interaction), one ancilla
// per two compute qubits works in parallel, and ancilla shuttling accrues
// the same per-move heating as any AOD motion. The result: depth below
// Atomique's, gate counts 2-5x above, and overall fidelity below — the
// Fig 19 ordering.
package qpilot

import (
	"atomique/internal/circuit"
	"atomique/internal/fidelity"
	"atomique/internal/hardware"
	"atomique/internal/metrics"
	"atomique/internal/move"
)

// GatesPerTerm is the two-qubit cost of one interaction term executed via a
// flying ancilla: CX(a->anc), CX(b->anc), [RZ], CX(b->anc), CX(a->anc).
const GatesPerTerm = 4

// Compile schedules circ's two-qubit interaction terms through flying
// ancillas and returns evaluation metrics comparable with core.Compile.
func Compile(circ *circuit.Circuit, seed int64) metrics.Compiled {
	return CompileOn(hardware.NeutralAtom(), circ, seed)
}

// CompileOn is Compile with explicit physical parameters; the
// unified-backend adapter uses it to honour FPQA-target parameter overrides.
func CompileOn(params hardware.Params, circ *circuit.Circuit, _ int64) metrics.Compiled {
	terms := circ.Num2Q()
	n := circ.N
	ancillas := (n + 1) / 2

	gates2Q := terms * GatesPerTerm
	// Each stage runs up to `ancillas` ancilla ladders; a ladder spans four
	// sequential CX layers, but ladders pipeline two deep, so effective
	// depth is 2 layers per ladder wave.
	waves := ceilDiv(terms, ancillas)
	depth := 2 * waves
	if terms > 0 && depth == 0 {
		depth = 1
	}

	// Movement trace: every wave moves each busy ancilla roughly two site
	// pitches (pick up, drop off); heating accrues accordingly and cooling
	// fires at the usual threshold.
	var trace fidelity.MovementTrace
	perMove := move.DeltaNvib(2*params.AtomDistance, params.TimePerMove, params)
	nvib := make([]float64, ancillas)
	coolings := 0
	for w := 0; w < waves; w++ {
		busy := ancillas
		if rem := terms - w*ancillas; rem < busy {
			busy = rem
		}
		for a := 0; a < busy; a++ {
			nvib[a] += perMove
			trace.MoveNvib = append(trace.MoveNvib, nvib[a])
			// Four gates touch this ancilla at its current heat.
			for g := 0; g < GatesPerTerm; g++ {
				trace.GateNvib = append(trace.GateNvib, nvib[a])
			}
		}
		trace.StageQubits = append(trace.StageQubits, n+ancillas)
		trace.StageMoveTime = append(trace.StageMoveTime, params.TimePerMove)
		hot := false
		for _, v := range nvib {
			if v > params.NvibCool {
				hot = true
				break
			}
		}
		if hot {
			trace.CoolingAtomCounts = append(trace.CoolingAtomCounts, ancillas)
			for i := range nvib {
				nvib[i] = 0
			}
			coolings++
		}
	}

	n1q := circ.Num1Q() + terms // the RZ inside each parity ladder
	n1qLayers := circ.Num1QLayers() + waves
	static := fidelity.Static{
		NQubits:   n + ancillas,
		N1Q:       n1q,
		N1QLayers: n1qLayers,
		N2Q:       gates2Q,
		Depth2Q:   depth,
	}
	bd := fidelity.Evaluate(params, static, trace)
	execTime := float64(waves)*(params.TimePerMove+4*params.Time2Q) +
		float64(n1qLayers)*params.Time1Q
	return metrics.Compiled{
		Arch:          "Q-Pilot",
		NQubits:       n,
		N2Q:           gates2Q,
		N1Q:           n1q,
		Depth2Q:       depth,
		N1QLayers:     n1qLayers,
		ExecutionTime: execTime,
		MoveStages:    waves,
		TotalMoveDist: float64(len(trace.MoveNvib)) * 2 * params.AtomDistance,
		CoolingEvents: coolings,
		Fidelity:      bd,
	}
}

// Ancillas returns the flying-ancilla count for an n-qubit circuit (one per
// two compute qubits).
func Ancillas(n int) int { return (n + 1) / 2 }

// Program emits the executable flying-ancilla circuit over n + Ancillas(n)
// qubits: compute qubits keep their indices, ancillas occupy the tail, and
// every two-qubit interaction runs through a parity ladder on the ancilla
// serving its wave (term t uses ancilla t mod Ancillas(n), matching the
// scheduling model CompileOn accounts). Each ladder uncomputes, so every
// ancilla ends in |0>. The stream is the semantic witness the backend
// verification replays; metrics come from the analytic model, which counts
// only the four ladder CX per term (the 1Q dressing that lowers CX/CZ onto
// the native ZZ-parity ladder is free in that accounting).
func Program(circ *circuit.Circuit) *circuit.Circuit {
	n := circ.N
	anc := Ancillas(n)
	out := circuit.New(n + anc)
	term := 0
	for _, g := range circ.Gates {
		if !g.IsTwoQubit() {
			out.Add(g)
			continue
		}
		a := n + term%anc
		term++
		emitTerm(out, g, a)
	}
	return out
}

// emitTerm lowers one two-qubit gate onto a parity ladder through ancilla a.
func emitTerm(out *circuit.Circuit, g circuit.Gate, a int) {
	switch g.Op {
	case circuit.OpZZ:
		emitLadder(out, g.Q0, g.Q1, a, g.Param)
	case circuit.OpCZ:
		emitCZ(out, g.Q0, g.Q1, a)
	case circuit.OpCX:
		out.H(g.Q1)
		emitCZ(out, g.Q0, g.Q1, a)
		out.H(g.Q1)
	case circuit.OpSWAP:
		for i := 0; i < 3; i++ {
			c, t := g.Q0, g.Q1
			if i == 1 {
				c, t = t, c
			}
			out.H(t)
			emitCZ(out, c, t, a)
			out.H(t)
		}
	default:
		panic("qpilot: unknown two-qubit op " + g.Op.String())
	}
}

// emitCZ realises CZ(q0,q1) as RZ(pi/2) on both qubits followed by a
// ZZ(-pi/2) parity ladder, exact up to global phase.
func emitCZ(out *circuit.Circuit, q0, q1, a int) {
	const halfPi = 3.141592653589793 / 2
	out.RZ(q0, halfPi)
	out.RZ(q1, halfPi)
	emitLadder(out, q0, q1, a, -halfPi)
}

// emitLadder realises exp(-i theta/2 Z⊗Z) on (q0,q1) via the ancilla parity
// ladder: CX into the ancilla from both qubits, RZ(theta) on the ancilla,
// uncompute.
func emitLadder(out *circuit.Circuit, q0, q1, a int, theta float64) {
	out.CX(q0, a)
	out.CX(q1, a)
	out.RZ(a, theta)
	out.CX(q1, a)
	out.CX(q0, a)
}

// AvgParallelism reports interaction terms retired per ancilla wave.
func AvgParallelism(m metrics.Compiled) float64 {
	if m.MoveStages == 0 {
		return 0
	}
	return float64(m.N2Q) / GatesPerTerm / float64(m.MoveStages)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
