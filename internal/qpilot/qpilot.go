// Package qpilot implements the Q-Pilot comparator of Fig 19. Q-Pilot
// (Wang et al., DAC 2024) compiles QAOA and quantum-simulation circuits for
// field-programmable qubit arrays using *flying ancillas*: movable ancilla
// qubits ferry parity between the fixed compute qubits, which removes SWAP
// chains and shortens depth at the cost of extra two-qubit gates per term.
//
// This analytic reference reproduces that trade-off mechanistically: each
// two-qubit interaction term executes through an ancilla parity ladder
// (four CX with the ancilla instead of one direct interaction), one ancilla
// per two compute qubits works in parallel, and ancilla shuttling accrues
// the same per-move heating as any AOD motion. The result: depth below
// Atomique's, gate counts 2-5x above, and overall fidelity below — the
// Fig 19 ordering.
package qpilot

import (
	"atomique/internal/circuit"
	"atomique/internal/fidelity"
	"atomique/internal/hardware"
	"atomique/internal/metrics"
	"atomique/internal/move"
)

// GatesPerTerm is the two-qubit cost of one interaction term executed via a
// flying ancilla: CX(a->anc), CX(b->anc), [RZ], CX(b->anc), CX(a->anc).
const GatesPerTerm = 4

// Compile schedules circ's two-qubit interaction terms through flying
// ancillas and returns evaluation metrics comparable with core.Compile.
func Compile(circ *circuit.Circuit, seed int64) metrics.Compiled {
	return CompileOn(hardware.NeutralAtom(), circ, seed)
}

// CompileOn is Compile with explicit physical parameters; the
// unified-backend adapter uses it to honour FPQA-target parameter overrides.
func CompileOn(params hardware.Params, circ *circuit.Circuit, _ int64) metrics.Compiled {
	terms := circ.Num2Q()
	n := circ.N
	ancillas := (n + 1) / 2

	gates2Q := terms * GatesPerTerm
	// Each stage runs up to `ancillas` ancilla ladders; a ladder spans four
	// sequential CX layers, but ladders pipeline two deep, so effective
	// depth is 2 layers per ladder wave.
	waves := ceilDiv(terms, ancillas)
	depth := 2 * waves
	if terms > 0 && depth == 0 {
		depth = 1
	}

	// Movement trace: every wave moves each busy ancilla roughly two site
	// pitches (pick up, drop off); heating accrues accordingly and cooling
	// fires at the usual threshold.
	var trace fidelity.MovementTrace
	perMove := move.DeltaNvib(2*params.AtomDistance, params.TimePerMove, params)
	nvib := make([]float64, ancillas)
	coolings := 0
	for w := 0; w < waves; w++ {
		busy := ancillas
		if rem := terms - w*ancillas; rem < busy {
			busy = rem
		}
		for a := 0; a < busy; a++ {
			nvib[a] += perMove
			trace.MoveNvib = append(trace.MoveNvib, nvib[a])
			// Four gates touch this ancilla at its current heat.
			for g := 0; g < GatesPerTerm; g++ {
				trace.GateNvib = append(trace.GateNvib, nvib[a])
			}
		}
		trace.StageQubits = append(trace.StageQubits, n+ancillas)
		trace.StageMoveTime = append(trace.StageMoveTime, params.TimePerMove)
		hot := false
		for _, v := range nvib {
			if v > params.NvibCool {
				hot = true
				break
			}
		}
		if hot {
			trace.CoolingAtomCounts = append(trace.CoolingAtomCounts, ancillas)
			for i := range nvib {
				nvib[i] = 0
			}
			coolings++
		}
	}

	n1q := circ.Num1Q() + terms // the RZ inside each parity ladder
	n1qLayers := circ.Num1QLayers() + waves
	static := fidelity.Static{
		NQubits:   n + ancillas,
		N1Q:       n1q,
		N1QLayers: n1qLayers,
		N2Q:       gates2Q,
		Depth2Q:   depth,
	}
	bd := fidelity.Evaluate(params, static, trace)
	execTime := float64(waves)*(params.TimePerMove+4*params.Time2Q) +
		float64(n1qLayers)*params.Time1Q
	return metrics.Compiled{
		Arch:          "Q-Pilot",
		NQubits:       n,
		N2Q:           gates2Q,
		N1Q:           n1q,
		Depth2Q:       depth,
		N1QLayers:     n1qLayers,
		ExecutionTime: execTime,
		MoveStages:    waves,
		TotalMoveDist: float64(len(trace.MoveNvib)) * 2 * params.AtomDistance,
		CoolingEvents: coolings,
		Fidelity:      bd,
	}
}

// AvgParallelism reports interaction terms retired per ancilla wave.
func AvgParallelism(m metrics.Compiled) float64 {
	if m.MoveStages == 0 {
		return 0
	}
	return float64(m.N2Q) / GatesPerTerm / float64(m.MoveStages)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
