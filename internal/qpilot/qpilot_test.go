package qpilot

import (
	"testing"

	"atomique/internal/bench"
	"atomique/internal/circuit"
	"atomique/internal/core"
	"atomique/internal/hardware"
)

func TestCompileBasics(t *testing.T) {
	c := bench.QAOARandom(10, 0.5, 11)
	m := Compile(c, 1)
	if m.N2Q != c.Num2Q()*GatesPerTerm {
		t.Errorf("N2Q = %d, want %d", m.N2Q, c.Num2Q()*GatesPerTerm)
	}
	if m.Depth2Q == 0 || m.FidelityTotal() <= 0 || m.FidelityTotal() > 1 {
		t.Errorf("implausible metrics: %+v", m)
	}
	if AvgParallelism(m) <= 0 {
		t.Errorf("AvgParallelism = %v", AvgParallelism(m))
	}
}

func TestFig19Ordering(t *testing.T) {
	// Fig 19: versus Atomique, Q-Pilot has lower depth, more two-qubit
	// gates, and lower overall fidelity on QAOA/QSim workloads.
	cfg := hardware.DefaultConfig()
	for _, b := range []bench.Benchmark{
		{Name: "QAOA-regu5-40", Circ: bench.QAOARegular(40, 5, 15)},
		{Name: "QSim-rand-20", Circ: bench.QSimRandom(20, 10, 0.5, 6)},
	} {
		qp := Compile(b.Circ, 1)
		at, err := core.Compile(cfg, b.Circ, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if qp.Depth2Q >= at.Metrics.Depth2Q {
			t.Errorf("%s: Q-Pilot depth %d >= Atomique %d",
				b.Name, qp.Depth2Q, at.Metrics.Depth2Q)
		}
		if qp.N2Q <= at.Metrics.N2Q {
			t.Errorf("%s: Q-Pilot 2Q %d <= Atomique %d",
				b.Name, qp.N2Q, at.Metrics.N2Q)
		}
		if qp.FidelityTotal() >= at.Metrics.FidelityTotal() {
			t.Errorf("%s: Q-Pilot fidelity %v >= Atomique %v",
				b.Name, qp.FidelityTotal(), at.Metrics.FidelityTotal())
		}
	}
}

func TestEmptyCircuit(t *testing.T) {
	m := Compile(circuit.New(4), 1)
	if m.N2Q != 0 || m.Depth2Q != 0 {
		t.Errorf("empty circuit produced work: %+v", m)
	}
}
