package bench

import "testing"

func TestByName(t *testing.T) {
	b, ok := ByName("QAOA-regu5-40")
	if !ok || b.Name != "QAOA-regu5-40" || b.Circ.N != 40 {
		t.Fatalf("ByName = %+v, %v", b, ok)
	}
	// Case-insensitive, canonical name returned.
	b, ok = ByName("h2-4")
	if !ok || b.Name != "H2-4" {
		t.Fatalf("case-insensitive lookup = %+v, %v", b, ok)
	}
	if _, ok := ByName("no-such-benchmark"); ok {
		t.Error("unknown name reported found")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != len(Table2Suite()) {
		t.Fatalf("Names() = %d entries, suite has %d", len(names), len(Table2Suite()))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate name %q", n)
		}
		seen[n] = true
		if _, ok := ByName(n); !ok {
			t.Errorf("Names() entry %q not resolvable via ByName", n)
		}
	}
}
