package bench

import (
	"strings"
	"sync"

	"atomique/internal/circuit"
)

// Benchmark is a named workload with its Table II category.
type Benchmark struct {
	Name string
	Type string // "Generic", "QSim", or "QAOA"
	Circ *circuit.Circuit
}

// Fig13Suite returns the 17 benchmarks of the paper's main comparison
// (Fig 13), regenerated from fixed seeds.
func Fig13Suite() []Benchmark {
	return []Benchmark{
		{"HHL-7", "Generic", HHL(7, 2, 1)},
		{"Mermin-Bell-10", "Generic", MerminBell(10, 58, 2)},
		{"QV-32", "Generic", QV(32, 32, 3)},
		{"BV-50", "Generic", BV(50, 22, 4)},
		{"BV-70", "Generic", BV(70, 36, 5)},
		{"QSim-rand-20", "QSim", QSimRandom(20, 10, 0.5, 6)},
		{"QSim-rand-40", "QSim", QSimRandom(40, 10, 0.5, 7)},
		{"QSim-rand-20-p0.3", "QSim", QSimRandom(20, 10, 0.3, 8)},
		{"QSim-rand-40-p0.3", "QSim", QSimRandom(40, 10, 0.3, 9)},
		{"H2-4", "QSim", H2()},
		{"LiH-8", "QSim", LiH(8, 10)},
		{"QAOA-rand-10", "QAOA", QAOARandom(10, 0.5, 11)},
		{"QAOA-rand-20", "QAOA", QAOARandom(20, 0.5, 12)},
		{"QAOA-rand-30", "QAOA", QAOARandom(30, 0.5, 13)},
		{"QAOA-rand-50", "QAOA", QAOARandom(50, 0.5, 14)},
		{"QAOA-regu5-40", "QAOA", QAOARegular(40, 5, 15)},
		{"QAOA-regu6-100", "QAOA", QAOARegular(100, 6, 16)},
	}
}

// Fig14Suite returns the small benchmarks used against the solver-based
// compilers (Fig 14); Tan-Solver is feasible only at this scale.
func Fig14Suite() []Benchmark {
	return []Benchmark{
		{"Mermin-Bell-5", "Generic", MerminBell(5, 15, 21)},
		{"VQE-10", "Generic", VQE(10, 22)},
		{"VQE-20", "Generic", VQE(20, 23)},
		{"Adder-10", "Generic", Adder(10)},
		{"BV-14", "Generic", BV(14, 13, 24)},
		{"QSim-rand-5", "QSim", QSimRandom(5, 10, 0.5, 25)},
		{"QSim-rand-10", "QSim", QSimRandom(10, 10, 0.5, 26)},
		{"H2-4", "QSim", H2()},
		{"QAOA-rand-5", "QAOA", QAOARandom(5, 0.5, 27)},
		{"QAOA-regu3-20", "QAOA", QAOARegular(20, 3, 28)},
		{"QAOA-regu4-10", "QAOA", QAOARegular(10, 4, 29)},
	}
}

// cachedSuite memoises the Table II suite for the registry lookups, which
// sit on the compile service's per-request path; regenerating all ~27
// circuits per lookup would dominate small compiles. The returned benchmarks
// share circuit pointers, which every consumer treats as read-only.
var cachedSuite = sync.OnceValue(Table2Suite)

// ByName returns the Table II benchmark with the given name
// (case-insensitive). It is the registry lookup behind the CLI -bench flag
// and the service's named-benchmark compile requests. The returned circuit
// is shared; treat it as read-only.
func ByName(name string) (Benchmark, bool) {
	for _, b := range cachedSuite() {
		if strings.EqualFold(b.Name, name) {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Names returns every Table II benchmark name in suite order.
func Names() []string {
	suite := cachedSuite()
	names := make([]string, len(suite))
	for i, b := range suite {
		names[i] = b.Name
	}
	return names
}

// Table2Suite returns every benchmark of Table II (the union of the Fig 13
// and Fig 14 suites, large circuits first, deduplicated).
func Table2Suite() []Benchmark {
	out := Fig13Suite()
	seen := map[string]bool{}
	for _, b := range out {
		seen[b.Name] = true
	}
	for _, b := range Fig14Suite() {
		if !seen[b.Name] {
			out = append(out, b)
			seen[b.Name] = true
		}
	}
	return out
}
