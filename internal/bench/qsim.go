package bench

import (
	"math"
	"math/rand"

	"atomique/internal/circuit"
)

// Pauli labels a single-qubit Pauli operator within a string.
type Pauli byte

// Pauli operators.
const (
	PauliI Pauli = iota
	PauliX
	PauliY
	PauliZ
)

// PauliString is a Pauli operator on n qubits (one entry per qubit).
type PauliString []Pauli

// Weight returns the number of non-identity entries.
func (p PauliString) Weight() int {
	w := 0
	for _, op := range p {
		if op != PauliI {
			w++
		}
	}
	return w
}

// Support returns the indices of non-identity entries in ascending order.
func (p PauliString) Support() []int {
	var s []int
	for i, op := range p {
		if op != PauliI {
			s = append(s, i)
		}
	}
	return s
}

// TrotterStep appends exp(-i theta P / 2) for the Pauli string to c using
// the standard CNOT-ladder construction: basis changes into Z (H for X,
// RZ-H-RZ for Y), a CX ladder onto the last support qubit, an RZ, the
// inverse ladder, and inverse basis changes.
func TrotterStep(c *circuit.Circuit, p PauliString, theta float64) {
	sup := p.Support()
	if len(sup) == 0 {
		return
	}
	basisIn := func(q int) {
		switch p[q] {
		case PauliX:
			c.H(q)
		case PauliY:
			c.RZ(q, -math.Pi/2)
			c.H(q)
			c.RZ(q, math.Pi)
		}
	}
	basisOut := func(q int) {
		switch p[q] {
		case PauliX:
			c.H(q)
		case PauliY:
			c.RZ(q, -math.Pi)
			c.H(q)
			c.RZ(q, math.Pi/2)
		}
	}
	for _, q := range sup {
		basisIn(q)
	}
	last := sup[len(sup)-1]
	for i := 0; i+1 < len(sup); i++ {
		c.CX(sup[i], last)
	}
	c.RZ(last, theta)
	for i := len(sup) - 2; i >= 0; i-- {
		c.CX(sup[i], last)
	}
	for _, q := range sup {
		basisOut(q)
	}
}

// QSimRandom returns a random Hamiltonian-simulation circuit: `strings`
// random Pauli strings on n qubits where each qubit is non-identity with
// probability p (uniform over X/Y/Z), Trotterised with TrotterStep. The
// paper's QSim-rand-N benchmarks use strings=10, p=0.5.
func QSimRandom(n, strings int, p float64, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n)
	for s := 0; s < strings; s++ {
		ps := randomPauliString(n, p, rng)
		TrotterStep(c, ps, rng.Float64()*2*math.Pi)
	}
	return c
}

func randomPauliString(n int, p float64, rng *rand.Rand) PauliString {
	ps := make(PauliString, n)
	for q := 0; q < n; q++ {
		if rng.Float64() < p {
			ps[q] = Pauli(1 + rng.Intn(3))
		}
	}
	return ps
}

// h2Terms is the canonical 15-term Bravyi-Kitaev Pauli decomposition of the
// H2 molecular Hamiltonian at bond distance 0.7414 A on 4 qubits
// (coefficients omitted — the compiler responds only to structure).
var h2Terms = []string{
	"ZIII", "IZII", "IIZI", "IIIZ",
	"ZZII", "ZIZI", "ZIIZ", "IZZI", "IZIZ", "IIZZ",
	"XXYY", "YYXX", "XYYX", "YXXY",
	"ZZZZ",
}

// H2 returns the Trotterised H2 molecule circuit on 4 qubits (one Trotter
// step over the 15-term Hamiltonian), approx. 40 two-qubit gates as in
// Table II.
func H2() *circuit.Circuit {
	c := circuit.New(4)
	rng := rand.New(rand.NewSource(2))
	for _, t := range h2Terms {
		TrotterStep(c, parsePauli(t), rng.Float64()*2*math.Pi)
	}
	return c
}

// LiH returns a Trotterised LiH molecule circuit on n qubits. The exact
// tapered LiH Hamiltonian is not redistributable here; instead we generate a
// molecular-statistics Pauli set (terms with mean weight ~3.45, matching the
// published operator pool) sized so that the total two-qubit gate count
// approaches Table II's 1134. The compiler sees the same Trotter structure
// either way (substitution documented in DESIGN.md).
func LiH(n int, seed int64) *circuit.Circuit {
	if n < 4 {
		panic("bench: LiH needs >= 4 qubits")
	}
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n)
	// Target: sum of 2*(weight-1) across terms ~= 1134.
	const target2Q = 1134
	total := 0
	for total < target2Q {
		// Molecular Hamiltonians are dominated by weight-2..4 terms with an
		// exchange tail of weight-4 XXYY-type strings.
		w := 2 + rng.Intn(3) // 2..4
		if rng.Float64() < 0.2 {
			w = 4
		}
		if w > n {
			w = n
		}
		ps := make(PauliString, n)
		for _, q := range rng.Perm(n)[:w] {
			ps[q] = Pauli(1 + rng.Intn(3))
		}
		TrotterStep(c, ps, rng.Float64()*2*math.Pi)
		total += 2 * (w - 1)
	}
	return c
}

func parsePauli(s string) PauliString {
	ps := make(PauliString, len(s))
	for i, ch := range s {
		switch ch {
		case 'I':
			ps[i] = PauliI
		case 'X':
			ps[i] = PauliX
		case 'Y':
			ps[i] = PauliY
		case 'Z':
			ps[i] = PauliZ
		default:
			panic("bench: bad Pauli letter " + string(ch))
		}
	}
	return ps
}
