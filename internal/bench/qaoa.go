package bench

import (
	"math"
	"math/rand"

	"atomique/internal/circuit"
	"atomique/internal/graphs"
)

// QAOARandom returns one QAOA layer for a MaxCut instance on the random
// graph G(n, p): a ZZ gate per edge followed by an RX mixer per qubit.
// The paper's QAOA-rand-N benchmarks use p = 0.5. ZZ counts as a single
// two-qubit interaction on atom hardware (Table II accounting).
func QAOARandom(n int, p float64, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	edges := graphs.RandomGraph(n, p, rng)
	return qaoaFromEdges(n, edges, rng)
}

// QAOARegular returns one QAOA layer on a d-regular graph over n vertices
// (the QAOA-reguD-N benchmarks).
func QAOARegular(n, d int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	edges := graphs.RegularGraph(n, d, rng)
	return qaoaFromEdges(n, edges, rng)
}

// QAOAFromEdges returns one QAOA layer for an explicit edge list.
func QAOAFromEdges(n int, edges []graphs.Edge, seed int64) *circuit.Circuit {
	return qaoaFromEdges(n, edges, rand.New(rand.NewSource(seed)))
}

func qaoaFromEdges(n int, edges []graphs.Edge, rng *rand.Rand) *circuit.Circuit {
	c := circuit.New(n)
	gamma := rng.Float64() * math.Pi
	beta := rng.Float64() * math.Pi
	for _, e := range edges {
		c.ZZ(e.A, e.B, gamma)
	}
	for q := 0; q < n; q++ {
		c.RX(q, beta)
	}
	return c
}

// PhaseCode returns a phase-flip repetition-code syndrome-extraction circuit
// on n qubits (alternating data/ancilla on a line) over the given number of
// rounds: each round applies H on every ancilla, CZ to both data neighbours,
// and H again. Used by the constraint-relaxation and occupancy studies
// (Figs 22-24, "Phase-Code-N").
func PhaseCode(n, rounds int) *circuit.Circuit {
	if n < 3 {
		panic("bench: PhaseCode needs >= 3 qubits")
	}
	c := circuit.New(n)
	for q := 0; q < n; q += 2 { // data qubits at even indices
		c.H(q)
	}
	for r := 0; r < rounds; r++ {
		for a := 1; a < n; a += 2 { // ancillas at odd indices
			c.H(a)
		}
		for a := 1; a < n; a += 2 {
			c.CZ(a, a-1)
			if a+1 < n {
				c.CZ(a, a+1)
			}
		}
		for a := 1; a < n; a += 2 {
			c.H(a)
		}
	}
	return c
}
