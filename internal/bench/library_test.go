package bench

import (
	"math"
	"math/cmplx"
	"testing"

	"atomique/internal/sim"
)

func TestQFTStructure(t *testing.T) {
	c := QFT(5)
	// n H gates, C(n,2) CZ ladders, floor(n/2)*3 swap CX.
	wantCZ := 10
	wantCX := 6
	gotCZ, gotCX := 0, 0
	for _, g := range c.Gates {
		switch g.Op.String() {
		case "cz":
			gotCZ++
		case "cx":
			gotCX++
		}
	}
	if gotCZ != wantCZ || gotCX != wantCX {
		t.Errorf("QFT(5) cz=%d cx=%d, want %d/%d", gotCZ, gotCX, wantCZ, wantCX)
	}
}

func TestWStateAmplitudes(t *testing.T) {
	// The W state has amplitude 1/sqrt(n) on each single-excitation basis
	// state and zero elsewhere.
	for _, n := range []int{2, 3, 4, 5} {
		c := WState(n)
		s := sim.MustNew(n)
		s.Run(c)
		want := 1 / math.Sqrt(float64(n))
		for idx, amp := range s.Amp {
			ones := popcount(idx)
			mag := cmplx.Abs(amp)
			switch ones {
			case 1:
				if math.Abs(mag-want) > 1e-9 {
					t.Fatalf("W%d: |amp[%b]| = %v, want %v", n, idx, mag, want)
				}
			default:
				if mag > 1e-9 {
					t.Fatalf("W%d: spurious amplitude %v at %b", n, mag, idx)
				}
			}
		}
	}
	mustPanic(t, func() { WState(1) })
}

func popcount(x int) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestGroverAmplifiesMarkedState(t *testing.T) {
	// After one Grover round on 3 search qubits the marked state |111> has
	// probability 25/32 ~ 0.78 (vs 1/8 uniform). The circuit spans one
	// ancilla (in |0> before and after), so the target basis index is 0b0111.
	c := Grover(3, 1)
	s := sim.MustNew(c.N)
	s.Run(c)
	p := prob(s, 0b0111)
	if math.Abs(p-25.0/32.0) > 1e-9 {
		t.Errorf("Grover(3,1): P(|111>) = %v, want 25/32", p)
	}
	// Two search qubits need no ancilla and one round finds the target
	// deterministically.
	c2 := Grover(2, 1)
	s2 := sim.MustNew(c2.N)
	s2.Run(c2)
	if p := prob(s2, 0b11); math.Abs(p-1) > 1e-9 {
		t.Errorf("Grover(2,1): P(|11>) = %v, want 1", p)
	}
	mustPanic(t, func() { Grover(1, 1) })
}

func prob(s *sim.State, idx int) float64 {
	return real(s.Amp[idx])*real(s.Amp[idx]) + imag(s.Amp[idx])*imag(s.Amp[idx])
}

func TestQPEGateCountsScale(t *testing.T) {
	c := QPE(4, math.Pi/4)
	if c.N != 5 {
		t.Fatalf("QPE qubits = %d, want 5", c.N)
	}
	// 4 controlled-U (2 CX each) + inverse QFT (C(4,2) CZ).
	if c.Num2Q() != 8+6 {
		t.Errorf("QPE 2Q = %d, want 14", c.Num2Q())
	}
}

func TestLibraryCircuitsCompile(t *testing.T) {
	// Every library circuit must survive the full Atomique pipeline (smoke
	// coverage is in internal/core; here we check generator validity).
	for _, c := range []interface{ NumGates() int }{
		QFT(8), WState(8), Grover(6, 2), QPE(5, 0.3),
	} {
		if c.NumGates() == 0 {
			t.Errorf("library circuit empty")
		}
	}
}
