package bench

import (
	"math"
	"testing"

	"atomique/internal/sim"
	"atomique/internal/stab"
)

// TestTeleportChainTeleports checks the semantic contract dense-exactly at
// small widths: after the chain, qubit n-1 holds the |+i> payload and every
// consumed qubit is left in |+>, i.e. the state is a uniform-magnitude
// product with phase i exactly when the receiver bit is set.
func TestTeleportChainTeleports(t *testing.T) {
	for _, n := range []int{3, 5, 7} {
		c := TeleportChain(n)
		s := sim.MustNew(n)
		s.Run(c)
		want := 1 / math.Sqrt(float64(int(1)<<n))
		base := s.Amp[0] // fixes the global phase
		if mag := math.Hypot(real(base), imag(base)); math.Abs(mag-want) > 1e-9 {
			t.Fatalf("TeleportChain(%d): |amp[0]| = %v, want uniform %v", n, mag, want)
		}
		for idx, amp := range s.Amp {
			expect := base
			if idx>>(n-1)&1 == 1 {
				expect *= complex(0, 1) // payload phase i on the receiver
			}
			if d := math.Hypot(real(amp-expect), imag(amp-expect)); d > 1e-9 {
				t.Fatalf("TeleportChain(%d): amp[%b] = %v, want %v", n, idx, amp, expect)
			}
		}
	}
	mustPanic(t, func() { TeleportChain(4) })
	mustPanic(t, func() { TeleportChain(1) })
}

// TestSurfaceCodeCycleStructure pins the rotated-code accounting: 2d^2-1
// qubits, d^2-1 stabilizers ((d^2-1)/2 of each type), 4d(d-1) CX and d^2-1 H
// per round, Clifford throughout, and wide instances run on the tableau.
func TestSurfaceCodeCycleStructure(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		for _, rounds := range []int{1, 2} {
			c := SurfaceCodeCycle(d, rounds)
			if c.N != 2*d*d-1 {
				t.Fatalf("d=%d: qubits = %d, want %d", d, c.N, 2*d*d-1)
			}
			if !c.IsClifford() {
				t.Fatalf("d=%d: surface-code cycle is not Clifford", d)
			}
			cx, h := 0, 0
			for _, g := range c.Gates {
				switch g.Op.String() {
				case "cx":
					cx++
				case "h":
					h++
				}
			}
			if wantCX := rounds * 4 * d * (d - 1); cx != wantCX {
				t.Errorf("d=%d rounds=%d: CX = %d, want %d", d, rounds, cx, wantCX)
			}
			if wantH := rounds * (d*d - 1); h != wantH {
				t.Errorf("d=%d rounds=%d: H = %d, want %d", d, rounds, h, wantH)
			}
		}
	}
	// d=7, 97 qubits: far beyond the dense wall, trivial for the tableau.
	tb, err := stab.FromCircuit(SurfaceCodeCycle(7, 2))
	if err != nil {
		t.Fatalf("tableau replay of SurfaceCodeCycle(7,2): %v", err)
	}
	if tb.N() != 97 {
		t.Fatalf("tableau width %d, want 97", tb.N())
	}
	mustPanic(t, func() { SurfaceCodeCycle(2, 1) })
	mustPanic(t, func() { SurfaceCodeCycle(3, 0) })
}
