package bench

import (
	"math"

	"atomique/internal/circuit"
)

// QFT returns the n-qubit quantum Fourier transform in the standard
// H + controlled-phase ladder decomposition (each controlled phase = one CZ
// plus two RZ corrections at the counting level used throughout this repo),
// with the closing SWAP network expanded into CX triplets.
func QFT(n int) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < n; i++ {
		c.H(i)
		for j := i + 1; j < n; j++ {
			theta := math.Pi / float64(int(1)<<uint(j-i))
			c.RZ(i, theta/2)
			c.RZ(j, theta/2)
			c.CZ(j, i)
		}
	}
	for i := 0; i < n/2; i++ {
		a, b := i, n-1-i
		c.CX(a, b)
		c.CX(b, a)
		c.CX(a, b)
	}
	return c
}

// WState returns an n-qubit W-state preparation circuit using the standard
// cascade of controlled rotations (each expanded to RY + CX + RY + CX) and
// CX chain.
func WState(n int) *circuit.Circuit {
	if n < 2 {
		panic("bench: WState needs >= 2 qubits")
	}
	c := circuit.New(n)
	c.X(0)
	for i := 0; i < n-1; i++ {
		theta := 2 * math.Acos(math.Sqrt(1/float64(n-i)))
		// Controlled-RY(theta) from qubit i onto i+1.
		c.RY(i+1, theta/2)
		c.CX(i, i+1)
		c.RY(i+1, -theta/2)
		c.CX(i, i+1)
		// Shift the excitation.
		c.CX(i+1, i)
	}
	return c
}

// Grover returns `iterations` Grover rounds over n search qubits with a
// phase oracle marking the all-ones state. The multi-controlled Z is exact,
// built from a Toffoli ladder into n-2 ancilla qubits (compute, CZ apex,
// uncompute), matching QASMBench's ancilla-based grover_nN circuits; the
// returned circuit spans n + max(0, n-2) qubits (search qubits first).
func Grover(n, iterations int) *circuit.Circuit {
	if n < 2 {
		panic("bench: Grover needs >= 2 search qubits")
	}
	anc := n - 2
	c := circuit.New(n + anc)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	mcz := func() {
		if n == 2 {
			c.CZ(0, 1)
			return
		}
		// Compute AND chain into ancillas n..n+anc-1.
		toffoli(c, 0, 1, n)
		for i := 1; i < anc; i++ {
			toffoli(c, i+1, n+i-1, n+i)
		}
		c.CZ(n+anc-1, n-1)
		for i := anc - 1; i >= 1; i-- {
			toffoli(c, i+1, n+i-1, n+i)
		}
		toffoli(c, 0, 1, n)
	}
	for it := 0; it < iterations; it++ {
		mcz() // oracle: phase flip |1...1>
		for q := 0; q < n; q++ {
			c.H(q)
			c.X(q)
		}
		mcz() // diffusion apex
		for q := 0; q < n; q++ {
			c.X(q)
			c.H(q)
		}
	}
	return c
}

// QPE returns a quantum-phase-estimation circuit with `clock` counting
// qubits over a single-qubit unitary (RZ by phi): controlled-U^(2^k)
// ladders followed by an inverse QFT on the clock register.
func QPE(clock int, phi float64) *circuit.Circuit {
	n := clock + 1
	c := circuit.New(n)
	target := clock
	c.X(target)
	for q := 0; q < clock; q++ {
		c.H(q)
	}
	for q := 0; q < clock; q++ {
		reps := 1 << uint(q)
		// Controlled-RZ(phi*reps) decomposed as RZ/CX/RZ/CX.
		theta := phi * float64(reps)
		c.RZ(target, theta/2)
		c.CX(q, target)
		c.RZ(target, -theta/2)
		c.CX(q, target)
	}
	// Inverse QFT on the clock (same gate counts as QFT).
	for i := clock - 1; i >= 0; i-- {
		for j := clock - 1; j > i; j-- {
			theta := -math.Pi / float64(int(1)<<uint(j-i))
			c.RZ(i, theta/2)
			c.RZ(j, theta/2)
			c.CZ(j, i)
		}
		c.H(i)
	}
	return c
}
