package bench

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"atomique/internal/circuit"
)

func TestBVCounts(t *testing.T) {
	// Table II: BV-50 has 22 two-qubit gates, BV-14 has 13.
	cases := []struct{ n, ones int }{{50, 22}, {70, 36}, {14, 13}}
	for _, tc := range cases {
		c := BV(tc.n, tc.ones, 1)
		if c.Num2Q() != tc.ones {
			t.Errorf("BV(%d,%d) 2Q = %d, want %d", tc.n, tc.ones, c.Num2Q(), tc.ones)
		}
		if c.N != tc.n {
			t.Errorf("BV qubits = %d, want %d", c.N, tc.n)
		}
		// All CNOTs target the oracle qubit.
		for _, g := range c.Gates {
			if g.IsTwoQubit() && g.Q1 != tc.n-1 {
				t.Errorf("BV CNOT target = %d, want %d", g.Q1, tc.n-1)
			}
		}
	}
	mustPanic(t, func() { BV(5, 5, 1) })
}

func TestQVCountsMatchTable2(t *testing.T) {
	// Table II: QV-32 has 1536 two-qubit and 4096 one-qubit gates.
	c := QV(32, 32, 3)
	if c.Num2Q() != 1536 {
		t.Errorf("QV-32 2Q = %d, want 1536", c.Num2Q())
	}
	if c.Num1Q() != 4096 {
		t.Errorf("QV-32 1Q = %d, want 4096", c.Num1Q())
	}
}

func TestGHZ(t *testing.T) {
	c := GHZ(5)
	if c.Num2Q() != 4 || c.Num1Q() != 1 {
		t.Errorf("GHZ counts wrong: %d 2Q, %d 1Q", c.Num2Q(), c.Num1Q())
	}
	if c.Depth2Q() != 4 {
		t.Errorf("GHZ chain depth = %d, want 4", c.Depth2Q())
	}
}

func TestMerminBell(t *testing.T) {
	// Table II: Mermin-Bell-10 has 67 2Q gates with degree per qubit 7.6.
	c := MerminBell(10, 58, 2)
	if c.Num2Q() != 67 {
		t.Errorf("Mermin-Bell-10 2Q = %d, want 67", c.Num2Q())
	}
	s := c.ComputeStats()
	if s.DegreePerQ < 5.5 {
		t.Errorf("Mermin-Bell degree = %v, want high (paper: 7.6)", s.DegreePerQ)
	}
}

func TestHHLScale(t *testing.T) {
	// Table II: HHL-7 has 196 2Q, 794 1Q; our structural rebuild must land
	// in the same regime (within ~25%).
	c := HHL(7, 2, 1)
	if c.N != 7 {
		t.Fatalf("HHL qubits = %d", c.N)
	}
	if c.Num2Q() < 150 || c.Num2Q() > 250 {
		t.Errorf("HHL-7 2Q = %d, want ~196", c.Num2Q())
	}
	mustPanic(t, func() { HHL(3, 1, 1) })
}

func TestAdderMatchesTable2(t *testing.T) {
	// Table II: Adder-10 has exactly 65 two-qubit gates.
	c := Adder(10)
	if c.Num2Q() != 65 {
		t.Errorf("Adder-10 2Q = %d, want 65", c.Num2Q())
	}
	mustPanic(t, func() { Adder(5) })
	mustPanic(t, func() { Adder(2) })
}

func TestVQEMatchesTable2(t *testing.T) {
	// Table II: VQE-10 has 9 2Q and 40 1Q; VQE-20 has 19 2Q and 80 1Q.
	for _, n := range []int{10, 20} {
		c := VQE(n, 1)
		if c.Num2Q() != n-1 {
			t.Errorf("VQE-%d 2Q = %d, want %d", n, c.Num2Q(), n-1)
		}
		if c.Num1Q() != 4*n {
			t.Errorf("VQE-%d 1Q = %d, want %d", n, c.Num1Q(), 4*n)
		}
	}
}

func TestTrotterStepStructure(t *testing.T) {
	c := circuit.New(4)
	TrotterStep(c, parsePauli("XIZY"), 0.3)
	// Weight 3: CX ladder of 2 up + 2 down = 4 CX.
	if c.Num2Q() != 4 {
		t.Errorf("Trotter 2Q = %d, want 4", c.Num2Q())
	}
	// Identity string contributes nothing.
	d := circuit.New(4)
	TrotterStep(d, parsePauli("IIII"), 0.3)
	if d.NumGates() != 0 {
		t.Errorf("identity string emitted %d gates", d.NumGates())
	}
	// Single-qubit string: no CX, just basis change + RZ.
	e := circuit.New(4)
	TrotterStep(e, parsePauli("IZII"), 0.3)
	if e.Num2Q() != 0 || e.Num1Q() != 1 {
		t.Errorf("weight-1 Z string: %d 2Q %d 1Q", e.Num2Q(), e.Num1Q())
	}
}

func TestQSimRandomExpectedCounts(t *testing.T) {
	// QSim-rand-20 with p=0.5, 10 strings: E[2Q] = 10 * 2*(10-1) = 180.
	// Check the mean over seeds lands near 180 (Table II value).
	total := 0
	const trials = 20
	for seed := int64(0); seed < trials; seed++ {
		total += QSimRandom(20, 10, 0.5, seed).Num2Q()
	}
	mean := float64(total) / trials
	if math.Abs(mean-180) > 25 {
		t.Errorf("QSim-rand-20 mean 2Q = %v, want ~180", mean)
	}
}

func TestH2MatchesTable2(t *testing.T) {
	c := H2()
	if c.N != 4 {
		t.Fatalf("H2 qubits = %d, want 4", c.N)
	}
	// Table II: 40 2Q gates. Structure: 6 ZZ terms (2 CX each) + 4 XXYY
	// terms (6 CX each) + ZZZZ (6 CX) = 12+24+6 = 42; allow small slack.
	if c.Num2Q() < 35 || c.Num2Q() > 48 {
		t.Errorf("H2 2Q = %d, want ~40", c.Num2Q())
	}
}

func TestLiHScale(t *testing.T) {
	c := LiH(8, 10)
	// Table II: 1134 2Q gates; generator stops once the target is crossed.
	if c.Num2Q() < 1000 || c.Num2Q() > 1250 {
		t.Errorf("LiH 2Q = %d, want ~1134", c.Num2Q())
	}
	mustPanic(t, func() { LiH(2, 1) })
}

func TestQAOARegularCounts(t *testing.T) {
	// Table II: QAOA-regu5-40 = 100 2Q, 40 1Q; QAOA-regu6-100 = 300 2Q.
	c := QAOARegular(40, 5, 1)
	if c.Num2Q() != 100 {
		t.Errorf("QAOA-regu5-40 2Q = %d, want 100", c.Num2Q())
	}
	if c.Num1Q() != 40 {
		t.Errorf("QAOA-regu5-40 1Q = %d, want 40", c.Num1Q())
	}
	c = QAOARegular(100, 6, 1)
	if c.Num2Q() != 300 {
		t.Errorf("QAOA-regu6-100 2Q = %d, want 300", c.Num2Q())
	}
	// All two-qubit gates are ZZ.
	for _, g := range c.Gates {
		if g.IsTwoQubit() && g.Op != circuit.OpZZ {
			t.Fatalf("QAOA gate op = %v, want zz", g.Op)
		}
	}
}

func TestQAOARandomDensity(t *testing.T) {
	total := 0
	const trials = 20
	for seed := int64(0); seed < trials; seed++ {
		total += QAOARandom(10, 0.5, seed).Num2Q()
	}
	mean := float64(total) / trials
	if math.Abs(mean-22.5) > 4 {
		t.Errorf("QAOA-rand-10 mean 2Q = %v, want ~22.5", mean)
	}
}

func TestPhaseCode(t *testing.T) {
	c := PhaseCode(9, 2)
	// 4 ancillas, each couples to 2 data neighbours, 2 rounds = 16 CZ.
	if c.Num2Q() != 16 {
		t.Errorf("PhaseCode 2Q = %d, want 16", c.Num2Q())
	}
	mustPanic(t, func() { PhaseCode(2, 1) })
}

func TestArbitraryStats(t *testing.T) {
	c := Arbitrary(40, 10, 5, 7)
	s := c.ComputeStats()
	if math.Abs(s.TwoQPerQ-10) > 2 {
		t.Errorf("Arbitrary 2Q/qubit = %v, want ~10", s.TwoQPerQ)
	}
	if s.DegreePerQ > 5.01 {
		t.Errorf("Arbitrary degree = %v, want <= 5", s.DegreePerQ)
	}
	mustPanic(t, func() { Arbitrary(5, 3, 5, 1) })
}

func TestPauliStringHelpers(t *testing.T) {
	ps := parsePauli("XIYZ")
	if ps.Weight() != 3 {
		t.Errorf("Weight = %d, want 3", ps.Weight())
	}
	sup := ps.Support()
	if len(sup) != 3 || sup[0] != 0 || sup[1] != 2 || sup[2] != 3 {
		t.Errorf("Support = %v", sup)
	}
	mustPanic(t, func() { parsePauli("AB") })
}

func TestSuitesAreWellFormed(t *testing.T) {
	for _, suite := range [][]Benchmark{Fig13Suite(), Fig14Suite(), Table2Suite()} {
		names := map[string]bool{}
		for _, b := range suite {
			if b.Circ == nil || b.Circ.NumGates() == 0 {
				t.Errorf("benchmark %q empty", b.Name)
			}
			if names[b.Name] {
				t.Errorf("duplicate benchmark %q", b.Name)
			}
			names[b.Name] = true
			if b.Type != "Generic" && b.Type != "QSim" && b.Type != "QAOA" {
				t.Errorf("benchmark %q bad type %q", b.Name, b.Type)
			}
		}
	}
	if len(Fig13Suite()) != 17 {
		t.Errorf("Fig13Suite size = %d, want 17", len(Fig13Suite()))
	}
	if len(Fig14Suite()) != 11 {
		t.Errorf("Fig14Suite size = %d, want 11", len(Fig14Suite()))
	}
}

func TestSuitesDeterministic(t *testing.T) {
	a, b := Fig13Suite(), Fig13Suite()
	for i := range a {
		if a[i].Circ.NumGates() != b[i].Circ.NumGates() {
			t.Fatalf("suite not deterministic at %s", a[i].Name)
		}
	}
}

// Property: generated circuits only reference valid qubits and never place a
// two-qubit gate on identical qubits (Add enforces it, so building at all is
// the property; this exercises generator edge parameters).
func TestGeneratorsNeverPanicInRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		_ = QSimRandom(n, 1+rng.Intn(10), rng.Float64(), seed)
		_ = QAOARandom(n, rng.Float64(), seed)
		d := 2 + rng.Intn(3)
		if (n*d)%2 == 1 {
			d++
		}
		if d < n {
			_ = QAOARegular(n, d, seed)
		}
		_ = BV(n, rng.Intn(n), seed)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	f()
}
