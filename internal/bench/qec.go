package bench

import (
	"math"

	"atomique/internal/circuit"
)

// TeleportChain returns a coherent teleportation chain on n qubits (n odd,
// >= 3): a |+i> payload on qubit 0 is teleported hop by hop to qubit n-1,
// with every Bell measurement deferred into its coherent correction (CX then
// CZ from the measured pair onto the receiver). The circuit is Clifford-only
// (H, CX, CZ, RZ(pi/2)), so it verifies through the stabilizer engine at any
// width — the long-range entanglement-distribution workload of the
// paper-scale conformance battery.
func TeleportChain(n int) *circuit.Circuit {
	if n < 3 || n%2 == 0 {
		panic("bench: TeleportChain needs odd n >= 3")
	}
	c := circuit.New(n)
	// Payload |+i> = S H |0> on qubit 0.
	c.H(0)
	c.RZ(0, math.Pi/2)
	for i := 0; i+2 < n; i += 2 {
		// Bell pair shared between the relay (i+1) and the receiver (i+2).
		c.H(i + 1)
		c.CX(i+1, i+2)
		// Bell-basis change on (sender, relay); the measurement is deferred.
		c.CX(i, i+1)
		c.H(i)
		// Coherent Pauli corrections controlled on the would-be outcomes.
		c.CX(i+1, i+2)
		c.CZ(i, i+2)
	}
	return c
}

// SurfaceCodeCycle returns `rounds` syndrome-extraction cycles of the rotated
// surface code at odd distance d: d*d data qubits on a square grid plus
// d*d-1 syndrome ancillas (one per stabilizer), 2*d*d-1 qubits total. Each
// round extracts every X stabilizer (H, CX fan-out from the ancilla, H) and
// every Z stabilizer (CX fan-in to the ancilla); ancilla measurement and
// reset are deferred, so the circuit is pure Clifford fabric — the first QEC
// workload the compilers are exercised on.
//
// Plaquette layout is the standard rotated code: (d-1)^2 interior weight-4
// stabilizers on a checkerboard, weight-2 X stabilizers on the north/south
// boundaries and weight-2 Z stabilizers on the east/west boundaries.
func SurfaceCodeCycle(d, rounds int) *circuit.Circuit {
	if d < 3 || d%2 == 0 {
		panic("bench: SurfaceCodeCycle needs odd distance >= 3")
	}
	if rounds < 1 {
		panic("bench: SurfaceCodeCycle needs at least one round")
	}
	nData := d * d
	type plaquette struct {
		isX     bool
		support []int
	}
	var plaqs []plaquette
	// Candidate plaquette (r,c) sits between data rows r,r+1 and columns
	// c,c+1; r and c range over -1..d-1 so boundary checks are included.
	for r := -1; r < d; r++ {
		for col := -1; col < d; col++ {
			isX := ((r+col)%2+2)%2 == 0
			interiorR := r >= 0 && r < d-1
			interiorC := col >= 0 && col < d-1
			switch {
			case interiorR && interiorC:
				// Full checkerboard in the bulk.
			case (r == -1 || r == d-1) && interiorC && isX:
				// North/south boundary keeps only X checks.
			case (col == -1 || col == d-1) && interiorR && !isX:
				// East/west boundary keeps only Z checks.
			default:
				continue
			}
			var sup []int
			for _, dr := range [2]int{0, 1} {
				for _, dc := range [2]int{0, 1} {
					rr, cc := r+dr, col+dc
					if rr >= 0 && rr < d && cc >= 0 && cc < d {
						sup = append(sup, rr*d+cc)
					}
				}
			}
			plaqs = append(plaqs, plaquette{isX, sup})
		}
	}
	if len(plaqs) != nData-1 {
		panic("bench: surface-code plaquette count != d*d-1")
	}
	c := circuit.New(2*nData - 1)
	for round := 0; round < rounds; round++ {
		for i, p := range plaqs {
			a := nData + i
			if p.isX {
				c.H(a)
				for _, q := range p.support {
					c.CX(a, q)
				}
				c.H(a)
			} else {
				for _, q := range p.support {
					c.CX(q, a)
				}
			}
		}
	}
	return c
}
