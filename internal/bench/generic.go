// Package bench regenerates the paper's benchmark circuits (Table II):
// algorithmic circuits from QASMBench/SupermarQ (BV, QV, HHL, Mermin-Bell,
// adder, VQE), quantum-simulation circuits (random Pauli-string Trotter
// steps, H2 and LiH molecules), QAOA circuits on random and regular graphs,
// plus the arbitrary-circuit and phase-code generators used by the analysis
// figures. Circuits whose QASM sources are not redistributable (HHL,
// Mermin-Bell) are rebuilt structurally with matching gate counts and
// interaction statistics — the features the compilers respond to.
//
// All generators are deterministic for a fixed seed.
package bench

import (
	"math"
	"math/rand"

	"atomique/internal/circuit"
)

// BV returns a Bernstein-Vazirani circuit on n qubits (last qubit is the
// oracle target) whose secret string has the given number of ones, i.e.
// `ones` CNOTs. Matches the QASMBench structure: H layer, X+H on target,
// oracle CNOTs, closing H layer.
func BV(n, ones int, seed int64) *circuit.Circuit {
	if ones > n-1 {
		panic("bench: BV secret has more ones than data qubits")
	}
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n)
	target := n - 1
	for q := 0; q < n-1; q++ {
		c.H(q)
	}
	c.X(target)
	c.H(target)
	secret := rng.Perm(n - 1)[:ones]
	for _, q := range sortedCopy(secret) {
		c.CX(q, target)
	}
	for q := 0; q < n-1; q++ {
		c.H(q)
	}
	return c
}

// QV returns a quantum-volume model circuit: depth layers, each pairing the
// qubits under a random permutation and applying an SU(4) block per pair
// (3 CX + 8 one-qubit rotations). QV(32, 32) reproduces Table II's
// 1536 two-qubit / 4096 one-qubit gates.
func QV(n, depth int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n)
	for l := 0; l < depth; l++ {
		perm := rng.Perm(n)
		for i := 0; i+1 < n; i += 2 {
			su4(c, perm[i], perm[i+1], rng)
		}
	}
	return c
}

// su4 emits a generic two-qubit block in the standard 3-CX decomposition
// with eight single-qubit rotations.
func su4(c *circuit.Circuit, a, b int, rng *rand.Rand) {
	angle := func() float64 { return rng.Float64() * 2 * math.Pi }
	c.RY(a, angle())
	c.RZ(a, angle())
	c.RY(b, angle())
	c.RZ(b, angle())
	c.CX(a, b)
	c.RY(a, angle())
	c.RZ(b, angle())
	c.CX(b, a)
	c.RY(a, angle())
	c.CX(a, b)
	c.RZ(b, angle())
}

// GHZ returns an n-qubit GHZ preparation (H + CX chain).
func GHZ(n int) *circuit.Circuit {
	c := circuit.New(n)
	c.H(0)
	for i := 1; i < n; i++ {
		c.CX(i-1, i)
	}
	return c
}

// MerminBell returns a Mermin-Bell inequality test circuit on n qubits in
// the SupermarQ style: GHZ preparation followed by the dense Mermin-operator
// measurement block, which couples most qubit pairs. extra2Q two-qubit gates
// are placed on randomly drawn pairs (weighted toward unseen partners to
// reach the high degree-per-qubit of Table II), with per-qubit rotations
// interleaved.
func MerminBell(n, extra2Q int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n)
	c.H(0)
	for i := 1; i < n; i++ {
		c.CX(i-1, i)
	}
	// Mermin operator block: rotations then pairwise parity couplings.
	for q := 0; q < n; q++ {
		c.RZ(q, rng.Float64()*2*math.Pi)
	}
	seen := map[[2]int]bool{}
	for g := 0; g < extra2Q; g++ {
		a, b := drawPair(n, seen, rng)
		c.CZ(a, b)
		if g%4 == 3 {
			c.RY(rng.Intn(n), rng.Float64()*math.Pi)
		}
	}
	return c
}

// drawPair prefers pairs not yet interacted to maximise degree.
func drawPair(n int, seen map[[2]int]bool, rng *rand.Rand) (int, int) {
	for attempt := 0; attempt < 8; attempt++ {
		a, b := rng.Intn(n), rng.Intn(n-1)
		if b >= a {
			b++
		}
		if a > b {
			a, b = b, a
		}
		if !seen[[2]int{a, b}] || attempt == 7 {
			seen[[2]int{a, b}] = true
			return a, b
		}
	}
	return 0, 1
}

// HHL returns a statistics-matched HHL linear-solver skeleton on n qubits:
// clock-register phase estimation (controlled-phase ladders against the
// system register), controlled ancilla rotations, and the inverse QPE.
// rounds scales the controlled-evolution repetitions; HHL(7, 4, seed)
// approaches Table II's 196 two-qubit / ~790 one-qubit gates.
func HHL(n, rounds int, seed int64) *circuit.Circuit {
	if n < 4 {
		panic("bench: HHL needs >= 4 qubits (clock+system+ancilla)")
	}
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n)
	ancilla := n - 1
	clockEnd := (n - 1) / 2 // qubits [0, clockEnd) form the clock register
	system := make([]int, 0, n-1-clockEnd)
	for q := clockEnd; q < n-1; q++ {
		system = append(system, q)
	}
	angle := func() float64 { return rng.Float64() * 2 * math.Pi }

	qpe := func() {
		for q := 0; q < clockEnd; q++ {
			c.H(q)
		}
		// Controlled evolution: clock qubit q controls rounds*2^q
		// repetitions; each controlled-U = 2 CX + 3 rotations.
		for q := 0; q < clockEnd; q++ {
			reps := rounds << q
			for r := 0; r < reps; r++ {
				for _, s := range system {
					c.RZ(s, angle())
					c.CX(q, s)
					c.RZ(s, angle())
					c.CX(q, s)
					c.RZ(s, angle())
				}
			}
		}
		// QFT on the clock: controlled-phase ladder (1 CZ + 2 RZ each).
		for i := 0; i < clockEnd; i++ {
			c.H(i)
			for j := i + 1; j < clockEnd; j++ {
				c.RZ(i, angle())
				c.CZ(j, i)
				c.RZ(j, angle())
			}
		}
	}
	qpe()
	// Controlled ancilla rotations from each clock qubit.
	for q := 0; q < clockEnd; q++ {
		c.RY(ancilla, angle())
		c.CX(q, ancilla)
		c.RY(ancilla, angle())
		c.CX(q, ancilla)
	}
	qpe() // uncomputation (structurally identical)
	return c
}

// Adder returns a CDKM-style ripple-carry adder on n qubits (two
// (n-2)/2-bit registers plus carry-in and carry-out), with Toffolis
// decomposed into the standard 6-CX network. Adder(10) matches QASMBench's
// adder_n10 scale (~65 two-qubit gates).
func Adder(n int) *circuit.Circuit {
	if n < 4 || n%2 != 0 {
		panic("bench: Adder needs even n >= 4")
	}
	c := circuit.New(n)
	bits := (n - 2) / 2
	a := make([]int, bits) // register a
	b := make([]int, bits) // register b
	for i := 0; i < bits; i++ {
		a[i] = 1 + 2*i
		b[i] = 2 + 2*i
	}
	cin := 0
	cout := n - 1

	maj := func(x, y, z int) {
		c.CX(z, y)
		c.CX(z, x)
		toffoli(c, x, y, z)
	}
	uma := func(x, y, z int) {
		toffoli(c, x, y, z)
		c.CX(z, x)
		c.CX(x, y)
	}
	maj(cin, b[0], a[0])
	for i := 1; i < bits; i++ {
		maj(a[i-1], b[i], a[i])
	}
	c.CX(a[bits-1], cout)
	for i := bits - 1; i >= 1; i-- {
		uma(a[i-1], b[i], a[i])
	}
	uma(cin, b[0], a[0])
	return c
}

// toffoli emits the standard 6-CX Toffoli decomposition. T and T-dagger are
// written as RZ(+-pi/4), which is exact up to global phase and keeps the
// circuit simulable.
func toffoli(c *circuit.Circuit, a, b, t int) {
	const tg = math.Pi / 4
	c.H(t)
	c.CX(b, t)
	c.RZ(t, -tg)
	c.CX(a, t)
	c.RZ(t, tg)
	c.CX(b, t)
	c.RZ(t, -tg)
	c.CX(a, t)
	c.RZ(t, tg)
	c.RZ(b, tg)
	c.CX(a, b)
	c.H(t)
	c.RZ(a, tg)
	c.RZ(b, -tg)
	c.CX(a, b)
}

// VQE returns a hardware-efficient VQE ansatz: an (RY, RZ) rotation layer,
// a linear CZ entangling chain, and a closing (RY, RZ) layer — n-1
// two-qubit and 4n one-qubit gates, matching SupermarQ's VQE-10/VQE-20 rows.
func VQE(n int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.RY(q, rng.Float64()*2*math.Pi)
		c.RZ(q, rng.Float64()*2*math.Pi)
	}
	for q := 0; q+1 < n; q++ {
		c.CZ(q, q+1)
	}
	for q := 0; q < n; q++ {
		c.RY(q, rng.Float64()*2*math.Pi)
		c.RZ(q, rng.Float64()*2*math.Pi)
	}
	return c
}

func sortedCopy(s []int) []int {
	out := append([]int(nil), s...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
