package bench

import (
	"math"
	"math/rand"

	"atomique/internal/circuit"
	"atomique/internal/graphs"
)

// Arbitrary returns a random "generic" circuit with controlled interaction
// statistics, the workload of Figs 15 and 21: each qubit interacts with
// `degree` distinct partners (the interaction graph is degree-regular) and
// participates in ~gatesPerQubit two-qubit gates, drawn uniformly over the
// interaction edges. A sparse sprinkling of one-qubit rotations (one per
// four two-qubit gates) keeps the circuit generic.
func Arbitrary(n, gatesPerQubit, degree int, seed int64) *circuit.Circuit {
	if degree >= n {
		panic("bench: Arbitrary degree must be < n")
	}
	rng := rand.New(rand.NewSource(seed))
	d := degree
	if (n*d)%2 != 0 {
		d++ // regular graphs need n*d even; round the degree up
		if d >= n {
			d -= 2
		}
	}
	edges := graphs.RegularGraph(n, d, rng)
	c := circuit.New(n)
	total2Q := n * gatesPerQubit / 2
	for g := 0; g < total2Q; g++ {
		e := edges[rng.Intn(len(edges))]
		c.CZ(e.A, e.B)
		if g%4 == 3 {
			c.RZ(rng.Intn(n), rng.Float64()*2*math.Pi)
		}
	}
	return c
}
