package sabre

import (
	"math/rand"
	"testing"
	"testing/quick"

	"atomique/internal/circuit"
	"atomique/internal/graphs"
)

// validateRouting checks the fundamental routing invariants: every 2Q gate
// in the routed circuit acts on adjacent physical qubits, and the routed
// circuit implements the same logical interaction multiset (tracked through
// the mapping evolution).
func validateRouting(t *testing.T, c *circuit.Circuit, cg *graphs.Coupling, r Result) {
	t.Helper()
	for _, g := range r.Routed.Gates {
		if g.IsTwoQubit() && !cg.Adjacent(g.Q0, g.Q1) {
			t.Fatalf("routed 2Q gate %v on non-adjacent qubits", g)
		}
	}
	// The routed circuit interleaves original gates and 3-CX swap triplets:
	// its 2Q count must equal original + 3*swaps, and 1Q gates are preserved.
	want2q := c.Num2Q() + 3*r.SwapCount
	if got := r.Routed.Num2Q(); got != want2q {
		t.Fatalf("routed 2Q count = %d, want %d (orig %d + 3*%d swaps)",
			got, want2q, c.Num2Q(), r.SwapCount)
	}
	if c.Num1Q() != r.Routed.Num1Q() {
		t.Fatalf("1Q count changed: %d -> %d", c.Num1Q(), r.Routed.Num1Q())
	}
}

func bell(n int) *circuit.Circuit {
	c := circuit.New(n)
	c.H(0)
	for i := 1; i < n; i++ {
		c.CX(0, i)
	}
	return c
}

func TestRouteAdjacentGateNoSwaps(t *testing.T) {
	cg := graphs.Grid(2, 2)
	c := circuit.New(2)
	c.CX(0, 1)
	r := Route(c, cg, Options{})
	if r.SwapCount != 0 {
		t.Errorf("SwapCount = %d, want 0", r.SwapCount)
	}
	validateRouting(t, c, cg, r)
}

func TestRouteLineNeedsSwaps(t *testing.T) {
	// A 1x5 line, gate between the ends: requires swaps from identity
	// mapping, but the reverse-pass refinement may remap; either way the
	// result must be legal.
	cg := graphs.Grid(1, 5)
	c := circuit.New(5)
	c.CX(0, 4)
	c.CX(0, 1)
	c.CX(3, 4)
	r := Route(c, cg, Options{})
	validateRouting(t, c, cg, r)
}

func TestRouteGHZOnGrid(t *testing.T) {
	cg := graphs.Grid(4, 4)
	c := bell(16)
	r := Route(c, cg, Options{})
	validateRouting(t, c, cg, r)
	if r.AddedCNOTs() != 3*r.SwapCount {
		t.Errorf("AddedCNOTs inconsistent")
	}
}

func TestRouteOnHeavyHex(t *testing.T) {
	cg := graphs.HeavyHex(127)
	rng := rand.New(rand.NewSource(3))
	c := circuit.New(30)
	for i := 0; i < 100; i++ {
		a := rng.Intn(30)
		b := rng.Intn(29)
		if b >= a {
			b++
		}
		c.CX(a, b)
	}
	r := Route(c, cg, Options{Seed: 1})
	validateRouting(t, c, cg, r)
	if r.SwapCount == 0 {
		t.Errorf("random circuit on heavy-hex should need swaps")
	}
}

func TestRouteOnMultipartite(t *testing.T) {
	// Complete multipartite: intra-part gates need exactly one swap each in
	// the worst case (distance 2).
	cg := graphs.CompleteMultipartite([]int{4, 4})
	c := circuit.New(8)
	c.CX(0, 1) // both in part 0 under identity mapping
	r := Route(c, cg, Options{InitialMapping: []int{0, 1, 2, 3, 4, 5, 6, 7}})
	validateRouting(t, c, cg, r)
	if r.SwapCount != 1 {
		t.Errorf("SwapCount = %d, want 1", r.SwapCount)
	}
}

func TestRicherTopologyNeedsFewerSwaps(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := circuit.New(25)
	for i := 0; i < 150; i++ {
		a, b := rng.Intn(25), rng.Intn(24)
		if b >= a {
			b++
		}
		c.CX(a, b)
	}
	rect := Route(c, graphs.Grid(5, 5), Options{Seed: 5})
	tri := Route(c, graphs.Triangular(5, 5), Options{Seed: 5})
	lr := Route(c, graphs.LongRange(5, 5, 1.6), Options{Seed: 5})
	if tri.SwapCount > rect.SwapCount {
		t.Errorf("triangular (%d swaps) worse than rectangular (%d)",
			tri.SwapCount, rect.SwapCount)
	}
	if lr.SwapCount > rect.SwapCount {
		t.Errorf("long-range (%d swaps) worse than rectangular (%d)",
			lr.SwapCount, rect.SwapCount)
	}
}

func TestKeepSwapsAtomic(t *testing.T) {
	cg := graphs.Grid(1, 3)
	c := circuit.New(3)
	c.CX(0, 2)
	r := Route(c, cg, Options{KeepSwapsAtomic: true, InitialMapping: []int{0, 1, 2}})
	found := false
	for _, g := range r.Routed.Gates {
		if g.Op == circuit.OpSWAP {
			found = true
		}
	}
	if r.SwapCount > 0 && !found {
		t.Errorf("atomic swaps requested but none emitted")
	}
}

func TestDeterminism(t *testing.T) {
	cg := graphs.Grid(4, 4)
	c := bell(16)
	r1 := Route(c, cg, Options{Seed: 42})
	r2 := Route(c, cg, Options{Seed: 42})
	if r1.SwapCount != r2.SwapCount || r1.Routed.NumGates() != r2.Routed.NumGates() {
		t.Errorf("routing not deterministic for fixed seed")
	}
}

func TestTooManyQubitsPanics(t *testing.T) {
	cg := graphs.Grid(2, 2)
	c := circuit.New(5)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	Route(c, cg, Options{})
}

// Property: routing random circuits on random-size grids always terminates
// with legal adjacent gates and preserves gate counts.
func TestRouteLegalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 2+rng.Intn(3), 2+rng.Intn(3)
		cg := graphs.Grid(rows, cols)
		n := 2 + rng.Intn(cg.N-1)
		c := circuit.New(n)
		for i := 0; i < 5+rng.Intn(40); i++ {
			if rng.Intn(4) == 0 {
				c.H(rng.Intn(n))
				continue
			}
			a, b := rng.Intn(n), rng.Intn(n-1)
			if b >= a {
				b++
			}
			c.CX(a, b)
		}
		r := Route(c, cg, Options{Seed: seed})
		for _, g := range r.Routed.Gates {
			if g.IsTwoQubit() && !cg.Adjacent(g.Q0, g.Q1) {
				return false
			}
		}
		return r.Routed.Num2Q() == c.Num2Q()+3*r.SwapCount &&
			r.Routed.Num1Q() == c.Num1Q()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
