package sabre

import (
	"testing"

	"atomique/internal/bench"
	"atomique/internal/graphs"
)

func BenchmarkRouteHeavyHex(b *testing.B) {
	cg := graphs.HeavyHex(127)
	c := bench.QSimRandom(40, 10, 0.5, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Route(c, cg, Options{Seed: 1})
	}
}

func BenchmarkRouteGrid(b *testing.B) {
	cg := graphs.Grid(7, 7)
	c := bench.QAOARegular(40, 5, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Route(c, cg, Options{Seed: 1})
	}
}

func BenchmarkRouteMultipartite(b *testing.B) {
	cg := graphs.CompleteMultipartite([]int{34, 33, 33})
	c := bench.QSimRandom(100, 10, 0.5, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Route(c, cg, Options{Seed: 1})
	}
}
