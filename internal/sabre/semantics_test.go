package sabre

import (
	"math/rand"
	"testing"
	"testing/quick"

	"atomique/internal/circuit"
	"atomique/internal/graphs"
	"atomique/internal/sim"
)

// TestRoutingPreservesSemantics verifies end to end that the routed physical
// circuit implements exactly the source circuit: simulate the source on
// logical qubits, simulate the routed circuit on device qubits starting from
// the initial mapping, and compare against the final mapping's embedding.
func TestRoutingPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 5; trial++ {
		n := 4 + rng.Intn(4)
		cg := graphs.Grid(3, 3)
		c := randomMixedCircuit(rng, n, 20+rng.Intn(40))
		checkEquivalence(t, c, cg, Options{Seed: int64(trial)})
	}
}

func TestRoutingSemanticsOnMultipartite(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cg := graphs.CompleteMultipartite([]int{3, 3, 3})
	c := randomMixedCircuit(rng, 9, 50)
	checkEquivalence(t, c, cg, Options{Seed: 3})
}

func checkEquivalence(t *testing.T, c *circuit.Circuit, cg *graphs.Coupling, opts Options) {
	t.Helper()
	if cg.N > 12 {
		t.Fatalf("equivalence check limited to 12 device qubits")
	}
	r := Route(c, cg, opts)

	// Source semantics on logical qubits.
	src := sim.MustNew(c.N)
	src.Run(c)
	// Routed semantics on device qubits: logical q starts at
	// InitialMapping[q] and ends at FinalMapping[q].
	dev := sim.MustNew(cg.N)
	devInit := sim.MustNew(c.N).Embed(cg.N, r.InitialMapping)
	copy(dev.Amp, devInit.Amp)
	dev.Run(r.Routed)

	expected := src.Embed(cg.N, r.FinalMapping)
	if f := sim.Fidelity(dev, expected); f < 1-1e-7 {
		t.Fatalf("routing broke semantics: fidelity %v (swaps %d)", f, r.SwapCount)
	}
}

func randomMixedCircuit(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < gates; i++ {
		switch rng.Intn(7) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.RZ(rng.Intn(n), rng.Float64()*6)
		case 2:
			c.RY(rng.Intn(n), rng.Float64()*6)
		case 3, 4:
			a, b := two(n, rng)
			c.CX(a, b)
		case 5:
			a, b := two(n, rng)
			c.CZ(a, b)
		case 6:
			a, b := two(n, rng)
			c.ZZ(a, b, rng.Float64()*6)
		}
	}
	return c
}

func two(n int, rng *rand.Rand) (int, int) {
	a := rng.Intn(n)
	b := rng.Intn(n - 1)
	if b >= a {
		b++
	}
	return a, b
}

// Property: routing preserves semantics on random line/grid devices.
func TestRoutingSemanticsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(3), 2+rng.Intn(3)
		if rows*cols < 2 {
			return true
		}
		cg := graphs.Grid(rows, cols)
		n := 2 + rng.Intn(cg.N-1)
		c := randomMixedCircuit(rng, n, 5+rng.Intn(40))
		r := Route(c, cg, Options{Seed: seed})

		src := sim.MustNew(c.N)
		src.Run(c)
		dev := sim.MustNew(cg.N)
		init := sim.MustNew(c.N).Embed(cg.N, r.InitialMapping)
		copy(dev.Amp, init.Amp)
		dev.Run(r.Routed)
		expected := src.Embed(cg.N, r.FinalMapping)
		return sim.Fidelity(dev, expected) > 1-1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
