// Package sabre implements the SABRE qubit-mapping and routing algorithm
// (Li, Ding, Xie — ASPLOS 2019) from scratch. The paper's evaluation routes
// every fixed-topology baseline (IBM heavy-hex, FAA rectangular/triangular,
// Baker long-range) with Qiskit's SABRE, and Atomique itself uses SABRE on
// the complete multipartite RAA coupling graph to insert inter-array SWAPs;
// this package plays both roles here.
//
// The algorithm maintains a logical-to-physical mapping and a dependency
// front layer. Executable gates (physically adjacent endpoints) are emitted;
// when the front stalls, the SWAP minimising a lookahead distance heuristic
// with a decay term is inserted. Initial mappings are refined with SABRE's
// reverse-traversal trick.
package sabre

import (
	"math"
	"math/rand"
	"sort"

	"atomique/internal/circuit"
	"atomique/internal/graphs"
)

// Options tunes the router. The zero value is usable: identity initial
// mapping refined by one reverse pass, standard heuristic weights, SWAPs
// decomposed into three CX gates.
type Options struct {
	// InitialMapping maps logical qubit -> physical qubit. Nil selects the
	// identity mapping refined by reverse passes.
	InitialMapping []int
	// ExtendedSize is the lookahead window size (default 20).
	ExtendedSize int
	// ExtendedWeight scales the lookahead term (default 0.5).
	ExtendedWeight float64
	// DecayStep is the per-use decay increment discouraging ping-pong swaps
	// (default 0.001).
	DecayStep float64
	// ReversePasses is the number of forward/backward refinement rounds used
	// to pick the initial mapping when InitialMapping is nil (default 1).
	ReversePasses int
	// Seed drives tie-breaking; routing is deterministic for a fixed seed.
	Seed int64
	// KeepSwapsAtomic emits inserted SWAPs as single SWAP gates instead of
	// the default three-CX decomposition.
	KeepSwapsAtomic bool
}

func (o Options) withDefaults() Options {
	if o.ExtendedSize == 0 {
		o.ExtendedSize = 20
	}
	if o.ExtendedWeight == 0 {
		o.ExtendedWeight = 0.5
	}
	if o.DecayStep == 0 {
		o.DecayStep = 0.001
	}
	if o.ReversePasses == 0 {
		o.ReversePasses = 1
	}
	return o
}

// Result is a routed circuit over physical qubits.
type Result struct {
	// Routed is the physical circuit: every two-qubit gate acts on adjacent
	// physical qubits; inserted SWAPs appear as three CX gates (or one SWAP
	// gate when KeepSwapsAtomic is set).
	Routed *circuit.Circuit
	// InitialMapping and FinalMapping map logical -> physical.
	InitialMapping []int
	FinalMapping   []int
	// SwapCount is the number of SWAPs inserted; AddedCNOTs = 3*SwapCount.
	SwapCount int
}

// AddedCNOTs returns the CNOT overhead of SWAP insertion (Fig 25's metric).
func (r Result) AddedCNOTs() int { return 3 * r.SwapCount }

// Route maps and routes c onto the coupling graph cg.
func Route(c *circuit.Circuit, cg *graphs.Coupling, opts Options) Result {
	opts = opts.withDefaults()
	if c.N > cg.N {
		panic("sabre: circuit has more qubits than the device")
	}
	r := &router{c: c, cg: cg, opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}

	initial := opts.InitialMapping
	if initial == nil {
		initial = r.refineInitialMapping()
	}
	res := r.routeOnce(c, clone(initial))
	res.InitialMapping = initial
	return res
}

type router struct {
	c    *circuit.Circuit
	cg   *graphs.Coupling
	opts Options
	rng  *rand.Rand
}

// refineInitialMapping runs SABRE's reverse-traversal refinement: route the
// circuit forward from the identity mapping, route the reversed circuit from
// the resulting final mapping, and use that final mapping as the initial
// mapping for the real pass.
func (r *router) refineInitialMapping() []int {
	mapping := make([]int, r.c.N)
	for i := range mapping {
		mapping[i] = i
	}
	rev := reverse(r.c)
	for pass := 0; pass < r.opts.ReversePasses; pass++ {
		fwd := r.routeOnce(r.c, clone(mapping))
		back := r.routeOnce(rev, clone(fwd.FinalMapping))
		mapping = back.FinalMapping
	}
	return mapping
}

func reverse(c *circuit.Circuit) *circuit.Circuit {
	out := circuit.New(c.N)
	for i := len(c.Gates) - 1; i >= 0; i-- {
		out.Add(c.Gates[i])
	}
	return out
}

func clone(s []int) []int {
	out := make([]int, len(s))
	copy(out, s)
	return out
}

func (r *router) routeOnce(c *circuit.Circuit, l2p []int) Result {
	cg := r.cg
	p2l := make([]int, cg.N)
	for i := range p2l {
		p2l[i] = -1
	}
	for l, p := range l2p {
		p2l[p] = l
	}

	out := circuit.New(cg.N)
	dag := circuit.NewDAG(c)
	front := circuit.NewFrontier(dag)
	decay := make([]float64, cg.N)
	swaps := 0
	sinceReset := 0

	for !front.Done() {
		// Emit every executable frontier gate (1Q always; 2Q when adjacent).
		progress := true
		for progress {
			progress = false
			for _, gi := range append([]int(nil), front.Front()...) {
				g := front.Gate(gi)
				if !g.IsTwoQubit() {
					out.Add1Q(g.Op, l2p[g.Q0], g.Param)
					front.Execute(gi)
					progress = true
					continue
				}
				if cg.Adjacent(l2p[g.Q0], l2p[g.Q1]) {
					out.Add2Q(g.Op, l2p[g.Q0], l2p[g.Q1], g.Param)
					front.Execute(gi)
					progress = true
				}
			}
		}
		if front.Done() {
			break
		}

		// Stalled: pick the best SWAP among edges touching frontier qubits.
		front2Q := frontTwoQubit(front)
		ext := extendedSet(dag, front, r.opts.ExtendedSize)
		a, b := r.pickSwap(l2p, front2Q, ext, decay)

		if r.opts.KeepSwapsAtomic {
			out.Add2Q(circuit.OpSWAP, a, b, 0)
		} else {
			out.CX(a, b)
			out.CX(b, a)
			out.CX(a, b)
		}
		swaps++
		la, lb := p2l[a], p2l[b]
		p2l[a], p2l[b] = lb, la
		if la >= 0 {
			l2p[la] = b
		}
		if lb >= 0 {
			l2p[lb] = a
		}
		decay[a] += r.opts.DecayStep
		decay[b] += r.opts.DecayStep
		sinceReset++
		if sinceReset >= 5 {
			for i := range decay {
				decay[i] = 0
			}
			sinceReset = 0
		}
	}
	return Result{Routed: out, FinalMapping: l2p, SwapCount: swaps}
}

// frontTwoQubit returns the two-qubit gates currently in the frontier.
func frontTwoQubit(f *circuit.Frontier) []circuit.Gate {
	var gates []circuit.Gate
	for _, gi := range f.Front() {
		if g := f.Gate(gi); g.IsTwoQubit() {
			gates = append(gates, g)
		}
	}
	return gates
}

// extendedSet collects up to size upcoming two-qubit gates reachable from the
// frontier (breadth-first over DAG successors) for the lookahead term.
func extendedSet(dag *circuit.DAG, f *circuit.Frontier, size int) []circuit.Gate {
	seen := map[int]bool{}
	var queue []int
	for _, gi := range f.Front() {
		queue = append(queue, gi)
		seen[gi] = true
	}
	var ext []circuit.Gate
	for len(queue) > 0 && len(ext) < size {
		gi := queue[0]
		queue = queue[1:]
		for _, s := range dag.Successors(gi) {
			if seen[s] {
				continue
			}
			seen[s] = true
			if g := dag.Circuit().Gates[s]; g.IsTwoQubit() {
				ext = append(ext, g)
				if len(ext) >= size {
					break
				}
			}
			queue = append(queue, s)
		}
	}
	return ext
}

// pickSwap scores every candidate SWAP (edges incident to the physical
// locations of frontier-gate qubits) and returns the physical pair with the
// lowest decayed lookahead cost.
func (r *router) pickSwap(l2p []int, front, ext []circuit.Gate, decay []float64) (int, int) {
	cg := r.cg
	seen := map[[2]int]bool{}
	var candidates [][2]int
	for _, g := range front {
		for _, q := range []int{g.Q0, g.Q1} {
			p := l2p[q]
			for _, nb := range cg.Neighbors(p) {
				a, b := p, nb
				if a > b {
					a, b = b, a
				}
				if !seen[[2]int{a, b}] {
					seen[[2]int{a, b}] = true
					candidates = append(candidates, [2]int{a, b})
				}
			}
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i][0] != candidates[j][0] {
			return candidates[i][0] < candidates[j][0]
		}
		return candidates[i][1] < candidates[j][1]
	})

	bestCost := math.Inf(1)
	var best [2]int
	nbest := 0
	for _, cand := range candidates {
		cost := r.swapCost(l2p, front, ext, cand, decay)
		switch {
		case cost < bestCost-1e-12:
			bestCost, best, nbest = cost, cand, 1
		case math.Abs(cost-bestCost) <= 1e-12:
			// Reservoir-sample ties for seeded-deterministic tie-breaking.
			nbest++
			if r.rng.Intn(nbest) == 0 {
				best = cand
			}
		}
	}
	if nbest == 0 {
		panic("sabre: no swap candidates (disconnected device?)")
	}
	return best[0], best[1]
}

func (r *router) swapCost(l2p []int, front, ext []circuit.Gate,
	swap [2]int, decay []float64) float64 {

	cg := r.cg
	pos := func(q int) int {
		p := l2p[q]
		if p == swap[0] {
			return swap[1]
		}
		if p == swap[1] {
			return swap[0]
		}
		return p
	}
	fcost := 0.0
	for _, g := range front {
		fcost += float64(cg.Distance(pos(g.Q0), pos(g.Q1)))
	}
	fcost /= float64(len(front))
	ecost := 0.0
	if len(ext) > 0 {
		for _, g := range ext {
			ecost += float64(cg.Distance(pos(g.Q0), pos(g.Q1)))
		}
		ecost /= float64(len(ext))
	}
	d := 1 + decay[swap[0]] + decay[swap[1]]
	return d * (fcost + r.opts.ExtendedWeight*ecost)
}
