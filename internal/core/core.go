// Package core implements Atomique, the paper's primary contribution: a
// scalable compiler for reconfigurable neutral-atom arrays (RAAs). The
// pipeline (Fig 3) is
//
//  1. Qubit-array mapper — greedy MAX k-cut of the gate-frequency graph
//     assigns each logical qubit to the SLM array or one of the AOD arrays,
//     maximising inter-array two-qubit gates (Alg. 1).
//  2. Inter-array SWAP insertion — SABRE routing on the complete
//     multipartite coupling graph makes every remaining two-qubit gate
//     cross-array (Fig 5); each SWAP costs three CZ gates executed via atom
//     movement like any other gate.
//  3. Qubit-atom mapper — load-balance diagonal-spiral placement for SLM
//     qubits (Fig 6) and frequency-rank position alignment for AOD qubits
//     (Fig 7).
//  4. High-parallelism router — iterates over the dependency frontier,
//     batching legal parallel two-qubit gates subject to the three hardware
//     constraints (Figs 9-11), moving AOD rows/columns, firing the Rydberg
//     laser, tracking per-atom heating (n_vib), and inserting cooling swaps.
//
// Ablation switches (Fig 21) and constraint relaxations (Fig 22) are
// first-class options.
package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"atomique/internal/circuit"
	"atomique/internal/fidelity"
	"atomique/internal/graphs"
	"atomique/internal/hardware"
	"atomique/internal/metrics"
	"atomique/internal/pipeline"
)

// Options configures a compilation. The zero value is the paper's default
// configuration.
type Options struct {
	// Gamma is the per-layer decay of gate-frequency edge weights
	// (default 0.95).
	Gamma float64
	// Seed drives every randomised tie-break; compilation is deterministic
	// for a fixed seed.
	Seed int64

	// Ablation switches (Fig 21). Each replaces one pipeline technique with
	// the paper's baseline variant.
	DenseMapper      bool // round-robin array assignment instead of MAX k-cut
	RandomAtomMapper bool // random atom placement instead of load-balance/aligned
	SerialRouter     bool // one two-qubit gate per stage

	// Constraint relaxations (Fig 22).
	RelaxAddressing bool // constraint 1: allow individually addressed 2Q gates
	RelaxOrder      bool // constraint 2: allow row/column order violations
	RelaxOverlap    bool // constraint 3: allow rows/columns to overlap
}

func (o Options) withDefaults() Options {
	if o.Gamma == 0 {
		o.Gamma = 0.95
	}
	return o
}

// Result is a complete compilation outcome: placement, schedule, metrics,
// and the movement trace consumed by the fidelity model.
type Result struct {
	// ArrayOf maps each logical qubit to its array (0 = SLM).
	ArrayOf []int
	// SiteOf maps each physical slot (atom) to its trap site. Slots are the
	// post-SWAP physical identities; slot s holds logical qubit
	// InitialSlotOf^-1 initially.
	SiteOf []hardware.Site
	// InitialSlotOf maps logical qubit -> physical slot before execution.
	InitialSlotOf []int
	// FinalSlotOf maps logical qubit -> physical slot after execution (SWAP
	// insertion permutes logical states among atoms).
	FinalSlotOf []int
	// Schedule is the executable movement/gate program.
	Schedule *Schedule
	// Metrics summarises the compilation.
	Metrics metrics.Compiled
	// Trace is the movement trace for fidelity evaluation.
	Trace fidelity.MovementTrace
	// Static is the gate-count summary for fidelity evaluation.
	Static fidelity.Static
}

// Compile runs the full Atomique pipeline on circ for the machine cfg.
func Compile(cfg hardware.Config, circ *circuit.Circuit, opts Options) (*Result, error) {
	return CompileContext(context.Background(), cfg, circ, opts)
}

// CompileContext is Compile with cancellation: the pipeline checks ctx
// between passes (and the router loop between stages) and aborts with
// ctx.Err() when it is cancelled, so a long-running compilation can be
// stopped by a service deadline or an explicit job cancellation.
func CompileContext(ctx context.Context, cfg hardware.Config, circ *circuit.Circuit, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if circ.N > cfg.Capacity() {
		return nil, fmt.Errorf("core: circuit needs %d qubits, machine has %d sites",
			circ.N, cfg.Capacity())
	}
	start := time.Now()
	st := &pipeline.State{
		Cfg:  cfg,
		Circ: circ,
		Seed: opts.Seed,
		Rng:  rand.New(rand.NewSource(opts.Seed)),
	}
	timings, err := pipeline.New(Passes(opts)...).Run(ctx, st)
	if err != nil {
		return nil, err
	}
	m := st.Metrics
	m.CompileTime = time.Since(start)
	m.Passes = timings
	return &Result{
		ArrayOf:       st.ArrayOf,
		SiteOf:        st.SiteOf,
		InitialSlotOf: st.SlotOf,
		FinalSlotOf:   st.FinalSlotOf,
		Schedule:      st.Schedule,
		Metrics:       m,
		Trace:         st.Trace,
		Static:        st.Static,
	}, nil
}

// mapQubitsToArrays implements the qubit-array mapper (Alg. 1): MAX k-cut of
// the gate-frequency graph under per-array capacity, or the round-robin
// "dense" baseline when ablated.
func mapQubitsToArrays(cfg hardware.Config, circ *circuit.Circuit, opts Options) []int {
	k := cfg.NumArrays()
	caps := cfg.Capacities()
	if opts.DenseMapper {
		// Qiskit-style dense layout: pack qubits into as few arrays as
		// possible, ignoring gate structure. Intra-array pairs then rely on
		// SWAP insertion. At least two arrays stay occupied so the
		// multipartite coupling remains connected.
		part := make([]int, circ.N)
		perArray := caps[0]
		if circ.N <= perArray {
			perArray = (circ.N + 1) / 2
		}
		a, fill := 0, 0
		for q := 0; q < circ.N; q++ {
			for fill >= perArray || fill >= caps[a] {
				a++
				fill = 0
				if a < k && caps[a] < perArray {
					perArray = caps[a]
				}
			}
			part[q] = a
			fill++
		}
		return part
	}
	gf := graphs.GateFrequency(circ, opts.Gamma)
	return graphs.MaxKCutGreedy(gf, k, caps)
}

// slotAssignment packs qubits into contiguous slot ranges per array: array a
// owns slots [start_a, start_a + sizes_a).
func slotAssignment(arrayOf []int, sizes []int) []int {
	starts := make([]int, len(sizes))
	for a := 1; a < len(sizes); a++ {
		starts[a] = starts[a-1] + sizes[a-1]
	}
	next := append([]int(nil), starts...)
	slotOf := make([]int, len(arrayOf))
	for q, a := range arrayOf {
		slotOf[q] = next[a]
		next[a]++
	}
	return slotOf
}

// arrayOfSlot returns the array owning a slot given part sizes.
func arrayOfSlot(slot int, sizes []int) int {
	for a, s := range sizes {
		if slot < s {
			return a
		}
		slot -= s
	}
	panic("core: slot out of range")
}

func allInOneArray(sizes []int) bool {
	nonEmpty := 0
	for _, s := range sizes {
		if s > 0 {
			nonEmpty++
		}
	}
	return nonEmpty <= 1
}

// relabel renames circuit qubits through slotOf onto a width-n register.
func relabel(c *circuit.Circuit, slotOf []int, n int) *circuit.Circuit {
	out := circuit.New(n)
	for _, g := range c.Gates {
		g.Q0 = slotOf[g.Q0]
		if g.IsTwoQubit() {
			g.Q1 = slotOf[g.Q1]
		}
		out.Add(g)
	}
	return out
}

// sortPairsByWeight returns interaction pairs in descending weight order
// (rank order of Fig 7), ties broken by pair index for determinism.
func sortPairsByWeight(w map[[2]int]int) [][2]int {
	pairs := make([][2]int, 0, len(w))
	for p := range w {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		wi, wj := w[pairs[i]], w[pairs[j]]
		if wi != wj {
			return wi > wj
		}
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	return pairs
}
