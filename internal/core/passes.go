package core

import (
	"context"
	"fmt"

	"atomique/internal/fidelity"
	"atomique/internal/graphs"
	"atomique/internal/metrics"
	"atomique/internal/pipeline"
	"atomique/internal/sabre"
)

// Passes returns the Atomique pass list (Fig 3) for the given options:
//
//	map-arrays       qubit-array mapper (greedy MAX k-cut, Alg. 1)
//	route-interarray inter-array SWAP insertion (SABRE on the multipartite graph)
//	map-atoms        qubit-atom mapper (Figs 6-7)
//	route            high-parallelism AOD router (Figs 8-11)
//	fidelity         static counts + fidelity model evaluation (Sec. IV)
//
// Every entry point (Compile, the CLI, the experiment drivers, the compile
// service) drives this same list through pipeline.Run, so per-pass timings
// are comparable everywhere.
func Passes(opts Options) []pipeline.Pass {
	opts = opts.withDefaults()
	return []pipeline.Pass{
		arrayMapPass{opts},
		swapInsertPass{opts},
		atomMapPass{opts},
		routePass{opts},
		fidelityPass{opts},
	}
}

// PassNames returns the Atomique pass names in execution order.
func PassNames() []string {
	return pipeline.New(Passes(Options{})...).Names()
}

// arrayMapPass is stage 1: assign each logical qubit to the SLM or an AOD
// array and pack qubits into contiguous slot ranges per array.
type arrayMapPass struct{ opts Options }

func (p arrayMapPass) Name() string { return "map-arrays" }

func (p arrayMapPass) Run(_ context.Context, st *pipeline.State) error {
	st.ArrayOf = mapQubitsToArrays(st.Cfg, st.Circ, p.opts)
	sizes := make([]int, st.Cfg.NumArrays())
	for _, a := range st.ArrayOf {
		sizes[a]++
	}
	st.Sizes = sizes
	st.SlotOf = slotAssignment(st.ArrayOf, sizes)
	return nil
}

// swapInsertPass is stage 2: SABRE routing on the complete multipartite
// coupling graph makes every remaining two-qubit gate cross-array.
type swapInsertPass struct{ opts Options }

func (p swapInsertPass) Name() string { return "route-interarray" }

func (p swapInsertPass) Run(_ context.Context, st *pipeline.State) error {
	mp := graphs.CompleteMultipartite(st.Sizes)
	st.FinalSlotOf = st.SlotOf
	if allInOneArray(st.Sizes) && st.Circ.Num2Q() > 0 {
		return fmt.Errorf("core: all qubits mapped to one array; no couplings available")
	}
	if st.Circ.Num2Q() == 0 {
		st.Routed = relabel(st.Circ, st.SlotOf, mp.N)
		return nil
	}
	res := sabre.Route(st.Circ, mp, sabre.Options{
		InitialMapping: st.SlotOf,
		Seed:           p.opts.Seed,
	})
	st.Routed = res.Routed
	st.SwapCount = res.SwapCount
	st.FinalSlotOf = res.FinalMapping
	return nil
}

// atomMapPass is stage 3: assign every occupied slot a trap site.
type atomMapPass struct{ opts Options }

func (p atomMapPass) Name() string { return "map-atoms" }

func (p atomMapPass) Run(_ context.Context, st *pipeline.State) error {
	st.SiteOf = mapSlotsToAtoms(st.Cfg, st.Routed, st.Sizes, p.opts, st.Rng)
	return nil
}

// routePass is stage 4: the high-parallelism AOD router.
type routePass struct{ opts Options }

func (p routePass) Name() string { return "route" }

func (p routePass) Run(ctx context.Context, st *pipeline.State) error {
	sched, trace, stats, err := route(ctx, st.Cfg, st.Routed, st.SiteOf, st.Sizes, p.opts)
	if err != nil {
		return err
	}
	st.Schedule = sched
	st.Trace = trace
	st.Router = stats
	return nil
}

// fidelityPass is the final stage: static gate accounting plus the fidelity
// model over the movement trace, summarised into the metrics record.
// CompileTime and Passes are filled by the caller once the pipeline returns.
type fidelityPass struct{ opts Options }

func (p fidelityPass) Name() string { return "fidelity" }

func (p fidelityPass) Run(_ context.Context, st *pipeline.State) error {
	st.Static = fidelity.Static{
		NQubits:   st.Circ.N,
		N1Q:       st.Routed.Num1Q(),
		N1QLayers: st.Router.OneQLayers,
		N2Q:       st.Routed.Num2Q(),
		Depth2Q:   st.Router.Stages,
	}
	bd := fidelity.Evaluate(st.Cfg.Params, st.Static, st.Trace)
	st.Metrics = metrics.Compiled{
		Arch:          "Atomique",
		NQubits:       st.Circ.N,
		N2Q:           st.Routed.Num2Q(),
		N1Q:           st.Routed.Num1Q(),
		Depth2Q:       st.Router.Stages,
		N1QLayers:     st.Router.OneQLayers,
		SwapCount:     st.SwapCount,
		AddedCNOTs:    3 * st.SwapCount,
		ExecutionTime: st.Router.ExecTime,
		MoveStages:    st.Router.Stages,
		TotalMoveDist: st.Router.TotalDist,
		AvgMoveDist:   st.Router.AvgDist(),
		CoolingEvents: st.Router.Coolings,
		Overlaps:      st.Router.Overlaps,
		Fidelity:      bd,
	}
	return nil
}
