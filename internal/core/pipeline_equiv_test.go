package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"atomique/internal/circuit"
	"atomique/internal/fidelity"
	"atomique/internal/graphs"
	"atomique/internal/hardware"
	"atomique/internal/metrics"
	"atomique/internal/pipeline"
	"atomique/internal/sabre"
)

// compileReference reproduces the pre-refactor monolithic CompileContext
// orchestration — the same stage functions called inline, without the pass
// pipeline — and additionally returns the routed intermediate circuit. The
// pass-based Compile must produce gate-for-gate identical output.
func compileReference(cfg hardware.Config, circ *circuit.Circuit, opts Options) (*Result, *circuit.Circuit, error) {
	opts = opts.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	arrayOf := mapQubitsToArrays(cfg, circ, opts)
	sizes := make([]int, cfg.NumArrays())
	for _, a := range arrayOf {
		sizes[a]++
	}
	slotOf := slotAssignment(arrayOf, sizes)
	mp := graphs.CompleteMultipartite(sizes)
	var routed *circuit.Circuit
	var swaps int
	finalSlotOf := slotOf
	if circ.Num2Q() == 0 {
		routed = relabel(circ, slotOf, mp.N)
	} else {
		res := sabre.Route(circ, mp, sabre.Options{InitialMapping: slotOf, Seed: opts.Seed})
		routed = res.Routed
		swaps = res.SwapCount
		finalSlotOf = res.FinalMapping
	}
	siteOf := mapSlotsToAtoms(cfg, routed, sizes, opts, rng)
	sched, trace, stats, err := route(context.Background(), cfg, routed, siteOf, sizes, opts)
	if err != nil {
		return nil, nil, err
	}
	static := fidelity.Static{
		NQubits:   circ.N,
		N1Q:       routed.Num1Q(),
		N1QLayers: stats.OneQLayers,
		N2Q:       routed.Num2Q(),
		Depth2Q:   stats.Stages,
	}
	m := metrics.Compiled{
		Arch:          "Atomique",
		NQubits:       circ.N,
		N2Q:           routed.Num2Q(),
		N1Q:           routed.Num1Q(),
		Depth2Q:       stats.Stages,
		N1QLayers:     stats.OneQLayers,
		SwapCount:     swaps,
		AddedCNOTs:    3 * swaps,
		ExecutionTime: stats.ExecTime,
		MoveStages:    stats.Stages,
		TotalMoveDist: stats.TotalDist,
		AvgMoveDist:   stats.AvgDist(),
		CoolingEvents: stats.Coolings,
		Overlaps:      stats.Overlaps,
		Fidelity:      fidelity.Evaluate(cfg.Params, static, trace),
	}
	return &Result{
		ArrayOf:       arrayOf,
		SiteOf:        siteOf,
		InitialSlotOf: slotOf,
		FinalSlotOf:   finalSlotOf,
		Schedule:      sched,
		Metrics:       m,
		Trace:         trace,
		Static:        static,
	}, routed, nil
}

// schedulePairs returns the multiset of two-qubit slot pairs a schedule
// executes, keyed canonically.
func schedulePairs(s *pipeline.Schedule) map[[2]int]int {
	pairs := make(map[[2]int]int)
	for _, st := range s.Stages {
		for _, g := range st.Gates {
			pairs[pairKey(g.SlotA, g.SlotB)]++
		}
	}
	return pairs
}

// circuitPairs returns the multiset of two-qubit pairs in a circuit.
func circuitPairs(c *circuit.Circuit) map[[2]int]int {
	pairs := make(map[[2]int]int)
	for _, g := range c.Gates {
		if g.IsTwoQubit() {
			pairs[pairKey(g.Q0, g.Q1)]++
		}
	}
	return pairs
}

// TestPipelineMatchesReferencePath compiles 50 seeded random circuits
// through both the pass pipeline and the pre-refactor reference path and
// requires identical output: same placement, same schedule gate for gate,
// same metrics and movement trace. It also asserts the routing pass
// preserves two-qubit pairs: the multiset of slot pairs the schedule fires
// equals the multiset of pairs in the routed intermediate circuit.
func TestPipelineMatchesReferencePath(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		seed := int64(1000 + trial)
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(24)
		side := 3 + rng.Intn(2)
		cfg := hardware.SquareConfig(side, 1+rng.Intn(2))
		if n > cfg.Capacity() {
			n = cfg.Capacity()
		}
		c := randomMixed(rng, n, 20+rng.Intn(130))
		opts := Options{Seed: seed}

		got, err := Compile(cfg, c, opts)
		if err != nil {
			t.Fatalf("trial %d: pipeline compile: %v", trial, err)
		}
		want, routed, err := compileReference(cfg, c, opts)
		if err != nil {
			t.Fatalf("trial %d: reference compile: %v", trial, err)
		}

		// Wall-clock instrumentation is the only permitted difference.
		gm := got.Metrics
		gm.CompileTime = 0
		gm.Passes = nil
		if !reflect.DeepEqual(gm, want.Metrics) {
			t.Fatalf("trial %d (seed %d): metrics diverge:\npipeline:  %+v\nreference: %+v",
				trial, seed, gm, want.Metrics)
		}
		if !reflect.DeepEqual(got.Schedule, want.Schedule) {
			t.Fatalf("trial %d (seed %d): schedules diverge", trial, seed)
		}
		if !reflect.DeepEqual(got.ArrayOf, want.ArrayOf) ||
			!reflect.DeepEqual(got.SiteOf, want.SiteOf) ||
			!reflect.DeepEqual(got.InitialSlotOf, want.InitialSlotOf) ||
			!reflect.DeepEqual(got.FinalSlotOf, want.FinalSlotOf) {
			t.Fatalf("trial %d (seed %d): placements diverge", trial, seed)
		}
		if !reflect.DeepEqual(got.Trace, want.Trace) {
			t.Fatalf("trial %d (seed %d): movement traces diverge", trial, seed)
		}

		// Routing preserves two-qubit pairs: nothing is dropped, duplicated,
		// or retargeted between the routed circuit and the schedule.
		if sp, cp := schedulePairs(got.Schedule), circuitPairs(routed); !reflect.DeepEqual(sp, cp) {
			t.Fatalf("trial %d (seed %d): schedule pairs %v != routed pairs %v", trial, seed, sp, cp)
		}
	}
}

// TestCompileDeterministicPerSeed pins the deterministic-per-seed contract
// the service cache relies on, now including move ordering (commitMoves
// emits moves in sorted index order).
func TestCompileDeterministicPerSeed(t *testing.T) {
	cfg := hardware.SquareConfig(4, 2)
	rng := rand.New(rand.NewSource(9))
	c := randomMixed(rng, 12, 80)
	a, err := Compile(cfg, c, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(cfg, c, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Schedule, b.Schedule) {
		t.Fatal("schedules differ across identical compiles")
	}
	am, bm := a.Metrics, b.Metrics
	am.CompileTime, bm.CompileTime = 0, 0
	am.Passes, bm.Passes = nil, nil
	if !reflect.DeepEqual(am, bm) {
		t.Fatalf("metrics differ across identical compiles:\n%+v\n%+v", am, bm)
	}
}

// TestPassTimingsPopulated asserts the instrumentation contract: one timing
// per pass, in pass order, with the route pass reporting the scheduled
// moves.
func TestPassTimingsPopulated(t *testing.T) {
	cfg := hardware.SquareConfig(4, 2)
	rng := rand.New(rand.NewSource(11))
	c := randomMixed(rng, 10, 60)
	res, err := Compile(cfg, c, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	names := PassNames()
	if len(res.Metrics.Passes) != len(names) {
		t.Fatalf("got %d pass timings, want %d", len(res.Metrics.Passes), len(names))
	}
	totalMoves := 0
	for _, st := range res.Schedule.Stages {
		totalMoves += len(st.Moves)
	}
	for i, p := range res.Metrics.Passes {
		if p.Name != names[i] {
			t.Errorf("pass %d = %q, want %q", i, p.Name, names[i])
		}
		if p.Seconds < 0 {
			t.Errorf("pass %q negative wall time", p.Name)
		}
	}
	last := res.Metrics.Passes[len(res.Metrics.Passes)-1]
	if last.Moves != totalMoves {
		t.Errorf("final pass moves = %d, want %d", last.Moves, totalMoves)
	}
	var sum float64
	for _, p := range res.Metrics.Passes {
		sum += p.Seconds
	}
	if sum > res.Metrics.CompileTime.Seconds()+float64(time.Second.Seconds()) {
		t.Errorf("pass seconds %v exceed compile time %v", sum, res.Metrics.CompileTime)
	}
}
