package core

import (
	"strings"
	"testing"
)

func TestApplyRelax(t *testing.T) {
	var o Options
	if err := o.ApplyRelax("1, 3"); err != nil {
		t.Fatal(err)
	}
	if !o.RelaxAddressing || o.RelaxOrder || !o.RelaxOverlap {
		t.Errorf("flags = %+v, want 1 and 3 set", o)
	}

	var empty Options
	if err := empty.ApplyRelax(""); err != nil {
		t.Errorf("empty spec: %v", err)
	}
	if empty != (Options{}) {
		t.Errorf("empty spec mutated options: %+v", empty)
	}
	if err := empty.ApplyRelax("2,,"); err != nil {
		t.Errorf("trailing commas: %v", err)
	}
	if !empty.RelaxOrder {
		t.Error("constraint 2 not set")
	}
}

func TestApplyRelaxRejectsBadIDs(t *testing.T) {
	for _, spec := range []string{"4", "0", "x", "1,2,bogus", "1,1"} {
		var o Options
		err := o.ApplyRelax(spec)
		if err == nil {
			t.Errorf("spec %q: no error", spec)
			continue
		}
		if spec != "1,1" && !strings.Contains(err.Error(), "valid IDs") {
			t.Errorf("spec %q: error %q does not name the valid set", spec, err)
		}
	}
}
