package core

import (
	"context"
	"fmt"
	"math"

	"atomique/internal/circuit"
	"atomique/internal/fidelity"
	"atomique/internal/hardware"
	"atomique/internal/move"
)

// route is the high-parallelism AOD router (Fig 8). It iterates over the
// dependency frontier of the transpiled circuit: one-qubit gates execute
// immediately under the Raman laser; two-qubit gates are greedily batched
// into the largest stage satisfying the three hardware constraints
// (Figs 9-11), after which the AOD rows/columns move and the global Rydberg
// pulse fires. Heating (n_vib), cooling swaps, movement distance, and
// execution time are tracked throughout.
//
// Movement model: parked AOD rows/columns always rest at interstitial
// coordinates (grid target plus the array's park offset), so idle atoms
// never sit within the Rydberg range of a grid site. A row/column that moves
// travels to its grid-aligned target and retreats to the interstitial park
// position afterwards; both legs count toward distance and heating. For
// AOD-AOD gates the lower-indexed array stays pinned at its (interstitial)
// position and the other array meets it there. Constraint checks operate on
// actively bound rows/columns, matching the abstraction level of Figs 9-11.
func route(ctx context.Context, cfg hardware.Config, routed *circuit.Circuit, siteOf []hardware.Site,
	sizes []int, opts Options) (*Schedule, fidelity.MovementTrace, routerStats, error) {

	st := newRouterState(cfg, siteOf, opts)
	front := circuit.NewFrontier(circuit.NewDAG(routed))
	sched := &Schedule{}
	var trace fidelity.MovementTrace
	var stats routerStats

	for !front.Done() {
		// Cancellation hook: one check per stage keeps the overhead
		// negligible while bounding abort latency to a single stage.
		if err := ctx.Err(); err != nil {
			return nil, fidelity.MovementTrace{}, routerStats{}, fmt.Errorf("core: compilation cancelled: %w", err)
		}
		stage := Stage{}

		// Phase 1: drain one-qubit gates layer by layer (each pass over the
		// frontier is one parallel Raman layer).
		for {
			var batch []int
			for _, gi := range front.Front() {
				if !front.Gate(gi).IsTwoQubit() {
					batch = append(batch, gi)
				}
			}
			if len(batch) == 0 {
				break
			}
			for _, gi := range batch {
				g := front.Gate(gi)
				stage.OneQ = append(stage.OneQ, GateExec{Op: g.Op, SlotA: g.Q0, SlotB: -1, Param: g.Param})
				front.Execute(gi)
			}
			stats.oneQLayers++
			stats.execTime += cfg.Params.Time1Q
		}
		if front.Done() {
			if len(stage.OneQ) > 0 {
				sched.Stages = append(sched.Stages, stage)
			}
			break
		}

		// Phase 2: greedily batch legal parallel two-qubit gates.
		var batch []int
		plan := newStagePlan(st)
		for _, gi := range append([]int(nil), front.Front()...) {
			g := front.Gate(gi)
			if !g.IsTwoQubit() {
				continue
			}
			if opts.SerialRouter && len(batch) >= 1 {
				break
			}
			reason := plan.tryAdd(g.Q0, g.Q1)
			if reason == addOK {
				batch = append(batch, gi)
			} else if reason == addOverlap {
				stats.overlaps++
			}
		}
		if len(batch) == 0 {
			for _, gi := range front.Front() {
				g := front.Gate(gi)
				if g.IsTwoQubit() {
					reason := newStagePlan(st).tryAdd(g.Q0, g.Q1)
					panicMsg := fmt.Sprintf("core: router stuck: gate %v sites %v %v reason %d",
						g, siteOf[g.Q0], siteOf[g.Q1], reason)
					panic(panicMsg)
				}
			}
			panic("core: router made no progress (intra-SLM gate?)")
		}

		// Commit: movements, heating, gates.
		stage.Moves = plan.commitMoves()
		stageDist := 0.0
		for a := 1; a < cfg.NumArrays(); a++ {
			rd, cd := st.rowDisp[a], st.colDisp[a]
			for _, slot := range st.atomsOf[a] {
				s := siteOf[slot]
				d := math.Hypot(rd[s.Row], cd[s.Col])
				if d > 0 {
					st.nvib[slot] += move.DeltaNvib(d, cfg.Params.TimePerMove, cfg.Params)
					trace.MoveNvib = append(trace.MoveNvib, st.nvib[slot])
					stageDist += d
				}
			}
		}
		stats.totalDist += stageDist

		for _, gi := range batch {
			g := front.Gate(gi)
			stage.Gates = append(stage.Gates, GateExec{Op: g.Op, SlotA: g.Q0, SlotB: g.Q1, Param: g.Param})
			front.Execute(gi)
			trace.GateNvib = append(trace.GateNvib, st.gateNvib(g.Q0, g.Q1))
		}

		trace.StageQubits = append(trace.StageQubits, len(siteOf))
		trace.StageMoveTime = append(trace.StageMoveTime, cfg.Params.TimePerMove)
		stats.execTime += cfg.Params.TimePerMove + cfg.Params.Time2Q
		stats.stages++
		sched.Stages = append(sched.Stages, stage)

		// Cooling: any AOD array whose hottest atom exceeds the threshold is
		// swapped wholesale into a pre-cooled array (two CZ per atom).
		for a := 1; a < cfg.NumArrays(); a++ {
			hot := false
			for _, slot := range st.atomsOf[a] {
				if st.nvib[slot] > cfg.Params.NvibCool {
					hot = true
					break
				}
			}
			if hot {
				trace.CoolingAtomCounts = append(trace.CoolingAtomCounts, len(st.atomsOf[a]))
				for _, slot := range st.atomsOf[a] {
					st.nvib[slot] = 0
				}
				stats.coolings++
				stats.execTime += 2 * cfg.Params.Time2Q
			}
		}
	}
	return sched, trace, stats, nil
}

// routerState holds the mutable execution state: AOD row/column coordinates,
// per-atom n_vib, and per-array atom indexes.
type routerState struct {
	cfg      hardware.Config
	opts     Options
	siteOf   []hardware.Site
	atomsOf  [][]int        // array -> slots
	slotAt   map[[3]int]int // (array,row,col) -> slot
	rowCoord [][]float64    // array -> row index -> current y (parked)
	colCoord [][]float64    // array -> col index -> current x (parked)
	rowDisp  [][]float64    // scratch: per-row displacement this stage
	colDisp  [][]float64
	nvib     []float64
	parkOff  []float64 // per-array interstitial park offset
}

func newRouterState(cfg hardware.Config, siteOf []hardware.Site, opts Options) *routerState {
	k := cfg.NumArrays()
	st := &routerState{
		cfg:      cfg,
		opts:     opts,
		siteOf:   siteOf,
		atomsOf:  make([][]int, k),
		slotAt:   make(map[[3]int]int, len(siteOf)),
		rowCoord: make([][]float64, k),
		colCoord: make([][]float64, k),
		rowDisp:  make([][]float64, k),
		colDisp:  make([][]float64, k),
		nvib:     make([]float64, len(siteOf)),
		parkOff:  make([]float64, k),
	}
	for slot, s := range siteOf {
		st.atomsOf[s.Array] = append(st.atomsOf[s.Array], slot)
		st.slotAt[[3]int{s.Array, s.Row, s.Col}] = slot
	}
	for a := 0; a < k; a++ {
		spec := cfg.Array(a)
		st.rowCoord[a] = make([]float64, spec.Rows)
		st.colCoord[a] = make([]float64, spec.Cols)
		st.rowDisp[a] = make([]float64, spec.Rows)
		st.colDisp[a] = make([]float64, spec.Cols)
		st.parkOff[a] = cfg.HomeY(hardware.Site{Array: a}) - cfg.SiteY(0)
		for r := 0; r < spec.Rows; r++ {
			st.rowCoord[a][r] = cfg.HomeY(hardware.Site{Array: a, Row: r})
		}
		for c := 0; c < spec.Cols; c++ {
			st.colCoord[a][c] = cfg.HomeX(hardware.Site{Array: a, Col: c})
		}
	}
	return st
}

// gateNvib returns the effective n_vib for a two-qubit gate: the AOD atom's
// value for AOD-SLM pairs, the sum for AOD-AOD pairs (Sec. IV).
func (st *routerState) gateNvib(a, b int) float64 {
	sa, sb := st.siteOf[a], st.siteOf[b]
	switch {
	case sa.Array == 0:
		return st.nvib[b]
	case sb.Array == 0:
		return st.nvib[a]
	default:
		return st.nvib[a] + st.nvib[b]
	}
}

// addReason classifies tryAdd outcomes.
type addReason int

const (
	addOK          addReason = iota
	addRowConflict           // a row/column is already bound to a different target
	addOrder                 // constraint 2: would invert row/column order
	addOverlap               // constraint 3: two rows/columns would coincide
	addAddressing            // constraint 1: would create an unintended interaction
	addIllegal               // intra-SLM gate (compiler invariant violation)
)

// stagePlan accumulates the row/column targets of a candidate stage and
// checks the three hardware constraints incrementally.
type stagePlan struct {
	st    *routerState
	rowT  []map[int]float64 // array -> row index -> target y
	colT  []map[int]float64 // array -> col index -> target x
	gates [][2]int          // accepted gates (ordered slot pairs)
	pairs map[[2]int]bool
}

func newStagePlan(st *routerState) *stagePlan {
	k := st.cfg.NumArrays()
	p := &stagePlan{st: st, pairs: make(map[[2]int]bool)}
	p.rowT = make([]map[int]float64, k)
	p.colT = make([]map[int]float64, k)
	for a := 0; a < k; a++ {
		p.rowT[a] = make(map[int]float64)
		p.colT[a] = make(map[int]float64)
	}
	return p
}

// binds returns the row and column bindings a gate requires. For AOD-SLM
// gates the AOD atom targets the SLM grid site; for AOD-AOD gates both
// arrays meet at a canonical interstitial point — the lower-indexed atom's
// home grid cell plus that array's park offset, which is never grid-aligned,
// so the meeting can never collide with an SLM atom regardless of movement
// history.
func (p *stagePlan) binds(a, b int) (rows, cols [][3]float64) {
	st := p.st
	sa, sb := st.siteOf[a], st.siteOf[b]
	mk := func(array, idx int, target float64) [3]float64 {
		return [3]float64{float64(array), float64(idx), target}
	}
	switch {
	case sa.Array == 0 || sb.Array == 0:
		slm, aod := sa, sb
		if sb.Array == 0 {
			slm, aod = sb, sa
		}
		rows = append(rows, mk(aod.Array, aod.Row, st.cfg.SiteY(slm.Row)))
		cols = append(cols, mk(aod.Array, aod.Col, st.cfg.SiteX(slm.Col)))
	default:
		pin, mov := sa, sb
		if sb.Array < sa.Array {
			pin, mov = sb, sa
		}
		meetY := st.cfg.SiteY(pin.Row) + st.parkOff[pin.Array]
		meetX := st.cfg.SiteX(pin.Col) + st.parkOff[pin.Array]
		rows = append(rows, mk(pin.Array, pin.Row, meetY), mk(mov.Array, mov.Row, meetY))
		cols = append(cols, mk(pin.Array, pin.Col, meetX), mk(mov.Array, mov.Col, meetX))
	}
	return rows, cols
}

// tryAdd attempts to add the gate (slotA, slotB) to the stage. On success
// the plan is updated; on failure it is left unchanged.
func (p *stagePlan) tryAdd(a, b int) addReason {
	st := p.st
	sa, sb := st.siteOf[a], st.siteOf[b]
	if sa.Array == 0 && sb.Array == 0 {
		return addIllegal
	}
	rows, cols := p.binds(a, b)

	// A row/column already bound to a different target cannot be split.
	for _, rb := range rows {
		if t, ok := p.rowT[int(rb[0])][int(rb[1])]; ok && !approxEq(t, rb[2]) {
			return addRowConflict
		}
	}
	for _, cb := range cols {
		if t, ok := p.colT[int(cb[0])][int(cb[1])]; ok && !approxEq(t, cb[2]) {
			return addRowConflict
		}
	}

	// Tentatively apply, then validate constraints 2, 3, 1.
	for _, rb := range rows {
		p.rowT[int(rb[0])][int(rb[1])] = rb[2]
	}
	for _, cb := range cols {
		p.colT[int(cb[0])][int(cb[1])] = cb[2]
	}
	key := pairKey(a, b)
	p.pairs[key] = true
	p.gates = append(p.gates, key)

	reason := p.checkOrderAndOverlap()
	if reason == addOK && !st.opts.RelaxAddressing && !p.checkAddressing() {
		reason = addAddressing
	}
	if reason != addOK {
		p.rebuildWithoutLast()
	}
	return reason
}

// rebuildWithoutLast removes the most recently added gate and rebuilds the
// binding maps from the remaining accepted gates (which are mutually legal
// by induction).
func (p *stagePlan) rebuildWithoutLast() {
	last := p.gates[len(p.gates)-1]
	p.gates = p.gates[:len(p.gates)-1]
	delete(p.pairs, last)
	k := p.st.cfg.NumArrays()
	for a := 0; a < k; a++ {
		p.rowT[a] = make(map[int]float64)
		p.colT[a] = make(map[int]float64)
	}
	for _, g := range p.gates {
		rows, cols := p.binds(g[0], g[1])
		for _, rb := range rows {
			p.rowT[int(rb[0])][int(rb[1])] = rb[2]
		}
		for _, cb := range cols {
			p.colT[int(cb[0])][int(cb[1])] = cb[2]
		}
	}
}

// checkOrderAndOverlap enforces constraints 2 and 3 on every AOD array:
// bound rows (columns) must keep strictly increasing targets in index order.
func (p *stagePlan) checkOrderAndOverlap() addReason {
	st := p.st
	for a := 1; a < st.cfg.NumArrays(); a++ {
		if r := checkAxis(p.rowT[a], st.opts); r != addOK {
			return r
		}
		if r := checkAxis(p.colT[a], st.opts); r != addOK {
			return r
		}
	}
	return addOK
}

func checkAxis(binds map[int]float64, opts Options) addReason {
	if len(binds) < 2 {
		return addOK
	}
	idxs := make([]int, 0, len(binds))
	for i := range binds {
		idxs = append(idxs, i)
	}
	sortInts(idxs)
	for i := 1; i < len(idxs); i++ {
		prev, cur := binds[idxs[i-1]], binds[idxs[i]]
		if approxEq(prev, cur) {
			if !opts.RelaxOverlap {
				return addOverlap
			}
			continue
		}
		if prev > cur && !opts.RelaxOrder {
			return addOrder
		}
	}
	return addOK
}

// checkAddressing enforces constraint 1: every pair of atoms brought to the
// same point by the planned moves must be an accepted gate, and no point may
// host more than two atoms (the global Rydberg pulse entangles every pair
// within range).
func (p *stagePlan) checkAddressing() bool {
	st := p.st
	atomsAt := make(map[[2]int64][]int)
	for a := 1; a < st.cfg.NumArrays(); a++ {
		if len(p.rowT[a]) == 0 || len(p.colT[a]) == 0 {
			continue
		}
		for r, y := range p.rowT[a] {
			for c, x := range p.colT[a] {
				slot, ok := st.slotAt[[3]int{a, r, c}]
				if !ok {
					continue // empty trap site
				}
				key := quantize(y, x)
				atomsAt[key] = append(atomsAt[key], slot)
			}
		}
	}
	for key, group := range atomsAt {
		if slot, ok := st.slmAtomAt(key); ok {
			group = append(group, slot)
		}
		if len(group) > 2 {
			return false
		}
		if len(group) == 2 && !p.pairs[pairKey(group[0], group[1])] {
			return false
		}
	}
	return true
}

// slmAtomAt returns the SLM slot whose grid position quantises to key.
func (st *routerState) slmAtomAt(key [2]int64) (int, bool) {
	d := st.cfg.Params.AtomDistance
	y := float64(key[0]) * 1e-9
	x := float64(key[1]) * 1e-9
	r := int(math.Round(y / d))
	c := int(math.Round(x / d))
	if r < 0 || c < 0 || !approxEq(float64(r)*d, y) || !approxEq(float64(c)*d, x) {
		return 0, false // interstitial or off-grid point
	}
	slot, ok := st.slotAt[[3]int{0, r, c}]
	return slot, ok
}

// commitMoves translates the plan's bindings into Move records, updates the
// row/column coordinates (target plus park retreat), and fills the per-axis
// displacement scratch used for heating.
func (p *stagePlan) commitMoves() []Move {
	st := p.st
	var moves []Move
	for a := 1; a < st.cfg.NumArrays(); a++ {
		for i := range st.rowDisp[a] {
			st.rowDisp[a][i] = 0
		}
		for i := range st.colDisp[a] {
			st.colDisp[a][i] = 0
		}
		off := st.parkOff[a]
		park := func(target float64) (parked, retreat float64) {
			// Grid-aligned targets (AOD-SLM gates) retreat to an interstitial
			// park position after the pulse; interstitial meeting points
			// (AOD-AOD gates) are already safe to rest at.
			if st.gridAligned(target) {
				return target + off, off
			}
			return target, 0
		}
		for r, y := range p.rowT[a] {
			cur := st.rowCoord[a][r]
			if approxEq(cur, y) {
				continue // pinned in place
			}
			parked, retreat := park(y)
			moves = append(moves, Move{Array: a, IsRow: true, Index: r, From: cur, To: y})
			st.rowDisp[a][r] = math.Abs(y-cur) + retreat // travel + retreat
			st.rowCoord[a][r] = parked
		}
		for c, x := range p.colT[a] {
			cur := st.colCoord[a][c]
			if approxEq(cur, x) {
				continue
			}
			parked, retreat := park(x)
			moves = append(moves, Move{Array: a, IsRow: false, Index: c, From: cur, To: x})
			st.colDisp[a][c] = math.Abs(x-cur) + retreat
			st.colCoord[a][c] = parked
		}
	}
	return moves
}

func pairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

func quantize(y, x float64) [2]int64 {
	return [2]int64{int64(math.Round(y * 1e9)), int64(math.Round(x * 1e9))}
}

func approxEq(a, b float64) bool { return math.Abs(a-b) < 1e-10 }

// gridAligned reports whether a coordinate sits on an SLM grid line.
func (st *routerState) gridAligned(v float64) bool {
	d := st.cfg.Params.AtomDistance
	return approxEq(math.Round(v/d)*d, v)
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
