package core

import (
	"context"
	"fmt"
	"math"

	"atomique/internal/circuit"
	"atomique/internal/fidelity"
	"atomique/internal/hardware"
	"atomique/internal/move"
	"atomique/internal/pipeline"
)

// route is the high-parallelism AOD router (Fig 8). It iterates over the
// dependency frontier of the transpiled circuit: one-qubit gates execute
// immediately under the Raman laser; two-qubit gates are greedily batched
// into the largest stage satisfying the three hardware constraints
// (Figs 9-11), after which the AOD rows/columns move and the global Rydberg
// pulse fires. Heating (n_vib), cooling swaps, movement distance, and
// execution time are tracked throughout.
//
// Movement model: parked AOD rows/columns always rest at interstitial
// coordinates (grid target plus the array's park offset), so idle atoms
// never sit within the Rydberg range of a grid site. A row/column that moves
// travels to its grid-aligned target and retreats to the interstitial park
// position afterwards; both legs count toward distance and heating. For
// AOD-AOD gates the lower-indexed array stays pinned at its (interstitial)
// position and the other array meets it there. Constraint checks operate on
// actively bound rows/columns, matching the abstraction level of Figs 9-11.
func route(ctx context.Context, cfg hardware.Config, routed *circuit.Circuit, siteOf []hardware.Site,
	sizes []int, opts Options) (*Schedule, fidelity.MovementTrace, pipeline.RouterStats, error) {

	st := newRouterState(cfg, siteOf, opts)
	front := circuit.NewFrontier(circuit.NewDAG(routed))
	sched := &Schedule{}
	var trace fidelity.MovementTrace
	var stats pipeline.RouterStats

	for !front.Done() {
		// Cancellation hook: one check per stage keeps the overhead
		// negligible while bounding abort latency to a single stage.
		if err := ctx.Err(); err != nil {
			return nil, fidelity.MovementTrace{}, pipeline.RouterStats{}, fmt.Errorf("core: compilation cancelled: %w", err)
		}
		stage := Stage{}

		// Phase 1: drain one-qubit gates layer by layer (each pass over the
		// frontier is one parallel Raman layer).
		for {
			var batch []int
			for _, gi := range front.Front() {
				if !front.Gate(gi).IsTwoQubit() {
					batch = append(batch, gi)
				}
			}
			if len(batch) == 0 {
				break
			}
			for _, gi := range batch {
				g := front.Gate(gi)
				stage.OneQ = append(stage.OneQ, GateExec{Op: g.Op, SlotA: g.Q0, SlotB: -1, Param: g.Param})
				front.Execute(gi)
			}
			stats.OneQLayers++
			stats.ExecTime += cfg.Params.Time1Q
		}
		if front.Done() {
			if len(stage.OneQ) > 0 {
				sched.Stages = append(sched.Stages, stage)
			}
			break
		}

		// Phase 2: greedily batch legal parallel two-qubit gates.
		var batch []int
		plan := st.stagePlanFor()
		for _, gi := range append([]int(nil), front.Front()...) {
			g := front.Gate(gi)
			if !g.IsTwoQubit() {
				continue
			}
			if opts.SerialRouter && len(batch) >= 1 {
				break
			}
			reason := plan.tryAdd(g.Q0, g.Q1)
			if reason == addOK {
				batch = append(batch, gi)
			} else if reason == addOverlap {
				stats.Overlaps++
			}
		}
		if len(batch) == 0 {
			for _, gi := range front.Front() {
				g := front.Gate(gi)
				if g.IsTwoQubit() {
					reason := newStagePlan(st).tryAdd(g.Q0, g.Q1)
					panicMsg := fmt.Sprintf("core: router stuck: gate %v sites %v %v reason %d",
						g, siteOf[g.Q0], siteOf[g.Q1], reason)
					panic(panicMsg)
				}
			}
			panic("core: router made no progress (intra-SLM gate?)")
		}

		// Commit: movements, heating, gates.
		stage.Moves = plan.commitMoves()
		stageDist := 0.0
		for a := 1; a < cfg.NumArrays(); a++ {
			rd, cd := st.rowDisp[a], st.colDisp[a]
			for _, slot := range st.atomsOf[a] {
				s := siteOf[slot]
				d := math.Hypot(rd[s.Row], cd[s.Col])
				if d > 0 {
					st.nvib[slot] += move.DeltaNvib(d, cfg.Params.TimePerMove, cfg.Params)
					trace.MoveNvib = append(trace.MoveNvib, st.nvib[slot])
					stageDist += d
				}
			}
		}
		stats.TotalDist += stageDist

		for _, gi := range batch {
			g := front.Gate(gi)
			stage.Gates = append(stage.Gates, GateExec{Op: g.Op, SlotA: g.Q0, SlotB: g.Q1, Param: g.Param})
			front.Execute(gi)
			trace.GateNvib = append(trace.GateNvib, st.gateNvib(g.Q0, g.Q1))
		}

		trace.StageQubits = append(trace.StageQubits, len(siteOf))
		trace.StageMoveTime = append(trace.StageMoveTime, cfg.Params.TimePerMove)
		stats.ExecTime += cfg.Params.TimePerMove + cfg.Params.Time2Q
		stats.Stages++
		sched.Stages = append(sched.Stages, stage)

		// Cooling: any AOD array whose hottest atom exceeds the threshold is
		// swapped wholesale into a pre-cooled array (two CZ per atom).
		for a := 1; a < cfg.NumArrays(); a++ {
			hot := false
			for _, slot := range st.atomsOf[a] {
				if st.nvib[slot] > cfg.Params.NvibCool {
					hot = true
					break
				}
			}
			if hot {
				trace.CoolingAtomCounts = append(trace.CoolingAtomCounts, len(st.atomsOf[a]))
				for _, slot := range st.atomsOf[a] {
					st.nvib[slot] = 0
				}
				stats.Coolings++
				stats.ExecTime += 2 * cfg.Params.Time2Q
			}
		}
	}
	return sched, trace, stats, nil
}

// routerState holds the mutable execution state: AOD row/column coordinates,
// per-atom n_vib, and per-array atom indexes.
type routerState struct {
	cfg      hardware.Config
	opts     Options
	siteOf   []hardware.Site
	atomsOf  [][]int     // array -> slots
	colsOf   []int       // array -> column count (occupancy stride)
	occ      [][]int     // array -> r*colsOf+c -> slot, or -1 for empty traps
	rowCoord [][]float64 // array -> row index -> current y (parked)
	colCoord [][]float64 // array -> col index -> current x (parked)
	rowDisp  [][]float64 // scratch: per-row displacement this stage
	colDisp  [][]float64
	nvib     []float64
	parkOff  []float64 // per-array interstitial park offset
	// bindCache memoises per-pair routing invariants (row/column targets and
	// the heating classification), keyed on pairKey. Sites never change
	// during routing, so the entry computed when a gate is first tried is
	// reused every time the gate is re-tried in a later stage and for every
	// gateNvib lookup.
	bindCache map[[2]int]*bindEntry
	// plan is the reusable stage plan; route resets it per stage instead of
	// reallocating its per-array tables.
	plan *stagePlan
}

func newRouterState(cfg hardware.Config, siteOf []hardware.Site, opts Options) *routerState {
	k := cfg.NumArrays()
	st := &routerState{
		cfg:       cfg,
		opts:      opts,
		siteOf:    siteOf,
		atomsOf:   make([][]int, k),
		colsOf:    make([]int, k),
		occ:       make([][]int, k),
		rowCoord:  make([][]float64, k),
		colCoord:  make([][]float64, k),
		rowDisp:   make([][]float64, k),
		colDisp:   make([][]float64, k),
		nvib:      make([]float64, len(siteOf)),
		parkOff:   make([]float64, k),
		bindCache: make(map[[2]int]*bindEntry),
	}
	for a := 0; a < k; a++ {
		spec := cfg.Array(a)
		st.colsOf[a] = spec.Cols
		st.occ[a] = make([]int, spec.Rows*spec.Cols)
		for i := range st.occ[a] {
			st.occ[a][i] = -1
		}
		st.rowCoord[a] = make([]float64, spec.Rows)
		st.colCoord[a] = make([]float64, spec.Cols)
		st.rowDisp[a] = make([]float64, spec.Rows)
		st.colDisp[a] = make([]float64, spec.Cols)
		st.parkOff[a] = cfg.HomeY(hardware.Site{Array: a}) - cfg.SiteY(0)
		for r := 0; r < spec.Rows; r++ {
			st.rowCoord[a][r] = cfg.HomeY(hardware.Site{Array: a, Row: r})
		}
		for c := 0; c < spec.Cols; c++ {
			st.colCoord[a][c] = cfg.HomeX(hardware.Site{Array: a, Col: c})
		}
	}
	for slot, s := range siteOf {
		st.atomsOf[s.Array] = append(st.atomsOf[s.Array], slot)
		st.occ[s.Array][s.Row*st.colsOf[s.Array]+s.Col] = slot
	}
	return st
}

// slotAt returns the slot parked at (array, row, col), if any.
func (st *routerState) slotAt(array, row, col int) (int, bool) {
	slot := st.occ[array][row*st.colsOf[array]+col]
	return slot, slot >= 0
}

// Heating classification of a pair (Sec. IV): whose n_vib a two-qubit gate
// accumulates.
const (
	nvibUseHi int8 = iota // AOD-SLM with the lower slot in the SLM
	nvibUseLo             // AOD-SLM with the higher slot in the SLM
	nvibSum               // AOD-AOD: both atoms move
)

// gateNvib returns the effective n_vib for a two-qubit gate: the AOD atom's
// value for AOD-SLM pairs, the sum for AOD-AOD pairs (Sec. IV).
func (st *routerState) gateNvib(a, b int) float64 {
	e := st.bindsFor(a, b)
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	switch e.nvibKind {
	case nvibUseHi:
		return st.nvib[hi]
	case nvibUseLo:
		return st.nvib[lo]
	default:
		return st.nvib[lo] + st.nvib[hi]
	}
}

// addReason classifies tryAdd outcomes.
type addReason int

const (
	addOK          addReason = iota
	addRowConflict           // a row/column is already bound to a different target
	addOrder                 // constraint 2: would invert row/column order
	addOverlap               // constraint 3: two rows/columns would coincide
	addAddressing            // constraint 1: would create an unintended interaction
	addIllegal               // intra-SLM gate (compiler invariant violation)
)

// bindEntry is the cached per-pair routing invariant: the row/column
// bindings the gate requires and the heating classification of the pair.
type bindEntry struct {
	rows, cols [][3]float64
	nvibKind   int8
}

// bindsFor returns the (memoised) row and column bindings a gate requires.
// For AOD-SLM gates the AOD atom targets the SLM grid site; for AOD-AOD
// gates both arrays meet at a canonical interstitial point — the
// lower-indexed atom's home grid cell plus that array's park offset, which
// is never grid-aligned, so the meeting can never collide with an SLM atom
// regardless of movement history. The bindings depend only on the immutable
// site assignment, so they are cached per pair: the result is identical for
// both argument orders.
func (st *routerState) bindsFor(a, b int) *bindEntry {
	key := pairKey(a, b)
	if e, ok := st.bindCache[key]; ok {
		return e
	}
	lo, hi := key[0], key[1]
	sa, sb := st.siteOf[lo], st.siteOf[hi]
	e := &bindEntry{}
	mk := func(array, idx int, target float64) [3]float64 {
		return [3]float64{float64(array), float64(idx), target}
	}
	switch {
	case sa.Array == 0 || sb.Array == 0:
		slm, aod := sa, sb
		e.nvibKind = nvibUseHi
		if sb.Array == 0 {
			slm, aod = sb, sa
			e.nvibKind = nvibUseLo
		}
		e.rows = append(e.rows, mk(aod.Array, aod.Row, st.cfg.SiteY(slm.Row)))
		e.cols = append(e.cols, mk(aod.Array, aod.Col, st.cfg.SiteX(slm.Col)))
	default:
		pin, mov := sa, sb
		if sb.Array < sa.Array {
			pin, mov = sb, sa
		}
		e.nvibKind = nvibSum
		meetY := st.cfg.SiteY(pin.Row) + st.parkOff[pin.Array]
		meetX := st.cfg.SiteX(pin.Col) + st.parkOff[pin.Array]
		e.rows = append(e.rows, mk(pin.Array, pin.Row, meetY), mk(mov.Array, mov.Row, meetY))
		e.cols = append(e.cols, mk(pin.Array, pin.Col, meetX), mk(mov.Array, mov.Col, meetX))
	}
	st.bindCache[key] = e
	return e
}

// bindUndo records one binding mutation of a tryAdd attempt so a rejection
// can restore the exact prior plan in O(1) per binding.
type bindUndo struct {
	isRow      bool
	array, idx int
	prev       float64
	existed    bool
}

// unbound marks an unbound row/column target in the dense binding tables.
var unbound = math.NaN()

// stagePlan accumulates the row/column targets of a candidate stage and
// checks the three hardware constraints incrementally. Bindings live in
// dense per-array tables (NaN = unbound) with explicit bound-index lists, so
// lookups are array indexing rather than map hashing, and the plan is
// reused across stages via reset. A rejected tryAdd is rolled back through
// the undo journal of just that attempt — the plan never recomputes the
// surviving gates' bindings.
type stagePlan struct {
	st       *routerState
	rowT     [][]float64 // array -> row index -> target y (NaN unbound)
	colT     [][]float64 // array -> col index -> target x (NaN unbound)
	rowBound [][]int     // array -> bound row indices, in bind order
	colBound [][]int
	gates    [][2]int // accepted gates (ordered slot pairs)
	pairs    map[[2]int]bool
	undo     []bindUndo              // journal of the most recent tryAdd attempt
	points   map[[2]int64]pointGroup // scratch for checkAddressing
}

func newStagePlan(st *routerState) *stagePlan {
	k := st.cfg.NumArrays()
	p := &stagePlan{
		st:       st,
		pairs:    make(map[[2]int]bool),
		points:   make(map[[2]int64]pointGroup),
		rowT:     make([][]float64, k),
		colT:     make([][]float64, k),
		rowBound: make([][]int, k),
		colBound: make([][]int, k),
	}
	for a := 0; a < k; a++ {
		spec := st.cfg.Array(a)
		p.rowT[a] = make([]float64, spec.Rows)
		p.colT[a] = make([]float64, spec.Cols)
		for i := range p.rowT[a] {
			p.rowT[a][i] = unbound
		}
		for i := range p.colT[a] {
			p.colT[a][i] = unbound
		}
	}
	return p
}

// reset clears the plan for a new stage, touching only the entries the
// previous stage bound.
func (p *stagePlan) reset() {
	for a := range p.rowBound {
		for _, i := range p.rowBound[a] {
			p.rowT[a][i] = unbound
		}
		p.rowBound[a] = p.rowBound[a][:0]
		for _, i := range p.colBound[a] {
			p.colT[a][i] = unbound
		}
		p.colBound[a] = p.colBound[a][:0]
	}
	p.gates = p.gates[:0]
	clear(p.pairs)
	p.undo = p.undo[:0]
}

// stagePlanFor returns the router's reusable plan, reset for a new stage.
func (st *routerState) stagePlanFor() *stagePlan {
	if st.plan == nil {
		st.plan = newStagePlan(st)
	}
	st.plan.reset()
	return st.plan
}

func bound(t float64) bool { return t == t } // NaN check without math.IsNaN

// tryAdd attempts to add the gate (slotA, slotB) to the stage. On success
// the plan is updated; on failure it is left exactly as it was.
func (p *stagePlan) tryAdd(a, b int) addReason {
	st := p.st
	sa, sb := st.siteOf[a], st.siteOf[b]
	if sa.Array == 0 && sb.Array == 0 {
		return addIllegal
	}
	e := st.bindsFor(a, b)

	// A row/column already bound to a different target cannot be split.
	for _, rb := range e.rows {
		if t := p.rowT[int(rb[0])][int(rb[1])]; bound(t) && !approxEq(t, rb[2]) {
			return addRowConflict
		}
	}
	for _, cb := range e.cols {
		if t := p.colT[int(cb[0])][int(cb[1])]; bound(t) && !approxEq(t, cb[2]) {
			return addRowConflict
		}
	}

	// Tentatively apply, journaling every binding (including the previous
	// value of overwritten ones) so a rejection undoes exactly this attempt.
	p.undo = p.undo[:0]
	for _, rb := range e.rows {
		ar, idx := int(rb[0]), int(rb[1])
		prev := p.rowT[ar][idx]
		p.undo = append(p.undo, bindUndo{isRow: true, array: ar, idx: idx, prev: prev, existed: bound(prev)})
		if !bound(prev) {
			p.rowBound[ar] = append(p.rowBound[ar], idx)
		}
		p.rowT[ar][idx] = rb[2]
	}
	for _, cb := range e.cols {
		ar, idx := int(cb[0]), int(cb[1])
		prev := p.colT[ar][idx]
		p.undo = append(p.undo, bindUndo{isRow: false, array: ar, idx: idx, prev: prev, existed: bound(prev)})
		if !bound(prev) {
			p.colBound[ar] = append(p.colBound[ar], idx)
		}
		p.colT[ar][idx] = cb[2]
	}
	key := pairKey(a, b)
	p.pairs[key] = true
	p.gates = append(p.gates, key)

	reason := p.checkChangedBindings()
	if reason == addOK && !st.opts.RelaxAddressing && !p.checkAddressing() {
		reason = addAddressing
	}
	if reason != addOK {
		p.undoLast()
	}
	return reason
}

// undoLast rolls back the most recent tryAdd attempt: the journal entries
// are replayed in reverse (restoring overwritten targets bit-for-bit,
// popping freshly bound indices off their bound lists) and the gate/pair
// bookkeeping is popped. The resulting plan is indistinguishable from one
// that never saw the attempt.
func (p *stagePlan) undoLast() {
	last := p.gates[len(p.gates)-1]
	p.gates = p.gates[:len(p.gates)-1]
	delete(p.pairs, last)
	for i := len(p.undo) - 1; i >= 0; i-- {
		u := p.undo[i]
		if u.isRow {
			p.rowT[u.array][u.idx] = u.prev
			if !u.existed {
				p.rowBound[u.array] = p.rowBound[u.array][:len(p.rowBound[u.array])-1]
			}
		} else {
			p.colT[u.array][u.idx] = u.prev
			if !u.existed {
				p.colBound[u.array] = p.colBound[u.array][:len(p.colBound[u.array])-1]
			}
		}
	}
	p.undo = p.undo[:0]
}

// checkChangedBindings enforces constraints 2 and 3 incrementally: only the
// bindings the current attempt touched can introduce a violation (the rest
// of the plan was legal by induction), and a changed binding can only
// conflict with its nearest bound neighbours in index order. Axes are
// visited in the order the full rescan uses (array ascending, rows before
// columns) so the rejection reason — which feeds the overlap counter —
// matches checkOrderAndOverlap exactly.
func (p *stagePlan) checkChangedBindings() addReason {
	n := len(p.undo)
	var order [4]int
	for i := 0; i < n; i++ {
		order[i] = i
	}
	// Insertion sort by (array, rows-before-cols); n <= 4 and at most one
	// entry per (array, axis).
	for i := 1; i < n; i++ {
		for j := i; j > 0 && bindBefore(p.undo[order[j]], p.undo[order[j-1]]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for i := 0; i < n; i++ {
		u := p.undo[order[i]]
		binds := p.rowT[u.array]
		if !u.isRow {
			binds = p.colT[u.array]
		}
		if r := checkNeighbors(binds, u.idx, p.st.opts); r != addOK {
			return r
		}
	}
	return addOK
}

// checkNeighbors validates the binding at idx against its nearest bound
// neighbours: targets must keep strictly increasing with index (constraint
// 2), without coinciding (constraint 3), unless relaxed. The lower pair is
// checked first, matching the ascending scan of the full recheck.
func checkNeighbors(binds []float64, idx int, opts Options) addReason {
	target := binds[idx]
	for lo := idx - 1; lo >= 0; lo-- {
		if bound(binds[lo]) {
			if r := checkAdjacent(binds[lo], target, opts); r != addOK {
				return r
			}
			break
		}
	}
	for hi := idx + 1; hi < len(binds); hi++ {
		if bound(binds[hi]) {
			if r := checkAdjacent(target, binds[hi], opts); r != addOK {
				return r
			}
			break
		}
	}
	return addOK
}

func bindBefore(a, b bindUndo) bool {
	if a.array != b.array {
		return a.array < b.array
	}
	return a.isRow && !b.isRow
}

func checkAdjacent(prev, cur float64, opts Options) addReason {
	if approxEq(prev, cur) {
		if !opts.RelaxOverlap {
			return addOverlap
		}
		return addOK
	}
	if prev > cur && !opts.RelaxOrder {
		return addOrder
	}
	return addOK
}

// pointGroup tracks the atoms brought to one quantised point; only the
// first two matter (a third is already a violation).
type pointGroup struct {
	n      int
	s0, s1 int
}

func (g pointGroup) add(slot int) pointGroup {
	switch g.n {
	case 0:
		g.s0 = slot
	case 1:
		g.s1 = slot
	}
	g.n++
	return g
}

// checkAddressing enforces constraint 1: every pair of atoms brought to the
// same point by the planned moves must be an accepted gate, and no point may
// host more than two atoms (the global Rydberg pulse entangles every pair
// within range).
func (p *stagePlan) checkAddressing() bool {
	st := p.st
	clear(p.points)
	for a := 1; a < st.cfg.NumArrays(); a++ {
		rows, cols := p.rowBound[a], p.colBound[a]
		if len(rows) == 0 || len(cols) == 0 {
			continue
		}
		stride := st.colsOf[a]
		occ := st.occ[a]
		for _, r := range rows {
			y := p.rowT[a][r]
			base := r * stride
			for _, c := range cols {
				slot := occ[base+c]
				if slot < 0 {
					continue // empty trap site
				}
				key := quantize(y, p.colT[a][c])
				p.points[key] = p.points[key].add(slot)
			}
		}
	}
	for key, group := range p.points {
		if slot, ok := st.slmAtomAt(key); ok {
			group = group.add(slot)
		}
		if group.n > 2 {
			return false
		}
		if group.n == 2 && !p.pairs[pairKey(group.s0, group.s1)] {
			return false
		}
	}
	return true
}

// slmAtomAt returns the SLM slot whose grid position quantises to key.
func (st *routerState) slmAtomAt(key [2]int64) (int, bool) {
	d := st.cfg.Params.AtomDistance
	y := float64(key[0]) * 1e-9
	x := float64(key[1]) * 1e-9
	r := int(math.Round(y / d))
	c := int(math.Round(x / d))
	spec := st.cfg.Array(0)
	if r < 0 || c < 0 || r >= spec.Rows || c >= spec.Cols ||
		!approxEq(float64(r)*d, y) || !approxEq(float64(c)*d, x) {
		return 0, false // interstitial or off-grid point
	}
	return st.slotAt(0, r, c)
}

// commitMoves translates the plan's bindings into Move records, updates the
// row/column coordinates (target plus park retreat), and fills the per-axis
// displacement scratch used for heating. Bindings are committed in sorted
// index order so the emitted move list is deterministic (the schedule is
// part of the per-seed-reproducible contract the service cache relies on).
func (p *stagePlan) commitMoves() []Move {
	st := p.st
	var moves []Move
	var idxs []int
	for a := 1; a < st.cfg.NumArrays(); a++ {
		for i := range st.rowDisp[a] {
			st.rowDisp[a][i] = 0
		}
		for i := range st.colDisp[a] {
			st.colDisp[a][i] = 0
		}
		off := st.parkOff[a]
		park := func(target float64) (parked, retreat float64) {
			// Grid-aligned targets (AOD-SLM gates) retreat to an interstitial
			// park position after the pulse; interstitial meeting points
			// (AOD-AOD gates) are already safe to rest at.
			if st.gridAligned(target) {
				return target + off, off
			}
			return target, 0
		}
		idxs = append(idxs[:0], p.rowBound[a]...)
		sortInts(idxs)
		for _, r := range idxs {
			y := p.rowT[a][r]
			cur := st.rowCoord[a][r]
			if approxEq(cur, y) {
				continue // pinned in place
			}
			parked, retreat := park(y)
			moves = append(moves, Move{Array: a, IsRow: true, Index: r, From: cur, To: y})
			st.rowDisp[a][r] = math.Abs(y-cur) + retreat // travel + retreat
			st.rowCoord[a][r] = parked
		}
		idxs = append(idxs[:0], p.colBound[a]...)
		sortInts(idxs)
		for _, c := range idxs {
			x := p.colT[a][c]
			cur := st.colCoord[a][c]
			if approxEq(cur, x) {
				continue
			}
			parked, retreat := park(x)
			moves = append(moves, Move{Array: a, IsRow: false, Index: c, From: cur, To: x})
			st.colDisp[a][c] = math.Abs(x-cur) + retreat
			st.colCoord[a][c] = parked
		}
	}
	return moves
}

func pairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

func quantize(y, x float64) [2]int64 {
	return [2]int64{int64(math.Round(y * 1e9)), int64(math.Round(x * 1e9))}
}

func approxEq(a, b float64) bool { return math.Abs(a-b) < 1e-10 }

// gridAligned reports whether a coordinate sits on an SLM grid line.
func (st *routerState) gridAligned(v float64) bool {
	d := st.cfg.Params.AtomDistance
	return approxEq(math.Round(v/d)*d, v)
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
