package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"atomique/internal/bench"
	"atomique/internal/hardware"
)

func TestVerifyScheduleAcceptsCompiled(t *testing.T) {
	cfg := hardware.DefaultConfig()
	for _, b := range []bench.Benchmark{
		{Name: "QAOA", Circ: bench.QAOARegular(20, 3, 1)},
		{Name: "QSim", Circ: bench.QSimRandom(20, 10, 0.5, 6)},
		{Name: "QFT", Circ: bench.QFT(12)},
		{Name: "Grover", Circ: bench.Grover(5, 2)},
	} {
		for _, opts := range []Options{{}, {SerialRouter: true}, {RelaxOverlap: true}} {
			res, err := Compile(cfg, b.Circ, opts)
			if err != nil {
				t.Fatalf("%s: %v", b.Name, err)
			}
			if err := VerifySchedule(res, opts); err != nil {
				t.Errorf("%s %+v: %v", b.Name, opts, err)
			}
		}
	}
}

func TestVerifyScheduleDetectsCorruption(t *testing.T) {
	cfg := hardware.DefaultConfig()
	res, err := Compile(cfg, bench.QAOARegular(20, 3, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Find a stage with a gate and duplicate its first gate (qubit reuse).
	for si := range res.Schedule.Stages {
		st := &res.Schedule.Stages[si]
		if len(st.Gates) > 0 {
			st.Gates = append(st.Gates, st.Gates[0])
			break
		}
	}
	if err := VerifySchedule(res, Options{}); err == nil {
		t.Errorf("corrupted schedule verified")
	}
}

func TestVerifyScheduleDetectsIntraArrayGate(t *testing.T) {
	cfg := hardware.DefaultConfig()
	res, err := Compile(cfg, bench.QAOARegular(20, 3, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Force a gate's second endpoint into the first endpoint's array by
	// rewriting the site table.
	for si := range res.Schedule.Stages {
		st := &res.Schedule.Stages[si]
		if len(st.Gates) > 0 {
			g := st.Gates[0]
			res.SiteOf[g.SlotB].Array = res.SiteOf[g.SlotA].Array
			break
		}
	}
	err = VerifySchedule(res, Options{})
	if err == nil || !strings.Contains(err.Error(), "intra-array") {
		t.Errorf("intra-array corruption not detected: %v", err)
	}
}

func TestVerifyScheduleDetectsGateCountMismatch(t *testing.T) {
	cfg := hardware.DefaultConfig()
	res, err := Compile(cfg, bench.QAOARegular(20, 3, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res.Metrics.N2Q++
	if err := VerifySchedule(res, Options{}); err == nil {
		t.Errorf("count mismatch not detected")
	}
}

func TestExportJSONRoundTrips(t *testing.T) {
	cfg := hardware.DefaultConfig()
	res, err := Compile(cfg, bench.QAOARegular(16, 3, 1), Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ExportJSON(&buf, cfg, res); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("export not valid JSON: %v", err)
	}
	if int(decoded["qubits"].(float64)) != 16 {
		t.Errorf("qubits = %v", decoded["qubits"])
	}
	stages := decoded["stages"].([]interface{})
	if len(stages) != len(res.Schedule.Stages) {
		t.Errorf("stage count %d != %d", len(stages), len(res.Schedule.Stages))
	}
	arrays := decoded["arrays"].([]interface{})
	if len(arrays) != cfg.NumArrays() {
		t.Errorf("array count %d != %d", len(arrays), cfg.NumArrays())
	}
	first := arrays[0].(map[string]interface{})
	if first["kind"] != "slm" {
		t.Errorf("first array kind = %v, want slm", first["kind"])
	}
	m := decoded["metrics"].(map[string]interface{})
	if int(m["two_qubit_gates"].(float64)) != res.Metrics.N2Q {
		t.Errorf("metrics 2Q mismatch")
	}
}
