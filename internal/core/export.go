package core

import (
	"encoding/json"
	"io"

	"atomique/internal/hardware"
)

// scheduleJSON is the serialised form of a compiled result: enough for an
// external control system (or analysis notebook) to replay the movement and
// pulse program without this library.
type scheduleJSON struct {
	Qubits  int         `json:"qubits"`
	Arrays  []arrayJSON `json:"arrays"`
	Sites   []siteJSON  `json:"sites"`
	Initial []int       `json:"initial_slot_of"`
	Final   []int       `json:"final_slot_of"`
	Stages  []stageJSON `json:"stages"`
	Metrics metricJSON  `json:"metrics"`
}

type arrayJSON struct {
	Kind string `json:"kind"` // "slm" or "aod"
	Rows int    `json:"rows"`
	Cols int    `json:"cols"`
}

type siteJSON struct {
	Array int `json:"array"`
	Row   int `json:"row"`
	Col   int `json:"col"`
}

type stageJSON struct {
	OneQ  []gateJSON `json:"one_qubit,omitempty"`
	Moves []moveJSON `json:"moves,omitempty"`
	Gates []gateJSON `json:"gates,omitempty"`
}

type gateJSON struct {
	Op    string  `json:"op"`
	A     int     `json:"a"`
	B     int     `json:"b,omitempty"`
	Param float64 `json:"param,omitempty"`
}

type moveJSON struct {
	Array int     `json:"array"`
	Axis  string  `json:"axis"` // "row" or "col"
	Index int     `json:"index"`
	From  float64 `json:"from_m"`
	To    float64 `json:"to_m"`
}

type metricJSON struct {
	TwoQubitGates int     `json:"two_qubit_gates"`
	OneQubitGates int     `json:"one_qubit_gates"`
	Depth         int     `json:"depth"`
	Swaps         int     `json:"swaps"`
	ExecutionTime float64 `json:"execution_time_s"`
	MoveDistance  float64 `json:"move_distance_m"`
	Coolings      int     `json:"cooling_events"`
	Fidelity      float64 `json:"fidelity"`
}

// ExportJSON writes the compiled schedule as JSON.
func ExportJSON(w io.Writer, cfg hardware.Config, res *Result) error {
	out := scheduleJSON{
		Qubits:  res.Metrics.NQubits,
		Initial: res.InitialSlotOf,
		Final:   res.FinalSlotOf,
		Metrics: metricJSON{
			TwoQubitGates: res.Metrics.N2Q,
			OneQubitGates: res.Metrics.N1Q,
			Depth:         res.Metrics.Depth2Q,
			Swaps:         res.Metrics.SwapCount,
			ExecutionTime: res.Metrics.ExecutionTime,
			MoveDistance:  res.Metrics.TotalMoveDist,
			Coolings:      res.Metrics.CoolingEvents,
			Fidelity:      res.Metrics.FidelityTotal(),
		},
	}
	for a := 0; a < cfg.NumArrays(); a++ {
		kind := "aod"
		if a == 0 {
			kind = "slm"
		}
		spec := cfg.Array(a)
		out.Arrays = append(out.Arrays, arrayJSON{Kind: kind, Rows: spec.Rows, Cols: spec.Cols})
	}
	for _, s := range res.SiteOf {
		out.Sites = append(out.Sites, siteJSON{Array: s.Array, Row: s.Row, Col: s.Col})
	}
	for _, st := range res.Schedule.Stages {
		sj := stageJSON{}
		for _, g := range st.OneQ {
			sj.OneQ = append(sj.OneQ, gateJSON{Op: g.Op.String(), A: g.SlotA, Param: g.Param})
		}
		for _, m := range st.Moves {
			axis := "col"
			if m.IsRow {
				axis = "row"
			}
			sj.Moves = append(sj.Moves, moveJSON{
				Array: m.Array, Axis: axis, Index: m.Index, From: m.From, To: m.To,
			})
		}
		for _, g := range st.Gates {
			sj.Gates = append(sj.Gates, gateJSON{
				Op: g.Op.String(), A: g.SlotA, B: g.SlotB, Param: g.Param,
			})
		}
		out.Stages = append(out.Stages, sj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
