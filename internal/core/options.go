package core

import (
	"fmt"
	"strings"
)

// ApplyRelax parses a comma-separated list of constraint IDs ("1", "2", "3",
// per Fig 22) and sets the corresponding relaxation switches. Unknown or
// duplicate IDs are rejected with an error naming the valid set, so a typo in
// a CLI flag or API request never silently compiles with the wrong
// constraints. Empty entries (and an empty spec) are allowed.
func (o *Options) ApplyRelax(spec string) error {
	seen := [4]bool{}
	for _, r := range strings.Split(spec, ",") {
		id := strings.TrimSpace(r)
		if id == "" {
			continue
		}
		var which int
		switch id {
		case "1":
			o.RelaxAddressing = true
			which = 1
		case "2":
			o.RelaxOrder = true
			which = 2
		case "3":
			o.RelaxOverlap = true
			which = 3
		default:
			return fmt.Errorf("core: unknown relax constraint %q (valid IDs: 1=addressing, 2=order, 3=overlap)", id)
		}
		if seen[which] {
			return fmt.Errorf("core: duplicate relax constraint %q", id)
		}
		seen[which] = true
	}
	return nil
}
