package core

import (
	"testing"

	"atomique/internal/bench"
	"atomique/internal/hardware"
)

// Micro-benchmarks for the compiler itself (the paper's compile-time story:
// milliseconds per circuit, linear-ish scaling).

func BenchmarkCompileQAOA40(b *testing.B) {
	cfg := hardware.DefaultConfig()
	c := bench.QAOARegular(40, 5, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(cfg, c, Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileQSim40(b *testing.B) {
	cfg := hardware.DefaultConfig()
	c := bench.QSimRandom(40, 10, 0.5, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(cfg, c, Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileQV32(b *testing.B) {
	cfg := hardware.DefaultConfig()
	c := bench.QV(32, 32, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(cfg, c, Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileQAOA100(b *testing.B) {
	cfg := hardware.DefaultConfig()
	c := bench.QAOARegular(100, 6, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(cfg, c, Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
