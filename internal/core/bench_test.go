package core

import (
	"math/rand"
	"testing"

	"atomique/internal/bench"
	"atomique/internal/hardware"
)

// Micro-benchmarks for the compiler itself (the paper's compile-time story:
// milliseconds per circuit, linear-ish scaling).

func BenchmarkCompileQAOA40(b *testing.B) {
	cfg := hardware.DefaultConfig()
	c := bench.QAOARegular(40, 5, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(cfg, c, Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileQSim40(b *testing.B) {
	cfg := hardware.DefaultConfig()
	c := bench.QSimRandom(40, 10, 0.5, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(cfg, c, Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileQV32(b *testing.B) {
	cfg := hardware.DefaultConfig()
	c := bench.QV(32, 32, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(cfg, c, Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileQAOA100(b *testing.B) {
	cfg := hardware.DefaultConfig()
	c := bench.QAOARegular(100, 6, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(cfg, c, Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTab2Compile compiles the full Table II benchmark suite through
// the pass pipeline — the headline compile-speed number for the incremental
// stage-plan router (CI runs it with -benchtime=1x as a smoke test).
func BenchmarkTab2Compile(b *testing.B) {
	cfg := hardware.DefaultConfig()
	suite := bench.Table2Suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, bm := range suite {
			if _, err := Compile(cfg, bm.Circ, Options{Seed: 1}); err != nil {
				b.Fatalf("%s: %v", bm.Name, err)
			}
		}
	}
}

// stagePlanWorkload generates a fixed random attempt sequence over a
// realistically occupied machine; both stage-plan implementations replay
// exactly the same sequence.
func stagePlanWorkload() (cfg hardware.Config, sites [][3]int, attempts [][2]int) {
	cfg = hardware.SquareConfig(10, 2)
	rng := rand.New(rand.NewSource(17))
	cells := randomSites(rng, cfg, 30)
	for i := 0; i < 600; i++ {
		a := rng.Intn(len(cells))
		b := rng.Intn(len(cells) - 1)
		if b >= a {
			b++
		}
		attempts = append(attempts, [2]int{a, b})
	}
	return cfg, cells, attempts
}

func benchStagePlan(b *testing.B, try func(p *stagePlan, a, bb int) addReason) {
	cfg, cells, attempts := stagePlanWorkload()
	siteOf := make([]hardware.Site, len(cells))
	for slot, s := range cells {
		siteOf[slot] = hardware.Site{Array: s[0], Row: s[1], Col: s[2]}
	}
	st := newRouterState(cfg, siteOf, Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan := newStagePlan(st)
		for _, at := range attempts {
			if plan.pairs[pairKey(at[0], at[1])] {
				continue
			}
			try(plan, at[0], at[1])
		}
	}
}

// BenchmarkStagePlanIncremental measures the production tryAdd: undo
// journal plus neighbour-only constraint rechecks.
func BenchmarkStagePlanIncremental(b *testing.B) {
	benchStagePlan(b, func(p *stagePlan, x, y int) addReason { return p.tryAdd(x, y) })
}

// BenchmarkStagePlanFullRebuild measures the pre-refactor algorithm
// (full constraint rescan, rebuild-from-scratch on rejection) on the same
// attempt sequence.
func BenchmarkStagePlanFullRebuild(b *testing.B) {
	benchStagePlan(b, func(p *stagePlan, x, y int) addReason { return p.tryAddReference(x, y) })
}
