package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"atomique/internal/circuit"
	"atomique/internal/hardware"
	"atomique/internal/sim"
)

// runSchedule executes a compiled schedule's gate stream (1Q batches and
// parallel 2Q batches, in stage order) on |0...0> over the physical slots.
func runSchedule(res *Result, nSlots int) *sim.State {
	s := sim.MustNew(nSlots)
	applyStages(s, res)
	return s
}

func applyStages(s *sim.State, res *Result) {
	for _, st := range res.Schedule.Stages {
		for _, g := range st.OneQ {
			s.Apply(circuit.Gate{Op: g.Op, Q0: g.SlotA, Q1: -1, Param: g.Param})
		}
		for _, g := range st.Gates {
			s.Apply(circuit.Gate{Op: g.Op, Q0: g.SlotA, Q1: g.SlotB, Param: g.Param})
		}
	}
}

// semanticsCheck compiles c and verifies that executing the schedule on
// |0..0> produces the same state as the source circuit, with logical qubit q
// living at physical slot FinalSlotOf[q].
func semanticsCheck(t *testing.T, cfg hardware.Config, c *circuit.Circuit, opts Options) {
	t.Helper()
	res, err := Compile(cfg, c, opts)
	if err != nil {
		t.Fatal(err)
	}
	nSlots := len(res.SiteOf)
	if nSlots > 14 {
		t.Fatalf("semanticsCheck limited to 14 slots, got %d", nSlots)
	}
	got := runSchedule(res, nSlots)

	want := sim.MustNew(c.N)
	want.Run(c)
	expected := want.Embed(nSlots, res.FinalSlotOf)

	if f := sim.Fidelity(got, expected); f < 1-1e-7 {
		t.Fatalf("schedule not equivalent to source: fidelity %v", f)
	}
}

// randomMixed builds a random circuit mixing Clifford gates, rotations, and
// native ZZ interactions — everything the Schedule round-trips.
func randomMixed(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < gates; i++ {
		switch rng.Intn(8) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.X(rng.Intn(n))
		case 2:
			c.RZ(rng.Intn(n), rng.Float64()*6)
		case 3:
			c.RX(rng.Intn(n), rng.Float64()*6)
		case 4, 5:
			a, b := pick2(n, rng)
			c.CX(a, b)
		case 6:
			a, b := pick2(n, rng)
			c.CZ(a, b)
		case 7:
			a, b := pick2(n, rng)
			c.ZZ(a, b, rng.Float64()*6)
		}
	}
	return c
}

func pick2(n int, rng *rand.Rand) (int, int) {
	a := rng.Intn(n)
	b := rng.Intn(n - 1)
	if b >= a {
		b++
	}
	return a, b
}

func TestScheduleSemanticsGHZ(t *testing.T) {
	cfg := hardware.SquareConfig(4, 2)
	c := circuit.New(6)
	c.H(0)
	for i := 1; i < 6; i++ {
		c.CX(i-1, i)
	}
	semanticsCheck(t, cfg, c, Options{Seed: 1})
}

func TestScheduleSemanticsWithSwaps(t *testing.T) {
	// Dense interactions force SWAP insertion; equivalence must survive the
	// 3-CX decomposition and the final-mapping permutation.
	cfg := hardware.SquareConfig(3, 2)
	rng := rand.New(rand.NewSource(4))
	c := randomMixed(rng, 9, 60)
	semanticsCheck(t, cfg, c, Options{Seed: 2})
}

func TestScheduleSemanticsUnderAblations(t *testing.T) {
	cfg := hardware.SquareConfig(3, 2)
	rng := rand.New(rand.NewSource(5))
	c := randomMixed(rng, 8, 40)
	for _, opts := range []Options{
		{SerialRouter: true},
		{DenseMapper: true},
		{RandomAtomMapper: true, Seed: 3},
		{RelaxOrder: true},
		{RelaxOverlap: true},
		{RelaxAddressing: true},
	} {
		semanticsCheck(t, cfg, c, opts)
	}
}

// Property: the full pipeline preserves circuit semantics on random
// random mixed circuits across machine geometries.
func TestScheduleSemanticsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(7) // up to 10 logical qubits = 10 slots
		side := 3 + rng.Intn(2)
		cfg := hardware.SquareConfig(side, 1+rng.Intn(2))
		c := randomMixed(rng, n, 10+rng.Intn(50))
		res, err := Compile(cfg, c, Options{Seed: seed})
		if err != nil {
			return false
		}
		got := runSchedule(res, len(res.SiteOf))
		want := sim.MustNew(c.N)
		want.Run(c)
		expected := want.Embed(len(res.SiteOf), res.FinalSlotOf)
		return sim.Fidelity(got, expected) > 1-1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// The fidelity model and the simulator agree on norms: executing a schedule
// never changes state norm.
func TestScheduleUnitarity(t *testing.T) {
	cfg := hardware.SquareConfig(3, 2)
	rng := rand.New(rand.NewSource(6))
	c := randomMixed(rng, 8, 50)
	res, err := Compile(cfg, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := runSchedule(res, len(res.SiteOf))
	if math.Abs(s.Norm()-1) > 1e-9 {
		t.Fatalf("schedule execution broke unitarity: norm %v", s.Norm())
	}
}
