package core

import (
	"fmt"
	"sort"
)

// VerifySchedule checks the structural invariants of a compiled result
// against the hardware constraints the router enforces:
//
//   - every stage's two-qubit gates are pairwise qubit-disjoint,
//   - every two-qubit gate is cross-array (no intra-array interaction),
//   - within each stage and array, moved rows (and columns) keep strictly
//     increasing targets in index order — constraints 2 and 3 — unless the
//     corresponding relaxation was enabled,
//   - executed gate counts match the metrics.
//
// It returns the first violation found, or nil. Compile always produces
// schedules that verify; the function exists so downstream users mutating or
// replaying schedules can check their own.
func VerifySchedule(res *Result, opts Options) error {
	total2Q, total1Q := 0, 0
	for si, stage := range res.Schedule.Stages {
		used := map[int]bool{}
		for _, g := range stage.Gates {
			total2Q++
			if used[g.SlotA] || used[g.SlotB] {
				return fmt.Errorf("stage %d: slot reused within stage", si)
			}
			used[g.SlotA], used[g.SlotB] = true, true
			if g.SlotA == g.SlotB {
				return fmt.Errorf("stage %d: gate on identical slots", si)
			}
			aa := res.SiteOf[g.SlotA].Array
			ab := res.SiteOf[g.SlotB].Array
			if aa == ab {
				return fmt.Errorf("stage %d: intra-array gate (array %d)", si, aa)
			}
		}
		total1Q += len(stage.OneQ)
		if err := verifyMoves(stage, si, opts); err != nil {
			return err
		}
	}
	if total2Q != res.Metrics.N2Q {
		return fmt.Errorf("executed 2Q %d != metrics %d", total2Q, res.Metrics.N2Q)
	}
	if total1Q != res.Metrics.N1Q {
		return fmt.Errorf("executed 1Q %d != metrics %d", total1Q, res.Metrics.N1Q)
	}
	return nil
}

func verifyMoves(stage Stage, si int, opts Options) error {
	type axis struct {
		array int
		isRow bool
	}
	byAxis := map[axis]map[int]float64{}
	for _, m := range stage.Moves {
		k := axis{m.Array, m.IsRow}
		if byAxis[k] == nil {
			byAxis[k] = map[int]float64{}
		}
		if prev, ok := byAxis[k][m.Index]; ok && prev != m.To {
			return fmt.Errorf("stage %d: array %d %s %d bound to two targets",
				si, m.Array, axisName(m.IsRow), m.Index)
		}
		byAxis[k][m.Index] = m.To
	}
	for k, targets := range byAxis {
		idxs := make([]int, 0, len(targets))
		for i := range targets {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for i := 1; i < len(idxs); i++ {
			prev, cur := targets[idxs[i-1]], targets[idxs[i]]
			if prev == cur && !opts.RelaxOverlap {
				return fmt.Errorf("stage %d: array %d %ss %d and %d overlap",
					si, k.array, axisName(k.isRow), idxs[i-1], idxs[i])
			}
			if prev > cur && !opts.RelaxOrder {
				return fmt.Errorf("stage %d: array %d %s order violated (%d > %d)",
					si, k.array, axisName(k.isRow), idxs[i-1], idxs[i])
			}
		}
	}
	return nil
}

func axisName(isRow bool) string {
	if isRow {
		return "row"
	}
	return "col"
}
