package core

import (
	"math/rand"
	"sort"

	"atomique/internal/circuit"
	"atomique/internal/hardware"
)

// mapSlotsToAtoms implements the qubit-atom mapper: SLM slots are placed by
// load-balance diagonal-spiral order (Fig 6), AOD slots by frequency-rank
// position alignment (Fig 7). The ablated variant places slots uniformly at
// random within their array.
func mapSlotsToAtoms(cfg hardware.Config, routed *circuit.Circuit, sizes []int,
	opts Options, rng *rand.Rand) []hardware.Site {

	nSlots := 0
	for _, s := range sizes {
		nSlots += s
	}
	siteOf := make([]hardware.Site, nSlots)
	placed := make([]bool, nSlots)

	slotsOfArray := make([][]int, len(sizes))
	base := 0
	for a, s := range sizes {
		for i := 0; i < s; i++ {
			slotsOfArray[a] = append(slotsOfArray[a], base+i)
		}
		base += s
	}

	if opts.RandomAtomMapper {
		for a := range sizes {
			spec := cfg.Array(a)
			cells := diagonalSpiralOrder(spec.Rows, spec.Cols)
			rng.Shuffle(len(cells), func(i, j int) { cells[i], cells[j] = cells[j], cells[i] })
			for i, slot := range slotsOfArray[a] {
				siteOf[slot] = hardware.Site{Array: a, Row: cells[i][0], Col: cells[i][1]}
				placed[slot] = true
			}
		}
		return siteOf
	}

	weights := routed.InteractionWeights()
	involve := routed.TwoQubitPerQubit() // per-slot 2Q participation

	// Step 1: SLM slots sorted by descending 2Q involvement fill the
	// diagonal-spiral cell order, balancing load across rows and columns.
	slm := append([]int(nil), slotsOfArray[0]...)
	sort.Slice(slm, func(i, j int) bool {
		if involve[slm[i]] != involve[slm[j]] {
			return involve[slm[i]] > involve[slm[j]]
		}
		return slm[i] < slm[j]
	})
	slmCells := diagonalSpiralOrder(cfg.SLM.Rows, cfg.SLM.Cols)
	for i, slot := range slm {
		siteOf[slot] = hardware.Site{Array: 0, Row: slmCells[i][0], Col: slmCells[i][1]}
		placed[slot] = true
	}

	// Step 2: aligned AOD mapping. Walk qubit pairs in descending gate
	// frequency; whenever exactly one endpoint is placed, put the other at
	// the same (row, col) of its own array if free, else the nearest free
	// cell. Pairs with both endpoints unplaced seed a fresh diagonal cell.
	free := make([]map[[2]int]bool, len(sizes))
	nextDiag := make([]int, len(sizes))
	diag := make([][][2]int, len(sizes))
	for a := range sizes {
		spec := cfg.Array(a)
		diag[a] = diagonalSpiralOrder(spec.Rows, spec.Cols)
		free[a] = make(map[[2]int]bool, spec.Capacity())
		for _, cell := range diag[a] {
			free[a][cell] = true
		}
	}
	place := func(slot, row, col int) {
		a := arrayOfSlot(slot, sizes)
		cell := nearestFree(free[a], diag[a], row, col)
		siteOf[slot] = hardware.Site{Array: a, Row: cell[0], Col: cell[1]}
		delete(free[a], cell)
		placed[slot] = true
	}
	placeFresh := func(slot int) {
		a := arrayOfSlot(slot, sizes)
		for ; nextDiag[a] < len(diag[a]); nextDiag[a]++ {
			cell := diag[a][nextDiag[a]]
			if free[a][cell] {
				siteOf[slot] = hardware.Site{Array: a, Row: cell[0], Col: cell[1]}
				delete(free[a], cell)
				placed[slot] = true
				return
			}
		}
		panic("core: array out of free cells")
	}

	for _, pair := range sortPairsByWeight(weights) {
		a, b := pair[0], pair[1]
		switch {
		case placed[a] && placed[b]:
			continue
		case placed[a]:
			place(b, siteOf[a].Row, siteOf[a].Col)
		case placed[b]:
			place(a, siteOf[b].Row, siteOf[b].Col)
		default:
			placeFresh(a)
			place(b, siteOf[a].Row, siteOf[a].Col)
		}
	}
	// Any slot never touched by a two-qubit gate fills remaining cells.
	for slot := 0; slot < nSlots; slot++ {
		if !placed[slot] {
			placeFresh(slot)
		}
	}
	return siteOf
}

// diagonalSpiralOrder enumerates the cells of a rows x cols grid starting at
// the upper-left corner, filling the main diagonal first and then the broken
// diagonals that spiral around the torus (cell (r, (r+band) mod cols) for
// band = 0, 1, ...). Every band touches each row exactly once and wraps the
// columns, so any prefix of the order is balanced across rows and columns —
// the load-balance property of the Fig 6 trajectory.
func diagonalSpiralOrder(rows, cols int) [][2]int {
	cells := make([][2]int, 0, rows*cols)
	for band := 0; band < cols; band++ {
		for r := 0; r < rows; r++ {
			cells = append(cells, [2]int{r, (r + band) % cols})
		}
	}
	return cells
}

// nearestFree returns the free cell closest (Manhattan) to (row, col),
// preferring the exact cell; ties resolve in diagonal-spiral order for
// determinism.
func nearestFree(free map[[2]int]bool, order [][2]int, row, col int) [2]int {
	if free[[2]int{row, col}] {
		return [2]int{row, col}
	}
	best := [2]int{-1, -1}
	bestDist := 1 << 30
	for _, cell := range order {
		if !free[cell] {
			continue
		}
		d := abs(cell[0]-row) + abs(cell[1]-col)
		if d < bestDist {
			bestDist = d
			best = cell
		}
	}
	if best[0] < 0 {
		panic("core: array out of free cells")
	}
	return best
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
