package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"atomique/internal/bench"
	"atomique/internal/circuit"
	"atomique/internal/hardware"
)

// verifySchedule checks the fundamental execution invariants of a compiled
// result: every stage's two-qubit gates are pairwise qubit-disjoint and
// cross-array, moved rows/columns preserve order and never coincide (unless
// relaxed), and the total executed gate count matches the metrics.
func verifySchedule(t *testing.T, cfg hardware.Config, res *Result, opts Options) {
	t.Helper()
	total2Q := 0
	oneQ := 0
	for si, stage := range res.Schedule.Stages {
		used := map[int]bool{}
		for _, g := range stage.Gates {
			total2Q++
			if used[g.SlotA] || used[g.SlotB] {
				t.Fatalf("stage %d: qubit reused within stage", si)
			}
			used[g.SlotA], used[g.SlotB] = true, true
			aa, ab := res.SiteOf[g.SlotA].Array, res.SiteOf[g.SlotB].Array
			if aa == ab {
				t.Fatalf("stage %d: intra-array gate between arrays %d/%d", si, aa, ab)
			}
		}
		oneQ += len(stage.OneQ)
		// Constraint 2/3 on executed moves: for each array, row moves sorted
		// by index must have strictly increasing targets (unless relaxed).
		if !opts.RelaxOrder && !opts.RelaxOverlap {
			for _, isRow := range []bool{true, false} {
				byArray := map[int]map[int]float64{}
				for _, m := range stage.Moves {
					if m.IsRow != isRow {
						continue
					}
					if byArray[m.Array] == nil {
						byArray[m.Array] = map[int]float64{}
					}
					byArray[m.Array][m.Index] = m.To
				}
				for a, mv := range byArray {
					idxs := make([]int, 0, len(mv))
					for i := range mv {
						idxs = append(idxs, i)
					}
					sortInts(idxs)
					for i := 1; i < len(idxs); i++ {
						if mv[idxs[i]] <= mv[idxs[i-1]] {
							// Only a violation if both moved; pinned rows are
							// not in Moves, so this check is conservative
							// only over moved entries — exactly constraint 2.
							t.Fatalf("stage %d array %d: order violation (%v)", si, a, mv)
						}
					}
				}
			}
		}
	}
	if total2Q != res.Metrics.N2Q {
		t.Fatalf("executed 2Q = %d, metrics say %d", total2Q, res.Metrics.N2Q)
	}
	if oneQ != res.Metrics.N1Q {
		t.Fatalf("executed 1Q = %d, metrics say %d", oneQ, res.Metrics.N1Q)
	}
}

func TestCompileGHZ(t *testing.T) {
	cfg := hardware.DefaultConfig()
	c := bench.GHZ(12)
	res, err := Compile(cfg, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	verifySchedule(t, cfg, res, Options{})
	if res.Metrics.N2Q < c.Num2Q() {
		t.Errorf("executed fewer 2Q gates (%d) than source (%d)", res.Metrics.N2Q, c.Num2Q())
	}
	if res.Metrics.FidelityTotal() <= 0 || res.Metrics.FidelityTotal() > 1 {
		t.Errorf("fidelity = %v out of range", res.Metrics.FidelityTotal())
	}
	if res.Metrics.Depth2Q == 0 || res.Metrics.ExecutionTime <= 0 {
		t.Errorf("degenerate metrics: %+v", res.Metrics)
	}
}

func TestCompileQAOA(t *testing.T) {
	cfg := hardware.DefaultConfig()
	c := bench.QAOARegular(20, 3, 1)
	res, err := Compile(cfg, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	verifySchedule(t, cfg, res, Options{})
	// Parallelism: QAOA layers should batch more than one gate per stage.
	if res.Schedule.MaxParallelism() < 2 {
		t.Errorf("router achieved no parallelism (max %d)", res.Schedule.MaxParallelism())
	}
	// Depth must beat fully serial execution.
	if res.Metrics.Depth2Q >= res.Metrics.N2Q {
		t.Errorf("depth %d not better than serial %d", res.Metrics.Depth2Q, res.Metrics.N2Q)
	}
}

func TestSerialRouterAblation(t *testing.T) {
	cfg := hardware.DefaultConfig()
	c := bench.QAOARegular(20, 3, 1)
	par, err := Compile(cfg, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ser, err := Compile(cfg, c, Options{SerialRouter: true})
	if err != nil {
		t.Fatal(err)
	}
	if ser.Schedule.MaxParallelism() > 1 {
		t.Errorf("serial router batched %d gates", ser.Schedule.MaxParallelism())
	}
	if ser.Metrics.Depth2Q < par.Metrics.Depth2Q {
		t.Errorf("serial depth %d < parallel depth %d", ser.Metrics.Depth2Q, par.Metrics.Depth2Q)
	}
	// Serial execution must equal its two-qubit gate count in depth.
	if ser.Metrics.Depth2Q != ser.Metrics.N2Q {
		t.Errorf("serial depth %d != N2Q %d", ser.Metrics.Depth2Q, ser.Metrics.N2Q)
	}
}

func TestMapperAblationIncreasesSwaps(t *testing.T) {
	cfg := hardware.DefaultConfig()
	// A circuit with strong pair structure: the k-cut mapper should place
	// partners in different arrays and need fewer swaps than round-robin.
	c := bench.QSimRandom(24, 10, 0.5, 5)
	good, err := Compile(cfg, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dense, err := Compile(cfg, c, Options{DenseMapper: true})
	if err != nil {
		t.Fatal(err)
	}
	if good.Metrics.SwapCount > dense.Metrics.SwapCount {
		t.Errorf("k-cut mapper swaps %d > dense mapper swaps %d",
			good.Metrics.SwapCount, dense.Metrics.SwapCount)
	}
}

func TestRandomAtomMapperRuns(t *testing.T) {
	cfg := hardware.DefaultConfig()
	c := bench.QAOARandom(16, 0.5, 3)
	res, err := Compile(cfg, c, Options{RandomAtomMapper: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	verifySchedule(t, cfg, res, Options{RandomAtomMapper: true})
}

func TestRelaxationsReduceOrKeepDepth(t *testing.T) {
	cfg := hardware.DefaultConfig()
	c := bench.QAOARandom(30, 0.5, 7)
	full, err := Compile(cfg, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		{RelaxAddressing: true},
		{RelaxOrder: true},
		{RelaxOverlap: true},
	} {
		rel, err := Compile(cfg, c, opts)
		if err != nil {
			t.Fatal(err)
		}
		// Gate count is unchanged by relaxations (they only affect
		// scheduling), as the paper notes for Fig 22.
		if rel.Metrics.N2Q != full.Metrics.N2Q {
			t.Errorf("relaxation %+v changed 2Q count %d -> %d",
				opts, full.Metrics.N2Q, rel.Metrics.N2Q)
		}
		if rel.Metrics.Depth2Q > full.Metrics.Depth2Q {
			t.Errorf("relaxation %+v increased depth %d -> %d",
				opts, full.Metrics.Depth2Q, rel.Metrics.Depth2Q)
		}
	}
}

func TestCompileDeterministic(t *testing.T) {
	cfg := hardware.DefaultConfig()
	c := bench.QSimRandom(20, 10, 0.5, 6)
	a, err := Compile(cfg, c, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(cfg, c, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics.N2Q != b.Metrics.N2Q || a.Metrics.Depth2Q != b.Metrics.Depth2Q ||
		a.Metrics.TotalMoveDist != b.Metrics.TotalMoveDist {
		t.Errorf("compilation not deterministic: %+v vs %+v", a.Metrics, b.Metrics)
	}
}

func TestCompileErrors(t *testing.T) {
	cfg := hardware.DefaultConfig()
	big := circuit.New(cfg.Capacity() + 1)
	if _, err := Compile(cfg, big, Options{}); err == nil {
		t.Errorf("oversized circuit accepted")
	}
	bad := cfg
	bad.AODs = nil
	if _, err := Compile(bad, bench.GHZ(4), Options{}); err == nil {
		t.Errorf("invalid config accepted")
	}
}

func TestDiagonalSpiralOrder(t *testing.T) {
	cells := diagonalSpiralOrder(4, 4)
	if len(cells) != 16 {
		t.Fatalf("cell count = %d, want 16", len(cells))
	}
	seen := map[[2]int]bool{}
	for _, c := range cells {
		if seen[c] {
			t.Fatalf("cell %v repeated", c)
		}
		seen[c] = true
	}
	// Diagonal first.
	for i := 0; i < 4; i++ {
		if cells[i] != [2]int{i, i} {
			t.Errorf("cell %d = %v, want diagonal", i, cells[i])
		}
	}
	// Non-square grids covered fully too.
	cells = diagonalSpiralOrder(3, 5)
	if len(cells) != 15 {
		t.Errorf("3x5 cell count = %d, want 15", len(cells))
	}
}

func TestLoadBalanceMapping(t *testing.T) {
	// With 8 qubits in a 4x4 SLM, the diagonal-first order must spread atoms
	// so no row or column holds more than 2 of the first 8.
	cells := diagonalSpiralOrder(4, 4)[:8]
	rows, cols := map[int]int{}, map[int]int{}
	for _, c := range cells {
		rows[c[0]]++
		cols[c[1]]++
	}
	for r, n := range rows {
		if n > 2 {
			t.Errorf("row %d holds %d of first 8 cells", r, n)
		}
	}
	for c, n := range cols {
		if n > 2 {
			t.Errorf("col %d holds %d of first 8 cells", c, n)
		}
	}
}

func TestAlignedMappingPutsFrequentPairsAtSamePosition(t *testing.T) {
	cfg := hardware.DefaultConfig()
	// Pairs (0,1), (2,3), ... interact heavily; mapper should assign each
	// pair's endpoints to the same (row,col) across arrays.
	c := circuit.New(8)
	for rep := 0; rep < 10; rep++ {
		for q := 0; q < 8; q += 2 {
			c.CZ(q, q+1)
		}
	}
	res, err := Compile(cfg, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	aligned := 0
	for q := 0; q < 8; q += 2 {
		s0 := res.SiteOf[res.InitialSlotOf[q]]
		s1 := res.SiteOf[res.InitialSlotOf[q+1]]
		if s0.Row == s1.Row && s0.Col == s1.Col {
			aligned++
		}
	}
	if aligned < 3 {
		t.Errorf("only %d/4 heavy pairs position-aligned", aligned)
	}
}

func TestCoolingTriggersOnLongCircuits(t *testing.T) {
	cfg := hardware.DefaultConfig()
	// Force rapid heating: long moves via tiny move time.
	cfg.Params.TimePerMove = 100e-6
	c := bench.QSimRandom(30, 30, 0.5, 2)
	res, err := Compile(cfg, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.CoolingEvents == 0 {
		t.Errorf("expected cooling events on a hot configuration")
	}
	if len(res.Trace.CoolingAtomCounts) != res.Metrics.CoolingEvents {
		t.Errorf("cooling trace inconsistent")
	}
}

// Property: random circuits compile into verified schedules with conserved
// gate counts across machine shapes.
func TestCompileProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := hardware.SquareConfig(4+rng.Intn(3), 1+rng.Intn(3))
		n := 4 + rng.Intn(12)
		c := circuit.New(n)
		for i := 0; i < 5+rng.Intn(50); i++ {
			if rng.Intn(4) == 0 {
				c.H(rng.Intn(n))
				continue
			}
			a, b := rng.Intn(n), rng.Intn(n-1)
			if b >= a {
				b++
			}
			c.CZ(a, b)
		}
		res, err := Compile(cfg, c, Options{Seed: seed})
		if err != nil {
			return false
		}
		if res.Metrics.N2Q != c.Num2Q()+3*res.Metrics.SwapCount {
			return false
		}
		for _, stage := range res.Schedule.Stages {
			used := map[int]bool{}
			for _, g := range stage.Gates {
				if used[g.SlotA] || used[g.SlotB] {
					return false
				}
				used[g.SlotA], used[g.SlotB] = true, true
				if res.SiteOf[g.SlotA].Array == res.SiteOf[g.SlotB].Array {
					return false
				}
			}
		}
		f := res.Metrics.FidelityTotal()
		return f >= 0 && f <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
