package core

import (
	"math/rand"
	"testing"

	"atomique/internal/hardware"
)

// The incremental stage-plan (undo journal + neighbour constraint check)
// must behave exactly like the original full-recompute implementation:
// a rejected tryAdd leaves the plan indistinguishable from one that never
// saw the attempt, and the rejection reason — which feeds the overlap
// counter — matches the full rescan. The reference implementations below
// reproduce the pre-refactor algorithm (rebuildWithoutLast + full
// checkOrderAndOverlap) for comparison.

// applyBinding writes one binding into the dense tables, maintaining the
// bound-index lists (shared by the reference implementations below).
func (p *stagePlan) applyBinding(isRow bool, array, idx int, target float64) {
	if isRow {
		if !bound(p.rowT[array][idx]) {
			p.rowBound[array] = append(p.rowBound[array], idx)
		}
		p.rowT[array][idx] = target
		return
	}
	if !bound(p.colT[array][idx]) {
		p.colBound[array] = append(p.colBound[array], idx)
	}
	p.colT[array][idx] = target
}

// checkOrderAndOverlap is the pre-refactor full rescan of constraints 2 and
// 3 on every AOD array: bound rows (columns) must keep strictly increasing
// targets in index order. The hot path uses checkChangedBindings; this full
// version is the reference the incremental check is tested against.
func (p *stagePlan) checkOrderAndOverlap() addReason {
	st := p.st
	for a := 1; a < st.cfg.NumArrays(); a++ {
		if r := checkAxis(p.rowT[a], st.opts); r != addOK {
			return r
		}
		if r := checkAxis(p.colT[a], st.opts); r != addOK {
			return r
		}
	}
	return addOK
}

func checkAxis(binds []float64, opts Options) addReason {
	prev := unbound
	for _, t := range binds {
		if !bound(t) {
			continue
		}
		if bound(prev) {
			if r := checkAdjacent(prev, t, opts); r != addOK {
				return r
			}
		}
		prev = t
	}
	return addOK
}

// tryAddReference is the pre-refactor tryAdd: apply, full constraint
// rescan, rebuild-from-scratch on rejection.
func (p *stagePlan) tryAddReference(a, b int) addReason {
	st := p.st
	sa, sb := st.siteOf[a], st.siteOf[b]
	if sa.Array == 0 && sb.Array == 0 {
		return addIllegal
	}
	e := st.bindsFor(a, b)
	for _, rb := range e.rows {
		if t := p.rowT[int(rb[0])][int(rb[1])]; bound(t) && !approxEq(t, rb[2]) {
			return addRowConflict
		}
	}
	for _, cb := range e.cols {
		if t := p.colT[int(cb[0])][int(cb[1])]; bound(t) && !approxEq(t, cb[2]) {
			return addRowConflict
		}
	}
	for _, rb := range e.rows {
		p.applyBinding(true, int(rb[0]), int(rb[1]), rb[2])
	}
	for _, cb := range e.cols {
		p.applyBinding(false, int(cb[0]), int(cb[1]), cb[2])
	}
	key := pairKey(a, b)
	p.pairs[key] = true
	p.gates = append(p.gates, key)

	reason := p.checkOrderAndOverlap()
	if reason == addOK && !st.opts.RelaxAddressing && !p.checkAddressing() {
		reason = addAddressing
	}
	if reason != addOK {
		p.rebuildWithoutLast()
	}
	return reason
}

// rebuildWithoutLast is the pre-refactor rejection path: drop the last gate
// and recompute every binding from the surviving gates.
func (p *stagePlan) rebuildWithoutLast() {
	gates := append([][2]int(nil), p.gates[:len(p.gates)-1]...)
	p.reset()
	for _, g := range gates {
		e := p.st.bindsFor(g[0], g[1])
		for _, rb := range e.rows {
			p.applyBinding(true, int(rb[0]), int(rb[1]), rb[2])
		}
		for _, cb := range e.cols {
			p.applyBinding(false, int(cb[0]), int(cb[1]), cb[2])
		}
		p.pairs[g] = true
		p.gates = append(p.gates, g)
	}
}

// planSnapshot is a deep copy of a plan's observable state.
type planSnapshot struct {
	rowT, colT []map[int]float64
	gates      [][2]int
	pairs      map[[2]int]bool
}

// axisMaps renders one dense axis table as per-array maps over its bound
// entries, verifying the bound lists agree with the table on the way.
func axisMaps(t *testing.T, table [][]float64, boundIdx [][]int) []map[int]float64 {
	t.Helper()
	var out []map[int]float64
	for a := range table {
		m := make(map[int]float64, len(boundIdx[a]))
		for _, i := range boundIdx[a] {
			if !bound(table[a][i]) {
				t.Fatalf("bound list has unbound index %d in array %d", i, a)
			}
			if _, dup := m[i]; dup {
				t.Fatalf("bound list duplicates index %d in array %d", i, a)
			}
			m[i] = table[a][i]
		}
		n := 0
		for _, v := range table[a] {
			if bound(v) {
				n++
			}
		}
		if n != len(m) {
			t.Fatalf("array %d: %d bound entries but %d listed", a, n, len(m))
		}
		out = append(out, m)
	}
	return out
}

func snapshotPlan(t *testing.T, p *stagePlan) planSnapshot {
	t.Helper()
	s := planSnapshot{pairs: make(map[[2]int]bool, len(p.pairs))}
	s.rowT = axisMaps(t, p.rowT, p.rowBound)
	s.colT = axisMaps(t, p.colT, p.colBound)
	s.gates = append([][2]int(nil), p.gates...)
	for k := range p.pairs {
		s.pairs[k] = true
	}
	return s
}

// samePlan compares a plan's observable state to a snapshot, bit-for-bit on
// every binding target.
func samePlan(t *testing.T, label string, p *stagePlan, s planSnapshot) {
	t.Helper()
	got := snapshotPlan(t, p)
	if len(got.gates) != len(s.gates) {
		t.Fatalf("%s: gates %v != %v", label, got.gates, s.gates)
	}
	for i := range got.gates {
		if got.gates[i] != s.gates[i] {
			t.Fatalf("%s: gate %d: %v != %v", label, i, got.gates[i], s.gates[i])
		}
	}
	if len(got.pairs) != len(s.pairs) {
		t.Fatalf("%s: pairs %v != %v", label, got.pairs, s.pairs)
	}
	for k := range s.pairs {
		if !got.pairs[k] {
			t.Fatalf("%s: missing pair %v", label, k)
		}
	}
	axes := func(name string, got, want []map[int]float64) {
		for a := range want {
			if len(got[a]) != len(want[a]) {
				t.Fatalf("%s: %s[%d] = %v, want %v", label, name, a, got[a], want[a])
			}
			for idx, v := range want[a] {
				gv, ok := got[a][idx]
				if !ok || gv != v {
					t.Fatalf("%s: %s[%d][%d] = %v (present %v), want %v", label, name, a, idx, gv, ok, v)
				}
			}
		}
	}
	axes("rowT", got.rowT, s.rowT)
	axes("colT", got.colT, s.colT)
}

// testState builds a routerState over a hand-placed site assignment:
// sites[slot] lists (array, row, col).
func testState(t *testing.T, cfg hardware.Config, sites [][3]int, opts Options) *routerState {
	t.Helper()
	siteOf := make([]hardware.Site, len(sites))
	for slot, s := range sites {
		siteOf[slot] = hardware.Site{Array: s[0], Row: s[1], Col: s[2]}
	}
	return newRouterState(cfg, siteOf, opts)
}

// The crafted scenarios drive every rejection reason and assert the plan is
// identical to never having tried, including the order/overlap and
// addressing bookkeeping.
func TestTryAddUndoPerReason(t *testing.T) {
	cfg := hardware.SquareConfig(4, 2)
	// Slots: 0-2 SLM at (0,0),(2,0),(2,2); 3-6 AOD1 at (0,0),(0,1),(1,1),(2,1);
	// 7 AOD2 (0,0); 8 SLM (0,2).
	sites := [][3]int{
		{0, 0, 0}, {0, 2, 0}, {0, 2, 2},
		{1, 0, 0}, {1, 0, 1}, {1, 1, 1}, {1, 2, 1},
		{2, 0, 0},
		{0, 0, 2},
	}
	cases := []struct {
		name   string
		setup  [][2]int // accepted gates
		a, b   int
		reason addReason
	}{
		{"illegal-intra-slm", nil, 0, 1, addIllegal},
		// Slot 3 row 0 bound to Y(2) by gate (3,1); slot 4 shares row 0 but
		// targets Y(0): the row cannot be split.
		{"row-conflict", [][2]int{{3, 1}}, 4, 0, addRowConflict},
		// Gate (3,1) binds row 0 to Y(2); adding (5,0) binds row 1 to Y(0),
		// inverting the row order (constraint 2).
		{"order", [][2]int{{3, 1}}, 5, 0, addOrder},
		// Gate (3,1) binds row 0 to Y(2); adding (5,2) binds row 1 to the
		// same Y(2): rows coincide (constraint 3).
		{"overlap", [][2]int{{3, 1}}, 5, 2, addOverlap},
		// Gates (3,0) and (5,2) bind rows {0->Y0, 1->Y2} and cols
		// {0->X0, 1->X2} of AOD 1 — ordered and distinct — but the cross
		// product sends the bystander atom 4 at (row 0, col 1) onto the
		// occupied SLM site (0,2), an unintended interaction (constraint 1).
		{"addressing", [][2]int{{3, 0}}, 5, 2, addAddressing},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := testState(t, cfg, sites, Options{})
			plan := newStagePlan(st)
			for _, g := range tc.setup {
				if r := plan.tryAdd(g[0], g[1]); r != addOK {
					t.Fatalf("setup gate %v rejected: %d", g, r)
				}
			}
			snap := snapshotPlan(t, plan)
			if r := plan.tryAdd(tc.a, tc.b); r != tc.reason {
				t.Fatalf("tryAdd(%d,%d) = %d, want %d", tc.a, tc.b, r, tc.reason)
			}
			samePlan(t, tc.name, plan, snap)
			// The rejected plan must still accept and commit exactly like a
			// fresh plan with the same accepted gates.
			fresh := newStagePlan(st)
			for _, g := range tc.setup {
				fresh.tryAdd(g[0], g[1])
			}
			samePlan(t, tc.name+"-fresh", plan, snapshotPlan(t, fresh))
		})
	}
}

// randomSites places n atoms per array at distinct random cells.
func randomSites(rng *rand.Rand, cfg hardware.Config, perArray int) [][3]int {
	var sites [][3]int
	for a := 0; a < cfg.NumArrays(); a++ {
		spec := cfg.Array(a)
		used := map[[2]int]bool{}
		for len(used) < perArray {
			cell := [2]int{rng.Intn(spec.Rows), rng.Intn(spec.Cols)}
			if used[cell] {
				continue
			}
			used[cell] = true
			sites = append(sites, [3]int{a, cell[0], cell[1]})
		}
	}
	return sites
}

// The incremental implementation must agree with the reference on every
// random attempt sequence: same reason, same resulting plan.
func TestTryAddMatchesReference(t *testing.T) {
	cfg := hardware.SquareConfig(6, 2)
	for _, opts := range []Options{
		{},
		{RelaxOrder: true},
		{RelaxOverlap: true},
		{RelaxAddressing: true},
		{RelaxOrder: true, RelaxOverlap: true, RelaxAddressing: true},
	} {
		for seed := int64(0); seed < 8; seed++ {
			rng := rand.New(rand.NewSource(seed))
			sites := randomSites(rng, cfg, 8)
			st := testState(t, cfg, sites, opts)
			inc := newStagePlan(st)
			ref := newStagePlan(st)
			seen := map[addReason]int{}
			for attempt := 0; attempt < 300; attempt++ {
				a := rng.Intn(len(sites))
				b := rng.Intn(len(sites) - 1)
				if b >= a {
					b++
				}
				if inc.pairs[pairKey(a, b)] {
					continue // routed gates are pair-unique within a stage
				}
				got := inc.tryAdd(a, b)
				want := ref.tryAddReference(a, b)
				if got != want {
					t.Fatalf("opts %+v seed %d attempt %d (%d,%d): incremental %d, reference %d",
						opts, seed, attempt, a, b, got, want)
				}
				seen[got]++
				samePlan(t, "after attempt", inc, snapshotPlan(t, ref))
			}
			if seen[addOK] == 0 || seen[addOK] == 300 {
				t.Fatalf("opts %+v seed %d degenerate mix: %v", opts, seed, seen)
			}
		}
	}
}

// Committing after a run of rejected attempts must produce the same moves
// as a plan that only ever saw the accepted gates.
func TestCommitAfterUndoMatchesFreshPlan(t *testing.T) {
	cfg := hardware.SquareConfig(6, 2)
	rng := rand.New(rand.NewSource(42))
	sites := randomSites(rng, cfg, 8)

	var accepted [][2]int
	st1 := testState(t, cfg, sites, Options{})
	plan := newStagePlan(st1)
	for attempt := 0; attempt < 200; attempt++ {
		a := rng.Intn(len(sites))
		b := rng.Intn(len(sites) - 1)
		if b >= a {
			b++
		}
		if plan.pairs[pairKey(a, b)] {
			continue
		}
		if plan.tryAdd(a, b) == addOK {
			accepted = append(accepted, [2]int{a, b})
		}
	}
	if len(accepted) == 0 {
		t.Fatal("no gates accepted")
	}
	st2 := testState(t, cfg, sites, Options{})
	fresh := newStagePlan(st2)
	for _, g := range accepted {
		if r := fresh.tryAdd(g[0], g[1]); r != addOK {
			t.Fatalf("fresh plan rejected accepted gate %v: %d", g, r)
		}
	}
	moves1 := plan.commitMoves()
	moves2 := fresh.commitMoves()
	if len(moves1) != len(moves2) {
		t.Fatalf("moves %v != %v", moves1, moves2)
	}
	for i := range moves1 {
		if moves1[i] != moves2[i] {
			t.Fatalf("move %d: %v != %v", i, moves1[i], moves2[i])
		}
	}
}
