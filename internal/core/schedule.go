package core

import "atomique/internal/pipeline"

// The schedule types are defined in internal/pipeline (they are part of the
// typed inter-pass state every backend shares); core aliases them so the
// established core.Schedule API and its consumers (viz, export, cmd) keep
// working unchanged.

// Move is one AOD row or column translation within a stage.
type Move = pipeline.Move

// GateExec is one gate fired in a stage (slots are physical atoms; SlotB is
// -1 for one-qubit gates).
type GateExec = pipeline.GateExec

// Stage is one router iteration: one-qubit gates, AOD moves, and the
// parallel two-qubit gates fired after the moves.
type Stage = pipeline.Stage

// Schedule is the executable program the router emits.
type Schedule = pipeline.Schedule
