package sim

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"atomique/internal/circuit"
)

const eps = 1e-9

func TestBellState(t *testing.T) {
	c := circuit.New(2)
	c.H(0)
	c.CX(0, 1)
	s := MustNew(2)
	s.Run(c)
	inv := 1 / math.Sqrt2
	if cmplx.Abs(s.Amp[0]-complex(inv, 0)) > eps ||
		cmplx.Abs(s.Amp[3]-complex(inv, 0)) > eps ||
		cmplx.Abs(s.Amp[1]) > eps || cmplx.Abs(s.Amp[2]) > eps {
		t.Fatalf("Bell state wrong: %v", s.Amp)
	}
}

func TestPauliAlgebra(t *testing.T) {
	// HZH = X; HXH = Z; S^2 = Z; T^2 = S.
	for _, tc := range []struct {
		name string
		a, b *circuit.Circuit
	}{
		{"HZH=X", seq(1, "h z h"), seq(1, "x")},
		{"HXH=Z", seq(1, "h x h"), seq(1, "z")},
		{"SS=Z", seq(1, "s s"), seq(1, "z")},
		{"TT=S", seq(1, "t t"), seq(1, "s")},
	} {
		if !equivalentOn(tc.a, tc.b, 1) {
			t.Errorf("%s failed", tc.name)
		}
	}
}

func seq(n int, ops string) *circuit.Circuit {
	c := circuit.New(n)
	for _, op := range splitWords(ops) {
		switch op {
		case "h":
			c.H(0)
		case "x":
			c.X(0)
		case "z":
			c.Add1Q(circuit.OpZ, 0, 0)
		case "s":
			c.Add1Q(circuit.OpS, 0, 0)
		case "t":
			c.Add1Q(circuit.OpT, 0, 0)
		}
	}
	return c
}

func splitWords(s string) []string {
	var out []string
	cur := ""
	for _, r := range s + " " {
		if r == ' ' {
			if cur != "" {
				out = append(out, cur)
				cur = ""
			}
			continue
		}
		cur += string(r)
	}
	return out
}

// equivalentOn checks equality (up to global phase) of the two circuits on a
// set of random product-state inputs.
func equivalentOn(a, b *circuit.Circuit, n int) bool {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5; trial++ {
		in := randomProductState(n, rng)
		sa, sb := in.Clone(), in.Clone()
		sa.Run(a)
		sb.Run(b)
		if Fidelity(sa, sb) < 1-1e-9 {
			return false
		}
	}
	return true
}

func randomProductState(n int, rng *rand.Rand) *State {
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.RY(q, rng.Float64()*math.Pi)
		c.RZ(q, rng.Float64()*2*math.Pi)
	}
	s := MustNew(n)
	s.Run(c)
	return s
}

func TestSwapEqualsThreeCX(t *testing.T) {
	a := circuit.New(2)
	a.Add2Q(circuit.OpSWAP, 0, 1, 0)
	b := circuit.New(2)
	b.CX(0, 1)
	b.CX(1, 0)
	b.CX(0, 1)
	if !equivalentOn(a, b, 2) {
		t.Fatalf("SWAP != CX^3")
	}
}

func TestZZEqualsCXRZCX(t *testing.T) {
	theta := 0.7321
	a := circuit.New(2)
	a.ZZ(0, 1, theta)
	b := circuit.New(2)
	b.CX(0, 1)
	b.RZ(1, theta)
	b.CX(1, 0) // deliberately wrong decomposition: must NOT be equivalent
	if equivalentOn(a, b, 2) {
		t.Fatalf("wrong decomposition accepted")
	}
	good := circuit.New(2)
	good.CX(0, 1)
	good.RZ(1, theta)
	good.CX(0, 1)
	if !equivalentOn(a, good, 2) {
		t.Fatalf("ZZ != CX.RZ.CX")
	}
}

func TestCZSymmetric(t *testing.T) {
	a := circuit.New(2)
	a.CZ(0, 1)
	b := circuit.New(2)
	b.CZ(1, 0)
	if !equivalentOn(a, b, 2) {
		t.Fatalf("CZ not symmetric")
	}
}

func TestCXEqualsHCZH(t *testing.T) {
	a := circuit.New(2)
	a.CX(0, 1)
	b := circuit.New(2)
	b.H(1)
	b.CZ(0, 1)
	b.H(1)
	if !equivalentOn(a, b, 2) {
		t.Fatalf("CX != H.CZ.H")
	}
}

func TestPermute(t *testing.T) {
	// |01> (qubit0=1) permuted by {0->1,1->0} becomes |10>.
	s := MustNew(2)
	s.Amp[0], s.Amp[1] = 0, 1 // basis index 1 = qubit0 set
	p := s.Permute([]int{1, 0})
	if cmplx.Abs(p.Amp[2]-1) > eps {
		t.Fatalf("Permute wrong: %v", p.Amp)
	}
}

func TestEmbed(t *testing.T) {
	s := MustNew(1)
	s.Amp[0], s.Amp[1] = 0, 1 // |1>
	e := s.Embed(3, []int{2})
	if cmplx.Abs(e.Amp[4]-1) > eps {
		t.Fatalf("Embed wrong: %v", e.Amp)
	}
	if math.Abs(e.Norm()-1) > eps {
		t.Fatalf("Embed lost norm")
	}
}

// Property: every supported gate is unitary (norm preserved), and RZ/RX/RY
// compose additively in angle.
func TestUnitarityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		s := randomProductState(n, rng)
		c := circuit.New(n)
		for i := 0; i < 30; i++ {
			switch rng.Intn(6) {
			case 0:
				c.H(rng.Intn(n))
			case 1:
				c.RZ(rng.Intn(n), rng.Float64()*7)
			case 2:
				c.RX(rng.Intn(n), rng.Float64()*7)
			case 3, 4:
				a, b := pick2(n, rng)
				c.CX(a, b)
			case 5:
				a, b := pick2(n, rng)
				c.ZZ(a, b, rng.Float64()*7)
			}
		}
		s.Run(c)
		return math.Abs(s.Norm()-1) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: rotation composition RZ(a)RZ(b) == RZ(a+b).
func TestRotationCompositionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := rng.Float64()*4, rng.Float64()*4
		c1 := circuit.New(1)
		c1.RZ(0, a)
		c1.RZ(0, b)
		c2 := circuit.New(1)
		c2.RZ(0, a+b)
		return equivalentOn(c1, c2, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func pick2(n int, rng *rand.Rand) (int, int) {
	a := rng.Intn(n)
	b := rng.Intn(n - 1)
	if b >= a {
		b++
	}
	return a, b
}

func TestStateGuards(t *testing.T) {
	if _, err := NewState(-1); err == nil {
		t.Error("NewState(-1) accepted")
	}
	// Too-wide registers are a structured, returned error — the dispatcher
	// and the compile service turn this into a fallback or a 400.
	_, err := NewState(30)
	var tw *TooWideError
	if !errors.As(err, &tw) {
		t.Fatalf("NewState(30): err = %v, want *TooWideError", err)
	}
	if tw.N != 30 || tw.Max != MaxQubits {
		t.Errorf("TooWideError = %+v, want N=30 Max=%d", tw, MaxQubits)
	}
	mustPanic(t, func() { MustNew(30) })
	s := MustNew(1)
	mustPanic(t, func() { s.Run(circuit.New(3)) })
	mustPanic(t, func() { s.Permute([]int{0, 1}) })
	t2 := MustNew(2)
	mustPanic(t, func() { Fidelity(s, t2) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	f()
}
