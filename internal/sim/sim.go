// Package sim is a dense state-vector quantum simulator used to verify
// compiler correctness: a compiled (routed, scheduled) circuit must be
// semantically equivalent to its source up to the qubit permutation the
// routing introduces. It supports every op in the circuit IR and is
// practical to ~20 qubits — ample for equivalence checking of the routing
// pipeline on randomly generated circuits.
package sim

import (
	"fmt"
	"math"
	"math/cmplx"

	"atomique/internal/circuit"
)

// State is a 2^n-dimensional state vector over n qubits. Qubit 0 is the
// least significant bit of the basis index.
type State struct {
	N   int
	Amp []complex128
}

// MaxQubits is the widest register the dense simulator will allocate: 2^24
// amplitudes (256 MiB). Wider Clifford workloads belong to internal/stab.
const MaxQubits = 24

// TooWideError reports a register beyond the dense simulator's reach. It is
// a returned (not panicked) condition so dispatchers and the compile service
// can degrade gracefully — fall back to the stabilizer engine, or answer the
// client with a 400 instead of crashing a worker.
type TooWideError struct {
	N   int // requested qubit count
	Max int // the dense limit (MaxQubits)
}

func (e *TooWideError) Error() string {
	return fmt.Sprintf("sim: %d qubits exceeds the dense simulator's %d-qubit limit", e.N, e.Max)
}

// NewState returns |0...0> over n qubits, or a *TooWideError when the dense
// representation would exceed MaxQubits.
func NewState(n int) (*State, error) {
	if n < 0 {
		return nil, fmt.Errorf("sim: negative qubit count %d", n)
	}
	if n > MaxQubits {
		return nil, &TooWideError{N: n, Max: MaxQubits}
	}
	s := &State{N: n, Amp: make([]complex128, 1<<uint(n))}
	s.Amp[0] = 1
	return s, nil
}

// MustNew is NewState for callers that have already validated the width
// (tests, and hot loops behind a width-checked entry point); it panics on a
// width the dense simulator cannot hold.
func MustNew(n int) *State {
	s, err := NewState(n)
	if err != nil {
		panic(err)
	}
	return s
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	out := &State{N: s.N, Amp: make([]complex128, len(s.Amp))}
	copy(out.Amp, s.Amp)
	return out
}

// Apply applies one gate.
func (s *State) Apply(g circuit.Gate) {
	if g.IsTwoQubit() {
		s.apply2Q(g)
		return
	}
	s.apply1Q(g)
}

// Run applies every gate of c in order.
func (s *State) Run(c *circuit.Circuit) {
	if c.N > s.N {
		panic("sim: circuit wider than state")
	}
	for _, g := range c.Gates {
		s.Apply(g)
	}
}

// one-qubit unitaries as [a b; c d] acting on (|0>, |1>).
func gate1Q(op circuit.Op, theta float64) [4]complex128 {
	inv := complex(1/math.Sqrt2, 0)
	switch op {
	case circuit.OpH:
		return [4]complex128{inv, inv, inv, -inv}
	case circuit.OpX:
		return [4]complex128{0, 1, 1, 0}
	case circuit.OpY:
		return [4]complex128{0, -1i, 1i, 0}
	case circuit.OpZ:
		return [4]complex128{1, 0, 0, -1}
	case circuit.OpS:
		return [4]complex128{1, 0, 0, 1i}
	case circuit.OpT:
		return [4]complex128{1, 0, 0, cmplx.Exp(1i * math.Pi / 4)}
	case circuit.OpRX:
		c, sn := complex(math.Cos(theta/2), 0), complex(math.Sin(theta/2), 0)
		return [4]complex128{c, -1i * sn, -1i * sn, c}
	case circuit.OpRY:
		c, sn := complex(math.Cos(theta/2), 0), complex(math.Sin(theta/2), 0)
		return [4]complex128{c, -sn, sn, c}
	case circuit.OpRZ:
		return [4]complex128{cmplx.Exp(complex(0, -theta/2)), 0, 0, cmplx.Exp(complex(0, theta/2))}
	case circuit.OpU:
		// Modelled as RY(theta) — a representative generic rotation.
		c, sn := complex(math.Cos(theta/2), 0), complex(math.Sin(theta/2), 0)
		return [4]complex128{c, -sn, sn, c}
	default:
		panic(fmt.Sprintf("sim: not a one-qubit op: %v", op))
	}
}

func (s *State) apply1Q(g circuit.Gate) {
	u := gate1Q(g.Op, g.Param)
	bit := 1 << uint(g.Q0)
	for i := range s.Amp {
		if i&bit != 0 {
			continue
		}
		a0, a1 := s.Amp[i], s.Amp[i|bit]
		s.Amp[i] = u[0]*a0 + u[1]*a1
		s.Amp[i|bit] = u[2]*a0 + u[3]*a1
	}
}

func (s *State) apply2Q(g circuit.Gate) {
	b0 := 1 << uint(g.Q0)
	b1 := 1 << uint(g.Q1)
	switch g.Op {
	case circuit.OpCX:
		for i := range s.Amp {
			// Control set, target clear: swap with target set.
			if i&b0 != 0 && i&b1 == 0 {
				j := i | b1
				s.Amp[i], s.Amp[j] = s.Amp[j], s.Amp[i]
			}
		}
	case circuit.OpCZ:
		for i := range s.Amp {
			if i&b0 != 0 && i&b1 != 0 {
				s.Amp[i] = -s.Amp[i]
			}
		}
	case circuit.OpZZ:
		// exp(-i theta/2 Z⊗Z): phase exp(-i theta/2) on even parity,
		// exp(+i theta/2) on odd parity.
		pe := cmplx.Exp(complex(0, -g.Param/2))
		po := cmplx.Exp(complex(0, g.Param/2))
		for i := range s.Amp {
			if (i&b0 != 0) != (i&b1 != 0) {
				s.Amp[i] *= po
			} else {
				s.Amp[i] *= pe
			}
		}
	case circuit.OpSWAP:
		for i := range s.Amp {
			if i&b0 != 0 && i&b1 == 0 {
				j := (i &^ b0) | b1
				s.Amp[i], s.Amp[j] = s.Amp[j], s.Amp[i]
			}
		}
	default:
		panic(fmt.Sprintf("sim: not a two-qubit op: %v", g.Op))
	}
}

// Fidelity returns |<s|t>|^2.
func Fidelity(s, t *State) float64 {
	if len(s.Amp) != len(t.Amp) {
		panic("sim: dimension mismatch")
	}
	var dot complex128
	for i := range s.Amp {
		dot += cmplx.Conj(s.Amp[i]) * t.Amp[i]
	}
	return real(dot)*real(dot) + imag(dot)*imag(dot)
}

// Norm returns <s|s>.
func (s *State) Norm() float64 {
	t := 0.0
	for _, a := range s.Amp {
		t += real(a)*real(a) + imag(a)*imag(a)
	}
	return t
}

// Permute returns the state with qubit q relabelled to perm[q] (perm must be
// a bijection onto [0, N)). Used to compare a routed circuit's output (on
// physical qubits) with the source circuit's output (on logical qubits).
func (s *State) Permute(perm []int) *State {
	if len(perm) != s.N {
		panic("sim: permutation size mismatch")
	}
	out := &State{N: s.N, Amp: make([]complex128, len(s.Amp))}
	for i, a := range s.Amp {
		j := 0
		for q := 0; q < s.N; q++ {
			if i&(1<<uint(q)) != 0 {
				j |= 1 << uint(perm[q])
			}
		}
		out.Amp[j] = a
	}
	return out
}

// Embed returns the state extended to n qubits, with the original qubit q
// living at position mapping[q] and all new qubits in |0>.
func (s *State) Embed(n int, mapping []int) *State {
	if len(mapping) != s.N {
		panic("sim: mapping size mismatch")
	}
	out := MustNew(n)
	for i := range out.Amp {
		out.Amp[i] = 0
	}
	for i, a := range s.Amp {
		j := 0
		for q := 0; q < s.N; q++ {
			if i&(1<<uint(q)) != 0 {
				j |= 1 << uint(mapping[q])
			}
		}
		out.Amp[j] = a
	}
	return out
}
