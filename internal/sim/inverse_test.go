package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"atomique/internal/circuit"
)

// Property: C followed by C.Inverse() is the identity on random states —
// the simulator and the circuit-inversion rules agree exactly.
func TestInverseIsIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		c := circuit.New(n)
		for i := 0; i < 5+rng.Intn(40); i++ {
			switch rng.Intn(9) {
			case 0:
				c.H(rng.Intn(n))
			case 1:
				c.X(rng.Intn(n))
			case 2:
				c.Add1Q(circuit.OpS, rng.Intn(n), 0)
			case 3:
				c.Add1Q(circuit.OpT, rng.Intn(n), 0)
			case 4:
				c.RZ(rng.Intn(n), rng.Float64()*7)
			case 5:
				c.RY(rng.Intn(n), rng.Float64()*7)
			case 6, 7:
				a, b := pick2(n, rng)
				c.CX(a, b)
			case 8:
				a, b := pick2(n, rng)
				c.ZZ(a, b, rng.Float64()*7)
			}
		}
		in := randomProductState(n, rng)
		out := in.Clone()
		out.Run(c)
		out.Run(c.Inverse())
		return Fidelity(in, out) > 1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Remap conjugation is consistent — running a remapped circuit on
// a permuted state equals permuting the result of the original circuit.
func TestRemapConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		c := circuit.New(n)
		for i := 0; i < 5+rng.Intn(20); i++ {
			if rng.Intn(2) == 0 {
				c.H(rng.Intn(n))
			} else {
				a, b := pick2(n, rng)
				c.CX(a, b)
			}
		}
		perm := rng.Perm(n)
		in := randomProductState(n, rng)

		// Path 1: run original, then permute.
		s1 := in.Clone()
		s1.Run(c)
		s1 = s1.Permute(perm)
		// Path 2: permute input, run remapped circuit.
		s2 := in.Permute(perm)
		s2.Run(c.Remap(n, perm))
		return Fidelity(s1, s2) > 1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
