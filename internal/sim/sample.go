package sim

import "sort"

// Sampler draws computational-basis outcomes from a fixed state via its
// cumulative measurement distribution: one binary search per draw. Built
// once per sampling run for the ideal (error-free) output, which every
// non-errored shot samples from; all state is read-only after construction,
// so concurrent draws are safe.
type Sampler struct {
	N   int
	cdf []float64
}

// NewSampler precomputes the cumulative distribution of s.
func NewSampler(s *State) *Sampler {
	cdf := make([]float64, len(s.Amp))
	acc := 0.0
	for i, a := range s.Amp {
		acc += real(a)*real(a) + imag(a)*imag(a)
		cdf[i] = acc
	}
	return &Sampler{N: s.N, cdf: cdf}
}

// Draw maps a uniform u ∈ (0, 1] to a basis-state index.
func (sp *Sampler) Draw(u float64) int {
	u *= sp.cdf[len(sp.cdf)-1] // tolerate norm drift from long gate streams
	i := sort.SearchFloat64s(sp.cdf, u)
	if i >= len(sp.cdf) {
		i = len(sp.cdf) - 1
	}
	return i
}

// SampleState maps a uniform u ∈ (0, 1] to a basis-state index of an
// arbitrary state by a single linear accumulation — used for errored-shot
// states that exist only transiently in a worker's scratch buffer, where
// building a Sampler would cost the same pass plus an allocation.
func SampleState(s *State, u float64) int {
	norm := s.Norm()
	target := u * norm
	acc := 0.0
	for i, a := range s.Amp {
		acc += real(a)*real(a) + imag(a)*imag(a)
		if acc >= target {
			return i
		}
	}
	return len(s.Amp) - 1
}
