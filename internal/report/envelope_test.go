package report

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"atomique/internal/fidelity"
	"atomique/internal/metrics"
)

func sampleMetrics() metrics.Compiled {
	return metrics.Compiled{
		Arch:        "Atomique",
		NQubits:     4,
		N2Q:         3,
		N1Q:         1,
		Depth2Q:     3,
		CompileTime: 1500 * time.Microsecond,
		Fidelity: fidelity.Breakdown{
			OneQubit: 0.999, TwoQubit: 0.99, Transfer: 1,
			MoveHeating: 0.995, MoveCooling: 1, MoveLoss: 1, MoveDeco: 0.9999,
		},
	}
}

func TestEnvelopeDeterministicBytes(t *testing.T) {
	a, err := NewEnvelope("abc123", sampleMetrics()).EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEnvelope("abc123", sampleMetrics()).EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("identical envelopes serialise to different bytes")
	}
	if strings.Contains(string(a), ":-0") {
		t.Errorf("envelope contains negative zero: %s", a)
	}
	var round Envelope
	if err := json.Unmarshal(a, &round); err != nil {
		t.Fatal(err)
	}
	if round.CircuitHash != "abc123" || round.Metrics.N2Q != 3 {
		t.Errorf("round trip = %+v", round)
	}
	if round.CompileSeconds != 0.0015 {
		t.Errorf("compileSeconds = %v, want 0.0015", round.CompileSeconds)
	}
	// All seven fidelity factors are present and the entries sum to the
	// total error, so clients can attribute -log10(fidelityTotal) exactly.
	if len(round.ErrorBreakdown) != 7 {
		t.Errorf("errorBreakdown has %d entries, want 7: %v", len(round.ErrorBreakdown), round.ErrorBreakdown)
	}
	sum := 0.0
	for _, v := range round.ErrorBreakdown {
		sum += v
	}
	if want := -math.Log10(round.FidelityTotal); math.Abs(sum-want) > 1e-12 {
		t.Errorf("errorBreakdown sums to %v, want %v", sum, want)
	}
}

func TestEnvelopeOmitsInfiniteErrorEntries(t *testing.T) {
	m := sampleMetrics()
	m.Fidelity.MoveHeating = 0 // -log10 would be +Inf, unrepresentable in JSON
	js, err := NewEnvelope("h", m).EncodeJSON()
	if err != nil {
		t.Fatalf("EncodeJSON with zero factor: %v", err)
	}
	if strings.Contains(string(js), "Move Heating") {
		t.Error("infinite error entry not omitted")
	}
	var env Envelope
	if err := json.Unmarshal(js, &env); err != nil {
		t.Fatal(err)
	}
	if env.FidelityTotal != 0 {
		t.Errorf("fidelityTotal = %v, want 0", env.FidelityTotal)
	}
}
