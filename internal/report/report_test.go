package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:  "demo",
		Header: []string{"name", "value"},
		Notes:  []string{"a note"},
	}
	tbl.AddRow("alpha", 1)
	tbl.AddRow("beta", 2.5)
	tbl.AddRow("gammagamma", 0.333333333)
	out := tbl.String()

	for _, want := range []string{"== demo ==", "name", "alpha", "beta",
		"gammagamma", "0.3333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns aligned: every data line has the value starting at the same
	// offset as the header's second column.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	headerIdx := strings.Index(lines[1], "value")
	if headerIdx < 0 {
		t.Fatalf("no value column")
	}
	if !strings.HasPrefix(lines[3][headerIdx:], "1") {
		t.Errorf("misaligned column:\n%s", out)
	}
}

func TestFloatFormatting(t *testing.T) {
	if got := format(1.23456789); got != "1.235" {
		t.Errorf("format(float) = %q", got)
	}
	if got := format(float32(2)); got != "2" {
		t.Errorf("format(float32) = %q", got)
	}
	if got := format("x"); got != "x" {
		t.Errorf("format(string) = %q", got)
	}
	if got := format(42); got != "42" {
		t.Errorf("format(int) = %q", got)
	}
}

func TestToTable(t *testing.T) {
	series := []Series{
		{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
		{Name: "b", X: []float64{1, 2}, Y: []float64{30}}, // short series pads with -
	}
	tbl := ToTable("s", "x", series)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
	if tbl.Rows[1][2] != "-" {
		t.Errorf("missing-point marker = %q", tbl.Rows[1][2])
	}
	empty := ToTable("e", "x", nil)
	if len(empty.Rows) != 0 {
		t.Errorf("empty series produced rows")
	}
}

func TestRenderWithoutTitle(t *testing.T) {
	tbl := &Table{Header: []string{"h"}}
	tbl.AddRow("v")
	if strings.Contains(tbl.String(), "==") {
		t.Errorf("untitled table rendered a title bar")
	}
}
