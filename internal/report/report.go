// Package report renders experiment results as aligned plain-text tables and
// series — the textual equivalents of the paper's tables and figures. Every
// experiment driver returns a Table; cmd/experiments and the benchmark
// harness print them through this package.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of string cells with a header row.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes hold free-form caveats printed under the table (e.g. paper
	// reference values).
	Notes []string
}

// AddRow appends a row, converting each value with %v (floats get %.4g).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = format(c)
	}
	t.Rows = append(t.Rows, row)
}

func format(v interface{}) string {
	switch x := v.(type) {
	case float64:
		return fmt.Sprintf("%.4g", x)
	case float32:
		return fmt.Sprintf("%.4g", x)
	default:
		return fmt.Sprintf("%v", v)
	}
}

// Render writes the table to w with aligned columns.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			width := len(c)
			if i < len(widths) {
				width = widths[i]
			}
			parts[i] = pad(c, width)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is a named (x, y) sequence — a figure line rendered as text.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// ToTable converts aligned series sharing X values into a table.
func ToTable(title, xLabel string, series []Series) *Table {
	t := &Table{Title: title, Header: []string{xLabel}}
	for _, s := range series {
		t.Header = append(t.Header, s.Name)
	}
	if len(series) == 0 {
		return t
	}
	for i := range series[0].X {
		row := []string{format(series[0].X[i])}
		for _, s := range series {
			if i < len(s.Y) {
				row = append(row, format(s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
