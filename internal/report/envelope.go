package report

import (
	"encoding/json"
	"fmt"
	"math"

	"atomique/internal/metrics"
	"atomique/internal/noise"
	"atomique/internal/obs"
)

// Envelope is the JSON-serialisable compilation-result record the compile
// service returns and caches. It is deliberately request-independent: it
// carries the circuit's content hash rather than a benchmark name, so two
// requests that resolve to the same circuit share one envelope byte-for-byte.
type Envelope struct {
	// Backend is the registry name of the compiler backend that produced
	// the result ("atomique", "qpilot", ...), when compiled through the
	// unified backend API.
	Backend string `json:"backend,omitempty"`
	// CircuitHash is the compiled circuit's content fingerprint
	// (circuit.Fingerprint); clients can use it to correlate results.
	CircuitHash string           `json:"circuitHash"`
	Metrics     metrics.Compiled `json:"metrics"`
	// TimedOut reports that an anytime/solver backend exhausted its budget.
	TimedOut bool `json:"timedOut,omitempty"`
	// Extra carries backend-specific scalar outputs (e.g. Geyser blocks and
	// pulses) with no slot in the common metrics record.
	Extra map[string]float64 `json:"extra,omitempty"`
	// Noise is the empirical fidelity estimate from Monte-Carlo trajectory
	// simulation, present when the request asked for noisy shots. It is
	// deterministic per (circuit, options, seed), like every other envelope
	// field, so noisy results cache content-addressed too.
	Noise *noise.Estimate `json:"noise,omitempty"`
	// Sample is the measurement histogram from sampling trajectories,
	// present when the request asked for sampled bitstrings (/v1/sample).
	// Deterministic per (circuit, options, seed, shot range) like Noise, so
	// shard results cache content-addressed and merge client-side.
	Sample *noise.SampleResult `json:"sample,omitempty"`
	// FidelityTotal is the product of all fidelity factors.
	FidelityTotal float64 `json:"fidelityTotal"`
	// ErrorBreakdown maps every fidelity factor (including Transfer, which
	// the Fig-18 plotting subset omits) to -log10(F), so the entries sum to
	// -log10(fidelityTotal). Factors that underflowed to zero are omitted
	// (their -log10 is +Inf, which JSON cannot carry).
	ErrorBreakdown map[string]float64 `json:"errorBreakdown,omitempty"`
	// CompileSeconds is the compile wall time in seconds.
	CompileSeconds float64 `json:"compileSeconds"`
	// TraceID correlates this result with the request-scoped trace the
	// service recorded (X-Trace-Id header, GET /v1/traces, log lines). It is
	// request-scoped, not content-addressed: the service splices it into the
	// cached envelope bytes per job, so the cache itself stays trace-free and
	// byte-identical across requests.
	TraceID string `json:"traceId,omitempty"`
	// Trace is the request's span tree: queue wait, cache lookup, pipeline
	// passes, noise-trajectory chunks. Request-scoped like TraceID.
	Trace *obs.SpanSnapshot `json:"trace,omitempty"`
}

// NewEnvelope builds the envelope for a compilation outcome.
func NewEnvelope(circuitHash string, m metrics.Compiled) Envelope {
	env := Envelope{
		CircuitHash:    circuitHash,
		Metrics:        m,
		FidelityTotal:  m.FidelityTotal(),
		CompileSeconds: m.CompileTime.Seconds(),
	}
	factors := []struct {
		label string
		f     float64
	}{
		{"1Q Gate", m.Fidelity.OneQubit},
		{"2Q Gate", m.Fidelity.TwoQubit},
		{"Transfer", m.Fidelity.Transfer},
		{"Move Heating", m.Fidelity.MoveHeating},
		{"Move Cooling", m.Fidelity.MoveCooling},
		{"Move Atom Loss", m.Fidelity.MoveLoss},
		{"Move Decoherence", m.Fidelity.MoveDeco},
	}
	for _, fc := range factors {
		if fc.f <= 0 {
			continue
		}
		v := -math.Log10(fc.f)
		if v == 0 {
			v = 0 // normalise the -0 that -log10 yields for factor 1.0
		}
		if env.ErrorBreakdown == nil {
			env.ErrorBreakdown = make(map[string]float64, len(factors))
		}
		env.ErrorBreakdown[fc.label] = v
	}
	return env
}

// EncodeJSON marshals the envelope deterministically (struct fields in
// declaration order, map keys sorted), so identical outcomes yield identical
// bytes — the property the service's content-addressed cache relies on.
func (e Envelope) EncodeJSON() ([]byte, error) {
	return json.Marshal(e)
}

// WithTrace re-encodes cached envelope bytes with the request's trace
// spliced in. The cache stores trace-free envelopes (identical bytes per
// content key); each job that serves one attaches its own trace here, so two
// requests hitting the same cache entry still get distinct, accurate traces.
func WithTrace(raw []byte, traceID string, trace *obs.SpanSnapshot) ([]byte, error) {
	var e Envelope
	if err := json.Unmarshal(raw, &e); err != nil {
		return nil, fmt.Errorf("report: decode cached envelope: %w", err)
	}
	e.TraceID = traceID
	e.Trace = trace
	return e.EncodeJSON()
}

// Canonical returns the envelope with every wall-clock measurement zeroed:
// CompileSeconds, Metrics.CompileTime, and the per-pass Seconds (pass names
// and gate/move counts stay — they are deterministic per seed). Two compiles
// of the same (circuit, config, options, seed) triple must produce identical
// canonical envelopes; the golden-snapshot regression corpus diffs exactly
// this form.
func (e Envelope) Canonical() Envelope {
	e.CompileSeconds = 0
	e.Metrics.CompileTime = 0
	e.TraceID = ""
	e.Trace = nil
	if len(e.Metrics.Passes) > 0 {
		passes := make([]metrics.PassTiming, len(e.Metrics.Passes))
		copy(passes, e.Metrics.Passes)
		for i := range passes {
			passes[i].Seconds = 0
		}
		e.Metrics.Passes = passes
	}
	return e
}
