package noise

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"atomique/internal/circuit"
	"atomique/internal/sim"
	"atomique/internal/stab"
)

// buildStabShotSim wires a shotSim for a Clifford witness the way Simulate
// does, for tests that drive the per-shot machinery directly.
func buildStabShotSim(t *testing.T, mo Model, w Witness) *shotSim {
	t.Helper()
	tab, err := stab.New(w.NSlots)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Run(w.Gates); err != nil {
		t.Fatal(err)
	}
	var oneQ, twoQ []int
	for i, g := range w.Gates {
		if g.IsTwoQubit() {
			twoQ = append(twoQ, i)
		} else {
			oneQ = append(oneQ, i)
		}
	}
	return newShotSim(mo, w, nil, tab, newConjTable(w), oneQ, twoQ)
}

// TestConjTableMatchesNaiveReplay pins the precomputed conjugation table to
// the pre-table reference (frame conjugated through the whole gate stream):
// identical scores and identical frame bits, shot for shot. The three
// witness shapes exercise every accumulation path — gate-attached 1Q/2Q
// sites, free-floating dephase, and the no-sites fallbacks (a witness with
// no 1Q gates sends Pauli1Q events down the arbitrary-(pos,q) path, one with
// no 2Q gates does the same for Pauli2Q).
func TestConjTableMatchesNaiveReplay(t *testing.T) {
	hot := Model{Channels: []Channel{
		{Label: "1q", Kind: Pauli1Q, Trials: 40, Prob: 0.05},
		{Label: "2q", Kind: Pauli2Q, Trials: 40, Prob: 0.05},
		{Label: "dephase", Kind: Dephase, Trials: 40, Prob: 0.05},
	}}
	witnesses := map[string]Witness{
		"mixed":   cliffordWitness(5, 12, 120),
		"mixed-w": cliffordWitness(9, 65, 300),
	}
	cxOnly := circuit.New(6)
	for i := 0; i < 30; i++ {
		cxOnly.CX(i%6, (i+1+i%5)%6)
	}
	witnesses["cx-only"] = Witness{NSlots: 6, Gates: cxOnly.Gates}
	hOnly := circuit.New(6)
	for i := 0; i < 24; i++ {
		hOnly.H(i % 6)
	}
	witnesses["h-only"] = Witness{NSlots: 6, Gates: hOnly.Gates}

	for name, w := range witnesses {
		sh := buildStabShotSim(t, hot, w)
		checked := 0
		for shot := int64(0); shot < 4000; shot++ {
			r := shotRNG(42, shot)
			sh.events = sh.events[:0]
			for ci := range hot.Channels {
				sh.sampleChannel(&r, &hot.Channels[ci])
			}
			if len(sh.events) == 0 {
				continue
			}
			checked++
			fast := sh.replayStab()
			fx := append([]uint64(nil), sh.frame.X...)
			fz := append([]uint64(nil), sh.frame.Z...)
			naive := sh.replayStabNaive()
			if fast != naive {
				t.Fatalf("%s shot %d: table score %v, naive score %v", name, shot, fast, naive)
			}
			if !reflect.DeepEqual(fx, sh.frame.X) || !reflect.DeepEqual(fz, sh.frame.Z) {
				t.Fatalf("%s shot %d: frames diverge\ntable X=%x Z=%x\nnaive X=%x Z=%x",
					name, shot, fx, fz, sh.frame.X, sh.frame.Z)
			}
		}
		if checked == 0 {
			t.Fatalf("%s: no errored shots exercised", name)
		}
	}
}

// idealProbs renders the dense output distribution of a witness with the
// same bitstring keys sampling uses (character i = slot i, slot 0 leftmost).
func idealProbs(t *testing.T, w Witness) map[string]float64 {
	t.Helper()
	st, err := sim.NewState(w.NSlots)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range w.Gates {
		st.Apply(g)
	}
	probs := make(map[string]float64)
	for i, a := range st.Amp {
		p := real(a)*real(a) + imag(a)*imag(a)
		if p < 1e-12 {
			continue
		}
		key := make([]byte, w.NSlots)
		for q := 0; q < w.NSlots; q++ {
			key[q] = '0' + byte(i>>uint(q)&1)
		}
		probs[string(key)] = p
	}
	return probs
}

// TestSampleHistogramChiSquare validates the noiseless sampling distribution
// against the exact dense amplitudes at 8 qubits on both engines: every
// sampled outcome must lie in the ideal support, and a Pearson chi-square
// over the support must sit within 5 sigma of its expectation.
func TestSampleHistogramChiSquare(t *testing.T) {
	w := cliffordWitness(17, 8, 60)
	probs := idealProbs(t, w)
	const shots = 40000
	for _, engine := range []string{EngineDense, EngineStab} {
		res, err := Sample(context.Background(), Model{}, w, SampleRun{
			Shots: shots, Seed: 23, Engine: engine,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Engine != engine {
			t.Fatalf("engine recorded as %q, want %q", res.Engine, engine)
		}
		if res.Survived != shots || res.LostShots != 0 || res.ErrorShots != 0 {
			t.Fatalf("%s: noiseless run tallied %d/%d/%d", engine, res.Survived, res.LostShots, res.ErrorShots)
		}
		total := int64(0)
		for k, c := range res.Counts {
			if _, ok := probs[k]; !ok {
				t.Fatalf("%s: outcome %q sampled outside the ideal support", engine, k)
			}
			total += c
		}
		if total != shots {
			t.Fatalf("%s: histogram totals %d, want %d", engine, total, shots)
		}
		chi2 := 0.0
		for k, p := range probs {
			exp := p * shots
			diff := float64(res.Counts[k]) - exp
			chi2 += diff * diff / exp
		}
		dof := float64(len(probs) - 1)
		if limit := dof + 5*math.Sqrt(2*dof) + 1; chi2 > limit {
			t.Errorf("%s: chi-square %.1f exceeds %.1f (dof %.0f)", engine, chi2, limit, dof)
		}
	}
}

// noisySampleModel adds loss so the lost-shot path is exercised too.
func noisySampleModel() Model {
	return Model{Channels: []Channel{
		{Label: "1q-gate", Kind: Pauli1Q, Trials: 60, Prob: 2e-3},
		{Label: "2q-gate", Kind: Pauli2Q, Trials: 40, Prob: 8e-3},
		{Label: "decoherence", Kind: Dephase, Trials: 80, Prob: 1e-3},
		{Label: "transfer", Kind: Loss, Trials: 80, Prob: 5e-4},
	}}
}

// TestSampleShardMergeDeterminism is the acceptance bar: K disjoint
// shot-range requests, each at a different worker count, merge bit-for-bit
// into the single-request histogram — on both engines.
func TestSampleShardMergeDeterminism(t *testing.T) {
	w := cliffordWitness(21, 10, 80)
	mo := noisySampleModel()
	const shots = 4096
	shards := []struct {
		off     int64
		n       int
		workers int
	}{{0, 1000, 1}, {1000, 24, 3}, {1024, 1976, 8}, {3000, 1096, 2}}
	for _, engine := range []string{EngineDense, EngineStab} {
		full, err := Sample(context.Background(), mo, w, SampleRun{
			Shots: shots, Seed: 9, Engine: engine, Workers: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		single, err := Sample(context.Background(), mo, w, SampleRun{
			Shots: shots, Seed: 9, Engine: engine, Workers: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(full, single) {
			t.Fatalf("%s: worker count changed the result", engine)
		}
		var parts []*SampleResult
		for _, s := range shards {
			p, err := Sample(context.Background(), mo, w, SampleRun{
				Shots: s.n, Offset: s.off, Seed: 9, Engine: engine, Workers: s.workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			parts = append(parts, p)
		}
		merged, err := MergeSamples(parts...)
		if err != nil {
			t.Fatal(err)
		}
		fullJS, _ := json.Marshal(full)
		mergedJS, _ := json.Marshal(merged)
		if string(fullJS) != string(mergedJS) {
			t.Fatalf("%s: merged shards differ from the full run\nfull:   %s\nmerged: %s", engine, fullJS, mergedJS)
		}
	}
}

// TestSampleMatchesSimulateTallies checks the event stream is byte-identical
// to Simulate's: same (seed, shots) must produce the same survived/lost/
// errored split, so an Estimate and a SampleResult of one job never disagree.
func TestSampleMatchesSimulateTallies(t *testing.T) {
	w := cliffordWitness(33, 9, 70)
	mo := noisySampleModel()
	const shots = 6000
	for _, engine := range []string{EngineDense, EngineStab} {
		est, err := Simulate(context.Background(), mo, w, Run{Shots: shots, Seed: 4, Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Sample(context.Background(), mo, w, SampleRun{Shots: shots, Seed: 4, Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		if res.LostShots != est.LostShots || res.ErrorShots != est.ErrorShots ||
			res.Survived != shots-est.ErrorShots {
			t.Errorf("%s: sample tallies %d/%d/%d vs estimate %d/%d/%d", engine,
				res.Survived, res.LostShots, res.ErrorShots,
				shots-est.ErrorShots, est.LostShots, est.ErrorShots)
		}
	}
}

// TestSampleEmitStream checks streamed records arrive in global shot order,
// agree with the histogram, and that an emit error aborts the run.
func TestSampleEmitStream(t *testing.T) {
	w := cliffordWitness(11, 8, 50)
	mo := noisySampleModel()
	const shots = 700
	const offset = 512
	var got []ShotRecord
	res, err := Sample(context.Background(), mo, w, SampleRun{
		Shots: shots, Offset: offset, Seed: 2, Workers: 4,
		Emit: func(batch []ShotRecord) error {
			got = append(got, batch...)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != shots {
		t.Fatalf("streamed %d records, want %d", len(got), shots)
	}
	counts := make(map[string]int64)
	for i, rec := range got {
		if rec.Shot != offset+int64(i) {
			t.Fatalf("record %d carries shot %d, want %d", i, rec.Shot, offset+int64(i))
		}
		if rec.Lost != (rec.Bits == "") {
			t.Fatalf("record %d: lost=%v with bits %q", i, rec.Lost, rec.Bits)
		}
		if !rec.Lost {
			counts[rec.Bits]++
		}
	}
	if !reflect.DeepEqual(counts, res.Counts) {
		t.Fatalf("streamed histogram differs from the result histogram")
	}

	batches := 0
	_, err = Sample(context.Background(), mo, w, SampleRun{
		Shots: shots, Seed: 2, Workers: 4,
		Emit: func(batch []ShotRecord) error {
			batches++
			if batches == 2 {
				return fmt.Errorf("client went away")
			}
			return nil
		},
	})
	if err == nil || !strings.Contains(err.Error(), "stream aborted") {
		t.Fatalf("aborted stream returned %v, want a stream-aborted error", err)
	}
}

// TestMergeSamplesValidation rejects overlapping or mismatched shards.
func TestMergeSamplesValidation(t *testing.T) {
	a := &SampleResult{Shots: 100, Offset: 0, Seed: 1, Engine: EngineStab, NSlots: 4, Counts: map[string]int64{}}
	b := &SampleResult{Shots: 100, Offset: 50, Seed: 1, Engine: EngineStab, NSlots: 4, Counts: map[string]int64{}}
	if _, err := MergeSamples(a, b); err == nil {
		t.Fatal("overlapping shards merged without error")
	}
	c := &SampleResult{Shots: 100, Offset: 100, Seed: 1, Engine: EngineDense, NSlots: 4, Counts: map[string]int64{}}
	if _, err := MergeSamples(a, c); err == nil {
		t.Fatal("engine-mismatched shards merged without error")
	}
}

// TestIntnUnbiased sanity-checks the Lemire rejection sampler: exact range
// and a flat distribution.
func TestIntnUnbiased(t *testing.T) {
	r := rng{s: 0xfeedface}
	const n = 10
	const draws = 200000
	var buckets [n]int
	for i := 0; i < draws; i++ {
		v := r.intn(n)
		if v < 0 || v >= n {
			t.Fatalf("intn(%d) returned %d", n, v)
		}
		buckets[v]++
	}
	exp := float64(draws) / n
	for i, c := range buckets {
		if math.Abs(float64(c)-exp) > 6*math.Sqrt(exp) {
			t.Errorf("bucket %d holds %d draws, expected %.0f±%.0f", i, c, exp, 6*math.Sqrt(exp))
		}
	}
	for i := 0; i < 100; i++ {
		if v := r.intn(1); v != 0 {
			t.Fatalf("intn(1) returned %d", v)
		}
	}
}
