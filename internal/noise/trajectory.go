package noise

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"atomique/internal/circuit"
	"atomique/internal/obs"
	"atomique/internal/sim"
	"atomique/internal/stab"
)

// MaxQubits bounds the witness width the dense trajectory engine will
// replay — the O(2^n) fallback for non-Clifford witnesses.
const MaxQubits = 22

// MaxStabQubits bounds the stabilizer trajectory engine. Tableau memory and
// per-gate cost grow only quadratically, so this is a service-sanity cap at
// paper-scale widths, far above the dense wall.
const MaxStabQubits = 1024

// Trajectory engine names, as accepted by Run.Engine and the service's
// engine request field.
const (
	// EngineAuto (or empty) dispatches Clifford witnesses to the stabilizer
	// engine and everything else to the dense fallback.
	EngineAuto = "auto"
	// EngineDense forces the dense state-vector replay (≤ MaxQubits).
	EngineDense = "dense"
	// EngineStab forces the stabilizer tableau replay; the witness must be
	// Clifford-only or Simulate returns a *stab.NonCliffordError.
	EngineStab = "stab"
)

// ValidEngine reports whether name is an accepted Run.Engine value
// (the empty string means EngineAuto).
func ValidEngine(name string) bool {
	switch name {
	case "", EngineAuto, EngineDense, EngineStab:
		return true
	}
	return false
}

// Witness is the executable gate stream a compilation produced — a mirror of
// compiler.Program's simulation-relevant fields, redeclared here so the
// compiler package can depend on noise without a cycle.
type Witness struct {
	// NSlots is the physical register width the gates act on.
	NSlots int
	// Gates is the stream in execution order; slots are in [0, NSlots).
	Gates []circuit.Gate
}

// Run configures one trajectory simulation.
type Run struct {
	// Shots is the trajectory count (required, > 0).
	Shots int
	// Seed drives every random draw. Shot i derives its own generator from
	// (Seed, i), so results are reproducible and independent of Workers.
	Seed int64
	// Workers is the parallel shot-executor count (0 = GOMAXPROCS).
	Workers int
	// Engine selects the replay engine: EngineAuto (or ""), EngineDense, or
	// EngineStab. Auto dispatches Clifford witnesses to the stabilizer
	// tableau — which handles hundreds to thousands of qubits — and falls
	// back to the dense state vector otherwise.
	Engine string
}

// ChannelReport is one channel's sampled-event tally in an Estimate.
type ChannelReport struct {
	Label  string  `json:"label"`
	Prob   float64 `json:"prob"`
	Trials int     `json:"trials"`
	Events int64   `json:"events"`
}

// Estimate is the empirical outcome of a trajectory run. It is deterministic
// per (model, witness, shots, seed) regardless of worker count, which is
// what lets the compile service cache noisy results content-addressed.
type Estimate struct {
	Shots int   `json:"shots"`
	Seed  int64 `json:"seed"`
	// Engine is the replay engine that scored the trajectories ("dense" or
	// "stab"), after auto-dispatch resolution.
	Engine string `json:"engine,omitempty"`
	// Fidelity is the mean trajectory overlap |<ideal|traj>|^2 with the
	// noise-free execution of the same witness.
	Fidelity float64 `json:"fidelity"`
	// StdErr is the standard error of Fidelity; CILow/CIHigh bound the 95%
	// confidence interval.
	StdErr float64 `json:"stdErr"`
	CILow  float64 `json:"ciLow"`
	CIHigh float64 `json:"ciHigh"`
	// Survival is the error-free trajectory fraction — the unbiased
	// estimator of the analytic fidelity product.
	Survival float64 `json:"survival"`
	// Analytic is the model's closed-form no-error probability, the
	// reference Survival converges to (and, for backends with a fidelity
	// model, the compiler's reported FidelityTotal).
	Analytic float64 `json:"analytic"`
	// LostShots counts trajectories destroyed by an atom-loss event;
	// ErrorShots counts trajectories with at least one sampled event.
	LostShots  int `json:"lostShots"`
	ErrorShots int `json:"errorShots"`
	// Channels tallies sampled events per channel, in model order.
	Channels []ChannelReport `json:"channels,omitempty"`
}

// SurvivalSigma returns the one-sigma binomial half-width of the Survival
// estimator around the analytic prediction — the yardstick the validation
// suite measures empirical-vs-analytic agreement with.
func (e *Estimate) SurvivalSigma() float64 {
	a := e.Analytic
	return math.Sqrt(a * (1 - a) / float64(e.Shots))
}

// rng is splitmix64: tiny, allocation-free, and statistically ample for
// event sampling. Each shot gets an independent stream.
type rng struct{ s uint64 }

// mix64 is the splitmix64 finalizer (a bijective avalanche).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// shotRNG derives shot i's generator from (seed, i). The initial state runs
// through the finalizer twice so consecutive shots land at unrelated points
// of the splitmix sequence — a plain affine state (seed ^ (shot+c)*gamma)
// would make shot i+1's stream a one-draw shift of shot i's, correlating
// adjacent shots and invalidating the i.i.d. assumption behind the
// confidence intervals.
func shotRNG(seed int64, shot int64) rng {
	return rng{s: mix64(uint64(seed) ^ mix64(uint64(shot)+0x632be59bd9b4e019))}
}

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	return mix64(r.s)
}

// open01 returns a uniform float in (0, 1].
func (r *rng) open01() float64 {
	return (float64(r.next()>>11) + 1) / (1 << 53)
}

// intn returns a uniform int in [0, n) by Lemire's multiply-shift rejection
// sampling — exactly unbiased, one multiply in the common case. The old
// next()%n was biased by < n/2^64: invisible in survival statistics, but
// product-visible now that sampled bitstrings ship to clients. Rejection
// draws an extra word with probability < n/2^64, and event placement feeds no
// golden (survival and event tallies depend only on the open01 stream, which
// is untouched), so no regress entries needed re-goldening.
func (r *rng) intn(n int) int {
	un := uint64(n)
	hi, lo := bits.Mul64(r.next(), un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(r.next(), un)
		}
	}
	return int(hi)
}

// event is one sampled error, applied after pos gates of the stream.
type event struct {
	pos    int
	site   int // gate index the event is attached to, or -1 when free-floating
	kind   Kind
	q0, q1 int
	pauli  int // 1..3 for 1Q (X,Y,Z); 1..15 encoding a Pauli pair for 2Q
}

// chunkShots is the work-unit size of the parallel shot loop. Chunk
// boundaries are fixed by shot index, so partial sums reduce in the same
// order whatever the worker count — keeping Estimate deterministic.
const chunkShots = 256

// partial accumulates one chunk's statistics.
type partial struct {
	sumF, sumF2 float64
	survived    int
	lost        int
	errored     int
	events      []int64
}

// ResolveEngine performs auto-dispatch for a witness: the engine Simulate
// will score trajectories with, given the requested engine name ("" meaning
// auto). It does not validate width limits — Simulate reports those.
func ResolveEngine(requested string, w Witness) string {
	switch requested {
	case EngineDense, EngineStab:
		return requested
	default: // "", EngineAuto
		if circuit.AllClifford(w.Gates) && w.NSlots <= MaxStabQubits {
			return EngineStab
		}
		return EngineDense
	}
}

// Simulate runs the Monte-Carlo trajectory estimation: Shots independent
// replays of the witness under the model's sampled error events, scored
// against the witness's noise-free output state. Shots that sample no event
// skip the replay entirely (their overlap is exactly 1), so high-fidelity
// programs execute at event-sampling speed and the shot loop stays
// embarrassingly parallel.
//
// Clifford witnesses dispatch (under EngineAuto) to the stabilizer tableau:
// sampled Pauli errors propagate as a Pauli frame and each trajectory scores
// 0 or 1 by a stabilizer syndrome check, in O(n) per gate instead of O(2^n).
// Both engines consume the identical per-shot random stream, so Survival,
// event tallies — and, for Clifford witnesses, Fidelity — agree across
// engines; results remain deterministic per (model, witness, shots, seed,
// engine) whatever the worker count.
func Simulate(ctx context.Context, mo Model, w Witness, run Run) (*Estimate, error) {
	if run.Shots <= 0 {
		return nil, fmt.Errorf("noise: shots must be positive, got %d", run.Shots)
	}
	if !ValidEngine(run.Engine) {
		return nil, fmt.Errorf("noise: unknown engine %q (want %s, %s, or %s)", run.Engine, EngineAuto, EngineDense, EngineStab)
	}
	if w.NSlots <= 0 {
		return nil, fmt.Errorf("noise: witness register %d slots wide; want at least 1", w.NSlots)
	}
	engine := ResolveEngine(run.Engine, w)
	switch {
	case engine == EngineDense && w.NSlots > MaxQubits:
		return nil, fmt.Errorf("noise: witness register %d slots wide; the dense trajectory engine handles 1..%d (Clifford witnesses dispatch to engine=stab)", w.NSlots, MaxQubits)
	case engine == EngineStab && w.NSlots > MaxStabQubits:
		return nil, fmt.Errorf("noise: witness register %d slots wide; the stabilizer trajectory engine handles 1..%d", w.NSlots, MaxStabQubits)
	}
	for i, g := range w.Gates {
		if g.Q0 < 0 || g.Q0 >= w.NSlots || (g.IsTwoQubit() && (g.Q1 < 0 || g.Q1 >= w.NSlots)) {
			return nil, fmt.Errorf("noise: witness gate %d (%v) addresses a slot outside [0,%d)", i, g, w.NSlots)
		}
	}
	workers := run.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Traced callers (the compile service) get spans for the witness replay
	// and the parallel shot loop; chunk sub-spans are recorded from worker
	// goroutines (obs spans are concurrency-safe) and capped by the span's
	// child limit. Untraced callers pay a nil check.
	parent := obs.SpanFromContext(ctx)

	// The noise-free reference, shared read-only by every worker: a dense
	// state vector, or the final stabilizer tableau.
	replaySpan := parent.StartChild("witness.replay")
	var ideal *sim.State
	var tab *stab.Tableau
	var ct *conjTable
	switch engine {
	case EngineStab:
		t, err := stab.New(w.NSlots)
		if err != nil {
			return nil, fmt.Errorf("noise: %w", err)
		}
		if err := t.Run(w.Gates); err != nil {
			return nil, fmt.Errorf("noise: engine=%s: %w", EngineStab, err)
		}
		tab = t
		ct = newConjTable(w)
	default:
		st, err := sim.NewState(w.NSlots)
		if err != nil {
			return nil, fmt.Errorf("noise: %w", err)
		}
		for _, g := range w.Gates {
			st.Apply(g)
		}
		ideal = st
	}
	if replaySpan != nil {
		replaySpan.SetAttr("slots", strconv.Itoa(w.NSlots))
		replaySpan.SetAttr("gates", strconv.Itoa(len(w.Gates)))
		replaySpan.SetAttr("engine", engine)
		replaySpan.End()
	}

	// Error-site tables: gate-attached events pick a uniform site of their
	// kind in the witness stream.
	var oneQSites, twoQSites []int
	for i, g := range w.Gates {
		if g.IsTwoQubit() {
			twoQSites = append(twoQSites, i)
		} else {
			oneQSites = append(oneQSites, i)
		}
	}

	numChunks := (run.Shots + chunkShots - 1) / chunkShots
	trajSpan := parent.StartChild("noise.trajectory")
	if trajSpan != nil {
		trajSpan.SetAttr("shots", strconv.Itoa(run.Shots))
		trajSpan.SetAttr("chunks", strconv.Itoa(numChunks))
		trajSpan.SetAttr("workers", strconv.Itoa(workers))
		trajSpan.SetAttr("engine", engine)
	}
	partials := make([]partial, numChunks)
	var nextChunk atomic.Int64
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sh := newShotSim(mo, w, ideal, tab, ct, oneQSites, twoQSites)
			for {
				c := int(nextChunk.Add(1) - 1)
				if c >= numChunks || cancelled.Load() {
					return
				}
				if ctx.Err() != nil {
					cancelled.Store(true)
					return
				}
				pt := &partials[c]
				pt.events = make([]int64, len(mo.Channels))
				lo := c * chunkShots
				hi := lo + chunkShots
				if hi > run.Shots {
					hi = run.Shots
				}
				chunkStart := time.Now()
				for shot := lo; shot < hi; shot++ {
					sh.run(run.Seed, int64(shot), pt)
				}
				if trajSpan != nil {
					if cs := trajSpan.Record("chunk", chunkStart, time.Since(chunkStart)); cs != nil {
						cs.SetAttr("shots", fmt.Sprintf("%d..%d", lo, hi-1))
					}
				}
			}
		}()
	}
	wg.Wait()
	trajSpan.End()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("noise: simulation cancelled: %w", err)
	}

	// Deterministic reduction in chunk order.
	var tot partial
	tot.events = make([]int64, len(mo.Channels))
	for i := range partials {
		p := &partials[i]
		tot.sumF += p.sumF
		tot.sumF2 += p.sumF2
		tot.survived += p.survived
		tot.lost += p.lost
		tot.errored += p.errored
		for j, n := range p.events {
			tot.events[j] += n
		}
	}

	n := float64(run.Shots)
	mean := tot.sumF / n
	variance := 0.0
	if run.Shots > 1 {
		variance = (tot.sumF2 - tot.sumF*tot.sumF/n) / (n - 1)
		if variance < 0 {
			variance = 0
		}
	}
	stderr := math.Sqrt(variance / n)
	est := &Estimate{
		Shots:      run.Shots,
		Seed:       run.Seed,
		Engine:     engine,
		Fidelity:   mean,
		StdErr:     stderr,
		CILow:      clamp01(mean - 1.96*stderr),
		CIHigh:     clamp01(mean + 1.96*stderr),
		Survival:   float64(tot.survived) / n,
		Analytic:   mo.Analytic(),
		LostShots:  tot.lost,
		ErrorShots: tot.errored,
	}
	for i, c := range mo.Channels {
		est.Channels = append(est.Channels, ChannelReport{
			Label: c.Label, Prob: c.Prob, Trials: c.Trials, Events: tot.events[i],
		})
	}
	return est, nil
}

// shotSim is one worker's reusable trajectory state. Exactly one replay
// engine is armed: dense (ideal + scratch state vectors) or stabilizer (the
// shared read-only final tableau + a worker-private Pauli frame).
type shotSim struct {
	mo        Model
	w         Witness
	oneQSites []int
	twoQSites []int
	events    []event

	ideal   *sim.State
	scratch *sim.State

	tab   *stab.Tableau
	frame *stab.Frame
	ct    *conjTable

	// sampling-mode extras (nil/empty for plain Simulate)
	denseSampler *sim.Sampler
	stabSampler  *stab.Sampler
	outBuf       []uint64 // qubit-packed outcome scratch (stab)
	keyBuf       []byte   // rendered bitstring scratch, one byte per slot
}

func newShotSim(mo Model, w Witness, ideal *sim.State, tab *stab.Tableau, ct *conjTable, oneQ, twoQ []int) *shotSim {
	s := &shotSim{mo: mo, w: w, ideal: ideal, tab: tab, ct: ct, oneQSites: oneQ, twoQSites: twoQ}
	if tab != nil {
		s.frame = tab.NewFrame()
	} else {
		s.scratch = sim.MustNew(w.NSlots)
	}
	return s
}

// run executes one trajectory and folds its outcome into pt.
func (s *shotSim) run(seed int64, shot int64, pt *partial) {
	r := shotRNG(seed, shot)
	s.events = s.events[:0]
	lost := false
	for ci := range s.mo.Channels {
		c := &s.mo.Channels[ci]
		hits := s.sampleChannel(&r, c)
		if hits == 0 {
			continue
		}
		pt.events[ci] += int64(hits)
		if c.Kind == Loss {
			lost = true
		}
	}
	switch {
	case len(s.events) == 0 && !lost:
		pt.survived++
		pt.sumF++
		pt.sumF2++
		return
	case lost:
		pt.lost++
		pt.errored++
		return // overlap 0: the register lost an atom
	}
	pt.errored++
	f := s.replay()
	pt.sumF += f
	pt.sumF2 += f * f
}

// sampleChannel draws the channel's Binomial(trials, p) error events via
// geometric gap-skipping — O(expected hits), not O(trials) — and records
// each event's placement. It returns the hit count.
func (s *shotSim) sampleChannel(r *rng, c *Channel) int {
	hits := 0
	emit := func() {
		hits++
		if c.Kind == Loss {
			return // placement irrelevant: the shot scores zero
		}
		s.events = append(s.events, s.placeEvent(r, c))
	}
	if c.Prob >= 1 {
		for t := 0; t < c.Trials; t++ {
			emit()
		}
		return hits
	}
	logq := math.Log1p(-c.Prob)
	pos := -1
	for {
		skip := int(math.Log(r.open01()) / logq)
		pos += 1 + skip
		if pos >= c.Trials || pos < 0 { // pos < 0 guards int overflow on tiny p
			return hits
		}
		emit()
	}
}

// placeEvent localises one sampled error in the witness stream.
func (s *shotSim) placeEvent(r *rng, c *Channel) event {
	switch c.Kind {
	case Pauli1Q:
		if len(s.oneQSites) > 0 {
			gi := s.oneQSites[r.intn(len(s.oneQSites))]
			return event{pos: gi + 1, site: gi, kind: Pauli1Q, q0: s.w.Gates[gi].Q0, pauli: 1 + r.intn(3)}
		}
		// The analytic model counted 1Q gates the witness does not carry
		// individually; fall back to a random qubit at a random point.
		return event{pos: r.intn(len(s.w.Gates) + 1), site: -1, kind: Pauli1Q, q0: r.intn(s.w.NSlots), pauli: 1 + r.intn(3)}
	case Pauli2Q:
		if len(s.twoQSites) > 0 {
			gi := s.twoQSites[r.intn(len(s.twoQSites))]
			g := s.w.Gates[gi]
			return event{pos: gi + 1, site: gi, kind: Pauli2Q, q0: g.Q0, q1: g.Q1, pauli: 1 + r.intn(15)}
		}
		q0 := r.intn(s.w.NSlots)
		q1 := q0
		if s.w.NSlots > 1 {
			q1 = (q0 + 1 + r.intn(s.w.NSlots-1)) % s.w.NSlots
		}
		return event{pos: r.intn(len(s.w.Gates) + 1), site: -1, kind: Pauli2Q, q0: q0, q1: q1, pauli: 1 + r.intn(15)}
	default: // Dephase
		return event{pos: r.intn(len(s.w.Gates) + 1), site: -1, kind: Dephase, q0: r.intn(s.w.NSlots), pauli: 3}
	}
}

var pauliOps = [4]circuit.Op{0, circuit.OpX, circuit.OpY, circuit.OpZ}

// replay scores one errored trajectory: the overlap of the execution with
// the shot's events injected against the ideal output.
func (s *shotSim) replay() float64 {
	if s.tab != nil {
		return s.replayStab()
	}
	sort.Slice(s.events, func(i, j int) bool { return s.events[i].pos < s.events[j].pos })
	return s.replayDense()
}

// replayStab accumulates the shot's end-of-circuit Pauli frame and
// syndrome-checks it against the final tableau's stabilizers: for a Clifford
// trajectory the overlap is exactly 1 when the accumulated error commutes
// with every stabilizer and 0 otherwise. Each event contributes its
// precomputed conjugation image (see conjTable), so the replay is O(events)
// — event order is irrelevant, XOR commutes.
func (s *shotSim) replayStab() float64 {
	if s.tab.Disturbs(s.stabFrame()) {
		return 0
	}
	return 1
}

// stabFrame rebuilds the shot's end-of-circuit Pauli frame from its events.
func (s *shotSim) stabFrame() *stab.Frame {
	f := s.frame
	f.Reset()
	for i := range s.events {
		s.ct.accumulate(f, &s.events[i])
	}
	return f
}

// replayStabNaive is the pre-table reference implementation — the frame
// conjugated gate by gate through the witness suffix. Kept for the
// differential test pinning conjTable to it bit for bit.
func (s *shotSim) replayStabNaive() float64 {
	sort.Slice(s.events, func(i, j int) bool { return s.events[i].pos < s.events[j].pos })
	f := s.frame
	f.Reset()
	ei := 0
	// Gates before the first event act on an identity frame — skip them.
	for gi := s.events[0].pos; gi <= len(s.w.Gates); gi++ {
		for ei < len(s.events) && s.events[ei].pos == gi {
			s.injectEvent(&s.events[ei])
			ei++
		}
		if gi < len(s.w.Gates) {
			f.Conjugate(s.w.Gates[gi])
		}
	}
	if s.tab.Disturbs(f) {
		return 0
	}
	return 1
}

// injectEvent multiplies one sampled error into the Pauli frame.
func (s *shotSim) injectEvent(e *event) {
	inject := func(q, p int) {
		switch p {
		case 1:
			s.frame.InjectX(q)
		case 2:
			s.frame.InjectY(q)
		case 3:
			s.frame.InjectZ(q)
		}
	}
	switch e.kind {
	case Pauli2Q:
		inject(e.q0, e.pauli&3)
		inject(e.q1, e.pauli>>2)
	default: // Pauli1Q, Dephase
		inject(e.q0, e.pauli&3)
	}
}

// replayDense re-executes the witness in the dense simulator with the
// shot's events injected and returns the overlap with the ideal output.
func (s *shotSim) replayDense() float64 {
	s.replayDenseState()
	return sim.Fidelity(s.scratch, s.ideal)
}

// replayDenseState re-executes the witness with the shot's events injected
// (events sorted by pos), leaving the errored final state in s.scratch.
func (s *shotSim) replayDenseState() {
	st := s.scratch
	for i := range st.Amp {
		st.Amp[i] = 0
	}
	st.Amp[0] = 1
	ei := 0
	apply := func(pos int) {
		for ei < len(s.events) && s.events[ei].pos == pos {
			s.applyEvent(st, &s.events[ei])
			ei++
		}
	}
	apply(0)
	for gi, g := range s.w.Gates {
		st.Apply(g)
		apply(gi + 1)
	}
}

func (s *shotSim) applyEvent(st *sim.State, e *event) {
	switch e.kind {
	case Pauli2Q:
		if p := e.pauli & 3; p != 0 {
			st.Apply(circuit.Gate{Op: pauliOps[p], Q0: e.q0, Q1: -1})
		}
		if p := e.pauli >> 2; p != 0 {
			st.Apply(circuit.Gate{Op: pauliOps[p], Q0: e.q1, Q1: -1})
		}
	default: // Pauli1Q, Dephase
		st.Apply(circuit.Gate{Op: pauliOps[e.pauli&3], Q0: e.q0, Q1: -1})
	}
}
