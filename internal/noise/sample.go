package noise

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"atomique/internal/obs"
	"atomique/internal/sim"
	"atomique/internal/stab"
)

// MaxSampleKeys caps the distinct bitstrings one sampling run will aggregate.
// Beyond it the histogram stops being a useful (or cacheable) summary — the
// run fails with advice to narrow the shot range or stream per-shot records.
const MaxSampleKeys = 1 << 16

// MaxShotIndex bounds Offset+Shots: global shot indices stay well inside the
// int64 range the per-shot RNG derivation mixes over.
const MaxShotIndex = int64(1) << 40

// ShotRecord is one shot's outcome in a streamed sample. Bits is the
// measurement bitstring — character i is slot i's outcome, slot 0 leftmost —
// and is empty for shots destroyed by atom loss.
type ShotRecord struct {
	Shot int64  `json:"shot"`
	Bits string `json:"bits,omitempty"`
	Lost bool   `json:"lost,omitempty"`
}

// SampleRun configures one sampling run — a trajectory run that keeps the
// measured bitstrings instead of discarding them.
type SampleRun struct {
	// Shots is the trajectory count of this request (required, > 0).
	Shots int
	// Offset is the global index of the first shot. Shot i of this run draws
	// from the RNG stream of global shot Offset+i, so disjoint shot ranges of
	// the same seed tile into exactly the histogram a single full-range run
	// produces — sampling jobs shard across workers and resume across
	// requests.
	Offset int64
	// Seed drives every random draw, exactly as in Run.
	Seed int64
	// Workers is the parallel shot-executor count (0 = GOMAXPROCS).
	Workers int
	// Engine selects the replay engine, as in Run.
	Engine string
	// Emit, when non-nil, receives every shot outcome in global shot order,
	// batched by chunk. An error return aborts the run. Emit is called from
	// the Sample goroutine, never concurrently.
	Emit func(batch []ShotRecord) error
}

// SampleResult is the aggregated outcome of a sampling run. Like Estimate it
// is deterministic per (model, witness, seed, shot range, engine) regardless
// of worker count, which is what makes shard results cacheable and mergeable.
type SampleResult struct {
	Shots  int    `json:"shots"`
	Offset int64  `json:"offset"`
	Seed   int64  `json:"seed"`
	Engine string `json:"engine"`
	NSlots int    `json:"nSlots"`
	// Counts is the histogram: bitstring (character i = slot i's outcome,
	// slot 0 leftmost) → occurrences. Lost shots carry no bitstring, so the
	// counts total Shots - LostShots.
	Counts   map[string]int64 `json:"counts"`
	Distinct int              `json:"distinct"`
	// Survived/LostShots/ErrorShots tally exactly as in Estimate: the event
	// stream per shot is identical to Simulate's, sampling draws append
	// after it.
	Survived   int `json:"survived"`
	LostShots  int `json:"lostShots"`
	ErrorShots int `json:"errorShots"`
}

// samplePartial is one chunk's outcome buffer.
type samplePartial struct {
	counts                  map[string]*int64
	records                 []ShotRecord
	survived, lost, errored int
	done                    chan struct{}
}

// Sample runs the Monte-Carlo sampling trajectories: Shots independent
// replays of the witness under the model's sampled error events, each
// measured in the computational basis.
//
// Per shot, the event stream is drawn exactly as Simulate draws it (the
// measurement draws append after it), so Survived/LostShots/ErrorShots agree
// with the Estimate of the same (seed, range). Error-free shots sample the
// ideal output directly — a CDF binary search on the dense engine, an
// affine-subspace draw (stab.Sampler) on the stabilizer engine. Errored
// dense shots replay and sample the errored state; errored stab shots XOR
// the shot's Pauli-frame X bits into the ideal draw, since X^aZ^b|ψ⟩ has
// |⟨z|X^aZ^b|ψ⟩|² = |⟨z⊕a|ψ⟩|². Lost shots produce no bitstring.
func Sample(ctx context.Context, mo Model, w Witness, run SampleRun) (*SampleResult, error) {
	if run.Shots <= 0 {
		return nil, fmt.Errorf("noise: shots must be positive, got %d", run.Shots)
	}
	if run.Offset < 0 {
		return nil, fmt.Errorf("noise: shot offset must be non-negative, got %d", run.Offset)
	}
	if run.Offset > MaxShotIndex-int64(run.Shots) {
		return nil, fmt.Errorf("noise: shot range [%d, %d) exceeds the global index cap 2^40", run.Offset, run.Offset+int64(run.Shots))
	}
	if !ValidEngine(run.Engine) {
		return nil, fmt.Errorf("noise: unknown engine %q (want %s, %s, or %s)", run.Engine, EngineAuto, EngineDense, EngineStab)
	}
	if w.NSlots <= 0 {
		return nil, fmt.Errorf("noise: witness register %d slots wide; want at least 1", w.NSlots)
	}
	engine := ResolveEngine(run.Engine, w)
	switch {
	case engine == EngineDense && w.NSlots > MaxQubits:
		return nil, fmt.Errorf("noise: witness register %d slots wide; the dense trajectory engine handles 1..%d (Clifford witnesses dispatch to engine=stab)", w.NSlots, MaxQubits)
	case engine == EngineStab && w.NSlots > MaxStabQubits:
		return nil, fmt.Errorf("noise: witness register %d slots wide; the stabilizer trajectory engine handles 1..%d", w.NSlots, MaxStabQubits)
	}
	for i, g := range w.Gates {
		if g.Q0 < 0 || g.Q0 >= w.NSlots || (g.IsTwoQubit() && (g.Q1 < 0 || g.Q1 >= w.NSlots)) {
			return nil, fmt.Errorf("noise: witness gate %d (%v) addresses a slot outside [0,%d)", i, g, w.NSlots)
		}
	}
	workers := run.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	parent := obs.SpanFromContext(ctx)
	replaySpan := parent.StartChild("witness.replay")
	var ideal *sim.State
	var denseSampler *sim.Sampler
	var tab *stab.Tableau
	var stabSampler *stab.Sampler
	var ct *conjTable
	switch engine {
	case EngineStab:
		t, err := stab.New(w.NSlots)
		if err != nil {
			return nil, fmt.Errorf("noise: %w", err)
		}
		if err := t.Run(w.Gates); err != nil {
			return nil, fmt.Errorf("noise: engine=%s: %w", EngineStab, err)
		}
		s, err := t.NewSampler()
		if err != nil {
			return nil, fmt.Errorf("noise: %w", err)
		}
		tab, stabSampler = t, s
		ct = newConjTable(w)
	default:
		st, err := sim.NewState(w.NSlots)
		if err != nil {
			return nil, fmt.Errorf("noise: %w", err)
		}
		for _, g := range w.Gates {
			st.Apply(g)
		}
		ideal = st
		denseSampler = sim.NewSampler(st)
	}
	if replaySpan != nil {
		replaySpan.SetAttr("slots", strconv.Itoa(w.NSlots))
		replaySpan.SetAttr("gates", strconv.Itoa(len(w.Gates)))
		replaySpan.SetAttr("engine", engine)
		replaySpan.End()
	}

	var oneQSites, twoQSites []int
	for i, g := range w.Gates {
		if g.IsTwoQubit() {
			twoQSites = append(twoQSites, i)
		} else {
			oneQSites = append(oneQSites, i)
		}
	}

	numChunks := (run.Shots + chunkShots - 1) / chunkShots
	sampleSpan := parent.StartChild("noise.sample")
	if sampleSpan != nil {
		sampleSpan.SetAttr("shots", strconv.Itoa(run.Shots))
		sampleSpan.SetAttr("offset", strconv.FormatInt(run.Offset, 10))
		sampleSpan.SetAttr("chunks", strconv.Itoa(numChunks))
		sampleSpan.SetAttr("workers", strconv.Itoa(workers))
		sampleSpan.SetAttr("engine", engine)
		sampleSpan.SetAttr("stream", strconv.FormatBool(run.Emit != nil))
	}
	partials := make([]samplePartial, numChunks)
	for i := range partials {
		partials[i].done = make(chan struct{})
	}
	var nextChunk atomic.Int64
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	// When streaming, bound worker look-ahead past the emit cursor so
	// buffered shot records stay O(workers·chunk) however slow the consumer:
	// a worker surrenders a ticket per chunk it claims, the emitter returns
	// one per chunk it flushes.
	var tickets chan struct{}
	stop := make(chan struct{})
	if run.Emit != nil {
		tickets = make(chan struct{}, workers*4)
		for i := 0; i < cap(tickets); i++ {
			tickets <- struct{}{}
		}
	}
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sh := newShotSim(mo, w, ideal, tab, ct, oneQSites, twoQSites)
			sh.denseSampler = denseSampler
			sh.stabSampler = stabSampler
			sh.outBuf = make([]uint64, (w.NSlots+63)/64)
			sh.keyBuf = make([]byte, w.NSlots)
			for {
				if tickets != nil {
					select {
					case <-tickets:
					case <-stop:
						return
					}
				}
				c := int(nextChunk.Add(1) - 1)
				if c >= numChunks || cancelled.Load() {
					return
				}
				if ctx.Err() != nil {
					cancelled.Store(true)
					return
				}
				sp := &partials[c]
				sp.counts = make(map[string]*int64)
				lo := c * chunkShots
				hi := lo + chunkShots
				if hi > run.Shots {
					hi = run.Shots
				}
				chunkStart := time.Now()
				for shot := lo; shot < hi; shot++ {
					g := run.Offset + int64(shot)
					lost, errored := sh.runSample(run.Seed, g)
					switch {
					case lost:
						sp.lost++
						sp.errored++
					case errored:
						sp.errored++
					default:
						sp.survived++
					}
					var bitsStr string
					if !lost {
						// Alloc-free lookup on the hot path; the key string
						// materialises once per distinct outcome.
						if p, ok := sp.counts[string(sh.keyBuf)]; ok {
							*p++
						} else {
							bitsStr = string(sh.keyBuf)
							one := int64(1)
							sp.counts[bitsStr] = &one
						}
					}
					if run.Emit != nil {
						if bitsStr == "" && !lost {
							bitsStr = string(sh.keyBuf)
						}
						sp.records = append(sp.records, ShotRecord{Shot: g, Bits: bitsStr, Lost: lost})
					}
				}
				close(sp.done)
				if sampleSpan != nil {
					if cs := sampleSpan.Record("chunk", chunkStart, time.Since(chunkStart)); cs != nil {
						cs.SetAttr("shots", fmt.Sprintf("%d..%d", run.Offset+int64(lo), run.Offset+int64(hi-1)))
					}
				}
			}
		}()
	}
	workersDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(workersDone)
	}()

	var emitErr error
	if run.Emit != nil {
	emitLoop:
		for c := 0; c < numChunks; c++ {
			select {
			case <-partials[c].done:
			case <-workersDone:
				select {
				case <-partials[c].done:
				default:
					break emitLoop // run aborted before chunk c computed
				}
			}
			if err := run.Emit(partials[c].records); err != nil {
				cancelled.Store(true)
				emitErr = err
				break emitLoop
			}
			tickets <- struct{}{}
		}
		close(stop)
	}
	<-workersDone
	sampleSpan.End()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("noise: sampling cancelled: %w", err)
	}
	if emitErr != nil {
		return nil, fmt.Errorf("noise: shot stream aborted: %w", emitErr)
	}

	// Deterministic reduction in chunk order (map content is order-free, the
	// tallies reduce like Simulate's).
	res := &SampleResult{
		Shots:  run.Shots,
		Offset: run.Offset,
		Seed:   run.Seed,
		Engine: engine,
		NSlots: w.NSlots,
		Counts: make(map[string]int64),
	}
	for i := range partials {
		p := &partials[i]
		res.Survived += p.survived
		res.LostShots += p.lost
		res.ErrorShots += p.errored
		for k, v := range p.counts {
			res.Counts[k] += *v
		}
		if len(res.Counts) > MaxSampleKeys {
			return nil, fmt.Errorf("noise: histogram exceeds %d distinct outcomes; narrow the shot range or stream per-shot records", MaxSampleKeys)
		}
	}
	res.Distinct = len(res.Counts)
	return res, nil
}

// runSample executes one trajectory and leaves its rendered bitstring in
// s.keyBuf (unless the shot was lost). The event-sampling draws match
// shotSim.run exactly; measurement draws consume the stream after them.
func (s *shotSim) runSample(seed, shot int64) (lost, errored bool) {
	r := shotRNG(seed, shot)
	s.events = s.events[:0]
	for ci := range s.mo.Channels {
		c := &s.mo.Channels[ci]
		if s.sampleChannel(&r, c) > 0 && c.Kind == Loss {
			lost = true
		}
	}
	errored = lost || len(s.events) > 0
	if lost {
		return
	}
	if s.tab != nil {
		s.stabSampler.Shot(s.outBuf, r.next)
		if len(s.events) > 0 {
			f := s.stabFrame()
			for w := range s.outBuf {
				s.outBuf[w] ^= f.X[w]
			}
		}
		for q := 0; q < s.w.NSlots; q++ {
			s.keyBuf[q] = '0' + byte(s.outBuf[q>>6]>>uint(q&63)&1)
		}
		return
	}
	var idx int
	if len(s.events) == 0 {
		idx = s.denseSampler.Draw(r.open01())
	} else {
		sort.Slice(s.events, func(i, j int) bool { return s.events[i].pos < s.events[j].pos })
		s.replayDenseState()
		idx = sim.SampleState(s.scratch, r.open01())
	}
	for q := 0; q < s.w.NSlots; q++ {
		s.keyBuf[q] = '0' + byte(idx>>uint(q)&1)
	}
	return
}

// MergeSamples combines shard results from disjoint shot ranges of the same
// sampling job. When the shards tile a contiguous range, the merged histogram
// is bit-for-bit the single-request histogram over that range — per-shot RNG
// streams depend only on (seed, global shot index).
func MergeSamples(parts ...*SampleResult) (*SampleResult, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("noise: nothing to merge")
	}
	sorted := make([]*SampleResult, len(parts))
	copy(sorted, parts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Offset < sorted[j].Offset })
	first := sorted[0]
	out := &SampleResult{
		Offset: first.Offset,
		Seed:   first.Seed,
		Engine: first.Engine,
		NSlots: first.NSlots,
		Counts: make(map[string]int64),
	}
	prevEnd := first.Offset
	for _, p := range sorted {
		if p.Seed != first.Seed || p.Engine != first.Engine || p.NSlots != first.NSlots {
			return nil, fmt.Errorf("noise: shards disagree on (seed, engine, slots): (%d,%s,%d) vs (%d,%s,%d)",
				first.Seed, first.Engine, first.NSlots, p.Seed, p.Engine, p.NSlots)
		}
		if p.Offset < prevEnd {
			return nil, fmt.Errorf("noise: shard ranges overlap at shot %d", p.Offset)
		}
		prevEnd = p.Offset + int64(p.Shots)
		out.Shots += p.Shots
		out.Survived += p.Survived
		out.LostShots += p.LostShots
		out.ErrorShots += p.ErrorShots
		for k, v := range p.Counts {
			out.Counts[k] += v
		}
		if len(out.Counts) > MaxSampleKeys {
			return nil, fmt.Errorf("noise: merged histogram exceeds %d distinct outcomes", MaxSampleKeys)
		}
	}
	out.Distinct = len(out.Counts)
	return out, nil
}
