package noise

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"atomique/internal/circuit"
	"atomique/internal/hardware"
	"atomique/internal/metrics"
	"atomique/internal/stab"
)

// bellWitness is H(0); CX(0,1) — the Bell-pair preparation.
func bellWitness() Witness {
	c := circuit.New(2)
	c.H(0)
	c.CX(0, 1)
	return Witness{NSlots: 2, Gates: c.Gates}
}

// simulate is the test harness shorthand.
func simulate(t *testing.T, mo Model, w Witness, shots int, seed int64) *Estimate {
	t.Helper()
	est, err := Simulate(context.Background(), mo, w, Run{Shots: shots, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return est
}

// TestDepolarizing2QBellPair checks the trajectory average of the two-qubit
// depolarizing channel against its closed form on a Bell pair: a uniform
// non-identity Pauli pair leaves |Phi+> invariant for the three stabilizers
// (XX, YY, ZZ) and maps it to an orthogonal Bell state otherwise, so
//
//	E[F] = (1-p) + p * 3/15 = 1 - 4p/5.
func TestDepolarizing2QBellPair(t *testing.T) {
	const p, shots = 0.3, 200000
	mo := Model{Channels: []Channel{{Label: "2q-gate", Kind: Pauli2Q, Trials: 1, Prob: p}}}
	est := simulate(t, mo, bellWitness(), shots, 5)

	want := 1 - 4*p/5
	if d := math.Abs(est.Fidelity - want); d > 5e-3 {
		t.Errorf("Bell-pair depolarizing fidelity = %v, want %v (analytic), diff %v", est.Fidelity, want, d)
	}
	wantSurvival := 1 - p
	if d := math.Abs(est.Survival - wantSurvival); d > 5e-3 {
		t.Errorf("survival = %v, want %v", est.Survival, wantSurvival)
	}
	if est.Analytic != wantSurvival {
		t.Errorf("Analytic() = %v, want %v", est.Analytic, wantSurvival)
	}
}

// TestDepolarizing1QGroundState checks the one-qubit channel on |0>: X and Y
// flip the state (overlap 0), Z is invisible, so E[F] = (1-p) + p/3.
func TestDepolarizing1QGroundState(t *testing.T) {
	const p, shots = 0.4, 200000
	// Identity-ish witness: a single Z keeps |0> while giving the channel a
	// gate site to attach to.
	c := circuit.New(1)
	c.Add1Q(circuit.OpZ, 0, 0)
	mo := Model{Channels: []Channel{{Label: "1q-gate", Kind: Pauli1Q, Trials: 1, Prob: p}}}
	est := simulate(t, mo, Witness{NSlots: 1, Gates: c.Gates}, shots, 9)

	want := 1 - p + p/3
	if d := math.Abs(est.Fidelity - want); d > 5e-3 {
		t.Errorf("1Q depolarizing fidelity on |0> = %v, want %v, diff %v", est.Fidelity, want, d)
	}
}

// TestLossChannel checks that loss events zero the trajectory: E[F] = 1 - p
// exactly, and every errored shot is a lost shot.
func TestLossChannel(t *testing.T) {
	const p, shots = 0.25, 100000
	mo := Model{Channels: []Channel{{Label: "transfer", Kind: Loss, Trials: 1, Prob: p}}}
	est := simulate(t, mo, bellWitness(), shots, 3)

	if d := math.Abs(est.Fidelity - (1 - p)); d > 5e-3 {
		t.Errorf("loss-channel fidelity = %v, want %v", est.Fidelity, 1-p)
	}
	if est.LostShots != est.ErrorShots {
		t.Errorf("lost %d != errored %d for a loss-only model", est.LostShots, est.ErrorShots)
	}
	if est.Survival != est.Fidelity {
		t.Errorf("survival %v != fidelity %v: lost trajectories must score exactly zero", est.Survival, est.Fidelity)
	}
}

// TestBinomialTrialCounts checks the geometric gap-skipping sampler against
// the binomial expectation over many trials per shot.
func TestBinomialTrialCounts(t *testing.T) {
	const p, trials, shots = 0.01, 500, 50000
	mo := Model{Channels: []Channel{{Label: "2q-gate", Kind: Pauli2Q, Trials: trials, Prob: p}}}
	est := simulate(t, mo, bellWitness(), shots, 17)

	wantEvents := float64(trials) * p * shots
	got := float64(est.Channels[0].Events)
	if d := math.Abs(got-wantEvents) / wantEvents; d > 0.02 {
		t.Errorf("sampled %v events, want ~%v (binomial mean), rel diff %v", got, wantEvents, d)
	}
	wantSurvival := math.Pow(1-p, trials)
	if d := math.Abs(est.Survival - wantSurvival); d > 4*est.SurvivalSigma()+1e-9 {
		t.Errorf("survival %v, want %v +- %v", est.Survival, wantSurvival, 4*est.SurvivalSigma())
	}
}

// TestShotStreamsIndependent guards the i.i.d. premise of the confidence
// intervals: consecutive shots' draw sequences must not be shifted windows
// of one splitmix sequence (the failure mode of seeding shot i at an affine
// offset, where shot i+1's k-th draw equals shot i's (k+1)-th).
func TestShotStreamsIndependent(t *testing.T) {
	for _, seed := range []int64{0, 7} {
		a, b := shotRNG(seed, 1), shotRNG(seed, 2)
		var da, db [12]uint64
		for i := range da {
			da[i], db[i] = a.next(), b.next()
		}
		shifted := 0
		for i := 0; i+1 < len(da); i++ {
			if db[i] == da[i+1] {
				shifted++
			}
		}
		if shifted > 0 {
			t.Errorf("seed %d: %d of %d adjacent-shot draws are window-shifted duplicates", seed, shifted, len(da)-1)
		}
	}
}

// TestDeterministicAcrossWorkerCounts is the cacheability contract: the
// estimate must be bit-identical whatever the parallelism.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	mo := Model{Channels: []Channel{
		{Label: "1q-gate", Kind: Pauli1Q, Trials: 40, Prob: 0.02},
		{Label: "2q-gate", Kind: Pauli2Q, Trials: 30, Prob: 0.03},
		{Label: "move-loss", Kind: Loss, Trials: 1, Prob: 0.05},
		{Label: "move-deco", Kind: Dephase, Trials: 1, Prob: 0.04},
	}}
	w := bellWitness()
	var ref *Estimate
	for _, workers := range []int{1, 2, 7} {
		est, err := Simulate(context.Background(), mo, w, Run{Shots: 5000, Seed: 21, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = est
			continue
		}
		if !reflect.DeepEqual(ref, est) {
			t.Errorf("estimate with %d workers diverges from 1-worker reference:\n%+v\nvs\n%+v", workers, est, ref)
		}
	}
}

// TestBuildReproducesAnalyticTotal: for a metrics record carrying a full
// fidelity breakdown, the derived model's closed form must reproduce
// FidelityTotal (the gate parts divide out exactly).
func TestBuildReproducesAnalyticTotal(t *testing.T) {
	p := hardware.NeutralAtom()
	bd := metrics.Compiled{NQubits: 8, N1Q: 120, N2Q: 90}
	bd.Fidelity.OneQubit = math.Pow(p.Fidelity1Q, 120) * 0.999
	bd.Fidelity.TwoQubit = math.Pow(p.Fidelity2Q, 90) * 0.998
	bd.Fidelity.Transfer = 0.97
	bd.Fidelity.MoveHeating = 0.99
	bd.Fidelity.MoveCooling = 0.995
	bd.Fidelity.MoveLoss = 0.96
	bd.Fidelity.MoveDeco = 0.985

	mo := Build(p, bd)
	want := bd.FidelityTotal()
	if got := mo.Analytic(); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("Analytic() = %v, want FidelityTotal %v", got, want)
	}
}

// TestBuildWithoutBreakdown: a metrics record with no fidelity model (the
// Geyser comparator) yields gate-error channels only.
func TestBuildWithoutBreakdown(t *testing.T) {
	p := hardware.NeutralAtom()
	mo := Build(p, metrics.Compiled{NQubits: 4, N1Q: 10, N2Q: 6})
	if len(mo.Channels) != 2 {
		t.Fatalf("channels = %+v, want exactly the two gate channels", mo.Channels)
	}
	want := math.Pow(p.Fidelity1Q, 10) * math.Pow(p.Fidelity2Q, 6)
	if got := mo.Analytic(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Analytic() = %v, want %v", got, want)
	}
}

// TestOverrides checks the gate-probability override and global scaling
// knobs feed through to the closed form.
func TestOverrides(t *testing.T) {
	base := Model{Channels: []Channel{
		{Label: "1q-gate", Kind: Pauli1Q, Trials: 10, Prob: 0.001},
		{Label: "2q-gate", Kind: Pauli2Q, Trials: 5, Prob: 0.002},
	}}
	over := base.WithGateProbs(0.01, 0.02)
	if over.Channels[0].Prob != 0.01 || over.Channels[1].Prob != 0.02 {
		t.Errorf("override probs = %+v", over.Channels)
	}
	if base.Channels[0].Prob != 0.001 {
		t.Error("override mutated the base model")
	}
	scaled := base.Scaled(10)
	if math.Abs(scaled.Channels[0].Prob-0.01) > 1e-15 || math.Abs(scaled.Channels[1].Prob-0.02) > 1e-15 {
		t.Errorf("scaled probs = %+v", scaled.Channels)
	}
	if got := base.Scaled(0); !reflect.DeepEqual(got, base) {
		t.Error("Scaled(0) must keep the model unchanged")
	}
}

// TestSimulateErrors covers the input contract.
func TestSimulateErrors(t *testing.T) {
	mo := Model{}
	if _, err := Simulate(context.Background(), mo, bellWitness(), Run{Shots: 0}); err == nil {
		t.Error("zero shots accepted")
	}
	// A Clifford (here: gate-free) witness beyond the dense cap dispatches
	// to the stabilizer engine instead of failing.
	if _, err := Simulate(context.Background(), mo, Witness{NSlots: MaxQubits + 1}, Run{Shots: 1}); err != nil {
		t.Errorf("Clifford witness beyond the dense cap rejected: %v", err)
	}
	// A non-Clifford witness has only the dense engine, so its cap applies.
	tGate := []circuit.Gate{{Op: circuit.OpT, Q0: 0, Q1: -1}}
	if _, err := Simulate(context.Background(), mo, Witness{NSlots: MaxQubits + 1, Gates: tGate}, Run{Shots: 1}); err == nil {
		t.Error("overwide non-Clifford witness accepted")
	}
	// Nothing handles witnesses beyond the stabilizer cap.
	if _, err := Simulate(context.Background(), mo, Witness{NSlots: MaxStabQubits + 1}, Run{Shots: 1}); err == nil {
		t.Error("witness beyond the stabilizer cap accepted")
	}
	if _, err := Simulate(context.Background(), mo, bellWitness(), Run{Shots: 1, Engine: "bogus"}); err == nil {
		t.Error("unknown engine accepted")
	}
	if _, err := Simulate(context.Background(), mo, Witness{NSlots: MaxQubits + 1, Gates: nil}, Run{Shots: 1, Engine: EngineDense}); err == nil {
		t.Error("engine=dense accepted an overwide witness")
	}
	var nce *stab.NonCliffordError
	if _, err := Simulate(context.Background(), mo, Witness{NSlots: 2, Gates: tGate}, Run{Shots: 1, Engine: EngineStab}); !errors.As(err, &nce) {
		t.Errorf("engine=stab on a T gate: err = %v, want *stab.NonCliffordError", err)
	}
	bad := Witness{NSlots: 2, Gates: []circuit.Gate{{Op: circuit.OpCX, Q0: 0, Q1: 5}}}
	if _, err := Simulate(context.Background(), mo, bad, Run{Shots: 1}); err == nil {
		t.Error("out-of-range witness gate accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Simulate(ctx, mo, bellWitness(), Run{Shots: 100000}); err == nil {
		t.Error("cancelled context completed")
	}
}

// TestNoiseFreeModel: an empty model survives every shot with fidelity 1.
func TestNoiseFreeModel(t *testing.T) {
	est := simulate(t, Model{}, bellWitness(), 1000, 1)
	if est.Fidelity != 1 || est.Survival != 1 || est.Analytic != 1 {
		t.Errorf("noise-free estimate = %+v, want exact 1s", est)
	}
}
