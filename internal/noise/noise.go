// Package noise is the hardware-derived noise-channel library and
// Monte-Carlo quantum-trajectory engine that empirically validates the
// analytic fidelity model (internal/fidelity). A compilation's execution
// witness (the flat gate stream every backend emits) is replayed under
// sampled error events — depolarizing Pauli noise on Rydberg 2Q gates and 1Q
// gates, dephasing from decoherence during idling and movement, and atom
// loss from trap transfers and accumulated vibrational heating — and the
// trajectory average is compared against the closed-form fidelity the
// compiler reported.
//
// Two estimators come out of a run:
//
//   - Survival: the fraction of trajectories with zero sampled error events.
//     Its expectation is exactly the product of all per-event no-error
//     probabilities — the same aggregation the analytic model performs — so
//     it converges to the analytic fidelity and is the quantity the
//     validation suite asserts against (within binomial confidence bounds).
//   - Fidelity: the mean state overlap |<ideal|trajectory>|^2. Trajectories
//     that suffered an error can still overlap the ideal output (a Z error
//     on a computational-basis qubit is invisible), so Fidelity >= Survival;
//     the gap quantifies how pessimistic the analytic every-error-is-fatal
//     model is for a given circuit.
//
// Channel probabilities are derived from hardware.Params (per-gate
// depolarizing from Fidelity1Q/Fidelity2Q) and from the analytic breakdown's
// movement factors, which carry the zone geometry and heating trace the
// backend accumulated while scheduling (the per-move n_vib trace is not part
// of the public backend result, so movement channels enter at the
// granularity the analytic model aggregated them).
package noise

import (
	"math"

	"atomique/internal/hardware"
	"atomique/internal/metrics"
)

// Kind classifies what an error event does to a trajectory.
type Kind int

// Channel kinds.
const (
	// Pauli1Q applies a uniform non-identity Pauli after a one-qubit gate.
	Pauli1Q Kind = iota
	// Pauli2Q applies a uniform non-identity two-qubit Pauli pair after a
	// two-qubit interaction (the depolarizing Rydberg-gate channel).
	Pauli2Q
	// Dephase applies Z on a uniformly random qubit at a uniformly random
	// point of the stream (decoherence during idling or movement).
	Dephase
	// Loss removes an atom from the register: the trajectory's state is
	// destroyed and the shot scores fidelity zero, matching the analytic
	// model's treatment of transfer and heating loss as fatal.
	Loss
)

// String names the kind for reports.
func (k Kind) String() string {
	switch k {
	case Pauli1Q:
		return "pauli1q"
	case Pauli2Q:
		return "pauli2q"
	case Dephase:
		return "dephase"
	case Loss:
		return "loss"
	}
	return "unknown"
}

// Channel is one independent error source: Trials Bernoulli draws at
// probability Prob per trajectory.
type Channel struct {
	Label  string  `json:"label"`
	Kind   Kind    `json:"-"`
	Trials int     `json:"trials"`
	Prob   float64 `json:"prob"`
}

// Model is the set of independent noise channels a trajectory samples.
type Model struct {
	Channels []Channel
}

// clamp01 bounds a probability-like value to [0, 1].
func clamp01(v float64) float64 {
	switch {
	case v < 0 || math.IsNaN(v):
		return 0
	case v > 1:
		return 1
	}
	return v
}

// Build derives the noise model for one compilation outcome: per-gate
// depolarizing channels from the hardware's gate fidelities (trial counts
// from the metrics record, the same counts the analytic model consumed) and
// — when the backend reported an analytic breakdown — one channel per
// movement/decoherence factor, at the probability that reproduces that
// factor. By construction Model.Analytic() then equals the reported
// FidelityTotal up to float rounding, so trajectory survival validates the
// analytic pipeline end to end. Backends without a fidelity model (Geyser)
// get the gate-error channels only, and Analytic() supplies the missing
// closed-form reference.
func Build(p hardware.Params, m metrics.Compiled) Model {
	var mo Model
	add := func(label string, kind Kind, trials int, prob float64) {
		prob = clamp01(prob)
		if trials > 0 && prob > 0 {
			mo.Channels = append(mo.Channels, Channel{Label: label, Kind: kind, Trials: trials, Prob: prob})
		}
	}
	add("1q-gate", Pauli1Q, m.N1Q, 1-p.Fidelity1Q)
	add("2q-gate", Pauli2Q, m.N2Q, 1-p.Fidelity2Q)
	if m.FidelityTotal() <= 0 {
		return mo
	}
	bd := m.Fidelity
	// The OneQubit/TwoQubit factors mix gate error (handled per gate above)
	// with idle decoherence; dividing the gate part out — computed from the
	// exact counts the analytic model used — leaves the pure dephasing
	// residue.
	add("1q-idle-deco", Dephase, 1, 1-residual(bd.OneQubit, p.Fidelity1Q, m.N1Q))
	add("2q-idle-deco", Dephase, 1, 1-residual(bd.TwoQubit, p.Fidelity2Q, m.N2Q))
	add("transfer", Loss, 1, 1-clamp01(bd.Transfer))
	add("move-heating", Pauli2Q, 1, 1-clamp01(bd.MoveHeating))
	add("move-cooling", Pauli2Q, 1, 1-clamp01(bd.MoveCooling))
	add("move-loss", Loss, 1, 1-clamp01(bd.MoveLoss))
	add("move-deco", Dephase, 1, 1-clamp01(bd.MoveDeco))
	return mo
}

// residual divides the per-gate fidelity contribution f^n out of an analytic
// factor, leaving the decoherence part.
func residual(factor, f float64, n int) float64 {
	gate := math.Pow(f, float64(n))
	if gate <= 0 {
		return clamp01(factor)
	}
	return clamp01(factor / gate)
}

// WithGateProbs overrides the per-gate channel probabilities (<= 0 keeps the
// hardware-derived value). It lets callers probe the model under synthetic
// error rates without fabricating a hardware.Params.
func (mo Model) WithGateProbs(p1, p2 float64) Model {
	out := mo.clone()
	for i := range out.Channels {
		switch {
		case out.Channels[i].Label == "1q-gate" && p1 > 0:
			out.Channels[i].Prob = clamp01(p1)
		case out.Channels[i].Label == "2q-gate" && p2 > 0:
			out.Channels[i].Prob = clamp01(p2)
		}
	}
	return out
}

// Scaled multiplies every channel probability by scale (clamped to [0,1]);
// scale <= 0 keeps the model unchanged. It is the knob behind the service's
// noiseScale option for sensitivity probing.
func (mo Model) Scaled(scale float64) Model {
	if scale <= 0 || scale == 1 {
		return mo
	}
	out := mo.clone()
	for i := range out.Channels {
		out.Channels[i].Prob = clamp01(out.Channels[i].Prob * scale)
	}
	return out
}

func (mo Model) clone() Model {
	out := Model{Channels: make([]Channel, len(mo.Channels))}
	copy(out.Channels, mo.Channels)
	return out
}

// Analytic returns the closed-form no-error probability of the model: the
// product over every channel of (1-p)^trials. For models built from a
// backend's analytic breakdown this reproduces metrics.FidelityTotal(), and
// it is the reference the trajectory Survival estimator converges to.
func (mo Model) Analytic() float64 {
	f := 1.0
	for _, c := range mo.Channels {
		f *= math.Pow(1-c.Prob, float64(c.Trials))
	}
	return f
}
