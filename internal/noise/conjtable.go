package noise

import (
	"sort"

	"atomique/internal/circuit"
	"atomique/internal/stab"
)

// conjTable precomputes, for every error site of a Clifford witness, the
// image of an injected Pauli under conjugation by the remaining gate stream.
// With signs dropped (a Pauli frame never needs them), conjugation is linear
// over GF(2): the frame a shot accumulates is just the XOR of each event's
// precomputed image. That turns the per-shot replay from O(gates) — the full
// stream walked for every errored trajectory — into O(events), with the
// table built once per Simulate/Sample call in a single O(gates·n/64)
// backward sweep and shared read-only across workers.
//
// Layout: gate-attached events (pos = gi+1) resolve through the four
// generator images stored for site gi — C(X_q0), C(Z_q0), C(X_q1), C(Z_q1)
// under the suffix gates[gi+1:]. Events at arbitrary (pos, q) — dephasing
// and the no-sites fallbacks — first hop to the next gate touching q (gates
// in between commute with a Pauli on q), conjugate through that single gate
// bitwise, and then XOR that site's generator images.
type conjTable struct {
	n, nw int
	gates []circuit.Gate
	// imgs holds the packed generator images: site gi, generator k
	// (0 = X_Q0, 1 = Z_Q0, 2 = X_Q1, 3 = Z_Q1) occupies the 2·nw words at
	// offset (gi*4+k)·2·nw — X part then Z part. 1Q sites leave k=2,3 zero.
	imgs []uint64
	// byQubit[q] lists, sorted ascending, the gate indices touching q.
	byQubit [][]int32
}

const (
	genX0 = 0
	genZ0 = 1
	genX1 = 2
	genZ1 = 3
)

func (ct *conjTable) img(site, gen int) (x, z []uint64) {
	off := (site*4 + gen) * 2 * ct.nw
	return ct.imgs[off : off+ct.nw], ct.imgs[off+ct.nw : off+2*ct.nw]
}

// newConjTable builds the table for a validated Clifford witness. The
// backward sweep maintains M, the image of every qubit's X/Z generator under
// the current suffix; processing gate gi snapshots the images of gi's qubits
// (the suffix AFTER gi is what events at gi see) and then folds gi itself
// into M. Only the processed gate's generators change per step, so the sweep
// is O(gates · n/64) words total.
func newConjTable(w Witness) *conjTable {
	n := w.NSlots
	nw := (n + 63) / 64
	ct := &conjTable{
		n: n, nw: nw, gates: w.Gates,
		imgs:    make([]uint64, len(w.Gates)*4*2*nw),
		byQubit: make([][]int32, n),
	}
	for gi, g := range w.Gates {
		ct.byQubit[g.Q0] = append(ct.byQubit[g.Q0], int32(gi))
		if g.IsTwoQubit() {
			ct.byQubit[g.Q1] = append(ct.byQubit[g.Q1], int32(gi))
		}
	}

	// M: generator images under the suffix, initialised to the identity map.
	// Entry q*2+0 is the image of X_q, q*2+1 of Z_q; each is 2·nw words
	// (X part, Z part).
	m := make([]uint64, n*2*2*nw)
	img := func(q, gen int) (x, z []uint64) {
		off := (q*2 + gen) * 2 * nw
		return m[off : off+nw], m[off+nw : off+2*nw]
	}
	for q := 0; q < n; q++ {
		mx, _ := img(q, 0)
		_, mz := img(q, 1)
		mx[q>>6] |= 1 << uint(q&63)
		mz[q>>6] |= 1 << uint(q&63)
	}

	xorInto := func(dst, src []uint64) {
		for i, v := range src {
			dst[i] ^= v
		}
	}
	for gi := len(w.Gates) - 1; gi >= 0; gi-- {
		g := w.Gates[gi]
		// Snapshot the suffix-after-gi images into the site table.
		sx0x, sx0z := ct.img(gi, genX0)
		sz0x, sz0z := ct.img(gi, genZ0)
		mx0x, mx0z := img(g.Q0, 0)
		mz0x, mz0z := img(g.Q0, 1)
		copy(sx0x, mx0x)
		copy(sx0z, mx0z)
		copy(sz0x, mz0x)
		copy(sz0z, mz0z)
		var mx1x, mx1z, mz1x, mz1z []uint64
		if g.IsTwoQubit() {
			sx1x, sx1z := ct.img(gi, genX1)
			sz1x, sz1z := ct.img(gi, genZ1)
			mx1x, mx1z = img(g.Q1, 0)
			mz1x, mz1z = img(g.Q1, 1)
			copy(sx1x, mx1x)
			copy(sx1z, mx1z)
			copy(sz1x, mz1x)
			copy(sz1z, mz1z)
		}
		// Fold gate gi into M: new image of P is suffix(g·P·g†), and g·P·g†
		// (signs dropped) is a GF(2) combination of gi's own generators whose
		// suffix images were just snapshotted. Rules mirror Frame.Conjugate.
		switch g.Op {
		case circuit.OpH:
			copy(mx0x, sz0x)
			copy(mx0z, sz0z)
			copy(mz0x, sx0x)
			copy(mz0z, sx0z)
		case circuit.OpS:
			xorInto(mx0x, sz0x) // X → Y = X·Z
			xorInto(mx0z, sz0z)
		case circuit.OpRZ:
			if cliffordQuarterOdd(g) {
				xorInto(mx0x, sz0x)
				xorInto(mx0z, sz0z)
			}
		case circuit.OpRX:
			if cliffordQuarterOdd(g) {
				xorInto(mz0x, sx0x) // Z → Y = X·Z
				xorInto(mz0z, sx0z)
			}
		case circuit.OpRY, circuit.OpU:
			if cliffordQuarterOdd(g) {
				copy(mx0x, sz0x)
				copy(mx0z, sz0z)
				copy(mz0x, sx0x)
				copy(mz0z, sx0z)
			}
		case circuit.OpCX:
			xorInto(mx0x, mx1x) // X_c → X_c·X_t
			xorInto(mx0z, mx1z)
			xorInto(mz1x, sz0x) // Z_t → Z_c·Z_t
			xorInto(mz1z, sz0z)
		case circuit.OpCZ:
			xorInto(mx0x, mz1x) // X_a → X_a·Z_b
			xorInto(mx0z, mz1z)
			xorInto(mx1x, sz0x) // X_b → X_b·Z_a
			xorInto(mx1z, sz0z)
		case circuit.OpZZ:
			if cliffordQuarterOdd(g) {
				xorInto(mx0x, sz0x) // X_a → X_a·Z_a·Z_b
				xorInto(mx0z, sz0z)
				xorInto(mx0x, mz1x)
				xorInto(mx0z, mz1z)
				xorInto(mx1x, sz0x) // X_b → X_b·Z_a·Z_b
				xorInto(mx1z, sz0z)
				xorInto(mx1x, mz1x)
				xorInto(mx1z, mz1z)
			}
		case circuit.OpSWAP:
			copy(mx0x, mx1x)
			copy(mx0z, mx1z)
			copy(mz0x, mz1x)
			copy(mz0z, mz1z)
			copy(mx1x, sx0x)
			copy(mx1z, sx0z)
			copy(mz1x, sz0x)
			copy(mz1z, sz0z)
		default:
			// Paulis (and even rotations) conjugate any frame trivially.
		}
	}
	return ct
}

// cliffordQuarterOdd reports whether a rotation sits at an odd quarter-turn.
// The witness was validated Clifford before table construction, so a
// non-Clifford angle here is an invariant failure.
func cliffordQuarterOdd(g circuit.Gate) bool {
	k, ok := circuit.CliffordQuarterTurns(g.Param)
	if !ok {
		panic("noise: non-Clifford angle reached the conjugation table")
	}
	return k == 1 || k == 3
}

// accumulate XORs one event's end-of-circuit Pauli image into the frame.
func (ct *conjTable) accumulate(f *stab.Frame, e *event) {
	if e.site >= 0 {
		// Gate-attached: the site's generator images are exactly the
		// conjugation of a Pauli injected right after that gate.
		ct.accumGen(f, e.site, 0, e.pauli&3)
		if e.kind == Pauli2Q {
			ct.accumGen(f, e.site, 1, e.pauli>>2)
		}
		return
	}
	switch e.kind {
	case Pauli2Q:
		ct.accumQubit(f, e.pos, e.q0, e.pauli&3)
		ct.accumQubit(f, e.pos, e.q1, e.pauli>>2)
	default: // Pauli1Q fallback, Dephase
		ct.accumQubit(f, e.pos, e.q0, e.pauli&3)
	}
}

// accumGen XORs the image of Pauli p (1=X, 2=Y, 3=Z) on generator slot
// (0 = the site's Q0, 1 = its Q1) into the frame.
func (ct *conjTable) accumGen(f *stab.Frame, site, slot, p int) {
	if p == 0 {
		return
	}
	if p != 3 { // X or Y
		x, z := ct.img(site, slot*2+0)
		xorPacked(f.X, x)
		xorPacked(f.Z, z)
	}
	if p != 1 { // Z or Y
		x, z := ct.img(site, slot*2+1)
		xorPacked(f.X, x)
		xorPacked(f.Z, z)
	}
}

// accumQubit resolves a Pauli p on qubit q injected after pos gates: gates
// before the next one touching q commute with it, so hop there, conjugate
// through that single gate, and land on its site images. When no later gate
// touches q the Pauli survives to the end unchanged.
func (ct *conjTable) accumQubit(f *stab.Frame, pos, q, p int) {
	if p == 0 {
		return
	}
	sites := ct.byQubit[q]
	k := sort.Search(len(sites), func(i int) bool { return int(sites[i]) >= pos })
	if k == len(sites) {
		if p != 3 {
			f.InjectX(q)
		}
		if p != 1 {
			f.InjectZ(q)
		}
		return
	}
	gi := int(sites[k])
	g := ct.gates[gi]
	var x0, z0, x1, z1 uint64
	bits := func(p int) (x, z uint64) {
		if p != 3 {
			x = 1
		}
		if p != 1 {
			z = 1
		}
		return
	}
	if q == g.Q0 {
		x0, z0 = bits(p)
	} else {
		x1, z1 = bits(p)
	}
	x0, z0, x1, z1 = conjBitsThrough(g, x0, z0, x1, z1)
	for slot, b := range [4]uint64{x0, z0, x1, z1} {
		if b == 1 {
			x, z := ct.img(gi, slot)
			xorPacked(f.X, x)
			xorPacked(f.Z, z)
		}
	}
}

// conjBitsThrough pushes a Pauli on a single gate's qubits through that gate
// (signs dropped) — the scalar twin of Frame.Conjugate.
func conjBitsThrough(g circuit.Gate, x0, z0, x1, z1 uint64) (uint64, uint64, uint64, uint64) {
	switch g.Op {
	case circuit.OpH:
		x0, z0 = z0, x0
	case circuit.OpS:
		z0 ^= x0
	case circuit.OpRZ:
		if cliffordQuarterOdd(g) {
			z0 ^= x0
		}
	case circuit.OpRX:
		if cliffordQuarterOdd(g) {
			x0 ^= z0
		}
	case circuit.OpRY, circuit.OpU:
		if cliffordQuarterOdd(g) {
			x0, z0 = z0, x0
		}
	case circuit.OpCX:
		x1 ^= x0
		z0 ^= z1
	case circuit.OpCZ:
		z0 ^= x1
		z1 ^= x0
	case circuit.OpZZ:
		if cliffordQuarterOdd(g) {
			d := x0 ^ x1
			z0 ^= d
			z1 ^= d
		}
	case circuit.OpSWAP:
		x0, x1 = x1, x0
		z0, z1 = z1, z0
	}
	return x0, z0, x1, z1
}

func xorPacked(dst, src []uint64) {
	for i, v := range src {
		dst[i] ^= v
	}
}
