package noise

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"atomique/internal/circuit"
)

// cliffordWitness returns a seeded random Clifford witness over n slots.
func cliffordWitness(seed int64, n, gates int) Witness {
	rng := rand.New(rand.NewSource(seed))
	angles := []float64{math.Pi / 2, -math.Pi / 2, math.Pi}
	c := circuit.New(n)
	for i := 0; i < gates; i++ {
		switch rng.Intn(6) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.RZ(rng.Intn(n), angles[rng.Intn(3)])
		case 2:
			c.RX(rng.Intn(n), angles[rng.Intn(3)])
		case 3, 4:
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			c.CX(a, b)
		case 5:
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			c.ZZ(a, b, angles[rng.Intn(3)])
		}
	}
	return Witness{NSlots: n, Gates: c.Gates}
}

// testModel is a three-channel model with gate-attached and idle errors.
func testModel(oneQ, twoQ int) Model {
	return Model{Channels: []Channel{
		{Label: "1q-gate", Kind: Pauli1Q, Trials: oneQ, Prob: 2e-3},
		{Label: "2q-gate", Kind: Pauli2Q, Trials: twoQ, Prob: 8e-3},
		{Label: "decoherence", Kind: Dephase, Trials: oneQ + twoQ, Prob: 1e-3},
	}}
}

// TestEngineAgreementOnClifford is the dense-vs-stabilizer cross-check at
// trajectory level: both engines consume the identical random stream, and on
// a Clifford witness every per-shot overlap is exactly 0 or 1 in both, so
// the whole estimate must agree — survival and event tallies exactly,
// fidelity to float tolerance.
func TestEngineAgreementOnClifford(t *testing.T) {
	w := cliffordWitness(31, 12, 80)
	mo := testModel(w.NSlots, 40)
	const shots = 20000
	run := func(engine string) *Estimate {
		est, err := Simulate(context.Background(), mo, w, Run{Shots: shots, Seed: 77, Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	dense := run(EngineDense)
	stab := run(EngineStab)
	if dense.Engine != EngineDense || stab.Engine != EngineStab {
		t.Fatalf("engines recorded as %q / %q", dense.Engine, stab.Engine)
	}
	if dense.Survival != stab.Survival {
		t.Errorf("survival diverges: dense %v vs stab %v", dense.Survival, stab.Survival)
	}
	if dense.LostShots != stab.LostShots || dense.ErrorShots != stab.ErrorShots {
		t.Errorf("shot tallies diverge: dense %d/%d vs stab %d/%d",
			dense.LostShots, dense.ErrorShots, stab.LostShots, stab.ErrorShots)
	}
	for i := range dense.Channels {
		if dense.Channels[i].Events != stab.Channels[i].Events {
			t.Errorf("channel %s events diverge: %d vs %d",
				dense.Channels[i].Label, dense.Channels[i].Events, stab.Channels[i].Events)
		}
	}
	if d := math.Abs(dense.Fidelity - stab.Fidelity); d > 1e-9 {
		t.Errorf("fidelity diverges by %v: dense %v vs stab %v", d, dense.Fidelity, stab.Fidelity)
	}
}

// TestAutoDispatch checks ResolveEngine end to end: Clifford witnesses land
// on the tableau engine, anything else on the dense fallback.
func TestAutoDispatch(t *testing.T) {
	mo := testModel(4, 4)
	cw := cliffordWitness(5, 4, 20)
	est, err := Simulate(context.Background(), mo, cw, Run{Shots: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if est.Engine != EngineStab {
		t.Errorf("Clifford witness ran on %q, want %q", est.Engine, EngineStab)
	}

	c := circuit.New(4)
	c.H(0)
	c.RZ(1, 0.3) // non-Clifford angle
	nw := Witness{NSlots: 4, Gates: c.Gates}
	est, err = Simulate(context.Background(), mo, nw, Run{Shots: 100, Seed: 1, Engine: EngineAuto})
	if err != nil {
		t.Fatal(err)
	}
	if est.Engine != EngineDense {
		t.Errorf("non-Clifford witness ran on %q, want %q", est.Engine, EngineDense)
	}
}

// TestWideCliffordTrajectory runs the stabilizer engine far beyond the dense
// wall — a 256-qubit GHZ witness — and validates the estimator against the
// model's closed form, exactly like the regress-corpus validation does at
// small widths.
func TestWideCliffordTrajectory(t *testing.T) {
	const n, shots = 256, 3000
	c := circuit.New(n)
	c.H(0)
	for q := 1; q < n; q++ {
		c.CX(q-1, q)
	}
	w := Witness{NSlots: n, Gates: c.Gates}
	mo := Model{Channels: []Channel{
		{Label: "1q-gate", Kind: Pauli1Q, Trials: 1, Prob: 1e-3},
		{Label: "2q-gate", Kind: Pauli2Q, Trials: n - 1, Prob: 2e-4},
		{Label: "loss", Kind: Loss, Trials: n, Prob: 5e-5},
	}}
	est, err := Simulate(context.Background(), mo, w, Run{Shots: shots, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if est.Engine != EngineStab {
		t.Fatalf("wide Clifford witness ran on %q, want %q", est.Engine, EngineStab)
	}
	if d := math.Abs(est.Survival - est.Analytic); d > 4*est.SurvivalSigma()+1e-9 {
		t.Errorf("survival %v vs analytic %v: off by %v (> 4σ)", est.Survival, est.Analytic, d)
	}
	if est.Fidelity < est.Survival {
		t.Errorf("fidelity %v < survival %v", est.Fidelity, est.Survival)
	}
	if est.CILow > est.Fidelity || est.CIHigh < est.Fidelity {
		t.Errorf("CI [%v,%v] does not bracket fidelity %v", est.CILow, est.CIHigh, est.Fidelity)
	}
}

// TestStabDeterministicAcrossWorkerCounts extends the determinism contract
// to the stabilizer engine: identical estimates whatever the parallelism.
func TestStabDeterministicAcrossWorkerCounts(t *testing.T) {
	w := cliffordWitness(19, 48, 300)
	mo := testModel(150, 150)
	var first *Estimate
	for _, workers := range []int{1, 3, 8} {
		est, err := Simulate(context.Background(), mo, w, Run{Shots: 5000, Seed: 21, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if est.Engine != EngineStab {
			t.Fatalf("engine %q, want stab", est.Engine)
		}
		if first == nil {
			first = est
			continue
		}
		if !estimatesEqual(est, first) {
			t.Errorf("workers=%d: estimate diverges", workers)
		}
	}
}

// estimatesEqual compares everything but the channel slice identity.
func estimatesEqual(a, b *Estimate) bool {
	if a.Shots != b.Shots || a.Seed != b.Seed || a.Engine != b.Engine ||
		a.Fidelity != b.Fidelity || a.StdErr != b.StdErr ||
		a.Survival != b.Survival || a.LostShots != b.LostShots ||
		a.ErrorShots != b.ErrorShots || len(a.Channels) != len(b.Channels) {
		return false
	}
	for i := range a.Channels {
		if a.Channels[i] != b.Channels[i] {
			return false
		}
	}
	return true
}
