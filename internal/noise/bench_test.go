package noise_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"atomique/internal/bench"
	"atomique/internal/compiler"
	"atomique/internal/hardware"
	"atomique/internal/noise"

	_ "atomique/internal/compiler/backends" // register the built-in backends
)

// BenchmarkNoisyShots measures trajectory throughput over a compiled
// witness at increasing worker counts — the shot loop is embarrassingly
// parallel, so shots/s should scale with GOMAXPROCS until memory bandwidth
// saturates. CI runs it as a smoke test (-benchtime=1x).
func BenchmarkNoisyShots(b *testing.B) {
	be, ok := compiler.Lookup("atomique")
	if !ok {
		b.Fatal("atomique backend not registered")
	}
	circ := bench.QAOARegular(12, 3, 15)
	res, err := be.Compile(context.Background(), compiler.Target{}, circ, compiler.Options{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	model := noise.Build(hardware.NeutralAtom(), res.Metrics)
	w := noise.Witness{NSlots: res.Program.NSlots, Gates: res.Program.Gates}

	const shots = 16384
	maxWorkers := runtime.GOMAXPROCS(0)
	for workers := 1; ; workers *= 2 {
		if workers > maxWorkers {
			workers = maxWorkers
		}
		workers := workers
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				est, err := noise.Simulate(context.Background(), model, w,
					noise.Run{Shots: shots, Seed: int64(i), Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if est.Analytic <= 0 {
					b.Fatal("degenerate model")
				}
			}
			b.ReportMetric(float64(shots*b.N)/b.Elapsed().Seconds(), "shots/s")
		})
		if workers == maxWorkers {
			break
		}
	}
}
