package noise_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"atomique/internal/bench"
	"atomique/internal/compiler"
	"atomique/internal/hardware"
	"atomique/internal/noise"

	_ "atomique/internal/compiler/backends" // register the built-in backends
)

// BenchmarkNoisyShots measures trajectory throughput over a compiled
// witness at increasing worker counts — the shot loop is embarrassingly
// parallel, so shots/s should scale with GOMAXPROCS until memory bandwidth
// saturates. CI runs it as a smoke test (-benchtime=1x).
func BenchmarkNoisyShots(b *testing.B) {
	be, ok := compiler.Lookup("atomique")
	if !ok {
		b.Fatal("atomique backend not registered")
	}
	circ := bench.QAOARegular(12, 3, 15)
	res, err := be.Compile(context.Background(), compiler.Target{}, circ, compiler.Options{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	model := noise.Build(hardware.NeutralAtom(), res.Metrics)
	w := noise.Witness{NSlots: res.Program.NSlots, Gates: res.Program.Gates}

	const shots = 16384
	maxWorkers := runtime.GOMAXPROCS(0)
	for workers := 1; ; workers *= 2 {
		if workers > maxWorkers {
			workers = maxWorkers
		}
		workers := workers
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				est, err := noise.Simulate(context.Background(), model, w,
					noise.Run{Shots: shots, Seed: int64(i), Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if est.Analytic <= 0 {
					b.Fatal("degenerate model")
				}
			}
			b.ReportMetric(float64(shots*b.N)/b.Elapsed().Seconds(), "shots/s")
		})
		if workers == maxWorkers {
			break
		}
	}
}

// BenchmarkStabTrajectory measures Pauli-frame trajectory throughput on the
// stabilizer engine at a width (128 qubits) the dense engine cannot touch.
// A GHZ chain keeps the witness Clifford while exercising the full frame
// conjugation sweep; the model mirrors the neutral-atom channel mix. CI runs
// it as a smoke test (-benchtime=1x).
func BenchmarkStabTrajectory(b *testing.B) {
	const n = 128
	circ := bench.GHZ(n)
	w := noise.Witness{NSlots: n, Gates: circ.Gates}
	model := noise.Model{Channels: []noise.Channel{
		{Label: "1q-gate", Kind: noise.Pauli1Q, Trials: 1, Prob: 2e-3},
		{Label: "2q-gate", Kind: noise.Pauli2Q, Trials: n - 1, Prob: 5e-3},
		{Label: "decoherence", Kind: noise.Dephase, Trials: n, Prob: 1e-3},
		{Label: "transfer", Kind: noise.Loss, Trials: n, Prob: 2e-4},
	}}

	const shots = 16384
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		est, err := noise.Simulate(context.Background(), model, w,
			noise.Run{Shots: shots, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if est.Engine != noise.EngineStab {
			b.Fatalf("engine %q, want stab", est.Engine)
		}
	}
	b.ReportMetric(float64(shots*b.N)/b.Elapsed().Seconds(), "shots/s")
}

// BenchmarkSample measures measurement-sampling throughput (the /v1/sample
// hot path) on both engines: the dense CDF sampler over a 12-qubit QAOA
// witness and the stabilizer affine-subspace sampler over a 128-qubit GHZ
// witness. CI runs it as a smoke test (-benchtime=1x); BENCH_NNNN.json
// records the same workloads via cmd/experiments -bench-record.
func BenchmarkSample(b *testing.B) {
	const shots = 16384
	run := func(b *testing.B, model noise.Model, w noise.Witness, engine string) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sr, err := noise.Sample(context.Background(), model, w,
				noise.SampleRun{Shots: shots, Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			if sr.Engine != engine {
				b.Fatalf("engine %q, want %s", sr.Engine, engine)
			}
		}
		b.ReportMetric(float64(shots*b.N)/b.Elapsed().Seconds(), "shots/s")
	}

	b.Run("dense-qaoa-12", func(b *testing.B) {
		be, ok := compiler.Lookup("atomique")
		if !ok {
			b.Fatal("atomique backend not registered")
		}
		circ := bench.QAOARegular(12, 3, 15)
		res, err := be.Compile(context.Background(), compiler.Target{}, circ, compiler.Options{Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		model := noise.Build(hardware.NeutralAtom(), res.Metrics)
		w := noise.Witness{NSlots: res.Program.NSlots, Gates: res.Program.Gates}
		run(b, model, w, noise.EngineDense)
	})

	b.Run("stab-ghz-128", func(b *testing.B) {
		const n = 128
		circ := bench.GHZ(n)
		w := noise.Witness{NSlots: n, Gates: circ.Gates}
		model := noise.Model{Channels: []noise.Channel{
			{Label: "1q-gate", Kind: noise.Pauli1Q, Trials: 1, Prob: 2e-3},
			{Label: "2q-gate", Kind: noise.Pauli2Q, Trials: n - 1, Prob: 5e-3},
			{Label: "decoherence", Kind: noise.Dephase, Trials: n, Prob: 1e-3},
			{Label: "transfer", Kind: noise.Loss, Trials: n, Prob: 2e-4},
		}}
		run(b, model, w, noise.EngineStab)
	})
}
