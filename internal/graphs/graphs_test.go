package graphs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"atomique/internal/circuit"
)

func TestWeightedBasics(t *testing.T) {
	g := NewWeighted(3)
	g.AddWeight(0, 1, 2)
	g.AddWeight(1, 2, 1)
	if g.TotalWeight() != 3 {
		t.Errorf("TotalWeight = %v, want 3", g.TotalWeight())
	}
	if g.VertexWeight(1) != 3 {
		t.Errorf("VertexWeight(1) = %v, want 3", g.VertexWeight(1))
	}
	if g.W[1][0] != 2 || g.W[0][1] != 2 {
		t.Errorf("weights not symmetric")
	}
}

func TestGateFrequencyDecay(t *testing.T) {
	c := circuit.New(4)
	c.CX(0, 1) // layer 0: weight 1
	c.CX(0, 1) // layer 1: weight gamma
	c.CX(2, 3) // layer 0: weight 1
	g := GateFrequency(c, 0.5)
	if got := g.W[0][1]; got != 1.5 {
		t.Errorf("W[0][1] = %v, want 1.5", got)
	}
	if got := g.W[2][3]; got != 1.0 {
		t.Errorf("W[2][3] = %v, want 1.0", got)
	}
}

func TestMaxKCutSeparatesHeavyEdge(t *testing.T) {
	// Two cliques joined by one heavy edge: the heavy edge should be cut.
	g := NewWeighted(4)
	g.AddWeight(0, 1, 10)
	g.AddWeight(2, 3, 10)
	g.AddWeight(0, 2, 0.1)
	part := MaxKCutGreedy(g, 2, nil)
	if part[0] == part[1] {
		t.Errorf("heavy edge (0,1) not cut: parts %v", part)
	}
	if part[2] == part[3] {
		t.Errorf("heavy edge (2,3) not cut: parts %v", part)
	}
}

func TestMaxKCutRespectsCapacity(t *testing.T) {
	g := NewWeighted(6)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			g.AddWeight(i, j, 1)
		}
	}
	part := MaxKCutGreedy(g, 3, []int{2, 2, 2})
	counts := map[int]int{}
	for _, p := range part {
		counts[p]++
	}
	for p, n := range counts {
		if n > 2 {
			t.Errorf("part %d has %d vertices, cap 2", p, n)
		}
	}
}

func TestMaxKCutPanics(t *testing.T) {
	g := NewWeighted(3)
	mustPanic(t, func() { MaxKCutGreedy(g, 0, nil) })
	// Three vertices, two parts of capacity one: placement must run out.
	mustPanic(t, func() { MaxKCutGreedy(g, 2, []int{1, 1}) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	f()
}

// Property: greedy MAX k-cut achieves at least (1 - 1/k) of total weight on
// random graphs — the approximation bound the paper cites.
func TestMaxKCutApproximationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		k := 2 + rng.Intn(3)
		g := NewWeighted(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.5 {
					g.AddWeight(i, j, rng.Float64())
				}
			}
		}
		part := MaxKCutGreedy(g, k, nil)
		total := g.TotalWeight()
		if total == 0 {
			return true
		}
		return CutWeight(g, part) >= (1-1/float64(k))*total-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestRandomGraphDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	edges := RandomGraph(40, 0.5, rng)
	max := 40 * 39 / 2
	if len(edges) < max/3 || len(edges) > 2*max/3 {
		t.Errorf("G(40,0.5) edge count %d implausible (max %d)", len(edges), max)
	}
	for _, e := range edges {
		if e.A >= e.B {
			t.Fatalf("edge not ordered: %v", e)
		}
	}
}

func TestRegularGraphDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct{ n, d int }{{10, 3}, {20, 4}, {40, 5}, {100, 6}} {
		edges := RegularGraph(tc.n, tc.d, rng)
		deg := make([]int, tc.n)
		seen := map[Edge]bool{}
		for _, e := range edges {
			deg[e.A]++
			deg[e.B]++
			if seen[e] {
				t.Fatalf("duplicate edge %v in %d-regular graph", e, tc.d)
			}
			seen[e] = true
		}
		for v, dg := range deg {
			if dg != tc.d {
				t.Fatalf("vertex %d degree %d, want %d (n=%d)", v, dg, tc.d, tc.n)
			}
		}
	}
}

func TestRegularGraphPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mustPanic(t, func() { RegularGraph(5, 3, rng) }) // odd n*d
	mustPanic(t, func() { RegularGraph(4, 4, rng) }) // d >= n
}
