package graphs

import "fmt"

// Coupling is a hardware coupling graph: physical qubits are vertices and an
// edge permits a native two-qubit gate. Distances are all-pairs shortest
// paths (BFS), the cost metric SABRE minimises.
type Coupling struct {
	N    int
	adj  [][]int
	dist [][]int16
}

// NewCoupling builds a coupling graph from an undirected edge list.
func NewCoupling(n int, edges []Edge) *Coupling {
	c := &Coupling{N: n, adj: make([][]int, n)}
	seen := make(map[Edge]bool)
	for _, e := range edges {
		a, b := e.A, e.B
		if a > b {
			a, b = b, a
		}
		if a < 0 || b >= n || a == b {
			panic(fmt.Sprintf("graphs: bad coupling edge (%d,%d) for n=%d", e.A, e.B, n))
		}
		if seen[Edge{a, b}] {
			continue
		}
		seen[Edge{a, b}] = true
		c.adj[a] = append(c.adj[a], b)
		c.adj[b] = append(c.adj[b], a)
	}
	c.computeDistances()
	return c
}

func (c *Coupling) computeDistances() {
	c.dist = make([][]int16, c.N)
	for s := 0; s < c.N; s++ {
		d := make([]int16, c.N)
		for i := range d {
			d[i] = -1
		}
		d[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range c.adj[v] {
				if d[u] < 0 {
					d[u] = d[v] + 1
					queue = append(queue, u)
				}
			}
		}
		c.dist[s] = d
	}
}

// Neighbors returns the qubits adjacent to v. Callers must not mutate it.
func (c *Coupling) Neighbors(v int) []int { return c.adj[v] }

// Adjacent reports whether a native two-qubit gate exists between a and b.
func (c *Coupling) Adjacent(a, b int) bool {
	for _, u := range c.adj[a] {
		if u == b {
			return true
		}
	}
	return false
}

// Distance returns the hop distance between a and b, or -1 if disconnected.
func (c *Coupling) Distance(a, b int) int { return int(c.dist[a][b]) }

// NumEdges returns the undirected edge count.
func (c *Coupling) NumEdges() int {
	t := 0
	for _, a := range c.adj {
		t += len(a)
	}
	return t / 2
}

// Grid returns a rows x cols rectangular nearest-neighbour lattice
// (the FAA-Rectangular baseline topology).
func Grid(rows, cols int) *Coupling {
	var edges []Edge
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, Edge{id(r, c), id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, Edge{id(r, c), id(r+1, c)})
			}
		}
	}
	return NewCoupling(rows*cols, edges)
}

// Triangular returns a rows x cols triangular lattice: the rectangular grid
// plus one diagonal per cell, giving interior vertices degree 6 (the
// FAA-Triangular baseline of Geyser).
func Triangular(rows, cols int) *Coupling {
	var edges []Edge
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, Edge{id(r, c), id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, Edge{id(r, c), id(r+1, c)})
			}
			if r+1 < rows && c+1 < cols {
				// Alternate diagonal direction per row to approximate the
				// triangular tiling.
				if r%2 == 0 {
					edges = append(edges, Edge{id(r, c), id(r+1, c+1)})
				} else {
					edges = append(edges, Edge{id(r, c+1), id(r+1, c)})
				}
			}
		}
	}
	return NewCoupling(rows*cols, edges)
}

// LongRange returns a rows x cols grid where any two atoms within Euclidean
// distance maxRange (in lattice units) are coupled. With the Baker et al.
// setting — site spacing 2.5 r_b and interaction reach 4 r_b, i.e. maxRange
// 1.6 — this couples rook and diagonal neighbours (degree 8 interior).
func LongRange(rows, cols int, maxRange float64) *Coupling {
	var edges []Edge
	id := func(r, c int) int { return r*cols + c }
	reach := int(maxRange) + 1
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			for dr := 0; dr <= reach; dr++ {
				for dc := -reach; dc <= reach; dc++ {
					if dr == 0 && dc <= 0 {
						continue
					}
					r2, c2 := r+dr, c+dc
					if r2 < 0 || r2 >= rows || c2 < 0 || c2 >= cols {
						continue
					}
					if float64(dr*dr+dc*dc) <= maxRange*maxRange {
						edges = append(edges, Edge{id(r, c), id(r2, c2)})
					}
				}
			}
		}
	}
	return NewCoupling(rows*cols, edges)
}

// HeavyHex returns an IBM-style heavy-hex coupling graph with at least n
// qubits, truncated to exactly n. The construction follows the Eagle layout:
// long horizontal rows of qubits joined by vertical bridge qubits every four
// columns, with the bridge phase alternating between row pairs. HeavyHex(127)
// is the stand-in for ibm_washington.
func HeavyHex(n int) *Coupling {
	// Choose enough rows of width w to cover n.
	const w = 15 // row width
	rows := 1
	for count := w; count < n; rows++ {
		count += 4 + w // bridges + next row (approximate)
	}
	type node struct{ r, c int } // c == -1 means bridge below row r at col b
	ids := make(map[[3]int]int)  // key: {kind(0 row,1 bridge), r, c}
	var edges []Edge
	next := 0
	getRow := func(r, c int) int {
		k := [3]int{0, r, c}
		if v, ok := ids[k]; ok {
			return v
		}
		ids[k] = next
		next++
		return ids[k]
	}
	getBridge := func(r, c int) int {
		k := [3]int{1, r, c}
		if v, ok := ids[k]; ok {
			return v
		}
		ids[k] = next
		next++
		return ids[k]
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < w; c++ {
			getRow(r, c)
			if c > 0 {
				edges = append(edges, Edge{getRow(r, c-1), getRow(r, c)})
			}
		}
		if r > 0 {
			// Bridges between row r-1 and row r, phase alternates.
			phase := 0
			if r%2 == 0 {
				phase = 2
			}
			for c := phase; c < w; c += 4 {
				b := getBridge(r-1, c)
				edges = append(edges, Edge{getRow(r-1, c), b})
				edges = append(edges, Edge{b, getRow(r, c)})
			}
		}
	}
	total := next
	if total < n {
		panic(fmt.Sprintf("graphs: HeavyHex construction too small (%d < %d)", total, n))
	}
	// Truncate: keep vertices < n, drop edges touching removed vertices.
	var kept []Edge
	for _, e := range edges {
		if e.A < n && e.B < n {
			kept = append(kept, e)
		}
	}
	return NewCoupling(n, kept)
}

// CompleteMultipartite returns the complete multipartite coupling graph over
// parts of the given sizes: vertices in different parts are coupled, vertices
// within a part are not. This is Atomique's abstract RAA coupling model —
// part 0 is the SLM array, parts 1..m the AOD arrays.
func CompleteMultipartite(sizes []int) *Coupling {
	n := 0
	starts := make([]int, len(sizes))
	for i, s := range sizes {
		starts[i] = n
		n += s
	}
	var edges []Edge
	for i := 0; i < len(sizes); i++ {
		for j := i + 1; j < len(sizes); j++ {
			for a := starts[i]; a < starts[i]+sizes[i]; a++ {
				for b := starts[j]; b < starts[j]+sizes[j]; b++ {
					edges = append(edges, Edge{a, b})
				}
			}
		}
	}
	return NewCoupling(n, edges)
}
