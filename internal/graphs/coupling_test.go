package graphs

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGridTopology(t *testing.T) {
	g := Grid(3, 4)
	if g.N != 12 {
		t.Fatalf("N = %d, want 12", g.N)
	}
	// Interior vertex (1,1) = 5 has degree 4.
	if d := len(g.Neighbors(5)); d != 4 {
		t.Errorf("interior degree = %d, want 4", d)
	}
	// Corner 0 has degree 2.
	if d := len(g.Neighbors(0)); d != 2 {
		t.Errorf("corner degree = %d, want 2", d)
	}
	// Manhattan distance (0,0) -> (2,3) = 5.
	if d := g.Distance(0, 11); d != 5 {
		t.Errorf("Distance(0,11) = %d, want 5", d)
	}
	if !g.Adjacent(0, 1) || g.Adjacent(0, 5) {
		t.Errorf("adjacency wrong")
	}
}

func TestTriangularHasMoreEdges(t *testing.T) {
	rect := Grid(5, 5)
	tri := Triangular(5, 5)
	if tri.NumEdges() <= rect.NumEdges() {
		t.Errorf("triangular edges %d <= rect %d", tri.NumEdges(), rect.NumEdges())
	}
	// Distances can only shrink.
	for a := 0; a < 25; a++ {
		for b := 0; b < 25; b++ {
			if tri.Distance(a, b) > rect.Distance(a, b) {
				t.Fatalf("triangular distance (%d,%d) grew", a, b)
			}
		}
	}
}

func TestLongRangeCouplesDiagonals(t *testing.T) {
	lr := LongRange(4, 4, 1.6)
	// (0,0)=0 and (1,1)=5: distance sqrt(2) <= 1.6, coupled.
	if !lr.Adjacent(0, 5) {
		t.Errorf("diagonal not coupled at range 1.6")
	}
	// (0,0) and (0,2): distance 2 > 1.6, not coupled.
	if lr.Adjacent(0, 2) {
		t.Errorf("distance-2 coupled at range 1.6")
	}
	if lr.NumEdges() <= Grid(4, 4).NumEdges() {
		t.Errorf("long-range should strictly add edges")
	}
}

func TestHeavyHex(t *testing.T) {
	g := HeavyHex(127)
	if g.N != 127 {
		t.Fatalf("N = %d, want 127", g.N)
	}
	// Heavy-hex max degree is 3.
	maxDeg := 0
	for v := 0; v < g.N; v++ {
		if d := len(g.Neighbors(v)); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg > 3 {
		t.Errorf("heavy-hex max degree = %d, want <= 3", maxDeg)
	}
	// Must be connected.
	for v := 1; v < g.N; v++ {
		if g.Distance(0, v) < 0 {
			t.Fatalf("heavy-hex disconnected at %d", v)
		}
	}
	// Sparse: edges close to N (heavy-hex has ~1.15 edges per vertex).
	if g.NumEdges() > 2*g.N {
		t.Errorf("heavy-hex too dense: %d edges", g.NumEdges())
	}
}

func TestCompleteMultipartite(t *testing.T) {
	g := CompleteMultipartite([]int{2, 2, 2})
	if g.N != 6 {
		t.Fatalf("N = %d", g.N)
	}
	// Intra-part pairs are not adjacent; cross-part are.
	if g.Adjacent(0, 1) || g.Adjacent(2, 3) || g.Adjacent(4, 5) {
		t.Errorf("intra-part adjacency present")
	}
	if !g.Adjacent(0, 2) || !g.Adjacent(0, 4) || !g.Adjacent(3, 5) {
		t.Errorf("cross-part adjacency missing")
	}
	// All cross distances are 1, intra distances are 2.
	if g.Distance(0, 1) != 2 {
		t.Errorf("intra distance = %d, want 2", g.Distance(0, 1))
	}
	if g.NumEdges() != 12 {
		t.Errorf("edges = %d, want 12", g.NumEdges())
	}
}

func TestNewCouplingDeduplicatesAndValidates(t *testing.T) {
	g := NewCoupling(3, []Edge{{0, 1}, {1, 0}, {1, 2}})
	if g.NumEdges() != 2 {
		t.Errorf("edges = %d, want 2 (dedup)", g.NumEdges())
	}
	mustPanic(t, func() { NewCoupling(2, []Edge{{0, 2}}) })
	mustPanic(t, func() { NewCoupling(2, []Edge{{1, 1}}) })
}

// Property: BFS distances satisfy the triangle inequality and symmetry on
// random connected graphs.
func TestDistanceMetricProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		// Random spanning tree + extra edges for connectivity.
		var edges []Edge
		for v := 1; v < n; v++ {
			edges = append(edges, Edge{rng.Intn(v), v})
		}
		for i := 0; i < n; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				if a > b {
					a, b = b, a
				}
				edges = append(edges, Edge{a, b})
			}
		}
		g := NewCoupling(n, edges)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if g.Distance(a, b) != g.Distance(b, a) {
					return false
				}
				for c := 0; c < n; c++ {
					if g.Distance(a, c) > g.Distance(a, b)+g.Distance(b, c) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
