// Package graphs provides the graph machinery the compilers share: the
// weighted gate-frequency graph and the greedy MAX k-cut of Atomique's
// qubit-array mapper (Alg. 1), coupling graphs with all-pairs shortest-path
// distances for SABRE routing, builders for the baseline hardware topologies
// (heavy-hex, rectangular, triangular, long-range, complete multipartite),
// and random / regular interaction-graph generators for the QAOA benchmarks.
package graphs

import (
	"math"
	"math/rand"

	"atomique/internal/circuit"
)

// Weighted is a symmetric edge-weighted graph on n vertices stored densely;
// it is the gate-frequency graph of Atomique's qubit-array mapper.
type Weighted struct {
	N int
	W [][]float64
}

// NewWeighted returns an n-vertex graph with zero weights.
func NewWeighted(n int) *Weighted {
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	return &Weighted{N: n, W: w}
}

// AddWeight adds weight dw to the undirected edge (a,b).
func (g *Weighted) AddWeight(a, b int, dw float64) {
	g.W[a][b] += dw
	g.W[b][a] += dw
}

// TotalWeight returns the sum of all edge weights (each edge once).
func (g *Weighted) TotalWeight() float64 {
	t := 0.0
	for i := 0; i < g.N; i++ {
		for j := i + 1; j < g.N; j++ {
			t += g.W[i][j]
		}
	}
	return t
}

// VertexWeight returns the total weight incident on vertex v.
func (g *Weighted) VertexWeight(v int) float64 {
	t := 0.0
	for j := 0; j < g.N; j++ {
		t += g.W[v][j]
	}
	return t
}

// GateFrequency builds the gate-frequency graph of a circuit: each two-qubit
// gate contributes gamma^layer to its qubit-pair edge, where layer is the
// gate's ASAP layer. gamma in (0,1] decays the influence of later gates, as
// the paper prescribes (later gates benefit less from the initial mapping).
func GateFrequency(c *circuit.Circuit, gamma float64) *Weighted {
	g := NewWeighted(c.N)
	layerOf, _ := c.Layers()
	for i, gt := range c.Gates {
		if gt.IsTwoQubit() {
			g.AddWeight(gt.Q0, gt.Q1, math.Pow(gamma, float64(layerOf[i])))
		}
	}
	return g
}

// MaxKCutGreedy partitions the vertices of g into k parts with the greedy
// 1-1/k approximation used by Alg. 1: vertices are assigned one at a time
// (in descending order of incident weight, which dominates the paper's
// index-order variant) to the part that maximises the cut against already
// assigned vertices, subject to per-part capacities (capacity <= 0 means
// unbounded). Returns the part index per vertex.
func MaxKCutGreedy(g *Weighted, k int, capacity []int) []int {
	if k <= 0 {
		panic("graphs: MaxKCutGreedy requires k >= 1")
	}
	part := make([]int, g.N)
	for i := range part {
		part[i] = -1
	}
	order := make([]int, g.N)
	for i := range order {
		order[i] = i
	}
	// Descending incident weight; ties by index for determinism.
	weights := make([]float64, g.N)
	for i := range weights {
		weights[i] = g.VertexWeight(i)
	}
	sortByWeightDesc(order, weights)

	size := make([]int, k)
	for _, v := range order {
		best, bestCut := -1, math.Inf(-1)
		for j := 0; j < k; j++ {
			if capacity != nil && capacity[j] > 0 && size[j] >= capacity[j] {
				continue
			}
			// Cut gained by placing v in j = weight to vertices NOT in j
			// (unassigned vertices contribute equally, so this reduces to
			// total minus weight into part j).
			intoJ := 0.0
			for u := 0; u < g.N; u++ {
				if part[u] == j {
					intoJ += g.W[v][u]
				}
			}
			cut := weights[v] - intoJ
			// Light tie-break toward balanced parts so unconstrained circuits
			// still spread across arrays.
			cut -= 1e-9 * float64(size[j])
			if cut > bestCut {
				bestCut, best = cut, j
			}
		}
		if best < 0 {
			panic("graphs: MaxKCutGreedy ran out of capacity")
		}
		part[v] = best
		size[best]++
	}
	return part
}

// CutWeight returns the total weight of edges crossing parts.
func CutWeight(g *Weighted, part []int) float64 {
	t := 0.0
	for i := 0; i < g.N; i++ {
		for j := i + 1; j < g.N; j++ {
			if part[i] != part[j] {
				t += g.W[i][j]
			}
		}
	}
	return t
}

func sortByWeightDesc(order []int, w []float64) {
	// Insertion-free: simple stable sort via sort.SliceStable equivalent,
	// hand-rolled to keep determinism obvious.
	for i := 1; i < len(order); i++ {
		v := order[i]
		j := i - 1
		for j >= 0 && less(v, order[j], w) {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = v
	}
}

func less(a, b int, w []float64) bool {
	if w[a] != w[b] {
		return w[a] > w[b]
	}
	return a < b
}

// Edge is an undirected vertex pair with a < b.
type Edge struct{ A, B int }

// RandomGraph returns the edges of an Erdos-Renyi G(n,p) graph using rng.
func RandomGraph(n int, p float64, rng *rand.Rand) []Edge {
	var edges []Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				edges = append(edges, Edge{i, j})
			}
		}
	}
	return edges
}

// RegularGraph returns the edges of a d-regular graph on n vertices
// (n*d must be even, d < n). It starts from a circulant lattice and applies
// degree-preserving double-edge swaps, so construction always succeeds and is
// deterministic for a fixed rng state.
func RegularGraph(n, d int, rng *rand.Rand) []Edge {
	if n*d%2 != 0 {
		panic("graphs: RegularGraph requires n*d even")
	}
	if d >= n {
		panic("graphs: RegularGraph requires d < n")
	}
	norm := func(a, b int) Edge {
		if a > b {
			a, b = b, a
		}
		return Edge{a, b}
	}
	seen := make(map[Edge]bool)
	var edges []Edge
	add := func(a, b int) {
		e := norm(a, b)
		if !seen[e] {
			seen[e] = true
			edges = append(edges, e)
		}
	}
	// Circulant base: each vertex links to its d/2 nearest successors, plus
	// the antipode when d is odd (n is even in that case since n*d is even).
	for v := 0; v < n; v++ {
		for step := 1; step <= d/2; step++ {
			add(v, (v+step)%n)
		}
	}
	if d%2 == 1 {
		for v := 0; v < n/2; v++ {
			add(v, v+n/2)
		}
	}
	// Randomise with double-edge swaps: (a,b),(c,e) -> (a,c),(b,e) when legal.
	for swaps := 0; swaps < 10*len(edges); swaps++ {
		i, j := rng.Intn(len(edges)), rng.Intn(len(edges))
		if i == j {
			continue
		}
		e1, e2 := edges[i], edges[j]
		a, b, c, e := e1.A, e1.B, e2.A, e2.B
		if rng.Intn(2) == 0 {
			c, e = e, c
		}
		if a == c || a == e || b == c || b == e {
			continue
		}
		n1, n2 := norm(a, c), norm(b, e)
		if seen[n1] || seen[n2] {
			continue
		}
		delete(seen, e1)
		delete(seen, e2)
		seen[n1], seen[n2] = true, true
		edges[i], edges[j] = n1, n2
	}
	return edges
}
