package move

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"atomique/internal/hardware"
)

func TestDeltaNvibMatchesPaperWorkedExample(t *testing.T) {
	// Sec. IV: with x_zpf = 38 nm, omega0 = 2*pi*80 kHz, T = 300 us:
	// 1 hop (15 um) -> 0.0054; 5 hops -> 0.13; 10 hops -> 0.54.
	p := hardware.NeutralAtom()
	cases := []struct {
		hops int
		want float64
		tol  float64
	}{
		{1, 0.0054, 0.0002},
		{5, 0.13, 0.01},
		{10, 0.54, 0.02},
	}
	for _, tc := range cases {
		d := float64(tc.hops) * p.AtomDistance
		got := DeltaNvib(d, p.TimePerMove, p)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("DeltaNvib(%d hops) = %v, want %v +- %v", tc.hops, got, tc.want, tc.tol)
		}
	}
}

func TestDeltaNvibScaling(t *testing.T) {
	p := hardware.NeutralAtom()
	base := DeltaNvib(15e-6, 300e-6, p)
	// Quadratic in distance.
	if got := DeltaNvib(30e-6, 300e-6, p); math.Abs(got/base-4) > 1e-9 {
		t.Errorf("distance scaling = %v, want 4x", got/base)
	}
	// Inverse quartic in time: doubling T divides by 16.
	if got := DeltaNvib(15e-6, 600e-6, p); math.Abs(base/got-16) > 1e-9 {
		t.Errorf("time scaling = %v, want 16x", base/got)
	}
	if DeltaNvib(0, 300e-6, p) != 0 {
		t.Errorf("zero distance should heat nothing")
	}
}

func TestTrajectoryBoundaryConditions(t *testing.T) {
	d, tm := 15e-6, 300e-6
	pr := Trajectory(d, tm, 101)
	last := len(pr.Time) - 1
	if pr.Position[0] != 0 || pr.Velocity[0] != 0 {
		t.Errorf("trajectory must start at rest at origin")
	}
	if math.Abs(pr.Position[last]-d) > 1e-12 {
		t.Errorf("final position = %v, want %v", pr.Position[last], d)
	}
	if math.Abs(pr.Velocity[last]) > 1e-9 {
		t.Errorf("final velocity = %v, want 0", pr.Velocity[last])
	}
	// Acceleration decreases linearly from +|a0| to -|a0|.
	if pr.Accel[0] <= 0 || pr.Accel[last] >= 0 {
		t.Errorf("acceleration endpoints = %v, %v", pr.Accel[0], pr.Accel[last])
	}
	if math.Abs(pr.Accel[0]+pr.Accel[last]) > 1e-9 {
		t.Errorf("acceleration not antisymmetric")
	}
	// Constant negative jerk.
	for _, j := range pr.Jerk {
		if j != pr.Jerk[0] || j >= 0 {
			t.Fatalf("jerk not constant negative: %v", pr.Jerk)
		}
	}
	// Peak velocity at midpoint equals 1.5 d/t.
	mid := last / 2
	if math.Abs(pr.Velocity[mid]-PeakVelocity(d, tm)) > 1e-9 {
		t.Errorf("peak velocity = %v, want %v", pr.Velocity[mid], PeakVelocity(d, tm))
	}
}

func TestTrajectoryMinPoints(t *testing.T) {
	pr := Trajectory(1e-6, 1e-4, 0)
	if len(pr.Time) != 2 {
		t.Errorf("expected clamp to 2 points, got %d", len(pr.Time))
	}
}

// Property: position is monotone non-decreasing for any positive move.
func TestTrajectoryMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := (1 + rng.Float64()*99) * 1e-6
		tm := (100 + rng.Float64()*900) * 1e-6
		pr := Trajectory(d, tm, 64)
		for i := 1; i < len(pr.Position); i++ {
			if pr.Position[i] < pr.Position[i-1]-1e-15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAverageSpeed(t *testing.T) {
	if got := AverageSpeed(15e-6, 300e-6); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("AverageSpeed = %v, want 0.05 m/s", got)
	}
	if AverageSpeed(1, 0) != 0 {
		t.Errorf("zero-time speed should be 0")
	}
}

func TestHopsBeforeThreshold(t *testing.T) {
	p := hardware.NeutralAtom()
	// Threshold 15 at ~0.0054 per hop: roughly 2700 hops.
	hops := HopsBeforeThreshold(p.NvibCool, p)
	if hops < 2000 || hops > 3500 {
		t.Errorf("HopsBeforeThreshold = %d, want ~2700", hops)
	}
}
