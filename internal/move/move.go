// Package move implements the atom-movement kinematics of Sec. IV of the
// Atomique paper: the constant-negative-jerk trajectory of Fig 12 and the
// vibrational-quantum-number (n_vib) heating accrued per movement.
//
// The trajectory is a(t) = a0 + j*t with constant jerk j < 0 and a0 = -j*T/2,
// giving a linearly decreasing acceleration, a parabolic velocity that starts
// and ends at zero, and an S-shaped displacement reaching D at time T.
// Solving x(T) = D yields j = -12*D/T^3.
package move

import "atomique/internal/hardware"

// Profile is a sampled movement trajectory (the four panels of Fig 12).
type Profile struct {
	Time     []float64 // s
	Jerk     []float64 // m/s^3 (constant)
	Accel    []float64 // m/s^2
	Velocity []float64 // m/s
	Position []float64 // m
}

// Trajectory samples the constant-jerk profile for a move of distance d over
// duration t at n points (n >= 2).
func Trajectory(d, t float64, n int) Profile {
	if n < 2 {
		n = 2
	}
	j := Jerk(d, t)
	a0 := -j * t / 2
	p := Profile{
		Time:     make([]float64, n),
		Jerk:     make([]float64, n),
		Accel:    make([]float64, n),
		Velocity: make([]float64, n),
		Position: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		tt := t * float64(i) / float64(n-1)
		p.Time[i] = tt
		p.Jerk[i] = j
		p.Accel[i] = a0 + j*tt
		p.Velocity[i] = a0*tt + j*tt*tt/2
		p.Position[i] = a0*tt*tt/2 + j*tt*tt*tt/6
	}
	return p
}

// Jerk returns the constant jerk required to traverse distance d in time t.
func Jerk(d, t float64) float64 { return -12 * d / (t * t * t) }

// PeakVelocity returns the maximum speed reached during the move (at t/2).
func PeakVelocity(d, t float64) float64 { return 1.5 * d / t }

// AverageSpeed returns d/t.
func AverageSpeed(d, t float64) float64 {
	if t == 0 {
		return 0
	}
	return d / t
}

// DeltaNvib returns the vibrational-quantum-number increase for a single
// movement of distance d (meters) over duration t (seconds):
//
//	delta = 1/2 * (6*d / (x_zpf * omega0^2 * t^2))^2
//
// With the Table I parameters this gives 0.0054 for a one-pitch (15 um) hop
// at 300 us, matching the paper's worked example.
func DeltaNvib(d, t float64, p hardware.Params) float64 {
	if d == 0 || t == 0 {
		return 0
	}
	x := 6 * d / (p.Xzpf * p.Omega0 * p.Omega0 * t * t)
	return 0.5 * x * x
}

// HopsBeforeThreshold returns how many hops of one site pitch an atom can
// make before its n_vib crosses the given threshold (used in the Sec. IV
// movement-vs-SWAP analysis).
func HopsBeforeThreshold(threshold float64, p hardware.Params) int {
	per := DeltaNvib(p.AtomDistance, p.TimePerMove, p)
	if per <= 0 {
		return int(^uint(0) >> 1)
	}
	return int(threshold / per)
}
