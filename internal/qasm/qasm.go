// Package qasm serialises circuits to and from OpenQASM 2.0, the interchange
// format of the paper's benchmark suites (QASMBench, SupermarQ). The dialect
// covers the IR's gate set: h, x, y, z, s, t, rx, ry, rz, u (as ry), cx, cz,
// rzz, swap, plus qreg/creg declarations, comments, and measure statements
// (parsed and ignored — the compilers schedule unitaries).
package qasm

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"atomique/internal/circuit"
)

// ParseError is a structured syntax error: the 1-based source line (0 when
// the error concerns the whole program, e.g. a missing qreg declaration) and
// a human-readable message. Services surface it as a 4xx client error,
// distinct from internal failures.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	if e.Line == 0 {
		return "qasm: " + e.Msg
	}
	return fmt.Sprintf("qasm: line %d: %s", e.Line, e.Msg)
}

// Write serialises c as OpenQASM 2.0.
func Write(w io.Writer, c *circuit.Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "OPENQASM 2.0;")
	fmt.Fprintln(bw, `include "qelib1.inc";`)
	fmt.Fprintf(bw, "qreg q[%d];\n", c.N)
	for _, g := range c.Gates {
		if err := writeGate(bw, g); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// String serialises c as an OpenQASM 2.0 string.
func String(c *circuit.Circuit) string {
	var b strings.Builder
	if err := Write(&b, c); err != nil {
		panic(err) // strings.Builder cannot fail
	}
	return b.String()
}

func writeGate(w io.Writer, g circuit.Gate) error {
	var err error
	switch g.Op {
	case circuit.OpH, circuit.OpX, circuit.OpY, circuit.OpZ, circuit.OpS, circuit.OpT:
		_, err = fmt.Fprintf(w, "%s q[%d];\n", g.Op, g.Q0)
	case circuit.OpRX, circuit.OpRY, circuit.OpRZ:
		_, err = fmt.Fprintf(w, "%s(%.17g) q[%d];\n", g.Op, g.Param, g.Q0)
	case circuit.OpU:
		_, err = fmt.Fprintf(w, "ry(%.17g) q[%d];\n", g.Param, g.Q0)
	case circuit.OpCX:
		_, err = fmt.Fprintf(w, "cx q[%d],q[%d];\n", g.Q0, g.Q1)
	case circuit.OpCZ:
		_, err = fmt.Fprintf(w, "cz q[%d],q[%d];\n", g.Q0, g.Q1)
	case circuit.OpZZ:
		_, err = fmt.Fprintf(w, "rzz(%.17g) q[%d],q[%d];\n", g.Param, g.Q0, g.Q1)
	case circuit.OpSWAP:
		_, err = fmt.Fprintf(w, "swap q[%d],q[%d];\n", g.Q0, g.Q1)
	default:
		return fmt.Errorf("qasm: cannot serialise op %v", g.Op)
	}
	return err
}

// Parse reads an OpenQASM 2.0 program. Unsupported-but-harmless statements
// (creg, barrier, measure, include) are skipped; unknown gates are an error.
func Parse(r io.Reader) (*circuit.Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var c *circuit.Circuit
	line := 0
	for sc.Scan() {
		line++
		stmts := strings.Split(sc.Text(), ";")
		for _, raw := range stmts {
			stmt := strings.TrimSpace(stripComment(raw))
			if stmt == "" {
				continue
			}
			if err := parseStatement(&c, stmt); err != nil {
				return nil, &ParseError{Line: line, Msg: err.Error()}
			}
		}
	}
	if err := sc.Err(); err != nil {
		// A line beyond the buffer cap is malformed input, so it surfaces as
		// a client error like syntax problems; genuine reader I/O failures
		// stay plain errors (a service maps only ParseError to 4xx).
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, &ParseError{Line: line + 1, Msg: err.Error()}
		}
		return nil, fmt.Errorf("qasm: %w", err)
	}
	if c == nil {
		return nil, &ParseError{Msg: "no qreg declaration found"}
	}
	return c, nil
}

// ParseString parses an OpenQASM 2.0 string.
func ParseString(s string) (*circuit.Circuit, error) {
	return Parse(strings.NewReader(s))
}

func stripComment(s string) string {
	if i := strings.Index(s, "//"); i >= 0 {
		return s[:i]
	}
	return s
}

func parseStatement(c **circuit.Circuit, stmt string) error {
	head := stmt
	if i := strings.IndexAny(stmt, " \t("); i >= 0 {
		head = stmt[:i]
	}
	head = strings.ToLower(head)
	switch head {
	case "openqasm", "include", "creg", "barrier", "measure", "reset", "if":
		return nil
	case "qreg":
		n, _, err := parseIndex(stmt)
		if err != nil {
			return err
		}
		if n < 0 {
			// circuit.New panics on negative widths; a negative register is a
			// syntax error, not a compiler bug.
			return fmt.Errorf("negative qreg size %d", n)
		}
		if *c != nil {
			return fmt.Errorf("multiple qreg declarations")
		}
		*c = circuit.New(n)
		return nil
	}
	if *c == nil {
		return fmt.Errorf("gate before qreg declaration")
	}
	op, param, args, err := parseGate(stmt)
	if err != nil {
		return err
	}
	want := 1
	if op.IsTwoQubit() {
		want = 2
	}
	if len(args) != want {
		return fmt.Errorf("gate %q needs %d operands, got %d", head, want, len(args))
	}
	for _, a := range args {
		if a < 0 || a >= (*c).N {
			return fmt.Errorf("gate %q operand q[%d] out of range", head, a)
		}
	}
	if op.IsTwoQubit() {
		if args[0] == args[1] {
			return fmt.Errorf("gate %q on identical qubits", head)
		}
		(*c).Add2Q(op, args[0], args[1], param)
	} else {
		(*c).Add1Q(op, args[0], param)
	}
	return nil
}

// parseIndex extracts the first bracketed integer: qreg q[12] -> 12.
func parseIndex(s string) (int, string, error) {
	open := strings.Index(s, "[")
	closeIdx := strings.Index(s, "]")
	if open < 0 || closeIdx < open {
		return 0, "", fmt.Errorf("malformed declaration %q", s)
	}
	n, err := strconv.Atoi(strings.TrimSpace(s[open+1 : closeIdx]))
	if err != nil {
		return 0, "", fmt.Errorf("bad index in %q: %v", s, err)
	}
	return n, s[closeIdx+1:], nil
}

var opByName = map[string]circuit.Op{
	"h": circuit.OpH, "x": circuit.OpX, "y": circuit.OpY, "z": circuit.OpZ,
	"s": circuit.OpS, "t": circuit.OpT, "sdg": circuit.OpS, "tdg": circuit.OpT,
	"rx": circuit.OpRX, "ry": circuit.OpRY, "rz": circuit.OpRZ,
	"u1": circuit.OpRZ, "p": circuit.OpRZ, "u": circuit.OpU, "u3": circuit.OpU,
	"cx": circuit.OpCX, "cnot": circuit.OpCX, "cz": circuit.OpCZ,
	"rzz": circuit.OpZZ, "zz": circuit.OpZZ, "swap": circuit.OpSWAP,
}

func parseGate(stmt string) (circuit.Op, float64, []int, error) {
	name := stmt
	rest := ""
	param := 0.0
	if i := strings.Index(stmt, "("); i >= 0 {
		name = strings.TrimSpace(stmt[:i])
		j := strings.Index(stmt, ")")
		if j < i {
			return 0, 0, nil, fmt.Errorf("unbalanced parens in %q", stmt)
		}
		p, err := parseAngle(stmt[i+1 : j])
		if err != nil {
			return 0, 0, nil, err
		}
		param = p
		rest = stmt[j+1:]
	} else if i := strings.IndexAny(stmt, " \t"); i >= 0 {
		name = stmt[:i]
		rest = stmt[i+1:]
	}
	op, ok := opByName[strings.ToLower(name)]
	if !ok {
		return 0, 0, nil, fmt.Errorf("unsupported gate %q", name)
	}
	var args []int
	for _, operand := range strings.Split(rest, ",") {
		operand = strings.TrimSpace(operand)
		if operand == "" {
			continue
		}
		idx, _, err := parseIndex(operand)
		if err != nil {
			return 0, 0, nil, err
		}
		args = append(args, idx)
	}
	return op, param, args, nil
}

// parseAngle evaluates the restricted angle expressions QASM files use:
// decimal literals, pi, and products/quotients like pi/2, 3*pi/4, -pi/16.
// For u/u3 gates with multiple parameters, the first is used.
func parseAngle(expr string) (float64, error) {
	if i := strings.Index(expr, ","); i >= 0 {
		expr = expr[:i]
	}
	expr = strings.TrimSpace(expr)
	neg := false
	if strings.HasPrefix(expr, "-") {
		neg = true
		expr = expr[1:]
	}
	value := 1.0
	for i, part := range strings.Split(expr, "/") {
		v, err := parseProduct(part)
		if err != nil {
			return 0, err
		}
		if i == 0 {
			value = v
		} else {
			if v == 0 {
				return 0, fmt.Errorf("division by zero in %q", expr)
			}
			value /= v
		}
	}
	if neg {
		value = -value
	}
	return value, nil
}

func parseProduct(expr string) (float64, error) {
	value := 1.0
	for _, f := range strings.Split(expr, "*") {
		f = strings.TrimSpace(f)
		switch strings.ToLower(f) {
		case "pi":
			value *= math.Pi
		case "":
			return 0, fmt.Errorf("empty factor")
		default:
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return 0, fmt.Errorf("bad angle %q: %v", f, err)
			}
			value *= v
		}
	}
	return value, nil
}
