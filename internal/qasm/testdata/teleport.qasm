// Quantum teleportation of q[0] to q[2] (unitary form: corrections applied
// as controlled gates instead of classically conditioned ones).
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[2];
x q[0];            // state to teleport
h q[1];
cx q[1],q[2];      // Bell pair on q[1],q[2]
cx q[0],q[1];
h q[0];
cx q[1],q[2];      // X correction
cz q[0],q[2];      // Z correction
