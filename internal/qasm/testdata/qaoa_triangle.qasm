// One QAOA layer on the triangle graph (3 vertices, 3 edges).
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
h q[1];
h q[2];
rzz(pi/4) q[0],q[1];
rzz(pi/4) q[1],q[2];
rzz(pi/4) q[0],q[2];
rx(pi/2) q[0];
rx(pi/2) q[1];
rx(pi/2) q[2];
