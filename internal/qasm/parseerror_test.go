package qasm

import (
	"errors"
	"strings"
	"testing"
)

func TestParseErrorStructure(t *testing.T) {
	_, err := ParseString("OPENQASM 2.0;\nqreg q[2];\ncx q[0];\n")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *ParseError", err, err)
	}
	if pe.Line != 3 {
		t.Errorf("line = %d, want 3", pe.Line)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("message %q does not mention the line", err)
	}

	_, err = ParseString("// just a comment\n")
	if !errors.As(err, &pe) {
		t.Fatalf("missing qreg: err = %T, want *ParseError", err)
	}
	if pe.Line != 0 {
		t.Errorf("program-level error line = %d, want 0", pe.Line)
	}
}
