package qasm

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"atomique/internal/bench"
	"atomique/internal/circuit"
	"atomique/internal/sim"
)

func TestWriteBasic(t *testing.T) {
	c := circuit.New(3)
	c.H(0)
	c.CX(0, 1)
	c.ZZ(1, 2, math.Pi/2)
	out := String(c)
	for _, want := range []string{
		"OPENQASM 2.0;", "qreg q[3];", "h q[0];", "cx q[0],q[1];", "rzz(",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestParseBasic(t *testing.T) {
	src := `OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
h q[0];
cx q[0],q[1]; cz q[2],q[3];
rz(pi/2) q[1];
rx(-pi/4) q[2];
rzz(0.5) q[0],q[3];
// a comment
barrier q;
measure q[0] -> c[0];
`
	c, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.N != 4 {
		t.Fatalf("N = %d, want 4", c.N)
	}
	if c.NumGates() != 6 {
		t.Fatalf("gates = %d, want 6 (measure/barrier skipped)", c.NumGates())
	}
	if g := c.Gates[3]; g.Op != circuit.OpRZ || math.Abs(g.Param-math.Pi/2) > 1e-12 {
		t.Errorf("rz parse wrong: %+v", g)
	}
	if g := c.Gates[4]; math.Abs(g.Param+math.Pi/4) > 1e-12 {
		t.Errorf("negative angle parse wrong: %+v", g)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"h q[0];",                    // gate before qreg
		"qreg q[2];\nfoo q[0];",      // unknown gate
		"qreg q[2];\nqreg r[2];",     // duplicate qreg
		"qreg q[2];\nrz(pi/0) q[0];", // division by zero
		"qreg q[2];\ncx q[0];",       // missing operand... parses as 1 operand 2Q
		"",                           // empty
		"qreg q[x];",                 // bad index
	}
	for _, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", src)
		}
	}
}

func TestAngleExpressions(t *testing.T) {
	cases := map[string]float64{
		"pi":     math.Pi,
		"pi/2":   math.Pi / 2,
		"-pi/4":  -math.Pi / 4,
		"3*pi/4": 3 * math.Pi / 4,
		"0.25":   0.25,
		"2*0.5":  1.0,
		"pi/2/2": math.Pi / 4,
	}
	for expr, want := range cases {
		got, err := parseAngle(expr)
		if err != nil {
			t.Errorf("parseAngle(%q): %v", expr, err)
			continue
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("parseAngle(%q) = %v, want %v", expr, got, want)
		}
	}
}

// Round trip: write then parse must preserve gate structure and, on small
// circuits, exact semantics.
func TestRoundTripSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		n := 2 + rng.Intn(5)
		c := randomCircuit(rng, n, 30)
		back, err := ParseString(String(c))
		if err != nil {
			t.Fatal(err)
		}
		if back.N != c.N || back.NumGates() != c.NumGates() {
			t.Fatalf("round trip changed shape: %d/%d -> %d/%d",
				c.N, c.NumGates(), back.N, back.NumGates())
		}
		a := sim.MustNew(n)
		a.Run(c)
		b := sim.MustNew(n)
		b.Run(back)
		if f := sim.Fidelity(a, b); f < 1-1e-9 {
			t.Fatalf("round trip broke semantics: fidelity %v", f)
		}
	}
}

func randomCircuit(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < gates; i++ {
		switch rng.Intn(7) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.RZ(rng.Intn(n), rng.Float64()*6)
		case 2:
			c.RY(rng.Intn(n), rng.Float64()*6)
		case 3:
			c.Add1Q(circuit.OpT, rng.Intn(n), 0)
		case 4, 5:
			a := rng.Intn(n)
			b := rng.Intn(n - 1)
			if b >= a {
				b++
			}
			c.CX(a, b)
		case 6:
			a := rng.Intn(n)
			b := rng.Intn(n - 1)
			if b >= a {
				b++
			}
			c.ZZ(a, b, rng.Float64()*6)
		}
	}
	return c
}

// Property: every benchmark circuit in the suite serialises and re-parses
// with identical gate counts.
func TestBenchmarkSuiteRoundTrip(t *testing.T) {
	for _, b := range bench.Fig14Suite() {
		back, err := ParseString(String(b.Circ))
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if back.Num2Q() != b.Circ.Num2Q() || back.Num1Q() != b.Circ.Num1Q() {
			t.Errorf("%s: counts changed: %d/%d -> %d/%d", b.Name,
				b.Circ.Num2Q(), b.Circ.Num1Q(), back.Num2Q(), back.Num1Q())
		}
	}
}

// Property: round trip preserves shape for arbitrary random circuits.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, 2+rng.Intn(8), 1+rng.Intn(60))
		back, err := ParseString(String(c))
		if err != nil {
			return false
		}
		if back.N != c.N || back.NumGates() != c.NumGates() {
			return false
		}
		for i := range c.Gates {
			if back.Gates[i].Q0 != c.Gates[i].Q0 || back.Gates[i].Q1 != c.Gates[i].Q1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
