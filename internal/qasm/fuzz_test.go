package qasm

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"atomique/internal/bench"
	"atomique/internal/circuit"
)

// FuzzParse asserts the parser's error contract on arbitrary input: Parse
// either succeeds or returns a *ParseError with a non-negative line number —
// it never panics and never returns a bare error for malformed source (only
// genuine reader I/O failures, which a string reader cannot produce, stay
// plain). Successful parses must additionally survive the Write round trip.
//
// Run it as a regression corpus with `go test ./internal/qasm`, or as a
// fuzzer with `go test -fuzz=FuzzParse ./internal/qasm`.
func FuzzParse(f *testing.F) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.qasm"))
	if err != nil {
		f.Fatal(err)
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	// The generated half of the regression corpus (internal/regress), so the
	// fuzzer starts from every circuit family the golden snapshots compile:
	// big registers, rzz-heavy QAOA layers, and dense QV permutations.
	for _, c := range []*circuit.Circuit{
		bench.QAOARegular(40, 5, 15),
		bench.QV(32, 32, 3),
		bench.BV(50, 22, 4),
	} {
		f.Add(String(c))
	}
	for _, seed := range []string{
		"",
		"qreg q[0];",
		"qreg q[-1];",
		"qreg q[2];\ncx q[0],q[1];",
		"qreg q[2];qreg p[3];",
		"cx q[0],q[1];",
		"qreg q[3]; rz(pi/2) q[0]; rzz(-3*pi/4) q[1],q[2];",
		"qreg q[1]; rx(1/0) q[0];",
		"qreg q[1]; rx() q[0];",
		"qreg q[1]; h q[9999999999999999999999];",
		"qreg q[2]; swap q[1],q[1];",
		"qreg q[2]; mystery q[0];",
		"qreg q[2]; cx q[0],q[1]", // no trailing semicolon
		"qreg q[2]; cx q[0] , q[1] ; // comment",
		"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nmeasure q[0] -> c[0];",
		"qreg q[2]; u3(0.1,0.2,0.3) q[0];",
		"qreg q[2]; h q[",
		"qreg q[2]; h q]0[;",
		"qreg q[18446744073709551616];",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseString(src)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("non-ParseError from malformed input: %T %v", err, err)
			}
			if pe.Line < 0 {
				t.Fatalf("negative error line %d", pe.Line)
			}
			return
		}
		if c == nil {
			t.Fatal("nil circuit without error")
		}
		if c.N < 0 {
			t.Fatalf("negative register width %d", c.N)
		}
		// Round trip: everything we parsed must serialise and re-parse to
		// the same gate list.
		out := String(c)
		c2, err := ParseString(out)
		if err != nil {
			t.Fatalf("round trip re-parse failed: %v\nserialised:\n%s", err, out)
		}
		if c2.N != c.N || len(c2.Gates) != len(c.Gates) {
			t.Fatalf("round trip changed shape: %d/%d gates, %d/%d qubits",
				len(c.Gates), len(c2.Gates), c.N, c2.N)
		}
		for i := range c.Gates {
			wantOp := c.Gates[i].Op
			if wantOp == circuit.OpU {
				wantOp = circuit.OpRY // Write canonicalises u/u3 to ry
			}
			if wantOp != c2.Gates[i].Op || c.Gates[i].Q0 != c2.Gates[i].Q0 ||
				c.Gates[i].Q1 != c2.Gates[i].Q1 {
				t.Fatalf("round trip changed gate %d: %v -> %v", i, c.Gates[i], c2.Gates[i])
			}
		}
	})
}
