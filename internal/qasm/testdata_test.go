package qasm

import (
	"os"
	"path/filepath"
	"testing"

	"atomique/internal/core"
	"atomique/internal/hardware"
)

// TestParseCorpus parses every file in testdata and compiles it end to end
// with Atomique — the real ingestion path for external benchmark suites.
func TestParseCorpus(t *testing.T) {
	files, err := filepath.Glob("testdata/*.qasm")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no testdata files")
	}
	wantGates := map[string]int{
		"ghz4.qasm":          4, // measures skipped
		"qaoa_triangle.qasm": 9,
		"teleport.qasm":      7,
	}
	cfg := hardware.SquareConfig(4, 2)
	for _, f := range files {
		fh, err := os.Open(f)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Parse(fh)
		fh.Close()
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if want, ok := wantGates[filepath.Base(f)]; ok && c.NumGates() != want {
			t.Errorf("%s: gates = %d, want %d", f, c.NumGates(), want)
		}
		res, err := core.Compile(cfg, c, core.Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s: compile: %v", f, err)
		}
		if err := core.VerifySchedule(res, core.Options{}); err != nil {
			t.Errorf("%s: %v", f, err)
		}
	}
}
