// Package fidelity implements the circuit-fidelity model of Sec. IV-V:
//
//	F = F1Q * F2Q * Ftransfer * Fmov
//	Fmov = Fmov_heating * Fmov_loss * Fmov_cooling * Fmov_deco
//
// The model consumes the aggregate execution trace a compiler produces
// (gate counts, two-qubit depth, per-gate n_vib, per-move n_vib, cooling
// events, per-stage active-qubit counts) and returns both the total fidelity
// and the per-source breakdown used for Fig 18's -log(F) error bars.
package fidelity

import (
	"math"

	"atomique/internal/hardware"
)

// Breakdown is the multiplicative fidelity decomposition. Every factor is in
// (0, 1]; Total multiplies them.
type Breakdown struct {
	OneQubit    float64 `json:"oneQubit"`    // f1Q^N1Q and 1Q-time decoherence
	TwoQubit    float64 `json:"twoQubit"`    // f2Q^N2Q and 2Q-time decoherence
	Transfer    float64 `json:"transfer"`    // SLM<->AOD transfer loss + time
	MoveHeating float64 `json:"moveHeating"` // heating-degraded 2Q gates
	MoveCooling float64 `json:"moveCooling"` // cooling-swap gate overhead
	MoveLoss    float64 `json:"moveLoss"`    // atom loss from accumulated n_vib
	MoveDeco    float64 `json:"moveDeco"`    // decoherence during movement stages
}

// Total returns the product of all factors.
func (b Breakdown) Total() float64 {
	return b.OneQubit * b.TwoQubit * b.Transfer *
		b.MoveHeating * b.MoveCooling * b.MoveLoss * b.MoveDeco
}

// NegLog returns -log10 of each factor in a fixed order matching Labels;
// this is the error-breakdown bar of Fig 18 (second row).
func (b Breakdown) NegLog() []float64 {
	vals := []float64{
		b.OneQubit, b.TwoQubit, b.MoveHeating,
		b.MoveCooling, b.MoveLoss, b.MoveDeco,
	}
	out := make([]float64, len(vals))
	for i, v := range vals {
		if v <= 0 {
			out[i] = math.Inf(1)
			continue
		}
		out[i] = -math.Log10(v)
	}
	return out
}

// Labels names the NegLog entries.
func Labels() []string {
	return []string{"1Q Gate", "2Q Gate", "Move Heating",
		"Move Cooling", "Move Atom Loss", "Move Decoherence"}
}

// Static describes the movement-independent part of an execution: gate
// counts, layer counts, and qubit count.
type Static struct {
	NQubits   int
	N1Q       int // one-qubit gates executed
	N1QLayers int // parallel 1Q layers (cumulative 1Q time = layers * t1Q)
	N2Q       int // two-qubit interactions executed (incl. SWAP decomposition)
	Depth2Q   int // parallel 2Q layers (cumulative 2Q time = depth * t2Q)
	Transfers int // SLM<->AOD atom transfers
}

// MovementTrace carries the movement-dependent quantities a RAA schedule
// accumulates. All slices may be empty (a static architecture).
type MovementTrace struct {
	// GateNvib holds, for each executed two-qubit gate, the effective n_vib
	// at execution time: the moved atom's n_vib for AOD-SLM pairs, the sum
	// for AOD-AOD pairs, zero for gates not involving a moved atom.
	GateNvib []float64
	// MoveNvib holds, for every (atom, movement) with nonzero distance, the
	// atom's cumulative n_vib immediately after that movement; atom loss is
	// evaluated per move as in Sec. IV.
	MoveNvib []float64
	// CoolingAtomCounts holds, per cooling event, the number of atoms in the
	// cooled AOD array (each costs two CZ gates to swap into the cold array).
	CoolingAtomCounts []int
	// StageQubits holds, per movement stage, the number of qubits in use
	// (N_i in the Fmov_deco formula).
	StageQubits []int
	// StageMoveTime holds, per movement stage, the movement duration T_mov,i.
	StageMoveTime []float64
}

// Evaluate computes the full fidelity breakdown for an execution on hardware
// with parameters p. Pass a zero MovementTrace for fixed architectures.
func Evaluate(p hardware.Params, s Static, m MovementTrace) Breakdown {
	n := float64(s.NQubits)
	b := Breakdown{
		OneQubit: math.Pow(p.Fidelity1Q, float64(s.N1Q)) *
			math.Exp(-float64(s.N1QLayers)*p.Time1Q/p.CoherenceT1*n),
		TwoQubit: math.Pow(p.Fidelity2Q, float64(s.N2Q)) *
			math.Exp(-float64(s.Depth2Q)*p.Time2Q/p.CoherenceT1*n),
		Transfer: math.Pow(1-p.TransferLossP, float64(s.Transfers)) *
			math.Exp(-float64(s.Transfers)*p.TransferTime/p.CoherenceT1*n),
		MoveHeating: 1,
		MoveCooling: 1,
		MoveLoss:    1,
		MoveDeco:    1,
	}

	// Heating: per 2Q gate, factor 1 - lambda*(1-f2Q)*n_vib.
	inf2q := 1 - p.Fidelity2Q
	for _, nv := range m.GateNvib {
		f := 1 - p.Lambda*inf2q*nv
		if f < 0 {
			f = 0
		}
		b.MoveHeating *= f
	}

	// Loss: per move, per moved atom.
	for _, nv := range m.MoveNvib {
		b.MoveLoss *= 1 - LossProbability(nv, p.NvibMax)
	}

	// Cooling: two CZ per atom in the cooled array.
	for _, atoms := range m.CoolingAtomCounts {
		b.MoveCooling *= math.Pow(p.Fidelity2Q, float64(2*atoms))
	}

	// Decoherence during movement.
	for i, nq := range m.StageQubits {
		t := p.TimePerMove
		if i < len(m.StageMoveTime) {
			t = m.StageMoveTime[i]
		}
		b.MoveDeco *= math.Exp(-float64(nq) * t / p.CoherenceT1)
	}
	return b
}

// LossProbability returns the per-move atom-loss probability for an atom at
// vibrational number nvib given ceiling nvibMax:
//
//	P = 1 - 1/2 * (1 + erf((nmax - nvib) / sqrt(2*nvib)))
//
// P(0) = 0 and P grows sharply as nvib approaches nmax (0.29 at nvib=30 with
// nmax=33, matching the paper's worked values).
func LossProbability(nvib, nvibMax float64) float64 {
	if nvib <= 0 {
		return 0
	}
	return 1 - 0.5*(1+math.Erf((nvibMax-nvib)/math.Sqrt(2*nvib)))
}
