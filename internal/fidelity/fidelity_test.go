package fidelity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"atomique/internal/hardware"
)

func TestLossProbabilityMatchesPaperValues(t *testing.T) {
	// Sec. IV with nmax = 33: F(nvib=30) = 0.708, F(20) = 0.998,
	// F(15) = 0.999998, where F = 1 - P.
	cases := []struct {
		nvib, wantF, tol float64
	}{
		{30, 0.708, 0.005},
		{20, 0.998, 0.001},
		{15, 0.999998, 1e-5},
		{0, 1.0, 0},
	}
	for _, tc := range cases {
		got := 1 - LossProbability(tc.nvib, 33)
		if math.Abs(got-tc.wantF) > tc.tol {
			t.Errorf("1-P(%v) = %v, want %v +- %v", tc.nvib, got, tc.wantF, tc.tol)
		}
	}
}

func TestEvaluateStaticOnly(t *testing.T) {
	p := hardware.NeutralAtom()
	s := Static{NQubits: 10, N1Q: 100, N1QLayers: 20, N2Q: 50, Depth2Q: 25}
	b := Evaluate(p, s, MovementTrace{})
	// Movement factors must be exactly 1.
	if b.MoveHeating != 1 || b.MoveCooling != 1 || b.MoveLoss != 1 || b.MoveDeco != 1 {
		t.Errorf("movement factors not unity: %+v", b)
	}
	want1q := math.Pow(p.Fidelity1Q, 100) * math.Exp(-20*p.Time1Q/p.CoherenceT1*10)
	if math.Abs(b.OneQubit-want1q) > 1e-12 {
		t.Errorf("OneQubit = %v, want %v", b.OneQubit, want1q)
	}
	want2q := math.Pow(p.Fidelity2Q, 50) * math.Exp(-25*p.Time2Q/p.CoherenceT1*10)
	if math.Abs(b.TwoQubit-want2q) > 1e-12 {
		t.Errorf("TwoQubit = %v, want %v", b.TwoQubit, want2q)
	}
	if b.Transfer != 1 {
		t.Errorf("Transfer = %v with zero transfers", b.Transfer)
	}
	if got := b.Total(); math.Abs(got-want1q*want2q) > 1e-12 {
		t.Errorf("Total = %v", got)
	}
}

func TestMoveDecoMatchesPaperWorkedExample(t *testing.T) {
	// Sec. IV: one movement stage, 10 qubits, T1 = 1.5 s (unscaled), 300 us
	// -> exp(-300e-6/1.5 * 10) = 0.998.
	p := hardware.NeutralAtom()
	p.CoherenceT1 = 1.5
	b := Evaluate(p, Static{NQubits: 10}, MovementTrace{
		StageQubits:   []int{10},
		StageMoveTime: []float64{300e-6},
	})
	if math.Abs(b.MoveDeco-0.998) > 0.0005 {
		t.Errorf("MoveDeco = %v, want ~0.998", b.MoveDeco)
	}
	// 100 qubits -> 0.98.
	b = Evaluate(p, Static{NQubits: 100}, MovementTrace{
		StageQubits:   []int{100},
		StageMoveTime: []float64{300e-6},
	})
	if math.Abs(b.MoveDeco-0.980) > 0.001 {
		t.Errorf("MoveDeco(100q) = %v, want ~0.980", b.MoveDeco)
	}
}

func TestHeatingFactor(t *testing.T) {
	p := hardware.NeutralAtom()
	b := Evaluate(p, Static{NQubits: 2}, MovementTrace{GateNvib: []float64{10}})
	want := 1 - p.Lambda*(1-p.Fidelity2Q)*10
	if math.Abs(b.MoveHeating-want) > 1e-12 {
		t.Errorf("MoveHeating = %v, want %v", b.MoveHeating, want)
	}
	// Enormous nvib clamps at zero rather than going negative.
	b = Evaluate(p, Static{NQubits: 2}, MovementTrace{GateNvib: []float64{1e9}})
	if b.MoveHeating != 0 {
		t.Errorf("MoveHeating = %v, want clamp to 0", b.MoveHeating)
	}
}

func TestCoolingFactor(t *testing.T) {
	p := hardware.NeutralAtom()
	b := Evaluate(p, Static{NQubits: 2}, MovementTrace{CoolingAtomCounts: []int{25}})
	want := math.Pow(p.Fidelity2Q, 50)
	if math.Abs(b.MoveCooling-want) > 1e-12 {
		t.Errorf("MoveCooling = %v, want %v", b.MoveCooling, want)
	}
}

func TestTransferFactor(t *testing.T) {
	p := hardware.NeutralAtom()
	b := Evaluate(p, Static{NQubits: 5, Transfers: 3}, MovementTrace{})
	want := math.Pow(1-p.TransferLossP, 3) * math.Exp(-3*p.TransferTime/p.CoherenceT1*5)
	if math.Abs(b.Transfer-want) > 1e-12 {
		t.Errorf("Transfer = %v, want %v", b.Transfer, want)
	}
}

func TestNegLogAndLabels(t *testing.T) {
	b := Breakdown{OneQubit: 0.1, TwoQubit: 1, Transfer: 1,
		MoveHeating: 1, MoveCooling: 1, MoveLoss: 1, MoveDeco: 1}
	nl := b.NegLog()
	if len(nl) != len(Labels()) {
		t.Fatalf("NegLog/Labels length mismatch: %d vs %d", len(nl), len(Labels()))
	}
	if math.Abs(nl[0]-1) > 1e-12 {
		t.Errorf("NegLog[0] = %v, want 1", nl[0])
	}
	zero := Breakdown{}
	if !math.IsInf(zero.NegLog()[0], 1) {
		t.Errorf("NegLog of zero factor should be +Inf")
	}
}

// Property: every factor lies in [0,1] for non-negative traces, so Total does
// too, and adding more error sources never increases fidelity.
func TestEvaluateMonotoneProperty(t *testing.T) {
	p := hardware.NeutralAtom()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := Static{
			NQubits:   1 + rng.Intn(100),
			N1Q:       rng.Intn(1000),
			N1QLayers: rng.Intn(100),
			N2Q:       rng.Intn(1000),
			Depth2Q:   rng.Intn(500),
			Transfers: rng.Intn(10),
		}
		m := MovementTrace{}
		for i := 0; i < rng.Intn(20); i++ {
			m.GateNvib = append(m.GateNvib, rng.Float64()*20)
			m.MoveNvib = append(m.MoveNvib, rng.Float64()*30)
		}
		for i := 0; i < rng.Intn(3); i++ {
			m.CoolingAtomCounts = append(m.CoolingAtomCounts, rng.Intn(100))
			m.StageQubits = append(m.StageQubits, rng.Intn(100))
			m.StageMoveTime = append(m.StageMoveTime, rng.Float64()*1e-3)
		}
		b := Evaluate(p, s, m)
		for _, v := range []float64{b.OneQubit, b.TwoQubit, b.Transfer,
			b.MoveHeating, b.MoveCooling, b.MoveLoss, b.MoveDeco} {
			if v < 0 || v > 1 {
				return false
			}
		}
		// Adding an extra heated gate cannot increase fidelity.
		m2 := m
		m2.GateNvib = append(append([]float64{}, m.GateNvib...), 5)
		return Evaluate(p, s, m2).Total() <= b.Total()+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLossProbabilityMonotone(t *testing.T) {
	prev := 0.0
	for nv := 1.0; nv <= 33; nv++ {
		p := LossProbability(nv, 33)
		if p < prev-1e-12 {
			t.Fatalf("LossProbability not monotone at nvib=%v", nv)
		}
		prev = p
	}
	if LossProbability(33, 33) < 0.45 {
		t.Errorf("P(nmax) = %v, want ~0.5", LossProbability(33, 33))
	}
}
