package zoned

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"atomique/internal/circuit"
	"atomique/internal/compiler"
	"atomique/internal/compiler/conformance"
	"atomique/internal/hardware"
	"atomique/internal/metrics"
)

// witness wraps a zoned compilation as the compiler-level execution witness
// (the same flattening the backend adapter performs), so the zoned unit
// tests check semantic equivalence with the one shared definition —
// conformance.VerifyResult — rather than a bespoke replay.
func witness(res *Result, n int) *compiler.Result {
	var gates []circuit.Gate
	for _, st := range res.Schedule.Stages {
		for _, g := range st.OneQ {
			gates = append(gates, circuit.Gate{Op: g.Op, Q0: g.SlotA, Q1: -1, Param: g.Param})
		}
		for _, g := range st.Gates {
			gates = append(gates, circuit.Gate{Op: g.Op, Q0: g.SlotA, Q1: g.SlotB, Param: g.Param})
		}
	}
	return &compiler.Result{Program: &compiler.Program{
		NSlots: n, Gates: gates, FinalSlot: res.FinalSlotOf,
	}}
}

func semanticsCheck(t *testing.T, geo hardware.ZoneGeometry, c *circuit.Circuit) {
	t.Helper()
	res, err := Compile(geo, hardware.NeutralAtom(), c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := conformance.VerifyResult(c, witness(res, c.N)); err != nil {
		t.Fatal(err)
	}
}

func TestZonedGHZSemantics(t *testing.T) {
	c := circuit.New(6)
	c.H(0)
	for i := 1; i < 6; i++ {
		c.CX(i-1, i)
	}
	semanticsCheck(t, hardware.DefaultZones(), c)
}

func TestZonedSemanticsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		geo := hardware.ZonesFor(n)
		geo.EntangleSites = 1 + rng.Intn(4)
		c := conformance.RandomCircuit(rng, n, 10+rng.Intn(50))
		res, err := Compile(geo, hardware.NeutralAtom(), c, Options{})
		if err != nil {
			return false
		}
		return conformance.VerifyResult(c, witness(res, c.N)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestZonedParallelismBoundedBySites: the gate-site count caps each round's
// two-qubit batch, and shrinking it deepens the schedule.
func TestZonedParallelismBoundedBySites(t *testing.T) {
	// Eight disjoint pairs, all executable in parallel.
	c := circuit.New(16)
	for i := 0; i < 16; i += 2 {
		c.CZ(i, i+1)
	}
	wide := hardware.ZonesFor(16)
	wide.EntangleSites = 8
	narrow := wide
	narrow.EntangleSites = 2

	wr, err := Compile(wide, hardware.NeutralAtom(), c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nr, err := Compile(narrow, hardware.NeutralAtom(), c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if wr.Metrics.Depth2Q != 1 {
		t.Errorf("8 sites: depth = %d, want 1", wr.Metrics.Depth2Q)
	}
	if nr.Metrics.Depth2Q != 4 {
		t.Errorf("2 sites: depth = %d, want 4", nr.Metrics.Depth2Q)
	}
	for _, st := range nr.Schedule.Stages {
		if len(st.Gates) > 2 {
			t.Errorf("round executes %d gates with 2 gate sites", len(st.Gates))
		}
	}
}

// TestZonedAccounting: two tweezer transfers per atom per shuttle round
// (four per gate) plus the readout transfer pair, and the 2Q multiset is
// preserved (no SWAPs).
func TestZonedAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := conformance.RandomCircuit(rng, 8, 60)
	res, err := Compile(hardware.ZonesFor(8), hardware.NeutralAtom(), c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.N2Q != c.Num2Q() || m.N1Q != c.Num1Q() {
		t.Errorf("gate counts (%d 2Q, %d 1Q) diverge from source (%d, %d)",
			m.N2Q, m.N1Q, c.Num2Q(), c.Num1Q())
	}
	if m.SwapCount != 0 || m.AddedCNOTs != 0 {
		t.Errorf("zoned scheduling inserted SWAPs: %d (+%d CNOT)", m.SwapCount, m.AddedCNOTs)
	}
	if want := 4*c.Num2Q() + 2*c.N; res.Static.Transfers != want {
		t.Errorf("transfers = %d, want 4 per 2Q gate + 2 per qubit = %d",
			res.Static.Transfers, want)
	}
	if m.MoveStages != m.Depth2Q+1 {
		t.Errorf("move stages = %d, want rounds + readout = %d", m.MoveStages, m.Depth2Q+1)
	}
	if m.TotalMoveDist <= 0 || m.ExecutionTime <= 0 {
		t.Errorf("movement accounting empty: %+v", m)
	}
	if got := m.FidelityTotal(); got <= 0 || got >= 1 {
		t.Errorf("fidelity %v outside (0,1)", got)
	}
}

// TestZonedHotQubitsPlacedNearZone: the busiest qubit gets storage row 0.
func TestZonedHotQubitsPlacedNearZone(t *testing.T) {
	c := circuit.New(12)
	for i := 1; i < 12; i++ {
		c.CZ(7, i%7) // qubit 7 touches every gate
	}
	res, err := Compile(hardware.ZonesFor(12), hardware.NeutralAtom(), c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SiteOf[7].Row != 0 {
		t.Errorf("hottest qubit placed at row %d, want 0 (sites: %v)", res.SiteOf[7].Row, res.SiteOf)
	}
}

func TestZonedCoolingTriggers(t *testing.T) {
	// A long 2Q chain on two qubits accrues shuttle heating until cooling.
	c := circuit.New(2)
	for i := 0; i < 200; i++ {
		c.CZ(0, 1)
	}
	res, err := Compile(hardware.DefaultZones(), hardware.NeutralAtom(), c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.CoolingEvents == 0 {
		t.Error("200 shuttle rounds triggered no cooling")
	}
	if res.Metrics.Fidelity.MoveCooling >= 1 {
		t.Error("cooling events did not reach the fidelity model")
	}
}

func TestZonedCapacityError(t *testing.T) {
	geo := hardware.DefaultZones()
	geo.StorageRows, geo.StorageCols = 2, 2
	if _, err := Compile(geo, hardware.NeutralAtom(), circuit.New(5), Options{}); err == nil {
		t.Error("5 qubits accepted on a 4-site storage zone")
	}
}

func TestZonedDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := conformance.RandomCircuit(rng, 10, 80)
	canonical := func(m metrics.Compiled) metrics.Compiled {
		m.CompileTime = 0
		for i := range m.Passes {
			m.Passes[i].Seconds = 0
		}
		return m
	}
	a, err := Compile(hardware.ZonesFor(10), hardware.NeutralAtom(), c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(hardware.ZonesFor(10), hardware.NeutralAtom(), c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(canonical(a.Metrics), canonical(b.Metrics)) {
		t.Errorf("same-input metrics diverge:\n%+v\nvs\n%+v", a.Metrics, b.Metrics)
	}
}

func TestZonedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CompileContext(ctx, hardware.DefaultZones(), hardware.NeutralAtom(),
		circuit.New(4), Options{})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestZonedPassNames(t *testing.T) {
	want := []string{"map-storage", "schedule-rounds", "fidelity"}
	if got := PassNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("pass names = %v, want %v", got, want)
	}
}
