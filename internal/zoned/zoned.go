// Package zoned implements a ZAP-style compiler for zoned neutral-atom
// architectures (arXiv:2411.14037): instead of the flat SLM+AOD array the
// Atomique pipeline targets, the machine has a storage zone holding idle
// qubits, a Rydberg entangling zone with a fixed number of parallel gate
// sites, and a readout zone, with atoms shuttled between zones by movable
// tweezers.
//
// The compilation problem changes accordingly. Nothing needs SWAP insertion
// — any pair can be brought together in the entangling zone — so routing
// degenerates to scheduling: two-qubit gates are batched into shuttle
// rounds bounded by the gate-site count, and the cost model shifts from
// AOD-legality-constrained movement to shuttle latency (ZoneGeometry
// distances at ShuttleSpeed), trap-tweezer transfer loss (two transfers per
// atom per round trip), and transport heating, all accounted through the
// shared fidelity model (internal/fidelity).
//
// The compiler runs as a pass pipeline over the same typed state as the
// Atomique pass list (internal/pipeline):
//
//	map-storage      rank qubits by gate frequency and place the hottest in
//	                 the storage rows nearest the entangling zone
//	schedule-rounds  frontier-driven batching of 2Q gates into shuttle-in /
//	                 entangle / shuttle-out rounds (plus the final readout
//	                 shuttle), tracking heating, cooling, and transfers
//	fidelity         static counts + fidelity model evaluation
package zoned

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"atomique/internal/circuit"
	"atomique/internal/fidelity"
	"atomique/internal/hardware"
	"atomique/internal/metrics"
	"atomique/internal/pipeline"
)

// Options configures a zoned compilation. The zero value is the default
// configuration.
type Options struct {
	// Seed is accepted for interface uniformity with the other compilers;
	// the zoned scheduler is fully deterministic and does not consume it.
	Seed int64
	// Gamma is the per-layer decay of gate-frequency edge weights used by
	// the storage placement ranking (default 0.95, like the flat mapper).
	Gamma float64
}

func (o Options) withDefaults() Options {
	if o.Gamma == 0 {
		o.Gamma = 0.95
	}
	return o
}

// Result is a complete zoned compilation outcome.
type Result struct {
	// Geometry and Params are the machine the schedule was compiled for.
	Geometry hardware.ZoneGeometry
	Params   hardware.Params
	// SiteOf maps each qubit to its storage-zone site. Qubits are their own
	// slots: shuttling returns every atom to its storage site after each
	// round, so no permutation ever occurs.
	SiteOf []hardware.Site
	// FinalSlotOf is the identity mapping, recorded for API uniformity with
	// the routing compilers.
	FinalSlotOf []int
	// Schedule is the executable round program: each stage is one shuttle
	// round (one-qubit batch, then the entangling-zone 2Q batch).
	Schedule *pipeline.Schedule
	// Metrics summarises the compilation.
	Metrics metrics.Compiled
	// Trace is the movement trace consumed by the fidelity model.
	Trace fidelity.MovementTrace
	// Static is the gate-count summary consumed by the fidelity model.
	Static fidelity.Static
}

// ArchLabel is the metrics architecture label of the zoned compiler.
const ArchLabel = "Zoned-FPQA"

// Compile schedules circ on the zoned machine described by geo with physical
// parameters p.
func Compile(geo hardware.ZoneGeometry, p hardware.Params, circ *circuit.Circuit, opts Options) (*Result, error) {
	return CompileContext(context.Background(), geo, p, circ, opts)
}

// CompileContext is Compile with cancellation: the pipeline checks ctx
// between passes and the round scheduler checks it between rounds.
func CompileContext(ctx context.Context, geo hardware.ZoneGeometry, p hardware.Params, circ *circuit.Circuit, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if circ.N > geo.StorageCapacity() {
		return nil, fmt.Errorf("zoned: circuit needs %d qubits, storage zone has %d sites",
			circ.N, geo.StorageCapacity())
	}
	start := time.Now()
	st := &pipeline.State{
		Circ: circ,
		Seed: opts.Seed,
		Rng:  rand.New(rand.NewSource(opts.Seed)),
	}
	timings, err := pipeline.New(Passes(geo, p, opts)...).Run(ctx, st)
	if err != nil {
		return nil, err
	}
	m := st.Metrics
	m.CompileTime = time.Since(start)
	m.Passes = timings
	return &Result{
		Geometry:    geo,
		Params:      p,
		SiteOf:      st.SiteOf,
		FinalSlotOf: st.FinalSlotOf,
		Schedule:    st.Schedule,
		Metrics:     m,
		Trace:       st.Trace,
		Static:      st.Static,
	}, nil
}
