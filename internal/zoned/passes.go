package zoned

import (
	"context"
	"fmt"
	"sort"

	"atomique/internal/circuit"
	"atomique/internal/fidelity"
	"atomique/internal/graphs"
	"atomique/internal/hardware"
	"atomique/internal/metrics"
	"atomique/internal/move"
	"atomique/internal/pipeline"
)

// Passes returns the zoned pass list for the given machine and options:
// map-storage, schedule-rounds, fidelity. Every entry point drives this
// list through pipeline.Run, so per-pass timings are comparable with the
// flat Atomique pipeline's.
func Passes(geo hardware.ZoneGeometry, p hardware.Params, opts Options) []pipeline.Pass {
	opts = opts.withDefaults()
	return []pipeline.Pass{
		storageMapPass{geo: geo, opts: opts},
		roundSchedulePass{geo: geo, p: p},
		zoneFidelityPass{p: p},
	}
}

// PassNames returns the zoned pass names in execution order.
func PassNames() []string {
	return pipeline.New(Passes(hardware.DefaultZones(), hardware.NeutralAtom(), Options{})...).Names()
}

// storageMapPass partitions qubits into zone-resident groups: every qubit is
// storage-resident, and the gate-frequency ranking decides which storage
// rows it lives in — the hottest qubits take the rows adjacent to the
// entangling zone, minimising their per-round shuttle distance (the zoned
// analogue of the flat pipeline's qubit-array mapper).
type storageMapPass struct {
	geo  hardware.ZoneGeometry
	opts Options
}

func (storageMapPass) Name() string { return "map-storage" }

func (pass storageMapPass) Run(_ context.Context, st *pipeline.State) error {
	n := st.Circ.N
	gf := graphs.GateFrequency(st.Circ, pass.opts.Gamma)
	order := make([]int, n)
	for q := range order {
		order[q] = q
	}
	sort.SliceStable(order, func(i, j int) bool {
		wi, wj := gf.VertexWeight(order[i]), gf.VertexWeight(order[j])
		if wi != wj {
			return wi > wj
		}
		return order[i] < order[j]
	})
	sites := make([]hardware.Site, n)
	for rank, q := range order {
		sites[q] = pass.geo.StorageSite(rank)
	}
	st.SiteOf = sites
	// Qubits are their own slots on a zoned machine: shuttling returns each
	// atom to its storage site, so no SWAP insertion and no permutation.
	identity := make([]int, n)
	for q := range identity {
		identity[q] = q
	}
	st.SlotOf = identity
	st.FinalSlotOf = identity
	return nil
}

// roundSchedulePass batches the dependency frontier into shuttle rounds:
// drain the executable one-qubit layers (Raman pulses in storage), pick up
// to EntangleSites frontier two-qubit gates, shuttle both atoms of each
// pair to a gate site, fire the Rydberg pulse, and shuttle them back. The
// final readout shuttle moves every qubit across to the readout zone. All
// transport accrues heating (move.DeltaNvib), tweezer transfers, and
// shuttle latency in the movement trace.
type roundSchedulePass struct {
	geo hardware.ZoneGeometry
	p   hardware.Params
}

func (roundSchedulePass) Name() string { return "schedule-rounds" }

func (pass roundSchedulePass) Run(ctx context.Context, st *pipeline.State) error {
	geo, p := pass.geo, pass.p
	n := st.Circ.N
	front := circuit.NewFrontier(circuit.NewDAG(st.Circ))
	nvib := make([]float64, n)
	sched := &pipeline.Schedule{}
	var trace fidelity.MovementTrace
	var stats pipeline.RouterStats
	transfers := 0

	// shuttle is one atom's round trip to a gate site.
	type shuttle struct {
		q    int
		d, t float64
	}

	for !front.Done() {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("zoned: cancelled mid-schedule: %w", err)
		}

		// Drain every currently executable one-qubit layer.
		var oneQ []pipeline.GateExec
		for {
			var batch []int
			for _, gi := range front.Front() {
				if !front.Gate(gi).IsTwoQubit() {
					batch = append(batch, gi)
				}
			}
			if len(batch) == 0 {
				break
			}
			for _, gi := range batch {
				g := front.Gate(gi)
				oneQ = append(oneQ, pipeline.GateExec{Op: g.Op, SlotA: g.Q0, SlotB: -1, Param: g.Param})
				front.Execute(gi)
			}
			stats.OneQLayers++
			stats.ExecTime += p.Time1Q
		}
		if front.Done() {
			if len(oneQ) > 0 {
				sched.Stages = append(sched.Stages, pipeline.Stage{OneQ: oneQ})
			}
			break
		}

		// One shuttle round: up to EntangleSites frontier two-qubit gates in
		// frontier (program) order; pair i occupies gate site i.
		var cand []int
		for _, gi := range front.Front() {
			if front.Gate(gi).IsTwoQubit() {
				cand = append(cand, gi)
			}
		}
		if len(cand) > geo.EntangleSites {
			cand = cand[:geo.EntangleSites]
		}
		var gates []pipeline.GateExec
		var moves []shuttle
		maxT := 0.0
		for site, gi := range cand {
			g := front.Gate(gi)
			for _, q := range []int{g.Q0, g.Q1} {
				d := geo.ShuttleDistance(st.SiteOf[q], site, p)
				t := geo.ShuttleTime(d, p)
				moves = append(moves, shuttle{q: q, d: d, t: t})
				if t > maxT {
					maxT = t
				}
			}
			gates = append(gates, pipeline.GateExec{Op: g.Op, SlotA: g.Q0, SlotB: g.Q1, Param: g.Param})
		}

		// Inbound leg: storage -> gate site. The atom transfers out of its
		// storage trap into the moving tweezer and stays there through the
		// gate, so each leg costs one transfer.
		for _, mv := range moves {
			nvib[mv.q] += move.DeltaNvib(mv.d, mv.t, p)
			trace.MoveNvib = append(trace.MoveNvib, nvib[mv.q])
			stats.TotalDist += mv.d
			transfers++
		}
		// The Rydberg pulse fires with both atoms of a pair held in moving
		// tweezers, so the effective n_vib per gate is the pair sum (the
		// AOD-AOD accounting of the flat router).
		for _, gi := range cand {
			g := front.Gate(gi)
			trace.GateNvib = append(trace.GateNvib, nvib[g.Q0]+nvib[g.Q1])
			front.Execute(gi)
		}
		// Outbound leg: gate site -> storage (transfer back into the trap).
		for _, mv := range moves {
			nvib[mv.q] += move.DeltaNvib(mv.d, mv.t, p)
			trace.MoveNvib = append(trace.MoveNvib, nvib[mv.q])
			stats.TotalDist += mv.d
			transfers++
		}

		trace.StageQubits = append(trace.StageQubits, n)
		trace.StageMoveTime = append(trace.StageMoveTime, 2*maxT)
		stats.ExecTime += 2*maxT + 2*p.TransferTime + p.Time2Q
		stats.Stages++
		sched.Stages = append(sched.Stages, pipeline.Stage{OneQ: oneQ, Gates: gates})

		// Cooling: when any atom crosses the threshold, every heated atom is
		// swapped into a cold trap (two CZ each, like the flat router).
		hot := false
		for _, v := range nvib {
			if v > p.NvibCool {
				hot = true
				break
			}
		}
		if hot {
			heated := 0
			for i, v := range nvib {
				if v > 0 {
					heated++
					nvib[i] = 0
				}
			}
			trace.CoolingAtomCounts = append(trace.CoolingAtomCounts, heated)
			stats.Coolings++
			stats.ExecTime += 2 * p.Time2Q
		}
	}

	// Final readout shuttle: every qubit crosses both gaps to the readout
	// zone in one parallel transport stage.
	if n > 0 {
		maxT := 0.0
		for q := 0; q < n; q++ {
			d := geo.ReadoutDistance(st.SiteOf[q], p)
			t := geo.ShuttleTime(d, p)
			nvib[q] += move.DeltaNvib(d, t, p)
			trace.MoveNvib = append(trace.MoveNvib, nvib[q])
			stats.TotalDist += d
			transfers += 2 // storage pickup + readout-zone dropoff
			if t > maxT {
				maxT = t
			}
		}
		trace.StageQubits = append(trace.StageQubits, n)
		trace.StageMoveTime = append(trace.StageMoveTime, maxT)
		stats.ExecTime += maxT + 2*p.TransferTime
	}

	st.Schedule = sched
	st.Trace = trace
	st.Router = stats
	st.Static.Transfers = transfers
	return nil
}

// zoneFidelityPass is the final stage: static gate accounting plus the
// fidelity model over the shuttle trace, summarised into the metrics
// record. CompileTime and Passes are filled by the caller once the pipeline
// returns.
type zoneFidelityPass struct{ p hardware.Params }

func (zoneFidelityPass) Name() string { return "fidelity" }

func (pass zoneFidelityPass) Run(_ context.Context, st *pipeline.State) error {
	st.Static = fidelity.Static{
		NQubits:   st.Circ.N,
		N1Q:       st.Circ.Num1Q(),
		N1QLayers: st.Router.OneQLayers,
		N2Q:       st.Circ.Num2Q(),
		Depth2Q:   st.Router.Stages,
		Transfers: st.Static.Transfers,
	}
	bd := fidelity.Evaluate(pass.p, st.Static, st.Trace)
	moveStages := st.Router.Stages
	if st.Circ.N > 0 {
		moveStages++ // the readout shuttle
	}
	m := metrics.Compiled{
		Arch:          ArchLabel,
		NQubits:       st.Circ.N,
		N2Q:           st.Circ.Num2Q(),
		N1Q:           st.Circ.Num1Q(),
		Depth2Q:       st.Router.Stages,
		N1QLayers:     st.Router.OneQLayers,
		ExecutionTime: st.Router.ExecTime,
		MoveStages:    moveStages,
		TotalMoveDist: st.Router.TotalDist,
		CoolingEvents: st.Router.Coolings,
		Fidelity:      bd,
	}
	if moveStages > 0 {
		m.AvgMoveDist = st.Router.TotalDist / float64(moveStages)
	}
	st.Metrics = m
	return nil
}
