package compiler

import (
	"context"
	"fmt"

	"atomique/internal/hardware"
	"atomique/internal/noise"
)

// MaxNoisyShots bounds a single trajectory run; the service rejects larger
// requests at resolve time.
const MaxNoisyShots = 1 << 20

// AttachNoise runs the Monte-Carlo trajectory estimation for a completed
// compilation when Options.NoisyShots is set, populating Result.Noise. The
// noise model derives from the target's physical parameters and the
// backend's reported metrics (see internal/noise); the trajectories replay
// the result's execution witness. Timed-out results carry no witness and are
// skipped; a backend that completed without a witness is an error. Noise
// estimation is a post-compilation concern, so drivers — the compile
// service, the CLI, the experiment tables — call this rather than every
// backend reimplementing it.
func AttachNoise(ctx context.Context, tgt Target, res *Result, opts Options) error {
	if opts.SampleBits {
		return AttachSample(ctx, tgt, res, opts, nil)
	}
	model, w, err := noiseSetup(tgt, res, opts)
	if err != nil || res == nil || res.TimedOut || opts.NoisyShots == 0 {
		return err
	}
	est, err := noise.Simulate(ctx, model, w,
		noise.Run{Shots: opts.NoisyShots, Seed: opts.NoiseSeed, Engine: opts.Engine})
	if err != nil {
		return fmt.Errorf("%s: %w", res.Backend, err)
	}
	res.Noise = est
	return nil
}

// AttachSample runs the measurement-sampling trajectories for a completed
// compilation, populating Result.Sample with the histogram over
// Options.NoisyShots shots starting at Options.ShotOffset. emit, when
// non-nil, streams every shot record in global shot order (the /v1/sample
// chunked-HTTP path); an emit error aborts the run.
func AttachSample(ctx context.Context, tgt Target, res *Result, opts Options, emit func([]noise.ShotRecord) error) error {
	model, w, err := noiseSetup(tgt, res, opts)
	if err != nil || res == nil || res.TimedOut || opts.NoisyShots == 0 {
		return err
	}
	sr, err := noise.Sample(ctx, model, w, noise.SampleRun{
		Shots:  opts.NoisyShots,
		Offset: opts.ShotOffset,
		Seed:   opts.NoiseSeed,
		Engine: opts.Engine,
		Emit:   emit,
	})
	if err != nil {
		return fmt.Errorf("%s: %w", res.Backend, err)
	}
	res.Sample = sr
	return nil
}

// noiseSetup validates the trajectory request and derives the noise model
// and execution witness shared by estimation and sampling.
func noiseSetup(tgt Target, res *Result, opts Options) (noise.Model, noise.Witness, error) {
	if opts.NoisyShots == 0 || res == nil || res.TimedOut {
		return noise.Model{}, noise.Witness{}, nil
	}
	if opts.NoisyShots < 0 || opts.NoisyShots > MaxNoisyShots {
		return noise.Model{}, noise.Witness{}, fmt.Errorf("compiler: noisy shots must be in 1..%d, got %d", MaxNoisyShots, opts.NoisyShots)
	}
	if res.Program == nil {
		return noise.Model{}, noise.Witness{}, fmt.Errorf("compiler: backend %q produced no execution witness to simulate noisily", res.Backend)
	}
	p, err := noiseParams(tgt, res.Metrics.NQubits)
	if err != nil {
		return noise.Model{}, noise.Witness{}, err
	}
	model := noise.Build(p, res.Metrics).
		WithGateProbs(opts.Noise1Q, opts.Noise2Q).
		Scaled(opts.NoiseScale)
	return model, noise.Witness{NSlots: res.Program.NSlots, Gates: res.Program.Gates}, nil
}

// noiseParams resolves the physical parameters the noise model derives its
// gate-error channels from. Auto targets use the Table I neutral-atom
// constants — correct for every backend's canonical device because the
// paper's unbiased-comparison setting equalises gate fidelities across
// families (the movement channels come from the analytic breakdown, which
// the backend computed with its true parameters either way).
func noiseParams(tgt Target, nQubits int) (hardware.Params, error) {
	switch tgt.Kind {
	case KindFPQA:
		cfg, err := tgt.Hardware(nQubits)
		if err != nil {
			return hardware.Params{}, err
		}
		return cfg.Params, nil
	case KindZoned:
		_, p, err := tgt.ZoneSetup(nQubits)
		return p, err
	case KindCoupling:
		a, err := tgt.Arch(nQubits, tgt.Coupling.Family)
		if err != nil {
			return hardware.Params{}, err
		}
		return a.Params, nil
	default:
		return hardware.NeutralAtom(), nil
	}
}
