package compiler

import (
	"fmt"

	"atomique/internal/arch"
	"atomique/internal/hardware"
)

// Kind discriminates the device families a Target can describe.
type Kind string

// Target kinds.
const (
	// KindAuto (the zero value) asks the backend for its canonical device
	// sized for the circuit being compiled.
	KindAuto Kind = ""
	// KindFPQA is a reconfigurable neutral-atom machine: one SLM plus
	// movable AOD arrays (hardware.Config).
	KindFPQA Kind = "fpqa"
	// KindCoupling is a fixed-topology device described by a coupling-graph
	// family (arch.Arch).
	KindCoupling Kind = "coupling"
	// KindZoned is a zoned neutral-atom machine: storage, Rydberg-entangling,
	// and readout zones with inter-zone atom shuttling
	// (hardware.ZoneGeometry).
	KindZoned Kind = "zoned"
)

// Coupling-graph families for KindCoupling targets, matching the paper's
// fixed-topology baselines (Fig 13).
const (
	FamilySuperconducting = "superconducting" // IBM 127-qubit heavy-hex
	FamilyRectangular     = "rectangular"     // fixed atom array, grid coupling
	FamilyTriangular      = "triangular"      // fixed atom array, triangular coupling (Geyser)
	FamilyLongRange       = "long-range"      // Baker long-range FAA (reach 1.6 sites)
)

// Families lists the valid coupling families.
func Families() []string {
	return []string{FamilySuperconducting, FamilyRectangular, FamilyTriangular, FamilyLongRange}
}

// CouplingSpec describes a fixed-topology device by generator family rather
// than explicit adjacency, which keeps it compact, validated, and
// JSON-serializable.
type CouplingSpec struct {
	// Family selects the coupling generator (see Families).
	Family string `json:"family"`
	// Qubits sizes the device (0 = size for the circuit at compile time;
	// ignored by FamilySuperconducting, which is the fixed 127-qubit
	// heavy-hex).
	Qubits int `json:"qubits,omitempty"`
	// Params overrides the family's default physical parameters when set.
	Params *hardware.Params `json:"params,omitempty"`
}

// ZonedSpec describes a zoned neutral-atom machine: the zone geometry plus
// an optional physical-parameter override (nil keeps the Table I neutral-atom
// constants, like CouplingSpec).
type ZonedSpec struct {
	// Geometry is the storage/entangling/readout zone layout.
	Geometry hardware.ZoneGeometry `json:"geometry"`
	// Params overrides the default physical parameters when set.
	Params *hardware.Params `json:"params,omitempty"`
}

// Target is a validated, JSON-serializable device description that unifies
// the repository's three machine models: reconfigurable FPQA arrays
// (hardware.Config), fixed-atom coupling graphs (arch.Arch), and zoned atom
// arrays (hardware.ZoneGeometry). Exactly the field matching Kind is set.
type Target struct {
	Kind     Kind             `json:"kind,omitempty"`
	FPQA     *hardware.Config `json:"fpqa,omitempty"`
	Coupling *CouplingSpec    `json:"coupling,omitempty"`
	Zoned    *ZonedSpec       `json:"zoned,omitempty"`
}

// FPQA wraps a reconfigurable-array machine description as a Target.
func FPQA(cfg hardware.Config) Target {
	return Target{Kind: KindFPQA, FPQA: &cfg}
}

// Coupling describes a fixed-topology device of the given family sized for
// qubits (0 = size for the circuit at compile time).
func Coupling(family string, qubits int) Target {
	return Target{Kind: KindCoupling, Coupling: &CouplingSpec{Family: family, Qubits: qubits}}
}

// CouplingWithParams is Coupling with a physical-parameter override (the
// Fig 18 sensitivity sweeps mutate baseline parameters).
func CouplingWithParams(family string, qubits int, p hardware.Params) Target {
	return Target{Kind: KindCoupling, Coupling: &CouplingSpec{Family: family, Qubits: qubits, Params: &p}}
}

// Zoned wraps a zoned-machine geometry as a Target.
func Zoned(geo hardware.ZoneGeometry) Target {
	return Target{Kind: KindZoned, Zoned: &ZonedSpec{Geometry: geo}}
}

// ZonedWithParams is Zoned with a physical-parameter override.
func ZonedWithParams(geo hardware.ZoneGeometry, p hardware.Params) Target {
	return Target{Kind: KindZoned, Zoned: &ZonedSpec{Geometry: geo, Params: &p}}
}

// Validate checks structural consistency: the kind is known, exactly the
// matching payload is present, and the payload itself is sensible.
func (t Target) Validate() error {
	switch t.Kind {
	case KindAuto:
		if t.FPQA != nil || t.Coupling != nil || t.Zoned != nil {
			return fmt.Errorf("compiler: auto target must not carry a device payload")
		}
		return nil
	case KindFPQA:
		if t.FPQA == nil {
			return fmt.Errorf("compiler: fpqa target missing machine description")
		}
		if t.Coupling != nil || t.Zoned != nil {
			return fmt.Errorf("compiler: fpqa target must not carry another device payload")
		}
		return t.FPQA.Validate()
	case KindZoned:
		if t.Zoned == nil {
			return fmt.Errorf("compiler: zoned target missing zone geometry")
		}
		if t.FPQA != nil || t.Coupling != nil {
			return fmt.Errorf("compiler: zoned target must not carry another device payload")
		}
		return t.Zoned.Geometry.Validate()
	case KindCoupling:
		if t.Coupling == nil {
			return fmt.Errorf("compiler: coupling target missing spec")
		}
		if t.FPQA != nil || t.Zoned != nil {
			return fmt.Errorf("compiler: coupling target must not carry another device payload")
		}
		if t.Coupling.Qubits < 0 {
			return fmt.Errorf("compiler: coupling qubit count %d negative", t.Coupling.Qubits)
		}
		for _, f := range Families() {
			if t.Coupling.Family == f {
				return nil
			}
		}
		return fmt.Errorf("compiler: unknown coupling family %q (valid: %v)", t.Coupling.Family, Families())
	default:
		return fmt.Errorf("compiler: unknown target kind %q", t.Kind)
	}
}

// Hardware materialises the target as an FPQA machine. nQubits sizes the
// default machine for auto targets.
func (t Target) Hardware(nQubits int) (hardware.Config, error) {
	switch t.Kind {
	case KindAuto:
		return DefaultFPQAConfig(nQubits), nil
	case KindFPQA:
		if err := t.Validate(); err != nil {
			return hardware.Config{}, err
		}
		return *t.FPQA, nil
	default:
		return hardware.Config{}, fmt.Errorf("compiler: %s target is not an FPQA machine", t.Kind)
	}
}

// ZoneSetup materialises the target as a zoned machine: the zone geometry
// plus the physical parameters it runs with. nQubits sizes the default
// geometry for auto targets.
func (t Target) ZoneSetup(nQubits int) (hardware.ZoneGeometry, hardware.Params, error) {
	switch t.Kind {
	case KindAuto:
		return hardware.ZonesFor(nQubits), hardware.NeutralAtom(), nil
	case KindZoned:
		if err := t.Validate(); err != nil {
			return hardware.ZoneGeometry{}, hardware.Params{}, err
		}
		p := hardware.NeutralAtom()
		if t.Zoned.Params != nil {
			p = *t.Zoned.Params
		}
		return t.Zoned.Geometry, p, nil
	default:
		return hardware.ZoneGeometry{}, hardware.Params{},
			fmt.Errorf("compiler: %s target is not a zoned machine", t.Kind)
	}
}

// Arch materialises the target as a fixed-topology architecture. nQubits
// sizes grid families when the spec leaves Qubits at 0 (and for auto
// targets); fallbackFamily is the family auto targets resolve to.
func (t Target) Arch(nQubits int, fallbackFamily string) (arch.Arch, error) {
	spec := CouplingSpec{Family: fallbackFamily}
	switch t.Kind {
	case KindAuto:
	case KindCoupling:
		if err := t.Validate(); err != nil {
			return arch.Arch{}, err
		}
		spec = *t.Coupling
	default:
		return arch.Arch{}, fmt.Errorf("compiler: %s target is not a fixed-topology device", t.Kind)
	}
	n := spec.Qubits
	if n <= 0 {
		n = nQubits
	}
	var a arch.Arch
	switch spec.Family {
	case FamilySuperconducting:
		a = arch.Superconducting()
	case FamilyRectangular:
		a = arch.FAARectangular(n)
	case FamilyTriangular:
		a = arch.FAATriangular(n)
	case FamilyLongRange:
		a = arch.BakerLongRange(n)
	default:
		return arch.Arch{}, fmt.Errorf("compiler: unknown coupling family %q (valid: %v)", spec.Family, Families())
	}
	if spec.Params != nil {
		a.Params = *spec.Params
	}
	return a, nil
}

// String renders a short label for logs and errors.
func (t Target) String() string {
	switch t.Kind {
	case KindAuto:
		return "auto"
	case KindFPQA:
		if t.FPQA == nil {
			return "fpqa(?)"
		}
		return fmt.Sprintf("fpqa(%dx%d SLM + %d AODs)", t.FPQA.SLM.Rows, t.FPQA.SLM.Cols, len(t.FPQA.AODs))
	case KindZoned:
		if t.Zoned == nil {
			return "zoned(?)"
		}
		g := t.Zoned.Geometry
		return fmt.Sprintf("zoned(%dx%d storage + %d gate sites)",
			g.StorageRows, g.StorageCols, g.EntangleSites)
	case KindCoupling:
		if t.Coupling == nil {
			return "coupling(?)"
		}
		if t.Coupling.Qubits > 0 {
			return fmt.Sprintf("coupling(%s, %dQ)", t.Coupling.Family, t.Coupling.Qubits)
		}
		return fmt.Sprintf("coupling(%s)", t.Coupling.Family)
	default:
		return string(t.Kind)
	}
}

// DefaultFPQAConfig returns the paper's default machine (10x10 SLM + two
// 10x10 AODs), grown to square arrays just large enough when the circuit
// exceeds the default 300-site capacity — the sizing rule the experiment
// drivers use throughout the evaluation.
func DefaultFPQAConfig(nQubits int) hardware.Config {
	cfg := hardware.DefaultConfig()
	if nQubits > cfg.Capacity() {
		side := cfg.SLM.Rows
		for 3*side*side < nQubits {
			side++
		}
		cfg = hardware.SquareConfig(side, 2)
	}
	return cfg
}
