package compiler

import (
	"fmt"
	"sort"
	"sync"
)

// registry is the process-wide backend table. Backends self-register from
// init functions (internal/compiler/backends); importing that package makes
// every built-in compiler reachable through Lookup.
var (
	regMu    sync.RWMutex
	registry = make(map[string]Backend)
)

// Register adds a backend under its Name. It panics on an empty name or a
// duplicate registration — both are programmer errors that must fail at
// process start, not at request time.
func Register(b Backend) {
	name := b.Name()
	if name == "" {
		panic("compiler: Register with empty backend name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("compiler: backend %q registered twice", name))
	}
	registry[name] = b
}

// Lookup returns the backend registered under name.
func Lookup(name string) (Backend, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	b, ok := registry[name]
	return b, ok
}

// List returns every registered backend sorted by name.
func List() []Backend {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Backend, 0, len(registry))
	for _, b := range registry {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Names returns the sorted registered backend names.
func Names() []string {
	bs := List()
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = b.Name()
	}
	return names
}
