package compiler

import (
	"encoding/json"
	"reflect"
	"testing"

	"atomique/internal/hardware"
)

// FuzzTargetJSON asserts the Target decoder's contract on arbitrary JSON —
// the bytes the compile service accepts in requests and hashes into cache
// keys. Decoding either fails cleanly or yields a Target whose Validate
// never panics; a Target that validates must also materialise its machine
// without error and survive a marshal/unmarshal round trip that validates
// and materialises identically (the premise of the service's canonical-JSON
// cache keying). The zone-geometry payload (KindZoned) is the newest
// decoder surface; its seeds cover valid, oversized, and negative
// geometries.
func FuzzTargetJSON(f *testing.F) {
	seed := func(t Target) {
		js, err := json.Marshal(t)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(js))
	}
	seed(Target{})
	seed(FPQA(hardware.DefaultConfig()))
	seed(Coupling(FamilyTriangular, 16))
	seed(CouplingWithParams(FamilyLongRange, 0, hardware.Superconducting()))
	seed(Zoned(hardware.DefaultZones()))
	seed(Zoned(hardware.ZonesFor(200)))
	seed(ZonedWithParams(hardware.ZonesFor(8), hardware.NeutralAtom()))
	for _, s := range []string{
		`{"kind":"zoned"}`,
		`{"kind":"zoned","zoned":{"geometry":{}}}`,
		`{"kind":"zoned","zoned":{"geometry":{"storageRows":-1,"storageCols":4,"entangleSites":2,"zoneGap":6e-05,"shuttleSpeed":0.55}}}`,
		`{"kind":"zoned","zoned":{"geometry":{"storageRows":99999999,"storageCols":99999999,"entangleSites":1,"zoneGap":1,"shuttleSpeed":1}}}`,
		`{"kind":"zoned","fpqa":{}}`,
		`{"kind":"fpqa","zoned":{"geometry":{}}}`,
		`{"kind":"nope"}`,
		`{"kind":"coupling","coupling":{"family":"hexagonal"}}`,
		`{`,
		`null`,
		`[]`,
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		var tgt Target
		if err := json.Unmarshal([]byte(src), &tgt); err != nil {
			return
		}
		if err := tgt.Validate(); err != nil {
			return
		}
		// A validated target materialises without error.
		switch tgt.Kind {
		case KindFPQA, KindAuto:
			if _, err := tgt.Hardware(8); err != nil {
				t.Fatalf("valid %s target failed to materialise a machine: %v", tgt.Kind, err)
			}
		}
		switch tgt.Kind {
		case KindCoupling, KindAuto:
			if _, err := tgt.Arch(8, FamilyRectangular); err != nil {
				t.Fatalf("valid %s target failed to materialise an arch: %v", tgt.Kind, err)
			}
		}
		if tgt.Kind == KindZoned || tgt.Kind == KindAuto {
			geo, _, err := tgt.ZoneSetup(8)
			if err != nil {
				t.Fatalf("valid %s target failed to materialise zones: %v", tgt.Kind, err)
			}
			if err := geo.Validate(); err != nil {
				t.Fatalf("materialised zone geometry invalid: %v", err)
			}
		}
		// Round trip: canonical JSON re-decodes to an equal, valid target.
		js, err := json.Marshal(tgt)
		if err != nil {
			t.Fatalf("valid target failed to marshal: %v", err)
		}
		var rt Target
		if err := json.Unmarshal(js, &rt); err != nil {
			t.Fatalf("canonical JSON failed to decode: %v\n%s", err, js)
		}
		if err := rt.Validate(); err != nil {
			t.Fatalf("round-tripped target invalid: %v\n%s", err, js)
		}
		if !reflect.DeepEqual(tgt, rt) {
			t.Fatalf("round trip changed the target:\nbefore: %+v\nafter:  %+v", tgt, rt)
		}
	})
}
