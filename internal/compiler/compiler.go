// Package compiler defines the unified multi-backend compilation API. Every
// compiler in this repository — Atomique's pass pipeline (internal/core), the
// fixed-topology SABRE baselines (internal/arch), Geyser (internal/geyser),
// Q-Pilot (internal/qpilot), and the solver references (internal/solverref) —
// is exposed as a Backend registered under a stable name, compiled against a
// validated Target device description, and reports a common Result envelope.
// The CLI (-backend), the compile service (the request "backend" field and
// GET /v1/backends), and the experiment drivers all select compilers through
// the registry, so a future backend (a ZAP-style zoned compiler, an
// Arctic-style scheduler) is a drop-in Register call.
package compiler

import (
	"context"
	"fmt"
	"math"
	"strings"

	"atomique/internal/circuit"
	"atomique/internal/metrics"
	"atomique/internal/noise"
)

// Backend is one registered compiler. Implementations must be safe for
// concurrent use: the service worker pool calls Compile from many goroutines.
type Backend interface {
	// Name is the stable registry key ("atomique", "geyser", ...).
	Name() string
	// Capabilities describes what the backend supports; discovery endpoints
	// and the conformance suite key off it.
	Capabilities() Capabilities
	// Compile runs the backend on circ for the target device. The zero
	// Target selects the backend's canonical device sized for the circuit.
	// Backends honour ctx cancellation at minimum on entry; long-running
	// backends also check it while compiling.
	Compile(ctx context.Context, tgt Target, circ *circuit.Circuit, opts Options) (*Result, error)
}

// Capabilities declares a backend's contract.
type Capabilities struct {
	// Description is a one-line human-readable summary.
	Description string `json:"description"`
	// FPQA: accepts KindFPQA targets (reconfigurable SLM+AOD machines).
	FPQA bool `json:"fpqa"`
	// Coupling: accepts KindCoupling targets (fixed-topology devices).
	Coupling bool `json:"coupling"`
	// Zoned: accepts KindZoned targets (storage/entangling/readout zones
	// with inter-zone shuttling).
	Zoned bool `json:"zoned"`
	// Exact: honours Options.Exact (an exponential exact solver mode).
	Exact bool `json:"exact"`
	// Budget: honours Options.BudgetSeconds (anytime wall-clock budgets,
	// reporting Result.TimedOut on exhaustion).
	Budget bool `json:"budget"`
	// Movement: the schedule physically moves atoms (movement fidelity
	// terms are populated).
	Movement bool `json:"movement"`
	// Routes: the backend routes via SWAP insertion and preserves the
	// two-qubit interaction multiset, so for circuits native to the target
	// Metrics.N2Q == input 2Q count + Metrics.AddedCNOTs.
	Routes bool `json:"routes"`
	// Deterministic: identical (target, circuit, options) inputs produce
	// identical metrics up to wall-clock timings in the backend's default
	// option configuration. Anytime modes that spend a wall-clock budget
	// exploring (e.g. solverref's Exact) are excluded: their metrics depend
	// on how far the budget reached.
	Deterministic bool `json:"deterministic"`
	// WitnessQubitFactor scales circuit width to the execution witness's
	// register width (0 = 1: the witness adds no ancilla slots on the
	// backend's canonical device). Q-Pilot's parity ladders run through one
	// flying ancilla per two compute qubits, factor 1.5. Pre-compile width
	// checks — the service's noisy-shot resolve guard — use it to reject
	// trajectory simulations that cannot fit the dense replay before any
	// compile work is spent.
	WitnessQubitFactor float64 `json:"witnessQubitFactor,omitempty"`
}

// WitnessWidth predicts the execution-witness register width for an n-qubit
// circuit on the backend's canonical device. Explicit device overrides can
// still exceed it (a fixed 127-qubit heavy-hex target holds any circuit);
// post-compile checks remain the backstop for those.
func (c Capabilities) WitnessWidth(n int) int {
	f := c.WitnessQubitFactor
	if f < 1 {
		f = 1
	}
	return int(math.Ceil(float64(n) * f))
}

// Options is the backend-independent option envelope. Backends consume the
// fields they understand and ignore the rest; the zero value is every
// backend's default configuration. All fields participate in the service's
// content-addressed cache key, so they must remain JSON-serializable.
type Options struct {
	// Seed drives every randomised tie-break (all backends).
	Seed int64 `json:"seed,omitempty"`
	// Gamma is Atomique's gate-frequency decay (0 = default 0.95).
	Gamma float64 `json:"gamma,omitempty"`

	// Atomique ablation switches (Fig 21).
	SerialRouter     bool `json:"serialRouter,omitempty"`
	DenseMapper      bool `json:"denseMapper,omitempty"`
	RandomAtomMapper bool `json:"randomAtomMapper,omitempty"`

	// Atomique constraint relaxations (Fig 22).
	RelaxAddressing bool `json:"relaxAddressing,omitempty"`
	RelaxOrder      bool `json:"relaxOrder,omitempty"`
	RelaxOverlap    bool `json:"relaxOverlap,omitempty"`

	// Exact selects the exponential exact mode of solver-style backends
	// (solverref: Tan-Solver instead of Tan-IterP).
	Exact bool `json:"exact,omitempty"`
	// BudgetSeconds bounds wall-clock compile time for anytime/solver
	// backends (0 = backend default).
	BudgetSeconds float64 `json:"budgetSeconds,omitempty"`

	// NoisyShots enables Monte-Carlo trajectory noise estimation after
	// compilation (0 = off): the execution witness is replayed this many
	// times under sampled error events and the empirical fidelity rides in
	// Result.Noise. A post-compilation concern handled by AttachNoise —
	// drivers (service, CLI, experiments) invoke it; backends ignore the
	// field. Participates in the service cache key like every option, so
	// noisy and ideal results never alias.
	NoisyShots int `json:"noisyShots,omitempty"`
	// NoiseSeed seeds trajectory sampling, independently of Seed.
	NoiseSeed int64 `json:"noiseSeed,omitempty"`
	// Engine selects the trajectory simulation engine ("auto", "dense",
	// "stab"; empty = auto): auto dispatches Clifford witnesses to the
	// stabilizer engine and everything else to the dense state-vector.
	// Part of the cache key, so runs pinned to different engines never
	// alias.
	Engine string `json:"engine,omitempty"`
	// SampleBits switches the trajectory run from fidelity estimation to
	// measurement sampling: NoisyShots trajectories are measured in the
	// computational basis and the histogram rides in Result.Sample (the
	// /v1/sample product). Participates in the cache key, so sampled and
	// estimated runs never alias.
	SampleBits bool `json:"sampleBits,omitempty"`
	// ShotOffset is the global index of the first sampled shot. Per-shot RNG
	// streams derive from (NoiseSeed, global index), so disjoint shot ranges
	// tile into one histogram — sharded and resumable sampling. Each range
	// is its own cache entry.
	ShotOffset int64 `json:"shotOffset,omitempty"`
	// NoiseScale multiplies every noise-channel probability (0 = 1.0), for
	// sensitivity probing.
	NoiseScale float64 `json:"noiseScale,omitempty"`
	// Noise1Q / Noise2Q override the hardware-derived per-gate depolarizing
	// probabilities when positive.
	Noise1Q float64 `json:"noise1Q,omitempty"`
	Noise2Q float64 `json:"noise2Q,omitempty"`
}

// ApplyRelax parses a comma-separated list of constraint IDs ("1", "2", "3",
// per Fig 22) and sets the corresponding relaxation switches, mirroring
// core.Options.ApplyRelax. Unknown or duplicate IDs are rejected with an
// error naming the valid set. Empty entries (and an empty spec) are allowed.
func (o *Options) ApplyRelax(spec string) error {
	seen := [4]bool{}
	for _, r := range strings.Split(spec, ",") {
		id := strings.TrimSpace(r)
		if id == "" {
			continue
		}
		var which int
		switch id {
		case "1":
			o.RelaxAddressing = true
			which = 1
		case "2":
			o.RelaxOrder = true
			which = 2
		case "3":
			o.RelaxOverlap = true
			which = 3
		default:
			return fmt.Errorf("compiler: unknown relax constraint %q (valid IDs: 1=addressing, 2=order, 3=overlap)", id)
		}
		if seen[which] {
			return fmt.Errorf("compiler: duplicate relax constraint %q", id)
		}
		seen[which] = true
	}
	return nil
}

// UnsupportedError reports a request for a capability the backend does not
// declare: an option (exact, budget) or a target kind outside its
// Capabilities. Callers can surface it as a client error (the compile
// service maps it to 400) and the conformance suite asserts every backend
// returns it — rather than silently ignoring the request — which is what
// keeps the Capabilities record honest.
type UnsupportedError struct {
	// Backend is the rejecting backend's registry name.
	Backend string
	// Feature names the unsupported request ("exact mode", "compile budget",
	// "zoned target", ...).
	Feature string
}

func (e *UnsupportedError) Error() string {
	return fmt.Sprintf("%s: backend does not support %s (see Capabilities)", e.Backend, e.Feature)
}

// CheckSupport validates a compile request against a backend's declared
// capabilities: option flags the backend does not honour and target kinds it
// cannot compile are rejected with *UnsupportedError. Every built-in adapter
// calls it on entry, so a capability flag and the backend's actual behaviour
// cannot drift apart silently.
func CheckSupport(name string, caps Capabilities, tgt Target, opts Options) error {
	if opts.Exact && !caps.Exact {
		return &UnsupportedError{Backend: name, Feature: "exact mode"}
	}
	if opts.BudgetSeconds != 0 && !caps.Budget {
		return &UnsupportedError{Backend: name, Feature: "compile budgets"}
	}
	switch tgt.Kind {
	case KindFPQA:
		if !caps.FPQA {
			return &UnsupportedError{Backend: name, Feature: "fpqa targets"}
		}
	case KindCoupling:
		if !caps.Coupling {
			return &UnsupportedError{Backend: name, Feature: "coupling targets"}
		}
	case KindZoned:
		if !caps.Zoned {
			return &UnsupportedError{Backend: name, Feature: "zoned targets"}
		}
	}
	return nil
}

// Program is a backend's compiled output as an executable witness: the flat
// gate stream over physical slots, in execution order, together with the
// final logical-to-slot placement. It is what the simulator-backed
// differential verification (internal/compiler/conformance) replays against
// the source circuit, so every backend must emit one for any compilation
// that ran to completion (TimedOut results are exempt). In-process only —
// never serialized.
type Program struct {
	// NSlots is the physical register width the gates act on.
	NSlots int
	// Gates is the executable stream; slot indices are in [0, NSlots).
	Gates []circuit.Gate
	// FinalSlot maps each logical qubit to the slot holding its state after
	// execution (routing permutes logical states among atoms).
	FinalSlot []int
}

// Result is the envelope every backend populates.
type Result struct {
	// Backend is the producing backend's registry name.
	Backend string `json:"backend"`
	// Metrics is the common evaluation record (gate counts, depth, fidelity
	// breakdown, per-pass timings where the backend runs as a pipeline).
	Metrics metrics.Compiled `json:"metrics"`
	// TimedOut reports that an anytime/solver backend exhausted its budget;
	// Metrics then carries only compile time.
	TimedOut bool `json:"timedOut,omitempty"`
	// Extra carries backend-specific scalar outputs (e.g. Geyser's block and
	// pulse counts) that have no slot in the common metrics record.
	Extra map[string]float64 `json:"extra,omitempty"`
	// Noise is the empirical fidelity estimate from Monte-Carlo trajectory
	// simulation, populated by AttachNoise when Options.NoisyShots > 0.
	Noise *noise.Estimate `json:"noise,omitempty"`
	// Sample is the measurement histogram from sampling trajectories,
	// populated instead of Noise when Options.SampleBits is set.
	Sample *noise.SampleResult `json:"sample,omitempty"`
	// Program is the compiled execution witness the differential
	// verification replays (nil only when TimedOut). Never serialized.
	Program *Program `json:"-"`
	// Artifact is the backend's rich native result for in-process consumers
	// (the atomique backend stores its *core.Result here so the CLI can
	// print schedules and render placements). Never serialized.
	Artifact any `json:"-"`
}
