// Package conformance is the shared backend contract suite: one table-driven
// battery run against every registered compiler backend. It checks the
// properties the rest of the system relies on — populated metrics, seed
// determinism (the service cache's premise), context cancellation, two-qubit
// accounting for routing backends, capabilities honesty (declared
// zone/exact/budget support is accepted, undeclared support is rejected with
// a structured *compiler.UnsupportedError), and semantic correctness: every
// completed compilation carries a compiler.Program witness that the
// state-vector simulator (internal/sim) replays against the source circuit,
// both on the fixed conformance workload and differentially on a shared
// corpus of random circuits (RunDifferential). New backends get all of it
// for free the moment they Register.
package conformance

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"atomique/internal/circuit"
	"atomique/internal/compiler"
	"atomique/internal/hardware"
	"atomique/internal/metrics"
	"atomique/internal/noise"
	"atomique/internal/sim"
	"atomique/internal/stab"
)

// Circuit returns the conformance workload: a 10-qubit circuit of H/RZ/CX
// layers with non-local interactions, so every backend must genuinely route.
// It deliberately uses only gates native to every target family (no ZZ, which
// the superconducting baseline would decompose and skew 2Q accounting).
func Circuit() *circuit.Circuit {
	c := circuit.New(10)
	for q := 0; q < c.N; q++ {
		c.H(q)
	}
	for _, d := range []int{1, 3, 5} {
		for i := 0; i < c.N; i++ {
			c.CX(i, (i+d)%c.N)
		}
		for q := 0; q < c.N; q++ {
			c.RZ(q, 0.25*float64(d))
		}
	}
	return c
}

// canonical strips wall-clock measurements so two runs of the same
// compilation compare equal.
func canonical(m metrics.Compiled) metrics.Compiled {
	m.CompileTime = 0
	passes := make([]metrics.PassTiming, len(m.Passes))
	copy(passes, m.Passes)
	for i := range passes {
		passes[i].Seconds = 0
	}
	if len(passes) == 0 {
		passes = nil
	}
	m.Passes = passes
	return m
}

// compile runs the backend on the conformance circuit with its default
// (auto) target.
func compile(t *testing.T, b compiler.Backend, opts compiler.Options) *compiler.Result {
	t.Helper()
	res, err := b.Compile(context.Background(), compiler.Target{}, Circuit(), opts)
	if err != nil {
		t.Fatalf("backend %q: %v", b.Name(), err)
	}
	if res == nil {
		t.Fatalf("backend %q returned nil result without error", b.Name())
	}
	return res
}

// Run executes the conformance battery against one backend.
func Run(t *testing.T, b compiler.Backend) {
	caps := b.Capabilities()
	circ := Circuit()

	t.Run("metrics", func(t *testing.T) {
		res := compile(t, b, compiler.Options{Seed: 11})
		if res.Backend != b.Name() {
			t.Errorf("result backend = %q, want %q", res.Backend, b.Name())
		}
		m := res.Metrics
		if m.Arch == "" {
			t.Error("metrics missing architecture label")
		}
		if m.NQubits != circ.N {
			t.Errorf("NQubits = %d, want %d", m.NQubits, circ.N)
		}
		if m.N2Q <= 0 {
			t.Errorf("N2Q = %d for a circuit with %d two-qubit gates", m.N2Q, circ.Num2Q())
		}
		if m.ExecutionTime < 0 || m.TotalMoveDist < 0 || m.Depth2Q < 0 {
			t.Errorf("negative metric in %+v", m)
		}
		if caps.Movement && m.FidelityTotal() <= 0 {
			t.Errorf("movement backend reports non-positive fidelity %v", m.FidelityTotal())
		}
	})

	t.Run("deterministic-per-seed", func(t *testing.T) {
		if !caps.Deterministic {
			t.Skip("backend does not claim determinism")
		}
		a := compile(t, b, compiler.Options{Seed: 11})
		c := compile(t, b, compiler.Options{Seed: 11})
		if !reflect.DeepEqual(canonical(a.Metrics), canonical(c.Metrics)) {
			t.Errorf("same-seed metrics diverge:\n%+v\nvs\n%+v", a.Metrics, c.Metrics)
		}
		if !reflect.DeepEqual(a.Extra, c.Extra) {
			t.Errorf("same-seed extras diverge: %v vs %v", a.Extra, c.Extra)
		}
		if a.TimedOut != c.TimedOut {
			t.Errorf("same-seed timeout flags diverge")
		}
	})

	t.Run("cancellation", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := b.Compile(ctx, compiler.Target{}, circ, compiler.Options{Seed: 11})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled-context compile: err = %v, want context.Canceled", err)
		}
	})

	t.Run("routing-2q-accounting", func(t *testing.T) {
		if !caps.Routes {
			t.Skip("backend does not route")
		}
		m := compile(t, b, compiler.Options{Seed: 11}).Metrics
		if m.AddedCNOTs != 3*m.SwapCount {
			t.Errorf("AddedCNOTs = %d, want 3*SwapCount = %d", m.AddedCNOTs, 3*m.SwapCount)
		}
		if want := circ.Num2Q() + m.AddedCNOTs; m.N2Q != want {
			t.Errorf("N2Q = %d, want input 2Q + added CNOTs = %d (pairs dropped or duplicated)",
				m.N2Q, want)
		}
	})

	t.Run("program-witness", func(t *testing.T) {
		res := compile(t, b, compiler.Options{Seed: 11})
		if res.TimedOut {
			t.Skip("compilation timed out; no witness owed")
		}
		if err := VerifyResult(circ, res); err != nil {
			t.Errorf("backend %q: %v", b.Name(), err)
		}
	})

	t.Run("capabilities-honesty", func(t *testing.T) {
		runHonesty(t, b)
	})
}

// wantUnsupported asserts that a compile attempt was rejected with the
// structured capability error.
func wantUnsupported(t *testing.T, name, feature string, err error) {
	t.Helper()
	var ue *compiler.UnsupportedError
	if !errors.As(err, &ue) {
		t.Errorf("backend %q: undeclared %s request: err = %v, want *compiler.UnsupportedError",
			name, feature, err)
	}
}

// runHonesty checks that the Capabilities record matches behaviour: a
// backend declaring zone/exact/budget support must accept those requests,
// and one that does not must reject them with *compiler.UnsupportedError
// instead of silently ignoring them.
func runHonesty(t *testing.T, b compiler.Backend) {
	caps := b.Capabilities()
	ctx := context.Background()

	t.Run("exact", func(t *testing.T) {
		if !caps.Exact {
			_, err := b.Compile(ctx, compiler.Target{}, Circuit(), compiler.Options{Seed: 11, Exact: true})
			wantUnsupported(t, b.Name(), "exact-mode", err)
			return
		}
		// Exact solvers are anytime optimisers: when the backend also takes
		// budgets, bound the probe so the suite stays fast (an Exact-only
		// backend runs at its default budget — budgets must not be forced on
		// a backend that does not declare them). Either completing or timing
		// out honours the option.
		opts := compiler.Options{Seed: 11, Exact: true}
		if caps.Budget {
			opts.BudgetSeconds = 0.2
		}
		res, err := b.Compile(ctx, compiler.Target{}, Circuit(), opts)
		if err != nil {
			t.Errorf("backend %q rejected its declared exact mode: %v", b.Name(), err)
		} else if res == nil {
			t.Errorf("backend %q returned nil exact result without error", b.Name())
		}
	})

	t.Run("budget", func(t *testing.T) {
		if !caps.Budget {
			_, err := b.Compile(ctx, compiler.Target{}, Circuit(), compiler.Options{Seed: 11, BudgetSeconds: 0.5})
			wantUnsupported(t, b.Name(), "budget", err)
			return
		}
		// A microsecond budget is below any real compilation: a
		// budget-honouring backend must report TimedOut, not an error and
		// not a silently complete result (the solverref timeout path).
		res, err := b.Compile(ctx, compiler.Target{}, Circuit(),
			compiler.Options{Seed: 11, BudgetSeconds: 1e-6})
		if err != nil {
			t.Fatalf("backend %q errored on an exhausted budget: %v", b.Name(), err)
		}
		if !res.TimedOut {
			t.Errorf("backend %q completed a 1us budget without TimedOut", b.Name())
		}
		if res.Program != nil {
			t.Errorf("backend %q attached a program witness to a timed-out result", b.Name())
		}
	})

	t.Run("zoned-target", func(t *testing.T) {
		tgt := compiler.Zoned(hardware.ZonesFor(Circuit().N))
		if !caps.Zoned {
			_, err := b.Compile(ctx, tgt, Circuit(), compiler.Options{Seed: 11})
			wantUnsupported(t, b.Name(), "zoned-target", err)
			return
		}
		res, err := b.Compile(ctx, tgt, Circuit(), compiler.Options{Seed: 11})
		if err != nil {
			t.Fatalf("backend %q rejected its declared zoned target: %v", b.Name(), err)
		}
		if err := VerifyResult(Circuit(), res); err != nil {
			t.Errorf("backend %q on explicit zoned target: %v", b.Name(), err)
		}
	})
}

// maxSimQubits bounds the witness width the dense verifier will replay. It
// is the dense trajectory engine's cap so a witness that dense-verifies here
// can always be simulated noisily too. Clifford witnesses bypass it entirely
// through the stabilizer engine, up to stab.MaxQubits.
const maxSimQubits = noise.MaxQubits

// VerifyResult checks a compilation's program witness is semantically
// equivalent to the source circuit up to the routing permutation: executing
// the witness on |0...0> must equal the source's output state embedded at
// the witness's final placement (all non-data slots back in |0>). It returns
// nil for a faithful compilation and a descriptive error otherwise.
//
// Dispatch is automatic: when both the source and the witness are
// Clifford-only, equivalence is established in the stabilizer tableau
// (internal/stab) — O(n³) bit operations, good to hundreds of qubits — and
// the dense state-vector replay is the fallback for everything else, capped
// at maxSimQubits.
func VerifyResult(src *circuit.Circuit, res *compiler.Result) error {
	return VerifyResultEngine(src, res, noise.EngineAuto)
}

// VerifyResultEngine is VerifyResult with the replay engine pinned — the
// hook the engine cross-check suite uses to demand that the dense and
// stabilizer verifiers agree on the same compilation.
func VerifyResultEngine(src *circuit.Circuit, res *compiler.Result, engine string) error {
	p := res.Program
	if p == nil {
		return errors.New("completed result carries no program witness")
	}
	if p.NSlots < src.N {
		return fmt.Errorf("witness register (%d slots) narrower than the source (%d qubits)", p.NSlots, src.N)
	}
	if len(p.FinalSlot) != src.N {
		return fmt.Errorf("final placement covers %d qubits, want %d", len(p.FinalSlot), src.N)
	}
	seen := make([]bool, p.NSlots)
	for q, s := range p.FinalSlot {
		if s < 0 || s >= p.NSlots {
			return fmt.Errorf("qubit %d placed at slot %d, outside [0,%d)", q, s, p.NSlots)
		}
		if seen[s] {
			return fmt.Errorf("two qubits placed at slot %d", s)
		}
		seen[s] = true
	}
	for i, g := range p.Gates {
		if g.Q0 < 0 || g.Q0 >= p.NSlots || (g.IsTwoQubit() && (g.Q1 < 0 || g.Q1 >= p.NSlots)) {
			return fmt.Errorf("witness gate %d (%v) addresses a slot outside [0,%d)", i, g, p.NSlots)
		}
	}
	switch engine {
	case noise.EngineStab:
		return verifyStab(src, p)
	case noise.EngineDense:
		return verifyDense(src, p)
	default: // auto
		if src.IsClifford() && circuit.AllClifford(p.Gates) && p.NSlots <= stab.MaxQubits {
			return verifyStab(src, p)
		}
		return verifyDense(src, p)
	}
}

// verifyDense is the state-vector equivalence check (≤ maxSimQubits).
func verifyDense(src *circuit.Circuit, p *compiler.Program) error {
	if p.NSlots > maxSimQubits {
		return fmt.Errorf("witness register %d slots wide; the dense verifier handles at most %d (Clifford witnesses dispatch to the stabilizer verifier)", p.NSlots, maxSimQubits)
	}
	got := sim.MustNew(p.NSlots)
	for _, g := range p.Gates {
		got.Apply(g)
	}
	want := sim.MustNew(src.N)
	want.Run(src)
	expected := want.Embed(p.NSlots, p.FinalSlot)
	if f := sim.Fidelity(got, expected); f < 1-1e-7 {
		return fmt.Errorf("witness not equivalent to source: fidelity %v (%d gates, %d slots)",
			f, len(p.Gates), p.NSlots)
	}
	return nil
}

// verifyStab is the tableau equivalence check for Clifford compilations at
// any width: the expected state's tableau is built by running the source
// gates relabelled onto their final slots, and the witness state equals it
// iff every one of its stabilizer generators has expectation +1 in the
// witness tableau (the n generators uniquely determine a stabilizer state).
func verifyStab(src *circuit.Circuit, p *compiler.Program) error {
	got, err := stab.New(p.NSlots)
	if err != nil {
		return fmt.Errorf("witness tableau: %w", err)
	}
	if err := got.Run(p.Gates); err != nil {
		return fmt.Errorf("witness tableau: %w", err)
	}
	want, err := stab.New(p.NSlots)
	if err != nil {
		return fmt.Errorf("reference tableau: %w", err)
	}
	for i, g := range src.Gates {
		g.Q0 = p.FinalSlot[g.Q0]
		if g.IsTwoQubit() {
			g.Q1 = p.FinalSlot[g.Q1]
		}
		if err := want.ApplyGate(g); err != nil {
			return fmt.Errorf("reference tableau: source gate %d: %w", i, err)
		}
	}
	for i := 0; i < p.NSlots; i++ {
		gen := want.StabilizerPauli(i)
		if e := got.Expectation(gen); e != 1 {
			return fmt.Errorf("witness not equivalent to source: stabilizer generator %d (%v) has expectation %d, want +1 (%d gates, %d slots)",
				i, gen, e, len(p.Gates), p.NSlots)
		}
	}
	return nil
}

// RandomCircuit returns one random circuit over n qubits mixing Clifford
// gates, rotations, and native ZZ interactions — the gate distribution every
// semantic property test in this repository draws from, exported so they
// cannot drift apart.
func RandomCircuit(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < gates; i++ {
		switch rng.Intn(8) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.X(rng.Intn(n))
		case 2:
			c.RZ(rng.Intn(n), rng.Float64()*6)
		case 3:
			c.RX(rng.Intn(n), rng.Float64()*6)
		case 4, 5:
			a, b := pick2(n, rng)
			c.CX(a, b)
		case 6:
			a, b := pick2(n, rng)
			c.CZ(a, b)
		case 7:
			a, b := pick2(n, rng)
			c.ZZ(a, b, rng.Float64()*6)
		}
	}
	return c
}

// RandomCliffordCircuit returns one random Clifford-only circuit over n
// qubits: the same gate mix as RandomCircuit, with every rotation pinned to
// a Clifford quarter-turn. It is the shared corpus generator for the
// stabilizer-vs-dense engine cross-checks.
func RandomCliffordCircuit(rng *rand.Rand, n, gates int) *circuit.Circuit {
	angles := []float64{math.Pi / 2, -math.Pi / 2, math.Pi}
	angle := func() float64 { return angles[rng.Intn(len(angles))] }
	c := circuit.New(n)
	for i := 0; i < gates; i++ {
		switch rng.Intn(8) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.X(rng.Intn(n))
		case 2:
			c.RZ(rng.Intn(n), angle())
		case 3:
			c.RX(rng.Intn(n), angle())
		case 4, 5:
			a, b := pick2(n, rng)
			c.CX(a, b)
		case 6:
			a, b := pick2(n, rng)
			c.CZ(a, b)
		case 7:
			a, b := pick2(n, rng)
			c.ZZ(a, b, angle())
		}
	}
	return c
}

// CliffordDifferentialCircuits returns the Clifford cross-check corpus:
// count Clifford circuits over 4..maxQubits qubits, deterministic per seed.
func CliffordDifferentialCircuits(seed int64, count, maxQubits int) []*circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*circuit.Circuit, count)
	for i := range out {
		n := 4 + rng.Intn(maxQubits-3)
		out[i] = RandomCliffordCircuit(rng, n, 10+rng.Intn(40))
	}
	return out
}

// DifferentialCircuits returns the shared random-circuit corpus of the
// differential verification: count circuits over 4..maxQubits qubits,
// generated deterministically from seed.
func DifferentialCircuits(seed int64, count, maxQubits int) []*circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*circuit.Circuit, count)
	for i := range out {
		n := 4 + rng.Intn(maxQubits-3)
		out[i] = RandomCircuit(rng, n, 10+rng.Intn(40))
	}
	return out
}

func pick2(n int, rng *rand.Rand) (int, int) {
	a := rng.Intn(n)
	b := rng.Intn(n - 1)
	if b >= a {
		b++
	}
	return a, b
}

// RelaxModes enumerates the flat router's constraint-relaxation
// configurations (Fig 22): each single relaxation plus all three combined.
func RelaxModes() []struct {
	Name string
	Opts compiler.Options
} {
	return []struct {
		Name string
		Opts compiler.Options
	}{
		{"relax-addressing", compiler.Options{RelaxAddressing: true}},
		{"relax-order", compiler.Options{RelaxOrder: true}},
		{"relax-overlap", compiler.Options{RelaxOverlap: true}},
		{"relax-all", compiler.Options{RelaxAddressing: true, RelaxOrder: true, RelaxOverlap: true}},
	}
}

// RunRelaxModes is the witness-backed verification of a router's constraint
// relaxations: every corpus circuit is compiled under each relaxation mode
// and the resulting program witness replayed against the source. Relaxing a
// scheduling constraint changes which gates share a stage — it must never
// change what the program computes, which is exactly what this asserts.
func RunRelaxModes(t *testing.T, b compiler.Backend, circuits []*circuit.Circuit) {
	t.Helper()
	for _, mode := range RelaxModes() {
		mode := mode
		t.Run(mode.Name, func(t *testing.T) {
			for i, c := range circuits {
				opts := mode.Opts
				opts.Seed = int64(100 + i)
				res, err := b.Compile(context.Background(), compiler.Target{}, c, opts)
				if err != nil {
					t.Fatalf("circuit %d (%d qubits, %d gates): %v", i, c.N, len(c.Gates), err)
				}
				if err := VerifyResult(c, res); err != nil {
					t.Errorf("circuit %d (%d qubits, %d gates): %v", i, c.N, len(c.Gates), err)
				}
			}
		})
	}
}

// RunDifferential is the simulator-backed differential verification: it
// compiles every corpus circuit through backend b (auto target, per-circuit
// seeds) and replays each witness against the source. Any semantic drift a
// backend introduces — dropped gates, a wrong decomposition, a bad final
// mapping — fails here with the offending circuit index.
func RunDifferential(t *testing.T, b compiler.Backend, circuits []*circuit.Circuit) {
	t.Helper()
	for i, c := range circuits {
		res, err := b.Compile(context.Background(), compiler.Target{}, c,
			compiler.Options{Seed: int64(100 + i)})
		if err != nil {
			t.Fatalf("circuit %d (%d qubits, %d gates): %v", i, c.N, len(c.Gates), err)
		}
		if res.TimedOut {
			t.Fatalf("circuit %d: unexpected timeout with default budget", i)
		}
		if err := VerifyResult(c, res); err != nil {
			t.Errorf("circuit %d (%d qubits, %d gates): %v", i, c.N, len(c.Gates), err)
		}
	}
}
