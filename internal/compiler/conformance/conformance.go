// Package conformance is the shared backend contract suite: one table-driven
// battery run against every registered compiler backend. It checks the
// properties the rest of the system relies on — populated metrics, seed
// determinism (the service cache's premise), context cancellation, and
// two-qubit accounting for routing backends. New backends get conformance
// coverage for free the moment they Register.
package conformance

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"atomique/internal/circuit"
	"atomique/internal/compiler"
	"atomique/internal/metrics"
)

// Circuit returns the conformance workload: a 10-qubit circuit of H/RZ/CX
// layers with non-local interactions, so every backend must genuinely route.
// It deliberately uses only gates native to every target family (no ZZ, which
// the superconducting baseline would decompose and skew 2Q accounting).
func Circuit() *circuit.Circuit {
	c := circuit.New(10)
	for q := 0; q < c.N; q++ {
		c.H(q)
	}
	for _, d := range []int{1, 3, 5} {
		for i := 0; i < c.N; i++ {
			c.CX(i, (i+d)%c.N)
		}
		for q := 0; q < c.N; q++ {
			c.RZ(q, 0.25*float64(d))
		}
	}
	return c
}

// canonical strips wall-clock measurements so two runs of the same
// compilation compare equal.
func canonical(m metrics.Compiled) metrics.Compiled {
	m.CompileTime = 0
	passes := make([]metrics.PassTiming, len(m.Passes))
	copy(passes, m.Passes)
	for i := range passes {
		passes[i].Seconds = 0
	}
	if len(passes) == 0 {
		passes = nil
	}
	m.Passes = passes
	return m
}

// compile runs the backend on the conformance circuit with its default
// (auto) target.
func compile(t *testing.T, b compiler.Backend, opts compiler.Options) *compiler.Result {
	t.Helper()
	res, err := b.Compile(context.Background(), compiler.Target{}, Circuit(), opts)
	if err != nil {
		t.Fatalf("backend %q: %v", b.Name(), err)
	}
	if res == nil {
		t.Fatalf("backend %q returned nil result without error", b.Name())
	}
	return res
}

// Run executes the conformance battery against one backend.
func Run(t *testing.T, b compiler.Backend) {
	caps := b.Capabilities()
	circ := Circuit()

	t.Run("metrics", func(t *testing.T) {
		res := compile(t, b, compiler.Options{Seed: 11})
		if res.Backend != b.Name() {
			t.Errorf("result backend = %q, want %q", res.Backend, b.Name())
		}
		m := res.Metrics
		if m.Arch == "" {
			t.Error("metrics missing architecture label")
		}
		if m.NQubits != circ.N {
			t.Errorf("NQubits = %d, want %d", m.NQubits, circ.N)
		}
		if m.N2Q <= 0 {
			t.Errorf("N2Q = %d for a circuit with %d two-qubit gates", m.N2Q, circ.Num2Q())
		}
		if m.ExecutionTime < 0 || m.TotalMoveDist < 0 || m.Depth2Q < 0 {
			t.Errorf("negative metric in %+v", m)
		}
		if caps.Movement && m.FidelityTotal() <= 0 {
			t.Errorf("movement backend reports non-positive fidelity %v", m.FidelityTotal())
		}
	})

	t.Run("deterministic-per-seed", func(t *testing.T) {
		if !caps.Deterministic {
			t.Skip("backend does not claim determinism")
		}
		a := compile(t, b, compiler.Options{Seed: 11})
		c := compile(t, b, compiler.Options{Seed: 11})
		if !reflect.DeepEqual(canonical(a.Metrics), canonical(c.Metrics)) {
			t.Errorf("same-seed metrics diverge:\n%+v\nvs\n%+v", a.Metrics, c.Metrics)
		}
		if !reflect.DeepEqual(a.Extra, c.Extra) {
			t.Errorf("same-seed extras diverge: %v vs %v", a.Extra, c.Extra)
		}
		if a.TimedOut != c.TimedOut {
			t.Errorf("same-seed timeout flags diverge")
		}
	})

	t.Run("cancellation", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := b.Compile(ctx, compiler.Target{}, circ, compiler.Options{Seed: 11})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled-context compile: err = %v, want context.Canceled", err)
		}
	})

	t.Run("routing-2q-accounting", func(t *testing.T) {
		if !caps.Routes {
			t.Skip("backend does not route")
		}
		m := compile(t, b, compiler.Options{Seed: 11}).Metrics
		if m.AddedCNOTs != 3*m.SwapCount {
			t.Errorf("AddedCNOTs = %d, want 3*SwapCount = %d", m.AddedCNOTs, 3*m.SwapCount)
		}
		if want := circ.Num2Q() + m.AddedCNOTs; m.N2Q != want {
			t.Errorf("N2Q = %d, want input 2Q + added CNOTs = %d (pairs dropped or duplicated)",
				m.N2Q, want)
		}
	})
}
