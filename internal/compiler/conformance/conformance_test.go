package conformance_test

import (
	"testing"

	"atomique/internal/compiler"
	"atomique/internal/compiler/conformance"

	_ "atomique/internal/compiler/backends" // register every built-in backend
)

// TestRegisteredBackendsConform runs the shared contract suite against every
// backend in the registry — currently the six built-ins, and automatically
// any future registration.
func TestRegisteredBackendsConform(t *testing.T) {
	backends := compiler.List()
	if len(backends) < 6 {
		t.Fatalf("registry has %d backends, want at least the 6 built-ins: %v",
			len(backends), compiler.Names())
	}
	for _, b := range backends {
		t.Run(b.Name(), func(t *testing.T) { conformance.Run(t, b) })
	}
}

// TestRelaxedRouterWitness closes the PR 4 follow-on: the flat router's
// constraint-relaxation modes (Fig 22) were covered only by metric-level
// tests; here each mode's output is witness-verified against the source on
// a shared random corpus, so a relaxation that corrupts gate order or drops
// an interaction fails semantically, not just statistically.
func TestRelaxedRouterWitness(t *testing.T) {
	b, ok := compiler.Lookup("atomique")
	if !ok {
		t.Fatal("atomique backend not registered")
	}
	circuits := conformance.DifferentialCircuits(43, 12, 10)
	conformance.RunRelaxModes(t, b, circuits)
}

// TestConformanceDifferential is the simulator-backed differential
// verification across every registered backend: one shared corpus of 50
// random circuits (up to 12 qubits), each compiled by each backend and
// replayed through internal/sim against its source. Before this suite, only
// the core pipeline had semantic-equivalence coverage; now it is a registry
// contract.
func TestConformanceDifferential(t *testing.T) {
	circuits := conformance.DifferentialCircuits(42, 50, 12)
	for _, b := range compiler.List() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			t.Parallel()
			conformance.RunDifferential(t, b, circuits)
		})
	}
}
