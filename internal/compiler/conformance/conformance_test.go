package conformance_test

import (
	"context"
	"fmt"
	"math"
	"testing"

	"atomique/internal/bench"
	"atomique/internal/circuit"
	"atomique/internal/compiler"
	"atomique/internal/compiler/conformance"
	"atomique/internal/hardware"
	"atomique/internal/noise"

	_ "atomique/internal/compiler/backends" // register every built-in backend
)

// TestRegisteredBackendsConform runs the shared contract suite against every
// backend in the registry — currently the six built-ins, and automatically
// any future registration.
func TestRegisteredBackendsConform(t *testing.T) {
	backends := compiler.List()
	if len(backends) < 6 {
		t.Fatalf("registry has %d backends, want at least the 6 built-ins: %v",
			len(backends), compiler.Names())
	}
	for _, b := range backends {
		t.Run(b.Name(), func(t *testing.T) { conformance.Run(t, b) })
	}
}

// TestRelaxedRouterWitness closes the PR 4 follow-on: the flat router's
// constraint-relaxation modes (Fig 22) were covered only by metric-level
// tests; here each mode's output is witness-verified against the source on
// a shared random corpus, so a relaxation that corrupts gate order or drops
// an interaction fails semantically, not just statistically.
func TestRelaxedRouterWitness(t *testing.T) {
	b, ok := compiler.Lookup("atomique")
	if !ok {
		t.Fatal("atomique backend not registered")
	}
	circuits := conformance.DifferentialCircuits(43, 12, 10)
	conformance.RunRelaxModes(t, b, circuits)
}

// TestConformanceDifferential is the simulator-backed differential
// verification across every registered backend: one shared corpus of 50
// random circuits (up to 12 qubits), each compiled by each backend and
// replayed through internal/sim against its source. Before this suite, only
// the core pipeline had semantic-equivalence coverage; now it is a registry
// contract.
func TestConformanceDifferential(t *testing.T) {
	circuits := conformance.DifferentialCircuits(42, 50, 12)
	for _, b := range compiler.List() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			t.Parallel()
			conformance.RunDifferential(t, b, circuits)
		})
	}
}

// pauliGate builds a single-qubit Pauli gate addressed at a witness slot —
// the corruption probe of the engine cross-check.
func pauliGate(op string, slot int) circuit.Gate {
	c := circuit.New(slot + 1)
	switch op {
	case "x":
		c.X(slot)
	case "z":
		c.RZ(slot, math.Pi) // Z up to global phase
	default:
		panic("unknown corruption op")
	}
	return c.Gates[0]
}

// corrupt returns a copy of the result whose witness has one extra Pauli
// appended, leaving the original untouched.
func corrupt(res *compiler.Result, g circuit.Gate) *compiler.Result {
	p := *res.Program
	p.Gates = append(append([]circuit.Gate(nil), res.Program.Gates...), g)
	out := *res
	out.Program = &p
	return &out
}

// TestConformanceEngineCrossCheck pins the dense and stabilizer verifiers to
// each other on a shared Clifford corpus small enough for both: every
// backend's witness must pass both engines, and when the witness is corrupted
// with a trailing Pauli the two engines must return the same verdict. An X
// and a Z on the same slot cannot both stabilize a state (they anticommute),
// so at least one corruption per compilation is guaranteed to be caught — by
// both engines, or the cross-check fails.
func TestConformanceEngineCrossCheck(t *testing.T) {
	circuits := conformance.CliffordDifferentialCircuits(77, 20, 12)
	for _, b := range compiler.List() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			t.Parallel()
			for i, c := range circuits {
				res, err := b.Compile(context.Background(), compiler.Target{}, c,
					compiler.Options{Seed: int64(200 + i)})
				if err != nil {
					t.Fatalf("circuit %d: %v", i, err)
				}
				if err := conformance.VerifyResultEngine(c, res, noise.EngineDense); err != nil {
					t.Fatalf("circuit %d: dense verifier rejects a faithful witness: %v", i, err)
				}
				if err := conformance.VerifyResultEngine(c, res, noise.EngineStab); err != nil {
					t.Fatalf("circuit %d: stabilizer verifier rejects a faithful witness: %v", i, err)
				}
				caught := 0
				for _, op := range []string{"x", "z"} {
					bad := corrupt(res, pauliGate(op, 0))
					denseErr := conformance.VerifyResultEngine(c, bad, noise.EngineDense)
					stabErr := conformance.VerifyResultEngine(c, bad, noise.EngineStab)
					if (denseErr == nil) != (stabErr == nil) {
						t.Errorf("circuit %d: engines disagree on %s-corrupted witness: dense=%v stab=%v",
							i, op, denseErr, stabErr)
					}
					if denseErr != nil && stabErr != nil {
						caught++
					}
				}
				if caught == 0 {
					t.Errorf("circuit %d: neither X nor Z corruption detected", i)
				}
			}
		})
	}
}

// TestConformancePaperScale is the battery the dense verifier could never
// run: Clifford witnesses at the paper's array scales (64, 128 and 256
// qubits — GHZ chains, Bernstein-Vazirani, and coherent teleportation
// chains) compiled by every registered backend and verified through the
// stabilizer engine.
func TestConformancePaperScale(t *testing.T) {
	scenarios := []struct {
		name string
		circ *circuit.Circuit
	}{
		{"ghz-64", bench.GHZ(64)},
		{"ghz-128", bench.GHZ(128)},
		{"ghz-256", bench.GHZ(256)},
		{"bv-64", bench.BV(64, 16, 7)},
		{"bv-128", bench.BV(128, 32, 7)},
		{"bv-256", bench.BV(256, 64, 7)},
		{"teleport-63", bench.TeleportChain(63)},
		{"teleport-127", bench.TeleportChain(127)},
		{"teleport-255", bench.TeleportChain(255)},
	}
	for _, b := range compiler.List() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			t.Parallel()
			for i, sc := range scenarios {
				res, err := b.Compile(context.Background(), compiler.Target{}, sc.circ,
					compiler.Options{Seed: int64(300 + i)})
				if err != nil {
					t.Fatalf("%s: %v", sc.name, err)
				}
				if res.TimedOut {
					t.Fatalf("%s: unexpected timeout", sc.name)
				}
				if err := conformance.VerifyResultEngine(sc.circ, res, noise.EngineStab); err != nil {
					t.Errorf("%s: %v", sc.name, err)
				}
				// The automatic dispatcher must reach the same verdict — these
				// widths are unreachable for the dense fallback, so a pass
				// proves the Clifford classifier routed to the tableau.
				if err := conformance.VerifyResult(sc.circ, res); err != nil {
					t.Errorf("%s: auto dispatch: %v", sc.name, err)
				}
			}
		})
	}
}

// TestSurfaceCodeCycleZoned compiles the first QEC workload — rotated
// surface-code syndrome-extraction cycles at distances 5 and 7 (49 and 97
// qubits) — onto the zoned architecture and witness-verifies the result
// through the stabilizer engine.
func TestSurfaceCodeCycleZoned(t *testing.T) {
	b, ok := compiler.Lookup("zoned")
	if !ok {
		t.Fatal("zoned backend not registered")
	}
	for _, tc := range []struct{ d, rounds int }{{5, 1}, {7, 1}, {5, 2}} {
		name := fmt.Sprintf("d%d-r%d", tc.d, tc.rounds)
		t.Run(name, func(t *testing.T) {
			c := bench.SurfaceCodeCycle(tc.d, tc.rounds)
			tgt := compiler.Zoned(hardware.ZonesFor(c.N))
			res, err := b.Compile(context.Background(), tgt, c, compiler.Options{Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			if err := conformance.VerifyResult(c, res); err != nil {
				t.Errorf("surface-code cycle witness: %v", err)
			}
		})
	}
}
