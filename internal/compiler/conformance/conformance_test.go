package conformance_test

import (
	"testing"

	"atomique/internal/compiler"
	"atomique/internal/compiler/conformance"

	_ "atomique/internal/compiler/backends" // register every built-in backend
)

// TestRegisteredBackendsConform runs the shared contract suite against every
// backend in the registry — currently the five built-ins, and automatically
// any future registration.
func TestRegisteredBackendsConform(t *testing.T) {
	backends := compiler.List()
	if len(backends) < 5 {
		t.Fatalf("registry has %d backends, want at least the 5 built-ins: %v",
			len(backends), compiler.Names())
	}
	for _, b := range backends {
		t.Run(b.Name(), func(t *testing.T) { conformance.Run(t, b) })
	}
}
