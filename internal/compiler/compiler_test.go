package compiler

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"atomique/internal/circuit"
	"atomique/internal/hardware"
)

func TestTargetValidate(t *testing.T) {
	cases := []struct {
		name    string
		tgt     Target
		wantErr bool
	}{
		{"auto", Target{}, false},
		{"auto with payload", Target{FPQA: &hardware.Config{}}, true},
		{"fpqa default", FPQA(hardware.DefaultConfig()), false},
		{"fpqa invalid machine", FPQA(hardware.Config{SLM: hardware.ArraySpec{Rows: 3, Cols: 3}}), true},
		{"fpqa missing payload", Target{Kind: KindFPQA}, true},
		{"fpqa with coupling payload", Target{Kind: KindFPQA, FPQA: func() *hardware.Config { c := hardware.DefaultConfig(); return &c }(), Coupling: &CouplingSpec{Family: FamilyRectangular}}, true},
		{"coupling rectangular", Coupling(FamilyRectangular, 16), false},
		{"coupling zero qubits", Coupling(FamilyTriangular, 0), false},
		{"coupling negative qubits", Coupling(FamilyTriangular, -1), true},
		{"coupling unknown family", Coupling("hexagonal", 16), true},
		{"coupling missing spec", Target{Kind: KindCoupling}, true},
		{"zoned default", Zoned(hardware.DefaultZones()), false},
		{"zoned grown", Zoned(hardware.ZonesFor(500)), false},
		{"zoned missing payload", Target{Kind: KindZoned}, true},
		{"zoned invalid geometry", Zoned(hardware.ZoneGeometry{StorageRows: 4}), true},
		{"zoned with fpqa payload", Target{Kind: KindZoned,
			Zoned: &ZonedSpec{Geometry: hardware.DefaultZones()},
			FPQA:  func() *hardware.Config { c := hardware.DefaultConfig(); return &c }()}, true},
		{"auto with zoned payload", Target{Zoned: &ZonedSpec{Geometry: hardware.DefaultZones()}}, true},
		{"unknown kind", Target{Kind: "hybrid"}, true},
	}
	for _, tc := range cases {
		if err := tc.tgt.Validate(); (err != nil) != tc.wantErr {
			t.Errorf("%s: Validate() = %v, wantErr %v", tc.name, err, tc.wantErr)
		}
	}
}

func TestTargetJSONRoundTrip(t *testing.T) {
	for _, tgt := range []Target{
		{},
		FPQA(hardware.DefaultConfig()),
		Coupling(FamilyLongRange, 40),
		CouplingWithParams(FamilyRectangular, 20, hardware.NeutralAtom()),
		Zoned(hardware.DefaultZones()),
		ZonedWithParams(hardware.ZonesFor(150), hardware.NeutralAtom()),
	} {
		js, err := json.Marshal(tgt)
		if err != nil {
			t.Fatalf("marshal %s: %v", tgt, err)
		}
		var back Target
		if err := json.Unmarshal(js, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", tgt, err)
		}
		if !reflect.DeepEqual(tgt, back) {
			t.Errorf("round trip changed target: %+v -> %+v", tgt, back)
		}
		if err := back.Validate(); err != nil {
			t.Errorf("round-tripped %s invalid: %v", tgt, err)
		}
	}
}

func TestTargetMaterialisation(t *testing.T) {
	cfg, err := Target{}.Hardware(40)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Capacity() < 40 {
		t.Errorf("auto hardware capacity %d below circuit size", cfg.Capacity())
	}
	// Auto grows past the default 300 sites.
	big, err := Target{}.Hardware(500)
	if err != nil {
		t.Fatal(err)
	}
	if big.Capacity() < 500 {
		t.Errorf("grown capacity %d below 500", big.Capacity())
	}
	if _, err := Coupling(FamilyRectangular, 9).Hardware(9); err == nil {
		t.Error("coupling target materialised as FPQA hardware")
	}

	a, err := Coupling(FamilyTriangular, 9).Arch(4, FamilyRectangular)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "FAA-Triangular" || a.Coupling.N < 9 {
		t.Errorf("triangular arch = %s with %d sites", a.Name, a.Coupling.N)
	}
	// Auto target resolves to the fallback family sized for the circuit.
	a, err = Target{}.Arch(12, FamilyRectangular)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "FAA-Rectangular" || a.Coupling.N < 12 {
		t.Errorf("auto arch = %s with %d sites", a.Name, a.Coupling.N)
	}
	// Parameter overrides survive materialisation.
	p := hardware.NeutralAtom()
	p.CoherenceT1 = 99
	a, err = CouplingWithParams(FamilyLongRange, 16, p).Arch(16, FamilyRectangular)
	if err != nil {
		t.Fatal(err)
	}
	if a.Params.CoherenceT1 != 99 {
		t.Errorf("params override lost: T1 = %v", a.Params.CoherenceT1)
	}
	if _, err := FPQA(hardware.DefaultConfig()).Arch(10, FamilyRectangular); err == nil {
		t.Error("fpqa target materialised as fixed-topology arch")
	}

	// Zoned materialisation: auto sizes for the circuit, explicit geometry
	// and parameter overrides thread through, and cross-kind requests fail.
	geo, p, err := Target{}.ZoneSetup(150)
	if err != nil {
		t.Fatal(err)
	}
	if geo.StorageCapacity() < 150 {
		t.Errorf("auto zones capacity %d below circuit size", geo.StorageCapacity())
	}
	if p != hardware.NeutralAtom() {
		t.Errorf("auto zones params = %+v, want neutral-atom defaults", p)
	}
	slow := hardware.NeutralAtom()
	slow.CoherenceT1 = 0.5
	geo2 := hardware.DefaultZones()
	geo2.EntangleSites = 3
	g, p2, err := ZonedWithParams(geo2, slow).ZoneSetup(4)
	if err != nil {
		t.Fatal(err)
	}
	if g.EntangleSites != 3 || p2.CoherenceT1 != 0.5 {
		t.Errorf("zoned overrides lost: %+v, %+v", g, p2)
	}
	if _, _, err := FPQA(hardware.DefaultConfig()).ZoneSetup(4); err == nil {
		t.Error("fpqa target materialised as zones")
	}
	if _, err := Zoned(hardware.DefaultZones()).Hardware(4); err == nil {
		t.Error("zoned target materialised as FPQA hardware")
	}
	if _, err := Zoned(hardware.DefaultZones()).Arch(4, FamilyRectangular); err == nil {
		t.Error("zoned target materialised as fixed-topology arch")
	}
}

func TestCheckSupport(t *testing.T) {
	full := Capabilities{FPQA: true, Coupling: true, Zoned: true, Exact: true, Budget: true}
	for _, tc := range []struct {
		name    string
		caps    Capabilities
		tgt     Target
		opts    Options
		wantErr bool
	}{
		{"all declared", full, Zoned(hardware.DefaultZones()), Options{Exact: true, BudgetSeconds: 1}, false},
		{"undeclared exact", Capabilities{FPQA: true}, Target{}, Options{Exact: true}, true},
		{"undeclared budget", Capabilities{FPQA: true}, Target{}, Options{BudgetSeconds: 2}, true},
		{"undeclared zoned kind", Capabilities{FPQA: true}, Zoned(hardware.DefaultZones()), Options{}, true},
		{"undeclared fpqa kind", Capabilities{Zoned: true}, FPQA(hardware.DefaultConfig()), Options{}, true},
		{"undeclared coupling kind", Capabilities{FPQA: true}, Coupling(FamilyRectangular, 4), Options{}, true},
		{"auto always allowed", Capabilities{}, Target{}, Options{}, false},
	} {
		err := CheckSupport("probe", tc.caps, tc.tgt, tc.opts)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: CheckSupport = %v, wantErr %v", tc.name, err, tc.wantErr)
		}
		if err != nil {
			var ue *UnsupportedError
			if !errors.As(err, &ue) {
				t.Errorf("%s: error %T not *UnsupportedError", tc.name, err)
			} else if ue.Backend != "probe" {
				t.Errorf("%s: error names backend %q", tc.name, ue.Backend)
			}
		}
	}
}

func TestOptionsApplyRelax(t *testing.T) {
	var o Options
	if err := o.ApplyRelax("1, 3"); err != nil {
		t.Fatal(err)
	}
	if !o.RelaxAddressing || o.RelaxOrder || !o.RelaxOverlap {
		t.Errorf("relax flags = %+v", o)
	}
	if err := new(Options).ApplyRelax(""); err != nil {
		t.Errorf("empty spec rejected: %v", err)
	}
	var trail Options
	if err := trail.ApplyRelax("2,,"); err != nil {
		t.Errorf("trailing empty entries rejected: %v", err)
	}
	if !trail.RelaxOrder || trail.RelaxAddressing || trail.RelaxOverlap {
		t.Errorf("relax flags after \"2,,\" = %+v", trail)
	}
	if err := new(Options).ApplyRelax("4"); err == nil {
		t.Error("unknown constraint accepted")
	}
	if err := new(Options).ApplyRelax("2,2"); err == nil {
		t.Error("duplicate constraint accepted")
	}
}

// fakeBackend exercises the registry without touching real compilers.
type fakeBackend struct{ name string }

func (f fakeBackend) Name() string               { return f.name }
func (f fakeBackend) Capabilities() Capabilities { return Capabilities{Description: "fake"} }
func (f fakeBackend) Compile(context.Context, Target, *circuit.Circuit, Options) (*Result, error) {
	return &Result{Backend: f.name}, nil
}

func TestRegistry(t *testing.T) {
	Register(fakeBackend{"zz-test-b"})
	Register(fakeBackend{"zz-test-a"})
	defer func() {
		regMu.Lock()
		delete(registry, "zz-test-a")
		delete(registry, "zz-test-b")
		regMu.Unlock()
	}()

	if _, ok := Lookup("zz-test-a"); !ok {
		t.Fatal("registered backend not found")
	}
	if _, ok := Lookup("no-such-backend"); ok {
		t.Fatal("unknown backend found")
	}
	names := Names()
	ia, ib := -1, -1
	for i, n := range names {
		switch n {
		case "zz-test-a":
			ia = i
		case "zz-test-b":
			ib = i
		}
	}
	if ia < 0 || ib < 0 || ia > ib {
		t.Errorf("Names() not sorted or incomplete: %v", names)
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate Register did not panic")
			}
		}()
		Register(fakeBackend{"zz-test-a"})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty-name Register did not panic")
			}
		}()
		Register(fakeBackend{""})
	}()
}
