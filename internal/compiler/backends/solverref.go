package backends

import (
	"context"
	"fmt"
	"time"

	"atomique/internal/circuit"
	"atomique/internal/compiler"
	"atomique/internal/solverref"
)

// solverrefBackend adapts the solver-based RAA references (internal/
// solverref). Options.Exact selects Tan-Solver (exact, exponential, budget-
// bounded); the default is the greedy Tan-IterP relaxation. The machine is
// the single-AOD square-array setup of Fig 14; an FPQA target's SLM side
// sets the array size, the auto target keeps the 16x16 OLSQ-DPQA setting.
type solverrefBackend struct{}

func (solverrefBackend) Name() string { return "solverref" }

func (solverrefBackend) Capabilities() compiler.Capabilities {
	return compiler.Capabilities{
		Description:   "Tan-Solver / Tan-IterP solver references on a single-AOD RAA (Fig 14 comparators; the exact option selects the anytime Tan-Solver mode, whose output depends on the budget)",
		FPQA:          true,
		Movement:      true,
		Routes:        true,
		Deterministic: true,
		Exact:         true,
		Budget:        true,
	}
}

func (b solverrefBackend) Compile(ctx context.Context, tgt compiler.Target, circ *circuit.Circuit, opts compiler.Options) (*compiler.Result, error) {
	if err := checkRequest(b, ctx, tgt, opts); err != nil {
		return nil, err
	}
	sopts := solverref.Options{Mode: solverref.IterP, Seed: opts.Seed}
	if opts.Exact {
		sopts.Mode = solverref.Solver
	}
	if opts.BudgetSeconds > 0 {
		sopts.Budget = time.Duration(opts.BudgetSeconds * float64(time.Second))
	}
	if tgt.Kind != compiler.KindAuto {
		cfg, err := tgt.Hardware(circ.N)
		if err != nil {
			return nil, err
		}
		if cfg.SLM.Rows != cfg.SLM.Cols {
			return nil, fmt.Errorf("solverref: needs a square SLM, got %dx%d", cfg.SLM.Rows, cfg.SLM.Cols)
		}
		sopts.ArraySize = cfg.SLM.Rows
	}
	r, err := solverref.Compile(circ, sopts)
	if err != nil {
		return nil, err
	}
	res := &compiler.Result{
		Backend:  b.Name(),
		Metrics:  r.Metrics,
		TimedOut: r.TimedOut,
	}
	if r.Routed != nil {
		res.Program = programFromRouted(r.Routed, r.FinalSlotOf)
	}
	return res, nil
}
