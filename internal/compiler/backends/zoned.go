package backends

import (
	"context"

	"atomique/internal/circuit"
	"atomique/internal/compiler"
	"atomique/internal/zoned"
)

// zonedBackend adapts the ZAP-style zoned-architecture compiler
// (internal/zoned). Zoned targets carry the storage/entangling/readout
// geometry; the auto target is the default zoned machine grown to fit the
// circuit. Qubits never permute (no SWAP insertion), so the witness's final
// placement is the identity.
type zonedBackend struct{}

func (zonedBackend) Name() string { return "zoned" }

func (zonedBackend) Capabilities() compiler.Capabilities {
	return compiler.Capabilities{
		Description:   "ZAP-style zoned atom array: storage / Rydberg-entangling / readout zones with batched inter-zone shuttling and transfer-loss accounting",
		Zoned:         true,
		Movement:      true,
		Routes:        true,
		Deterministic: true,
	}
}

func (b zonedBackend) Compile(ctx context.Context, tgt compiler.Target, circ *circuit.Circuit, opts compiler.Options) (*compiler.Result, error) {
	if err := checkRequest(b, ctx, tgt, opts); err != nil {
		return nil, err
	}
	geo, params, err := tgt.ZoneSetup(circ.N)
	if err != nil {
		return nil, err
	}
	res, err := zoned.CompileContext(ctx, geo, params, circ, zoned.Options{
		Seed:  opts.Seed,
		Gamma: opts.Gamma,
	})
	if err != nil {
		return nil, err
	}
	return &compiler.Result{
		Backend:  b.Name(),
		Metrics:  res.Metrics,
		Program:  programFromSchedule(res.Schedule, circ.N, res.FinalSlotOf),
		Artifact: res,
	}, nil
}
