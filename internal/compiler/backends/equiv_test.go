package backends

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"atomique/internal/arch"
	"atomique/internal/bench"
	"atomique/internal/circuit"
	"atomique/internal/compiler"
	"atomique/internal/core"
	"atomique/internal/geyser"
	"atomique/internal/hardware"
	"atomique/internal/metrics"
	"atomique/internal/qpilot"
	"atomique/internal/solverref"
	"atomique/internal/zoned"
)

// canonical strips wall-clock measurements so metrics from two runs of the
// same compilation compare equal.
func canonical(m metrics.Compiled) metrics.Compiled {
	m.CompileTime = 0
	for i := range m.Passes {
		m.Passes[i].Seconds = 0
	}
	return m
}

func mustLookup(t *testing.T, name string) compiler.Backend {
	t.Helper()
	b, ok := compiler.Lookup(name)
	if !ok {
		t.Fatalf("backend %q not registered", name)
	}
	return b
}

// TestAllSixBackendsRegistered pins the acceptance criterion: every
// built-in compiler is reachable through the registry.
func TestAllSixBackendsRegistered(t *testing.T) {
	for _, name := range []string{"atomique", "geyser", "qpilot", "sabre", "solverref", "zoned"} {
		b := mustLookup(t, name)
		if b.Name() != name {
			t.Errorf("backend %q reports name %q", name, b.Name())
		}
		caps := b.Capabilities()
		if caps.Description == "" {
			t.Errorf("backend %q has no description", name)
		}
		if !caps.FPQA && !caps.Coupling && !caps.Zoned {
			t.Errorf("backend %q accepts no target kind", name)
		}
	}
}

// TestAtomiqueBackendMatchesCore: the adapter is a faithful re-plumbing of
// core.Compile — identical metrics and an Artifact exposing the schedule.
func TestAtomiqueBackendMatchesCore(t *testing.T) {
	c := bench.QAOARegular(16, 3, 5)
	cfg := hardware.DefaultConfig()
	want, err := core.Compile(cfg, c, core.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	got, err := mustLookup(t, "atomique").Compile(context.Background(),
		compiler.FPQA(cfg), c, compiler.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(canonical(got.Metrics), canonical(want.Metrics)) {
		t.Errorf("metrics diverge:\nbackend: %+v\ndirect:  %+v", got.Metrics, want.Metrics)
	}
	res, ok := got.Artifact.(*core.Result)
	if !ok || res.Schedule == nil {
		t.Fatalf("artifact = %T, want *core.Result with schedule", got.Artifact)
	}
	// The ablation switches thread through.
	abl, err := mustLookup(t, "atomique").Compile(context.Background(),
		compiler.FPQA(cfg), c, compiler.Options{Seed: 7, SerialRouter: true})
	if err != nil {
		t.Fatal(err)
	}
	if abl.Metrics.Depth2Q <= got.Metrics.Depth2Q {
		t.Errorf("serial-router depth %d not above parallel depth %d",
			abl.Metrics.Depth2Q, got.Metrics.Depth2Q)
	}
}

// TestSabreBackendMatchesArch: each coupling family reproduces the direct
// arch.Compile numbers exactly.
func TestSabreBackendMatchesArch(t *testing.T) {
	c := bench.QAOARegular(16, 3, 5)
	cases := []struct {
		family string
		direct arch.Arch
	}{
		{compiler.FamilySuperconducting, arch.Superconducting()},
		{compiler.FamilyRectangular, arch.FAARectangular(c.N)},
		{compiler.FamilyTriangular, arch.FAATriangular(c.N)},
		{compiler.FamilyLongRange, arch.BakerLongRange(c.N)},
	}
	for _, tc := range cases {
		want, err := arch.Compile(tc.direct, c, 3)
		if err != nil {
			t.Fatalf("%s: %v", tc.family, err)
		}
		got, err := mustLookup(t, "sabre").Compile(context.Background(),
			compiler.Coupling(tc.family, 0), c, compiler.Options{Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", tc.family, err)
		}
		if !reflect.DeepEqual(canonical(got.Metrics), canonical(want)) {
			t.Errorf("%s: metrics diverge:\nbackend: %+v\ndirect:  %+v", tc.family, got.Metrics, want)
		}
	}
}

// TestGeyserBackendMatchesDirect: block/pulse accounting in Extra matches
// geyser.Compile.
func TestGeyserBackendMatchesDirect(t *testing.T) {
	c := bench.QV(32, 32, 3)
	want, err := geyser.Compile(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mustLookup(t, "geyser").Compile(context.Background(),
		compiler.Target{}, c, compiler.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if int(got.Extra["blocks"]) != want.Blocks || int(got.Extra["pulses"]) != want.Pulses {
		t.Errorf("extra = %v, want blocks %d pulses %d", got.Extra, want.Blocks, want.Pulses)
	}
	if got.Metrics.N2Q != want.Routed2Q {
		t.Errorf("N2Q = %d, want routed %d", got.Metrics.N2Q, want.Routed2Q)
	}
	if got.Metrics.AddedCNOTs != 3*want.SwapCount {
		t.Errorf("AddedCNOTs = %d, want %d", got.Metrics.AddedCNOTs, 3*want.SwapCount)
	}
}

// TestQpilotBackendMatchesDirect: identical metrics, and FPQA-target
// parameter overrides reach the fidelity model.
func TestQpilotBackendMatchesDirect(t *testing.T) {
	c := bench.QAOARegular(16, 3, 5)
	want := qpilot.Compile(c, 2)
	got, err := mustLookup(t, "qpilot").Compile(context.Background(),
		compiler.Target{}, c, compiler.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(canonical(got.Metrics), canonical(want)) {
		t.Errorf("metrics diverge:\nbackend: %+v\ndirect:  %+v", got.Metrics, want)
	}
	cfg := hardware.DefaultConfig()
	cfg.Params.CoherenceT1 = 0.01 // brutal decoherence must show up
	worse, err := mustLookup(t, "qpilot").Compile(context.Background(),
		compiler.FPQA(cfg), c, compiler.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if worse.Metrics.FidelityTotal() >= got.Metrics.FidelityTotal() {
		t.Errorf("params override ignored: fidelity %v >= %v",
			worse.Metrics.FidelityTotal(), got.Metrics.FidelityTotal())
	}
}

// TestSolverrefBackendMatchesDirect covers both modes plus the timeout path.
func TestSolverrefBackendMatchesDirect(t *testing.T) {
	c := bench.QAOARegular(10, 3, 5)
	b := mustLookup(t, "solverref")

	want, err := solverref.Compile(c, solverref.Options{Mode: solverref.IterP, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Compile(context.Background(), compiler.Target{}, c, compiler.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(canonical(got.Metrics), canonical(want.Metrics)) {
		t.Errorf("iterp metrics diverge:\nbackend: %+v\ndirect:  %+v", got.Metrics, want.Metrics)
	}

	// Exact mode is an anytime optimiser: it consumes its whole budget
	// exploring randomised schedules, so its metrics are not run-comparable.
	// Check the mode and budget knobs thread through instead: a tiny circuit
	// with a short budget completes (no timeout) and burns roughly the
	// budget, proving the Solver mode ran.
	tiny := bench.QAOARegular(6, 3, 5)
	const budget = 300 * time.Millisecond
	gotExact, err := b.Compile(context.Background(), compiler.Target{}, tiny,
		compiler.Options{Seed: 4, Exact: true, BudgetSeconds: budget.Seconds()})
	if err != nil {
		t.Fatal(err)
	}
	if gotExact.TimedOut {
		t.Fatal("tiny exact compile timed out")
	}
	if ct := gotExact.Metrics.CompileTime; ct < budget/2 || ct > 20*budget {
		t.Errorf("exact compile time %v not near the %v anytime budget", ct, budget)
	}
	if gotExact.Metrics.NQubits != tiny.N {
		t.Errorf("exact NQubits = %d, want %d", gotExact.Metrics.NQubits, tiny.N)
	}

	// An absurdly small budget times out instead of erroring.
	timed, err := b.Compile(context.Background(), compiler.Target{},
		bench.QAOARegular(24, 3, 5), compiler.Options{Seed: 4, Exact: true, BudgetSeconds: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !timed.TimedOut {
		t.Error("nanosecond budget did not time out")
	}

	// A non-square FPQA SLM is rejected.
	if _, err := b.Compile(context.Background(), compiler.FPQA(hardware.Config{
		SLM:    hardware.ArraySpec{Rows: 8, Cols: 16},
		AODs:   []hardware.ArraySpec{{Rows: 8, Cols: 8}},
		Params: hardware.NeutralAtom(),
	}), c, compiler.Options{Seed: 4}); err == nil {
		t.Error("non-square SLM accepted")
	}
}

// TestZonedBackendMatchesDirect: the adapter is a faithful re-plumbing of
// zoned.Compile — identical metrics, a rich Artifact, and zone-geometry
// targets thread through (fewer gate sites deepen the schedule).
func TestZonedBackendMatchesDirect(t *testing.T) {
	c := bench.QAOARegular(16, 3, 5)
	b := mustLookup(t, "zoned")
	want, err := zoned.Compile(hardware.ZonesFor(c.N), hardware.NeutralAtom(), c, zoned.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Compile(context.Background(), compiler.Target{}, c, compiler.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(canonical(got.Metrics), canonical(want.Metrics)) {
		t.Errorf("metrics diverge:\nbackend: %+v\ndirect:  %+v", got.Metrics, want.Metrics)
	}
	res, ok := got.Artifact.(*zoned.Result)
	if !ok || res.Schedule == nil {
		t.Fatalf("artifact = %T, want *zoned.Result with schedule", got.Artifact)
	}
	narrow := hardware.ZonesFor(c.N)
	narrow.EntangleSites = 1
	serial, err := b.Compile(context.Background(), compiler.Zoned(narrow), c, compiler.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Metrics.Depth2Q != c.Num2Q() {
		t.Errorf("one gate site: depth %d, want one round per 2Q gate = %d",
			serial.Metrics.Depth2Q, c.Num2Q())
	}
}

// TestWrongTargetKindRejected: backends refuse target kinds they do not
// support with the structured capability error instead of silently
// substituting a default.
func TestWrongTargetKindRejected(t *testing.T) {
	c := circuit.New(4)
	c.CX(0, 1)
	cases := []struct {
		backend string
		tgt     compiler.Target
	}{
		{"atomique", compiler.Coupling(compiler.FamilyRectangular, 4)},
		{"atomique", compiler.Zoned(hardware.DefaultZones())},
		{"sabre", compiler.FPQA(hardware.DefaultConfig())},
		{"sabre", compiler.Zoned(hardware.DefaultZones())},
		{"zoned", compiler.FPQA(hardware.DefaultConfig())},
		{"zoned", compiler.Coupling(compiler.FamilyRectangular, 4)},
	}
	for _, tc := range cases {
		_, err := mustLookup(t, tc.backend).Compile(context.Background(), tc.tgt, c, compiler.Options{})
		var ue *compiler.UnsupportedError
		if !errors.As(err, &ue) {
			t.Errorf("%s on %s target: err = %v, want *compiler.UnsupportedError",
				tc.backend, tc.tgt.Kind, err)
		}
	}
}
