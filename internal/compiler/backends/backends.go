// Package backends registers every built-in compiler with the unified
// backend registry (internal/compiler):
//
//	atomique   the paper's RAA pass pipeline (internal/core)
//	sabre      fixed-topology SABRE baselines (internal/arch, Fig 13)
//	geyser     Geyser three-qubit-pulse comparator (internal/geyser, Table III)
//	qpilot     Q-Pilot flying-ancilla comparator (internal/qpilot, Fig 19)
//	solverref  Tan-Solver/Tan-IterP references (internal/solverref, Fig 14)
//	zoned      ZAP-style zoned-architecture compiler (internal/zoned)
//
// Importing this package (blank import suffices) makes all of them reachable
// through compiler.Lookup; the CLI, the compile service, and the experiment
// drivers do exactly that.
//
// Every adapter validates the request against its declared Capabilities via
// compiler.CheckSupport and emits a compiler.Program execution witness for
// completed compilations; the conformance suite replays the witness through
// the state-vector simulator to prove the compiled output is semantically
// equivalent to the source circuit.
package backends

import (
	"context"
	"fmt"

	"atomique/internal/circuit"
	"atomique/internal/compiler"
	"atomique/internal/pipeline"
)

func init() {
	compiler.Register(atomiqueBackend{})
	compiler.Register(sabreBackend{})
	compiler.Register(geyserBackend{})
	compiler.Register(qpilotBackend{})
	compiler.Register(solverrefBackend{})
	compiler.Register(zonedBackend{})
}

// checkRequest is the shared entry contract every adapter honours: the
// context is still live (backends with long-running inner loops additionally
// check mid-compile) and the request only asks for declared capabilities.
func checkRequest(b compiler.Backend, ctx context.Context, tgt compiler.Target, opts compiler.Options) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%s: compilation cancelled: %w", b.Name(), err)
	}
	return compiler.CheckSupport(b.Name(), b.Capabilities(), tgt, opts)
}

// programFromSchedule flattens a stage schedule (the atomique and zoned
// compilers' native output) into the execution witness: per stage, the
// one-qubit batch then the parallel two-qubit batch, over nSlots physical
// slots.
func programFromSchedule(s *pipeline.Schedule, nSlots int, finalSlot []int) *compiler.Program {
	n := 0
	for _, st := range s.Stages {
		n += len(st.OneQ) + len(st.Gates)
	}
	gates := make([]circuit.Gate, 0, n)
	for _, st := range s.Stages {
		for _, g := range st.OneQ {
			gates = append(gates, circuit.Gate{Op: g.Op, Q0: g.SlotA, Q1: -1, Param: g.Param})
		}
		for _, g := range st.Gates {
			gates = append(gates, circuit.Gate{Op: g.Op, Q0: g.SlotA, Q1: g.SlotB, Param: g.Param})
		}
	}
	return &compiler.Program{NSlots: nSlots, Gates: gates, FinalSlot: finalSlot}
}

// programFromRouted wraps a routed physical circuit (the SABRE-based
// compilers' native output) as the execution witness.
func programFromRouted(routed *circuit.Circuit, finalSlot []int) *compiler.Program {
	return &compiler.Program{NSlots: routed.N, Gates: routed.Gates, FinalSlot: finalSlot}
}
