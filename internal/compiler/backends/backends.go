// Package backends registers every built-in compiler with the unified
// backend registry (internal/compiler):
//
//	atomique   the paper's RAA pass pipeline (internal/core)
//	sabre      fixed-topology SABRE baselines (internal/arch, Fig 13)
//	geyser     Geyser three-qubit-pulse comparator (internal/geyser, Table III)
//	qpilot     Q-Pilot flying-ancilla comparator (internal/qpilot, Fig 19)
//	solverref  Tan-Solver/Tan-IterP references (internal/solverref, Fig 14)
//
// Importing this package (blank import suffices) makes all of them reachable
// through compiler.Lookup; the CLI, the compile service, and the experiment
// drivers do exactly that.
package backends

import (
	"context"
	"fmt"

	"atomique/internal/compiler"
)

func init() {
	compiler.Register(atomiqueBackend{})
	compiler.Register(sabreBackend{})
	compiler.Register(geyserBackend{})
	compiler.Register(qpilotBackend{})
	compiler.Register(solverrefBackend{})
}

// checkCtx is the minimum cancellation contract every adapter honours on
// entry; backends with long-running inner loops (atomique) additionally
// check mid-compile.
func checkCtx(ctx context.Context, name string) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%s: compilation cancelled: %w", name, err)
	}
	return nil
}
