package backends

import (
	"context"
	"time"

	"atomique/internal/arch"
	"atomique/internal/circuit"
	"atomique/internal/compiler"
)

// sabreBackend adapts the fixed-topology SABRE baselines (internal/arch):
// coupling targets select the device family (superconducting heavy-hex,
// rectangular/triangular FAA, Baker long-range); the auto target is a
// rectangular FAA sized for the circuit.
type sabreBackend struct{}

func (sabreBackend) Name() string { return "sabre" }

func (sabreBackend) Capabilities() compiler.Capabilities {
	return compiler.Capabilities{
		Description:   "SABRE routing on fixed coupling graphs (Fig 13 baselines: superconducting, rectangular, triangular, long-range)",
		Coupling:      true,
		Routes:        true,
		Deterministic: true,
	}
}

func (b sabreBackend) Compile(ctx context.Context, tgt compiler.Target, circ *circuit.Circuit, opts compiler.Options) (*compiler.Result, error) {
	if err := checkRequest(b, ctx, tgt, opts); err != nil {
		return nil, err
	}
	a, err := tgt.Arch(circ.N, compiler.FamilyRectangular)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	m, routed, err := arch.CompileRouted(a, circ, opts.Seed)
	if err != nil {
		return nil, err
	}
	m.CompileTime = time.Since(start)
	return &compiler.Result{
		Backend: b.Name(),
		Metrics: m,
		Program: programFromRouted(routed.Routed, routed.FinalMapping),
	}, nil
}
