package backends

import (
	"context"
	"testing"

	"atomique/internal/bench"
	"atomique/internal/compiler"
)

// BenchmarkBackends compiles one Table II-scale workload per registered
// backend (auto target, fixed seed). CI's bench smoke step runs it with
// -benchtime=1x to print per-backend compile times side by side.
func BenchmarkBackends(b *testing.B) {
	c := bench.QAOARegular(40, 5, 15)
	for _, be := range compiler.List() {
		b.Run(be.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := be.Compile(context.Background(), compiler.Target{}, c,
					compiler.Options{Seed: 7}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
