package backends

import (
	"context"
	"time"

	"atomique/internal/circuit"
	"atomique/internal/compiler"
	"atomique/internal/qpilot"
)

// qpilotBackend adapts the Q-Pilot flying-ancilla comparator
// (internal/qpilot). FPQA targets contribute their physical parameters; the
// geometry is Q-Pilot's own fixed-compute-plus-ancilla layout.
type qpilotBackend struct{}

func (qpilotBackend) Name() string { return "qpilot" }

func (qpilotBackend) Capabilities() compiler.Capabilities {
	return compiler.Capabilities{
		Description:   "Q-Pilot flying-ancilla scheduler: parity ladders over movable ancillas (Fig 19 comparator)",
		FPQA:          true,
		Movement:      true,
		Deterministic: true,
		// The witness runs every 2Q term through a flying ancilla: one per
		// two compute qubits, so ceil(1.5 n) slots.
		WitnessQubitFactor: 1.5,
	}
}

func (b qpilotBackend) Compile(ctx context.Context, tgt compiler.Target, circ *circuit.Circuit, opts compiler.Options) (*compiler.Result, error) {
	if err := checkRequest(b, ctx, tgt, opts); err != nil {
		return nil, err
	}
	cfg, err := tgt.Hardware(circ.N)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	m := qpilot.CompileOn(cfg.Params, circ, opts.Seed)
	m.CompileTime = time.Since(start)
	// The witness is the explicit parity-ladder circuit over compute +
	// ancilla qubits; compute qubits never move, so the final placement is
	// the identity on the compute prefix.
	prog := qpilot.Program(circ)
	final := make([]int, circ.N)
	for q := range final {
		final[q] = q
	}
	return &compiler.Result{
		Backend: b.Name(),
		Metrics: m,
		Program: &compiler.Program{NSlots: prog.N, Gates: prog.Gates, FinalSlot: final},
	}, nil
}
