package backends

import (
	"context"
	"time"

	"atomique/internal/circuit"
	"atomique/internal/compiler"
	"atomique/internal/geyser"
	"atomique/internal/metrics"
)

// geyserBackend adapts the Geyser comparator (internal/geyser). Its block
// and pulse counts — the Table III fidelity proxy — ride in Result.Extra;
// the common metrics record carries the routed gate accounting.
type geyserBackend struct{}

func (geyserBackend) Name() string { return "geyser" }

func (geyserBackend) Capabilities() compiler.Capabilities {
	return compiler.Capabilities{
		Description:   "Geyser three-qubit-pulse re-synthesis on a triangular fixed atom array (Table III comparator)",
		Coupling:      true,
		Routes:        true,
		Deterministic: true,
	}
}

func (b geyserBackend) Compile(ctx context.Context, tgt compiler.Target, circ *circuit.Circuit, opts compiler.Options) (*compiler.Result, error) {
	if err := checkRequest(b, ctx, tgt, opts); err != nil {
		return nil, err
	}
	a, err := tgt.Arch(circ.N, compiler.FamilyTriangular)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	r, err := geyser.CompileOn(a, circ, opts.Seed)
	if err != nil {
		return nil, err
	}
	return &compiler.Result{
		Backend: b.Name(),
		Metrics: metrics.Compiled{
			Arch:        "Geyser",
			NQubits:     circ.N,
			N2Q:         r.Routed2Q,
			N1Q:         circ.Num1Q(),
			SwapCount:   r.SwapCount,
			AddedCNOTs:  3 * r.SwapCount,
			CompileTime: time.Since(start),
		},
		Extra: map[string]float64{
			"blocks": float64(r.Blocks),
			"pulses": float64(r.Pulses),
		},
		Program: programFromRouted(r.Routed, r.FinalMapping),
	}, nil
}
