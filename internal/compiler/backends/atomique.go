package backends

import (
	"context"

	"atomique/internal/circuit"
	"atomique/internal/compiler"
	"atomique/internal/core"
)

// atomiqueBackend adapts the paper's pass-pipeline compiler (internal/core)
// to the unified API. It is the default backend everywhere.
type atomiqueBackend struct{}

func (atomiqueBackend) Name() string { return "atomique" }

func (atomiqueBackend) Capabilities() compiler.Capabilities {
	return compiler.Capabilities{
		Description:   "Atomique RAA pass pipeline: MAX k-cut array mapper, inter-array SABRE, load-balanced atom placement, high-parallelism movement router",
		FPQA:          true,
		Movement:      true,
		Routes:        true,
		Deterministic: true,
	}
}

func (b atomiqueBackend) Compile(ctx context.Context, tgt compiler.Target, circ *circuit.Circuit, opts compiler.Options) (*compiler.Result, error) {
	if err := checkRequest(b, ctx, tgt, opts); err != nil {
		return nil, err
	}
	cfg, err := tgt.Hardware(circ.N)
	if err != nil {
		return nil, err
	}
	res, err := core.CompileContext(ctx, cfg, circ, core.Options{
		Gamma:            opts.Gamma,
		Seed:             opts.Seed,
		DenseMapper:      opts.DenseMapper,
		RandomAtomMapper: opts.RandomAtomMapper,
		SerialRouter:     opts.SerialRouter,
		RelaxAddressing:  opts.RelaxAddressing,
		RelaxOrder:       opts.RelaxOrder,
		RelaxOverlap:     opts.RelaxOverlap,
	})
	if err != nil {
		return nil, err
	}
	return &compiler.Result{
		Backend:  b.Name(),
		Metrics:  res.Metrics,
		Program:  programFromSchedule(res.Schedule, len(res.SiteOf), res.FinalSlotOf),
		Artifact: res,
	}, nil
}
