package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	mrand "math/rand/v2"
	"sort"
	"strings"
	"sync"
	"time"
)

// maxSpanChildren bounds the children one span keeps; traces live in a ring
// buffer and ride in result envelopes, so an unbounded pipeline (a
// many-chunk trajectory run) must not balloon them. Further children are
// counted in DroppedChildren instead of stored.
const maxSpanChildren = 128

// Span is one timed region of a trace. Spans form a tree under the trace's
// root; children are added concurrently (the trajectory engine records chunk
// spans from many workers), so all mutation is mutex-guarded.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time
	attrs    map[string]string
	children []*Span
	dropped  int
}

// newSpan starts a span now.
func newSpan(name string) *Span { return &Span{name: name, start: time.Now()} }

// StartChild starts a child span now. Safe for concurrent use.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name)
	s.addChild(c)
	return c
}

// Record attaches an already-measured interval as a completed child span —
// how the pipeline runner reports pass timings it measured itself. Safe for
// concurrent use. Returns the child (nil if dropped or s is nil).
func (s *Span) Record(name string, start time.Time, d time.Duration) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: start, end: start.Add(d)}
	if !s.addChild(c) {
		return nil
	}
	return c
}

func (s *Span) addChild(c *Span) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.children) >= maxSpanChildren {
		s.dropped++
		return false
	}
	s.children = append(s.children, c)
	return true
}

// End marks the span finished now. Idempotent: the first End wins.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// SetAttr attaches a key/value annotation. Safe for concurrent use.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// SpanSnapshot is the JSON-serialisable form of a span tree, embedded in
// result envelopes and served by GET /v1/traces.
type SpanSnapshot struct {
	Name    string    `json:"name"`
	Start   time.Time `json:"start"`
	Seconds float64   `json:"seconds"`
	// Attrs carries the span's annotations (backend, cache outcome, shot
	// counts, ...), keys sorted for deterministic encoding.
	Attrs map[string]string `json:"attrs,omitempty"`
	// DroppedChildren counts children discarded past the per-span cap.
	DroppedChildren int             `json:"droppedChildren,omitempty"`
	Children        []*SpanSnapshot `json:"children,omitempty"`
}

// Snapshot renders the span tree. Unfinished spans report their duration so
// far; children appear in start order.
func (s *Span) Snapshot() *SpanSnapshot {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	end := s.end
	if end.IsZero() {
		end = time.Now()
	}
	snap := &SpanSnapshot{
		Name:            s.name,
		Start:           s.start,
		Seconds:         end.Sub(s.start).Seconds(),
		DroppedChildren: s.dropped,
	}
	if len(s.attrs) > 0 {
		snap.Attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			snap.Attrs[k] = v
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		snap.Children = append(snap.Children, c.Snapshot())
	}
	sort.SliceStable(snap.Children, func(i, j int) bool {
		return snap.Children[i].Start.Before(snap.Children[j].Start)
	})
	return snap
}

// WriteTree renders the span tree as an indented text outline — the CLI's
// -trace output.
func (snap *SpanSnapshot) WriteTree(w io.Writer) {
	snap.writeTree(w, 0)
}

func (snap *SpanSnapshot) writeTree(w io.Writer, depth int) {
	if snap == nil {
		return
	}
	attrs := ""
	if len(snap.Attrs) > 0 {
		keys := make([]string, 0, len(snap.Attrs))
		for k := range snap.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = k + "=" + snap.Attrs[k]
		}
		attrs = "  {" + strings.Join(parts, " ") + "}"
	}
	fmt.Fprintf(w, "%s%-*s %9.3fms%s\n", strings.Repeat("  ", depth),
		32-2*depth, snap.Name, snap.Seconds*1e3, attrs)
	for _, c := range snap.Children {
		c.writeTree(w, depth+1)
	}
	if snap.DroppedChildren > 0 {
		fmt.Fprintf(w, "%s(+%d children dropped)\n", strings.Repeat("  ", depth+1), snap.DroppedChildren)
	}
}

// Trace is one request-scoped span tree with a stable ID.
type Trace struct {
	ID   string
	Root *Span
}

// NewTrace starts a trace. An empty id mints a fresh one.
func NewTrace(id, rootName string) *Trace {
	if id == "" {
		id = MintTraceID()
	}
	return &Trace{ID: id, Root: newSpan(rootName)}
}

// MintTraceID returns a 16-hex-char random trace ID.
func MintTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; keep the service
		// alive with a degraded (timestamp-based) ID if it somehow does.
		return fmt.Sprintf("t%015x", time.Now().UnixNano()&0xfffffffffffffff)
	}
	return hex.EncodeToString(b[:])
}

// ValidTraceID reports whether a client-supplied trace ID is acceptable for
// propagation: 1..64 characters of [A-Za-z0-9_-]. Anything else is replaced
// by a minted ID rather than echoed into logs and stores.
func ValidTraceID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, c := range id {
		ok := c == '-' || c == '_' || c >= '0' && c <= '9' ||
			c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
		if !ok {
			return false
		}
	}
	return true
}

type ctxKey int

const (
	spanKey ctxKey = iota
	traceIDKey
)

// ContextWithSpan returns ctx carrying sp; instrumented layers (the pipeline
// runner, the trajectory engine) discover it with SpanFromContext.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanKey, sp)
}

// SpanFromContext returns the current span, or nil when the caller is not
// traced (the zero-overhead path: instrumentation sites no-op on nil).
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey).(*Span)
	return sp
}

// ContextWithTraceID returns ctx carrying a caller-chosen trace ID (the
// X-Trace-Id request header); the service mints one when absent.
func ContextWithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceIDKey, id)
}

// TraceIDFromContext returns the propagated trace ID, if any.
func TraceIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey).(string)
	return id
}

// traceEntry pairs a stored trace with a global insertion sequence number so
// the two retention segments can be merged newest-first.
type traceEntry struct {
	t   *Trace
	seq uint64
}

// traceRing is a fixed-capacity FIFO of traceEntry; inserting over a live
// slot returns the evicted trace.
type traceRing struct {
	buf  []traceEntry
	next int
}

func (r *traceRing) add(t *Trace, seq uint64) (evicted *Trace) {
	evicted = r.buf[r.next].t
	r.buf[r.next] = traceEntry{t: t, seq: seq}
	r.next = (r.next + 1) % len(r.buf)
	return evicted
}

// TraceStoreStats is the retention ledger /v1/stats and the
// atomique_traces_* metrics surface: without it, eviction of the one
// interesting trace is silent.
type TraceStoreStats struct {
	Adds           uint64 `json:"adds"`           // traces offered (pinned + sampled + sampled-out)
	Pins           uint64 `json:"pins"`           // traces that entered the pinned segment
	SampledOut     uint64 `json:"sampledOut"`     // fast successes dropped by the sampling coin
	EvictedSampled uint64 `json:"evictedSampled"` // ring churn in the sampled segment
	EvictedPinned  uint64 `json:"evictedPinned"`  // ring churn in the pinned segment
	Stored         int    `json:"stored"`         // traces currently held (both segments)
	PinnedStored   int    `json:"pinnedStored"`   // traces currently held in the pinned segment
}

// TraceStore holds finished traces with tiered retention. The capacity is
// split into a pinned segment (roughly a quarter, min 1) reserved for traces
// the caller marks interesting — errors, sheds, overload rejections, slow
// tail — and a sampled segment for ordinary successes, which AddPinned
// traffic can never evict. A FIFO ring would let a burst of healthy traffic
// flush the one failed trace an operator needs; here the failure survives
// until enough *failures* arrive to age it out. GET /v1/traces merges both
// segments newest-first.
type TraceStore struct {
	mu      sync.Mutex
	sampled traceRing
	pinned  traceRing
	byID    map[string]*Trace
	seq     uint64
	rate    float64 // admission probability for Add (1 = keep everything)
	rnd     func() float64
	stats   TraceStoreStats
}

// NewTraceStore returns a store keeping up to capacity traces (min 2: one
// pinned slot + one sampled slot), sampling rate 1.
func NewTraceStore(capacity int) *TraceStore {
	if capacity < 2 {
		capacity = 2
	}
	pinnedCap := capacity / 4
	if pinnedCap < 1 {
		pinnedCap = 1
	}
	return &TraceStore{
		sampled: traceRing{buf: make([]traceEntry, capacity-pinnedCap)},
		pinned:  traceRing{buf: make([]traceEntry, pinnedCap)},
		byID:    make(map[string]*Trace, capacity),
		rate:    1,
		rnd:     mrand.Float64,
	}
}

// SetSampleRate sets the probability (clamped to [0,1]) that Add keeps an
// ordinary trace. AddPinned ignores the rate: interesting traces are always
// kept.
func (ts *TraceStore) SetSampleRate(p float64) {
	ts.mu.Lock()
	ts.rate = math.Min(1, math.Max(0, p))
	ts.mu.Unlock()
}

// Add offers an ordinary (fast-success) trace; it is kept with the configured
// sample probability and lands in the sampled segment.
func (ts *TraceStore) Add(t *Trace) {
	if t == nil {
		return
	}
	ts.mu.Lock()
	ts.stats.Adds++
	if ts.rate < 1 && ts.rnd() >= ts.rate {
		ts.stats.SampledOut++
		ts.mu.Unlock()
		return
	}
	ts.insert(&ts.sampled, t, &ts.stats.EvictedSampled)
	ts.mu.Unlock()
}

// AddPinned stores an interesting trace (error/shed/overload/slow-tail) in
// the reserved segment, bypassing the sampling coin.
func (ts *TraceStore) AddPinned(t *Trace) {
	if t == nil {
		return
	}
	ts.mu.Lock()
	ts.stats.Adds++
	ts.stats.Pins++
	ts.insert(&ts.pinned, t, &ts.stats.EvictedPinned)
	ts.mu.Unlock()
}

// insert places t in ring, maintaining the ID index and the eviction
// counter. A re-used trace ID replaces the older entry in the index (the
// ring slot of the old entry still ages out normally). Caller holds ts.mu.
func (ts *TraceStore) insert(ring *traceRing, t *Trace, evictCtr *uint64) {
	ts.seq++
	if old := ring.add(t, ts.seq); old != nil {
		*evictCtr++
		if ts.byID[old.ID] == old {
			delete(ts.byID, old.ID)
		}
	}
	ts.byID[t.ID] = t
}

// Get returns the stored trace with the given ID.
func (ts *TraceStore) Get(id string) (*Trace, bool) {
	ts.mu.Lock()
	t, ok := ts.byID[id]
	ts.mu.Unlock()
	return t, ok
}

// Recent returns up to n traces across both segments, newest first (n <= 0
// means all stored).
func (ts *TraceStore) Recent(n int) []*Trace {
	ts.mu.Lock()
	entries := ts.liveEntries()
	ts.mu.Unlock()
	if n <= 0 || n > len(entries) {
		n = len(entries)
	}
	out := make([]*Trace, 0, n)
	for _, e := range entries[:n] {
		out = append(out, e.t)
	}
	return out
}

// Pinned returns the pinned segment's traces, newest first — the set the
// flight recorder snapshots into a diagnostic bundle.
func (ts *TraceStore) Pinned() []*Trace {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	entries := make([]traceEntry, 0, len(ts.pinned.buf))
	for _, e := range ts.pinned.buf {
		if e.t != nil {
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq > entries[j].seq })
	out := make([]*Trace, len(entries))
	for i, e := range entries {
		out[i] = e.t
	}
	return out
}

// liveEntries returns all stored entries sorted newest-first. Caller holds
// ts.mu.
func (ts *TraceStore) liveEntries() []traceEntry {
	entries := make([]traceEntry, 0, len(ts.sampled.buf)+len(ts.pinned.buf))
	for _, e := range ts.sampled.buf {
		if e.t != nil {
			entries = append(entries, e)
		}
	}
	for _, e := range ts.pinned.buf {
		if e.t != nil {
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq > entries[j].seq })
	return entries
}

// Len returns the number of stored traces across both segments.
func (ts *TraceStore) Len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	n := 0
	for _, e := range ts.sampled.buf {
		if e.t != nil {
			n++
		}
	}
	for _, e := range ts.pinned.buf {
		if e.t != nil {
			n++
		}
	}
	return n
}

// Stats reports the retention ledger.
func (ts *TraceStore) Stats() TraceStoreStats {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	s := ts.stats
	for _, e := range ts.sampled.buf {
		if e.t != nil {
			s.Stored++
		}
	}
	for _, e := range ts.pinned.buf {
		if e.t != nil {
			s.Stored++
			s.PinnedStored++
		}
	}
	return s
}
