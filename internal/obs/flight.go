package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// Collector produces one file of a diagnostic bundle. Name is the file name
// inside the bundle directory; Collect streams the content. Collectors run
// sequentially in registration order (the CPU profile runs first so that
// state collectors see the incident a second further developed).
type Collector struct {
	Name    string
	Collect func(ctx context.Context, w *os.File) error
}

// BundleFile describes one captured file in a bundle's manifest.
type BundleFile struct {
	Name  string `json:"name"`
	Bytes int64  `json:"bytes"`
	Error string `json:"error,omitempty"`
}

// BundleMeta is a bundle's manifest, persisted as meta.json inside the
// bundle directory and served by GET /v1/debug/bundles.
type BundleMeta struct {
	ID          string       `json:"id"`
	Trigger     string       `json:"trigger"` // slo-page | saturation | panic | manual
	Reason      string       `json:"reason,omitempty"`
	StartedAt   time.Time    `json:"startedAt"`
	CompletedAt time.Time    `json:"completedAt,omitzero"`
	Complete    bool         `json:"complete"`
	Files       []BundleFile `json:"files,omitempty"`
}

// RecorderConfig configures the flight recorder.
type RecorderConfig struct {
	Dir        string        // bundle root; must be non-empty
	MaxBundles int           // on-disk ring size; default 8
	Debounce   time.Duration // min spacing between automatic captures; default 60s
	Clock      func() time.Time
}

// Recorder is the flight recorder: on a trigger it captures a diagnostic
// bundle — each registered collector's output — into a bounded on-disk ring
// of per-bundle directories. Captures run asynchronously (a trigger returns
// immediately), one at a time, and automatic triggers are debounced so a
// flapping SLO cannot fill the disk; manual triggers bypass the debounce but
// still respect the single-flight rule.
type Recorder struct {
	dir        string
	max        int
	debounce   time.Duration
	clock      func() time.Time
	collectors []Collector

	mu        sync.Mutex
	bundles   []BundleMeta // oldest first
	capturing bool
	lastAuto  time.Time
	seq       int
	wg        sync.WaitGroup
}

// NewRecorder opens (creating if needed) the bundle directory, loads the
// manifests of bundles surviving from earlier runs, and returns a recorder
// that will capture the given collectors.
func NewRecorder(cfg RecorderConfig, collectors ...Collector) (*Recorder, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("obs: flight recorder needs a bundle directory")
	}
	if cfg.MaxBundles <= 0 {
		cfg.MaxBundles = 8
	}
	if cfg.Debounce <= 0 {
		cfg.Debounce = time.Minute
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: flight recorder: %w", err)
	}
	r := &Recorder{dir: cfg.Dir, max: cfg.MaxBundles, debounce: cfg.Debounce,
		clock: cfg.Clock, collectors: collectors}
	r.loadExisting()
	return r, nil
}

// loadExisting indexes bundle directories left by a previous process so the
// ring (and its bound) spans restarts.
func (r *Recorder) loadExisting() {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(r.dir, e.Name(), "meta.json"))
		if err != nil {
			continue
		}
		var meta BundleMeta
		if json.Unmarshal(raw, &meta) != nil || meta.ID != e.Name() {
			continue
		}
		r.bundles = append(r.bundles, meta)
	}
	sort.Slice(r.bundles, func(i, j int) bool {
		return r.bundles[i].StartedAt.Before(r.bundles[j].StartedAt)
	})
	r.pruneLocked()
}

// Trigger requests a bundle capture. Automatic triggers (manual=false) are
// debounced; manual ones are not. Either kind is skipped while a capture is
// already in flight. Returns the bundle ID and whether a capture started.
func (r *Recorder) Trigger(trigger, reason string, manual bool) (string, bool) {
	r.mu.Lock()
	now := r.clock()
	if r.capturing {
		r.mu.Unlock()
		return "", false
	}
	if !manual && !r.lastAuto.IsZero() && now.Sub(r.lastAuto) < r.debounce {
		r.mu.Unlock()
		return "", false
	}
	if !manual {
		r.lastAuto = now
	}
	r.seq++
	id := fmt.Sprintf("%s-%03d-%s", now.UTC().Format("20060102T150405"), r.seq, sanitizeID(trigger))
	meta := BundleMeta{ID: id, Trigger: trigger, Reason: reason, StartedAt: now}
	r.bundles = append(r.bundles, meta)
	r.capturing = true
	r.wg.Add(1)
	r.mu.Unlock()
	go r.capture(meta)
	return id, true
}

// capture runs every collector into the bundle directory, then finalises the
// manifest and prunes the ring.
func (r *Recorder) capture(meta BundleMeta) {
	defer r.wg.Done()
	dir := filepath.Join(r.dir, meta.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		meta.Files = append(meta.Files, BundleFile{Name: ".", Error: err.Error()})
		r.finish(meta)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, c := range r.collectors {
		bf := BundleFile{Name: c.Name}
		f, err := os.Create(filepath.Join(dir, c.Name))
		if err != nil {
			bf.Error = err.Error()
			meta.Files = append(meta.Files, bf)
			continue
		}
		if err := c.Collect(ctx, f); err != nil {
			bf.Error = err.Error()
		}
		if info, err := f.Stat(); err == nil {
			bf.Bytes = info.Size()
		}
		f.Close()
		meta.Files = append(meta.Files, bf)
	}
	meta.CompletedAt = r.clock()
	meta.Complete = true
	if raw, err := json.MarshalIndent(meta, "", "  "); err == nil {
		os.WriteFile(filepath.Join(dir, "meta.json"), raw, 0o644)
	}
	r.finish(meta)
}

func (r *Recorder) finish(meta BundleMeta) {
	r.mu.Lock()
	for i := range r.bundles {
		if r.bundles[i].ID == meta.ID {
			r.bundles[i] = meta
			break
		}
	}
	r.capturing = false
	r.pruneLocked()
	r.mu.Unlock()
}

// pruneLocked deletes the oldest bundles beyond the ring bound. Caller holds
// r.mu.
func (r *Recorder) pruneLocked() {
	for len(r.bundles) > r.max {
		old := r.bundles[0]
		r.bundles = r.bundles[1:]
		os.RemoveAll(filepath.Join(r.dir, old.ID))
	}
}

// List returns the bundle manifests, newest first.
func (r *Recorder) List() []BundleMeta {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]BundleMeta, len(r.bundles))
	for i, b := range r.bundles {
		out[len(out)-1-i] = b
	}
	return out
}

// Get returns one bundle's manifest.
func (r *Recorder) Get(id string) (BundleMeta, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, b := range r.bundles {
		if b.ID == id {
			return b, true
		}
	}
	return BundleMeta{}, false
}

// FilePath resolves a bundle file for download, refusing IDs or names that
// would escape the bundle root.
func (r *Recorder) FilePath(id, name string) (string, bool) {
	if _, ok := r.Get(id); !ok {
		return "", false
	}
	if name != filepath.Base(name) || strings.HasPrefix(name, ".") {
		return "", false
	}
	p := filepath.Join(r.dir, id, name)
	if _, err := os.Stat(p); err != nil {
		return "", false
	}
	return p, true
}

// Wait blocks until any in-flight capture finishes — engine shutdown and
// tests use it so bundle directories are complete before teardown.
func (r *Recorder) Wait() { r.wg.Wait() }

// sanitizeID keeps trigger names path- and URL-safe.
func sanitizeID(s string) string {
	var b strings.Builder
	for _, c := range s {
		ok := c == '-' || c == '_' || c >= '0' && c <= '9' ||
			c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
		if ok {
			b.WriteRune(c)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "trigger"
	}
	return b.String()
}

// ProfileCollectors returns the three runtime-profile collectors every
// bundle carries: a CPU profile of cpuDuration (first, so the other
// collectors observe the incident after the profiling window), then
// goroutine and heap dumps. CPU profiling is process-global; if another
// profile is already running (e.g. an operator on the pprof port), the
// cpu.pprof file records the error instead of aborting the bundle.
func ProfileCollectors(cpuDuration time.Duration) []Collector {
	if cpuDuration <= 0 {
		cpuDuration = time.Second
	}
	return []Collector{
		{Name: "cpu.pprof", Collect: func(ctx context.Context, w *os.File) error {
			if err := pprof.StartCPUProfile(w); err != nil {
				return err
			}
			select {
			case <-time.After(cpuDuration):
			case <-ctx.Done():
			}
			pprof.StopCPUProfile()
			return nil
		}},
		{Name: "goroutine.pprof", Collect: func(_ context.Context, w *os.File) error {
			return pprof.Lookup("goroutine").WriteTo(w, 0)
		}},
		{Name: "heap.pprof", Collect: func(_ context.Context, w *os.File) error {
			return pprof.Lookup("heap").WriteTo(w, 0)
		}},
	}
}
