package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestExemplarRoundTrip: traced observations surface as OpenMetrics
// exemplars, the strict parser accepts its own output, and the classic
// (non-negotiated) exposition stays exemplar-free.
func TestExemplarRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramVec("atomique_request_duration_seconds", "request latency",
		nil, "backend", "class")
	h.With("atomique", "compile").ObserveExemplar(0.003, "abcdef0123456789")
	h.With("atomique", "compile").Observe(0.1) // untraced: no exemplar on its bucket
	r.Counter("atomique_jobs_total", "total").Add(2)

	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatalf("WriteOpenMetrics: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, `# {trace_id="abcdef0123456789"} 0.003`) {
		t.Errorf("exemplar missing from OpenMetrics output:\n%s", out)
	}
	if !strings.HasSuffix(strings.TrimRight(out, "\n"), "# EOF") {
		t.Errorf("OpenMetrics output must end with # EOF:\n%s", out)
	}
	if _, err := ParseExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("ParseExposition rejected our own OpenMetrics output: %v\n---\n%s", err, out)
	}

	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if strings.Contains(buf.String(), "trace_id") || strings.Contains(buf.String(), "# EOF") {
		t.Errorf("classic exposition must not carry OpenMetrics extensions:\n%s", buf.String())
	}
}

// TestParseExpositionExemplarAccepts covers valid exemplar shapes.
func TestParseExpositionExemplarAccepts(t *testing.T) {
	for name, text := range map[string]string{
		"with-timestamp": "# TYPE h histogram\n" +
			"h_bucket{le=\"0.25\"} 3 # {trace_id=\"abc123\"} 0.1 1712345678.5\n" +
			"h_bucket{le=\"+Inf\"} 3\nh_sum 0.3\nh_count 3\n",
		"without-timestamp": "# TYPE h histogram\n" +
			"h_bucket{le=\"0.25\"} 3 # {trace_id=\"abc123\"} 0.1\n" +
			"h_bucket{le=\"+Inf\"} 3\nh_sum 0.3\nh_count 3\n",
		"inf-bucket": "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 1 # {trace_id=\"abc123\"} 99.5 1712345678\n" +
			"h_sum 99.5\nh_count 1\n",
		"eof-marker": "# TYPE x counter\nx 1\n# EOF\n",
	} {
		if _, err := ParseExposition(strings.NewReader(text)); err != nil {
			t.Errorf("%s: parser rejected valid exposition: %v", name, err)
		}
	}
}

// TestParseExpositionExemplarRejects covers malformed exemplars.
func TestParseExpositionExemplarRejects(t *testing.T) {
	bucketLine := func(exemplar string) string {
		return "# TYPE h histogram\n" +
			"h_bucket{le=\"0.25\"} 3 " + exemplar + "\n" +
			"h_bucket{le=\"+Inf\"} 3\nh_sum 0.3\nh_count 3\n"
	}
	for name, text := range map[string]string{
		"on-counter":        "# TYPE x counter\nx 1 # {trace_id=\"abc123\"} 1\n",
		"on-gauge":          "# TYPE g gauge\ng 1 # {trace_id=\"abc123\"} 1\n",
		"missing-trace-id":  bucketLine(`# {span="q"} 0.1`),
		"invalid-trace-id":  bucketLine(`# {trace_id="bad id!"} 0.1`),
		"value-over-le":     bucketLine(`# {trace_id="abc123"} 0.5`),
		"unquoted-label":    bucketLine(`# {trace_id=abc123} 0.1`),
		"no-label-set":      bucketLine(`# trace_id 0.1`),
		"missing-value":     bucketLine(`# {trace_id="abc123"}`),
		"bad-value":         bucketLine(`# {trace_id="abc123"} banana`),
		"bad-timestamp":     bucketLine(`# {trace_id="abc123"} 0.1 banana`),
		"content-after-eof": "# TYPE x counter\nx 1\n# EOF\nx 2\n",
	} {
		if _, err := ParseExposition(strings.NewReader(text)); err == nil {
			t.Errorf("%s: parser accepted malformed exposition", name)
		}
	}
}

// TestCountLE: bucket-aligned thresholds sum exactly the buckets at or below
// the bound.
func TestCountLE(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 10} {
		h.Observe(v)
	}
	s := h.Snapshot()
	for _, tc := range []struct {
		v    float64
		want uint64
	}{{0.5, 0}, {1, 1}, {2, 2}, {4, 3}, {100, 3}} {
		if got := s.CountLE(tc.v); got != tc.want {
			t.Errorf("CountLE(%v) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

// TestFuncVecs: scrape-time-computed counter/gauge families render and
// round-trip through the parser.
func TestFuncVecs(t *testing.T) {
	r := NewRegistry()
	evicted := r.CounterFuncVec("atomique_traces_evicted_total", "evictions", "segment")
	evicted.Register(func() float64 { return 5 }, "sampled")
	evicted.Register(func() float64 { return 1 }, "pinned")
	r.CounterFunc("atomique_traces_sampled_out_total", "dropped", func() float64 { return 9 })
	g := r.GaugeFuncVec("atomique_slo_state", "state", "objective")
	g.Register(func() float64 { return 2 }, "compile-availability")

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		`atomique_traces_evicted_total{segment="sampled"} 5`,
		`atomique_traces_evicted_total{segment="pinned"} 1`,
		`atomique_traces_sampled_out_total 9`,
		`atomique_slo_state{objective="compile-availability"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	if _, err := ParseExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("ParseExposition rejected func-vec output: %v\n---\n%s", err, out)
	}
}
