package obs

import (
	"io"
	"log/slog"
)

// NewLogger returns a JSON slog logger at the given level — the structured
// log format cmd/atomiqued, the engine, and the workers share so a collector
// can join log lines to traces on the traceId attribute.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// DiscardLogger returns a logger that drops everything — the default for
// in-process engines (tests, the experiment drivers) that did not opt in.
func DiscardLogger() *slog.Logger { return slog.New(slog.DiscardHandler) }

// WithTrace returns l with the traceId attribute attached, so every line a
// job's lifecycle emits carries its correlation key.
func WithTrace(l *slog.Logger, traceID string) *slog.Logger {
	if l == nil {
		return DiscardLogger()
	}
	return l.With(slog.String("traceId", traceID))
}
