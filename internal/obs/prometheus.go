package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4). Histograms emit the classic cumulative
// _bucket/_sum/_count triplet plus three derived gauge families
// (<name>_p50/_p90/_p99) so collectors that cannot run histogram_quantile —
// and humans curling /metrics — still see the percentiles directly.
func (r *Registry) WritePrometheus(w io.Writer) error { return r.write(w, false) }

// WriteOpenMetrics renders the same families with OpenMetrics extensions:
// histogram bucket lines carry trace-ID exemplars (` # {trace_id="…"} value
// timestamp`) and the output ends with the `# EOF` marker. /metrics serves
// this when the scraper negotiates `Accept: application/openmetrics-text`.
func (r *Registry) WriteOpenMetrics(w io.Writer) error { return r.write(w, true) }

func (r *Registry) write(w io.Writer, exemplars bool) error {
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, f := range families {
		if err := writeFamily(bw, f, exemplars); err != nil {
			return err
		}
	}
	if exemplars {
		fmt.Fprintln(bw, "# EOF")
	}
	return bw.Flush()
}

func writeFamily(w *bufio.Writer, f *family, exemplars bool) error {
	f.mu.RLock()
	keys := append([]string(nil), f.order...)
	sers := make([]*series, len(keys))
	fns := make([]func() float64, len(keys))
	for i, k := range keys {
		sers[i] = f.series[k]
		fns[i] = f.series[k].gaugeFn // copied under the lock: FuncVec may swap it
	}
	f.mu.RUnlock()
	if len(sers) == 0 {
		return nil
	}
	header(w, f.name, f.help, f.kind.String())
	var quantileRows []struct {
		labels string
		q      Quantiles
	}
	for si, s := range sers {
		labels := formatLabels(f.labelNames, s.labelValues)
		switch f.kind {
		case kindCounter:
			v := 0.0
			switch {
			case fns[si] != nil: // scrape-time-computed counter (CounterFunc*)
				v = fns[si]()
			case s.counter != nil:
				v = s.counter.Value()
			}
			sample(w, f.name, labels, v)
		case kindGauge:
			v := 0.0
			if fns[si] != nil {
				v = fns[si]()
			}
			sample(w, f.name, labels, v)
		case kindHistogram:
			snap := s.hist.Snapshot()
			cum := uint64(0)
			for i, n := range snap.Buckets {
				cum += n
				le := "+Inf"
				if i < len(snap.Bounds) {
					le = formatFloat(snap.Bounds[i])
				}
				if exemplars && snap.Exemplars[i] != nil {
					ex := snap.Exemplars[i]
					fmt.Fprintf(w, "%s%s %s # {trace_id=\"%s\"} %s %.3f\n",
						f.name+"_bucket", addLabel(labels, "le", le), formatFloat(float64(cum)),
						escapeLabelValue(ex.TraceID), formatFloat(ex.Value),
						float64(ex.Time.UnixNano())/1e9)
				} else {
					sample(w, f.name+"_bucket", addLabel(labels, "le", le), float64(cum))
				}
			}
			sample(w, f.name+"_sum", labels, snap.Sum)
			sample(w, f.name+"_count", labels, float64(snap.Count))
			quantileRows = append(quantileRows, struct {
				labels string
				q      Quantiles
			}{labels, Quantiles{Count: snap.Count, Sum: snap.Sum,
				P50: snap.Quantile(0.50), P90: snap.Quantile(0.90), P99: snap.Quantile(0.99)}})
		}
	}
	for _, suffix := range []struct {
		name string
		get  func(Quantiles) float64
	}{
		{"_p50", func(q Quantiles) float64 { return q.P50 }},
		{"_p90", func(q Quantiles) float64 { return q.P90 }},
		{"_p99", func(q Quantiles) float64 { return q.P99 }},
	} {
		if len(quantileRows) == 0 {
			break
		}
		header(w, f.name+suffix.name, f.help+" ("+suffix.name[1:]+" estimate)", "gauge")
		for _, row := range quantileRows {
			sample(w, f.name+suffix.name, row.labels, suffix.get(row.q))
		}
	}
	return nil
}

func header(w *bufio.Writer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

func sample(w *bufio.Writer, name, labels string, v float64) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(v))
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatLabels renders {k="v",...} or "" when there are no labels.
func formatLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// addLabel appends one label pair to an already formatted label set.
func addLabel(labels, name, value string) string {
	pair := name + `="` + escapeLabelValue(value) + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			i > 0 && c >= '0' && c <= '9'
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			i > 0 && c >= '0' && c <= '9'
		if !ok {
			return false
		}
	}
	return true
}

// ParseExposition validates Prometheus text exposition format and returns the
// number of samples read. It checks comment syntax, metric/label name
// validity, label quoting and escapes, float-parsable values, that every
// sample belongs to a family declared by a preceding # TYPE line (accounting
// for the _bucket/_sum/_count suffixes of histograms and _count/quantile of
// summaries), and that histogram _bucket series are cumulative in le order.
// OpenMetrics extensions are validated too: a `# EOF` marker must be the last
// content, and bucket-line exemplars must carry a well-formed label set with
// a valid trace_id, a float value no greater than the bucket's le bound, and
// a float timestamp. Exemplars anywhere but a histogram bucket are rejected.
// The CI smoke job and the obs tests both gate /metrics output through it.
func ParseExposition(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	types := map[string]string{}
	samples := 0
	lineNo := 0
	sawEOF := false
	var lastBucketSeries string
	var lastBucketCum float64
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if sawEOF {
			return samples, fmt.Errorf("line %d: content after # EOF", lineNo)
		}
		if strings.TrimRight(line, " ") == "# EOF" {
			sawEOF = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || fields[0] != "#" {
				return samples, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			switch fields[1] {
			case "HELP":
				if !validMetricName(fields[2]) {
					return samples, fmt.Errorf("line %d: invalid metric name %q in HELP", lineNo, fields[2])
				}
			case "TYPE":
				if len(fields) != 4 {
					return samples, fmt.Errorf("line %d: TYPE needs a metric name and a type", lineNo)
				}
				name, typ := fields[2], fields[3]
				if !validMetricName(name) {
					return samples, fmt.Errorf("line %d: invalid metric name %q in TYPE", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return samples, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := types[name]; dup {
					return samples, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				types[name] = typ
			default:
				// Other comments are allowed and ignored.
			}
			continue
		}
		name, labels, value, ex, err := parseSample(line)
		if err != nil {
			return samples, fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam, ok := resolveFamily(types, name)
		if !ok {
			return samples, fmt.Errorf("line %d: sample %q has no preceding # TYPE declaration", lineNo, name)
		}
		isBucket := strings.HasSuffix(name, "_bucket") && types[fam] == "histogram"
		if ex != nil {
			if !isBucket {
				return samples, fmt.Errorf("line %d: exemplar on non-bucket sample %q", lineNo, name)
			}
			if err := verifyExemplar(ex, labels["le"]); err != nil {
				return samples, fmt.Errorf("line %d: %v", lineNo, err)
			}
		}
		if isBucket {
			series := fam + "|" + labelsWithout(labels, "le")
			if series == lastBucketSeries && value < lastBucketCum {
				return samples, fmt.Errorf("line %d: histogram %s buckets not cumulative", lineNo, fam)
			}
			lastBucketSeries, lastBucketCum = series, value
		} else {
			lastBucketSeries = ""
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}
	if samples == 0 {
		return 0, fmt.Errorf("no samples in exposition")
	}
	return samples, nil
}

// resolveFamily maps a sample name to its declared family, unfolding the
// histogram/summary suffixes.
func resolveFamily(types map[string]string, name string) (string, bool) {
	if _, ok := types[name]; ok {
		return name, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if t, ok := types[base]; ok && (t == "histogram" || t == "summary") {
			return base, true
		}
	}
	return "", false
}

// exemplarSample is a parsed OpenMetrics exemplar suffix on a bucket line.
type exemplarSample struct {
	labels map[string]string
	value  float64
}

// parseSample splits `name{labels} value [timestamp] [# {exlabels} exvalue
// [extimestamp]]`, validating each part. The exemplar suffix, when present,
// is returned for the caller to verify in family context.
func parseSample(line string) (name string, labels map[string]string, value float64, ex *exemplarSample, err error) {
	labels = map[string]string{}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", nil, 0, nil, fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		body, tail, err := splitLabelSet(rest)
		if err != nil {
			return "", nil, 0, nil, err
		}
		if err := parseLabels(body, labels); err != nil {
			return "", nil, 0, nil, err
		}
		rest = tail
	}
	// Label values were consumed above, so a " # " in rest can only be the
	// exemplar separator.
	if sep := strings.Index(rest, " # "); sep >= 0 {
		ex = &exemplarSample{labels: map[string]string{}}
		exRaw := strings.TrimSpace(rest[sep+3:])
		rest = rest[:sep]
		if !strings.HasPrefix(exRaw, "{") {
			return "", nil, 0, nil, fmt.Errorf("exemplar missing label set in %q", exRaw)
		}
		body, tail, err := splitLabelSet(exRaw)
		if err != nil {
			return "", nil, 0, nil, fmt.Errorf("exemplar: %v", err)
		}
		if err := parseLabels(body, ex.labels); err != nil {
			return "", nil, 0, nil, fmt.Errorf("exemplar: %v", err)
		}
		exFields := strings.Fields(tail)
		if len(exFields) < 1 || len(exFields) > 2 {
			return "", nil, 0, nil, fmt.Errorf("exemplar expected value [timestamp], got %q", tail)
		}
		ex.value, err = strconv.ParseFloat(exFields[0], 64)
		if err != nil {
			return "", nil, 0, nil, fmt.Errorf("bad exemplar value %q", exFields[0])
		}
		if len(exFields) == 2 {
			if _, err := strconv.ParseFloat(exFields[1], 64); err != nil {
				return "", nil, 0, nil, fmt.Errorf("bad exemplar timestamp %q", exFields[1])
			}
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, nil, fmt.Errorf("expected value [timestamp], got %q", rest)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, nil, fmt.Errorf("bad sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, nil, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, value, ex, nil
}

// splitLabelSet consumes a leading quote-aware `{...}` block, returning the
// body between the braces and everything after the closing brace.
func splitLabelSet(s string) (body, tail string, err error) {
	end := -1
	inQuote := false
	for j := 1; j < len(s); j++ {
		switch {
		case inQuote && s[j] == '\\':
			j++
		case s[j] == '"':
			inQuote = !inQuote
		case !inQuote && s[j] == '}':
			end = j
		}
		if end >= 0 {
			break
		}
	}
	if end < 0 {
		return "", "", fmt.Errorf("unterminated label set")
	}
	return s[1:end], s[end+1:], nil
}

// verifyExemplar checks the semantic constraints on a bucket exemplar: a
// valid trace_id label and a value that actually belongs in the bucket
// (value <= le).
func verifyExemplar(ex *exemplarSample, le string) error {
	id, ok := ex.labels["trace_id"]
	if !ok {
		return fmt.Errorf("exemplar missing trace_id label")
	}
	if !ValidTraceID(id) {
		return fmt.Errorf("exemplar trace_id %q is not a valid trace ID", id)
	}
	bound, err := strconv.ParseFloat(le, 64)
	if err != nil {
		return fmt.Errorf("bucket with exemplar has unparsable le %q", le)
	}
	if ex.value > bound {
		return fmt.Errorf("exemplar value %v exceeds bucket le %v", ex.value, bound)
	}
	return nil
}

func parseLabels(s string, out map[string]string) error {
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("label pair missing '=' in %q", s)
		}
		lname := strings.TrimSpace(s[:eq])
		if !validLabelName(lname) {
			return fmt.Errorf("invalid label name %q", lname)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return fmt.Errorf("label %s value not quoted", lname)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return fmt.Errorf("dangling escape in label %s", lname)
				}
				i++
				switch s[i] {
				case '\\', '"':
					val.WriteByte(s[i])
				case 'n':
					val.WriteByte('\n')
				default:
					return fmt.Errorf("bad escape \\%c in label %s", s[i], lname)
				}
				continue
			}
			if c == '"' {
				closed = true
				s = s[i+1:]
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return fmt.Errorf("unterminated value for label %s", lname)
		}
		if _, dup := out[lname]; dup {
			return fmt.Errorf("duplicate label %s", lname)
		}
		out[lname] = val.String()
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
		s = strings.TrimSpace(s)
	}
	return nil
}

// labelsWithout renders labels minus one key, sorted, for series identity.
func labelsWithout(labels map[string]string, drop string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != drop {
			keys = append(keys, k)
		}
	}
	// Insertion sort: label sets are tiny.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(';')
	}
	return b.String()
}
