// Package obs is the dependency-free observability subsystem the compile
// service threads through every layer: a metrics registry (counters, gauges,
// log-bucketed histograms with quantile snapshots) exposed in Prometheus text
// format, request-scoped tracing (trace IDs, span trees, a bounded ring
// buffer browsable over HTTP), and slog helpers that correlate structured
// logs by trace ID. It imports only the standard library so any package —
// internal/pipeline, internal/noise, the cmds — can record into it without
// dependency cycles.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically non-decreasing float64, safe for concurrent
// use. Floats (not ints) so cumulative-seconds counters fit the same type.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (v must be non-negative; negative deltas corrupt rate queries).
func (c *Counter) Add(v float64) {
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Histogram is a log-bucketed distribution, safe for concurrent Observe.
// Bucket i counts observations v <= Bounds[i] (cumulatively exclusive of
// earlier buckets); values above the last bound land in an implicit +Inf
// bucket. The default bounds cover 1µs..~4300s at ratio 2, which keeps
// quantile estimates within a factor-2 bucket of truth across nine decades —
// ample for latency percentiles.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, +Inf implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
	// exemplars holds the latest traced observation per bucket (nil when the
	// bucket has never seen a traced observation) — the OpenMetrics exemplar
	// each bucket line can carry, linking the latency distribution back to a
	// concrete trace in /v1/traces.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar ties one observation to the trace that produced it; /metrics
// emits it in OpenMetrics exemplar syntax when the scraper negotiates it.
type Exemplar struct {
	Value   float64
	TraceID string
	Time    time.Time
}

// LogBuckets returns n ascending bucket bounds starting at start, each ratio
// times the previous.
func LogBuckets(start, ratio float64, n int) []float64 {
	if start <= 0 || ratio <= 1 || n < 1 {
		panic("obs: LogBuckets needs start > 0, ratio > 1, n >= 1")
	}
	bounds := make([]float64, n)
	v := start
	for i := range bounds {
		bounds[i] = v
		v *= ratio
	}
	return bounds
}

// DefaultLatencyBuckets spans 1µs to ~4295s at ratio 2 (33 buckets).
func DefaultLatencyBuckets() []float64 { return LogBuckets(1e-6, 2, 33) }

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets()
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) { h.ObserveExemplar(v, "") }

// ObserveExemplar records one value and, when traceID is non-empty, stores it
// as the owning bucket's exemplar (latest wins). An empty traceID is exactly
// Observe — the exemplar path costs one atomic store only when traced.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	// Binary search for the first bound >= v; the extra slot is +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{Value: v, TraceID: traceID, Time: time.Now()})
	}
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Bounds  []float64 // ascending upper bounds; the final bucket is +Inf
	Buckets []uint64  // len(Bounds)+1, non-cumulative counts
	Count   uint64
	Sum     float64
	// Exemplars holds the latest traced observation per bucket; entries are
	// nil for buckets that never saw one.
	Exemplars []*Exemplar
}

// Snapshot copies the histogram state. Concurrent observers may land between
// the bucket reads, so Count is recomputed from the bucket copy to keep the
// snapshot internally consistent.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds:    h.bounds,
		Buckets:   make([]uint64, len(h.buckets)),
		Sum:       math.Float64frombits(h.sumBits.Load()),
		Exemplars: make([]*Exemplar, len(h.buckets)),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Count += s.Buckets[i]
		s.Exemplars[i] = h.exemplars[i].Load()
	}
	return s
}

// CountLE returns how many observations landed in buckets whose upper bound
// is at most v — the "good" count of a latency-attainment SLO with threshold
// v. Thresholds should sit on bucket bounds; a threshold inside a bucket
// undercounts by at most that bucket (the conservative direction for an SLO).
func (s HistSnapshot) CountLE(v float64) uint64 {
	var n uint64
	for i, bound := range s.Bounds {
		if bound > v {
			break
		}
		n += s.Buckets[i]
	}
	return n
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the bucket holding the target rank, matching Prometheus's
// histogram_quantile: the first bucket interpolates from 0, and ranks in the
// +Inf bucket clamp to the highest finite bound. Returns 0 for an empty
// histogram.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for i, n := range s.Buckets {
		prev := cum
		cum += float64(n)
		if n == 0 || cum < rank {
			continue
		}
		if i == len(s.Bounds) { // +Inf bucket: clamp to the last finite bound
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		return lo + (hi-lo)*(rank-prev)/float64(n)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Quantiles is the compact percentile summary /v1/stats and the exposition's
// derived gauges serve.
type Quantiles struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Quantiles snapshots the histogram and derives p50/p90/p99.
func (h *Histogram) Quantiles() Quantiles {
	s := h.Snapshot()
	return Quantiles{Count: s.Count, Sum: s.Sum,
		P50: s.Quantile(0.50), P90: s.Quantile(0.90), P99: s.Quantile(0.99)}
}

// metricKind tags a family for the exposition writer.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labelled instance within a family.
type series struct {
	labelValues []string
	counter     *Counter
	hist        *Histogram
	gaugeFn     func() float64
}

// family is one named metric with a fixed label schema.
type family struct {
	name       string
	help       string
	kind       metricKind
	labelNames []string
	bounds     []float64 // histogram families only

	mu     sync.RWMutex
	series map[string]*series
	order  []string // insertion order, for stable exposition
}

const labelSep = "\x1f"

func (f *family) get(labelValues []string, create func() *series) *series {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %s expects %d label values, got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := strings.Join(labelValues, labelSep)
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s = create()
	s.labelValues = append([]string(nil), labelValues...)
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// CounterVec is a family of counters keyed by label values.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on first
// use.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.get(labelValues, func() *series { return &series{counter: &Counter{}} }).counter
}

// Each calls fn for every labelled counter in creation order.
func (v *CounterVec) Each(fn func(labelValues []string, c *Counter)) {
	v.f.mu.RLock()
	keys := append([]string(nil), v.f.order...)
	v.f.mu.RUnlock()
	for _, k := range keys {
		v.f.mu.RLock()
		s := v.f.series[k]
		v.f.mu.RUnlock()
		fn(s.labelValues, s.counter)
	}
}

// FuncVec is a family of scrape-time-computed series keyed by label values
// (either counter- or gauge-typed, fixed at registration).
type FuncVec struct{ f *family }

// Register installs fn as the value source for the given label values.
// Re-registering the same label set replaces the function.
func (v *FuncVec) Register(fn func() float64, labelValues ...string) {
	s := v.f.get(labelValues, func() *series { return &series{} })
	v.f.mu.Lock()
	s.gaugeFn = fn
	v.f.mu.Unlock()
}

// HistogramVec is a family of histograms keyed by label values.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.get(labelValues, func() *series { return &series{hist: newHistogram(v.f.bounds)} }).hist
}

// Each calls fn for every labelled histogram in creation order.
func (v *HistogramVec) Each(fn func(labelValues []string, h *Histogram)) {
	v.f.mu.RLock()
	keys := append([]string(nil), v.f.order...)
	v.f.mu.RUnlock()
	for _, k := range keys {
		v.f.mu.RLock()
		s := v.f.series[k]
		v.f.mu.RUnlock()
		fn(s.labelValues, s.hist)
	}
}

// Registry holds metric families and renders them as Prometheus text
// exposition. Families register once (duplicate names panic — a programming
// error) and appear in registration order.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{byName: make(map[string]*family)} }

func (r *Registry) register(f *family) {
	if !validMetricName(f.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	for _, l := range f.labelNames {
		if !validLabelName(l) {
			panic(fmt.Sprintf("obs: metric %s: invalid label name %q", f.name, l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[f.name]; dup {
		panic(fmt.Sprintf("obs: metric %s registered twice", f.name))
	}
	f.series = make(map[string]*series)
	r.byName[f.name] = f
	r.families = append(r.families, f)
}

// Counter registers and returns a label-less counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := &family{name: name, help: help, kind: kindCounter}
	r.register(f)
	return f.get(nil, func() *series { return &series{counter: &Counter{}} }).counter
}

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	f := &family{name: name, help: help, kind: kindCounter, labelNames: labelNames}
	r.register(f)
	return &CounterVec{f: f}
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := &family{name: name, help: help, kind: kindGauge}
	r.register(f)
	f.get(nil, func() *series { return &series{gaugeFn: fn} })
}

// GaugeFuncVec registers a gauge family whose labelled series are computed at
// scrape time (see FuncVec.Register).
func (r *Registry) GaugeFuncVec(name, help string, labelNames ...string) *FuncVec {
	f := &family{name: name, help: help, kind: kindGauge, labelNames: labelNames}
	r.register(f)
	return &FuncVec{f: f}
}

// CounterFunc registers a counter whose value is computed at scrape time —
// for totals that already live elsewhere (e.g. a ring buffer's eviction
// count) and would drift if mirrored into a second counter. fn must be
// monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := &family{name: name, help: help, kind: kindCounter}
	r.register(f)
	f.get(nil, func() *series { return &series{gaugeFn: fn} })
}

// CounterFuncVec registers a counter family whose labelled series are
// computed at scrape time (see FuncVec.Register); each fn must be
// monotonically non-decreasing.
func (r *Registry) CounterFuncVec(name, help string, labelNames ...string) *FuncVec {
	f := &family{name: name, help: help, kind: kindCounter, labelNames: labelNames}
	r.register(f)
	return &FuncVec{f: f}
}

// Histogram registers and returns a label-less histogram (nil bounds =
// DefaultLatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := &family{name: name, help: help, kind: kindHistogram, bounds: bounds}
	r.register(f)
	return f.get(nil, func() *series { return &series{hist: newHistogram(bounds)} }).hist
}

// HistogramVec registers a histogram family with the given label names (nil
// bounds = DefaultLatencyBuckets).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	f := &family{name: name, help: help, kind: kindHistogram, bounds: bounds, labelNames: labelNames}
	r.register(f)
	return &HistogramVec{f: f}
}
