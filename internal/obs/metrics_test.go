package obs

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// TestQuantileUniform feeds a uniform [0,1) sample and checks the estimated
// percentiles against the true quantiles within one bucket's resolution
// (ratio-2 log buckets → the estimate is exact to within a factor of 2, and
// linear interpolation inside the bucket usually does much better).
func TestQuantileUniform(t *testing.T) {
	h := newHistogram(nil)
	rng := rand.New(rand.NewSource(1))
	const n = 200000
	for i := 0; i < n; i++ {
		h.Observe(rng.Float64())
	}
	s := h.Snapshot()
	if s.Count != n {
		t.Fatalf("count = %d, want %d", s.Count, n)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 0.50}, {0.90, 0.90}, {0.99, 0.99},
	} {
		got := s.Quantile(tc.q)
		if got < tc.want/2 || got > tc.want*2 {
			t.Errorf("uniform q%.2f = %.4f, want within bucket of %.4f", tc.q, got, tc.want)
		}
	}
	if mean := s.Sum / float64(s.Count); math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %.4f, want ~0.5", mean)
	}
}

// TestQuantileExponential checks percentile estimates on an exponential
// distribution (rate 1: true quantile -ln(1-q)), the shape service latencies
// actually take.
func TestQuantileExponential(t *testing.T) {
	h := newHistogram(nil)
	rng := rand.New(rand.NewSource(2))
	const n = 200000
	for i := 0; i < n; i++ {
		h.Observe(rng.ExpFloat64())
	}
	s := h.Snapshot()
	for _, q := range []float64{0.50, 0.90, 0.99} {
		want := -math.Log(1 - q)
		got := s.Quantile(q)
		if got < want/2 || got > want*2 {
			t.Errorf("exponential q%.2f = %.4f, want within bucket of %.4f", q, got, want)
		}
	}
}

// TestQuantilePointMass: every observation identical → every quantile lands
// in that value's bucket.
func TestQuantilePointMass(t *testing.T) {
	h := newHistogram(nil)
	for i := 0; i < 1000; i++ {
		h.Observe(0.037)
	}
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := s.Quantile(q)
		if got < 0.037/2 || got > 0.037*2 {
			t.Errorf("point-mass q%.2f = %v, want within bucket of 0.037", q, got)
		}
	}
}

// TestQuantileEdgeCases covers the empty histogram, the +Inf bucket clamp,
// and out-of-range q.
func TestQuantileEdgeCases(t *testing.T) {
	h := newHistogram(nil)
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	top := DefaultLatencyBuckets()[len(DefaultLatencyBuckets())-1]
	h.Observe(top * 10) // lands in +Inf
	s := h.Snapshot()
	if got := s.Quantile(0.99); got != top {
		t.Errorf("+Inf-bucket quantile = %v, want clamp to %v", got, top)
	}
	if got := s.Quantile(-3); got != s.Quantile(0) {
		t.Errorf("q<0 not clamped: %v vs %v", got, s.Quantile(0))
	}
	if got := s.Quantile(7); got != s.Quantile(1) {
		t.Errorf("q>1 not clamped: %v vs %v", got, s.Quantile(1))
	}
}

// TestQuantilesSummary exercises the p50/p90/p99 convenience snapshot.
func TestQuantilesSummary(t *testing.T) {
	h := newHistogram(nil)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	q := h.Quantiles()
	if q.Count != 100 {
		t.Fatalf("count = %d, want 100", q.Count)
	}
	if q.P50 > q.P90 || q.P90 > q.P99 {
		t.Errorf("quantiles not monotonic: p50=%v p90=%v p99=%v", q.P50, q.P90, q.P99)
	}
	if q.P50 < 0.25 || q.P50 > 1.0 {
		t.Errorf("p50 = %v, want within bucket of 0.5", q.P50)
	}
}

// TestConcurrentRecording hammers one counter, one histogram, and one
// labelled vec from many goroutines; totals must be exact. Run under
// go test -race this doubles as the data-race check the satellite asks for.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	h := r.Histogram("test_latency_seconds", "latency", nil)
	vec := r.CounterVec("test_events_total", "events", "kind")
	hvec := r.HistogramVec("test_req_seconds", "req", nil, "backend", "class")

	const workers = 16
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			kinds := []string{"hit", "miss", "coalesce"}
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(float64(i%100) / 1000)
				vec.With(kinds[i%3]).Inc()
				hvec.With("atomique", "compile").Observe(0.001)
				if w == 0 && i%100 == 0 {
					hvec.With("zoned", "simulate").Observe(0.5)
				}
			}
		}()
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %v, want %d", got, workers*perWorker)
	}
	if got := h.Snapshot().Count; got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	var vecTotal float64
	for _, k := range []string{"hit", "miss", "coalesce"} {
		vecTotal += vec.With(k).Value()
	}
	if vecTotal != workers*perWorker {
		t.Errorf("vec total = %v, want %d", vecTotal, workers*perWorker)
	}
	if got := hvec.With("atomique", "compile").Snapshot().Count; got != workers*perWorker {
		t.Errorf("hvec count = %d, want %d", got, workers*perWorker)
	}
}

// TestCounterSum checks float accumulation (pass-seconds style) is exact for
// representable increments.
func TestCounterSum(t *testing.T) {
	var c Counter
	for i := 0; i < 1000; i++ {
		c.Add(0.5)
	}
	if got := c.Value(); got != 500 {
		t.Errorf("counter = %v, want 500", got)
	}
}

// TestRegistryDuplicatePanics: registering a name twice is a programming
// error and must fail loudly.
func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "y")
}

// TestLabelArityPanics: a With call with the wrong label count must panic.
func TestLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("arity_total", "x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	vec.With("only-one")
}

// TestExpositionRoundTrip writes a populated registry and feeds the output
// back through the strict parser — the same check the CI smoke job runs
// against a live /metrics endpoint.
func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("atomique_jobs_total", "total jobs").Add(42)
	vec := r.CounterVec("atomique_cache_events_total", "cache events", "event")
	vec.With("hit").Add(10)
	vec.With("miss").Add(3)
	r.GaugeFunc("atomique_queue_depth", "queue depth", func() float64 { return 7 })
	h := r.HistogramVec("atomique_request_duration_seconds", "request latency", nil, "backend", "class")
	for i := 0; i < 100; i++ {
		h.With("atomique", "compile").Observe(float64(i) / 1000)
	}
	h.With("zoned", "simulate").Observe(1.5)
	h.With(`we"ird\back`+"\n"+`end`, "compile").Observe(0.1) // escaping path

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE atomique_jobs_total counter",
		"# TYPE atomique_request_duration_seconds histogram",
		"atomique_request_duration_seconds_bucket{backend=\"atomique\",class=\"compile\",le=\"+Inf\"} 100",
		"# TYPE atomique_request_duration_seconds_p99 gauge",
		"atomique_queue_depth 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	n, err := ParseExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("ParseExposition rejected our own output: %v\n---\n%s", err, out)
	}
	if n < 10 {
		t.Errorf("parsed only %d samples", n)
	}
}

// TestParseExpositionRejects feeds malformed expositions and expects errors.
func TestParseExpositionRejects(t *testing.T) {
	for name, text := range map[string]string{
		"empty":            "",
		"no-type":          "orphan_metric 1\n",
		"bad-name":         "# TYPE 9bad counter\n9bad 1\n",
		"bad-type":         "# TYPE x flurble\nx 1\n",
		"bad-value":        "# TYPE x counter\nx banana\n",
		"unclosed-labels":  "# TYPE x counter\nx{a=\"b 1\n",
		"unquoted-label":   "# TYPE x counter\nx{a=b} 1\n",
		"duplicate-type":   "# TYPE x counter\n# TYPE x counter\nx 1\n",
		"non-cumulative":   "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 5\n",
		"bad-label-escape": "# TYPE x counter\nx{a=\"\\q\"} 1\n",
	} {
		if _, err := ParseExposition(strings.NewReader(text)); err == nil {
			t.Errorf("%s: parser accepted malformed exposition", name)
		}
	}
}

// TestParseExpositionAccepts covers valid corner cases: timestamps, escaped
// label values, +Inf/NaN sample values, interleaved comments.
func TestParseExpositionAccepts(t *testing.T) {
	text := "# random comment\n" +
		"# TYPE x counter\n" +
		"# HELP x something\n" +
		"x{a=\"quote \\\" slash \\\\ nl \\n\"} 1 1712345678\n" +
		"# TYPE g gauge\n" +
		"g +Inf\ng2missing 0\n"
	// g2missing has no TYPE: expect rejection.
	if _, err := ParseExposition(strings.NewReader(text)); err == nil {
		t.Fatal("expected rejection of undeclared family")
	}
	ok := strings.Replace(text, "g2missing 0\n", "", 1)
	n, err := ParseExposition(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("parser rejected valid exposition: %v", err)
	}
	if n != 2 {
		t.Errorf("parsed %d samples, want 2", n)
	}
}
