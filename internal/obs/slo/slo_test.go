package slo

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"atomique/internal/obs"
)

// testFeed is a synthetic cumulative counter feed driven tick by tick.
type testFeed struct {
	now         time.Time
	good, total float64
	events      []Event
	eng         *Engine
}

func newTestFeed(t *testing.T, cfg Config) *testFeed {
	t.Helper()
	f := &testFeed{now: time.Unix(1_700_000_000, 0)}
	f.eng = New(cfg, func(Objective) (float64, float64) { return f.good, f.total },
		WithClock(func() time.Time { return f.now }),
		WithOnEvent(func(ev Event) { f.events = append(f.events, ev) }))
	f.eng.Tick() // baseline sample at t0
	return f
}

// step advances one 10s interval with dGood good requests out of dTotal.
func (f *testFeed) step(dGood, dTotal float64) {
	f.now = f.now.Add(10 * time.Second)
	f.good += dGood
	f.total += dTotal
	f.eng.Tick()
}

func (f *testFeed) state(t *testing.T) string {
	t.Helper()
	st := f.eng.Status()
	if len(st) != 1 {
		t.Fatalf("expected 1 objective status, got %d", len(st))
	}
	return st[0].State
}

// TestSLOHealthyPageRecovery drives an availability objective through
// healthy -> error storm (page) -> partial recovery (warn) -> full recovery
// (ok) with an injected clock — hours of burn, zero wall-clock sleeps.
func TestSLOHealthyPageRecovery(t *testing.T) {
	cfg := Config{IntervalSeconds: 10, Objectives: []Objective{{
		Name: "avail", Class: "compile", Target: 0.99,
		Page: Rule{ShortSeconds: 60, LongSeconds: 300, Burn: 10},
		Warn: Rule{ShortSeconds: 300, LongSeconds: 600, Burn: 2},
	}}}
	f := newTestFeed(t, cfg)

	// 10 minutes of clean traffic: no burn, no events.
	for i := 0; i < 60; i++ {
		f.step(100, 100)
	}
	if got := f.state(t); got != "ok" {
		t.Fatalf("healthy state = %s, want ok", got)
	}
	if len(f.events) != 0 {
		t.Fatalf("healthy run emitted events: %+v", f.events)
	}

	// Error storm: 50%% failures. Budget is 1%%, so the 60s window burns at
	// 50x; after 2 minutes the 300s window carries 1200 bad of 3000+ total
	// (>10x) — both page windows fire.
	for i := 0; i < 12; i++ {
		f.step(50, 100)
	}
	if got := f.state(t); got != "page" {
		t.Fatalf("storm state = %s, want page", got)
	}
	if len(f.events) == 0 || f.events[len(f.events)-1].To != StatePage {
		t.Fatalf("expected a transition-to-page event, got %+v", f.events)
	}

	// Traffic heals: the 60s page window clears within 7 ticks, so paging
	// stops, but the storm still sits inside both warn windows.
	for i := 0; i < 7; i++ {
		f.step(100, 100)
	}
	if got := f.state(t); got != "warn" {
		t.Fatalf("early-recovery state = %s, want warn", got)
	}

	// Ten more clean minutes push the storm out of the 600s warn window.
	for i := 0; i < 60; i++ {
		f.step(100, 100)
	}
	if got := f.state(t); got != "ok" {
		t.Fatalf("recovered state = %s, want ok", got)
	}
	var transitions []State
	for _, ev := range f.events {
		transitions = append(transitions, ev.To)
	}
	// The storm escalates warn -> page (the warn rule's lower threshold
	// fires a tick or two earlier), then de-escalates page -> warn -> ok.
	want := []State{StateWarn, StatePage, StateWarn, StateOK}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
	if f.eng.WorstState() != StateOK {
		t.Errorf("WorstState = %v, want ok", f.eng.WorstState())
	}
}

// TestSLOWindowClampAtBoot: a freshly booted engine clamps windows to the
// history it holds, so a drill (or real incident) minutes after boot still
// pages instead of waiting an hour for the long window to fill.
func TestSLOWindowClampAtBoot(t *testing.T) {
	cfg := Config{IntervalSeconds: 10, Objectives: []Objective{{
		Name: "avail", Class: "compile", Target: 0.999,
		// Default-scale windows: 5m/1h page at 14.4x.
	}}}
	f := newTestFeed(t, cfg)
	for i := 0; i < 3; i++ {
		f.step(50, 100) // 50% errors vs a 0.1% budget: 500x burn
	}
	if got := f.state(t); got != "page" {
		t.Fatalf("boot-time storm state = %s, want page", got)
	}
}

// TestSLONoTraffic: windows with no traffic burn nothing.
func TestSLONoTraffic(t *testing.T) {
	f := newTestFeed(t, Config{IntervalSeconds: 10, Objectives: []Objective{{
		Name: "avail", Class: "compile", Target: 0.99,
	}}})
	for i := 0; i < 10; i++ {
		f.step(0, 0)
	}
	if got := f.state(t); got != "ok" {
		t.Fatalf("idle state = %s, want ok", got)
	}
	st := f.eng.Status()[0]
	for _, w := range st.Windows {
		if w.Burn != 0 {
			t.Errorf("idle burn %s = %v, want 0", w.Window, w.Burn)
		}
	}
}

// TestSLOConfigValidation: ParseConfig fills defaults and rejects bad input.
func TestSLOConfigValidation(t *testing.T) {
	cfg, err := ParseConfig([]byte(`{"objectives":[{"name":"a","class":"compile","target":0.99}]}`))
	if err != nil {
		t.Fatalf("minimal config rejected: %v", err)
	}
	if cfg.IntervalSeconds != 10 {
		t.Errorf("default interval = %v, want 10", cfg.IntervalSeconds)
	}
	if cfg.Objectives[0].Page != DefaultPageRule() || cfg.Objectives[0].Warn != DefaultWarnRule() {
		t.Errorf("default rules not filled: %+v", cfg.Objectives[0])
	}
	for name, raw := range map[string]string{
		"no-objectives": `{"objectives":[]}`,
		"bad-target":    `{"objectives":[{"name":"a","class":"c","target":1.5}]}`,
		"zero-target":   `{"objectives":[{"name":"a","class":"c","target":0}]}`,
		"no-name":       `{"objectives":[{"class":"c","target":0.9}]}`,
		"dup-name":      `{"objectives":[{"name":"a","class":"c","target":0.9},{"name":"a","class":"c","target":0.9}]}`,
		"bad-rule":      `{"objectives":[{"name":"a","class":"c","target":0.9,"page":{"shortSeconds":60,"longSeconds":30,"burn":2}}]}`,
		"bad-json":      `{`,
	} {
		if _, err := ParseConfig([]byte(raw)); err == nil {
			t.Errorf("%s: config accepted", name)
		}
	}
	def := DefaultConfig([]string{"compile", "simulate"})
	if err := def.Normalize(); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
	if len(def.Objectives) != 4 {
		t.Errorf("DefaultConfig objectives = %d, want 4", len(def.Objectives))
	}
}

// TestSLOMetricsRegister: the engine's scrape-time metrics render and parse.
func TestSLOMetricsRegister(t *testing.T) {
	f := newTestFeed(t, Config{IntervalSeconds: 10, Objectives: []Objective{{
		Name: "compile-availability", Class: "compile", Target: 0.99,
	}}})
	reg := obs.NewRegistry()
	f.eng.Register(reg)
	for i := 0; i < 3; i++ {
		f.step(100, 100)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		`atomique_slo_state{objective="compile-availability"} 0`,
		`atomique_slo_burn_rate{objective="compile-availability",window="pageShort"} 0`,
		`atomique_slo_target{objective="compile-availability"} 0.99`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q\n---\n%s", want, out)
		}
	}
	if _, err := obs.ParseExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("ParseExposition rejected SLO metrics: %v", err)
	}
}
