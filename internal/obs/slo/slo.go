// Package slo is the burn-rate engine: declarative service-level objectives
// per request class, evaluated periodically from the service's own counters
// and histograms with the multi-window, multi-burn-rate rules of the SRE
// workbook. A "page" fires only when both a short and a long window burn the
// error budget faster than the page threshold — the short window makes the
// alert fast, the long window keeps a single bad second from paging — and a
// slower pair of windows drives the "warn" state. The engine is
// pull-only: it samples cumulative (good, total) pairs, so it needs no hooks
// in the request path.
package slo

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sync"
	"time"

	"atomique/internal/obs"
)

// Rule is one multi-window burn-rate rule: both windows must burn faster
// than Burn for the rule to fire.
type Rule struct {
	ShortSeconds float64 `json:"shortSeconds"`
	LongSeconds  float64 `json:"longSeconds"`
	Burn         float64 `json:"burn"`
}

// DefaultPageRule is the fast pair: 5m/1h at 14.4x burn — a full 30-day
// budget gone in ~2 days.
func DefaultPageRule() Rule { return Rule{ShortSeconds: 300, LongSeconds: 3600, Burn: 14.4} }

// DefaultWarnRule is the slow pair: 30m/6h at 6x burn — budget gone in ~5
// days.
func DefaultWarnRule() Rule { return Rule{ShortSeconds: 1800, LongSeconds: 21600, Burn: 6} }

// Objective is one declarative SLO. LatencySeconds == 0 declares an
// availability objective (good = non-error outcomes); > 0 declares a
// latency-attainment objective (good = requests finishing within the
// threshold). Target is the good/total fraction promised (e.g. 0.999).
type Objective struct {
	Name           string  `json:"name"`
	Class          string  `json:"class"`
	LatencySeconds float64 `json:"latencySeconds,omitempty"`
	Target         float64 `json:"target"`
	Page           Rule    `json:"page,omitzero"`
	Warn           Rule    `json:"warn,omitzero"`
}

// Kind names the objective flavour for status payloads.
func (o Objective) Kind() string {
	if o.LatencySeconds > 0 {
		return "latency"
	}
	return "availability"
}

// Config is the engine's declarative input, JSON-loadable via -slo-config.
type Config struct {
	// IntervalSeconds is the sampling/evaluation period (default 10s).
	IntervalSeconds float64     `json:"intervalSeconds,omitempty"`
	Objectives      []Objective `json:"objectives"`
}

// DefaultConfig declares, for each request class, an availability objective
// and a latency objective at that class's expected threshold. The latency
// thresholds sit on histogram bucket bounds (the engine counts good requests
// via bucket sums).
func DefaultConfig(classes []string) Config {
	cfg := Config{IntervalSeconds: 10}
	for _, c := range classes {
		cfg.Objectives = append(cfg.Objectives,
			Objective{Name: c + "-availability", Class: c, Target: 0.999},
			Objective{Name: c + "-latency", Class: c, LatencySeconds: defaultLatencyThreshold(c), Target: 0.99},
		)
	}
	return cfg
}

// defaultLatencyThreshold picks a per-class threshold on a power-of-two
// bucket bound: compiles are interactive (~tens of ms), simulate and sample
// jobs run shots and get a second-scale budget.
func defaultLatencyThreshold(class string) float64 {
	switch class {
	case "compile":
		return 0.262144 // 2^18 us
	default:
		return 2.097152 // 2^21 us
	}
}

// Normalize fills rule/interval defaults and validates; it is called by New
// and by config loading.
func (c *Config) Normalize() error {
	if c.IntervalSeconds <= 0 {
		c.IntervalSeconds = 10
	}
	seen := map[string]bool{}
	for i := range c.Objectives {
		o := &c.Objectives[i]
		if o.Name == "" {
			return fmt.Errorf("slo: objective %d has no name", i)
		}
		if seen[o.Name] {
			return fmt.Errorf("slo: duplicate objective name %q", o.Name)
		}
		seen[o.Name] = true
		if o.Target <= 0 || o.Target >= 1 {
			return fmt.Errorf("slo: objective %s: target must be in (0,1), got %v", o.Name, o.Target)
		}
		if o.LatencySeconds < 0 {
			return fmt.Errorf("slo: objective %s: negative latency threshold", o.Name)
		}
		if o.Page == (Rule{}) {
			o.Page = DefaultPageRule()
		}
		if o.Warn == (Rule{}) {
			o.Warn = DefaultWarnRule()
		}
		for _, r := range []Rule{o.Page, o.Warn} {
			if r.ShortSeconds <= 0 || r.LongSeconds < r.ShortSeconds || r.Burn <= 0 {
				return fmt.Errorf("slo: objective %s: rule needs 0 < short <= long and burn > 0", o.Name)
			}
		}
	}
	return nil
}

// ParseConfig decodes and validates a JSON config.
func ParseConfig(raw []byte) (Config, error) {
	var c Config
	if err := json.Unmarshal(raw, &c); err != nil {
		return Config{}, fmt.Errorf("slo: parse config: %w", err)
	}
	if len(c.Objectives) == 0 {
		return Config{}, fmt.Errorf("slo: config declares no objectives")
	}
	if err := c.Normalize(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// LoadConfig reads a JSON config file.
func LoadConfig(path string) (Config, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("slo: %w", err)
	}
	return ParseConfig(raw)
}

// State is an objective's alert state.
type State int

const (
	StateOK State = iota
	StateWarn
	StatePage
)

func (s State) String() string {
	switch s {
	case StatePage:
		return "page"
	case StateWarn:
		return "warn"
	default:
		return "ok"
	}
}

// WindowBurn is one evaluated window's burn rate.
type WindowBurn struct {
	Window  string  `json:"window"` // pageShort | pageLong | warnShort | warnLong
	Seconds float64 `json:"seconds"`
	Burn    float64 `json:"burn"`
}

// ObjectiveStatus is one objective's evaluated state, served by /v1/slo and
// embedded in /v1/stats.
type ObjectiveStatus struct {
	Name           string       `json:"name"`
	Class          string       `json:"class"`
	Kind           string       `json:"kind"`
	Target         float64      `json:"target"`
	LatencySeconds float64      `json:"latencySeconds,omitempty"`
	State          string       `json:"state"`
	Since          time.Time    `json:"since,omitzero"`
	Windows        []WindowBurn `json:"windows"`
	// BudgetRemaining is the fraction of the error budget left over the warn
	// rule's long window (1 = untouched, <= 0 = exhausted).
	BudgetRemaining float64 `json:"budgetRemaining"`
	Good            float64 `json:"good"`  // cumulative good count at last sample
	Total           float64 `json:"total"` // cumulative total count at last sample
}

// Event announces a state transition; the service wires it to the flight
// recorder (a transition into page captures a bundle).
type Event struct {
	Objective string
	Class     string
	From, To  State
	At        time.Time
	Reason    string
}

// TotalsFunc returns an objective's cumulative (good, total) counts — for
// availability, successful vs. all finished requests of the class; for
// latency, requests under the threshold vs. all observed.
type TotalsFunc func(o Objective) (good, total float64)

// sample is one periodic cumulative observation.
type sample struct {
	at          time.Time
	good, total float64
}

// objectiveState is the engine's per-objective ring of samples plus the
// current evaluation.
type objectiveState struct {
	obj     Objective
	ring    []sample
	n       int // ring fill
	next    int
	status  ObjectiveStatus
	current State
	since   time.Time
}

// Engine evaluates a Config against a TotalsFunc on a fixed interval.
type Engine struct {
	cfg    Config
	totals TotalsFunc
	clock  func() time.Time
	onEv   func(Event)

	mu   sync.Mutex
	objs []*objectiveState

	stop chan struct{}
	done chan struct{}
}

// Option configures an Engine.
type Option func(*Engine)

// WithClock injects a clock — deterministic tests drive the engine through
// hours of burn without wall-clock sleeps.
func WithClock(fn func() time.Time) Option { return func(e *Engine) { e.clock = fn } }

// WithOnEvent installs a state-transition callback, invoked synchronously
// from Tick after the engine lock is released; keep it fast (the service
// hands it to the flight recorder, whose Trigger returns immediately).
func WithOnEvent(fn func(Event)) Option { return func(e *Engine) { e.onEv = fn } }

// New builds an engine. cfg must already be normalized via ParseConfig /
// DefaultConfig (New normalizes again defensively and panics on an invalid
// config — a programming error, since loaders validate first).
func New(cfg Config, totals TotalsFunc, opts ...Option) *Engine {
	if err := cfg.Normalize(); err != nil {
		panic(err)
	}
	e := &Engine{cfg: cfg, totals: totals, clock: time.Now,
		stop: make(chan struct{}), done: make(chan struct{})}
	for _, opt := range opts {
		opt(e)
	}
	for _, o := range cfg.Objectives {
		maxWin := math.Max(o.Page.LongSeconds, o.Warn.LongSeconds)
		n := int(maxWin/cfg.IntervalSeconds) + 2
		if n > 4096 {
			n = 4096 // ~11h of 10s samples; longer windows clamp to available data
		}
		st := &objectiveState{obj: o, ring: make([]sample, n)}
		st.status = ObjectiveStatus{Name: o.Name, Class: o.Class, Kind: o.Kind(),
			Target: o.Target, LatencySeconds: o.LatencySeconds, State: StateOK.String(),
			BudgetRemaining: 1}
		e.objs = append(e.objs, st)
	}
	return e
}

// Start begins periodic evaluation (one immediate tick, then every
// interval). Stop terminates it.
func (e *Engine) Start() {
	go func() {
		defer close(e.done)
		e.Tick()
		t := time.NewTicker(time.Duration(e.cfg.IntervalSeconds * float64(time.Second)))
		defer t.Stop()
		for {
			select {
			case <-e.stop:
				return
			case <-t.C:
				e.Tick()
			}
		}
	}()
}

// Stop halts the evaluation loop (idempotent is not needed; call once).
func (e *Engine) Stop() {
	close(e.stop)
	<-e.done
}

// Tick takes one sample per objective and re-evaluates. Exported so tests
// (and the Start loop) drive evaluation explicitly.
func (e *Engine) Tick() {
	now := e.clock()
	var events []Event
	e.mu.Lock()
	for _, st := range e.objs {
		good, total := e.totals(st.obj)
		st.ring[st.next] = sample{at: now, good: good, total: total}
		st.next = (st.next + 1) % len(st.ring)
		if st.n < len(st.ring) {
			st.n++
		}
		ev, changed := e.evaluate(st, now)
		if changed {
			events = append(events, ev)
		}
	}
	e.mu.Unlock()
	if e.onEv != nil {
		for _, ev := range events {
			e.onEv(ev)
		}
	}
}

// evaluate recomputes one objective's burn rates and state. Caller holds
// e.mu.
func (e *Engine) evaluate(st *objectiveState, now time.Time) (Event, bool) {
	latest := st.ring[(st.next-1+len(st.ring))%len(st.ring)]
	budget := 1 - st.obj.Target
	windows := []struct {
		name    string
		seconds float64
		burn    float64 // rule threshold
	}{
		{"pageShort", st.obj.Page.ShortSeconds, st.obj.Page.Burn},
		{"pageLong", st.obj.Page.LongSeconds, st.obj.Page.Burn},
		{"warnShort", st.obj.Warn.ShortSeconds, st.obj.Warn.Burn},
		{"warnLong", st.obj.Warn.LongSeconds, st.obj.Warn.Burn},
	}
	burns := make([]WindowBurn, len(windows))
	fired := make([]bool, len(windows))
	for i, w := range windows {
		b := st.burnOver(now, w.seconds, budget, latest)
		burns[i] = WindowBurn{Window: w.name, Seconds: w.seconds, Burn: b}
		fired[i] = b >= w.burn
	}
	next := StateOK
	switch {
	case fired[0] && fired[1]:
		next = StatePage
	case fired[2] && fired[3]:
		next = StateWarn
	}
	// Budget remaining over the warn long window: how much of the error
	// budget the recent past has consumed.
	warnLongBurn := burns[3].Burn
	remaining := 1 - warnLongBurn*math.Min(1, ageSeconds(st, now)/st.obj.Warn.LongSeconds)
	changed := next != st.current
	if changed || st.since.IsZero() {
		st.since = now
	}
	ev := Event{Objective: st.obj.Name, Class: st.obj.Class, From: st.current, To: next, At: now,
		Reason: fmt.Sprintf("pageShort=%.1fx pageLong=%.1fx warnShort=%.1fx warnLong=%.1fx (budget %.4f)",
			burns[0].Burn, burns[1].Burn, burns[2].Burn, burns[3].Burn, budget)}
	st.current = next
	st.status = ObjectiveStatus{
		Name: st.obj.Name, Class: st.obj.Class, Kind: st.obj.Kind(),
		Target: st.obj.Target, LatencySeconds: st.obj.LatencySeconds,
		State: next.String(), Since: st.since, Windows: burns,
		BudgetRemaining: remaining, Good: latest.good, Total: latest.total,
	}
	return ev, changed
}

// ageSeconds is how much history the ring actually holds. Caller holds e.mu.
func ageSeconds(st *objectiveState, now time.Time) float64 {
	if st.n == 0 {
		return 0
	}
	oldest := st.ring[(st.next-st.n+len(st.ring))%len(st.ring)]
	return now.Sub(oldest.at).Seconds()
}

// burnOver computes the burn rate over the trailing window: the error
// fraction of traffic in the window divided by the error budget. The window
// clamps to available history (a freshly booted service evaluates what it
// has, so drills and early incidents still trip). Windows with no traffic
// burn nothing.
func (st *objectiveState) burnOver(now time.Time, windowSeconds, budget float64, latest sample) float64 {
	if st.n == 0 || budget <= 0 {
		return 0
	}
	cutoff := now.Add(-time.Duration(windowSeconds * float64(time.Second)))
	// Walk backwards to the newest sample at or before the cutoff; fall back
	// to the oldest held sample (window clamp).
	base := st.ring[(st.next-st.n+len(st.ring))%len(st.ring)]
	for i := 1; i <= st.n; i++ {
		s := st.ring[(st.next-i+len(st.ring))%len(st.ring)]
		if !s.at.After(cutoff) {
			base = s
			break
		}
	}
	dTotal := latest.total - base.total
	if dTotal <= 0 {
		return 0
	}
	dBad := dTotal - (latest.good - base.good)
	errFrac := dBad / dTotal
	if errFrac < 0 {
		errFrac = 0
	}
	return errFrac / budget
}

// Status returns every objective's latest evaluation, in config order.
func (e *Engine) Status() []ObjectiveStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]ObjectiveStatus, len(e.objs))
	for i, st := range e.objs {
		out[i] = st.status
	}
	return out
}

// WorstState returns the most severe state across objectives — the one-line
// health summary.
func (e *Engine) WorstState() State {
	e.mu.Lock()
	defer e.mu.Unlock()
	worst := StateOK
	for _, st := range e.objs {
		if st.current > worst {
			worst = st.current
		}
	}
	return worst
}

// Register exports the engine's state as atomique_slo_* metrics: per
// objective×window burn rates, the numeric alert state, and remaining error
// budget — all computed at scrape time from the last Tick.
func (e *Engine) Register(reg *obs.Registry) {
	burn := reg.GaugeFuncVec("atomique_slo_burn_rate",
		"Error-budget burn rate per objective and window (1 = exactly on budget).",
		"objective", "window")
	state := reg.GaugeFuncVec("atomique_slo_state",
		"Objective alert state: 0 ok, 1 warn, 2 page.", "objective")
	budget := reg.GaugeFuncVec("atomique_slo_error_budget_remaining",
		"Fraction of the error budget remaining over the warn long window.", "objective")
	target := reg.GaugeFuncVec("atomique_slo_target",
		"Declared objective target (good/total fraction).", "objective")
	for i, st := range e.objs {
		idx := i
		for _, w := range []string{"pageShort", "pageLong", "warnShort", "warnLong"} {
			win := w
			burn.Register(func() float64 {
				e.mu.Lock()
				defer e.mu.Unlock()
				for _, wb := range e.objs[idx].status.Windows {
					if wb.Window == win {
						return wb.Burn
					}
				}
				return 0
			}, st.obj.Name, win)
		}
		state.Register(func() float64 {
			e.mu.Lock()
			defer e.mu.Unlock()
			return float64(e.objs[idx].current)
		}, st.obj.Name)
		budget.Register(func() float64 {
			e.mu.Lock()
			defer e.mu.Unlock()
			return e.objs[idx].status.BudgetRemaining
		}, st.obj.Name)
		target.Register(func() float64 { return e.objs[idx].obj.Target }, st.obj.Name)
	}
}
