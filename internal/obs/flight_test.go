package obs

import (
	"context"
	"os"
	"testing"
	"time"
)

func textCollector(name, content string) Collector {
	return Collector{Name: name, Collect: func(_ context.Context, w *os.File) error {
		_, err := w.WriteString(content)
		return err
	}}
}

// TestFlightRecorderCapture: a manual trigger captures every collector —
// including real goroutine/heap/CPU profiles — into a complete bundle.
func TestFlightRecorderCapture(t *testing.T) {
	dir := t.TempDir()
	collectors := append([]Collector{textCollector("traces.json", `[{"id":"x"}]`)},
		ProfileCollectors(30*time.Millisecond)...)
	rec, err := NewRecorder(RecorderConfig{Dir: dir, MaxBundles: 4, Debounce: time.Hour}, collectors...)
	if err != nil {
		t.Fatal(err)
	}
	id, started := rec.Trigger("manual", "drill", true)
	if !started {
		t.Fatal("manual trigger did not start a capture")
	}
	rec.Wait()
	meta, ok := rec.Get(id)
	if !ok || !meta.Complete {
		t.Fatalf("bundle %s missing or incomplete: %+v", id, meta)
	}
	wantFiles := map[string]bool{"traces.json": false, "cpu.pprof": false,
		"goroutine.pprof": false, "heap.pprof": false}
	for _, f := range meta.Files {
		if _, want := wantFiles[f.Name]; want {
			wantFiles[f.Name] = f.Bytes > 0 && f.Error == ""
		}
	}
	for name, good := range wantFiles {
		if !good {
			t.Errorf("bundle file %s missing, empty, or errored: %+v", name, meta.Files)
		}
	}
	if p, ok := rec.FilePath(id, "traces.json"); !ok {
		t.Error("FilePath failed for traces.json")
	} else if raw, err := os.ReadFile(p); err != nil || string(raw) != `[{"id":"x"}]` {
		t.Errorf("traces.json content wrong: %q, %v", raw, err)
	}
	if _, ok := rec.FilePath(id, "../escape"); ok {
		t.Error("FilePath must refuse path traversal")
	}
}

// TestFlightRecorderDebounceAndRing: automatic triggers are debounced,
// manual ones are not, and the on-disk ring deletes the oldest bundle —
// across a recorder restart too.
func TestFlightRecorderDebounceAndRing(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1_700_000_000, 0)
	cfg := RecorderConfig{Dir: dir, MaxBundles: 2, Debounce: time.Minute,
		Clock: func() time.Time { return now }}
	rec, err := NewRecorder(cfg, textCollector("state.txt", "s"))
	if err != nil {
		t.Fatal(err)
	}
	firstID, started := rec.Trigger("saturation", "burst", false)
	if !started {
		t.Fatal("first auto trigger should start")
	}
	rec.Wait()
	if _, started := rec.Trigger("saturation", "burst", false); started {
		t.Error("second auto trigger inside the debounce window must be skipped")
	}
	now = now.Add(30 * time.Second) // still inside the 1m debounce
	if _, started := rec.Trigger("slo-page", "burn", false); started {
		t.Error("auto trigger at +30s must still be debounced")
	}
	if _, started := rec.Trigger("manual", "drill", true); !started {
		t.Fatal("manual trigger must bypass the debounce")
	}
	rec.Wait()
	now = now.Add(2 * time.Minute)
	if _, started := rec.Trigger("panic", "boom", false); !started {
		t.Fatal("auto trigger after the debounce window should start")
	}
	rec.Wait()
	list := rec.List()
	if len(list) != 2 {
		t.Fatalf("ring holds %d bundles, want 2", len(list))
	}
	if list[0].Trigger != "panic" || list[1].Trigger != "manual" {
		t.Errorf("List order/pruning wrong: %s, %s", list[0].Trigger, list[1].Trigger)
	}
	if _, err := os.Stat(dir + "/" + firstID); !os.IsNotExist(err) {
		t.Errorf("pruned bundle %s still on disk", firstID)
	}
	// A fresh recorder over the same directory re-indexes surviving bundles.
	rec2, err := NewRecorder(cfg, textCollector("state.txt", "s"))
	if err != nil {
		t.Fatal(err)
	}
	if got := rec2.List(); len(got) != 2 || !got[0].Complete {
		t.Errorf("restarted recorder lost bundles: %+v", got)
	}
}
