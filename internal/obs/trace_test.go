package obs

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	tr := NewTrace("", "job")
	if !ValidTraceID(tr.ID) {
		t.Fatalf("minted trace ID %q invalid", tr.ID)
	}
	tr.Root.SetAttr("backend", "atomique")
	q := tr.Root.Record("queue.wait", time.Now().Add(-time.Millisecond), time.Millisecond)
	if q == nil {
		t.Fatal("Record returned nil")
	}
	c := tr.Root.StartChild("compile")
	c.Record("pass:route", time.Now(), 500*time.Microsecond)
	c.End()
	tr.Root.End()

	snap := tr.Root.Snapshot()
	if snap.Name != "job" || len(snap.Children) != 2 {
		t.Fatalf("snapshot shape wrong: %+v", snap)
	}
	if snap.Attrs["backend"] != "atomique" {
		t.Errorf("attrs lost: %v", snap.Attrs)
	}
	// Children sorted by start: queue.wait began 1ms before compile.
	if snap.Children[0].Name != "queue.wait" || snap.Children[1].Name != "compile" {
		t.Errorf("children order: %s, %s", snap.Children[0].Name, snap.Children[1].Name)
	}
	if len(snap.Children[1].Children) != 1 || snap.Children[1].Children[0].Name != "pass:route" {
		t.Errorf("nested span lost: %+v", snap.Children[1])
	}
	var buf bytes.Buffer
	snap.WriteTree(&buf)
	if !strings.Contains(buf.String(), "pass:route") {
		t.Errorf("WriteTree missing nested span:\n%s", buf.String())
	}
}

// TestSpanNilSafety: all span methods must no-op on nil receivers — that is
// the untraced fast path every instrumentation site relies on.
func TestSpanNilSafety(t *testing.T) {
	var s *Span
	s.SetAttr("a", "b")
	s.End()
	if c := s.StartChild("x"); c != nil {
		t.Error("nil StartChild returned non-nil")
	}
	if c := s.Record("x", time.Now(), 0); c != nil {
		t.Error("nil Record returned non-nil")
	}
	if snap := s.Snapshot(); snap != nil {
		t.Error("nil Snapshot returned non-nil")
	}
}

// TestSpanConcurrentChildren records children from many goroutines (the
// trajectory chunk pattern) and checks the cap + dropped accounting.
func TestSpanConcurrentChildren(t *testing.T) {
	root := newSpan("trajectory")
	const n = 500
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			root.Record(fmt.Sprintf("chunk-%d", i), time.Now(), time.Microsecond)
		}()
	}
	wg.Wait()
	root.End()
	snap := root.Snapshot()
	if len(snap.Children) != maxSpanChildren {
		t.Errorf("kept %d children, want cap %d", len(snap.Children), maxSpanChildren)
	}
	if snap.DroppedChildren != n-maxSpanChildren {
		t.Errorf("dropped = %d, want %d", snap.DroppedChildren, n-maxSpanChildren)
	}
}

func TestContextPropagation(t *testing.T) {
	ctx := context.Background()
	if SpanFromContext(ctx) != nil {
		t.Fatal("empty context carries a span")
	}
	sp := newSpan("root")
	ctx = ContextWithSpan(ctx, sp)
	if SpanFromContext(ctx) != sp {
		t.Fatal("span not propagated")
	}
	if TraceIDFromContext(ctx) != "" {
		t.Fatal("empty trace ID expected")
	}
	ctx = ContextWithTraceID(ctx, "abc123")
	if TraceIDFromContext(ctx) != "abc123" {
		t.Fatal("trace ID not propagated")
	}
}

func TestValidTraceID(t *testing.T) {
	for id, want := range map[string]bool{
		"":                      false,
		"abc":                   true,
		"A-b_9":                 true,
		strings.Repeat("a", 64): true,
		strings.Repeat("a", 65): false,
		"has space":             false,
		"newline\n":             false,
		`quote"`:                false,
	} {
		if got := ValidTraceID(id); got != want {
			t.Errorf("ValidTraceID(%q) = %v, want %v", id, got, want)
		}
	}
}

func TestMintTraceIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := MintTraceID()
		if !ValidTraceID(id) {
			t.Fatalf("minted invalid ID %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate minted ID %q", id)
		}
		seen[id] = true
	}
}

func TestTraceStoreTiered(t *testing.T) {
	// Capacity 4 splits into a 3-slot sampled ring and a 1-slot pinned ring.
	ts := NewTraceStore(4)
	add := func(id string, pinned bool) {
		tr := NewTrace(id, "job")
		tr.Root.End()
		if pinned {
			ts.AddPinned(tr)
		} else {
			ts.Add(tr)
		}
	}
	for i := 0; i < 5; i++ {
		add(fmt.Sprintf("id-%d", i), false)
	}
	// Sampled FIFO: oldest two evicted, newest three retrievable.
	for _, id := range []string{"id-0", "id-1"} {
		if _, ok := ts.Get(id); ok {
			t.Errorf("evicted trace %s still retrievable", id)
		}
	}
	for _, id := range []string{"id-2", "id-3", "id-4"} {
		if _, ok := ts.Get(id); !ok {
			t.Errorf("trace %s missing", id)
		}
	}
	// A pinned trace survives any amount of ordinary churn.
	add("pin-0", true)
	for i := 5; i < 8; i++ {
		add(fmt.Sprintf("id-%d", i), false)
	}
	if _, ok := ts.Get("pin-0"); !ok {
		t.Fatal("pinned trace evicted by sampled churn")
	}
	// But another pinned trace ages it out of the 1-slot reserve.
	add("pin-1", true)
	if _, ok := ts.Get("pin-0"); ok {
		t.Error("pin-0 should have been evicted by pin-1")
	}
	recent := ts.Recent(0)
	want := []string{"pin-1", "id-7", "id-6", "id-5"}
	if len(recent) != len(want) {
		t.Fatalf("Recent len = %d, want %d", len(recent), len(want))
	}
	for i, id := range want {
		if recent[i].ID != id {
			t.Errorf("Recent[%d] = %s, want %s", i, recent[i].ID, id)
		}
	}
	if got := ts.Recent(1); len(got) != 1 || got[0].ID != "pin-1" {
		t.Errorf("Recent(1) wrong: %v", got)
	}
	if pinned := ts.Pinned(); len(pinned) != 1 || pinned[0].ID != "pin-1" {
		t.Errorf("Pinned() wrong: %v", pinned)
	}
	st := ts.Stats()
	if st.Adds != 10 || st.Pins != 2 || st.EvictedSampled != 5 || st.EvictedPinned != 1 {
		t.Errorf("stats = %+v, want adds=10 pins=2 evictedSampled=5 evictedPinned=1", st)
	}
	if st.Stored != 4 || st.PinnedStored != 1 || ts.Len() != 4 {
		t.Errorf("occupancy = %+v len=%d, want stored=4 pinnedStored=1", st, ts.Len())
	}
}

func TestTraceStoreSampling(t *testing.T) {
	ts := NewTraceStore(8)
	ts.SetSampleRate(0)
	for i := 0; i < 10; i++ {
		tr := NewTrace(fmt.Sprintf("s-%d", i), "job")
		tr.Root.End()
		ts.Add(tr)
	}
	pin := NewTrace("pin", "job")
	pin.Root.End()
	ts.AddPinned(pin)
	st := ts.Stats()
	if st.SampledOut != 10 || st.Stored != 1 || st.PinnedStored != 1 {
		t.Errorf("rate-0 stats = %+v, want sampledOut=10 stored=1 pinnedStored=1", st)
	}
	if _, ok := ts.Get("pin"); !ok {
		t.Error("pinned trace must bypass the sampling coin")
	}
}

// TestTraceStoreConcurrent adds from many goroutines under -race.
func TestTraceStoreConcurrent(t *testing.T) {
	// Capacity 16 = 12 sampled + 4 pinned slots; both rings fill.
	ts := NewTraceStore(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := NewTrace(fmt.Sprintf("w%d-%d", w, i), "job")
				tr.Root.End()
				if i%50 == 0 {
					ts.AddPinned(tr)
				} else {
					ts.Add(tr)
				}
				ts.Recent(4)
				ts.Pinned()
				ts.Get(tr.ID)
			}
		}()
	}
	wg.Wait()
	if ts.Len() != 16 {
		t.Errorf("len = %d, want 16", ts.Len())
	}
}
