package obs

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	tr := NewTrace("", "job")
	if !ValidTraceID(tr.ID) {
		t.Fatalf("minted trace ID %q invalid", tr.ID)
	}
	tr.Root.SetAttr("backend", "atomique")
	q := tr.Root.Record("queue.wait", time.Now().Add(-time.Millisecond), time.Millisecond)
	if q == nil {
		t.Fatal("Record returned nil")
	}
	c := tr.Root.StartChild("compile")
	c.Record("pass:route", time.Now(), 500*time.Microsecond)
	c.End()
	tr.Root.End()

	snap := tr.Root.Snapshot()
	if snap.Name != "job" || len(snap.Children) != 2 {
		t.Fatalf("snapshot shape wrong: %+v", snap)
	}
	if snap.Attrs["backend"] != "atomique" {
		t.Errorf("attrs lost: %v", snap.Attrs)
	}
	// Children sorted by start: queue.wait began 1ms before compile.
	if snap.Children[0].Name != "queue.wait" || snap.Children[1].Name != "compile" {
		t.Errorf("children order: %s, %s", snap.Children[0].Name, snap.Children[1].Name)
	}
	if len(snap.Children[1].Children) != 1 || snap.Children[1].Children[0].Name != "pass:route" {
		t.Errorf("nested span lost: %+v", snap.Children[1])
	}
	var buf bytes.Buffer
	snap.WriteTree(&buf)
	if !strings.Contains(buf.String(), "pass:route") {
		t.Errorf("WriteTree missing nested span:\n%s", buf.String())
	}
}

// TestSpanNilSafety: all span methods must no-op on nil receivers — that is
// the untraced fast path every instrumentation site relies on.
func TestSpanNilSafety(t *testing.T) {
	var s *Span
	s.SetAttr("a", "b")
	s.End()
	if c := s.StartChild("x"); c != nil {
		t.Error("nil StartChild returned non-nil")
	}
	if c := s.Record("x", time.Now(), 0); c != nil {
		t.Error("nil Record returned non-nil")
	}
	if snap := s.Snapshot(); snap != nil {
		t.Error("nil Snapshot returned non-nil")
	}
}

// TestSpanConcurrentChildren records children from many goroutines (the
// trajectory chunk pattern) and checks the cap + dropped accounting.
func TestSpanConcurrentChildren(t *testing.T) {
	root := newSpan("trajectory")
	const n = 500
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			root.Record(fmt.Sprintf("chunk-%d", i), time.Now(), time.Microsecond)
		}()
	}
	wg.Wait()
	root.End()
	snap := root.Snapshot()
	if len(snap.Children) != maxSpanChildren {
		t.Errorf("kept %d children, want cap %d", len(snap.Children), maxSpanChildren)
	}
	if snap.DroppedChildren != n-maxSpanChildren {
		t.Errorf("dropped = %d, want %d", snap.DroppedChildren, n-maxSpanChildren)
	}
}

func TestContextPropagation(t *testing.T) {
	ctx := context.Background()
	if SpanFromContext(ctx) != nil {
		t.Fatal("empty context carries a span")
	}
	sp := newSpan("root")
	ctx = ContextWithSpan(ctx, sp)
	if SpanFromContext(ctx) != sp {
		t.Fatal("span not propagated")
	}
	if TraceIDFromContext(ctx) != "" {
		t.Fatal("empty trace ID expected")
	}
	ctx = ContextWithTraceID(ctx, "abc123")
	if TraceIDFromContext(ctx) != "abc123" {
		t.Fatal("trace ID not propagated")
	}
}

func TestValidTraceID(t *testing.T) {
	for id, want := range map[string]bool{
		"":                      false,
		"abc":                   true,
		"A-b_9":                 true,
		strings.Repeat("a", 64): true,
		strings.Repeat("a", 65): false,
		"has space":             false,
		"newline\n":             false,
		`quote"`:                false,
	} {
		if got := ValidTraceID(id); got != want {
			t.Errorf("ValidTraceID(%q) = %v, want %v", id, got, want)
		}
	}
}

func TestMintTraceIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := MintTraceID()
		if !ValidTraceID(id) {
			t.Fatalf("minted invalid ID %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate minted ID %q", id)
		}
		seen[id] = true
	}
}

func TestTraceStoreRing(t *testing.T) {
	ts := NewTraceStore(3)
	var ids []string
	for i := 0; i < 5; i++ {
		tr := NewTrace(fmt.Sprintf("id-%d", i), "job")
		tr.Root.End()
		ts.Add(tr)
		ids = append(ids, tr.ID)
	}
	if ts.Len() != 3 {
		t.Fatalf("len = %d, want 3", ts.Len())
	}
	// Oldest two evicted.
	for _, id := range ids[:2] {
		if _, ok := ts.Get(id); ok {
			t.Errorf("evicted trace %s still retrievable", id)
		}
	}
	for _, id := range ids[2:] {
		if _, ok := ts.Get(id); !ok {
			t.Errorf("trace %s missing", id)
		}
	}
	recent := ts.Recent(0)
	if len(recent) != 3 || recent[0].ID != "id-4" || recent[2].ID != "id-2" {
		got := make([]string, len(recent))
		for i, tr := range recent {
			got[i] = tr.ID
		}
		t.Errorf("Recent order = %v, want [id-4 id-3 id-2]", got)
	}
	if got := ts.Recent(1); len(got) != 1 || got[0].ID != "id-4" {
		t.Errorf("Recent(1) wrong: %v", got)
	}
	adds, evict := ts.Stats()
	if adds != 5 || evict != 2 {
		t.Errorf("stats = (%d, %d), want (5, 2)", adds, evict)
	}
}

// TestTraceStoreConcurrent adds from many goroutines under -race.
func TestTraceStoreConcurrent(t *testing.T) {
	ts := NewTraceStore(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := NewTrace(fmt.Sprintf("w%d-%d", w, i), "job")
				tr.Root.End()
				ts.Add(tr)
				ts.Recent(4)
				ts.Get(tr.ID)
			}
		}()
	}
	wg.Wait()
	if ts.Len() != 16 {
		t.Errorf("len = %d, want 16", ts.Len())
	}
}
