package admission

import (
	"sync"
	"testing"
	"time"
)

// feed drives the controller's step directly with a sequence of synthetic
// snapshots spaced interval apart, returning the last tick.
func feed(c *Controller, base time.Time, snaps []Snapshot) Tick {
	var last Tick
	for i := range snaps {
		snaps[i].Time = base.Add(time.Duration(i) * c.cfg.Interval)
		last = c.step(snaps[i])
		c.gate.Store(&last)
	}
	return last
}

// TestOptimizerScalesWithLoad: a sustained arrival rate that needs several
// workers must raise the target; an idle tail must bring it back down after
// the scale-down damping.
func TestOptimizerScalesWithLoad(t *testing.T) {
	cfg := Config{Enabled: true, Interval: 100 * time.Millisecond,
		MinWorkers: 1, MaxWorkers: 8, TargetQueueWait: 100 * time.Millisecond,
		ScaleDownTicks: 2, EWMAAlpha: 1} // alpha 1: no smoothing, deterministic
	c := New(cfg, nil, nil, nil)
	base := time.Unix(0, 0)

	// 40 jobs per 100ms tick at 10ms each: λ·s = 400/s · 0.01s = 4 workers
	// before headroom.
	snaps := []Snapshot{{Live: 1, Target: 1}}
	admitted, executed, busySec := uint64(0), uint64(0), 0.0
	for i := 0; i < 6; i++ {
		admitted += 40
		executed += 40
		busySec += 0.4
		snaps = append(snaps, Snapshot{Live: 1, Busy: 1, Target: 1,
			Admitted: admitted, Executed: executed, BusySeconds: busySec})
	}
	tick := feed(c, base, snaps)
	if tick.Target < 4 || tick.Target > 8 {
		t.Fatalf("target under load = %d, want in [4,8] (tick %+v)", tick.Target, tick)
	}
	high := tick.Target

	// Idle ticks: target must shrink to MinWorkers, but only after
	// ScaleDownTicks consecutive low periods.
	idle := []Snapshot{}
	for i := 0; i < 1+cfg.ScaleDownTicks; i++ {
		idle = append(idle, Snapshot{Live: high, Target: high,
			Admitted: admitted, Executed: executed, BusySeconds: busySec})
	}
	first := feed(c, base.Add(time.Hour), idle[:1])
	if first.Target != high {
		t.Fatalf("target dropped immediately to %d; scale-down must be damped", first.Target)
	}
	last := feed(c, base.Add(2*time.Hour), idle[1:])
	if last.Target != cfg.MinWorkers {
		t.Fatalf("target after idle = %d, want %d", last.Target, cfg.MinWorkers)
	}
}

// TestShedThresholds: batch sheds when the total backlog's predicted wait
// passes the objective while interactive (which overtakes batch) still
// admits; interactive sheds only past its slack multiple.
func TestShedThresholds(t *testing.T) {
	cfg := Config{Enabled: true, Interval: 100 * time.Millisecond,
		MinWorkers: 1, MaxWorkers: 4, TargetQueueWait: 100 * time.Millisecond,
		InteractiveSlack: 4, EWMAAlpha: 1, DefaultServiceSeconds: 0.01}
	c := New(cfg, nil, nil, nil)
	base := time.Unix(0, 0)

	// Batch backlog of 20 jobs at 10ms on one worker: batch wait 200ms > 100ms
	// objective, interactive wait 0.
	tick := feed(c, base, []Snapshot{
		{Live: 1, Target: 1},
		{Live: 1, Busy: 1, Target: 1, BatchDepth: 20, QueueCapacity: 64},
	})
	if !tick.ShedBatch || tick.ShedInteractive {
		t.Fatalf("shed = batch:%v interactive:%v, want batch only (tick %+v)",
			tick.ShedBatch, tick.ShedInteractive, tick)
	}
	if d := c.Admit(Batch); d.Admit || d.RetryAfter <= 0 || d.Reason == "" {
		t.Fatalf("batch decision = %+v, want shed with positive RetryAfter and reason", d)
	}
	if d := c.Admit(Interactive); !d.Admit {
		t.Fatalf("interactive decision = %+v, want admit", d)
	}
	if tick.Saturation <= 1 {
		t.Errorf("saturation = %v, want > 1 while shedding", tick.Saturation)
	}

	// Interactive backlog past the slack multiple (4×100ms): 60 jobs at
	// 10ms on one worker = 600ms predicted wait.
	tick = feed(c, base.Add(time.Hour), []Snapshot{
		{Live: 1, Busy: 1, Target: 1, InteractiveDepth: 60, QueueCapacity: 64},
	})
	if !tick.ShedInteractive {
		t.Fatalf("interactive not shedding at 600ms predicted wait: %+v", tick)
	}
	if d := c.Admit(Interactive); d.Admit || d.RetryAfter < cfg.Interval {
		t.Fatalf("interactive decision = %+v, want shed with RetryAfter >= interval", d)
	}
}

// TestAdmitBeforeFirstTick: a controller that has not ticked admits all.
func TestAdmitBeforeFirstTick(t *testing.T) {
	c := New(Config{Enabled: true}, nil, nil, nil)
	for _, p := range []Priority{Interactive, Batch} {
		if d := c.Admit(p); !d.Admit {
			t.Errorf("Admit(%v) before first tick = %+v, want admit", p, d)
		}
	}
}

// fakeEngine is a Sampler+Actuator for loop-level tests.
type fakeEngine struct {
	mu     sync.Mutex
	snap   Snapshot
	target int
}

func (f *fakeEngine) AdmissionSample() Snapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.snap
	s.Time = time.Now()
	return s
}

func (f *fakeEngine) SetWorkerTarget(n int) {
	f.mu.Lock()
	f.target = n
	f.mu.Unlock()
}

// TestControllerLoop runs the real goroutine loop against a fake engine:
// ticks arrive, the actuator is called, and Stop terminates cleanly.
func TestControllerLoop(t *testing.T) {
	fe := &fakeEngine{snap: Snapshot{Live: 1, Target: 1}}
	var ticks sync.WaitGroup
	ticks.Add(3)
	seen := 0
	c := New(Config{Enabled: true, Interval: 5 * time.Millisecond,
		MinWorkers: 1, MaxWorkers: 4}, fe, fe, func(Tick) {
		if seen < 3 {
			seen++
			ticks.Done()
		}
	})
	c.Start()
	done := make(chan struct{})
	go func() { ticks.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("controller never ticked")
	}
	c.Stop()
	fe.mu.Lock()
	target := fe.target
	fe.mu.Unlock()
	if target < 1 || target > 4 {
		t.Errorf("actuated target = %d outside [1,4]", target)
	}
	if last := c.Last(); last.At.IsZero() {
		t.Error("Last() empty after ticks")
	}
}

// TestDisabledController: Start is a no-op, Stop returns immediately, Admit
// admits.
func TestDisabledController(t *testing.T) {
	c := New(Config{}, nil, nil, nil)
	c.Start()
	c.Stop()
	if d := c.Admit(Batch); !d.Admit {
		t.Errorf("disabled controller shed: %+v", d)
	}
}
