// Package admission is the saturation-aware control plane for the compile
// service: a collector → optimizer → actuator loop that samples the engine's
// telemetry (queue depths, busy workers, cumulative admitted/executed counts
// and busy-seconds), fits a small queueing model on the smoothed signals, and
// from it (a) computes a worker-pool target the engine's adaptive pool
// actuates within [MinWorkers, MaxWorkers], and (b) decides, per priority
// class, whether new fail-fast submissions should be shed before the queue
// saturates — each shed carrying a computed Retry-After derived from the
// predicted queue wait. Batch traffic sheds first, so interactive compiles
// keep a bounded wait under bursts; interactive sheds only when even its own
// (strictly preferred) backlog would blow the latency objective.
//
// The package is dependency-free below the service layer: the engine
// implements Sampler and Actuator, and an optional Observer receives one Tick
// per control period for metrics/span export. The Admit fast path is a single
// atomic pointer load, cheap enough for every submission.
package admission

import (
	"math"
	"sync/atomic"
	"time"
)

// Priority is a request's scheduling class. Interactive jobs are drained
// ahead of batch jobs and are the last to be shed.
type Priority int

// The two priority classes. Interactive is the zero value (the default for
// requests that do not name a class).
const (
	Interactive Priority = iota
	Batch
)

// String names the class for labels and logs.
func (p Priority) String() string {
	if p == Batch {
		return "batch"
	}
	return "interactive"
}

// Config tunes the control loop. The zero value (with Enabled set) gets
// production defaults sized for millisecond-scale compile jobs.
type Config struct {
	// Enabled turns the controller on; a disabled controller admits
	// everything and never resizes the pool.
	Enabled bool
	// Interval is the control period (default 250ms).
	Interval time.Duration
	// MinWorkers/MaxWorkers clamp the worker-pool target (defaults 1 and
	// the pool's configured size; the service layer fills these in).
	MinWorkers, MaxWorkers int
	// TargetQueueWait is the queue-wait objective the optimizer defends:
	// above it batch submissions shed, and the drain term of the worker
	// target is sized to clear the backlog within it (default 250ms).
	TargetQueueWait time.Duration
	// InteractiveSlack multiplies TargetQueueWait into the interactive shed
	// threshold — interactive holds out this factor longer than batch
	// (default 4).
	InteractiveSlack float64
	// Headroom over-provisions the steady-state worker demand λ·s so the
	// pool absorbs arrival jitter without queueing (default 1.25).
	Headroom float64
	// ScaleDownTicks is how many consecutive control periods must want a
	// smaller pool before the target actually shrinks — scale up is
	// immediate, scale down is damped (default 4).
	ScaleDownTicks int
	// EWMAAlpha smooths the arrival-rate and service-time estimates
	// (default 0.3; higher reacts faster).
	EWMAAlpha float64
	// DefaultServiceSeconds seeds the per-job service-time estimate before
	// the first completed jobs are observed (default 50ms).
	DefaultServiceSeconds float64
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.MinWorkers <= 0 {
		c.MinWorkers = 1
	}
	if c.MaxWorkers < c.MinWorkers {
		c.MaxWorkers = c.MinWorkers
	}
	if c.TargetQueueWait <= 0 {
		c.TargetQueueWait = 250 * time.Millisecond
	}
	if c.InteractiveSlack <= 0 {
		c.InteractiveSlack = 4
	}
	if c.Headroom <= 0 {
		c.Headroom = 1.25
	}
	if c.ScaleDownTicks <= 0 {
		c.ScaleDownTicks = 4
	}
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = 0.3
	}
	if c.DefaultServiceSeconds <= 0 {
		c.DefaultServiceSeconds = 0.05
	}
	return c
}

// Snapshot is one collector sample of the engine's live state. Counters are
// cumulative since engine start; the optimizer differences consecutive
// samples to recover rates.
type Snapshot struct {
	Time time.Time
	// InteractiveDepth/BatchDepth are the per-class queue depths.
	InteractiveDepth, BatchDepth int
	// QueueCapacity is the per-class queue capacity.
	QueueCapacity int
	// Busy/Live/Target describe the worker pool at sample time.
	Busy, Live, Target int
	// Admitted counts jobs accepted into a queue (arrival rate source).
	Admitted uint64
	// Executed counts jobs a worker has run to completion, and BusySeconds
	// is the cumulative wall time workers spent running them; their ratio
	// estimates the mean per-job service time.
	Executed    uint64
	BusySeconds float64
}

// Sampler supplies collector samples; the service engine implements it.
type Sampler interface {
	AdmissionSample() Snapshot
}

// Actuator applies the optimizer's worker target; the engine's adaptive pool
// implements it (clamping again defensively).
type Actuator interface {
	SetWorkerTarget(n int)
}

// Decision is the Admit verdict for one submission.
type Decision struct {
	Admit bool
	// RetryAfter is the advised client backoff when shed: the predicted
	// time for the relevant backlog to drain below the objective.
	RetryAfter time.Duration
	// Reason explains a shed for the structured 429 body.
	Reason string
}

// Tick is the observable outcome of one control period: the fitted model,
// the actuation, and the shed state. The service layer exports it as
// atomique_admission_* metrics and an admission span.
type Tick struct {
	At time.Time
	// Lambda is the smoothed arrival rate (jobs/sec) and ServiceSeconds the
	// smoothed per-job service time — the two model parameters.
	Lambda         float64
	ServiceSeconds float64
	// Utilization is busy/live at sample time.
	Utilization float64
	// InteractiveWait/BatchWait are the predicted queue waits a new
	// submission of each class would see.
	InteractiveWait, BatchWait time.Duration
	// Saturation is BatchWait over TargetQueueWait: >1 means the queue is
	// past the objective and batch is shedding.
	Saturation float64
	// Target is the actuated worker-pool target.
	Target int
	// ShedBatch/ShedInteractive are the gate states applied until the next
	// tick.
	ShedBatch, ShedInteractive bool
}

// Controller runs the control loop. Create with New, then Start; Admit is
// safe from any goroutine, including before Start (it admits everything
// until the first tick).
type Controller struct {
	cfg      Config
	sampler  Sampler
	actuator Actuator
	observer func(Tick)

	// gate is the fast-path state Admit reads: the last tick.
	gate atomic.Pointer[Tick]

	// model state, owned by the loop goroutine (and step, in tests).
	lambda   float64
	svc      float64
	lowTicks int
	target   int
	havePrev bool
	prev     Snapshot

	stop chan struct{}
	done chan struct{}
}

// New builds a controller. observer may be nil.
func New(cfg Config, s Sampler, a Actuator, observer func(Tick)) *Controller {
	cfg = cfg.withDefaults()
	return &Controller{
		cfg:      cfg,
		sampler:  s,
		actuator: a,
		observer: observer,
		svc:      cfg.DefaultServiceSeconds,
		target:   cfg.MinWorkers,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the control loop goroutine. A disabled controller starts
// nothing and Stop remains safe to call.
func (c *Controller) Start() {
	if !c.cfg.Enabled {
		close(c.done)
		return
	}
	go c.loop()
}

// Stop halts the loop and waits for it to exit. Idempotent via the service
// layer calling it once from Close.
func (c *Controller) Stop() {
	select {
	case <-c.done:
		return
	default:
	}
	close(c.stop)
	<-c.done
}

// Admit decides whether a fail-fast submission of the given class may enter
// the queue. One atomic load; never blocks.
func (c *Controller) Admit(p Priority) Decision {
	t := c.gate.Load()
	if t == nil {
		return Decision{Admit: true}
	}
	switch {
	case p == Batch && t.ShedBatch:
		return Decision{RetryAfter: retryAfter(t.BatchWait, c.cfg.Interval),
			Reason: "admission: predicted batch queue wait " + t.BatchWait.Round(time.Millisecond).String() +
				" exceeds objective " + c.cfg.TargetQueueWait.String()}
	case p == Interactive && t.ShedInteractive:
		return Decision{RetryAfter: retryAfter(t.InteractiveWait, c.cfg.Interval),
			Reason: "admission: predicted interactive queue wait " + t.InteractiveWait.Round(time.Millisecond).String() +
				" exceeds objective " + (time.Duration(c.cfg.InteractiveSlack * float64(c.cfg.TargetQueueWait))).String()}
	}
	return Decision{Admit: true}
}

// Last returns the most recent tick (zero Tick before the first).
func (c *Controller) Last() Tick {
	if t := c.gate.Load(); t != nil {
		return *t
	}
	return Tick{}
}

func retryAfter(wait, floor time.Duration) time.Duration {
	if wait < floor {
		return floor
	}
	return wait
}

func (c *Controller) loop() {
	defer close(c.done)
	ticker := time.NewTicker(c.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			tick := c.step(c.sampler.AdmissionSample())
			c.gate.Store(&tick)
			c.actuator.SetWorkerTarget(tick.Target)
			if c.observer != nil {
				c.observer(tick)
			}
		}
	}
}

// step runs one collect → optimize cycle over a fresh sample and returns the
// tick to actuate. It owns the EWMA model state; tests drive it directly
// with synthetic snapshots.
func (c *Controller) step(s Snapshot) Tick {
	cfg := c.cfg
	// Collect: difference against the previous sample to recover rates.
	if !c.havePrev {
		c.havePrev = true
		c.prev = s
		c.target = clampInt(s.Target, cfg.MinWorkers, cfg.MaxWorkers)
		return c.render(s)
	}
	dt := s.Time.Sub(c.prev.Time).Seconds()
	if dt <= 0 {
		return c.render(s)
	}
	alpha := cfg.EWMAAlpha
	instLambda := float64(s.Admitted-c.prev.Admitted) / dt
	c.lambda += alpha * (instLambda - c.lambda)
	if dExec := s.Executed - c.prev.Executed; dExec > 0 {
		instSvc := (s.BusySeconds - c.prev.BusySeconds) / float64(dExec)
		if instSvc > 0 {
			c.svc += alpha * (instSvc - c.svc)
		}
	}
	c.prev = s

	// Optimize: steady-state demand λ·s with headroom, plus a drain term
	// sizing the pool to clear the current backlog within the objective,
	// plus a step-up nudge when every worker is busy and jobs still queue
	// (the model can under-estimate during the first burst samples).
	depth := s.InteractiveDepth + s.BatchDepth
	need := c.lambda * c.svc * cfg.Headroom
	if drain := float64(depth) * c.svc / cfg.TargetQueueWait.Seconds(); drain > need {
		need = drain
	}
	if depth > 0 && s.Busy >= s.Live && float64(s.Live+1) > need {
		need = float64(s.Live + 1)
	}
	want := clampInt(int(math.Ceil(need)), cfg.MinWorkers, cfg.MaxWorkers)
	switch {
	case want > c.target:
		c.target = want
		c.lowTicks = 0
	case want < c.target:
		// Damped scale-down: only after ScaleDownTicks consecutive periods
		// agree, so a lull between bursts does not thrash the pool.
		if c.lowTicks++; c.lowTicks >= cfg.ScaleDownTicks {
			c.target = want
			c.lowTicks = 0
		}
	default:
		c.lowTicks = 0
	}
	return c.render(s)
}

// render derives the tick (predicted waits, shed state) from the model and
// the sample.
func (c *Controller) render(s Snapshot) Tick {
	cfg := c.cfg
	live := s.Live
	if live < 1 {
		live = 1
	}
	// Interactive jobs overtake the batch queue, so their predicted wait
	// sees only the interactive backlog; batch arrivals wait behind both.
	intWait := time.Duration(float64(s.InteractiveDepth) * c.svc / float64(live) * float64(time.Second))
	batchWait := time.Duration(float64(s.InteractiveDepth+s.BatchDepth) * c.svc / float64(live) * float64(time.Second))
	t := Tick{
		At:              s.Time,
		Lambda:          c.lambda,
		ServiceSeconds:  c.svc,
		Utilization:     float64(s.Busy) / float64(live),
		InteractiveWait: intWait,
		BatchWait:       batchWait,
		Saturation:      float64(batchWait) / float64(cfg.TargetQueueWait),
		Target:          c.target,
		ShedBatch:       batchWait > cfg.TargetQueueWait,
		ShedInteractive: intWait > time.Duration(cfg.InteractiveSlack*float64(cfg.TargetQueueWait)) ||
			(s.QueueCapacity > 0 && s.InteractiveDepth >= s.QueueCapacity),
	}
	return t
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
