package circuit

// DAG is a dependency view of a circuit: gate i depends on gate j when they
// share a qubit and j precedes i with no intervening gate on that qubit.
// It is immutable once built; use NewFrontier for a consumable front-layer
// traversal (what the routers iterate on).
type DAG struct {
	circ *Circuit
	succ [][]int
	pred [][]int
}

// NewDAG builds the dependency DAG of c.
func NewDAG(c *Circuit) *DAG {
	d := &DAG{
		circ: c,
		succ: make([][]int, len(c.Gates)),
		pred: make([][]int, len(c.Gates)),
	}
	last := make([]int, c.N) // last gate index seen per qubit
	for i := range last {
		last[i] = -1
	}
	for i, g := range c.Gates {
		for _, q := range g.Qubits() {
			if p := last[q]; p >= 0 {
				d.succ[p] = append(d.succ[p], i)
				d.pred[i] = append(d.pred[i], p)
			}
			last[q] = i
		}
	}
	return d
}

// Circuit returns the underlying circuit.
func (d *DAG) Circuit() *Circuit { return d.circ }

// Successors returns the gate indices that directly depend on gate i.
func (d *DAG) Successors(i int) []int { return d.succ[i] }

// Predecessors returns the gate indices gate i directly depends on.
func (d *DAG) Predecessors(i int) []int { return d.pred[i] }

// Frontier is a consumable traversal of a circuit DAG: Front returns the
// currently independent ("frontier") gates, Execute retires one of them and
// releases its dependents. Routers drive compilation by repeatedly executing
// frontier gates until Done.
type Frontier struct {
	dag    *DAG
	indeg  []int
	front  []int
	inFrnt []bool
	done   []bool
	left   int
}

// NewFrontier returns a fresh traversal over the DAG.
func NewFrontier(d *DAG) *Frontier {
	f := &Frontier{
		dag:    d,
		indeg:  make([]int, len(d.circ.Gates)),
		inFrnt: make([]bool, len(d.circ.Gates)),
		done:   make([]bool, len(d.circ.Gates)),
		left:   len(d.circ.Gates),
	}
	for i := range d.circ.Gates {
		f.indeg[i] = len(d.pred[i])
		if f.indeg[i] == 0 {
			f.front = append(f.front, i)
			f.inFrnt[i] = true
		}
	}
	return f
}

// Front returns the current frontier in ascending gate order. The returned
// slice is owned by the Frontier; callers must not mutate it.
func (f *Frontier) Front() []int { return f.front }

// Gate returns the gate at index i.
func (f *Frontier) Gate(i int) Gate { return f.dag.circ.Gates[i] }

// Execute retires frontier gate i, unlocking its successors. It panics if i
// is not currently independent (a routing-logic bug, not a user error).
func (f *Frontier) Execute(i int) {
	if !f.inFrnt[i] || f.done[i] {
		panic("circuit: Execute on non-frontier gate")
	}
	f.done[i] = true
	f.left--
	// Remove from front slice.
	for k, g := range f.front {
		if g == i {
			f.front = append(f.front[:k], f.front[k+1:]...)
			break
		}
	}
	for _, s := range f.dag.succ[i] {
		f.indeg[s]--
		if f.indeg[s] == 0 {
			f.front = append(f.front, s)
			f.inFrnt[s] = true
		}
	}
}

// Done reports whether every gate has been executed.
func (f *Frontier) Done() bool { return f.left == 0 }

// Remaining returns the count of unexecuted gates.
func (f *Frontier) Remaining() int { return f.left }
