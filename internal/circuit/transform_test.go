package circuit

import (
	"testing"
)

func TestAppend(t *testing.T) {
	a := New(3)
	a.H(0)
	b := New(2)
	b.CX(0, 1)
	a.Append(b)
	if a.NumGates() != 2 {
		t.Fatalf("gates = %d, want 2", a.NumGates())
	}
	wide := New(5)
	wide.H(4)
	mustPanic(t, func() { a.Append(wide) })
}

func TestInverseStructure(t *testing.T) {
	c := New(2)
	c.H(0)
	c.RZ(1, 0.5)
	c.CX(0, 1)
	c.Add1Q(OpS, 0, 0)
	inv := c.Inverse()
	if inv.NumGates() != 4 {
		t.Fatalf("inverse gates = %d, want 4", inv.NumGates())
	}
	// Reversed order: first inverse gate inverts the last original (S).
	if inv.Gates[0].Op != OpRZ {
		t.Errorf("S inverse = %v, want rz", inv.Gates[0].Op)
	}
	if inv.Gates[1].Op != OpCX {
		t.Errorf("order not reversed: %v", inv.Gates[1].Op)
	}
	if inv.Gates[2].Op != OpRZ || inv.Gates[2].Param != -0.5 {
		t.Errorf("RZ not negated: %+v", inv.Gates[2])
	}
}

func TestRemap(t *testing.T) {
	c := New(2)
	c.CX(0, 1)
	r := c.Remap(4, []int{3, 1})
	if r.N != 4 {
		t.Fatalf("N = %d", r.N)
	}
	if r.Gates[0].Q0 != 3 || r.Gates[0].Q1 != 1 {
		t.Errorf("remap wrong: %+v", r.Gates[0])
	}
	mustPanic(t, func() { c.Remap(4, []int{0}) })
	mustPanic(t, func() { c.Remap(4, []int{0, 0}) })
	mustPanic(t, func() { c.Remap(1, []int{0, 1}) })
}
