package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDAGDependencies(t *testing.T) {
	c := New(3)
	c.H(0)     // 0
	c.CX(0, 1) // 1 depends on 0
	c.CX(1, 2) // 2 depends on 1
	c.H(0)     // 3 depends on 1
	d := NewDAG(c)
	if got := d.Successors(0); len(got) != 1 || got[0] != 1 {
		t.Errorf("succ(0) = %v, want [1]", got)
	}
	if got := d.Successors(1); len(got) != 2 {
		t.Errorf("succ(1) = %v, want two entries", got)
	}
	if got := d.Predecessors(2); len(got) != 1 || got[0] != 1 {
		t.Errorf("pred(2) = %v, want [1]", got)
	}
	if d.Circuit() != c {
		t.Errorf("Circuit() did not return underlying circuit")
	}
}

func TestFrontierTraversal(t *testing.T) {
	c := New(3)
	c.H(0)     // 0
	c.H(1)     // 1
	c.CX(0, 1) // 2
	c.CX(1, 2) // 3
	f := NewFrontier(NewDAG(c))
	front := f.Front()
	if len(front) != 2 {
		t.Fatalf("initial front = %v, want 2 gates", front)
	}
	f.Execute(0)
	f.Execute(1)
	front = f.Front()
	if len(front) != 1 || front[0] != 2 {
		t.Fatalf("front after 1Q = %v, want [2]", front)
	}
	f.Execute(2)
	f.Execute(3)
	if !f.Done() {
		t.Fatalf("frontier not done, remaining=%d", f.Remaining())
	}
}

func TestFrontierExecuteNonFrontPanics(t *testing.T) {
	c := New(2)
	c.H(0)
	c.CX(0, 1)
	f := NewFrontier(NewDAG(c))
	mustPanic(t, func() { f.Execute(1) })
}

// Property: executing the frontier in any greedy order retires every gate
// exactly once and respects per-qubit program order.
func TestFrontierCompletesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, 2+rng.Intn(6), 1+rng.Intn(80))
		fr := NewFrontier(NewDAG(c))
		executed := 0
		lastExec := make([]int, c.N)
		for i := range lastExec {
			lastExec[i] = -1
		}
		for !fr.Done() {
			front := fr.Front()
			if len(front) == 0 {
				return false // deadlock
			}
			g := front[rng.Intn(len(front))]
			for _, q := range fr.Gate(g).Qubits() {
				// All earlier gates on q must already be retired: their index
				// must be recorded in lastExec in increasing order.
				if lastExec[q] > g {
					return false
				}
				lastExec[q] = g
			}
			fr.Execute(g)
			executed++
		}
		return executed == c.NumGates()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
