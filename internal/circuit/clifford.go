package circuit

import "math"

// CliffordAngleTol is the tolerance under which a rotation angle is
// recognised as a Clifford multiple of π/2. Angles produced symbolically
// (π/2 literals in benchmark generators, qpilot's ancilla lowering) are exact;
// the tolerance absorbs float round-trips through JSON and QASM parsing.
const CliffordAngleTol = 1e-9

// CliffordQuarterTurns reports whether theta is (within CliffordAngleTol) an
// integer multiple of π/2, and if so returns that multiple reduced mod 4:
// 0 → identity, 1 → +π/2, 2 → π, 3 → -π/2 (equivalently +3π/2).
func CliffordQuarterTurns(theta float64) (k int, ok bool) {
	turns := theta / (math.Pi / 2)
	nearest := math.Round(turns)
	if math.Abs(theta-nearest*(math.Pi/2)) > CliffordAngleTol {
		return 0, false
	}
	k = int(math.Mod(nearest, 4))
	if k < 0 {
		k += 4
	}
	return k, true
}

// IsCliffordGate reports whether g is a Clifford operation: H, S, the Paulis,
// CX/CZ/SWAP natively, and the parametric rotations (RX/RY/RZ/U/ZZ) exactly
// when their angle is a multiple of π/2. T is never Clifford.
func IsCliffordGate(g Gate) bool {
	switch g.Op {
	case OpH, OpX, OpY, OpZ, OpS, OpCX, OpCZ, OpSWAP:
		return true
	case OpRX, OpRY, OpRZ, OpU, OpZZ:
		_, ok := CliffordQuarterTurns(g.Param)
		return ok
	default: // OpT and anything unknown
		return false
	}
}

// AllClifford reports whether every gate of the stream is Clifford. It is the
// dispatch predicate for witness gate streams that are not wrapped in a
// Circuit (compiler.Program, noise.Witness).
func AllClifford(gates []Gate) bool {
	for _, g := range gates {
		if !IsCliffordGate(g) {
			return false
		}
	}
	return true
}

// IsClifford reports whether the whole circuit is expressible in the
// stabilizer formalism — the eligibility test for the tableau fast path in
// verification and trajectory simulation.
func (c *Circuit) IsClifford() bool { return AllClifford(c.Gates) }
