package circuit

import "math"

// Append concatenates other onto c (other must not reference qubits beyond
// c's register).
func (c *Circuit) Append(other *Circuit) {
	if other.N > c.N {
		panic("circuit: Append source wider than target")
	}
	for _, g := range other.Gates {
		c.Add(g)
	}
}

// Inverse returns the adjoint circuit: gates reversed with each gate
// inverted. Self-inverse ops pass through; rotations negate their angle;
// S and T become the equivalent negative RZ rotations (exact up to global
// phase, like the rest of this repository's gate accounting).
func (c *Circuit) Inverse() *Circuit {
	out := New(c.N)
	for i := len(c.Gates) - 1; i >= 0; i-- {
		out.Add(invertGate(c.Gates[i]))
	}
	return out
}

func invertGate(g Gate) Gate {
	switch g.Op {
	case OpH, OpX, OpY, OpZ, OpCX, OpCZ, OpSWAP:
		return g // self-inverse
	case OpRX, OpRY, OpRZ, OpZZ, OpU:
		g.Param = -g.Param
		return g
	case OpS:
		return Gate{Op: OpRZ, Q0: g.Q0, Q1: -1, Param: -math.Pi / 2}
	case OpT:
		return Gate{Op: OpRZ, Q0: g.Q0, Q1: -1, Param: -math.Pi / 4}
	default:
		panic("circuit: cannot invert op " + g.Op.String())
	}
}

// Remap returns the circuit with qubit q relabelled to mapping[q]; mapping
// must be injective into [0, n).
func (c *Circuit) Remap(n int, mapping []int) *Circuit {
	if len(mapping) != c.N {
		panic("circuit: Remap size mismatch")
	}
	seen := make(map[int]bool, len(mapping))
	for _, m := range mapping {
		if m < 0 || m >= n || seen[m] {
			panic("circuit: Remap mapping not injective into range")
		}
		seen[m] = true
	}
	out := New(n)
	for _, g := range c.Gates {
		g.Q0 = mapping[g.Q0]
		if g.IsTwoQubit() {
			g.Q1 = mapping[g.Q1]
		}
		out.Add(g)
	}
	return out
}
