package circuit

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// Fingerprint returns a stable content hash of the circuit: the hex SHA-256
// of a canonical binary serialisation (qubit count, then each gate's op,
// operands, and parameter bits in program order). Two circuits share a
// fingerprint iff they are gate-for-gate identical, so the fingerprint is a
// safe content-addressed cache key for deterministic compilations.
func (c *Circuit) Fingerprint() string {
	h := sha256.New()
	var buf [8 * 4]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(c.N))
	h.Write(buf[:8])
	for _, g := range c.Gates {
		binary.LittleEndian.PutUint64(buf[0:], uint64(g.Op))
		binary.LittleEndian.PutUint64(buf[8:], uint64(int64(g.Q0)))
		binary.LittleEndian.PutUint64(buf[16:], uint64(int64(g.Q1)))
		binary.LittleEndian.PutUint64(buf[24:], math.Float64bits(g.Param))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}
