package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddValidation(t *testing.T) {
	c := New(3)
	c.H(0)
	c.CX(0, 1)
	if got := c.NumGates(); got != 2 {
		t.Fatalf("NumGates = %d, want 2", got)
	}
	mustPanic(t, func() { c.H(3) })
	mustPanic(t, func() { c.CX(0, 0) })
	mustPanic(t, func() { c.CX(-1, 1) })
	mustPanic(t, func() { New(-1) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	f()
}

func TestOneQubitGateNormalisesQ1(t *testing.T) {
	c := New(2)
	c.Add(Gate{Op: OpH, Q0: 1, Q1: 7}) // bogus Q1 must be ignored for 1Q ops
	if c.Gates[0].Q1 != -1 {
		t.Fatalf("Q1 = %d, want -1", c.Gates[0].Q1)
	}
}

func TestCounts(t *testing.T) {
	c := New(4)
	c.H(0)
	c.H(1)
	c.CX(0, 1)
	c.CZ(1, 2)
	c.ZZ(2, 3, 0.5)
	c.RZ(3, 0.1)
	if got := c.Num2Q(); got != 3 {
		t.Errorf("Num2Q = %d, want 3", got)
	}
	if got := c.Num1Q(); got != 3 {
		t.Errorf("Num1Q = %d, want 3", got)
	}
}

func TestTwoQubitPerQubitAndDegrees(t *testing.T) {
	c := New(3)
	c.CX(0, 1)
	c.CX(0, 1)
	c.CX(1, 2)
	per := c.TwoQubitPerQubit()
	want := []int{2, 3, 1}
	for i := range want {
		if per[i] != want[i] {
			t.Errorf("TwoQubitPerQubit[%d] = %d, want %d", i, per[i], want[i])
		}
	}
	deg := c.Degrees()
	wantDeg := []int{1, 2, 1}
	for i := range wantDeg {
		if deg[i] != wantDeg[i] {
			t.Errorf("Degrees[%d] = %d, want %d", i, deg[i], wantDeg[i])
		}
	}
}

func TestLayersASAP(t *testing.T) {
	c := New(4)
	c.CX(0, 1) // layer 0
	c.CX(2, 3) // layer 0
	c.CX(1, 2) // layer 1
	c.H(0)     // layer 1
	layerOf, n := c.Layers()
	wantLayers := []int{0, 0, 1, 1}
	for i := range wantLayers {
		if layerOf[i] != wantLayers[i] {
			t.Errorf("layer[%d] = %d, want %d", i, layerOf[i], wantLayers[i])
		}
	}
	if n != 2 {
		t.Errorf("numLayers = %d, want 2", n)
	}
}

func TestDepth2QIgnores1Q(t *testing.T) {
	c := New(3)
	c.CX(0, 1)
	c.H(1) // should not add a 2Q layer, but orders the next gate
	c.CX(1, 2)
	if d := c.Depth2Q(); d != 2 {
		t.Errorf("Depth2Q = %d, want 2", d)
	}
	if d := c.Depth(); d != 3 {
		t.Errorf("Depth = %d, want 3", d)
	}
}

func TestNum1QLayers(t *testing.T) {
	c := New(2)
	c.H(0)
	c.H(1) // same layer
	c.CX(0, 1)
	c.H(0) // new layer
	if got := c.Num1QLayers(); got != 2 {
		t.Errorf("Num1QLayers = %d, want 2", got)
	}
}

func TestInteractionWeights(t *testing.T) {
	c := New(3)
	c.CX(1, 0)
	c.CX(0, 1)
	c.CZ(1, 2)
	w := c.InteractionWeights()
	if w[[2]int{0, 1}] != 2 {
		t.Errorf("weight(0,1) = %d, want 2", w[[2]int{0, 1}])
	}
	if w[[2]int{1, 2}] != 1 {
		t.Errorf("weight(1,2) = %d, want 1", w[[2]int{1, 2}])
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := New(2)
	c.H(0)
	d := c.Clone()
	d.CX(0, 1)
	if c.NumGates() != 1 || d.NumGates() != 2 {
		t.Fatalf("clone not independent: %d vs %d", c.NumGates(), d.NumGates())
	}
}

// randomCircuit builds a random circuit for property tests.
func randomCircuit(rng *rand.Rand, n, gates int) *Circuit {
	c := New(n)
	for i := 0; i < gates; i++ {
		if rng.Intn(2) == 0 || n < 2 {
			c.Add1Q(OpH, rng.Intn(n), 0)
		} else {
			a := rng.Intn(n)
			b := rng.Intn(n - 1)
			if b >= a {
				b++
			}
			c.CX(a, b)
		}
	}
	return c
}

// Property: the ASAP layering never places two gates sharing a qubit in the
// same layer, and layer indices are monotone along each qubit's gate chain.
func TestLayersProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, 2+rng.Intn(8), 1+rng.Intn(60))
		layerOf, _ := c.Layers()
		lastLayer := make([]int, c.N)
		for i := range lastLayer {
			lastLayer[i] = -1
		}
		for i, g := range c.Gates {
			for _, q := range g.Qubits() {
				if layerOf[i] <= lastLayer[q] {
					return false
				}
				lastLayer[q] = layerOf[i]
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Depth2Q <= Depth and Depth <= NumGates.
func TestDepthBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, 2+rng.Intn(6), 1+rng.Intn(50))
		return c.Depth2Q() <= c.Depth() && c.Depth() <= c.NumGates()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStats(t *testing.T) {
	c := New(2)
	c.H(0)
	c.CX(0, 1)
	s := c.ComputeStats()
	if s.Qubits != 2 || s.Num2Q != 1 || s.Num1Q != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.TwoQPerQ != 1.0 {
		t.Errorf("TwoQPerQ = %v, want 1.0", s.TwoQPerQ)
	}
	if s.DegreePerQ != 1.0 {
		t.Errorf("DegreePerQ = %v, want 1.0", s.DegreePerQ)
	}
}

func TestOpString(t *testing.T) {
	cases := map[Op]string{OpH: "h", OpCX: "cx", OpZZ: "zz", Op(99): "op(99)"}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", int(op), got, want)
		}
	}
	g := Gate{Op: OpCX, Q0: 0, Q1: 1}
	if g.String() != "cx q0,q1" {
		t.Errorf("gate string = %q", g.String())
	}
	h := Gate{Op: OpH, Q0: 2, Q1: -1}
	if h.String() != "h q2" {
		t.Errorf("gate string = %q", h.String())
	}
}
