// Package circuit provides the quantum-circuit intermediate representation
// shared by every compiler in this repository: an append-only gate list with
// DAG views (ASAP layers, dependency front layer) and the statistics
// (two-qubit gates per qubit, interaction degree) that Table II of the
// Atomique paper reports and that the mappers consume.
package circuit

import "fmt"

// Op identifies a gate operation. One-qubit ops come first; IsTwoQubit
// reports whether an op entangles two qubits.
type Op int

// Supported operations. ZZ is the native QAOA/QSim interaction exp(-i t Z⊗Z);
// on neutral-atom hardware it costs one Rydberg interaction, while
// superconducting backends decompose it into two CX (see internal/arch).
const (
	OpH Op = iota
	OpX
	OpY
	OpZ
	OpS
	OpT
	OpRX
	OpRY
	OpRZ
	OpU // arbitrary 1Q unitary
	OpCX
	OpCZ
	OpZZ
	OpSWAP
	opCount
)

var opNames = [...]string{
	OpH: "h", OpX: "x", OpY: "y", OpZ: "z", OpS: "s", OpT: "t",
	OpRX: "rx", OpRY: "ry", OpRZ: "rz", OpU: "u",
	OpCX: "cx", OpCZ: "cz", OpZZ: "zz", OpSWAP: "swap",
}

// String returns the lower-case OpenQASM-style mnemonic.
func (o Op) String() string {
	if o < 0 || int(o) >= len(opNames) {
		return fmt.Sprintf("op(%d)", int(o))
	}
	return opNames[o]
}

// IsTwoQubit reports whether the op acts on two qubits.
func (o Op) IsTwoQubit() bool { return o >= OpCX && o <= OpSWAP }

// Gate is a single operation. Q1 is -1 for one-qubit gates. Param carries a
// rotation angle where meaningful and is otherwise zero.
type Gate struct {
	Op    Op
	Q0    int
	Q1    int
	Param float64
}

// IsTwoQubit reports whether the gate acts on two qubits.
func (g Gate) IsTwoQubit() bool { return g.Op.IsTwoQubit() }

// Qubits returns the qubits the gate acts on (one or two entries).
func (g Gate) Qubits() []int {
	if g.IsTwoQubit() {
		return []int{g.Q0, g.Q1}
	}
	return []int{g.Q0}
}

// String renders the gate in a compact QASM-like form.
func (g Gate) String() string {
	if g.IsTwoQubit() {
		return fmt.Sprintf("%s q%d,q%d", g.Op, g.Q0, g.Q1)
	}
	return fmt.Sprintf("%s q%d", g.Op, g.Q0)
}

// Circuit is an ordered gate list over N qubits. The zero value is an empty
// circuit over zero qubits; use New for a sized circuit.
type Circuit struct {
	N     int
	Gates []Gate
}

// New returns an empty circuit over n qubits.
func New(n int) *Circuit {
	if n < 0 {
		panic("circuit: negative qubit count")
	}
	return &Circuit{N: n}
}

// Add appends a gate, validating qubit indices.
func (c *Circuit) Add(g Gate) {
	if g.Q0 < 0 || g.Q0 >= c.N {
		panic(fmt.Sprintf("circuit: qubit %d out of range [0,%d)", g.Q0, c.N))
	}
	if g.IsTwoQubit() {
		if g.Q1 < 0 || g.Q1 >= c.N {
			panic(fmt.Sprintf("circuit: qubit %d out of range [0,%d)", g.Q1, c.N))
		}
		if g.Q1 == g.Q0 {
			panic("circuit: two-qubit gate on identical qubits")
		}
	} else {
		g.Q1 = -1
	}
	c.Gates = append(c.Gates, g)
}

// Add1Q appends a one-qubit gate.
func (c *Circuit) Add1Q(op Op, q int, param float64) {
	c.Add(Gate{Op: op, Q0: q, Q1: -1, Param: param})
}

// Add2Q appends a two-qubit gate.
func (c *Circuit) Add2Q(op Op, a, b int, param float64) {
	c.Add(Gate{Op: op, Q0: a, Q1: b, Param: param})
}

// H appends a Hadamard.
func (c *Circuit) H(q int) { c.Add1Q(OpH, q, 0) }

// X appends a Pauli-X.
func (c *Circuit) X(q int) { c.Add1Q(OpX, q, 0) }

// RX appends an X rotation.
func (c *Circuit) RX(q int, theta float64) { c.Add1Q(OpRX, q, theta) }

// RY appends a Y rotation.
func (c *Circuit) RY(q int, theta float64) { c.Add1Q(OpRY, q, theta) }

// RZ appends a Z rotation.
func (c *Circuit) RZ(q int, theta float64) { c.Add1Q(OpRZ, q, theta) }

// CX appends a controlled-X.
func (c *Circuit) CX(ctrl, tgt int) { c.Add2Q(OpCX, ctrl, tgt, 0) }

// CZ appends a controlled-Z.
func (c *Circuit) CZ(a, b int) { c.Add2Q(OpCZ, a, b, 0) }

// ZZ appends exp(-i theta Z⊗Z /2).
func (c *Circuit) ZZ(a, b int, theta float64) { c.Add2Q(OpZZ, a, b, theta) }

// Clone returns a deep copy.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{N: c.N, Gates: make([]Gate, len(c.Gates))}
	copy(out.Gates, c.Gates)
	return out
}

// NumGates returns the total gate count.
func (c *Circuit) NumGates() int { return len(c.Gates) }

// Num2Q returns the number of two-qubit gates.
func (c *Circuit) Num2Q() int {
	n := 0
	for _, g := range c.Gates {
		if g.IsTwoQubit() {
			n++
		}
	}
	return n
}

// Num1Q returns the number of one-qubit gates.
func (c *Circuit) Num1Q() int { return len(c.Gates) - c.Num2Q() }

// TwoQubitPerQubit returns, for each qubit, the count of two-qubit gates it
// participates in.
func (c *Circuit) TwoQubitPerQubit() []int {
	counts := make([]int, c.N)
	for _, g := range c.Gates {
		if g.IsTwoQubit() {
			counts[g.Q0]++
			counts[g.Q1]++
		}
	}
	return counts
}

// Degrees returns, for each qubit, the number of distinct partner qubits it
// interacts with via two-qubit gates ("Degree per Q" in Table II).
func (c *Circuit) Degrees() []int {
	partners := make([]map[int]struct{}, c.N)
	for i := range partners {
		partners[i] = make(map[int]struct{})
	}
	for _, g := range c.Gates {
		if g.IsTwoQubit() {
			partners[g.Q0][g.Q1] = struct{}{}
			partners[g.Q1][g.Q0] = struct{}{}
		}
	}
	deg := make([]int, c.N)
	for i, p := range partners {
		deg[i] = len(p)
	}
	return deg
}

// Stats summarises the Table II characteristics of a circuit.
type Stats struct {
	Qubits     int
	Num2Q      int
	Num1Q      int
	TwoQPerQ   float64 // average two-qubit gates per qubit
	DegreePerQ float64 // average distinct interaction partners per qubit
	Depth2Q    int     // two-qubit ASAP depth
}

// ComputeStats returns the circuit's Table II statistics.
func (c *Circuit) ComputeStats() Stats {
	s := Stats{Qubits: c.N, Num2Q: c.Num2Q()}
	s.Num1Q = len(c.Gates) - s.Num2Q
	if c.N > 0 {
		tq := 0
		for _, v := range c.TwoQubitPerQubit() {
			tq += v
		}
		s.TwoQPerQ = float64(tq) / float64(c.N)
		dg := 0
		for _, v := range c.Degrees() {
			dg += v
		}
		s.DegreePerQ = float64(dg) / float64(c.N)
	}
	s.Depth2Q = c.Depth2Q()
	return s
}

// InteractionWeights returns a symmetric map of qubit-pair interaction counts,
// keyed by (min,max) pairs. It is the unweighted gate-frequency graph.
func (c *Circuit) InteractionWeights() map[[2]int]int {
	w := make(map[[2]int]int)
	for _, g := range c.Gates {
		if !g.IsTwoQubit() {
			continue
		}
		a, b := g.Q0, g.Q1
		if a > b {
			a, b = b, a
		}
		w[[2]int{a, b}]++
	}
	return w
}

// Layers assigns every gate its ASAP layer index (gates on disjoint qubits
// share a layer) and returns the per-gate layer slice plus the total layer
// count. Both one- and two-qubit gates occupy layers.
func (c *Circuit) Layers() (layerOf []int, numLayers int) {
	layerOf = make([]int, len(c.Gates))
	ready := make([]int, c.N) // earliest free layer per qubit
	for i, g := range c.Gates {
		l := ready[g.Q0]
		if g.IsTwoQubit() && ready[g.Q1] > l {
			l = ready[g.Q1]
		}
		layerOf[i] = l
		ready[g.Q0] = l + 1
		if g.IsTwoQubit() {
			ready[g.Q1] = l + 1
		}
		if l+1 > numLayers {
			numLayers = l + 1
		}
	}
	return layerOf, numLayers
}

// Layers2Q assigns each two-qubit gate a two-qubit layer index, where
// one-qubit gates impose ordering but do not occupy layers. Returns the
// per-gate index (-1 for one-qubit gates) and the two-qubit depth.
func (c *Circuit) Layers2Q() (layerOf []int, depth int) {
	layerOf = make([]int, len(c.Gates))
	ready := make([]int, c.N)
	for i, g := range c.Gates {
		if !g.IsTwoQubit() {
			layerOf[i] = -1
			continue
		}
		l := ready[g.Q0]
		if ready[g.Q1] > l {
			l = ready[g.Q1]
		}
		layerOf[i] = l
		ready[g.Q0] = l + 1
		ready[g.Q1] = l + 1
		if l+1 > depth {
			depth = l + 1
		}
	}
	return layerOf, depth
}

// Depth returns the full ASAP depth counting both 1Q and 2Q gates.
func (c *Circuit) Depth() int {
	_, d := c.Layers()
	return d
}

// Depth2Q returns the number of parallel two-qubit layers, the depth metric
// the paper reports.
func (c *Circuit) Depth2Q() int {
	_, d := c.Layers2Q()
	return d
}

// Num1QLayers returns the number of ASAP layers that contain at least one
// one-qubit gate; used for the cumulative one-qubit execution time.
func (c *Circuit) Num1QLayers() int {
	layerOf, n := c.Layers()
	has := make([]bool, n)
	for i, g := range c.Gates {
		if !g.IsTwoQubit() {
			has[layerOf[i]] = true
		}
	}
	count := 0
	for _, h := range has {
		if h {
			count++
		}
	}
	return count
}
