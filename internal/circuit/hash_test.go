package circuit

import "testing"

func TestFingerprintStable(t *testing.T) {
	build := func() *Circuit {
		c := New(3)
		c.H(0)
		c.CX(0, 1)
		c.ZZ(1, 2, 0.25)
		return c
	}
	a, b := build(), build()
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical circuits hash differently")
	}
	if got := a.Fingerprint(); len(got) != 64 {
		t.Errorf("fingerprint %q is not hex SHA-256", got)
	}
}

func TestFingerprintDiscriminates(t *testing.T) {
	base := New(3)
	base.H(0)
	base.CX(0, 1)

	seen := map[string]string{base.Fingerprint(): "base"}
	record := func(name string, c *Circuit) {
		fp := c.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[fp] = name
	}

	wider := New(4) // same gates, more qubits
	wider.H(0)
	wider.CX(0, 1)
	record("wider register", wider)

	reordered := New(3)
	reordered.CX(0, 1)
	reordered.H(0)
	record("reordered gates", reordered)

	otherOperand := New(3)
	otherOperand.H(0)
	otherOperand.CX(0, 2)
	record("different operand", otherOperand)

	otherParam := New(3)
	otherParam.H(0)
	otherParam.CX(0, 1)
	otherParam.ZZ(1, 2, 0.5)
	withParam := New(3)
	withParam.H(0)
	withParam.CX(0, 1)
	withParam.ZZ(1, 2, 0.25)
	if otherParam.Fingerprint() == withParam.Fingerprint() {
		t.Error("different rotation angles hash identically")
	}
}
