package solverref

import (
	"testing"
	"time"

	"atomique/internal/bench"
	"atomique/internal/circuit"
	"atomique/internal/graphs"
)

func TestSolverCompilesSmallCircuits(t *testing.T) {
	for _, b := range []bench.Benchmark{
		{Name: "QAOA-rand-5", Circ: bench.QAOARandom(5, 0.5, 27)},
		{Name: "VQE-10", Circ: bench.VQE(10, 22)},
		{Name: "H2-4", Circ: bench.H2()},
	} {
		res, err := Compile(b.Circ, Options{Mode: Solver, Budget: 300 * time.Millisecond})
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if res.TimedOut {
			t.Fatalf("%s: unexpected timeout", b.Name)
		}
		m := res.Metrics
		if m.N2Q < b.Circ.Num2Q() {
			t.Errorf("%s: executed %d 2Q < source %d", b.Name, m.N2Q, b.Circ.Num2Q())
		}
		if f := m.FidelityTotal(); f <= 0 || f > 1 {
			t.Errorf("%s: fidelity %v out of range", b.Name, f)
		}
		if m.Depth2Q == 0 || m.Depth2Q > m.N2Q {
			t.Errorf("%s: depth %d implausible for %d gates", b.Name, m.Depth2Q, m.N2Q)
		}
	}
}

func TestIterPCompiles(t *testing.T) {
	c := bench.QSimRandom(10, 10, 0.5, 26)
	res, err := Compile(c, Options{Mode: IterP})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("IterP should not time out")
	}
	if res.Metrics.Arch != "Tan-IterP" {
		t.Errorf("arch label = %q", res.Metrics.Arch)
	}
}

func TestSolverNotWorseThanIterP(t *testing.T) {
	// The exact stage packing can only reduce depth relative to greedy
	// packing on the same partition... modulo partition differences; check a
	// structured circuit where both find the natural partition.
	c := bench.QAOARegular(10, 4, 29)
	solver, err := Compile(c, Options{Mode: Solver, Budget: 500 * time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	iterp, err := Compile(c, Options{Mode: IterP, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if solver.TimedOut || iterp.TimedOut {
		t.Fatal("unexpected timeout")
	}
	if solver.Metrics.Depth2Q > iterp.Metrics.Depth2Q+2 {
		t.Errorf("solver depth %d much worse than iterp %d",
			solver.Metrics.Depth2Q, iterp.Metrics.Depth2Q)
	}
	// The solver must consume visibly more compile time (anytime loop).
	if solver.Metrics.CompileTime < iterp.Metrics.CompileTime {
		t.Errorf("solver compiled faster (%v) than iterp (%v)",
			solver.Metrics.CompileTime, iterp.Metrics.CompileTime)
	}
}

func TestSolverTimesOutOnTinyBudget(t *testing.T) {
	c := bench.QV(32, 32, 3)
	res, err := Compile(c, Options{Mode: Solver, Budget: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Errorf("QV-32 with 1ms budget should time out")
	}
}

func TestCompileRejectsOversized(t *testing.T) {
	c := circuit.New(300)
	if _, err := Compile(c, Options{ArraySize: 16}); err == nil {
		t.Errorf("300-qubit circuit accepted on 16x16 arrays")
	}
}

func TestExactMaxCutOptimalOnSmallGraphs(t *testing.T) {
	// K4 with unit weights: max cut = 4 (2-2 split).
	g := graphs.NewWeighted(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddWeight(i, j, 1)
		}
	}
	part, timedOut := exactMaxCut(g, time.Now().Add(time.Second))
	if timedOut {
		t.Fatal("unexpected timeout")
	}
	if got := graphs.CutWeight(g, part); got != 4 {
		t.Errorf("exact max cut = %v, want 4", got)
	}
	// Path graph 0-1-2: max cut = 2.
	p := graphs.NewWeighted(3)
	p.AddWeight(0, 1, 1)
	p.AddWeight(1, 2, 1)
	part, _ = exactMaxCut(p, time.Now().Add(time.Second))
	if got := graphs.CutWeight(p, part); got != 2 {
		t.Errorf("path max cut = %v, want 2", got)
	}
}

func TestExactBeatsGreedyCut(t *testing.T) {
	// A graph where greedy is suboptimal: exact must be >= greedy.
	g := graphs.NewWeighted(6)
	edges := [][3]float64{{0, 1, 3}, {1, 2, 3}, {2, 0, 3}, {3, 4, 2}, {4, 5, 2}, {0, 3, 1}}
	for _, e := range edges {
		g.AddWeight(int(e[0]), int(e[1]), e[2])
	}
	exact, _ := exactMaxCut(g, time.Now().Add(time.Second))
	greedy := graphs.MaxKCutGreedy(g, 2, nil)
	if graphs.CutWeight(g, exact) < graphs.CutWeight(g, greedy) {
		t.Errorf("exact cut %v < greedy cut %v",
			graphs.CutWeight(g, exact), graphs.CutWeight(g, greedy))
	}
}

func TestNoTwoQubitGateCircuit(t *testing.T) {
	c := circuit.New(6)
	for q := 0; q < 6; q++ {
		c.H(q)
	}
	res, err := Compile(c, Options{Mode: IterP})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Depth2Q != 0 || res.Metrics.N1Q != 6 {
		t.Errorf("metrics = %+v", res.Metrics)
	}
}
