// Package solverref implements the two solver-based RAA compilers the paper
// compares against in Fig 14: Tan-Solver (OLSQ-DPQA, an SMT formulation) and
// Tan-IterP (its greedy "iterative peeling" relaxation). The original uses
// Z3; this reference implementation reproduces the *behavioural envelope*
// the comparison relies on — near-optimal schedules with genuinely
// exponential compile time for the exact mode (exact max-cut partitioning by
// branch-and-bound plus exact maximum-compatible-set stage packing), and a
// polynomial greedy mode — under the same RAA legality rules and fidelity
// model as Atomique. A configurable wall-clock budget reproduces the
// timeout column of Table II.
//
// The machine model follows the Fig 14 setup: one 16x16 SLM plus one 16x16
// AOD (the baselines lack multi-AOD support), so every executable two-qubit
// gate is AOD-SLM.
package solverref

import (
	"fmt"
	"time"

	"atomique/internal/circuit"
	"atomique/internal/fidelity"
	"atomique/internal/graphs"
	"atomique/internal/hardware"
	"atomique/internal/metrics"
	"atomique/internal/sabre"
)

// Mode selects the compiler variant.
type Mode int

// Compiler variants.
const (
	Solver Mode = iota // exact (exponential) — Tan-Solver
	IterP              // greedy peeling — Tan-IterP
)

func (m Mode) String() string {
	if m == Solver {
		return "Tan-Solver"
	}
	return "Tan-IterP"
}

// Options configures a solver-reference compilation.
type Options struct {
	Mode Mode
	// Budget bounds wall-clock compile time (Solver mode); zero means
	// 30 seconds. The paper used 24 hours; scale accordingly.
	Budget time.Duration
	// ArraySize is the SLM/AOD side length (default 16, the OLSQ-DPQA
	// setting).
	ArraySize int
	Seed      int64
}

func (o Options) withDefaults() Options {
	if o.Budget == 0 {
		o.Budget = 30 * time.Second
	}
	if o.ArraySize == 0 {
		o.ArraySize = 16
	}
	return o
}

// Result is a solver-reference compilation outcome.
type Result struct {
	Metrics  metrics.Compiled
	TimedOut bool
	// Routed is the physical circuit the stage scheduler executes (over the
	// partition's slot register), and FinalSlotOf maps logical qubit -> slot
	// after execution. Stage packing only reorders frontier-independent
	// gates, so this is the execution witness the backend verification
	// replays. Both are nil when the compilation timed out.
	Routed      *circuit.Circuit
	FinalSlotOf []int
}

// Compile maps and schedules circ on the single-AOD RAA.
func Compile(circ *circuit.Circuit, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if circ.N > opts.ArraySize*opts.ArraySize {
		return Result{}, fmt.Errorf("solverref: circuit too large for %dx%d arrays",
			opts.ArraySize, opts.ArraySize)
	}
	start := time.Now()
	deadline := start.Add(opts.Budget)

	// Step 1: qubit-array partition (SLM vs AOD).
	gf := graphs.GateFrequency(circ, 1.0)
	var part []int
	timedOut := false
	if opts.Mode == Solver {
		part, timedOut = exactMaxCut(gf, deadline)
		if timedOut {
			return Result{Metrics: metrics.Compiled{
				Arch:        opts.Mode.String(),
				NQubits:     circ.N,
				CompileTime: time.Since(start),
			}, TimedOut: true}, nil
		}
	} else {
		part = graphs.MaxKCutGreedy(gf, 2, nil)
	}

	// Step 2: SWAP insertion on the complete bipartite coupling.
	sizes := []int{0, 0}
	for _, p := range part {
		sizes[p]++
	}
	if sizes[0] == 0 || sizes[1] == 0 {
		// Degenerate partition (no two-qubit gates): split arbitrarily.
		for q := range part {
			part[q] = q % 2
		}
		sizes = []int{0, 0}
		for _, p := range part {
			sizes[p]++
		}
	}
	slotOf := make([]int, circ.N)
	next := []int{0, sizes[0]}
	for q, p := range part {
		slotOf[q] = next[p]
		next[p]++
	}
	var routed *circuit.Circuit
	finalSlotOf := slotOf
	swaps := 0
	if circ.Num2Q() > 0 {
		res := sabre.Route(circ, graphs.CompleteMultipartite(sizes),
			sabre.Options{InitialMapping: slotOf, Seed: opts.Seed})
		routed = res.Routed
		finalSlotOf = res.FinalMapping
		swaps = res.SwapCount
	} else {
		routed = relabel(circ, slotOf, circ.N)
	}

	// Step 3: placement + scheduling on the single-AOD machine.
	sched, trace, stats, schedTimedOut := schedule(routed, sizes, opts, deadline)
	if schedTimedOut {
		return Result{Metrics: metrics.Compiled{
			Arch:        opts.Mode.String(),
			NQubits:     circ.N,
			CompileTime: time.Since(start),
		}, TimedOut: true}, nil
	}

	params := hardware.NeutralAtom()
	static := fidelity.Static{
		NQubits:   circ.N,
		N1Q:       routed.Num1Q(),
		N1QLayers: stats.oneQLayers,
		N2Q:       routed.Num2Q(),
		Depth2Q:   sched,
	}
	bd := fidelity.Evaluate(params, static, trace)
	m := metrics.Compiled{
		Arch:          opts.Mode.String(),
		NQubits:       circ.N,
		N2Q:           routed.Num2Q(),
		N1Q:           routed.Num1Q(),
		Depth2Q:       sched,
		N1QLayers:     stats.oneQLayers,
		SwapCount:     swaps,
		AddedCNOTs:    3 * swaps,
		ExecutionTime: stats.execTime,
		MoveStages:    sched,
		TotalMoveDist: stats.totalDist,
		CoolingEvents: stats.coolings,
		CompileTime:   time.Since(start),
		Fidelity:      bd,
	}
	if sched > 0 {
		m.AvgMoveDist = stats.totalDist / float64(sched)
	}
	return Result{Metrics: m, Routed: routed, FinalSlotOf: finalSlotOf}, nil
}

func relabel(c *circuit.Circuit, slotOf []int, n int) *circuit.Circuit {
	out := circuit.New(n)
	for _, g := range c.Gates {
		g.Q0 = slotOf[g.Q0]
		if g.IsTwoQubit() {
			g.Q1 = slotOf[g.Q1]
		}
		out.Add(g)
	}
	return out
}

// exactMaxCut solves MAX-CUT by branch-and-bound: assign vertices in
// descending-weight order, bounding with the optimistic remaining weight.
// Exponential in the worst case — deliberately, this is the "solver".
func exactMaxCut(g *graphs.Weighted, deadline time.Time) (best []int, timedOut bool) {
	n := g.N
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Descending incident weight.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && g.VertexWeight(order[j]) > g.VertexWeight(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	best = make([]int, n)
	bestCut := -1.0
	total := g.TotalWeight()
	nodes := 0

	var dfs func(pos int, cut, seen float64) bool
	dfs = func(pos int, cut, seen float64) bool {
		nodes++
		if nodes%4096 == 0 && time.Now().After(deadline) {
			return true // timed out
		}
		if pos == n {
			if cut > bestCut {
				bestCut = cut
				copy(best, assign)
			}
			return false
		}
		// Bound: even if all unseen weight were cut, can we beat best?
		if cut+(total-seen) <= bestCut {
			return false
		}
		v := order[pos]
		for side := 0; side < 2; side++ {
			gain, touched := 0.0, 0.0
			for u := 0; u < n; u++ {
				if assign[u] >= 0 && g.W[v][u] > 0 {
					touched += g.W[v][u]
					if assign[u] != side {
						gain += g.W[v][u]
					}
				}
			}
			assign[v] = side
			if dfs(pos+1, cut+gain, seen+touched) {
				return true
			}
			assign[v] = -1
		}
		return false
	}
	if dfs(0, 0, 0) {
		return nil, true
	}
	return best, false
}
