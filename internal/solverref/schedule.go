package solverref

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"atomique/internal/circuit"
	"atomique/internal/fidelity"
	"atomique/internal/hardware"
	"atomique/internal/move"
)

// schedStats aggregates scheduling counters.
type schedStats struct {
	oneQLayers int
	execTime   float64
	totalDist  float64
	coolings   int
}

// placement assigns SLM slots to grid cells in broken-diagonal order and
// aligns each AOD slot with its most frequent partner's cell.
func placement(routed *circuit.Circuit, sizes []int, size int) (row, col []int) {
	n := sizes[0] + sizes[1]
	row = make([]int, n)
	col = make([]int, n)
	cellOf := func(i int) (int, int) {
		band, r := i/size, i%size
		return r, (r + band) % size
	}
	for i := 0; i < sizes[0]; i++ {
		row[i], col[i] = cellOf(i)
	}
	// AOD alignment: strongest partner wins the shared cell; conflicts fall
	// back to the next free diagonal cell.
	weights := routed.InteractionWeights()
	type pw struct {
		aod, slm, w int
	}
	var pairs []pw
	for p, w := range weights {
		a, b := p[0], p[1]
		if (a < sizes[0]) == (b < sizes[0]) {
			continue // same array
		}
		if a < sizes[0] {
			a, b = b, a
		}
		pairs = append(pairs, pw{aod: a, slm: b, w: w})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].w != pairs[j].w {
			return pairs[i].w > pairs[j].w
		}
		if pairs[i].aod != pairs[j].aod {
			return pairs[i].aod < pairs[j].aod
		}
		return pairs[i].slm < pairs[j].slm
	})
	taken := map[[2]int]bool{}
	placed := make([]bool, n)
	for _, p := range pairs {
		if placed[p.aod] {
			continue
		}
		cell := [2]int{row[p.slm], col[p.slm]}
		if !taken[cell] {
			row[p.aod], col[p.aod] = cell[0], cell[1]
			taken[cell] = true
			placed[p.aod] = true
		}
	}
	nextFree := 0
	for s := sizes[0]; s < n; s++ {
		if placed[s] {
			continue
		}
		for ; ; nextFree++ {
			r, c := cellOf(nextFree)
			if !taken[[2]int{r, c}] {
				row[s], col[s] = r, c
				taken[[2]int{r, c}] = true
				placed[s] = true
				nextFree++
				break
			}
		}
	}
	return row, col
}

// schedule runs the stage scheduler. Solver mode packs each stage with an
// exact maximum compatible subset (exponential branch-and-bound) and spends
// the remaining budget on randomised restarts, keeping the best schedule —
// an anytime-optimal loop standing in for the SMT solver. IterP packs
// greedily in frontier order. Returns the two-qubit depth.
func schedule(routed *circuit.Circuit, sizes []int, opts Options,
	deadline time.Time) (int, fidelity.MovementTrace, schedStats, bool) {

	rowOf, colOf := placement(routed, sizes, opts.ArraySize)
	params := hardware.NeutralAtom()

	type outcome struct {
		depth int
		trace fidelity.MovementTrace
		stats schedStats
	}
	run := func(rng *rand.Rand) (outcome, bool) {
		sim := &simulator{
			routed: routed, sizes: sizes, rowOf: rowOf, colOf: colOf,
			params: params, exact: opts.Mode == Solver,
			deadline: deadline, rng: rng,
		}
		depth, trace, stats, timedOut := sim.run()
		return outcome{depth, trace, stats}, timedOut
	}

	// First pass is deterministic (program order); Solver mode then spends
	// its remaining budget on randomised restarts.
	best, timedOut := run(nil)
	if timedOut {
		return 0, fidelity.MovementTrace{}, schedStats{}, true
	}
	if opts.Mode == Solver {
		// Consume the remaining budget like an anytime SMT optimiser: keep
		// exploring randomised schedules until the deadline, retaining the
		// best. This is what makes Solver-mode compile times track the
		// budget (Fig 14's 1000x gap) rather than the circuit size alone.
		rng := rand.New(rand.NewSource(opts.Seed))
		for time.Now().Before(deadline) {
			cand, to := run(rng)
			if to {
				break
			}
			if cand.depth < best.depth {
				best = cand
			}
		}
	}
	return best.depth, best.trace, best.stats, false
}

// simulator executes one scheduling pass over the frontier.
type simulator struct {
	routed   *circuit.Circuit
	sizes    []int
	rowOf    []int
	colOf    []int
	params   hardware.Params
	exact    bool
	deadline time.Time
	rng      *rand.Rand

	trace fidelity.MovementTrace
	stats schedStats
	nvib  []float64
	// AOD row/column positions in grid units (parked half a pitch off).
	rowPos []float64
	colPos []float64
}

func (s *simulator) isAOD(slot int) bool { return slot >= s.sizes[0] }

func (s *simulator) run() (int, fidelity.MovementTrace, schedStats, bool) {
	n := s.sizes[0] + s.sizes[1]
	s.nvib = make([]float64, n)
	size := 0
	for _, r := range s.rowOf {
		if r+1 > size {
			size = r + 1
		}
	}
	s.rowPos = make([]float64, size+1)
	s.colPos = make([]float64, size+1)
	for i := range s.rowPos {
		s.rowPos[i] = float64(i) + 0.5
		s.colPos[i] = float64(i) + 0.5
	}

	front := circuit.NewFrontier(circuit.NewDAG(s.routed))
	depth := 0
	for !front.Done() {
		if time.Now().After(s.deadline) {
			return 0, fidelity.MovementTrace{}, schedStats{}, true
		}
		// Drain one-qubit layers.
		for {
			var batch []int
			for _, gi := range front.Front() {
				if !front.Gate(gi).IsTwoQubit() {
					batch = append(batch, gi)
				}
			}
			if len(batch) == 0 {
				break
			}
			for _, gi := range batch {
				front.Execute(gi)
			}
			s.stats.oneQLayers++
			s.stats.execTime += s.params.Time1Q
		}
		if front.Done() {
			break
		}
		var cand []int
		for _, gi := range front.Front() {
			if front.Gate(gi).IsTwoQubit() {
				cand = append(cand, gi)
			}
		}
		if s.rng != nil && len(cand) > 1 {
			s.rng.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
		}
		var stage []int
		if s.exact {
			stage = s.maxCompatible(cand, front)
		} else {
			stage = s.greedyCompatible(cand, front)
		}
		if len(stage) == 0 {
			panic("solverref: no schedulable gate (intra-array pair?)")
		}
		s.executeStage(stage, front)
		depth++
	}
	return depth, s.trace, s.stats, false
}

// gateBinding returns the AOD slot and its (targetRow, targetCol) for a
// cross-array gate.
func (s *simulator) gateBinding(g circuit.Gate) (aod int, tr, tc int) {
	a, b := g.Q0, g.Q1
	if s.isAOD(a) {
		return a, s.rowOf[b], s.colOf[b]
	}
	return b, s.rowOf[a], s.colOf[a]
}

// compatible checks whether the gate set (indices into the routed circuit)
// satisfies the single-AOD legality rules: functional row/column bindings,
// strictly increasing row and column order, and no unintended landings on
// occupied SLM cells.
func (s *simulator) compatible(gates []int, front *circuit.Frontier) bool {
	rowT := map[int]int{}
	colT := map[int]int{}
	inSet := map[[2]int]bool{}
	for _, gi := range gates {
		g := front.Gate(gi)
		aod, tr, tc := s.gateBinding(g)
		r, c := s.rowOf[aod], s.colOf[aod]
		if t, ok := rowT[r]; ok && t != tr {
			return false
		}
		if t, ok := colT[c]; ok && t != tc {
			return false
		}
		rowT[r] = tr
		colT[c] = tc
		inSet[cellKey(tr, tc)] = true
	}
	if !increasing(rowT) || !increasing(colT) {
		return false
	}
	// Unintended landings: an AOD atom at (r,c) with both axes bound lands
	// on cell (rowT[r], colT[c]); if an SLM atom occupies that cell the pair
	// must be one of the scheduled gates.
	slmAt := s.slmCells()
	aodAt := map[[2]int]int{}
	for slot := s.sizes[0]; slot < s.sizes[0]+s.sizes[1]; slot++ {
		aodAt[[2]int{s.rowOf[slot], s.colOf[slot]}] = slot
	}
	for r, tr := range rowT {
		for c, tc := range colT {
			if _, atomHere := aodAt[[2]int{r, c}]; !atomHere {
				continue
			}
			if _, occupied := slmAt[[2]int{tr, tc}]; !occupied {
				continue
			}
			if !inSet[cellKey(tr, tc)] {
				return false
			}
		}
	}
	return true
}

func (s *simulator) slmCells() map[[2]int]int {
	m := make(map[[2]int]int, s.sizes[0])
	for slot := 0; slot < s.sizes[0]; slot++ {
		m[[2]int{s.rowOf[slot], s.colOf[slot]}] = slot
	}
	return m
}

func cellKey(r, c int) [2]int { return [2]int{r, c} }

func increasing(binds map[int]int) bool {
	idxs := make([]int, 0, len(binds))
	for i := range binds {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for i := 1; i < len(idxs); i++ {
		if binds[idxs[i]] <= binds[idxs[i-1]] {
			return false
		}
	}
	return true
}

// greedyCompatible packs gates first-fit (the iterative-peeling heuristic).
func (s *simulator) greedyCompatible(cand []int, front *circuit.Frontier) []int {
	var stage []int
	for _, gi := range cand {
		trial := append(append([]int(nil), stage...), gi)
		if s.compatible(trial, front) {
			stage = trial
		}
	}
	return stage
}

// maxCompatible finds a maximum compatible subset by include/exclude
// branch-and-bound — exponential in the frontier size, as an exact solver is.
func (s *simulator) maxCompatible(cand []int, front *circuit.Frontier) []int {
	best := s.greedyCompatible(cand, front)
	var cur []int
	nodes := 0
	var dfs func(pos int) bool
	dfs = func(pos int) bool {
		nodes++
		if nodes%2048 == 0 && time.Now().After(s.deadline) {
			return true
		}
		if len(cur)+len(cand)-pos <= len(best) {
			return false // cannot beat the incumbent
		}
		if pos == len(cand) {
			if len(cur) > len(best) {
				best = append([]int(nil), cur...)
			}
			return false
		}
		// Include.
		cur = append(cur, cand[pos])
		if s.compatible(cur, front) {
			if dfs(pos + 1) {
				return true
			}
		}
		cur = cur[:len(cur)-1]
		// Exclude.
		return dfs(pos + 1)
	}
	dfs(0)
	return best
}

// executeStage applies movement, heating, cooling, and retires the gates.
func (s *simulator) executeStage(stage []int, front *circuit.Frontier) {
	pitch := s.params.AtomDistance
	rowD := map[int]float64{}
	colD := map[int]float64{}
	for _, gi := range stage {
		g := front.Gate(gi)
		aod, tr, tc := s.gateBinding(g)
		r, c := s.rowOf[aod], s.colOf[aod]
		if _, ok := rowD[r]; !ok {
			d := math.Abs(float64(tr)-s.rowPos[r]) + 0.5 // travel + retreat
			rowD[r] = d
			s.rowPos[r] = float64(tr) + 0.5
		}
		if _, ok := colD[c]; !ok {
			d := math.Abs(float64(tc)-s.colPos[c]) + 0.5
			colD[c] = d
			s.colPos[c] = float64(tc) + 0.5
		}
	}
	for slot := s.sizes[0]; slot < s.sizes[0]+s.sizes[1]; slot++ {
		dr, dc := rowD[s.rowOf[slot]], colD[s.colOf[slot]]
		d := math.Hypot(dr, dc) * pitch
		if d > 0 {
			s.nvib[slot] += move.DeltaNvib(d, s.params.TimePerMove, s.params)
			s.trace.MoveNvib = append(s.trace.MoveNvib, s.nvib[slot])
			s.stats.totalDist += d
		}
	}
	for _, gi := range stage {
		g := front.Gate(gi)
		aod, _, _ := s.gateBinding(g)
		s.trace.GateNvib = append(s.trace.GateNvib, s.nvib[aod])
		front.Execute(gi)
	}
	s.trace.StageQubits = append(s.trace.StageQubits, s.sizes[0]+s.sizes[1])
	s.trace.StageMoveTime = append(s.trace.StageMoveTime, s.params.TimePerMove)
	s.stats.execTime += s.params.TimePerMove + s.params.Time2Q

	hot := false
	for slot := s.sizes[0]; slot < s.sizes[0]+s.sizes[1]; slot++ {
		if s.nvib[slot] > s.params.NvibCool {
			hot = true
			break
		}
	}
	if hot {
		s.trace.CoolingAtomCounts = append(s.trace.CoolingAtomCounts, s.sizes[1])
		for slot := s.sizes[0]; slot < s.sizes[0]+s.sizes[1]; slot++ {
			s.nvib[slot] = 0
		}
		s.stats.coolings++
		s.stats.execTime += 2 * s.params.Time2Q
	}
}
