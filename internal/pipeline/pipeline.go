// Package pipeline structures a compilation as an explicit sequence of
// passes over typed intermediate state, mirroring how hardware compilers in
// related work (QEC-Lib's HardwareCompiler/CompilationPass, ZAP's separated
// zoned scheduling) organise the decompose → map → route → schedule →
// fidelity flow. The runner instruments every pass with wall time and
// gate/move counts and checks for cancellation between passes, so services
// can report per-stage cost and abort long compilations promptly.
//
// The Atomique pass list lives in internal/core (core.Passes); alternate
// backends (a SABRE-only fixed-array compiler, a Geyser-style pulse
// compiler) plug in as alternate pass lists over the same State.
package pipeline

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"atomique/internal/metrics"
	"atomique/internal/obs"
)

// Pass is one compilation stage. Run mutates the shared State in place; a
// pass reads the artifacts earlier passes produced and adds its own. Run
// must be deterministic for a fixed State (any randomness must come from
// State.Rng, which is seeded by the caller).
type Pass interface {
	Name() string
	Run(ctx context.Context, st *State) error
}

// PassFunc adapts a function to the Pass interface.
type PassFunc struct {
	PassName string
	Fn       func(ctx context.Context, st *State) error
}

// Name returns the pass name.
func (p PassFunc) Name() string { return p.PassName }

// Run invokes the wrapped function.
func (p PassFunc) Run(ctx context.Context, st *State) error { return p.Fn(ctx, st) }

// Pipeline is an ordered pass list plus the instrumentation the runner
// collects. The zero value is an empty pipeline; use New.
type Pipeline struct {
	passes []Pass
}

// New builds a pipeline from passes, run in order.
func New(passes ...Pass) *Pipeline { return &Pipeline{passes: passes} }

// Names returns the pass names in execution order.
func (p *Pipeline) Names() []string {
	names := make([]string, len(p.passes))
	for i, pass := range p.passes {
		names[i] = pass.Name()
	}
	return names
}

// Run executes every pass in order against st, recording one PassTiming per
// completed pass. Before each pass it checks ctx — a cancelled context
// aborts the pipeline between passes (long-running passes additionally
// check ctx internally, e.g. the router's per-stage checkpoint). On error
// the timings of the passes that completed are returned alongside it.
//
// When ctx carries an obs span (the compile service's traced path), every
// completed pass is additionally recorded as a child span named
// "pass:<name>" carrying the measured gate/move counts — the same numbers
// PassTiming reports, so traces and metrics never disagree. Untraced callers
// pay only a nil check per pass.
func (p *Pipeline) Run(ctx context.Context, st *State) ([]metrics.PassTiming, error) {
	sp := obs.SpanFromContext(ctx)
	timings := make([]metrics.PassTiming, 0, len(p.passes))
	for _, pass := range p.passes {
		if err := ctx.Err(); err != nil {
			return timings, fmt.Errorf("pipeline: cancelled before pass %s: %w", pass.Name(), err)
		}
		start := time.Now()
		if err := pass.Run(ctx, st); err != nil {
			return timings, fmt.Errorf("pipeline: pass %s: %w", pass.Name(), err)
		}
		elapsed := time.Since(start)
		timings = append(timings, metrics.PassTiming{
			Name:    pass.Name(),
			Seconds: elapsed.Seconds(),
			Gates:   st.GateCount(),
			Moves:   st.MoveCount(),
		})
		if sp != nil {
			if c := sp.Record("pass:"+pass.Name(), start, elapsed); c != nil {
				c.SetAttr("gates", strconv.Itoa(st.GateCount()))
				c.SetAttr("moves", strconv.Itoa(st.MoveCount()))
			}
		}
	}
	return timings, nil
}
