package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"atomique/internal/circuit"
)

func namedPass(name string, fn func(st *State) error) Pass {
	return PassFunc{PassName: name, Fn: func(_ context.Context, st *State) error { return fn(st) }}
}

func TestRunExecutesPassesInOrder(t *testing.T) {
	var got []string
	p := New(
		namedPass("a", func(*State) error { got = append(got, "a"); return nil }),
		namedPass("b", func(*State) error { got = append(got, "b"); return nil }),
		namedPass("c", func(*State) error { got = append(got, "c"); return nil }),
	)
	timings, err := p.Run(context.Background(), &State{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, ",") != "a,b,c" {
		t.Fatalf("execution order %v", got)
	}
	if len(timings) != 3 {
		t.Fatalf("got %d timings, want 3", len(timings))
	}
	for i, name := range []string{"a", "b", "c"} {
		if timings[i].Name != name {
			t.Errorf("timing %d name = %q, want %q", i, timings[i].Name, name)
		}
		if timings[i].Seconds < 0 {
			t.Errorf("timing %d negative: %v", i, timings[i].Seconds)
		}
	}
	if names := p.Names(); strings.Join(names, ",") != "a,b,c" {
		t.Errorf("Names() = %v", names)
	}
}

func TestRunErrorStopsPipeline(t *testing.T) {
	boom := errors.New("boom")
	ran := false
	p := New(
		namedPass("first", func(*State) error { return nil }),
		namedPass("failing", func(*State) error { return boom }),
		namedPass("after", func(*State) error { ran = true; return nil }),
	)
	timings, err := p.Run(context.Background(), &State{})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "failing") {
		t.Errorf("error does not name the pass: %v", err)
	}
	if ran {
		t.Error("pass after the failure still ran")
	}
	if len(timings) != 1 || timings[0].Name != "first" {
		t.Errorf("timings = %v, want just the completed first pass", timings)
	}
}

func TestRunCancellationCheckpoint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := false
	p := New(
		namedPass("canceller", func(*State) error { cancel(); return nil }),
		namedPass("after", func(*State) error { ran = true; return nil }),
	)
	_, err := p.Run(ctx, &State{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "after") {
		t.Errorf("error does not name the pending pass: %v", err)
	}
	if ran {
		t.Error("pass ran after cancellation")
	}
}

func TestGateAndMoveCounts(t *testing.T) {
	c := circuit.New(3)
	c.H(0)
	c.CX(0, 1)
	st := &State{Circ: c}
	if got := st.GateCount(); got != 2 {
		t.Errorf("source GateCount = %d, want 2", got)
	}
	routed := circuit.New(3)
	routed.H(0)
	routed.CX(0, 1)
	routed.CX(1, 2)
	st.Routed = routed
	if got := st.GateCount(); got != 3 {
		t.Errorf("routed GateCount = %d, want 3", got)
	}
	st.Schedule = &Schedule{Stages: []Stage{
		{OneQ: []GateExec{{Op: circuit.OpH, SlotA: 0, SlotB: -1}},
			Moves: []Move{{Array: 1, IsRow: true}},
			Gates: []GateExec{{Op: circuit.OpCX, SlotA: 0, SlotB: 1}}},
		{Moves: []Move{{Array: 1}, {Array: 1, Index: 1}},
			Gates: []GateExec{{Op: circuit.OpCX, SlotA: 1, SlotB: 2}}},
	}}
	if got := st.GateCount(); got != 3 {
		t.Errorf("scheduled GateCount = %d, want 3", got)
	}
	if got := st.MoveCount(); got != 3 {
		t.Errorf("MoveCount = %d, want 3", got)
	}
}

func TestTimingCountsTrackState(t *testing.T) {
	c := circuit.New(2)
	c.CX(0, 1)
	p := New(
		namedPass("noop", func(*State) error { return nil }),
		namedPass("schedule", func(st *State) error {
			st.Schedule = &Schedule{Stages: []Stage{{
				Moves: []Move{{Array: 1}},
				Gates: []GateExec{{Op: circuit.OpCX, SlotA: 0, SlotB: 1}},
			}}}
			return nil
		}),
	)
	timings, err := p.Run(context.Background(), &State{Circ: c})
	if err != nil {
		t.Fatal(err)
	}
	if timings[0].Gates != 1 || timings[0].Moves != 0 {
		t.Errorf("noop pass counts = %+v, want gates 1 moves 0", timings[0])
	}
	if timings[1].Gates != 1 || timings[1].Moves != 1 {
		t.Errorf("schedule pass counts = %+v, want gates 1 moves 1", timings[1])
	}
}

func TestRouterStatsAvgDist(t *testing.T) {
	if d := (RouterStats{}).AvgDist(); d != 0 {
		t.Errorf("zero-stage AvgDist = %v", d)
	}
	s := RouterStats{TotalDist: 6, Stages: 3}
	if d := s.AvgDist(); d != 2 {
		t.Errorf("AvgDist = %v, want 2", d)
	}
}

func ExamplePipeline_Run() {
	p := New(namedPass("hello", func(*State) error { return nil }))
	timings, _ := p.Run(context.Background(), &State{})
	fmt.Println(timings[0].Name)
	// Output: hello
}
