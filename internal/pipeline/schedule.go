package pipeline

import (
	"fmt"

	"atomique/internal/circuit"
)

// Move is one AOD row or column translation within a stage.
type Move struct {
	Array int  // AOD array index (>= 1; 0 is the fixed SLM)
	IsRow bool // true = row (y axis), false = column (x axis)
	Index int  // row/column index within the array
	From  float64
	To    float64
}

// Distance returns the translation length in meters.
func (m Move) Distance() float64 {
	d := m.To - m.From
	if d < 0 {
		d = -d
	}
	return d
}

// GateExec is one gate fired in a stage (slots are physical atoms; SlotB is
// -1 for one-qubit gates). Param carries the rotation angle where relevant.
type GateExec struct {
	Op    circuit.Op
	SlotA int
	SlotB int
	Param float64
}

// Stage is one router iteration: a batch of one-qubit gates, a set of AOD
// row/column moves, and the parallel two-qubit gates the Rydberg pulse
// executes after the moves.
type Stage struct {
	OneQ  []GateExec // one-qubit gates executed before the movement
	Moves []Move
	Gates []GateExec
}

// Schedule is the executable program the router emits.
type Schedule struct {
	Stages []Stage
}

// NumGates returns the total two-qubit gates across stages.
func (s *Schedule) NumGates() int {
	t := 0
	for _, st := range s.Stages {
		t += len(st.Gates)
	}
	return t
}

// MaxParallelism returns the largest two-qubit batch in any stage.
func (s *Schedule) MaxParallelism() int {
	m := 0
	for _, st := range s.Stages {
		if len(st.Gates) > m {
			m = len(st.Gates)
		}
	}
	return m
}

// String summarises the schedule.
func (s *Schedule) String() string {
	return fmt.Sprintf("schedule{stages: %d, 2Q gates: %d, max parallel: %d}",
		len(s.Stages), s.NumGates(), s.MaxParallelism())
}
