package pipeline

import (
	"math/rand"

	"atomique/internal/circuit"
	"atomique/internal/fidelity"
	"atomique/internal/hardware"
	"atomique/internal/metrics"
)

// State is the typed intermediate state threaded through a pass pipeline.
// Each pass consumes the artifacts of earlier passes and fills in its own;
// the field groups below appear in the order the Atomique pass list
// produces them. Backends that skip a stage simply leave its fields zero.
type State struct {
	// Inputs, set by the caller before Run.
	Cfg  hardware.Config
	Circ *circuit.Circuit
	Seed int64
	// Rng drives every randomised tie-break; the caller seeds it so the
	// whole pipeline is deterministic per seed.
	Rng *rand.Rand

	// Qubit-array mapping artifacts.
	ArrayOf []int // logical qubit -> array (0 = SLM)
	Sizes   []int // per-array occupancy
	SlotOf  []int // logical qubit -> physical slot before execution

	// Inter-array routing artifacts.
	Routed      *circuit.Circuit // physical circuit over slots, SWAPs inserted
	FinalSlotOf []int            // logical qubit -> slot after execution
	SwapCount   int

	// Atom placement.
	SiteOf []hardware.Site // slot -> trap site

	// Scheduling artifacts.
	Schedule *Schedule
	Trace    fidelity.MovementTrace
	Router   RouterStats

	// Final summary.
	Static  fidelity.Static
	Metrics metrics.Compiled
}

// GateCount returns the gate total of the most concrete circuit
// representation the pipeline has produced so far: the schedule once one
// exists, else the routed circuit, else the source. Pass instrumentation
// snapshots it after every pass.
func (st *State) GateCount() int {
	if st.Schedule != nil {
		n := 0
		for _, stage := range st.Schedule.Stages {
			n += len(stage.OneQ) + len(stage.Gates)
		}
		return n
	}
	if st.Routed != nil {
		return len(st.Routed.Gates)
	}
	if st.Circ != nil {
		return len(st.Circ.Gates)
	}
	return 0
}

// MoveCount returns the AOD row/column moves scheduled so far.
func (st *State) MoveCount() int {
	if st.Schedule == nil {
		return 0
	}
	n := 0
	for _, stage := range st.Schedule.Stages {
		n += len(stage.Moves)
	}
	return n
}

// RouterStats aggregates the counters the routing pass produces beyond the
// schedule itself.
type RouterStats struct {
	ExecTime   float64 // schedule wall-clock length in seconds
	TotalDist  float64 // total atom movement in meters
	Coolings   int     // cooling swaps performed
	Overlaps   int     // gates rejected from a stage by the overlap rule
	OneQLayers int     // parallel one-qubit layers executed
	Stages     int     // movement stages
}

// AvgDist returns the mean movement distance per stage.
func (s RouterStats) AvgDist() float64 {
	if s.Stages == 0 {
		return 0
	}
	return s.TotalDist / float64(s.Stages)
}
