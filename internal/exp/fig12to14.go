package exp

import (
	"fmt"
	"time"

	"atomique/internal/bench"
	"atomique/internal/compiler"
	"atomique/internal/hardware"
	"atomique/internal/move"
	"atomique/internal/report"
)

// coreOptions returns the default Atomique options with a seed.
func coreOptions(seed int64) compiler.Options { return compiler.Options{Seed: seed} }

// Fig12 samples the constant-jerk movement profile: jerk, acceleration,
// velocity, and distance versus time for a 15 um move over 300 us.
func Fig12() []*report.Table {
	p := hardware.NeutralAtom()
	prof := move.Trajectory(p.AtomDistance, p.TimePerMove, 13)
	t := &report.Table{
		Title:  "Fig 12: atom movement pattern (15um over 300us)",
		Header: []string{"Time (us)", "Jerk (um/us^3)", "Accel (um/us^2)", "Velo (um/us)", "Distance (um)"},
	}
	for i := range prof.Time {
		t.AddRow(
			fmt.Sprintf("%.0f", prof.Time[i]*1e6),
			fmt.Sprintf("%.3g", prof.Jerk[i]*1e-12),   // m/s^3 -> um/us^3
			fmt.Sprintf("%.3g", prof.Accel[i]*1e-6),   // m/s^2 -> um/us^2
			fmt.Sprintf("%.3g", prof.Velocity[i]*1.0), // m/s == um/us
			fmt.Sprintf("%.3g", prof.Position[i]*1e6),
		)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("delta n_vib for this move: %.4f (paper: 0.0054)",
		move.DeltaNvib(p.AtomDistance, p.TimePerMove, p)))
	return []*report.Table{t}
}

// Fig13 runs the main comparison: circuit depth, two-qubit gate count, and
// fidelity for the 17 benchmarks across five architectures.
func Fig13() []*report.Table {
	suite := bench.Fig13Suite()
	depth := &report.Table{Title: "Fig 13a: circuit depth (2Q layers)",
		Header: append([]string{"Benchmark"}, archNames...)}
	gates := &report.Table{Title: "Fig 13b: number of 2Q gates",
		Header: append([]string{"Benchmark"}, archNames...)}
	fid := &report.Table{Title: "Fig 13c: fidelity",
		Header: append([]string{"Benchmark"}, archNames...)}

	depthG := map[string][]float64{}
	gatesG := map[string][]float64{}
	fidG := map[string][]float64{}
	for i, b := range suite {
		all := compileAll(b.Circ, int64(i+1))
		dRow := []interface{}{b.Name}
		gRow := []interface{}{b.Name}
		fRow := []interface{}{b.Name}
		for _, an := range archNames {
			m := all[an]
			dRow = append(dRow, m.Depth2Q)
			gRow = append(gRow, m.N2Q)
			fRow = append(fRow, fmt.Sprintf("%.3f", m.FidelityTotal()))
			depthG[an] = append(depthG[an], float64(m.Depth2Q))
			gatesG[an] = append(gatesG[an], float64(m.N2Q))
			fidG[an] = append(fidG[an], m.FidelityTotal())
		}
		depth.AddRow(dRow...)
		gates.AddRow(gRow...)
		fid.AddRow(fRow...)
	}
	addGMean := func(t *report.Table, g map[string][]float64, format string) {
		row := []interface{}{"GMean"}
		for _, an := range archNames {
			row = append(row, fmt.Sprintf(format, geoMeanColumn(g[an])))
		}
		t.AddRow(row...)
	}
	addGMean(depth, depthG, "%.0f")
	addGMean(gates, gatesG, "%.0f")
	addGMean(fid, fidG, "%.3f")
	fid.Notes = append(fid.Notes,
		"paper GMeans — depth: 700/656/609/415/189; 2Q: 1775/1064/1107/875/316; "+
			"fidelity: 0.000/0.058/0.054/0.097/0.281")
	return []*report.Table{depth, gates, fid}
}

// Fig14Budget bounds the Tan-Solver anytime loop (paper: 24h).
var Fig14Budget = 2 * time.Second

// Fig14 compares Atomique (single AOD) with Tan-Solver and Tan-IterP on the
// small-benchmark suite: fidelity, two-qubit gates, and compile time.
func Fig14() []*report.Table {
	fid := &report.Table{Title: "Fig 14a: fidelity",
		Header: []string{"Benchmark", "Tan-Solver", "Tan-IterP", "Atomique"}}
	gates := &report.Table{Title: "Fig 14b: number of 2Q gates",
		Header: []string{"Benchmark", "Tan-Solver", "Tan-IterP", "Atomique"}}
	ctime := &report.Table{Title: "Fig 14c: compilation time (s)",
		Header: []string{"Benchmark", "Tan-Solver", "Tan-IterP", "Atomique"},
		Notes: []string{"paper: Atomique over 1000x faster than Tan-Solver " +
			"with comparable fidelity (mean 0.88 vs 0.91/0.92)"}}

	// Single-AOD machine for fairness (the baselines lack multi-AOD support).
	cfg := hardware.Config{
		SLM:    hardware.ArraySpec{Rows: 16, Cols: 16},
		AODs:   []hardware.ArraySpec{{Rows: 16, Cols: 16}},
		Params: hardware.NeutralAtom(),
	}
	// The solver baselines run through the unified registry: exact mode is
	// the Exact option, the greedy relaxation the default.
	tgt := compiler.FPQA(cfg)
	var fids [3][]float64
	for i, b := range bench.Fig14Suite() {
		solver := mustCompile("solverref", tgt, b.Circ, compiler.Options{
			Seed: int64(i), Exact: true, BudgetSeconds: Fig14Budget.Seconds()})
		iterp := mustCompile("solverref", tgt, b.Circ, compiler.Options{Seed: int64(i)})
		at := mustAtomique(cfg, b.Circ, coreOptions(int64(i)))

		fmtFid := func(r *compiler.Result) string {
			if r.TimedOut {
				return "timeout"
			}
			return fmt.Sprintf("%.3f", r.Metrics.FidelityTotal())
		}
		fid.AddRow(b.Name, fmtFid(solver), fmtFid(iterp),
			fmt.Sprintf("%.3f", at.FidelityTotal()))
		gates.AddRow(b.Name, solver.Metrics.N2Q, iterp.Metrics.N2Q, at.N2Q)
		ctime.AddRow(b.Name,
			fmt.Sprintf("%.3g", solver.Metrics.CompileTime.Seconds()),
			fmt.Sprintf("%.3g", iterp.Metrics.CompileTime.Seconds()),
			fmt.Sprintf("%.3g", at.CompileTime.Seconds()))
		if !solver.TimedOut {
			fids[0] = append(fids[0], solver.Metrics.FidelityTotal())
		}
		fids[1] = append(fids[1], iterp.Metrics.FidelityTotal())
		fids[2] = append(fids[2], at.FidelityTotal())
	}
	fid.AddRow("Mean",
		fmt.Sprintf("%.3f", mean(fids[0])),
		fmt.Sprintf("%.3f", mean(fids[1])),
		fmt.Sprintf("%.3f", mean(fids[2])))
	return []*report.Table{fid, gates, ctime}
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
