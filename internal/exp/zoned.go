package exp

import (
	"fmt"

	"atomique/internal/bench"
	"atomique/internal/compiler"
	"atomique/internal/metrics"
	"atomique/internal/report"
)

// zonedSuite is the zoned-vs-flat workload set: one representative per
// Table II circuit family at sizes both machines hold comfortably.
func zonedSuite() []bench.Benchmark {
	return []bench.Benchmark{
		{Name: "GHZ-20", Circ: bench.GHZ(20)},
		{Name: "QAOA-regu5-40", Circ: bench.QAOARegular(40, 5, 15)},
		{Name: "QSim-30", Circ: bench.QSimRandom(30, 60, 0.5, 9)},
		{Name: "QV-32", Circ: bench.QV(32, 32, 3)},
		{Name: "BV-50", Circ: bench.BV(50, 22, 4)},
	}
}

// ZonedVsFlat compares the flat Atomique RAA pipeline with the ZAP-style
// zoned backend on a representative benchmark set. The comparison shows the
// zoned trade-off: routing disappears (no SWAP-inserted CNOTs — any pair
// meets in the entangling zone) and depth tracks the gate-site count, but
// every two-qubit gate pays two shuttle legs and four trap-tweezer
// transfers, so transfer loss and shuttle latency dominate where the flat
// machine's AOD parallelism dominates.
func ZonedVsFlat() []*report.Table {
	t := &report.Table{
		Title: "Zoned vs flat FPQA (Atomique pipeline vs ZAP-style zoned backend)",
		Header: []string{"Benchmark", "Depth flat", "Depth zoned", "+CNOT flat", "+CNOT zoned",
			"Time flat", "Time zoned", "Move flat", "Move zoned", "Fid flat", "Fid zoned"},
		Notes: []string{
			"Depth = movement stages / shuttle rounds; Time = schedule length (s); Move = total atom transport (mm)",
			"zoned pays 4 trap-tweezer transfers per 2Q gate + the readout shuttle; flat pays SWAP CNOTs instead",
		},
	}
	var fidsFlat, fidsZoned []float64
	for _, b := range zonedSuite() {
		flat := mustAtomique(configFor(b.Circ.N), b.Circ, compiler.Options{Seed: 7})
		zoned := mustCompile("zoned", compiler.Target{}, b.Circ, compiler.Options{Seed: 7}).Metrics
		fidsFlat = append(fidsFlat, flat.FidelityTotal())
		fidsZoned = append(fidsZoned, zoned.FidelityTotal())
		t.AddRow(b.Name,
			flat.Depth2Q, zoned.Depth2Q,
			flat.AddedCNOTs, zoned.AddedCNOTs,
			fmt.Sprintf("%.4f", flat.ExecutionTime), fmt.Sprintf("%.4f", zoned.ExecutionTime),
			fmt.Sprintf("%.2f", flat.TotalMoveDist*1e3), fmt.Sprintf("%.2f", zoned.TotalMoveDist*1e3),
			fmt.Sprintf("%.4f", flat.FidelityTotal()), fmt.Sprintf("%.4f", zoned.FidelityTotal()))
	}
	t.AddRow("GMean fidelity", "", "", "", "", "", "", "", "",
		fmt.Sprintf("%.4f", metrics.GeoMean(fidsFlat)), fmt.Sprintf("%.4f", metrics.GeoMean(fidsZoned)))
	return []*report.Table{t}
}
