package exp

import (
	"fmt"

	"atomique/internal/bench"
	"atomique/internal/compiler"
	"atomique/internal/graphs"
	"atomique/internal/hardware"
	"atomique/internal/report"
	"atomique/internal/sabre"
)

// Ablations sweeps the design choices DESIGN.md calls out beyond the paper's
// own Fig 21 breakdown: the gate-frequency decay factor gamma (Sec. III-A),
// SABRE's lookahead window, and the number of reverse-traversal refinement
// passes. These quantify how sensitive the pipeline is to its tuning knobs.
func Ablations() []*report.Table {
	return []*report.Table{
		gammaSweep(),
		lookaheadSweep(),
		reversePassSweep(),
	}
}

// gammaSweep varies the layer-decay factor of the gate-frequency graph.
// gamma = 1 weighs all layers equally; small gamma trusts only the opening
// layers (the paper argues later gates benefit less from the mapping).
func gammaSweep() *report.Table {
	t := &report.Table{
		Title:  "Ablation: gate-frequency decay factor gamma",
		Header: []string{"gamma", "Benchmark", "Swaps", "2Q gates", "Fidelity"},
		Notes:  []string{"default gamma = 0.95; fidelity should be flat-ish with a mild optimum"},
	}
	suite := []bench.Benchmark{
		{Name: "QSim-rand-20", Circ: bench.QSimRandom(20, 10, 0.5, 6)},
		{Name: "QAOA-regu5-40", Circ: bench.QAOARegular(40, 5, 15)},
		{Name: "QV-16", Circ: bench.QV(16, 16, 3)},
	}
	cfg := hardware.DefaultConfig()
	for _, gamma := range []float64{0.5, 0.8, 0.95, 1.0} {
		for _, b := range suite {
			m := mustAtomique(cfg, b.Circ, compiler.Options{Gamma: gamma, Seed: 1})
			t.AddRow(fmt.Sprintf("%.2f", gamma), b.Name, m.SwapCount, m.N2Q,
				fmt.Sprintf("%.3f", m.FidelityTotal()))
		}
	}
	return t
}

// lookaheadSweep varies SABRE's extended-set size on a fixed baseline
// architecture; zero lookahead routes purely on the front layer.
func lookaheadSweep() *report.Table {
	t := &report.Table{
		Title:  "Ablation: SABRE lookahead window (FAA-Rectangular)",
		Header: []string{"Extended size", "Benchmark", "Swaps", "2Q depth"},
		Notes:  []string{"default window = 20; larger windows trade compile time for swaps"},
	}
	suite := []bench.Benchmark{
		{Name: "QSim-rand-20", Circ: bench.QSimRandom(20, 10, 0.5, 6)},
		{Name: "QAOA-rand-20", Circ: bench.QAOARandom(20, 0.5, 12)},
	}
	for _, size := range []int{1, 5, 20, 50} {
		for _, b := range suite {
			cg := graphs.Grid(gridDims(b.Circ.N))
			r := sabre.Route(b.Circ, cg, sabre.Options{ExtendedSize: size, Seed: 1})
			t.AddRow(size, b.Name, r.SwapCount, r.Routed.Depth2Q())
		}
	}
	return t
}

// reversePassSweep varies SABRE's initial-mapping refinement rounds.
func reversePassSweep() *report.Table {
	t := &report.Table{
		Title:  "Ablation: SABRE reverse-traversal passes (FAA-Rectangular)",
		Header: []string{"Passes", "Benchmark", "Swaps", "2Q depth"},
	}
	suite := []bench.Benchmark{
		{Name: "QSim-rand-20", Circ: bench.QSimRandom(20, 10, 0.5, 6)},
		{Name: "QAOA-rand-20", Circ: bench.QAOARandom(20, 0.5, 12)},
	}
	for _, passes := range []int{1, 2, 3} {
		for _, b := range suite {
			cg := graphs.Grid(gridDims(b.Circ.N))
			r := sabre.Route(b.Circ, cg, sabre.Options{ReversePasses: passes, Seed: 1})
			t.AddRow(passes, b.Name, r.SwapCount, r.Routed.Depth2Q())
		}
	}
	return t
}

func gridDims(n int) (int, int) {
	r := 1
	for r*r < n {
		r++
	}
	return r, r
}
