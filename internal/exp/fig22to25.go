package exp

import (
	"fmt"

	"atomique/internal/bench"
	"atomique/internal/compiler"
	"atomique/internal/hardware"
	"atomique/internal/report"
)

// fig22Benchmarks are the relaxation-study workloads (large, parallel-heavy).
func fig22Benchmarks() []bench.Benchmark {
	return []bench.Benchmark{
		{Name: "QAOA-rand-100", Circ: bench.QAOARandom(100, 0.1, 51)},
		{Name: "QSim-rand-100", Circ: bench.QSimRandom(100, 10, 0.5, 52)},
		{Name: "Phase-Code-200", Circ: bench.PhaseCode(200, 2)},
	}
}

// Fig22 toggles each hardware constraint and reports movement distance,
// depth, and execution time.
func Fig22() []*report.Table {
	t := &report.Table{
		Title:  "Fig 22: relaxing the hardware constraints",
		Header: []string{"Constraints", "Benchmark", "MoveDist(m)", "Depth", "ExecTime(s)", "2Q gates"},
		Notes: []string{"paper: 2Q count is unchanged; depth and time drop with each relaxation " +
			"(constraint 3 helps most); movement distance rises"},
	}
	configs := []struct {
		name string
		opts compiler.Options
	}{
		{"All constraints", compiler.Options{}},
		{"Relax 1: individual addressing", compiler.Options{RelaxAddressing: true}},
		{"Relax 2: allow order violation", compiler.Options{RelaxOrder: true}},
		{"Relax 3: allow row/col overlap", compiler.Options{RelaxOverlap: true}},
	}
	for _, cc := range configs {
		for _, b := range fig22Benchmarks() {
			cfg := configFor(b.Circ.N)
			opts := cc.opts
			opts.Seed = 3
			m := mustAtomique(cfg, b.Circ, opts)
			t.AddRow(cc.name, b.Name,
				fmt.Sprintf("%.4f", m.TotalMoveDist),
				m.Depth2Q,
				fmt.Sprintf("%.4f", m.ExecutionTime),
				m.N2Q)
		}
	}
	return []*report.Table{t}
}

// Fig23 compares uniform and mixed SLM/AOD dimensions.
func Fig23() []*report.Table {
	t := &report.Table{
		Title:  "Fig 23: variable sizes across AOD layers",
		Header: []string{"Arrays", "Benchmark", "MoveDist(m)", "2Q gates", "Depth", "ExecTime(s)"},
		Notes: []string{"paper: mixed sizes cut 2Q gates, depth, and time at the cost of " +
			"longer moves"},
	}
	benchmarks := []bench.Benchmark{
		{Name: "QAOA-rand-100", Circ: bench.QAOARandom(100, 0.1, 51)},
		{Name: "QSim-rand-100", Circ: bench.QSimRandom(100, 10, 0.5, 52)},
		{Name: "Phase-Code-100", Circ: bench.PhaseCode(100, 2)},
	}
	configs := []struct {
		name string
		cfg  hardware.Config
	}{
		{"SLM 8x8, AODs 8x8+8x8", hardware.Config{
			SLM:    hardware.ArraySpec{Rows: 8, Cols: 8},
			AODs:   []hardware.ArraySpec{{Rows: 8, Cols: 8}, {Rows: 8, Cols: 8}},
			Params: hardware.NeutralAtom()}},
		{"SLM 10x10, AODs 8x8+6x6", hardware.Config{
			SLM:    hardware.ArraySpec{Rows: 10, Cols: 10},
			AODs:   []hardware.ArraySpec{{Rows: 8, Cols: 8}, {Rows: 6, Cols: 6}},
			Params: hardware.NeutralAtom()}},
	}
	for _, cc := range configs {
		for _, b := range benchmarks {
			m := mustAtomique(cc.cfg, b.Circ, coreOptions(3))
			t.AddRow(cc.name, b.Name,
				fmt.Sprintf("%.4f", m.TotalMoveDist),
				m.N2Q, m.Depth2Q,
				fmt.Sprintf("%.4f", m.ExecutionTime))
		}
	}
	return []*report.Table{t}
}

// Fig24 compiles 100-qubit circuits on machines whose per-array size shrinks
// toward the logical qubit count, recording constraint-3 overlap rejections.
func Fig24() []*report.Table {
	t := &report.Table{
		Title: "Fig 24: occupancy pressure (100 logical qubits)",
		Header: []string{"Array size", "Benchmark", "MoveDist(m)", "2Q gates",
			"Depth", "ExecTime(s)", "Overlaps"},
		Notes: []string{"paper: larger AODs reduce overlaps and improve scheduling; " +
			"overlap counts are highly application-dependent"},
	}
	benchmarks := []bench.Benchmark{
		{Name: "QAOA-rand-100", Circ: bench.QAOARandom(100, 0.1, 51)},
		{Name: "QSim-rand-100", Circ: bench.QSimRandom(100, 10, 0.5, 52)},
		{Name: "Phase-Code-100", Circ: bench.PhaseCode(100, 2)},
	}
	for _, size := range []int{6, 8, 10} {
		cfg := hardware.SquareConfig(size, 2)
		for _, b := range benchmarks {
			m := mustAtomique(cfg, b.Circ, coreOptions(3))
			t.AddRow(fmt.Sprintf("%dx%d", size, size), b.Name,
				fmt.Sprintf("%.4f", m.TotalMoveDist),
				m.N2Q, m.Depth2Q,
				fmt.Sprintf("%.4f", m.ExecutionTime),
				m.Overlaps)
		}
	}
	return []*report.Table{t}
}

// Fig25 reports the CNOTs added by SWAP insertion on every architecture.
func Fig25() []*report.Table {
	t := &report.Table{
		Title:  "Fig 25: additional CNOT gates from SWAP insertion",
		Header: append([]string{"Benchmark"}, archNames...),
		Notes: []string{"paper means: 1387/693/770/544/27 — Atomique's movement routing " +
			"nearly eliminates SWAP overhead"},
	}
	sums := map[string]float64{}
	count := 0
	for i, b := range bench.Fig13Suite() {
		all := compileAll(b.Circ, int64(i+1))
		row := []interface{}{b.Name}
		for _, an := range archNames {
			row = append(row, all[an].AddedCNOTs)
			sums[an] += float64(all[an].AddedCNOTs)
		}
		t.AddRow(row...)
		count++
	}
	row := []interface{}{"Mean"}
	for _, an := range archNames {
		row = append(row, fmt.Sprintf("%.0f", sums[an]/float64(count)))
	}
	t.AddRow(row...)
	return []*report.Table{t}
}
