package exp

import (
	"context"
	"fmt"
	"reflect"

	"atomique/internal/bench"
	"atomique/internal/circuit"
	"atomique/internal/compiler"
	"atomique/internal/noise"
	"atomique/internal/report"
)

// Sampling exercises the measurement-sampling product (/v1/sample) across
// both trajectory engines: small non-Clifford chemistry circuits sample
// through the dense state-vector, wide GHZ and surface-code circuits through
// the stabilizer affine-subspace sampler at widths the dense engine cannot
// represent. Every row also runs sharded — the shot range split in two,
// merged via noise.MergeSamples — and asserts the merge identity (shards ==
// one full-range run, bit for bit) on real compiled witnesses, not just the
// unit-test circuits.
func Sampling() []*report.Table {
	t := &report.Table{
		Title: "Measurement sampling across trajectory engines (sharded + merged)",
		Header: []string{"Circuit", "Qubits", "Engine", "Shots", "Distinct",
			"Top outcome", "P(top)", "Error shots", "Lost"},
		Notes: []string{
			"each circuit also runs as two disjoint shot ranges merged via noise.MergeSamples,",
			"verified bit-identical to the single full-range run (per-shot RNG keys on the global index)",
		},
	}
	for _, cs := range []struct {
		name  string
		circ  *circuit.Circuit
		shots int
	}{
		{"H2-4", mustBench("H2-4"), 4000},
		{"QSim-rand-5", mustBench("QSim-rand-5"), 4000},
		{"Surface-d3", bench.SurfaceCodeCycle(3, 1), 4000},
		{"GHZ-48", bench.GHZ(48), 20000},
		{"GHZ-96", bench.GHZ(96), 20000},
	} {
		tgt := compiler.Target{}
		opts := compiler.Options{Seed: 7, NoisyShots: cs.shots, NoiseSeed: 13, SampleBits: true}
		res := mustCompile("atomique", tgt, cs.circ, opts)
		if err := compiler.AttachNoise(context.Background(), tgt, res, opts); err != nil {
			panic(fmt.Sprintf("exp: sampling attach failed: %v", err))
		}
		full := res.Sample

		// The shard runs reuse the compiled witness; only the shot range
		// differs, exactly as a resumed or fanned-out /v1/sample job would.
		half := cs.shots / 2
		lo := sampleShard(tgt, res, opts, 0, half)
		hi := sampleShard(tgt, res, opts, int64(half), cs.shots-half)
		merged, err := noise.MergeSamples(lo, hi)
		if err != nil {
			panic(fmt.Sprintf("exp: %s: sampling merge failed: %v", cs.name, err))
		}
		if !reflect.DeepEqual(merged, full) {
			panic(fmt.Sprintf("exp: %s: merged shards differ from the full run", cs.name))
		}

		top, topCount := "", int64(-1)
		for b, c := range full.Counts {
			if c > topCount || c == topCount && b < top {
				top, topCount = b, c
			}
		}
		if len(top) > 16 {
			top = top[:13] + "..."
		}
		t.AddRow(cs.name, cs.circ.N, full.Engine, full.Shots, full.Distinct,
			top, fmt.Sprintf("%.4f", float64(topCount)/float64(full.Shots)),
			full.ErrorShots, full.LostShots)
	}
	return []*report.Table{t}
}

// sampleShard re-runs sampling on an already-compiled result over one shot
// range. The Result copy is shallow — witness and metrics are shared; only
// the Sample field diverges.
func sampleShard(tgt compiler.Target, res *compiler.Result, opts compiler.Options, offset int64, shots int) *noise.SampleResult {
	o := opts
	o.ShotOffset = offset
	o.NoisyShots = shots
	r := *res
	if err := compiler.AttachSample(context.Background(), tgt, &r, o, nil); err != nil {
		panic(fmt.Sprintf("exp: sampling shard [%d, %d) failed: %v", offset, offset+int64(shots), err))
	}
	return r.Sample
}

// mustBench resolves a named benchmark circuit.
func mustBench(name string) *circuit.Circuit {
	b, ok := bench.ByName(name)
	if !ok {
		panic(fmt.Sprintf("exp: unknown benchmark %q", name))
	}
	return b.Circ
}
