package exp

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func init() {
	// Keep solver budgets small under test; the Fig 14 claims are about
	// ratios, which survive scaling.
	Table2Budget = 200 * time.Millisecond
	Fig14Budget = 300 * time.Millisecond
}

func TestAllRegistryWellFormed(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e)
		}
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		ids[e.ID] = true
	}
	if _, ok := ByID("fig13"); !ok {
		t.Errorf("ByID(fig13) not found")
	}
	if _, ok := ByID("nope"); ok {
		t.Errorf("ByID(nope) found")
	}
}

// TestNoiseValidationTable checks the cross-backend noise table's shape:
// one row per registered backend in each workload table. The statistical
// empirical-vs-analytic assertions live in internal/regress (the corpus
// validation suite); this guards the experiment driver itself.
func TestNoiseValidationTable(t *testing.T) {
	ts := NoiseValidation()
	if len(ts) != 2 {
		t.Fatalf("NoiseValidation returned %d tables, want 2", len(ts))
	}
	for _, tb := range ts {
		if len(tb.Rows) < 6 {
			t.Errorf("%s: %d rows, want one per registered backend (>= 6)", tb.Title, len(tb.Rows))
		}
	}
}

func TestTable1(t *testing.T) {
	ts := Table1()
	if len(ts) != 1 || len(ts[0].Rows) < 10 {
		t.Fatalf("Table1 malformed")
	}
	out := ts[0].String()
	for _, want := range []string{"0.9975", "380ns", "15s"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestFig12ProfileEndsAtPitch(t *testing.T) {
	ts := Fig12()
	rows := ts[0].Rows
	last := rows[len(rows)-1]
	if last[len(last)-1] != "15" {
		t.Errorf("movement profile final distance = %q, want 15", last[len(last)-1])
	}
}

// TestFig13Shape verifies the headline result on a spot-check basis: on the
// GMean row, Atomique must beat every baseline on depth, 2Q count, and
// fidelity.
func TestFig13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig13 is a full-suite run")
	}
	tables := Fig13()
	for _, tbl := range tables {
		gmean := tbl.Rows[len(tbl.Rows)-1]
		if gmean[0] != "GMean" {
			t.Fatalf("%s: last row is %q, want GMean", tbl.Title, gmean[0])
		}
		atom := parseF(t, gmean[len(gmean)-1])
		for i := 1; i < len(gmean)-1; i++ {
			base := parseF(t, gmean[i])
			switch {
			case strings.Contains(tbl.Title, "fidelity"):
				if atom < base {
					t.Errorf("%s: Atomique GMean %v below %s %v",
						tbl.Title, atom, tbl.Header[i], base)
				}
			default:
				if atom > base {
					t.Errorf("%s: Atomique GMean %v above %s %v",
						tbl.Title, atom, tbl.Header[i], base)
				}
			}
		}
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := sscan(s, &v); err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func sscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}

func TestFig21CumulativeImprovement(t *testing.T) {
	if testing.Short() {
		t.Skip("fig21 compiles multiple ablations")
	}
	tbl := Fig21()[0]
	if len(tbl.Rows) != 4 {
		t.Fatalf("fig21 rows = %d, want 4", len(tbl.Rows))
	}
	base := parseF(t, tbl.Rows[0][1])
	full := parseF(t, tbl.Rows[3][1])
	if full <= base {
		t.Errorf("full Atomique fidelity %v not above ablated baseline %v", full, base)
	}
}

func TestFig22GateCountInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("fig22 compiles 100-200 qubit circuits")
	}
	tbl := Fig22()[0]
	// Per benchmark, the 2Q column must be identical across the four
	// constraint configurations.
	byBench := map[string]map[string]bool{}
	for _, row := range tbl.Rows {
		name, gates := row[1], row[len(row)-1]
		if byBench[name] == nil {
			byBench[name] = map[string]bool{}
		}
		byBench[name][gates] = true
	}
	for name, set := range byBench {
		if len(set) != 1 {
			t.Errorf("%s: 2Q count varies across relaxations: %v", name, set)
		}
	}
}

// TestFig19Shape asserts the Q-Pilot trade-off on the GMean row: Atomique
// wins fidelity while Q-Pilot wins depth per benchmark row.
func TestFig19Shape(t *testing.T) {
	tbl := Fig19()[0]
	for _, row := range tbl.Rows {
		if row[0] == "GMean" {
			atom := parseF(t, row[5])
			qp := parseF(t, row[6])
			if atom <= qp {
				t.Errorf("GMean: Atomique %v <= Q-Pilot %v", atom, qp)
			}
			continue
		}
		depthAtom := parseF(t, row[1])
		depthQP := parseF(t, row[2])
		if depthQP >= depthAtom {
			t.Errorf("%s: Q-Pilot depth %v >= Atomique %v", row[0], depthQP, depthAtom)
		}
	}
}

// TestFig24Shape asserts overlap rejections never increase as arrays grow.
func TestFig24Shape(t *testing.T) {
	tbl := Fig24()[0]
	last := map[string]float64{}
	for _, row := range tbl.Rows {
		bench := row[1]
		overlaps := parseF(t, row[len(row)-1])
		if prev, ok := last[bench]; ok && overlaps > prev {
			t.Errorf("%s: overlaps grew with array size: %v -> %v", bench, prev, overlaps)
		}
		last[bench] = overlaps
	}
}

func TestZonedVsFlatShape(t *testing.T) {
	ts := ZonedVsFlat()
	if len(ts) != 1 {
		t.Fatalf("ZonedVsFlat returned %d tables", len(ts))
	}
	if got, want := len(ts[0].Rows), len(zonedSuite())+1; got != want {
		t.Fatalf("rows = %d, want %d benchmarks + gmean", got, want)
	}
	// The zoned scenario's signature: no SWAP CNOTs on the zoned column
	// while every compilation produces a positive fidelity.
	for i, b := range zonedSuite() {
		row := ts[0].Rows[i]
		if row[4] != "0" {
			t.Errorf("%s: zoned +CNOT = %v, want 0", b.Name, row[4])
		}
	}
}
