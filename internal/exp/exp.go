// Package exp contains one driver per table and figure of the paper's
// evaluation (Sec. V). Each driver regenerates the corresponding artifact as
// plain-text tables from fixed seeds; EXPERIMENTS.md records paper-vs-
// measured values. Run them via cmd/experiments or the bench harness in
// bench_test.go.
package exp

import (
	"context"
	"fmt"
	"sort"

	"atomique/internal/circuit"
	"atomique/internal/compiler"
	"atomique/internal/hardware"
	"atomique/internal/metrics"
	"atomique/internal/report"

	_ "atomique/internal/compiler/backends" // register the built-in backends
)

// Experiment is a runnable table/figure reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func() []*report.Table
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"tab1", "Table I: hardware parameters", Table1},
		{"tab2", "Table II: benchmark characteristics", Table2},
		{"tab3", "Table III: multi-qubit pulse counts vs Geyser", Table3},
		{"fig12", "Fig 12: atom movement profile", Fig12},
		{"fig13", "Fig 13: depth / 2Q gates / fidelity vs architectures", Fig13},
		{"fig14", "Fig 14: comparison with solver-based compilers", Fig14},
		{"fig15", "Fig 15: generic-circuit characteristic sweep", Fig15},
		{"fig16", "Fig 16: QAOA characteristic sweep", Fig16},
		{"fig17", "Fig 17: QSim characteristic sweep", Fig17},
		{"fig18", "Fig 18: hardware-parameter sensitivity", Fig18},
		{"fig19", "Fig 19: comparison with Q-Pilot", Fig19},
		{"fig20", "Fig 20: array-topology sensitivity", Fig20},
		{"fig21", "Fig 21: compiler-technique breakdown", Fig21},
		{"fig22", "Fig 22: constraint relaxation", Fig22},
		{"fig23", "Fig 23: variable AOD sizes", Fig23},
		{"fig24", "Fig 24: overlap under extreme occupancy", Fig24},
		{"fig25", "Fig 25: additional CNOTs from SWAP insertion", Fig25},
		{"ablation", "Ablations: gamma decay, SABRE lookahead, reverse passes", Ablations},
		{"scaling", "Scaling: compile time vs circuit size", Scaling},
		{"zoned", "Zoned vs flat FPQA comparison (ZAP-style scenario)", ZonedVsFlat},
		{"noise", "Noise-model validation: empirical trajectory vs analytic fidelity", NoiseValidation},
		{"qec", "QEC: surface-code cycles on the zoned backend via the stabilizer engine", SurfaceCode},
		{"sampling", "Sampling: measurement histograms across trajectory engines, sharded + merged", Sampling},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// CompileFunc is the signature of an Atomique compilation path: it turns
// (machine, circuit, options) into a metrics record.
type CompileFunc func(cfg hardware.Config, c *circuit.Circuit, opts compiler.Options) (metrics.Compiled, error)

// defaultCompiler compiles through the registered "atomique" backend.
func defaultCompiler(cfg hardware.Config, c *circuit.Circuit, opts compiler.Options) (metrics.Compiled, error) {
	res, err := mustBackend("atomique").Compile(context.Background(), compiler.FPQA(cfg), c, opts)
	if err != nil {
		return metrics.Compiled{}, err
	}
	return res.Metrics, nil
}

// atomiqueCompile is the path every driver funnels Atomique compilations
// through. The default goes through the registry; SetCompiler swaps it.
var atomiqueCompile CompileFunc = defaultCompiler

// SetCompiler reroutes every Atomique compilation the drivers perform, e.g.
// through the compile service's batch path (internal/service), whose
// content-addressed cache dedupes the identical (circuit, config, options)
// triples that recur across figure sweeps. Passing nil restores the direct
// path. Not safe to call while drivers are running.
func SetCompiler(fn CompileFunc) {
	if fn == nil {
		fn = defaultCompiler
	}
	atomiqueCompile = fn
}

// mustBackend resolves a registry backend; experiment inputs are fixed, so a
// missing backend is a programming error worth a panic.
func mustBackend(name string) compiler.Backend {
	b, ok := compiler.Lookup(name)
	if !ok {
		panic(fmt.Sprintf("exp: backend %q not registered", name))
	}
	return b
}

// mustCompile runs one registry backend, panicking on configuration errors
// (experiment inputs are fixed and known-valid).
func mustCompile(name string, tgt compiler.Target, c *circuit.Circuit, opts compiler.Options) *compiler.Result {
	res, err := mustBackend(name).Compile(context.Background(), tgt, c, opts)
	if err != nil {
		panic(fmt.Sprintf("exp: %s compile failed: %v", name, err))
	}
	return res
}

// mustAtomique compiles with Atomique on the given machine through the
// swappable atomiqueCompile path.
func mustAtomique(cfg hardware.Config, c *circuit.Circuit, opts compiler.Options) metrics.Compiled {
	m, err := atomiqueCompile(cfg, c, opts)
	if err != nil {
		panic(fmt.Sprintf("exp: atomique compile failed: %v", err))
	}
	return m
}

// mustSabre compiles on a fixed baseline topology via the "sabre" backend.
func mustSabre(tgt compiler.Target, c *circuit.Circuit, seed int64) metrics.Compiled {
	return mustCompile("sabre", tgt, c, compiler.Options{Seed: seed}).Metrics
}

// archNames lists the Fig 13 baseline order (columns of the comparison
// tables).
var archNames = []string{
	"Superconducting", "Baker-Long-Range", "FAA-Rectangular", "FAA-Triangular", "Atomique",
}

// baselineFamilies maps each fixed-topology column to the sabre backend's
// coupling family.
var baselineFamilies = map[string]string{
	"Superconducting":  compiler.FamilySuperconducting,
	"Baker-Long-Range": compiler.FamilyLongRange,
	"FAA-Rectangular":  compiler.FamilyRectangular,
	"FAA-Triangular":   compiler.FamilyTriangular,
}

// compileAll runs the comparison set on a benchmark — every fixed-topology
// family through the "sabre" registry backend plus Atomique — and returns
// metrics keyed by architecture name.
func compileAll(c *circuit.Circuit, seed int64) map[string]metrics.Compiled {
	out := make(map[string]metrics.Compiled, len(archNames))
	for _, an := range archNames {
		family, ok := baselineFamilies[an]
		if !ok {
			continue // Atomique handled below
		}
		out[an] = mustSabre(compiler.Coupling(family, 0), c, seed)
	}
	out["Atomique"] = mustAtomique(configFor(c.N), c, compiler.Options{Seed: seed})
	return out
}

// configFor returns the paper's default machine, grown just enough when a
// benchmark exceeds the default 300-site capacity.
func configFor(n int) hardware.Config {
	return compiler.DefaultFPQAConfig(n)
}

// geoMeanColumn extracts a metric across rows and appends its geometric mean.
func geoMeanColumn(vals []float64) float64 { return metrics.GeoMean(vals) }

// sortedKeys returns map keys in sorted order for deterministic output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
