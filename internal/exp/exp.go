// Package exp contains one driver per table and figure of the paper's
// evaluation (Sec. V). Each driver regenerates the corresponding artifact as
// plain-text tables from fixed seeds; EXPERIMENTS.md records paper-vs-
// measured values. Run them via cmd/experiments or the bench harness in
// bench_test.go.
package exp

import (
	"fmt"
	"sort"

	"atomique/internal/arch"
	"atomique/internal/circuit"
	"atomique/internal/core"
	"atomique/internal/hardware"
	"atomique/internal/metrics"
	"atomique/internal/report"
)

// Experiment is a runnable table/figure reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func() []*report.Table
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"tab1", "Table I: hardware parameters", Table1},
		{"tab2", "Table II: benchmark characteristics", Table2},
		{"tab3", "Table III: multi-qubit pulse counts vs Geyser", Table3},
		{"fig12", "Fig 12: atom movement profile", Fig12},
		{"fig13", "Fig 13: depth / 2Q gates / fidelity vs architectures", Fig13},
		{"fig14", "Fig 14: comparison with solver-based compilers", Fig14},
		{"fig15", "Fig 15: generic-circuit characteristic sweep", Fig15},
		{"fig16", "Fig 16: QAOA characteristic sweep", Fig16},
		{"fig17", "Fig 17: QSim characteristic sweep", Fig17},
		{"fig18", "Fig 18: hardware-parameter sensitivity", Fig18},
		{"fig19", "Fig 19: comparison with Q-Pilot", Fig19},
		{"fig20", "Fig 20: array-topology sensitivity", Fig20},
		{"fig21", "Fig 21: compiler-technique breakdown", Fig21},
		{"fig22", "Fig 22: constraint relaxation", Fig22},
		{"fig23", "Fig 23: variable AOD sizes", Fig23},
		{"fig24", "Fig 24: overlap under extreme occupancy", Fig24},
		{"fig25", "Fig 25: additional CNOTs from SWAP insertion", Fig25},
		{"ablation", "Ablations: gamma decay, SABRE lookahead, reverse passes", Ablations},
		{"scaling", "Scaling: compile time vs circuit size", Scaling},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// CompileFunc is the signature of an Atomique compilation backend: it turns
// (machine, circuit, options) into a metrics record.
type CompileFunc func(cfg hardware.Config, c *circuit.Circuit, opts core.Options) (metrics.Compiled, error)

// defaultCompiler compiles directly through core.Compile.
func defaultCompiler(cfg hardware.Config, c *circuit.Circuit, opts core.Options) (metrics.Compiled, error) {
	res, err := core.Compile(cfg, c, opts)
	if err != nil {
		return metrics.Compiled{}, err
	}
	return res.Metrics, nil
}

// atomiqueCompile is the backend every driver funnels Atomique compilations
// through. The default compiles directly; SetCompiler swaps it.
var atomiqueCompile CompileFunc = defaultCompiler

// SetCompiler reroutes every Atomique compilation the drivers perform, e.g.
// through the compile service's batch path (internal/service), whose
// content-addressed cache dedupes the identical (circuit, config, options)
// triples that recur across figure sweeps. Passing nil restores the direct
// path. Not safe to call while drivers are running.
func SetCompiler(fn CompileFunc) {
	if fn == nil {
		fn = defaultCompiler
	}
	atomiqueCompile = fn
}

// mustAtomique compiles with Atomique on the default machine, panicking on
// configuration errors (experiment inputs are fixed and known-valid).
func mustAtomique(cfg hardware.Config, c *circuit.Circuit, opts core.Options) metrics.Compiled {
	m, err := atomiqueCompile(cfg, c, opts)
	if err != nil {
		panic(fmt.Sprintf("exp: atomique compile failed: %v", err))
	}
	return m
}

// mustArch compiles on a fixed baseline architecture.
func mustArch(a arch.Arch, c *circuit.Circuit, seed int64) metrics.Compiled {
	m, err := arch.Compile(a, c, seed)
	if err != nil {
		panic(fmt.Sprintf("exp: %s compile failed: %v", a.Name, err))
	}
	return m
}

// archNames lists the Fig 13 baseline order.
var archNames = []string{
	"Superconducting", "Baker-Long-Range", "FAA-Rectangular", "FAA-Triangular", "Atomique",
}

// compileAll runs the four baselines plus Atomique on a benchmark and
// returns metrics keyed by architecture name.
func compileAll(c *circuit.Circuit, seed int64) map[string]metrics.Compiled {
	out := make(map[string]metrics.Compiled, 5)
	for _, a := range arch.Baselines(c.N) {
		out[a.Name] = mustArch(a, c, seed)
	}
	cfg := configFor(c.N)
	out["Atomique"] = mustAtomique(cfg, c, core.Options{Seed: seed})
	return out
}

// configFor returns the paper's default machine, grown just enough when a
// benchmark exceeds the default 300-site capacity.
func configFor(n int) hardware.Config {
	cfg := hardware.DefaultConfig()
	if n > cfg.Capacity() {
		side := cfg.SLM.Rows
		for 3*side*side < n {
			side++
		}
		cfg = hardware.SquareConfig(side, 2)
	}
	return cfg
}

// geoMeanColumn extracts a metric across rows and appends its geometric mean.
func geoMeanColumn(vals []float64) float64 { return metrics.GeoMean(vals) }

// sortedKeys returns map keys in sorted order for deterministic output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
