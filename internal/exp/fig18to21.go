package exp

import (
	"fmt"

	"atomique/internal/bench"
	"atomique/internal/circuit"
	"atomique/internal/compiler"
	"atomique/internal/fidelity"
	"atomique/internal/hardware"
	"atomique/internal/metrics"
	"atomique/internal/report"
)

// fig18Benchmarks are the three sensitivity workloads.
func fig18Benchmarks() []bench.Benchmark {
	return []bench.Benchmark{
		{Name: "BV-70", Circ: bench.BV(70, 36, 5)},
		{Name: "QSim-rand-20", Circ: bench.QSimRandom(20, 10, 0.5, 6)},
		{Name: "QAOA-regu5-40", Circ: bench.QAOARegular(40, 5, 15)},
	}
}

// fig18Row runs the three benchmarks on Atomique plus the two FAA baselines
// under the given parameter transform and appends one row per benchmark.
func fig18Row(t *report.Table, label string, mutate func(*hardware.Params)) fidelity.Breakdown {
	var bv70 fidelity.Breakdown
	for _, b := range fig18Benchmarks() {
		cfg := hardware.DefaultConfig()
		mutate(&cfg.Params)
		at := mustAtomique(cfg, b.Circ, coreOptions(1))
		// Coupling targets carry the mutated parameters to the baselines.
		faaParams := hardware.NeutralAtom()
		mutate(&faaParams)
		rect := mustSabre(compiler.CouplingWithParams(compiler.FamilyRectangular, 0, faaParams), b.Circ, 1)
		tri := mustSabre(compiler.CouplingWithParams(compiler.FamilyTriangular, 0, faaParams), b.Circ, 1)
		t.AddRow(label, b.Name,
			fmt.Sprintf("%.3f", rect.FidelityTotal()),
			fmt.Sprintf("%.3f", tri.FidelityTotal()),
			fmt.Sprintf("%.3f", at.FidelityTotal()))
		if b.Name == "BV-70" {
			bv70 = at.Fidelity
		}
	}
	return bv70
}

func breakdownRow(t *report.Table, label string, bd fidelity.Breakdown) {
	row := []interface{}{label}
	for _, v := range bd.NegLog() {
		row = append(row, fmt.Sprintf("%.3g", v))
	}
	t.AddRow(row...)
}

// Fig18 sweeps six hardware parameters and reports circuit fidelities plus
// the -log10 error breakdown on BV-70.
func Fig18() []*report.Table {
	header := []string{"Setting", "Benchmark", "FAA-Rect", "FAA-Tri", "Atomique"}
	bheader := append([]string{"Setting"}, fidelity.Labels()...)
	var tables []*report.Table

	// (a) Time per move.
	ta := &report.Table{Title: "Fig 18a: fidelity vs time per move", Header: header,
		Notes: []string{"paper: optimum near 300us — heating dominates below, decoherence above"}}
	tb := &report.Table{Title: "Fig 18a': BV-70 -log10(fidelity) breakdown", Header: bheader}
	for _, us := range []float64{100, 200, 300, 450, 600, 800, 1000} {
		label := fmt.Sprintf("%.0fus", us)
		bd := fig18Row(ta, label, func(p *hardware.Params) { p.TimePerMove = us * 1e-6 })
		breakdownRow(tb, label, bd)
	}
	tables = append(tables, ta, tb)

	// (b) Average move speed (same sweep presented as pitch/Tmov).
	ts := &report.Table{Title: "Fig 18b: fidelity vs average move speed (m/s)", Header: header}
	for _, us := range []float64{1000, 600, 300, 150, 100, 50} {
		label := fmt.Sprintf("%.3f", 15e-6/(us*1e-6))
		fig18Row(ts, label, func(p *hardware.Params) { p.TimePerMove = us * 1e-6 })
	}
	tables = append(tables, ts)

	// (c) Atom distance (Rydberg radius scales with pitch to keep geometry).
	tc := &report.Table{Title: "Fig 18c: fidelity vs atom distance", Header: header,
		Notes: []string{"paper: Atomique leads below ~40um; heating/cooling dominate at 60um"}}
	for _, um := range []float64{5, 10, 15, 25, 40, 60} {
		fig18Row(tc, fmt.Sprintf("%.0fum", um), func(p *hardware.Params) {
			p.AtomDistance = um * 1e-6
			p.RydbergRadius = um * 1e-6 / 6
		})
	}
	tables = append(tables, tc)

	// (d) n_vib cooling threshold at 60um pitch.
	td := &report.Table{Title: "Fig 18d: fidelity vs n_vib cooling threshold (60um pitch)",
		Header: header,
		Notes:  []string{"paper: optimal threshold 12-25; low thresholds over-cool, high thresholds lose atoms"}}
	for _, th := range []float64{5, 10, 15, 20, 25, 30} {
		fig18Row(td, fmt.Sprintf("%.0f", th), func(p *hardware.Params) {
			p.AtomDistance = 60e-6
			p.RydbergRadius = 10e-6
			p.NvibCool = th
		})
	}
	tables = append(tables, td)

	// (e) Coherence time.
	te := &report.Table{Title: "Fig 18e: fidelity vs coherence time", Header: header,
		Notes: []string{"paper: RAA needs T1 >= 1s to beat FAA (movement dominates its runtime)"}}
	for _, t1 := range []float64{0.1, 0.5, 1, 5, 15, 100} {
		fig18Row(te, fmt.Sprintf("%gs", t1), func(p *hardware.Params) { p.CoherenceT1 = t1 })
	}
	tables = append(tables, te)

	// (f) Two-qubit gate fidelity.
	tf := &report.Table{Title: "Fig 18f: fidelity vs 2Q gate fidelity", Header: header,
		Notes: []string{"paper: FAA overtakes RAA above f2Q ~ 0.9999 (SWAPs become cheap)"}}
	for _, f2q := range []float64{0.99, 0.995, 0.9975, 0.999, 0.9999} {
		fig18Row(tf, fmt.Sprintf("%g", f2q), func(p *hardware.Params) { p.Fidelity2Q = f2q })
	}
	tables = append(tables, tf)
	return tables
}

// Fig19 compares Atomique with Q-Pilot on QAOA and QSim workloads.
func Fig19() []*report.Table {
	suite := []bench.Benchmark{
		{Name: "QAOA-rand-10", Circ: bench.QAOARandom(10, 0.5, 11)},
		{Name: "QAOA-rand-20", Circ: bench.QAOARandom(20, 0.5, 12)},
		{Name: "QAOA-regu5-40", Circ: bench.QAOARegular(40, 5, 15)},
		{Name: "QAOA-regu6-100", Circ: bench.QAOARegular(100, 6, 16)},
		{Name: "QSim-rand-10", Circ: bench.QSimRandom(10, 10, 0.5, 26)},
		{Name: "QSim-rand-20", Circ: bench.QSimRandom(20, 10, 0.5, 6)},
		{Name: "QSim-rand-40", Circ: bench.QSimRandom(40, 10, 0.5, 7)},
		{Name: "QSim-rand-100", Circ: bench.QSimRandom(100, 10, 0.5, 30)},
	}
	t := &report.Table{
		Title: "Fig 19: Atomique vs Q-Pilot",
		Header: []string{"Benchmark", "Depth(Atom)", "Depth(QP)",
			"2Q(Atom)", "2Q(QP)", "Fid(Atom)", "Fid(QP)"},
		Notes: []string{"paper: Q-Pilot wins on depth, Atomique on 2Q count and overall fidelity " +
			"(GMean 0.25 vs 0.17)"},
	}
	var fa, fq []float64
	for i, b := range suite {
		at := mustAtomique(configFor(b.Circ.N), b.Circ, coreOptions(int64(i)))
		qp := mustCompile("qpilot", compiler.Target{}, b.Circ, coreOptions(int64(i))).Metrics
		t.AddRow(b.Name, at.Depth2Q, qp.Depth2Q, at.N2Q, qp.N2Q,
			fmt.Sprintf("%.3f", at.FidelityTotal()),
			fmt.Sprintf("%.3f", qp.FidelityTotal()))
		fa = append(fa, at.FidelityTotal())
		fq = append(fq, qp.FidelityTotal())
	}
	t.AddRow("GMean", "-", "-", "-", "-",
		fmt.Sprintf("%.3f", geoMeanColumn(fa)), fmt.Sprintf("%.3f", geoMeanColumn(fq)))
	return []*report.Table{t}
}

// fig20Benchmarks are the topology-study workloads.
func fig20Benchmarks() []bench.Benchmark {
	return []bench.Benchmark{
		{Name: "Arb-100Q", Circ: bench.Arbitrary(100, 10, 5, 41)},
		{Name: "QSim-40Q", Circ: bench.QSimRandom(40, 10, 0.5, 42)},
		{Name: "QAOA-40Q", Circ: bench.QAOARegular(40, 5, 43)},
	}
}

func fig20Row(t *report.Table, label string, cfg hardware.Config) {
	for _, b := range fig20Benchmarks() {
		if b.Circ.N > cfg.Capacity() {
			t.AddRow(label, b.Name, "-", "-", "-", "-")
			continue
		}
		m := mustAtomique(cfg, b.Circ, coreOptions(1))
		t.AddRow(label, b.Name,
			fmt.Sprintf("%.4f", m.ExecutionTime),
			fmt.Sprintf("%.3f", m.FidelityTotal()),
			fmt.Sprintf("%.4f", m.TotalMoveDist*1e3), // mm
			m.N2Q)
	}
}

// Fig20 studies array topology: shape at fixed atom count, square size, and
// the number of AOD arrays.
func Fig20() []*report.Table {
	header := []string{"Topology", "Benchmark", "ExecTime(s)", "Fidelity", "MoveDist(mm)", "2Q gates"}

	ta := &report.Table{Title: "Fig 20a: same atoms, different row:col shape", Header: header,
		Notes: []string{"paper: square arrays maximise fidelity (shortest moves) " +
			"at slightly higher execution time"}}
	for _, shape := range [][2]int{{49, 1}, {24, 2}, {16, 3}, {12, 4}, {9, 5}, {8, 6},
		{7, 7}, {6, 8}, {5, 9}, {4, 12}, {3, 16}, {2, 24}, {1, 49}} {
		spec := hardware.ArraySpec{Rows: shape[0], Cols: shape[1]}
		cfg := hardware.Config{SLM: spec,
			AODs:   []hardware.ArraySpec{spec, spec},
			Params: hardware.NeutralAtom()}
		fig20Row(ta, fmt.Sprintf("%dx%d", shape[0], shape[1]), cfg)
	}

	tb := &report.Table{Title: "Fig 20b: square arrays of growing size", Header: header,
		Notes: []string{"paper: best fidelity at 7x7; larger arrays lengthen moves"}}
	for _, s := range []int{7, 8, 9, 10, 12, 14, 16, 20} {
		fig20Row(tb, fmt.Sprintf("%dx%d", s, s), hardware.SquareConfig(s, 2))
	}

	tc := &report.Table{Title: "Fig 20c: number of AOD arrays", Header: header,
		Notes: []string{"paper: more AODs enrich the coupling map, cutting gates, time, " +
			"and movement"}}
	for n := 1; n <= 7; n++ {
		fig20Row(tc, fmt.Sprintf("%d AODs", n), hardware.SquareConfig(10, n))
	}
	return []*report.Table{ta, tb, tc}
}

// Fig21 isolates the contribution of each compiler technique by enabling
// them cumulatively over the ablated baseline.
func Fig21() []*report.Table {
	t := &report.Table{
		Title:  "Fig 21: breakdown of technique-induced improvements",
		Header: []string{"Configuration", "GMean fidelity", "Improvement over baseline"},
		Notes: []string{"paper: qubit-array mapper 3.53x, qubit-atom mapper 1.19x, " +
			"high-parallelism router 2.59x; combined 10.9x"},
	}
	configs := []struct {
		name string
		opts compiler.Options
	}{
		{"Baseline (dense + random + serial)",
			compiler.Options{DenseMapper: true, RandomAtomMapper: true, SerialRouter: true}},
		{"+ qubit-array mapper (MAX k-cut)",
			compiler.Options{RandomAtomMapper: true, SerialRouter: true}},
		{"+ qubit-atom mapper (load-balance/aligned)",
			compiler.Options{SerialRouter: true}},
		{"+ high-parallelism router (full Atomique)",
			compiler.Options{}},
	}
	var circuits []*circuit.Circuit
	for seed := int64(1); seed <= 3; seed++ {
		circuits = append(circuits, bench.Arbitrary(50, 26, 10, seed))
	}
	cfg := hardware.DefaultConfig()
	var base float64
	for i, cc := range configs {
		var fids []float64
		for _, c := range circuits {
			opts := cc.opts
			opts.Seed = 7
			fids = append(fids, mustAtomique(cfg, c, opts).FidelityTotal())
		}
		g := metrics.GeoMean(fids)
		if i == 0 {
			base = g
		}
		t.AddRow(cc.name, fmt.Sprintf("%.4f", g), fmt.Sprintf("%.2fx", safeDiv(g, base)))
	}
	return []*report.Table{t}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
