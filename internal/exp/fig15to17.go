package exp

import (
	"fmt"

	"atomique/internal/bench"
	"atomique/internal/circuit"
	"atomique/internal/compiler"
	"atomique/internal/report"
)

// sweepRow records one (x, y) cell of a characteristic sweep: the two-qubit
// gate counts per architecture and Atomique's fidelity improvement over each
// FAA baseline.
func sweepCompile(c *circuit.Circuit, seed int64) (n2q map[string]int, improv map[string]float64) {
	rect := mustSabre(compiler.Coupling(compiler.FamilyRectangular, 0), c, seed)
	tri := mustSabre(compiler.Coupling(compiler.FamilyTriangular, 0), c, seed)
	at := mustAtomique(configFor(c.N), c, coreOptions(seed))
	n2q = map[string]int{
		"FAA-Rectangular": rect.N2Q,
		"FAA-Triangular":  tri.N2Q,
		"Atomique":        at.N2Q,
	}
	improv = map[string]float64{
		"vs FAA-Rectangular": ratio(at.FidelityTotal(), rect.FidelityTotal()),
		"vs FAA-Triangular":  ratio(at.FidelityTotal(), tri.FidelityTotal()),
	}
	return n2q, improv
}

func ratio(a, b float64) float64 {
	const floor = 1e-12 // clamp dead fidelities like the paper's log plots
	if a < floor {
		a = floor
	}
	if b < floor {
		b = floor
	}
	return a / b
}

// Fig15 sweeps 40-qubit generic circuits over two-qubit gates per qubit and
// interaction degree, reporting gate counts and Atomique's fidelity
// improvement over the FAA baselines.
func Fig15() []*report.Table {
	gt := &report.Table{Title: "Fig 15: generic circuits, 40 qubits — 2Q gate count",
		Header: []string{"2Q/Q", "Degree", "FAA-Rect", "FAA-Tri", "Atomique"}}
	ft := &report.Table{Title: "Fig 15: generic circuits — Atomique fidelity improvement",
		Header: []string{"2Q/Q", "Degree", "vs FAA-Rect", "vs FAA-Tri"},
		Notes: []string{"paper: improvement grows with degree (non-locality) and " +
			"with 2Q gates per qubit; slight FAA edge only at degree<=2"}}
	for _, gpq := range []int{2, 6, 10, 14, 18, 22, 26} {
		for _, deg := range []int{2, 3, 4, 5, 6, 7} {
			c := bench.Arbitrary(40, gpq, deg, int64(100*gpq+deg))
			n2q, improv := sweepCompile(c, int64(gpq+deg))
			gt.AddRow(gpq, deg, n2q["FAA-Rectangular"], n2q["FAA-Triangular"], n2q["Atomique"])
			ft.AddRow(gpq, deg,
				fmt.Sprintf("%.2f", improv["vs FAA-Rectangular"]),
				fmt.Sprintf("%.2f", improv["vs FAA-Triangular"]))
		}
	}
	return []*report.Table{gt, ft}
}

// Fig16 sweeps QAOA circuits on d-regular graphs over qubit count and degree.
func Fig16() []*report.Table {
	gt := &report.Table{Title: "Fig 16: QAOA circuits — 2Q gate count",
		Header: []string{"Qubits", "Degree", "FAA-Rect", "FAA-Tri", "Atomique"}}
	ft := &report.Table{Title: "Fig 16: QAOA circuits — Atomique fidelity improvement",
		Header: []string{"Qubits", "Degree", "vs FAA-Rect", "vs FAA-Tri"},
		Notes:  []string{"paper: advantage grows with qubit count and graph degree"}}
	for _, n := range []int{10, 20, 40, 60, 80, 100} {
		for _, deg := range []int{2, 3, 4, 5, 6} {
			if n*deg%2 != 0 || deg >= n {
				continue
			}
			c := bench.QAOARegular(n, deg, int64(10*n+deg))
			n2q, improv := sweepCompile(c, int64(n+deg))
			gt.AddRow(n, deg, n2q["FAA-Rectangular"], n2q["FAA-Triangular"], n2q["Atomique"])
			ft.AddRow(n, deg,
				fmt.Sprintf("%.2f", improv["vs FAA-Rectangular"]),
				fmt.Sprintf("%.2f", improv["vs FAA-Triangular"]))
		}
	}
	return []*report.Table{gt, ft}
}

// Fig17 sweeps quantum-simulation circuits over qubit count and the
// probability of non-identity Pauli terms.
func Fig17() []*report.Table {
	gt := &report.Table{Title: "Fig 17: QSim circuits — 2Q gate count",
		Header: []string{"Qubits", "p(non-I)", "FAA-Rect", "FAA-Tri", "Atomique"}}
	ft := &report.Table{Title: "Fig 17: QSim circuits — Atomique fidelity improvement",
		Header: []string{"Qubits", "p(non-I)", "vs FAA-Rect", "vs FAA-Tri"},
		Notes:  []string{"paper: the less local the Hamiltonian, the larger the advantage"}}
	for _, n := range []int{10, 20, 40, 60, 80, 100} {
		for _, p := range []float64{0.1, 0.3, 0.5, 0.7} {
			c := bench.QSimRandom(n, 10, p, int64(100*n)+int64(p*10))
			n2q, improv := sweepCompile(c, int64(n)+int64(p*100))
			gt.AddRow(n, fmt.Sprintf("%.1f", p),
				n2q["FAA-Rectangular"], n2q["FAA-Triangular"], n2q["Atomique"])
			ft.AddRow(n, fmt.Sprintf("%.1f", p),
				fmt.Sprintf("%.2f", improv["vs FAA-Rectangular"]),
				fmt.Sprintf("%.2f", improv["vs FAA-Triangular"]))
		}
	}
	return []*report.Table{gt, ft}
}
