package exp

import (
	"context"
	"fmt"
	"sort"

	"atomique/internal/bench"
	"atomique/internal/compiler"
	"atomique/internal/report"
)

// noiseShots sizes the trajectory runs of the validation table: enough for
// ~0.5% binomial resolution at the corpus fidelities while keeping the
// driver fast.
const noiseShots = 4096

// noiseWorkloads are small circuits every registered backend compiles and
// whose witnesses stay inside the trajectory engine's register budget
// (Q-Pilot adds one flying ancilla per two qubits).
func noiseWorkloads() []bench.Benchmark {
	return []bench.Benchmark{
		{Name: "GHZ-8", Circ: bench.GHZ(8)},
		{Name: "QAOA-regu3-8", Circ: bench.QAOARegular(8, 3, 15)},
	}
}

// noiseRow is one (benchmark, backend) validation outcome.
type noiseRow struct {
	backend   string
	analytic  float64
	empirical float64
	ci        float64
	survival  float64
	lost      int
	timedOut  bool
}

// NoiseValidation is the Fig 13/14-style cross-backend comparison run under
// the Monte-Carlo noise model: every registered backend compiles each
// workload, its execution witness is replayed for noiseShots trajectories,
// and the table ranks backends by empirical fidelity next to the analytic
// model's prediction. Survival converging to the analytic column is the
// empirical validation of the fidelity pipeline; the empirical-vs-analytic
// gap shows how pessimistic the every-error-is-fatal analytic model is for
// each compilation style.
func NoiseValidation() []*report.Table {
	var tables []*report.Table
	for _, wl := range noiseWorkloads() {
		t := &report.Table{
			Title:  fmt.Sprintf("Noise-model validation on %s (%d trajectories per backend)", wl.Name, noiseShots),
			Header: []string{"Backend", "Analytic F", "Empirical F", "95% CI", "Survival", "|Emp-An|", "Lost shots"},
			Notes: []string{
				"Analytic = closed-form fidelity model; Empirical = mean trajectory overlap; Survival = error-free shot fraction",
				"Survival is the unbiased estimator of Analytic; Empirical >= Survival because some Pauli errors leave the output state unchanged",
				"geyser reports no analytic fidelity model, so its Analytic column is the gate-error product alone",
			},
		}
		var rows []noiseRow
		for _, b := range compiler.List() {
			opts := compiler.Options{Seed: 7, NoisyShots: noiseShots, NoiseSeed: 11}
			res := mustCompile(b.Name(), compiler.Target{}, wl.Circ, opts)
			if err := compiler.AttachNoise(context.Background(), compiler.Target{}, res, opts); err != nil {
				panic(fmt.Sprintf("exp: %s noisy simulation failed: %v", b.Name(), err))
			}
			est := res.Noise
			if est == nil {
				// An anytime solver can exhaust its budget under load;
				// keep the backend's row rather than crashing the driver.
				rows = append(rows, noiseRow{backend: b.Name(), timedOut: true})
				continue
			}
			rows = append(rows, noiseRow{
				backend:   b.Name(),
				analytic:  est.Analytic,
				empirical: est.Fidelity,
				ci:        1.96 * est.StdErr,
				survival:  est.Survival,
				lost:      est.LostShots,
			})
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].empirical != rows[j].empirical {
				return rows[i].empirical > rows[j].empirical
			}
			return rows[i].backend < rows[j].backend
		})
		for _, r := range rows {
			if r.timedOut {
				t.AddRow(r.backend, "timed out", "—", "—", "—", "—", "—")
				continue
			}
			t.AddRow(r.backend,
				fmt.Sprintf("%.4f", r.analytic),
				fmt.Sprintf("%.4f", r.empirical),
				fmt.Sprintf("±%.4f", r.ci),
				fmt.Sprintf("%.4f", r.survival),
				fmt.Sprintf("%.4f", absFloat(r.empirical-r.analytic)),
				r.lost)
		}
		tables = append(tables, t)
	}
	return tables
}

func absFloat(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
