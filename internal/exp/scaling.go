package exp

import (
	"fmt"
	"time"

	"atomique/internal/bench"
	"atomique/internal/report"
	"atomique/internal/solverref"
)

// Scaling measures compilation time versus circuit size for Atomique and
// Tan-IterP — the scalability claim behind Fig 14 and Table II ("the
// solver-based compiler times out beyond ~20 qubits; Atomique compiles
// 100-qubit circuits in milliseconds").
func Scaling() []*report.Table {
	t := &report.Table{
		Title: "Scaling: compile time vs circuit size (QAOA, 3-regular)",
		Header: []string{"Qubits", "2Q gates", "Atomique (ms)", "Tan-IterP (ms)",
			"Atomique depth", "IterP depth"},
		Notes: []string{"Tan-Solver is omitted beyond toy sizes (exponential); " +
			"see Table II for its timeout frontier"},
	}
	for _, n := range []int{10, 20, 40, 60, 80, 100} {
		c := bench.QAOARegular(n, 3, int64(n))
		cfg := configFor(n)

		start := time.Now()
		at := mustAtomique(cfg, c, coreOptions(1))
		atMS := float64(time.Since(start).Microseconds()) / 1000

		iterp, err := solverref.Compile(c, solverref.Options{Mode: solverref.IterP, Seed: 1})
		if err != nil {
			panic(err)
		}
		t.AddRow(n, c.Num2Q(),
			fmt.Sprintf("%.2f", atMS),
			fmt.Sprintf("%.2f", float64(iterp.Metrics.CompileTime.Microseconds())/1000),
			at.Depth2Q, iterp.Metrics.Depth2Q)
	}
	return []*report.Table{t}
}
