package exp

import (
	"fmt"
	"time"

	"atomique/internal/bench"
	"atomique/internal/compiler"
	"atomique/internal/core"
	"atomique/internal/report"
)

// Scaling measures compilation time versus circuit size for Atomique and
// Tan-IterP — the scalability claim behind Fig 14 and Table II ("the
// solver-based compiler times out beyond ~20 qubits; Atomique compiles
// 100-qubit circuits in milliseconds") — plus the per-pass breakdown of
// where Atomique's compile time goes as circuits grow.
func Scaling() []*report.Table {
	t := &report.Table{
		Title: "Scaling: compile time vs circuit size (QAOA, 3-regular)",
		Header: []string{"Qubits", "2Q gates", "Atomique (ms)", "Tan-IterP (ms)",
			"Atomique depth", "IterP depth"},
		Notes: []string{"Tan-Solver is omitted beyond toy sizes (exponential); " +
			"see Table II for its timeout frontier"},
	}
	passes := &report.Table{
		Title:  "Scaling: Atomique per-pass compile time (ms)",
		Header: append([]string{"Qubits"}, core.PassNames()...),
		Notes:  []string{"pipeline pass wall times from metrics.Passes; cache hits reuse the owner compilation's measurements"},
	}
	for _, n := range []int{10, 20, 40, 60, 80, 100} {
		c := bench.QAOARegular(n, 3, int64(n))
		cfg := configFor(n)

		start := time.Now()
		at := mustAtomique(cfg, c, coreOptions(1))
		atMS := float64(time.Since(start).Microseconds()) / 1000

		iterp := mustCompile("solverref", compiler.Target{}, c, compiler.Options{Seed: 1})
		t.AddRow(n, c.Num2Q(),
			fmt.Sprintf("%.2f", atMS),
			fmt.Sprintf("%.2f", float64(iterp.Metrics.CompileTime.Microseconds())/1000),
			at.Depth2Q, iterp.Metrics.Depth2Q)

		row := []interface{}{n}
		for _, name := range core.PassNames() {
			cell := "-"
			for _, p := range at.Passes {
				if p.Name == name {
					cell = fmt.Sprintf("%.3f", p.Seconds*1e3)
					break
				}
			}
			row = append(row, cell)
		}
		passes.AddRow(row...)
	}
	return []*report.Table{t, passes}
}
