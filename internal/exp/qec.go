package exp

import (
	"context"
	"fmt"

	"atomique/internal/bench"
	"atomique/internal/compiler"
	"atomique/internal/hardware"
	"atomique/internal/report"
)

// SurfaceCode is the first QEC workload driver: rotated surface-code
// syndrome-extraction cycles (distance 3-7, 17-97 qubits) compiled onto the
// zoned architecture, with the empirical fidelity measured by the stabilizer
// trajectory engine — at these widths the dense engine cannot replay a
// single shot, so every row past d=3 exists because of the Clifford fast
// path.
func SurfaceCode() []*report.Table {
	t := &report.Table{
		Title: "Surface-code cycles on the zoned backend (stabilizer-engine trajectories)",
		Header: []string{"Code", "Qubits", "2Q gates", "Shuttle rounds", "Time (s)",
			"Fid analytic", "Survival", "Overlap", "Engine"},
		Notes: []string{
			"rotated surface code: d^2 data + d^2-1 syndrome ancillas, coherent extraction (measurement deferred)",
			"Survival/Overlap: 2000 Monte-Carlo Pauli-frame trajectories through internal/stab",
		},
	}
	for _, s := range []struct{ d, rounds int }{{3, 1}, {3, 2}, {5, 1}, {5, 2}, {7, 1}} {
		c := bench.SurfaceCodeCycle(s.d, s.rounds)
		tgt := compiler.Zoned(hardware.ZonesFor(c.N))
		opts := compiler.Options{Seed: 7, NoisyShots: 2000, NoiseSeed: 11}
		res := mustCompile("zoned", tgt, c, opts)
		if err := compiler.AttachNoise(context.Background(), tgt, res, opts); err != nil {
			panic(fmt.Sprintf("exp: surface-code noise attach failed: %v", err))
		}
		est := res.Noise
		t.AddRow(fmt.Sprintf("d=%d r=%d", s.d, s.rounds),
			c.N, res.Metrics.N2Q, res.Metrics.Depth2Q,
			fmt.Sprintf("%.4f", res.Metrics.ExecutionTime),
			fmt.Sprintf("%.4f", res.Metrics.FidelityTotal()),
			fmt.Sprintf("%.4f", est.Survival),
			fmt.Sprintf("%.4f", est.Fidelity),
			est.Engine)
	}
	return []*report.Table{t}
}
