package exp

import (
	"context"
	"fmt"
	"time"

	"atomique/internal/bench"
	"atomique/internal/compiler"
	"atomique/internal/geyser"
	"atomique/internal/hardware"
	"atomique/internal/report"
)

// Table1 dumps the hardware parameters (Table I).
func Table1() []*report.Table {
	na := hardware.NeutralAtom()
	sc := hardware.Superconducting()
	t := &report.Table{
		Title:  "Table I: hardware parameters",
		Header: []string{"Parameter", "Neutral Atom", "Superconducting"},
	}
	rows := []struct {
		name   string
		na, sc string
	}{
		{"2Q fidelity", fmt.Sprintf("%.4f", na.Fidelity2Q), fmt.Sprintf("%.4f", sc.Fidelity2Q)},
		{"1Q fidelity", fmt.Sprintf("%.5f", na.Fidelity1Q), fmt.Sprintf("%.5f", sc.Fidelity1Q)},
		{"2Q gate T", fmt.Sprintf("%.0fns", na.Time2Q*1e9), fmt.Sprintf("%.0fns", sc.Time2Q*1e9)},
		{"1Q gate T", fmt.Sprintf("%.0fns", na.Time1Q*1e9), fmt.Sprintf("%.1fns", sc.Time1Q*1e9)},
		{"Coherence T", fmt.Sprintf("%.0fs", na.CoherenceT1), fmt.Sprintf("%.4fs", sc.CoherenceT1)},
		{"Atom distance", fmt.Sprintf("%.0fum", na.AtomDistance*1e6), "-"},
		{"T per move", fmt.Sprintf("%.0fus", na.TimePerMove*1e6), "-"},
		{"Atom transfer T", fmt.Sprintf("%.0fus", na.TransferTime*1e6), "-"},
		{"Atom loss P", fmt.Sprintf("%.4f", na.TransferLossP), "-"},
		{"x_zpf", fmt.Sprintf("%.0fnm", na.Xzpf*1e9), "-"},
		{"omega_0", fmt.Sprintf("%.0fkHz", na.Omega0/(2*3.141592653589793)/1e3), "-"},
		{"lambda", fmt.Sprintf("%.3f", na.Lambda), "-"},
	}
	for _, r := range rows {
		t.AddRow(r.name, r.na, r.sc)
	}
	return []*report.Table{t}
}

// Table2Budget bounds the solver feasibility probe per benchmark. The paper
// used a 24-hour timeout per circuit; this scaled-down budget reproduces the
// solved/timeout split at repository-test timescales.
var Table2Budget = 1 * time.Second

// Table2 regenerates the benchmark characteristics table, including the
// Tan-Solver / Tan-IterP feasibility columns.
func Table2() []*report.Table {
	t := &report.Table{
		Title: "Table II: benchmarks",
		Header: []string{"Name", "Type", "Qubits", "2Q gates", "1Q gates",
			"2Q/Q", "Degree/Q", "Tan-Solver", "Tan-IterP"},
		Notes: []string{fmt.Sprintf("solver feasibility probed with a %v budget "+
			"(paper: 24h); solved/timeout split matches at scale", Table2Budget)},
	}
	for _, b := range bench.Table2Suite() {
		s := b.Circ.ComputeStats()
		solver := probeSolver(b, true)
		iterp := probeSolver(b, false)
		t.AddRow(b.Name, b.Type, s.Qubits, s.Num2Q, s.Num1Q,
			fmt.Sprintf("%.1f", s.TwoQPerQ), fmt.Sprintf("%.1f", s.DegreePerQ),
			solver, iterp)
	}
	return []*report.Table{t}
}

func probeSolver(b bench.Benchmark, exact bool) string {
	if b.Circ.N > 256 {
		return "timeout"
	}
	res, err := mustBackend("solverref").Compile(context.Background(), compiler.Target{}, b.Circ,
		compiler.Options{Seed: 1, Exact: exact, BudgetSeconds: Table2Budget.Seconds()})
	if err != nil || res.TimedOut {
		return "timeout"
	}
	return "solved"
}

// Table3 compares multi-qubit pulse counts with Geyser on the five Table III
// benchmarks.
func Table3() []*report.Table {
	t := &report.Table{
		Title:  "Table III: number of multi-qubit pulses (lower is better)",
		Header: []string{"Benchmark", "Geyser", "Atomique", "Reduction"},
		Notes: []string{"paper reductions: HHL-7 1.4x, Mermin-Bell-10 1.8x, " +
			"QV-32 2.4x, BV-50 6.5x, BV-70 6.1x"},
	}
	suite := []bench.Benchmark{
		{Name: "HHL-7", Circ: bench.HHL(7, 2, 1)},
		{Name: "Mermin-Bell-10", Circ: bench.MerminBell(10, 58, 2)},
		{Name: "QV-32", Circ: bench.QV(32, 32, 3)},
		{Name: "BV-50", Circ: bench.BV(50, 22, 4)},
		{Name: "BV-70", Circ: bench.BV(70, 36, 5)},
	}
	cfg := hardware.DefaultConfig()
	for _, b := range suite {
		g := mustCompile("geyser", compiler.Target{}, b.Circ, coreOptions(1))
		pulses := int(g.Extra["pulses"])
		m := mustAtomique(cfg, b.Circ, coreOptions(1))
		ap := geyser.AtomiquePulses(m.N2Q)
		t.AddRow(b.Name, pulses, ap, fmt.Sprintf("%.1fx", float64(pulses)/float64(ap)))
	}
	return []*report.Table{t}
}
