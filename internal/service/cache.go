package service

import (
	"container/list"
	"sync"

	"atomique/internal/metrics"
)

// outcome is a finished compilation: the metrics record, the pre-marshalled
// result envelope (so repeated requests return byte-identical JSON), and the
// compile error if any. timedOut marks a budget-bounded solver run that
// exhausted its wall-clock budget; such outcomes are returned but never
// cached (the timeout depends on machine load, not on the inputs).
type outcome struct {
	metrics  metrics.Compiled
	json     []byte
	err      error
	timedOut bool
}

// entry is one cache slot. done is closed when the owning computation
// finishes and out becomes readable; until then other requests for the same
// key coalesce onto the entry instead of recompiling.
type entry struct {
	key  string
	done chan struct{}
	out  *outcome
}

// lruCache is a bounded content-addressed result cache. Keys are hashes of
// (circuit fingerprint, hardware config, compile options); compilation is
// deterministic per key, so a cached outcome is exact, not approximate.
// Reservation doubles as in-flight deduplication: the first requester of a
// key owns the computation, concurrent requesters wait on the same entry.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used; values are *entry
	items map[string]*list.Element
}

func newLRUCache(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// getOrReserve looks up key. On a hit (finished or in flight) it returns the
// entry and true. On a miss it inserts a pending entry, evicting the least
// recently used finished entry when over capacity, and returns it with
// false; the caller then owns the computation and must call fulfill or drop.
func (c *lruCache) getOrReserve(key string) (*entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry), true
	}
	e := &entry{key: key, done: make(chan struct{})}
	c.items[key] = c.ll.PushFront(e)
	for c.ll.Len() > c.cap {
		// Evict from the back, skipping in-flight entries (their owners
		// still need to fulfill them; waiters hold direct pointers anyway).
		evicted := false
		for el := c.ll.Back(); el != nil; el = el.Prev() {
			if ent := el.Value.(*entry); ent.out != nil {
				c.ll.Remove(el)
				delete(c.items, ent.key)
				evicted = true
				break
			}
		}
		if !evicted {
			break
		}
	}
	return e, false
}

// fulfill publishes the outcome of a reserved entry and wakes all waiters.
func (c *lruCache) fulfill(e *entry, out *outcome) {
	c.mu.Lock()
	e.out = out
	c.mu.Unlock()
	close(e.done)
}

// drop removes a reserved entry whose computation did not produce a cacheable
// outcome (e.g. it was cancelled); waiters already holding the entry still
// observe the outcome via fulfill, which must be called first.
func (c *lruCache) drop(e *entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[e.key]; ok && el.Value.(*entry) == e {
		c.ll.Remove(el)
		delete(c.items, e.key)
	}
}

// len returns the number of cached entries (including in-flight ones).
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
