package service

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"atomique/internal/admission"
	"atomique/internal/circuit"
	"atomique/internal/compiler"
	"atomique/internal/metrics"
)

// stubResult is the canonical successful stub-backend payload.
func stubResult(circ *circuit.Circuit) *compiler.Result {
	return &compiler.Result{Backend: "stub", Metrics: metrics.Compiled{Arch: "stub", NQubits: circ.N}}
}

// TestWorkerPanicRecovery: a panicking backend must fail the job (with the
// panic in its error), count atomique_panics_total, and leave the worker
// alive and the busy gauge clean for the next job.
func TestWorkerPanicRecovery(t *testing.T) {
	var calls atomic.Int64
	e := newEngine(Config{Workers: 1}, func(_ context.Context, _ compiler.Backend, _ compiler.Target, circ *circuit.Circuit, _ compiler.Options) (*compiler.Result, error) {
		if calls.Add(1) == 1 {
			panic("backend exploded")
		}
		return stubResult(circ), nil
	})
	defer e.Close()

	j, err := e.Compile(context.Background(), Request{Benchmark: "H2-4", Seed: 1})
	if err != nil {
		t.Fatalf("Compile returned transport error %v, want failed job", err)
	}
	if j.State != StateFailed || !strings.Contains(j.Error, "panic") {
		t.Fatalf("job after panic: state=%s error=%q, want failed with panic message", j.State, j.Error)
	}
	if st := e.Stats(); st.Panics != 1 {
		t.Errorf("Stats().Panics = %d, want 1", st.Panics)
	}
	if got := e.busy.Load(); got != 0 {
		t.Errorf("busy gauge = %d after panic, want 0", got)
	}
	// The single worker must have survived to run the next job.
	j2, err := e.Compile(context.Background(), Request{Benchmark: "H2-4", Seed: 2})
	if err != nil || j2.State != StateDone {
		t.Fatalf("job after recovery: %+v err=%v, want done", j2, err)
	}
}

// TestFpMemoBounded: the fingerprint memo must evict once past its capacity
// instead of pinning every circuit ever submitted, and stay stable for
// repeated lookups of a live pointer.
func TestFpMemoBounded(t *testing.T) {
	var m fpMemo
	m.init(8)
	keep := circuit.New(2)
	keep.H(0)
	first := m.fingerprint(keep)
	for i := 0; i < 64; i++ {
		c := circuit.New(2)
		c.H(0)
		c.RZ(1, float64(i))
		m.fingerprint(c)
		// Touch the kept circuit so LRU retains it through the churn.
		if got := m.fingerprint(keep); got != first {
			t.Fatalf("fingerprint changed for same circuit: %q != %q", got, first)
		}
	}
	if n := m.len(); n > 8 {
		t.Errorf("memo grew to %d entries, capacity 8", n)
	}
	// The engine's memo must use the package bound.
	e := New(Config{Workers: 1})
	defer e.Close()
	if e.fpMemo.cap != fpMemoLimit {
		t.Errorf("engine memo capacity = %d, want %d", e.fpMemo.cap, fpMemoLimit)
	}
}

// findTraceState scans the trace ring for a root span carrying the given
// state attribute.
func findTraceState(e *Engine, state string) bool {
	for _, tr := range e.tel.traces.Recent(100) {
		snap := tr.Root.Snapshot()
		if snap != nil && snap.Attrs["state"] == state {
			return true
		}
	}
	return false
}

// TestRejectedSubmissionTraceVisible: a queue-full rejection must still end
// and publish the job's trace — rejected traffic is part of the story
// GET /v1/traces tells, not a silent drop.
func TestRejectedSubmissionTraceVisible(t *testing.T) {
	backend := newBlockingBackend()
	e := newEngine(Config{Workers: 1, QueueSize: 1}, backend.compile)
	defer e.Close()
	defer close(backend.release)

	if _, err := e.Submit(context.Background(), Request{Benchmark: "H2-4", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	<-backend.started
	if _, err := e.Submit(context.Background(), Request{Benchmark: "H2-4", Seed: 2}); err != nil {
		t.Fatal(err)
	}
	_, err := e.Submit(context.Background(), Request{Benchmark: "H2-4", Seed: 3})
	if !errors.Is(err, ErrQueueFull) || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want queue-full overload", err)
	}
	var oe *OverloadedError
	if !errors.As(err, &oe) || oe.RetryAfter <= 0 {
		t.Fatalf("err = %#v, want *OverloadedError with positive RetryAfter", err)
	}
	if !findTraceState(e, "rejected") {
		t.Error("no trace with state=rejected in the ring after a queue-full rejection")
	}
}

// orderBackend records the seed of every compilation as it starts, parking
// each until released — the scheduler-order probe.
type orderBackend struct {
	mu      sync.Mutex
	order   []int64
	started chan int64
	release chan struct{}
}

func newOrderBackend() *orderBackend {
	return &orderBackend{started: make(chan int64, 64), release: make(chan struct{})}
}

func (b *orderBackend) compile(ctx context.Context, _ compiler.Backend, _ compiler.Target, circ *circuit.Circuit, opts compiler.Options) (*compiler.Result, error) {
	b.mu.Lock()
	b.order = append(b.order, opts.Seed)
	b.mu.Unlock()
	b.started <- opts.Seed
	select {
	case <-b.release:
		return stubResult(circ), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TestPriorityScheduling: with batch jobs queued ahead in wall-clock time,
// a later interactive submission must still run first once the worker frees
// up — the batch queue cannot starve interactive.
func TestPriorityScheduling(t *testing.T) {
	backend := newOrderBackend()
	e := newEngine(Config{Workers: 1, QueueSize: 8}, backend.compile)
	defer e.Close()

	ids := make([]string, 0, 4)
	submit := func(seed int64, prio string) {
		j, err := e.Submit(context.Background(), Request{Benchmark: "H2-4", Seed: seed, Priority: prio})
		if err != nil {
			t.Fatalf("submit seed %d: %v", seed, err)
		}
		ids = append(ids, j.ID)
	}
	submit(1, PriorityBatch)
	<-backend.started // worker is parked on seed 1
	submit(2, PriorityBatch)
	submit(3, PriorityBatch)
	submit(4, PriorityInteractive)
	close(backend.release)
	for _, id := range ids {
		waitState(t, e, id, StateDone)
	}

	backend.mu.Lock()
	order := append([]int64(nil), backend.order...)
	backend.mu.Unlock()
	if len(order) != 4 || order[0] != 1 || order[1] != 4 {
		t.Fatalf("execution order = %v, want [1 4 ...] (interactive overtakes queued batch)", order)
	}
}

// TestUnknownPriorityRejected: a bogus priority is a 400-class request error.
func TestUnknownPriorityRejected(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()
	_, err := e.Submit(context.Background(), Request{Benchmark: "H2-4", Priority: "urgent"})
	var re *RequestError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RequestError for unknown priority", err)
	}
}

// TestPoolResizeUnderLoad drives concurrent submissions while the pool grows
// and shrinks; the live count must converge to each target and no job may be
// lost. Run with -race in CI.
func TestPoolResizeUnderLoad(t *testing.T) {
	e := newEngine(Config{Workers: 2, WorkersMin: 1, WorkersMax: 8, QueueSize: 256, CacheSize: 4096},
		func(ctx context.Context, _ compiler.Backend, _ compiler.Target, circ *circuit.Circuit, _ compiler.Options) (*compiler.Result, error) {
			select {
			case <-time.After(time.Millisecond):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return stubResult(circ), nil
		})
	defer e.Close()

	var wg sync.WaitGroup
	var failures atomic.Int64
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				j, err := e.Compile(context.Background(), Request{Benchmark: "H2-4", Seed: int64(g*100000 + i)})
				if err != nil && !errors.Is(err, ErrOverloaded) {
					failures.Add(1)
					return
				}
				if err == nil && j.State != StateDone {
					failures.Add(1)
					return
				}
			}
		}(g)
	}

	waitLive := func(want int64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if e.workersLive.Load() == want {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("workersLive = %d, want %d", e.workersLive.Load(), want)
	}
	for _, target := range []int{8, 1, 6, 2} {
		if applied := e.Resize(target); applied != target {
			t.Fatalf("Resize(%d) applied %d", target, applied)
		}
		waitLive(int64(target))
	}
	// Clamping: targets outside [min, max] saturate.
	if applied := e.Resize(100); applied != 8 {
		t.Errorf("Resize(100) applied %d, want clamp to 8", applied)
	}
	if applied := e.Resize(0); applied != 1 {
		t.Errorf("Resize(0) applied %d, want clamp to 1", applied)
	}
	close(stop)
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d submissions failed during resizes", n)
	}
	if st := e.Stats(); st.WorkersMin != 1 || st.WorkersMax != 8 || st.WorkersTarget != 1 {
		t.Errorf("stats pool bounds = [%d,%d] target %d, want [1,8] target 1",
			st.WorkersMin, st.WorkersMax, st.WorkersTarget)
	}
}

// TestCancelVsFinishRace hammers the Cancel-while-finishing window: every
// job must land in exactly done or cancelled, never wedge. Run with -race.
func TestCancelVsFinishRace(t *testing.T) {
	e := newEngine(Config{Workers: 4, QueueSize: 64, CacheSize: 4096},
		func(ctx context.Context, _ compiler.Backend, _ compiler.Target, circ *circuit.Circuit, _ compiler.Options) (*compiler.Result, error) {
			select {
			case <-time.After(100 * time.Microsecond):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return stubResult(circ), nil
		})
	defer e.Close()

	for i := 0; i < 200; i++ {
		j, err := e.Submit(context.Background(), Request{Benchmark: "H2-4", Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			e.Cancel(j.ID) //nolint:errcheck // racing cancel may lose to finish
		}
		waitState(t, e, j.ID, StateDone, StateCancelled, StateFailed)
	}
}

// TestCoalescedWaiterTakeover: cancel the job that owns an in-flight cache
// entry while an identical job waits on it — the waiter must take over the
// computation and finish, not hang on the dead owner. Run with -race.
func TestCoalescedWaiterTakeover(t *testing.T) {
	backend := newBlockingBackend()
	e := newEngine(Config{Workers: 2, QueueSize: 8}, backend.compile)
	defer e.Close()

	owner, err := e.Submit(context.Background(), Request{Benchmark: "H2-4", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	<-backend.started // owner holds the in-flight cache entry
	waiter, err := e.Submit(context.Background(), Request{Benchmark: "H2-4", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := e.Cancel(owner.ID); !ok || err != nil {
		t.Fatalf("cancel owner: ok=%v err=%v", ok, err)
	}
	waitState(t, e, owner.ID, StateCancelled)
	// The waiter must re-enter the backend (second started event) and finish
	// once released.
	select {
	case <-backend.started:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never took over the computation")
	}
	close(backend.release)
	if j := waitState(t, e, waiter.ID, StateDone); j.Error != "" {
		t.Fatalf("waiter error: %s", j.Error)
	}
}

// TestAdmissionShedIsObservable wires a real controller at a tight objective
// and verifies a shed submission surfaces the whole contract: typed error
// with retry advice, per-class counters, and stats fields.
func TestAdmissionShedIsObservable(t *testing.T) {
	backend := newBlockingBackend()
	e := newEngine(Config{Workers: 1, WorkersMin: 1, WorkersMax: 1, QueueSize: 64,
		Admission: admission.Config{
			Enabled:         true,
			Interval:        2 * time.Millisecond,
			TargetQueueWait: 5 * time.Millisecond,
			// One slow synthetic service-time estimate so a small backlog
			// already predicts objective-busting waits.
			DefaultServiceSeconds: 0.5,
		}}, backend.compile)
	defer e.Close()
	defer close(backend.release)

	if _, err := e.Submit(context.Background(), Request{Benchmark: "H2-4", Seed: 1, Priority: PriorityBatch}); err != nil {
		t.Fatal(err)
	}
	<-backend.started
	// Build a batch backlog, then wait for the controller to flip shedding.
	for i := int64(2); i < 10; i++ {
		e.Submit(context.Background(), Request{Benchmark: "H2-4", Seed: i, Priority: PriorityBatch}) //nolint:errcheck // may shed once flipped
	}
	var shedErr error
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_, err := e.Submit(context.Background(), Request{Benchmark: "H2-4", Seed: time.Now().UnixNano(), Priority: PriorityBatch})
		if err != nil && !errors.Is(err, ErrQueueFull) {
			shedErr = err
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if shedErr == nil {
		t.Fatal("controller never shed batch traffic over a saturated worker")
	}
	var oe *OverloadedError
	if !errors.As(shedErr, &oe) || oe.QueueFull || oe.RetryAfter <= 0 || oe.Reason == "" {
		t.Fatalf("shed error = %#v, want non-queue-full overload with retry advice", shedErr)
	}
	if !errors.Is(shedErr, ErrOverloaded) || errors.Is(shedErr, ErrQueueFull) {
		t.Fatalf("shed error identity wrong: %v", shedErr)
	}
	st := e.Stats()
	if st.Admission == nil {
		t.Fatal("Stats().Admission nil with controller enabled")
	}
	if !st.Admission.ShedBatch || st.Admission.ShedBatchTotal == 0 {
		t.Errorf("admission stats = %+v, want batch shedding recorded", st.Admission)
	}
	if st.Admission.ShedInteractive {
		t.Errorf("interactive shedding with an empty interactive queue: %+v", st.Admission)
	}
	// The decision trace ring must carry an admission tick trace.
	found := false
	for _, tr := range e.tel.traces.Recent(100) {
		if snap := tr.Root.Snapshot(); snap != nil && snap.Name == "admission" {
			found = true
			break
		}
	}
	if !found {
		t.Error("no admission tick trace in the ring while shedding")
	}
	var buf strings.Builder
	if err := e.tel.registry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`atomique_admission_decisions_total{priority="batch",decision="shed"}`,
		"atomique_admission_shed_batch 1",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
