package service

import (
	"atomique/internal/obs"
	"atomique/internal/obs/slo"
)

// sloTotals adapts the engine's own telemetry into the burn-rate engine's
// cumulative (good, total) feed. Availability objectives count finished
// requests of the class: done is good; failed and rejected (shed or queue
// full) burn budget; cancellations are the client's choice and count for
// neither. Latency objectives read the class's latency histograms: good is
// the bucket mass at or under the threshold, total is everything observed.
// Both walk every backend label, so the objective spans the fleet of
// backends serving the class.
func (e *Engine) sloTotals() slo.TotalsFunc {
	return func(o slo.Objective) (good, total float64) {
		if o.LatencySeconds > 0 {
			e.tel.latency.Each(func(labels []string, h *obs.Histogram) {
				if labels[1] != o.Class {
					return
				}
				s := h.Snapshot()
				good += float64(s.CountLE(o.LatencySeconds))
				total += float64(s.Count)
			})
			return good, total
		}
		e.tel.requests.Each(func(labels []string, c *obs.Counter) {
			if labels[1] != o.Class {
				return
			}
			v := c.Value()
			switch labels[2] {
			case outcomeDone:
				good += v
				total += v
			case outcomeFailed, outcomeRejected:
				total += v
			}
		})
		return good, total
	}
}

// onSLOEvent reacts to burn-rate state transitions: every transition is
// logged, and a transition into page trips the flight recorder — the bundle
// captures the incident while it is still burning.
func (e *Engine) onSLOEvent(ev slo.Event) {
	e.tel.log.Warn("slo state change", "objective", ev.Objective, "class", ev.Class,
		"from", ev.From.String(), "to", ev.To.String(), "reason", ev.Reason)
	if ev.To == slo.StatePage {
		e.triggerBundle("slo-page", ev.Objective+": "+ev.Reason, false)
	}
}

// startSLO builds, registers, and starts the burn-rate engine. An empty
// config gets the default per-class objectives, so every engine serves
// /v1/slo out of the box.
func (e *Engine) startSLO() {
	cfg := e.cfg.SLO
	if len(cfg.Objectives) == 0 {
		cfg = slo.DefaultConfig([]string{ClassCompile, ClassSimulate, ClassSample})
	}
	e.slo = slo.New(cfg, e.sloTotals(), slo.WithOnEvent(e.onSLOEvent))
	e.slo.Register(e.tel.registry)
	e.slo.Start()
}
