package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"atomique/internal/circuit"
	"atomique/internal/compiler"
	"atomique/internal/obs"
	"atomique/internal/obs/slo"
)

// TestSLOEndpointAndStats: every engine serves /v1/slo out of the box — the
// default config declares availability + latency objectives per request
// class — and /v1/stats embeds the same evaluation.
func TestSLOEndpointAndStats(t *testing.T) {
	e, srv := newTestServer(t, Config{Workers: 2})
	if resp, body := postJSON(t, srv.URL+"/v1/compile", Request{Benchmark: "H2-4", Seed: 1}); resp.StatusCode != http.StatusOK {
		t.Fatalf("compile status = %d, body %s", resp.StatusCode, body)
	}
	e.slo.Tick() // fold the finished request into the evaluation now

	var sr sloResponse
	if resp := getJSON(t, srv.URL+"/v1/slo", &sr); resp.StatusCode != http.StatusOK {
		t.Fatalf("slo status = %d", resp.StatusCode)
	}
	if sr.Worst != "ok" {
		t.Errorf("worst = %q, want ok", sr.Worst)
	}
	if len(sr.Objectives) != 6 { // 3 classes x (availability, latency)
		t.Fatalf("objectives = %d, want 6", len(sr.Objectives))
	}
	byName := map[string]slo.ObjectiveStatus{}
	for _, o := range sr.Objectives {
		byName[o.Name] = o
	}
	avail, ok := byName["compile-availability"]
	if !ok {
		t.Fatalf("compile-availability missing: %+v", byName)
	}
	if avail.State != "ok" || avail.Good < 1 || avail.Total < 1 {
		t.Errorf("compile-availability = %+v, want ok with traffic", avail)
	}
	if lat := byName["compile-latency"]; lat.Kind != "latency" || lat.LatencySeconds <= 0 {
		t.Errorf("compile-latency = %+v, want latency kind with threshold", lat)
	}

	st := e.Stats()
	if len(st.SLO) != 6 || st.SLOWorst != "ok" {
		t.Errorf("stats slo block wrong: worst=%q len=%d", st.SLOWorst, len(st.SLO))
	}
	if st.Traces.Adds == 0 || st.Traces.Stored == 0 {
		t.Errorf("stats traces block empty: %+v", st.Traces)
	}
	if st.Bundles != -1 {
		t.Errorf("bundles = %d without a recorder, want -1", st.Bundles)
	}
}

// TestSLOPagesTripRecorder: a storm of failures drives the availability
// objective to page, and the page transition trips the flight recorder.
func TestSLOPagesTripRecorder(t *testing.T) {
	fail := errors.New("backend down")
	e := newEngine(Config{Workers: 2, Bundles: BundleConfig{
		Dir: t.TempDir(), CPUProfile: 20 * time.Millisecond,
	}, SLO: slo.Config{IntervalSeconds: 3600, Objectives: []slo.Objective{{
		// A huge interval keeps the engine's own ticker out of the test;
		// Ticks below drive evaluation deterministically.
		Name: "compile-availability", Class: ClassCompile, Target: 0.99,
	}}}}, func(context.Context, compiler.Backend, compiler.Target, *circuit.Circuit, compiler.Options) (*compiler.Result, error) {
		return nil, fail
	})
	defer e.Close()
	for i := 0; i < 10; i++ {
		j, err := e.Compile(context.Background(), Request{Benchmark: "H2-4", Seed: int64(i)})
		if err != nil || j.State != StateFailed {
			t.Fatalf("job %d: %+v err=%v, want failed", i, j, err)
		}
	}
	e.slo.Tick() // 100% failures against a 1% budget: both page windows fire
	if got := e.slo.WorstState(); got != slo.StatePage {
		t.Fatalf("state after failure storm = %v, want page", got)
	}
	e.recorder.Wait()
	bundles := e.recorder.List()
	if len(bundles) == 0 || bundles[0].Trigger != "slo-page" {
		t.Fatalf("page transition captured no slo-page bundle: %+v", bundles)
	}
	// The failed jobs were pinned, so the bundle's trace snapshot has them.
	if pinned := e.tel.traces.Pinned(); len(pinned) == 0 {
		t.Error("failure storm left no pinned traces")
	}
	if st := e.tel.traces.Stats(); st.Pins != 10 {
		t.Errorf("pins = %d, want 10", st.Pins)
	}
}

// TestBundleEndpoints: manual trigger over HTTP, manifest browsing, file
// download, and the disabled-recorder 404.
func TestBundleEndpoints(t *testing.T) {
	e := New(Config{Workers: 1, Bundles: BundleConfig{
		Dir: t.TempDir(), CPUProfile: 20 * time.Millisecond,
	}})
	srv := httptest.NewServer(e.Handler())
	t.Cleanup(func() { srv.Close(); e.Close() })

	resp, body := postJSON(t, srv.URL+"/v1/debug/bundles?reason=drill", struct{}{})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("trigger status = %d, body %s", resp.StatusCode, body)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &created); err != nil || created.ID == "" {
		t.Fatalf("trigger response %s: %v", body, err)
	}
	e.recorder.Wait()

	var list []obs.BundleMeta
	if resp := getJSON(t, srv.URL+"/v1/debug/bundles", &list); resp.StatusCode != http.StatusOK {
		t.Fatalf("list status = %d", resp.StatusCode)
	}
	if len(list) != 1 || list[0].ID != created.ID || !list[0].Complete {
		t.Fatalf("bundle list wrong: %+v", list)
	}
	var meta obs.BundleMeta
	if resp := getJSON(t, srv.URL+"/v1/debug/bundles/"+created.ID, &meta); resp.StatusCode != http.StatusOK {
		t.Fatalf("get status = %d", resp.StatusCode)
	}
	wantFiles := map[string]bool{"cpu.pprof": false, "goroutine.pprof": false,
		"heap.pprof": false, "traces.json": false, "admission.json": false,
		"stats.json": false, "config.json": false, "metrics.prom": false}
	for _, f := range meta.Files {
		if _, want := wantFiles[f.Name]; want {
			wantFiles[f.Name] = f.Bytes > 0 && f.Error == ""
		}
	}
	for name, good := range wantFiles {
		if !good {
			t.Errorf("bundle file %s missing, empty, or errored: %+v", name, meta.Files)
		}
	}
	// The captured metrics dump is itself valid OpenMetrics.
	mresp, err := http.Get(srv.URL + "/v1/debug/bundles/" + created.ID + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("file status = %d", mresp.StatusCode)
	}
	if _, err := obs.ParseExposition(bytes.NewReader(raw)); err != nil {
		t.Errorf("bundled metrics.prom invalid: %v", err)
	}
	if resp := getJSON(t, srv.URL+"/v1/debug/bundles/nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown bundle status = %d, want 404", resp.StatusCode)
	}

	// Without -bundle-dir every bundle endpoint is a 404.
	_, srv2 := newTestServer(t, Config{Workers: 1})
	if resp := getJSON(t, srv2.URL+"/v1/debug/bundles", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("disabled recorder list status = %d, want 404", resp.StatusCode)
	}
	if resp, _ := postJSON(t, srv2.URL+"/v1/debug/bundles", struct{}{}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("disabled recorder trigger status = %d, want 404", resp.StatusCode)
	}
}

// TestOpenMetricsNegotiation: an Accept header asking for OpenMetrics gets
// exemplars and # EOF; the default scrape stays classic Prometheus text.
// Both forms must satisfy the strict parser.
func TestOpenMetricsNegotiation(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})
	if resp, body := postJSON(t, srv.URL+"/v1/compile", Request{Benchmark: "H2-4", Seed: 1}); resp.StatusCode != http.StatusOK {
		t.Fatalf("compile status = %d, body %s", resp.StatusCode, body)
	}

	req, err := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Errorf("negotiated content type = %q", ct)
	}
	out := string(body)
	if !strings.Contains(out, `# {trace_id="`) {
		t.Errorf("OpenMetrics scrape carries no exemplar:\n%s", out)
	}
	if !strings.HasSuffix(strings.TrimRight(out, "\n"), "# EOF") {
		t.Error("OpenMetrics scrape must end with # EOF")
	}
	if _, err := obs.ParseExposition(bytes.NewReader(body)); err != nil {
		t.Fatalf("OpenMetrics scrape invalid: %v", err)
	}
	for _, want := range []string{
		"atomique_traces_pinned", `atomique_traces_evicted_total{segment="sampled"}`,
		`atomique_traces_evicted_total{segment="pinned"}`, "atomique_traces_sampled_out_total",
		`atomique_slo_state{objective="compile-availability"}`,
		`atomique_slo_burn_rate{objective="compile-latency",window="pageShort"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	// Plain scrape: classic exposition, no OpenMetrics extensions.
	plain, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	pbody, _ := io.ReadAll(plain.Body)
	plain.Body.Close()
	if strings.Contains(string(pbody), "trace_id") || strings.Contains(string(pbody), "# EOF") {
		t.Error("classic scrape must not carry OpenMetrics extensions")
	}
	if _, err := obs.ParseExposition(bytes.NewReader(pbody)); err != nil {
		t.Fatalf("classic scrape invalid: %v", err)
	}
}

// TestShedMintsPinnedTrace: an admission shed leaves a root-only pinned
// trace carrying the shed reason — evidence that survives success storms.
func TestShedMintsPinnedTrace(t *testing.T) {
	backend := newBlockingBackend()
	e := newEngine(Config{Workers: 1, QueueSize: 1}, backend.compile)
	defer e.Close()
	defer close(backend.release)

	if _, err := e.Submit(context.Background(), Request{Benchmark: "H2-4", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	<-backend.started
	if _, err := e.Submit(context.Background(), Request{Benchmark: "H2-4", Seed: 2}); err != nil {
		t.Fatal(err)
	}
	// Queue full: the rejection is dropped through dropJob, which pins.
	if _, err := e.Submit(context.Background(), Request{Benchmark: "H2-4", Seed: 3}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want queue full", err)
	}
	pinned := e.tel.traces.Pinned()
	if len(pinned) == 0 {
		t.Fatal("queue-full rejection left no pinned trace")
	}
	if st := pinned[0].Root.Snapshot().Attrs["state"]; st != "rejected" {
		t.Errorf("pinned trace state = %q, want rejected", st)
	}
	if st := e.tel.traces.Stats(); st.Pins == 0 {
		t.Errorf("trace stats count no pins: %+v", st)
	}
}

// TestTraceSampleDropsFastSuccesses: with a negative TraceSample (keep
// nothing), successful traces are sampled out while rejections stay pinned.
func TestTraceSampleDropsFastSuccesses(t *testing.T) {
	e := New(Config{Workers: 1, TraceSample: -1})
	defer e.Close()
	for i := 0; i < 3; i++ {
		j, err := e.Compile(context.Background(), Request{Benchmark: "H2-4", Seed: int64(i)})
		if err != nil || j.State != StateDone {
			t.Fatalf("job %d: %+v err=%v", i, j, err)
		}
	}
	st := e.tel.traces.Stats()
	if st.SampledOut != 3 || st.Stored != 0 {
		t.Errorf("stats = %+v, want 3 sampled out, 0 stored", st)
	}
}
