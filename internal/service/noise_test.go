package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"atomique/internal/compiler"
	"atomique/internal/noise"
	"atomique/internal/report"
)

// TestNoiseOptionsInCacheKey is the no-aliasing contract for the noisy-shot
// workload: noisy and ideal compilations of the same circuit must occupy
// distinct cache entries, and so must runs differing only in shots, noise
// seed, or a channel override — while identical noisy requests coalesce
// into one cached entry.
func TestNoiseOptionsInCacheKey(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	ctx := context.Background()

	compile := func(req Request) *Job {
		t.Helper()
		j, err := e.Compile(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if j.State != StateDone {
			t.Fatalf("job state %s: %s", j.State, j.Error)
		}
		return j
	}

	ideal := compile(Request{QASM: ghzQASM, Seed: 7})
	var idealEnv report.Envelope
	if err := json.Unmarshal(ideal.Result, &idealEnv); err != nil {
		t.Fatal(err)
	}
	if idealEnv.Noise != nil {
		t.Fatal("ideal compilation carries a noise estimate")
	}

	noisy := compile(Request{QASM: ghzQASM, Seed: 7, Shots: 500})
	if noisy.Cached {
		t.Fatal("noisy request aliased the ideal cache entry")
	}
	var noisyEnv report.Envelope
	if err := json.Unmarshal(noisy.Result, &noisyEnv); err != nil {
		t.Fatal(err)
	}
	if noisyEnv.Noise == nil || noisyEnv.Noise.Shots != 500 {
		t.Fatalf("noisy envelope estimate = %+v, want 500 shots", noisyEnv.Noise)
	}

	// Identical noisy request: one cache entry, byte-identical result.
	again := compile(Request{QASM: ghzQASM, Seed: 7, Shots: 500})
	if !again.Cached {
		t.Error("identical noisy request missed the cache")
	}
	if !bytes.Equal(stripTrace(t, noisy.Result), stripTrace(t, again.Result)) {
		t.Error("cached noisy result differs from the original")
	}

	// Every noise knob must split the key.
	for name, req := range map[string]Request{
		"shots":      {QASM: ghzQASM, Seed: 7, Shots: 501},
		"noiseSeed":  {QASM: ghzQASM, Seed: 7, Shots: 500, NoiseSeed: 1},
		"noiseScale": {QASM: ghzQASM, Seed: 7, Shots: 500, NoiseScale: 2},
		"noise2Q":    {QASM: ghzQASM, Seed: 7, Shots: 500, Noise2Q: 0.1},
		"engine":     {QASM: ghzQASM, Seed: 7, Shots: 500, Engine: noise.EngineDense},
	} {
		if j := compile(req); j.Cached {
			t.Errorf("request differing only in %s aliased the cached noisy entry", name)
		}
	}

	// The ideal entry is still intact and distinct.
	if j := compile(Request{QASM: ghzQASM, Seed: 7}); !j.Cached || !bytes.Equal(stripTrace(t, j.Result), stripTrace(t, ideal.Result)) {
		t.Error("ideal entry lost or corrupted by noisy runs")
	}
}

// TestNoiseRequestValidation covers resolve-time rejection of malformed
// noise options.
func TestNoiseRequestValidation(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()
	for name, req := range map[string]Request{
		"negative-shots":    {QASM: ghzQASM, Shots: -1},
		"huge-shots":        {QASM: ghzQASM, Shots: compiler.MaxNoisyShots + 1},
		"orphan-noise-seed": {QASM: ghzQASM, NoiseSeed: 3},
		"orphan-scale":      {QASM: ghzQASM, NoiseScale: 2},
		"negative-scale":    {QASM: ghzQASM, Shots: 10, NoiseScale: -1},
		"out-of-range-prob": {QASM: ghzQASM, Shots: 10, Noise2Q: 1.5},
		"negative-prob":     {QASM: ghzQASM, Shots: 10, Noise1Q: -0.1},
		"too-wide-circuit":  {Benchmark: "QV-32", Shots: 10},
		"too-wide-ancillas": {Benchmark: "QSim-rand-20", Backend: "qpilot", Shots: 10},
		"bogus-engine":      {QASM: ghzQASM, Shots: 10, Engine: "statevector"},
		"orphan-engine":     {QASM: ghzQASM, Engine: noise.EngineStab},
		"stab-non-clifford": {Benchmark: "QSim-rand-20", Shots: 10, Engine: noise.EngineStab},
		"dense-too-wide":    {Benchmark: "QV-32", Shots: 10, Engine: noise.EngineDense},
	} {
		if _, err := e.Compile(context.Background(), req); err == nil {
			t.Errorf("%s: accepted", name)
		} else if _, ok := err.(*RequestError); !ok {
			t.Errorf("%s: err = %v, want *RequestError", name, err)
		}
	}
}

// wideGHZQASM builds an n-qubit GHZ chain in OpenQASM — Clifford, so the
// service must route its trajectory shots to the stabilizer engine at widths
// the dense engine rejects outright.
func wideGHZQASM(n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[%d];\nh q[0];\n", n)
	for i := 1; i < n; i++ {
		fmt.Fprintf(&sb, "cx q[%d],q[%d];\n", i-1, i)
	}
	return sb.String()
}

// TestSimulateEngineDispatch pins the engine plumbing end to end through the
// service: the chosen engine is surfaced in the envelope's noise estimate,
// an explicit engine=dense is honoured, and a 96-qubit Clifford circuit —
// four times past the dense wall — simulates successfully via the stabilizer
// engine on every registered backend's default target.
func TestSimulateEngineDispatch(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	ctx := context.Background()

	estimate := func(req Request) *noise.Estimate {
		t.Helper()
		j, err := e.Compile(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if j.State != StateDone {
			t.Fatalf("job state %s: %s", j.State, j.Error)
		}
		var env report.Envelope
		if err := json.Unmarshal(j.Result, &env); err != nil {
			t.Fatal(err)
		}
		if env.Noise == nil {
			t.Fatal("no noise estimate in envelope")
		}
		return env.Noise
	}

	// Auto on a small Clifford circuit: stabilizer engine, surfaced.
	if est := estimate(Request{QASM: ghzQASM, Seed: 7, Shots: 200}); est.Engine != noise.EngineStab {
		t.Errorf("auto engine on Clifford circuit = %q, want %q", est.Engine, noise.EngineStab)
	}
	// Pinning dense is honoured at the same width.
	if est := estimate(Request{QASM: ghzQASM, Seed: 7, Shots: 200, Engine: noise.EngineDense}); est.Engine != noise.EngineDense {
		t.Errorf("pinned dense engine = %q, want %q", est.Engine, noise.EngineDense)
	}

	// 96 qubits: beyond dense for every backend, fine for the tableau.
	wide := wideGHZQASM(96)
	for _, name := range compiler.Names() {
		est := estimate(Request{QASM: wide, Backend: name, Seed: 7, Shots: 300})
		if est.Engine != noise.EngineStab {
			t.Errorf("backend %s: wide Clifford engine = %q, want %q", name, est.Engine, noise.EngineStab)
		}
		if est.Fidelity <= 0 || est.Fidelity > 1 {
			t.Errorf("backend %s: implausible wide fidelity %v", name, est.Fidelity)
		}
	}
}

// TestHTTPSimulateEndpoint exercises POST /v1/simulate: shots default on,
// the envelope carries the empirical estimate, and malformed noise options
// are client errors.
func TestHTTPSimulateEndpoint(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})

	resp, body := postJSON(t, srv.URL+"/v1/simulate", Request{QASM: ghzQASM, Seed: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate status %d: %s", resp.StatusCode, body)
	}
	var j Job
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatal(err)
	}
	var env report.Envelope
	if err := json.Unmarshal(j.Result, &env); err != nil {
		t.Fatal(err)
	}
	est := env.Noise
	if est == nil {
		t.Fatal("simulate result carries no noise estimate")
	}
	if est.Shots != DefaultSimulateShots {
		t.Errorf("shots = %d, want the %d default", est.Shots, DefaultSimulateShots)
	}
	if est.Analytic <= 0 || est.Survival <= 0 || est.Fidelity < est.Survival {
		t.Errorf("implausible estimate %+v", est)
	}
	if len(est.Channels) == 0 {
		t.Error("estimate reports no channels")
	}

	// Explicit shots override the default.
	resp, body = postJSON(t, srv.URL+"/v1/simulate", Request{QASM: ghzQASM, Seed: 3, Shots: 64})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatal(err)
	}
	env = report.Envelope{}
	if err := json.Unmarshal(j.Result, &env); err != nil {
		t.Fatal(err)
	}
	if env.Noise == nil || env.Noise.Shots != 64 {
		t.Fatalf("estimate = %+v, want 64 shots", env.Noise)
	}

	resp, body = postJSON(t, srv.URL+"/v1/simulate", Request{QASM: ghzQASM, Shots: -5})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative shots: status %d (%s), want 400", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "shots") {
		t.Errorf("error body %q does not name the bad field", body)
	}

	// Simulate honours the compile endpoint's async contract.
	resp, body = postJSON(t, srv.URL+"/v1/simulate?async=1", Request{QASM: ghzQASM, Seed: 3, Shots: 64})
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("async simulate: status %d (%s), want 202", resp.StatusCode, body)
	}
}

// TestSimulateDeterministicEnvelope guards the cache premise for noisy
// results end to end: two cold runs of the same noisy request must encode
// byte-identical estimates (canonical form zeroes only wall-clock fields).
func TestSimulateDeterministicEnvelope(t *testing.T) {
	run := func() *noise.Estimate {
		e := New(Config{Workers: 3})
		defer e.Close()
		j, err := e.Compile(context.Background(), Request{QASM: ghzQASM, Seed: 5, Shots: 2000, NoiseSeed: 9})
		if err != nil {
			t.Fatal(err)
		}
		var env report.Envelope
		if err := json.Unmarshal(j.Result, &env); err != nil {
			t.Fatal(err)
		}
		return env.Noise
	}
	a, b := run(), run()
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Errorf("noisy estimates diverge across engines:\n%s\nvs\n%s", aj, bj)
	}
}
