package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"reflect"
	"testing"
	"time"

	"atomique/internal/noise"
	"atomique/internal/report"
)

// tQASM is ghzQASM with a T gate appended — the minimal non-Clifford
// variant, so engine=auto resolves to the dense engine.
const tQASM = ghzQASM + "t q[0];\n"

// TestSampleEngineKeyAliasing pins the resolved-engine cache-key contract:
// the key records the engine that actually runs, so "auto" (empty) on a
// Clifford circuit and an explicit "stab" pin are one cache entry; on a
// non-Clifford circuit "auto" and an explicit "dense" pin are one entry; and
// dense/stab runs of the same Clifford circuit never alias.
func TestSampleEngineKeyAliasing(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	compile := func(req Request) *Job {
		t.Helper()
		j, err := e.Compile(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if j.State != StateDone {
			t.Fatalf("job state %s: %s", j.State, j.Error)
		}
		return j
	}

	// Clifford circuit: auto resolves to stab, so an explicit stab pin hits.
	if j := compile(Request{QASM: ghzQASM, Seed: 7, Shots: 300}); j.Cached {
		t.Fatal("first auto-engine run was already cached")
	}
	if j := compile(Request{QASM: ghzQASM, Seed: 7, Shots: 300, Engine: noise.EngineStab}); !j.Cached {
		t.Error("explicit engine=stab missed the cache entry the auto run created")
	}
	if j := compile(Request{QASM: ghzQASM, Seed: 7, Shots: 300, Engine: noise.EngineAuto}); !j.Cached {
		t.Error("explicit engine=auto missed the cache entry")
	}
	// A dense pin is a different computation and must not alias.
	if j := compile(Request{QASM: ghzQASM, Seed: 7, Shots: 300, Engine: noise.EngineDense}); j.Cached {
		t.Error("engine=dense aliased the stabilizer cache entry")
	}

	// Non-Clifford circuit: auto resolves to dense, so a dense pin hits.
	if j := compile(Request{QASM: tQASM, Seed: 7, Shots: 300}); j.Cached {
		t.Fatal("first non-Clifford auto run was already cached")
	}
	if j := compile(Request{QASM: tQASM, Seed: 7, Shots: 300, Engine: noise.EngineDense}); !j.Cached {
		t.Error("explicit engine=dense missed the cache entry the auto run created")
	}

	// Sampling and estimation of the same (circuit, options) never alias.
	if j := compile(Request{QASM: ghzQASM, Seed: 7, Shots: 300, Sample: true}); j.Cached {
		t.Error("sample run aliased the estimate cache entry")
	}
}

// TestSampleRequestValidation covers resolve-time rejection of malformed
// sampling options.
func TestSampleRequestValidation(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()
	for name, req := range map[string]Request{
		"sample-no-shots":   {QASM: ghzQASM, Sample: true},
		"orphan-offset":     {QASM: ghzQASM, Shots: 10, ShotOffset: 5},
		"negative-offset":   {QASM: ghzQASM, Shots: 10, Sample: true, ShotOffset: -1},
		"range-over-cap":    {QASM: ghzQASM, Shots: 10, Sample: true, ShotOffset: noise.MaxShotIndex - 5},
		"offset-no-shots":   {QASM: ghzQASM, Sample: true, ShotOffset: 5},
		"offset-not-sample": {QASM: ghzQASM, ShotOffset: 5},
	} {
		if _, err := e.Compile(context.Background(), req); err == nil {
			t.Errorf("%s: accepted", name)
		} else if _, ok := err.(*RequestError); !ok {
			t.Errorf("%s: err = %v, want *RequestError", name, err)
		}
	}
}

// decodeSampleEnvelope unwraps a /v1/sample job response body.
func decodeSampleEnvelope(t *testing.T, body []byte) (*Job, report.Envelope) {
	t.Helper()
	var j Job
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatalf("decode job: %v\n%s", err, body)
	}
	if j.State != StateDone {
		t.Fatalf("job state %s: %s", j.State, j.Error)
	}
	var env report.Envelope
	if err := json.Unmarshal(j.Result, &env); err != nil {
		t.Fatal(err)
	}
	return &j, env
}

// TestHTTPSampleHistogram is the endpoint smoke test: POST /v1/sample
// returns an envelope whose sample histogram accounts for every shot.
func TestHTTPSampleHistogram(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})
	resp, body := postJSON(t, srv.URL+"/v1/sample", Request{QASM: ghzQASM, Seed: 3, Shots: 2000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	_, env := decodeSampleEnvelope(t, body)
	if env.Noise != nil {
		t.Error("sample response carries a fidelity estimate")
	}
	s := env.Sample
	if s == nil {
		t.Fatal("sample response carries no histogram")
	}
	if s.Shots != 2000 || s.Offset != 0 {
		t.Errorf("sample range = %d@%d, want 2000@0", s.Shots, s.Offset)
	}
	if s.Engine != noise.EngineStab {
		t.Errorf("GHZ sampling ran on %q, want the stabilizer engine", s.Engine)
	}
	var total int64
	for bits, c := range s.Counts {
		if len(bits) != s.NSlots {
			t.Errorf("bitstring %q length != %d slots", bits, s.NSlots)
		}
		total += c
	}
	if total != int64(s.Shots-s.LostShots) {
		t.Errorf("histogram totals %d, want shots - lost = %d", total, s.Shots-s.LostShots)
	}
	if s.Distinct != len(s.Counts) {
		t.Errorf("distinct = %d, counts has %d keys", s.Distinct, len(s.Counts))
	}
}

// TestHTTPSampleShardMerge is the resumable-sharding contract over the API:
// two requests covering disjoint shot ranges merge into exactly the
// histogram one full-range request returns, and each shard is its own cache
// entry (a resubmitted shard is a hit).
func TestHTTPSampleShardMerge(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})
	post := func(req Request) (*Job, *noise.SampleResult) {
		t.Helper()
		resp, body := postJSON(t, srv.URL+"/v1/sample", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		j, env := decodeSampleEnvelope(t, body)
		if env.Sample == nil {
			t.Fatal("no sample in envelope")
		}
		return j, env.Sample
	}

	_, full := post(Request{QASM: ghzQASM, NoiseSeed: 11, Shots: 900})
	_, lo := post(Request{QASM: ghzQASM, NoiseSeed: 11, Shots: 400})
	_, hi := post(Request{QASM: ghzQASM, NoiseSeed: 11, Shots: 500, ShotOffset: 400})

	merged, err := noise.MergeSamples(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged, full) {
		t.Errorf("merged shards differ from the full run:\nmerged: %+v\nfull:   %+v", merged, full)
	}

	// Shards are independent cache entries; resubmitting one is a hit.
	if j, _ := post(Request{QASM: ghzQASM, NoiseSeed: 11, Shots: 500, ShotOffset: 400}); !j.Cached {
		t.Error("resubmitted shard missed the cache")
	}
	if j, _ := post(Request{QASM: ghzQASM, NoiseSeed: 11, Shots: 500, ShotOffset: 401}); j.Cached {
		t.Error("shifted shard aliased a cached range")
	}
}

// TestHTTPSampleStream reads the NDJSON stream end to end: per-shot records
// in global order, then a final envelope line whose histogram tallies the
// streamed records exactly.
func TestHTTPSampleStream(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})
	js, _ := json.Marshal(Request{QASM: ghzQASM, NoiseSeed: 4, Shots: 700, ShotOffset: 256})
	resp, err := http.Post(srv.URL+"/v1/sample?stream=1", "application/json", bytes.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q, want application/x-ndjson", ct)
	}
	if resp.Header.Get(TraceHeader) == "" {
		t.Error("stream response carries no trace ID")
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var records []noise.ShotRecord
	var env *report.Envelope
	for sc.Scan() {
		line := sc.Bytes()
		if env != nil {
			t.Fatalf("line after the final envelope: %s", line)
		}
		// The final line is the result envelope; every other line is a shot
		// record. An envelope always carries circuitHash, a record never does.
		var probe struct {
			CircuitHash string `json:"circuitHash"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("undecodable stream line: %s", line)
		}
		if probe.CircuitHash != "" {
			var e report.Envelope
			if err := json.Unmarshal(line, &e); err != nil {
				t.Fatalf("bad envelope line: %v\n%s", err, line)
			}
			env = &e
			continue
		}
		var rec noise.ShotRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("bad record line: %v\n%s", err, line)
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if env == nil || env.Sample == nil {
		t.Fatal("stream ended without a final sample envelope")
	}
	if len(records) != 700 {
		t.Fatalf("streamed %d records, want 700", len(records))
	}
	counts := make(map[string]int64)
	for i, rec := range records {
		if rec.Shot != int64(256+i) {
			t.Fatalf("record %d has shot index %d, want %d (global order)", i, rec.Shot, 256+i)
		}
		if rec.Lost != (rec.Bits == "") {
			t.Errorf("record %d: lost=%v with bits %q", i, rec.Lost, rec.Bits)
		}
		if !rec.Lost {
			counts[rec.Bits]++
		}
	}
	if !reflect.DeepEqual(counts, env.Sample.Counts) {
		t.Errorf("streamed records tally %v, envelope histogram %v", counts, env.Sample.Counts)
	}
}

// TestHTTPSampleStreamDisconnect: a client that walks away mid-stream must
// cancel the job — the worker stops sampling instead of shovelling a million
// shots into a dead connection.
func TestHTTPSampleStreamDisconnect(t *testing.T) {
	e, srv := newTestServer(t, Config{Workers: 1})
	js, _ := json.Marshal(Request{QASM: ghzQASM, NoiseSeed: 8, Shots: 1 << 20})
	resp, err := http.Post(srv.URL+"/v1/sample?stream=1", "application/json", bytes.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	// Read a handful of records to prove the stream is live, then hang up.
	sc := bufio.NewScanner(resp.Body)
	for i := 0; i < 5 && sc.Scan(); i++ {
		var rec noise.ShotRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad stream line: %s", sc.Bytes())
		}
	}
	resp.Body.Close()

	// The disconnect must terminate the job (cancelled via the request
	// context, or failed when the emit write hits the dead socket).
	deadline := time.After(10 * time.Second)
	for {
		st := e.Stats()
		if st.Cancelled+st.Failed >= 1 {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("job still running after client disconnect: %+v", st)
		case <-time.After(10 * time.Millisecond):
		}
	}
}
