package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"atomique/internal/obs"
	"atomique/internal/report"
)

// spanNames flattens a span tree into the set of span names it contains.
func spanNames(s *obs.SpanSnapshot, into map[string]int) {
	if s == nil {
		return
	}
	into[s.Name]++
	for _, c := range s.Children {
		spanNames(c, into)
	}
}

// TestTraceCoversPipelineStages is the tentpole acceptance check: a noisy
// simulate job's envelope carries a trace ID and a span tree covering queue
// wait, cache lookup, every pipeline pass, witness replay, and the
// noise-trajectory stage.
func TestTraceCoversPipelineStages(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	j, err := e.Compile(context.Background(), Request{Benchmark: "H2-4", Seed: 1, Shots: 200})
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateDone {
		t.Fatalf("state = %s (%s)", j.State, j.Error)
	}
	if j.TraceID == "" || !obs.ValidTraceID(j.TraceID) {
		t.Fatalf("job snapshot trace ID %q invalid", j.TraceID)
	}
	var env report.Envelope
	if err := json.Unmarshal(j.Result, &env); err != nil {
		t.Fatal(err)
	}
	if env.TraceID != j.TraceID {
		t.Errorf("envelope traceId = %q, job = %q", env.TraceID, j.TraceID)
	}
	if env.Trace == nil {
		t.Fatal("envelope carries no span tree")
	}
	names := make(map[string]int)
	spanNames(env.Trace, names)
	for _, want := range []string{
		"job", "queue.wait", "cache.lookup", "compile",
		"pass:map-arrays", "pass:map-atoms", "pass:route", "pass:fidelity",
		"witness.replay", "noise.trajectory",
	} {
		if names[want] == 0 {
			t.Errorf("trace missing span %q (have %v)", want, names)
		}
	}

	// A cache hit of the same request gets its own trace: fresh ID, a
	// cache.lookup span, and no compile span (no work happened).
	again, err := e.Compile(context.Background(), Request{Benchmark: "H2-4", Seed: 1, Shots: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("repeat request not cached")
	}
	if again.TraceID == j.TraceID {
		t.Error("cached job reused the original trace ID")
	}
	var cachedEnv report.Envelope
	if err := json.Unmarshal(again.Result, &cachedEnv); err != nil {
		t.Fatal(err)
	}
	cachedNames := make(map[string]int)
	spanNames(cachedEnv.Trace, cachedNames)
	if cachedNames["cache.lookup"] == 0 {
		t.Errorf("cached job trace missing cache.lookup: %v", cachedNames)
	}
	if cachedNames["compile"] != 0 {
		t.Errorf("cached job trace claims a compile happened: %v", cachedNames)
	}
}

// TestMetricsEndpoint exercises GET /metrics after real traffic: the output
// must parse as valid Prometheus exposition and contain the per
// backend x class latency percentiles plus the queue/cache/worker gauges.
func TestMetricsEndpoint(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})
	if resp, body := postJSON(t, srv.URL+"/v1/compile", Request{Benchmark: "H2-4", Seed: 1}); resp.StatusCode != http.StatusOK {
		t.Fatalf("compile status = %d, body %s", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, srv.URL+"/v1/simulate", Request{Benchmark: "H2-4", Seed: 1, Shots: 128}); resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate status = %d, body %s", resp.StatusCode, body)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	n, err := obs.ParseExposition(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	if n == 0 {
		t.Fatal("exposition carries no samples")
	}
	for _, want := range []string{
		`atomique_request_duration_seconds_p50{backend="atomique",class="compile"}`,
		`atomique_request_duration_seconds_p90{backend="atomique",class="simulate"}`,
		`atomique_request_duration_seconds_p99{backend="atomique",class="compile"}`,
		`atomique_requests_total{backend="atomique",class="simulate",outcome="done"}`,
		`atomique_queue_wait_seconds_count`,
		`atomique_cache_events_total{event="miss"}`,
		`atomique_pass_seconds_total{pass="route"}`,
		`atomique_trajectory_shots_total 128`,
		"atomique_queue_depth", "atomique_queue_capacity",
		"atomique_queue_depth_interactive", "atomique_queue_depth_batch",
		"atomique_workers ", "atomique_workers_busy",
		"atomique_workers_target", "atomique_busy_seconds",
		"atomique_panics_total 0",
		"atomique_cache_entries", "atomique_uptime_seconds",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestTracesEndpointAndHeader covers client-supplied X-Trace-Id propagation
// (header in, header out, envelope, /v1/traces lookup) and rejection of
// malformed IDs.
func TestTracesEndpointAndHeader(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})

	js, err := json.Marshal(Request{Benchmark: "H2-4", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/compile", bytes.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TraceHeader, "my-trace-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(TraceHeader); got != "my-trace-01" {
		t.Errorf("response %s = %q, want my-trace-01", TraceHeader, got)
	}
	var jv Job
	if err := json.Unmarshal(body, &jv); err != nil {
		t.Fatal(err)
	}
	if jv.TraceID != "my-trace-01" {
		t.Errorf("job traceId = %q, want my-trace-01", jv.TraceID)
	}

	// The finished trace is browsable, individually and in the listing.
	var tv struct {
		TraceID string            `json:"traceId"`
		Spans   *obs.SpanSnapshot `json:"spans"`
	}
	if resp := getJSON(t, srv.URL+"/v1/traces/my-trace-01", &tv); resp.StatusCode != http.StatusOK {
		t.Fatalf("trace get status = %d", resp.StatusCode)
	}
	if tv.TraceID != "my-trace-01" || tv.Spans == nil || tv.Spans.Name != "job" {
		t.Errorf("trace payload wrong: %+v", tv)
	}
	var listing []struct {
		TraceID string `json:"traceId"`
	}
	if resp := getJSON(t, srv.URL+"/v1/traces?limit=10", &listing); resp.StatusCode != http.StatusOK {
		t.Fatalf("trace list status = %d", resp.StatusCode)
	}
	found := false
	for _, item := range listing {
		found = found || item.TraceID == "my-trace-01"
	}
	if !found {
		t.Errorf("trace listing misses my-trace-01: %+v", listing)
	}
	if resp := getJSON(t, srv.URL+"/v1/traces/nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace status = %d, want 404", resp.StatusCode)
	}

	// A malformed client trace ID is ignored; the service mints its own.
	req2, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/compile", bytes.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set(TraceHeader, "has spaces and \"quotes\"")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	var jv2 Job
	if err := json.Unmarshal(body2, &jv2); err != nil {
		t.Fatal(err)
	}
	if jv2.TraceID == "" || !obs.ValidTraceID(jv2.TraceID) {
		t.Errorf("minted trace ID %q invalid", jv2.TraceID)
	}
}

// TestStatsCarriesLatencies checks the /v1/stats extension: per
// backend/class latency quantiles and the busy-worker gauge.
func TestStatsCarriesLatencies(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	if _, err := e.Compile(context.Background(), Request{Benchmark: "H2-4", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	q, ok := st.Latencies["atomique/compile"]
	if !ok {
		t.Fatalf("stats latencies missing atomique/compile: %v", st.Latencies)
	}
	if q.Count != 1 || q.Sum <= 0 || q.P50 <= 0 {
		t.Errorf("latency summary implausible: %+v", q)
	}
	if st.WorkersBusy < 0 || st.WorkersBusy > st.Workers {
		t.Errorf("workersBusy = %d out of range", st.WorkersBusy)
	}
}
