package service

import (
	"log/slog"
	"time"

	"atomique/internal/obs"
)

// Request classes: compile jobs and noisy-simulate jobs have wildly
// different cost profiles, so every latency metric is keyed by class — the
// split the ROADMAP's saturation-aware autoscaler needs to model them
// separately.
const (
	ClassCompile  = "compile"
	ClassSimulate = "simulate"
)

// Job outcome labels for the request counter.
const (
	outcomeDone      = "done"
	outcomeFailed    = "failed"
	outcomeCancelled = "cancelled"
	outcomeRejected  = "rejected"
)

// Cache event labels: a miss owns the compilation, a hit returns a finished
// entry, and a coalesce joined an identical in-flight computation (counted in
// addition to the hit it eventually observes).
const (
	cacheHit      = "hit"
	cacheMiss     = "miss"
	cacheCoalesce = "coalesce"
)

// telemetry is the engine's observability bundle: the metrics registry
// behind GET /metrics, the trace ring buffer behind GET /v1/traces, and the
// structured logger every job lifecycle event writes to (correlated by trace
// ID). One instance per engine — metrics are per-engine, not process-global,
// so tests and in-process engines never interfere.
type telemetry struct {
	registry *obs.Registry
	traces   *obs.TraceStore
	log      *slog.Logger

	// requests counts finished jobs by backend x class x outcome
	// (done/failed/cancelled/rejected).
	requests *obs.CounterVec
	// latency is end-to-end job time (submit -> finish) for successful jobs,
	// by backend x class — the histogram the autoscaler scrapes percentiles
	// from.
	latency *obs.HistogramVec
	// queueWait is time from submission to a worker picking the job up.
	queueWait *obs.Histogram
	// cacheEvents counts hit/miss/coalesce on the result cache.
	cacheEvents *obs.CounterVec
	// passSeconds accumulates per-pass compile seconds (the /v1/stats
	// PassSeconds map, as a scrapeable counter); passLatency is the same
	// signal as a histogram for per-pass percentiles.
	passSeconds *obs.CounterVec
	passLatency *obs.HistogramVec
	// shots counts trajectory shots executed (throughput via rate()).
	shots *obs.Counter
}

// newTelemetry builds the registry and registers every engine metric,
// including the gauge closures that read live engine state at scrape time.
func newTelemetry(e *Engine, logger *slog.Logger, traceBuffer int) *telemetry {
	if logger == nil {
		logger = obs.DiscardLogger()
	}
	r := obs.NewRegistry()
	t := &telemetry{
		registry: r,
		traces:   obs.NewTraceStore(traceBuffer),
		log:      logger,
		requests: r.CounterVec("atomique_requests_total",
			"Finished compile-service jobs by backend, request class, and outcome.",
			"backend", "class", "outcome"),
		latency: r.HistogramVec("atomique_request_duration_seconds",
			"End-to-end job latency (submit to finish) for successful jobs.",
			nil, "backend", "class"),
		queueWait: r.Histogram("atomique_queue_wait_seconds",
			"Time jobs spent queued before a worker picked them up.", nil),
		cacheEvents: r.CounterVec("atomique_cache_events_total",
			"Result-cache events: hit, miss, or coalesce (joined an in-flight compile).",
			"event"),
		passSeconds: r.CounterVec("atomique_pass_seconds_total",
			"Cumulative wall seconds per compile-pipeline pass across executed compilations.",
			"pass"),
		passLatency: r.HistogramVec("atomique_pass_duration_seconds",
			"Per-execution wall time of each compile-pipeline pass.",
			nil, "pass"),
		shots: r.Counter("atomique_trajectory_shots_total",
			"Monte-Carlo trajectory shots executed by noisy-simulate jobs."),
	}
	r.GaugeFunc("atomique_queue_depth",
		"Jobs waiting in the bounded queue.",
		func() float64 { return float64(len(e.queue)) })
	r.GaugeFunc("atomique_queue_capacity",
		"Capacity of the bounded job queue.",
		func() float64 { return float64(e.cfg.QueueSize) })
	r.GaugeFunc("atomique_workers",
		"Size of the worker pool.",
		func() float64 { return float64(e.cfg.Workers) })
	r.GaugeFunc("atomique_workers_busy",
		"Workers currently executing a job.",
		func() float64 { return float64(e.busy.Load()) })
	r.GaugeFunc("atomique_cache_entries",
		"Entries in the content-addressed result cache (including in-flight).",
		func() float64 { return float64(e.cache.len()) })
	r.GaugeFunc("atomique_traces_stored",
		"Finished traces held in the /v1/traces ring buffer.",
		func() float64 { return float64(t.traces.Len()) })
	r.GaugeFunc("atomique_uptime_seconds",
		"Seconds since the engine started.",
		func() float64 { return time.Since(e.start).Seconds() })
	return t
}

// classOf maps compile options to the request class.
func classOf(noisyShots int) string {
	if noisyShots > 0 {
		return ClassSimulate
	}
	return ClassCompile
}
