package service

import (
	"log/slog"
	"time"

	"atomique/internal/admission"
	"atomique/internal/compiler"
	"atomique/internal/obs"
)

// Request classes: compile jobs and noisy-simulate jobs have wildly
// different cost profiles, so every latency metric is keyed by class — the
// split the ROADMAP's saturation-aware autoscaler needs to model them
// separately.
const (
	ClassCompile  = "compile"
	ClassSimulate = "simulate"
	ClassSample   = "sample"
)

// Job outcome labels for the request counter.
const (
	outcomeDone      = "done"
	outcomeFailed    = "failed"
	outcomeCancelled = "cancelled"
	outcomeRejected  = "rejected"
)

// Cache event labels: a miss owns the compilation, a hit returns a finished
// entry, and a coalesce joined an identical in-flight computation (counted in
// addition to the hit it eventually observes).
const (
	cacheHit      = "hit"
	cacheMiss     = "miss"
	cacheCoalesce = "coalesce"
)

// Admission decision labels: admitted into a queue, shed by the controller
// before the queue saturates, or rejected because the queue was full.
const (
	admissionAdmitted  = "admitted"
	admissionShed      = "shed"
	admissionQueueFull = "queue_full"
)

// telemetry is the engine's observability bundle: the metrics registry
// behind GET /metrics, the trace ring buffer behind GET /v1/traces, and the
// structured logger every job lifecycle event writes to (correlated by trace
// ID). One instance per engine — metrics are per-engine, not process-global,
// so tests and in-process engines never interfere.
type telemetry struct {
	registry *obs.Registry
	traces   *obs.TraceStore
	log      *slog.Logger

	// requests counts finished jobs by backend x class x outcome
	// (done/failed/cancelled/rejected).
	requests *obs.CounterVec
	// latency is end-to-end job time (submit -> finish) for successful jobs,
	// by backend x class — the histogram the autoscaler scrapes percentiles
	// from.
	latency *obs.HistogramVec
	// queueWait is time from submission to a worker picking the job up.
	queueWait *obs.Histogram
	// cacheEvents counts hit/miss/coalesce on the result cache.
	cacheEvents *obs.CounterVec
	// passSeconds accumulates per-pass compile seconds (the /v1/stats
	// PassSeconds map, as a scrapeable counter); passLatency is the same
	// signal as a histogram for per-pass percentiles.
	passSeconds *obs.CounterVec
	passLatency *obs.HistogramVec
	// shots counts trajectory shots executed (throughput via rate()).
	shots *obs.Counter
	// sampledShots counts measurement shots sampled by /v1/sample jobs;
	// streamedShots counts the subset delivered live over streaming
	// connections (streamed ≤ sampled; the rest were histogram-only).
	sampledShots  *obs.Counter
	streamedShots *obs.Counter
	// panicsTotal counts backend panics recovered by workers.
	panicsTotal *obs.Counter
	// admissionDecisions counts submissions by priority class x decision
	// (admitted / shed / queue_full) — the controller's visible effect.
	admissionDecisions *obs.CounterVec
}

// newTelemetry builds the registry and registers every engine metric,
// including the gauge closures that read live engine state at scrape time.
func newTelemetry(e *Engine, logger *slog.Logger, traceBuffer int) *telemetry {
	if logger == nil {
		logger = obs.DiscardLogger()
	}
	r := obs.NewRegistry()
	t := &telemetry{
		registry: r,
		traces:   obs.NewTraceStore(traceBuffer),
		log:      logger,
		requests: r.CounterVec("atomique_requests_total",
			"Finished compile-service jobs by backend, request class, and outcome.",
			"backend", "class", "outcome"),
		latency: r.HistogramVec("atomique_request_duration_seconds",
			"End-to-end job latency (submit to finish) for successful jobs.",
			nil, "backend", "class"),
		queueWait: r.Histogram("atomique_queue_wait_seconds",
			"Time jobs spent queued before a worker picked them up.", nil),
		cacheEvents: r.CounterVec("atomique_cache_events_total",
			"Result-cache events: hit, miss, or coalesce (joined an in-flight compile).",
			"event"),
		passSeconds: r.CounterVec("atomique_pass_seconds_total",
			"Cumulative wall seconds per compile-pipeline pass across executed compilations.",
			"pass"),
		passLatency: r.HistogramVec("atomique_pass_duration_seconds",
			"Per-execution wall time of each compile-pipeline pass.",
			nil, "pass"),
		shots: r.Counter("atomique_trajectory_shots_total",
			"Monte-Carlo trajectory shots executed by noisy-simulate jobs."),
		sampledShots: r.Counter("atomique_sampled_shots_total",
			"Measurement shots sampled by /v1/sample jobs."),
		streamedShots: r.Counter("atomique_streamed_shots_total",
			"Sampled shot records delivered over live /v1/sample?stream=1 connections."),
		panicsTotal: r.Counter("atomique_panics_total",
			"Backend panics recovered by workers (the job failed, the worker survived)."),
		admissionDecisions: r.CounterVec("atomique_admission_decisions_total",
			"Submission decisions by priority class: admitted, shed (admission control), or queue_full.",
			"priority", "decision"),
	}
	r.GaugeFunc("atomique_queue_depth",
		"Jobs waiting in the bounded queues (both priority classes).",
		func() float64 {
			return float64(len(e.queues[admission.Interactive]) + len(e.queues[admission.Batch]))
		})
	r.GaugeFunc("atomique_queue_depth_interactive",
		"Jobs waiting in the interactive queue.",
		func() float64 { return float64(len(e.queues[admission.Interactive])) })
	r.GaugeFunc("atomique_queue_depth_batch",
		"Jobs waiting in the batch queue.",
		func() float64 { return float64(len(e.queues[admission.Batch])) })
	r.GaugeFunc("atomique_queue_capacity",
		"Capacity of each bounded priority queue.",
		func() float64 { return float64(e.cfg.QueueSize) })
	r.GaugeFunc("atomique_workers",
		"Live workers in the adaptive pool (including draining retirees).",
		func() float64 { return float64(e.workersLive.Load()) })
	r.GaugeFunc("atomique_workers_target",
		"Worker-pool target set by Resize or the admission controller's actuator.",
		func() float64 { return float64(e.workersTarget.Load()) })
	r.GaugeFunc("atomique_workers_busy",
		"Workers currently executing a job.",
		func() float64 { return float64(e.busy.Load()) })
	r.GaugeFunc("atomique_busy_seconds",
		"Cumulative wall seconds workers spent executing jobs.",
		func() float64 { return e.busySeconds.Value() })
	r.GaugeFunc("atomique_admission_saturation",
		"Predicted batch queue wait over the queue-wait objective (>1 sheds batch).",
		func() float64 {
			if t := e.admTick.Load(); t != nil {
				return t.Saturation
			}
			return 0
		})
	r.GaugeFunc("atomique_admission_predicted_wait_seconds",
		"Predicted queue wait for a new interactive submission.",
		func() float64 {
			if t := e.admTick.Load(); t != nil {
				return t.InteractiveWait.Seconds()
			}
			return 0
		})
	r.GaugeFunc("atomique_admission_shed_batch",
		"1 while the admission controller sheds batch submissions.",
		func() float64 {
			if t := e.admTick.Load(); t != nil && t.ShedBatch {
				return 1
			}
			return 0
		})
	r.GaugeFunc("atomique_admission_shed_interactive",
		"1 while the admission controller sheds interactive submissions.",
		func() float64 {
			if t := e.admTick.Load(); t != nil && t.ShedInteractive {
				return 1
			}
			return 0
		})
	r.GaugeFunc("atomique_cache_entries",
		"Entries in the content-addressed result cache (including in-flight).",
		func() float64 { return float64(e.cache.len()) })
	r.GaugeFunc("atomique_traces_stored",
		"Finished traces held in the /v1/traces ring buffer.",
		func() float64 { return float64(t.traces.Len()) })
	r.GaugeFunc("atomique_traces_pinned",
		"Traces held in the ring's reserved segment (errors, sheds, slow-tail outliers).",
		func() float64 { return float64(t.traces.Stats().PinnedStored) })
	evicted := r.CounterFuncVec("atomique_traces_evicted_total",
		"Traces aged out of the ring, by segment (sampled or pinned).", "segment")
	evicted.Register(func() float64 { return float64(t.traces.Stats().EvictedSampled) }, "sampled")
	evicted.Register(func() float64 { return float64(t.traces.Stats().EvictedPinned) }, "pinned")
	r.CounterFunc("atomique_traces_sampled_out_total",
		"Fast successful traces dropped by the sampling coin before storage.",
		func() float64 { return float64(t.traces.Stats().SampledOut) })
	r.GaugeFunc("atomique_uptime_seconds",
		"Seconds since the engine started.",
		func() float64 { return time.Since(e.start).Seconds() })
	return t
}

// classOf maps compile options to the request class.
func classOf(opts compiler.Options) string {
	switch {
	case opts.SampleBits:
		return ClassSample
	case opts.NoisyShots > 0:
		return ClassSimulate
	default:
		return ClassCompile
	}
}
