package service

import (
	"container/list"
	"sync"

	"atomique/internal/circuit"
)

// fpMemoLimit bounds the fingerprint memo. Each entry is a pointer and a
// 64-hex string; the limit exists because long-running in-process callers
// submitting a stream of fresh circuits would otherwise grow the memo (and
// pin the circuits themselves) without bound.
const fpMemoLimit = 512

// fpMemo is a bounded LRU of circuit fingerprints keyed by circuit pointer.
// Circuits must be treated as immutable once submitted (same contract the
// old unbounded memo relied on).
type fpMemo struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used; values are *fpEntry
	items map[*circuit.Circuit]*list.Element
}

type fpEntry struct {
	circ *circuit.Circuit
	fp   string
}

func (m *fpMemo) init(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	m.cap = capacity
	m.ll = list.New()
	m.items = make(map[*circuit.Circuit]*list.Element)
}

// fingerprint returns the memoised fingerprint for circ, computing and
// inserting it (evicting the least recently used entry when full) on a miss.
// The hash itself is computed outside the lock; a racing duplicate compute
// is harmless (fingerprints are deterministic).
func (m *fpMemo) fingerprint(circ *circuit.Circuit) string {
	m.mu.Lock()
	if el, ok := m.items[circ]; ok {
		m.ll.MoveToFront(el)
		fp := el.Value.(*fpEntry).fp
		m.mu.Unlock()
		return fp
	}
	m.mu.Unlock()
	fp := circ.Fingerprint()
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.items[circ]; !ok {
		m.items[circ] = m.ll.PushFront(&fpEntry{circ: circ, fp: fp})
		for m.ll.Len() > m.cap {
			back := m.ll.Back()
			m.ll.Remove(back)
			delete(m.items, back.Value.(*fpEntry).circ)
		}
	}
	return fp
}

// len reports the entry count (tests assert the bound holds).
func (m *fpMemo) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ll.Len()
}
