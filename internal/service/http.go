package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"atomique/internal/bench"
	"atomique/internal/compiler"
	"atomique/internal/obs"
	"atomique/internal/obs/slo"
)

// maxBodyBytes bounds request bodies (inline QASM included).
const maxBodyBytes = 8 << 20

// TraceHeader is the request/response header carrying the trace ID. Clients
// may supply their own (validated by obs.ValidTraceID; invalid values are
// ignored and a fresh ID minted); compile responses echo the job's ID back.
const TraceHeader = "X-Trace-Id"

// errorBody is the JSON error payload of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
	// Line is the QASM source line for parse errors, omitted otherwise.
	Line int `json:"line,omitempty"`
	// RetryAfterSeconds mirrors the Retry-After header on 429/503 responses,
	// so JSON-only clients get the backoff advice too.
	RetryAfterSeconds int `json:"retryAfterSeconds,omitempty"`
}

// batchRequest is the POST /v1/compile/batch body.
type batchRequest struct {
	Requests []Request `json:"requests"`
}

// batchResponse pairs each batch item with its job outcome.
type batchResponse struct {
	Jobs []*Job `json:"jobs"`
}

// benchmarkInfo is one GET /v1/benchmarks entry.
type benchmarkInfo struct {
	Name    string `json:"name"`
	Type    string `json:"type"`
	NQubits int    `json:"nQubits"`
	N2Q     int    `json:"n2Q"`
	N1Q     int    `json:"n1Q"`
}

// DefaultSimulateShots is the trajectory count POST /v1/simulate uses when a
// request leaves shots unset.
const DefaultSimulateShots = 1024

// Handler returns the service's HTTP API:
//
//	POST   /v1/compile           compile one request (?async=1 to enqueue only)
//	POST   /v1/simulate          compile + Monte-Carlo noisy-shot simulation
//	POST   /v1/sample            compile + measurement sampling (?stream=1 for NDJSON shots)
//	POST   /v1/compile/batch     compile many requests concurrently
//	GET    /v1/jobs/{id}         job status and result
//	DELETE /v1/jobs/{id}         cancel a queued/running job
//	POST   /v1/jobs/{id}/cancel  same, for clients without DELETE
//	GET    /v1/backends          registered compiler backends + capabilities
//	GET    /v1/benchmarks        named benchmark registry
//	GET    /v1/healthz           liveness probe
//	GET    /v1/stats             queue/worker/cache counters
//	GET    /v1/traces            recent request traces (?limit=N)
//	GET    /v1/traces/{id}       one trace by ID
//	GET    /v1/slo               burn-rate state of every objective
//	GET    /v1/debug/bundles     flight-recorder bundle manifests
//	POST   /v1/debug/bundles     trigger a manual bundle capture (?reason=...)
//	GET    /v1/debug/bundles/{id}        one bundle manifest
//	GET    /v1/debug/bundles/{id}/{file} download one bundle file
//	GET    /metrics              Prometheus text exposition (OpenMetrics with
//	                             exemplars when Accept asks for it)
//
// Every request passes through the trace middleware: an X-Trace-Id request
// header (when valid) names the job's trace, compile responses echo the
// job's trace ID back in the same header, and each request is access-logged.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", e.handleCompile)
	mux.HandleFunc("POST /v1/simulate", e.handleSimulate)
	mux.HandleFunc("POST /v1/sample", e.handleSample)
	mux.HandleFunc("POST /v1/compile/batch", e.handleBatch)
	mux.HandleFunc("GET /v1/jobs/{id}", e.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", e.handleJobCancel)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", e.handleJobCancel)
	mux.HandleFunc("GET /v1/backends", e.handleBackends)
	mux.HandleFunc("GET /v1/benchmarks", e.handleBenchmarks)
	mux.HandleFunc("GET /v1/healthz", e.handleHealthz)
	mux.HandleFunc("GET /v1/stats", e.handleStats)
	mux.HandleFunc("GET /v1/traces", e.handleTraces)
	mux.HandleFunc("GET /v1/traces/{id}", e.handleTraceGet)
	mux.HandleFunc("GET /v1/slo", e.handleSLO)
	mux.HandleFunc("GET /v1/debug/bundles", e.handleBundleList)
	mux.HandleFunc("POST /v1/debug/bundles", e.handleBundleTrigger)
	mux.HandleFunc("GET /v1/debug/bundles/{id}", e.handleBundleGet)
	mux.HandleFunc("GET /v1/debug/bundles/{id}/{file}", e.handleBundleFile)
	mux.Handle("GET /metrics", e.MetricsHandler())
	return e.instrument(mux)
}

// MetricsHandler serves the metrics exposition alone; cmd/atomiqued also
// mounts it on the ops listener next to pprof so scrapes need not share the
// API port. Clients that accept application/openmetrics-text get the
// OpenMetrics form — trace-ID exemplars on histogram buckets and a
// terminating # EOF — everyone else the classic Prometheus text format.
func (e *Engine) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			e.tel.registry.WriteOpenMetrics(w) //nolint:errcheck // client gone; nothing to do
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		e.tel.registry.WritePrometheus(w) //nolint:errcheck // client gone; nothing to do
	})
}

// statusWriter records the response code for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps the API mux with trace-ID extraction and access logging.
func (e *Engine) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if id := r.Header.Get(TraceHeader); id != "" && obs.ValidTraceID(id) {
			r = r.WithContext(obs.ContextWithTraceID(r.Context(), id))
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		e.tel.log.Info("http request", "method", r.Method, "path", r.URL.Path,
			"status", sw.status, "seconds", time.Since(start).Seconds())
	})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

// writeError maps service errors to HTTP statuses: RequestError -> 400,
// overload (admission shed or queue full) -> 429 with Retry-After, engine
// shutdown -> 503 with Retry-After, everything else -> 500. Shutdown is 503
// rather than 500 because it is the load balancer's cue to route elsewhere,
// not a server bug.
func writeError(w http.ResponseWriter, err error) {
	var re *RequestError
	var oe *OverloadedError
	switch {
	case errors.As(err, &re):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: re.Msg, Line: re.Line})
	case errors.As(err, &oe):
		writeRetryable(w, http.StatusTooManyRequests, err.Error(), oe.RetryAfter)
	case errors.Is(err, ErrQueueFull):
		writeRetryable(w, http.StatusTooManyRequests, err.Error(), time.Second)
	case errors.Is(err, ErrClosed):
		writeRetryable(w, http.StatusServiceUnavailable, err.Error(), time.Second)
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

// writeRetryable writes a 429/503 with a Retry-After header (whole seconds,
// ceiling, at least 1 — the header's granularity) and the same advice in the
// body.
func writeRetryable(w http.ResponseWriter, status int, msg string, after time.Duration) {
	secs := int(math.Ceil(after.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, status, errorBody{Error: msg, RetryAfterSeconds: secs})
}

// jobStatus picks the response code for a finished job: failed compilations
// are 422 (the request was well-formed but uncompilable), cancellations 200
// with state "cancelled", successes 200.
func jobStatus(j *Job) int {
	if j.State == StateFailed {
		return http.StatusUnprocessableEntity
	}
	return http.StatusOK
}

func decodeRequest(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("invalid request body: %v", err)})
		return false
	}
	return true
}

func (e *Engine) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req Request
	if !decodeRequest(w, r, &req) {
		return
	}
	e.serveCompile(w, r, req)
}

// serveCompile runs one decoded request through the synchronous compile
// path, honouring ?async=1 — shared by /v1/compile and /v1/simulate.
func (e *Engine) serveCompile(w http.ResponseWriter, r *http.Request, req Request) {
	if v := r.URL.Query().Get("async"); v != "" {
		async, err := strconv.ParseBool(v)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad async value %q", v)})
			return
		}
		if async {
			jv, err := e.Submit(r.Context(), req)
			if err != nil {
				writeError(w, err)
				return
			}
			w.Header().Set(TraceHeader, jv.TraceID)
			writeJSON(w, http.StatusAccepted, jv)
			return
		}
	}
	jv, err := e.Compile(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set(TraceHeader, jv.TraceID)
	writeJSON(w, jobStatus(jv), jv)
}

// handleSimulate is the noisy-shot workload entry point: compile (through
// the cache, like every job) and replay the program under the sampled noise
// model. It is POST /v1/compile with shots defaulted on — including the
// ?async=1 contract — so clients that only care about empirical fidelity
// need not know the option plumbing.
func (e *Engine) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req Request
	if !decodeRequest(w, r, &req) {
		return
	}
	if req.Shots == 0 {
		req.Shots = DefaultSimulateShots
	}
	e.serveCompile(w, r, req)
}

// handleBatch compiles every request concurrently through the worker pool.
// Enqueueing is flow-controlled (it waits for queue space rather than
// rejecting), so one batch may be larger than the queue; items share the
// cache, so duplicates inside a batch compile once.
func (e *Engine) handleBatch(w http.ResponseWriter, r *http.Request) {
	var breq batchRequest
	if !decodeRequest(w, r, &breq) {
		return
	}
	if len(breq.Requests) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "batch needs at least one request"})
		return
	}
	// Resolve everything first so a malformed item fails the batch before
	// any work is enqueued. Batch items default to the batch priority class:
	// they flow-control rather than fail fast, so they should queue behind
	// interactive compiles, not ahead of them.
	tasks := make([]task, len(breq.Requests))
	for i, req := range breq.Requests {
		if req.Priority == "" {
			req.Priority = PriorityBatch
		}
		t, err := e.resolve(req)
		if err != nil {
			var re *RequestError
			if errors.As(err, &re) {
				re.Msg = fmt.Sprintf("request %d: %s", i, re.Msg)
			}
			writeError(w, err)
			return
		}
		tasks[i] = t
	}
	jobs := make([]*job, 0, len(tasks))
	// If the client disconnects (or a submit fails) mid-batch, cancel every
	// job already admitted — nobody will read the results.
	abandon := func() {
		for _, j := range jobs {
			j.cancel()
		}
	}
	for _, t := range tasks {
		j, err := e.submitBlocking(r.Context(), t)
		if err != nil {
			abandon()
			writeError(w, err)
			return
		}
		jobs = append(jobs, j)
	}
	resp := batchResponse{Jobs: make([]*Job, len(jobs))}
	for i, j := range jobs {
		select {
		case <-j.done:
		case <-r.Context().Done():
			abandon()
			writeError(w, r.Context().Err())
			return
		}
		resp.Jobs[i] = e.snapshot(j)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (e *Engine) handleJobGet(w http.ResponseWriter, r *http.Request) {
	jv, ok := e.JobByID(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, jv)
}

func (e *Engine) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ok, err := e.Cancel(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	if err != nil {
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
		return
	}
	jv, _ := e.JobByID(id)
	writeJSON(w, http.StatusOK, jv)
}

// computeBenchmarkInfos builds the /v1/benchmarks payload. It runs once, at
// engine construction (the registry is immutable after init and ComputeStats
// over the full suite is too costly per request), so the first scrape after
// boot is as cheap as the thousandth.
func computeBenchmarkInfos() []benchmarkInfo {
	suite := bench.Table2Suite()
	infos := make([]benchmarkInfo, len(suite))
	for i, b := range suite {
		s := b.Circ.ComputeStats()
		infos[i] = benchmarkInfo{Name: b.Name, Type: b.Type, NQubits: s.Qubits, N2Q: s.Num2Q, N1Q: s.Num1Q}
	}
	return infos
}

func (e *Engine) handleBenchmarks(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, e.benchInfos)
}

// traceView is one GET /v1/traces entry: the trace ID plus its span tree.
type traceView struct {
	TraceID string            `json:"traceId"`
	Spans   *obs.SpanSnapshot `json:"spans"`
}

func traceViewOf(tr *obs.Trace) traceView {
	return traceView{TraceID: tr.ID, Spans: tr.Root.Snapshot()}
}

// handleTraces lists recently finished traces, newest first (?limit=N,
// default 50, bounded by the engine's trace ring).
func (e *Engine) handleTraces(w http.ResponseWriter, r *http.Request) {
	limit := 50
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad limit %q", v)})
			return
		}
		limit = n
	}
	recent := e.tel.traces.Recent(limit)
	views := make([]traceView, len(recent))
	for i, tr := range recent {
		views[i] = traceViewOf(tr)
	}
	writeJSON(w, http.StatusOK, views)
}

func (e *Engine) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	tr, ok := e.tel.traces.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown or evicted trace"})
		return
	}
	writeJSON(w, http.StatusOK, traceViewOf(tr))
}

// backendInfo is one GET /v1/backends entry.
type backendInfo struct {
	Name         string                `json:"name"`
	Default      bool                  `json:"default,omitempty"`
	Capabilities compiler.Capabilities `json:"capabilities"`
}

// handleBackends lists the registered compiler backends; clients pick one
// via the request "backend" field.
func (e *Engine) handleBackends(w http.ResponseWriter, _ *http.Request) {
	backends := compiler.List()
	infos := make([]backendInfo, len(backends))
	for i, b := range backends {
		infos[i] = backendInfo{
			Name:         b.Name(),
			Default:      b.Name() == DefaultBackend,
			Capabilities: b.Capabilities(),
		}
	}
	writeJSON(w, http.StatusOK, infos)
}

func (e *Engine) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// sloResponse is the GET /v1/slo payload.
type sloResponse struct {
	// Worst is the most severe objective state: ok, warn, or page.
	Worst      string                `json:"worst"`
	Objectives []slo.ObjectiveStatus `json:"objectives"`
}

func (e *Engine) handleSLO(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, sloResponse{
		Worst:      e.slo.WorstState().String(),
		Objectives: e.slo.Status(),
	})
}

// bundlesDisabled answers for every bundle endpoint when the flight recorder
// is off (no -bundle-dir).
func (e *Engine) bundlesDisabled(w http.ResponseWriter) bool {
	if e.recorder == nil {
		writeJSON(w, http.StatusNotFound,
			errorBody{Error: "flight recorder disabled (start with -bundle-dir)"})
		return true
	}
	return false
}

func (e *Engine) handleBundleList(w http.ResponseWriter, _ *http.Request) {
	if e.bundlesDisabled(w) {
		return
	}
	writeJSON(w, http.StatusOK, e.recorder.List())
}

// handleBundleTrigger starts a manual capture (POST /v1/debug/bundles,
// ?reason=... optional). 202 with the bundle ID when a capture starts; 409
// when one is already in flight.
func (e *Engine) handleBundleTrigger(w http.ResponseWriter, r *http.Request) {
	if e.bundlesDisabled(w) {
		return
	}
	reason := r.URL.Query().Get("reason")
	if reason == "" {
		reason = "api"
	}
	id, started := e.triggerBundle("manual", reason, true)
	if !started {
		writeJSON(w, http.StatusConflict, errorBody{Error: "a bundle capture is already in flight"})
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
}

func (e *Engine) handleBundleGet(w http.ResponseWriter, r *http.Request) {
	if e.bundlesDisabled(w) {
		return
	}
	meta, ok := e.recorder.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown bundle"})
		return
	}
	writeJSON(w, http.StatusOK, meta)
}

func (e *Engine) handleBundleFile(w http.ResponseWriter, r *http.Request) {
	if e.bundlesDisabled(w) {
		return
	}
	p, ok := e.recorder.FilePath(r.PathValue("id"), r.PathValue("file"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown bundle or file"})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeFile(w, r, p)
}

func (e *Engine) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, e.Stats())
}
