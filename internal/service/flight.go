package service

import (
	"context"
	"encoding/json"
	"os"
	"time"

	"atomique/internal/admission"
	"atomique/internal/obs"
	"atomique/internal/obs/slo"
)

// BundleConfig configures the flight recorder. An empty Dir disables it
// (the /v1/debug/bundles endpoints answer 404).
type BundleConfig struct {
	// Dir is the on-disk bundle ring root.
	Dir string
	// MaxBundles bounds the ring (default 8; oldest bundles are deleted).
	MaxBundles int
	// Debounce spaces automatic captures (default 60s); manual triggers via
	// POST /v1/debug/bundles bypass it.
	Debounce time.Duration
	// CPUProfile is the bundle's CPU-profile window (default 1s).
	CPUProfile time.Duration
}

// jsonCollector captures one JSON-marshalable snapshot as a bundle file.
func jsonCollector(name string, snap func() any) obs.Collector {
	return obs.Collector{Name: name, Collect: func(_ context.Context, w *os.File) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(snap())
	}}
}

// newRecorder builds the engine's flight recorder. Bundles open with the CPU
// profile (so the state snapshots that follow observe the incident a second
// further developed), then freeze the pinned traces — the errors, sheds, and
// slow-tail outliers the tiered ring protected — next to the admission
// controller's model, a full metrics dump, the engine stats, and the
// resolved configuration.
func newRecorder(e *Engine) (*obs.Recorder, error) {
	cfg := e.cfg.Bundles
	collectors := obs.ProfileCollectors(cfg.CPUProfile)
	collectors = append(collectors,
		jsonCollector("traces.json", func() any {
			pinned := e.tel.traces.Pinned()
			views := make([]traceView, len(pinned))
			for i, tr := range pinned {
				views[i] = traceViewOf(tr)
			}
			return views
		}),
		jsonCollector("admission.json", func() any {
			out := struct {
				Snapshot admission.Snapshot `json:"snapshot"`
				Tick     *admission.Tick    `json:"tick,omitempty"`
			}{Snapshot: e.AdmissionSample(), Tick: e.admTick.Load()}
			return out
		}),
		jsonCollector("stats.json", func() any { return e.Stats() }),
		jsonCollector("config.json", func() any { return e.resolvedConfig() }),
		obs.Collector{Name: "metrics.prom", Collect: func(_ context.Context, w *os.File) error {
			return e.tel.registry.WriteOpenMetrics(w)
		}},
	)
	return obs.NewRecorder(obs.RecorderConfig{
		Dir: cfg.Dir, MaxBundles: cfg.MaxBundles, Debounce: cfg.Debounce,
	}, collectors...)
}

// resolvedConfig is the bundle's view of the engine configuration: every
// operative knob, none of the unmarshalable plumbing (logger).
func (e *Engine) resolvedConfig() any {
	return struct {
		Workers     int              `json:"workers"`
		WorkersMin  int              `json:"workersMin"`
		WorkersMax  int              `json:"workersMax"`
		QueueSize   int              `json:"queueSize"`
		CacheSize   int              `json:"cacheSize"`
		TraceBuffer int              `json:"traceBuffer"`
		TraceSample float64          `json:"traceSample"`
		Admission   admission.Config `json:"admission"`
		SLO         slo.Config       `json:"slo"`
		BundleDir   string           `json:"bundleDir"`
		MaxBundles  int              `json:"maxBundles"`
	}{
		Workers: e.cfg.Workers, WorkersMin: e.cfg.WorkersMin, WorkersMax: e.cfg.WorkersMax,
		QueueSize: e.cfg.QueueSize, CacheSize: e.cfg.CacheSize,
		TraceBuffer: e.cfg.TraceBuffer, TraceSample: e.cfg.TraceSample,
		Admission: e.cfg.Admission, SLO: e.cfg.SLO,
		BundleDir: e.cfg.Bundles.Dir, MaxBundles: e.cfg.Bundles.MaxBundles,
	}
}

// triggerBundle asks the flight recorder for a capture; a nil recorder
// (bundles disabled) makes every trigger a no-op. The capture itself runs
// asynchronously, so SLO callbacks and panic paths return immediately.
func (e *Engine) triggerBundle(trigger, reason string, manual bool) (string, bool) {
	if e.recorder == nil {
		return "", false
	}
	id, started := e.recorder.Trigger(trigger, reason, manual)
	if started {
		e.tel.log.Warn("flight recorder capture", "bundle", id, "trigger", trigger, "reason", reason)
	}
	return id, started
}
