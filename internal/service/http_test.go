package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"atomique/internal/compiler"
	"atomique/internal/hardware"
)

func newTestServer(t *testing.T, cfg Config) (*Engine, *httptest.Server) {
	t.Helper()
	e := New(cfg)
	srv := httptest.NewServer(e.Handler())
	t.Cleanup(func() {
		srv.Close()
		e.Close()
	})
	return e, srv
}

func postJSON(t *testing.T, url string, body interface{}) (*http.Response, []byte) {
	t.Helper()
	js, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func getJSON(t *testing.T, url string, v interface{}) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

const ghzQASM = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
`

func TestHTTPCompileQASM(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})
	resp, body := postJSON(t, srv.URL+"/v1/compile", Request{QASM: ghzQASM, Seed: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var j Job
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatal(err)
	}
	if j.State != StateDone || len(j.Result) == 0 {
		t.Fatalf("job = %+v", j)
	}
	var env struct {
		CircuitHash string `json:"circuitHash"`
		Metrics     struct {
			Arch    string `json:"arch"`
			NQubits int    `json:"nQubits"`
			N2Q     int    `json:"n2Q"`
		} `json:"metrics"`
		FidelityTotal float64 `json:"fidelityTotal"`
	}
	if err := json.Unmarshal(j.Result, &env); err != nil {
		t.Fatal(err)
	}
	if env.Metrics.Arch != "Atomique" || env.Metrics.NQubits != 4 || env.Metrics.N2Q != 3 {
		t.Errorf("envelope metrics = %+v", env.Metrics)
	}
	if env.FidelityTotal <= 0 || env.FidelityTotal > 1 {
		t.Errorf("fidelityTotal = %v", env.FidelityTotal)
	}
	if env.CircuitHash != j.CircuitHash {
		t.Errorf("envelope hash %q != job hash %q", env.CircuitHash, j.CircuitHash)
	}
}

func TestHTTPCompileNamedBenchmark(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})
	resp, body := postJSON(t, srv.URL+"/v1/compile", Request{Benchmark: "h2-4", Seed: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var j Job
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatal(err)
	}
	if j.Benchmark != "H2-4" { // lookup is case-insensitive, name canonical
		t.Errorf("benchmark = %q, want H2-4", j.Benchmark)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})

	// Malformed QASM: 400 with the offending line number.
	resp, body := postJSON(t, srv.URL+"/v1/compile", Request{QASM: "OPENQASM 2.0;\nqreg q[2];\nbogus q[0];"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (body %s)", resp.StatusCode, body)
	}
	var eb struct {
		Error string `json:"error"`
		Line  int    `json:"line"`
	}
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Line != 3 || !strings.Contains(eb.Error, "bogus") {
		t.Errorf("error body = %+v, want line 3 mentioning the gate", eb)
	}

	// Unknown benchmark: 400.
	resp, _ = postJSON(t, srv.URL+"/v1/compile", Request{Benchmark: "nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown benchmark status = %d, want 400", resp.StatusCode)
	}

	// Unknown fields: 400 (catches client typos like "benchmrk").
	resp2, err := http.Post(srv.URL+"/v1/compile", "application/json", strings.NewReader(`{"benchmrk":"H2-4"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field status = %d, want 400", resp2.StatusCode)
	}

	// Unknown job: 404.
	if resp := getJSON(t, srv.URL+"/v1/jobs/job-424242", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", resp.StatusCode)
	}
}

// TestHTTPBatchConcurrencyAndCache is the service acceptance scenario: one
// batch of 10 requests (8 distinct + 2 duplicates) compiles concurrently;
// duplicates coalesce into cache hits; an identical repeat of the full batch
// is all hits and returns byte-identical result JSON, verified via /v1/stats.
func TestHTTPBatchConcurrencyAndCache(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 4})

	reqs := make([]Request, 0, 10)
	for seed := int64(1); seed <= 8; seed++ {
		reqs = append(reqs, Request{Benchmark: "H2-4", Seed: seed})
	}
	reqs = append(reqs, Request{Benchmark: "H2-4", Seed: 1}, Request{Benchmark: "H2-4", Seed: 2})

	resp, body := postJSON(t, srv.URL+"/v1/compile/batch", batchRequest{Requests: reqs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var br batchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Jobs) != len(reqs) {
		t.Fatalf("jobs = %d, want %d", len(br.Jobs), len(reqs))
	}
	for i, j := range br.Jobs {
		if j.State != StateDone {
			t.Fatalf("job %d state = %s (%s)", i, j.State, j.Error)
		}
	}
	// Duplicates must be byte-identical to their originals, modulo the
	// request-scoped trace splice.
	if !bytes.Equal(stripTrace(t, br.Jobs[8].Result), stripTrace(t, br.Jobs[0].Result)) ||
		!bytes.Equal(stripTrace(t, br.Jobs[9].Result), stripTrace(t, br.Jobs[1].Result)) {
		t.Error("duplicate requests returned different result bytes")
	}

	var st Stats
	getJSON(t, srv.URL+"/v1/stats", &st)
	if st.CacheMisses != 8 {
		t.Errorf("misses = %d, want 8", st.CacheMisses)
	}
	if st.CacheHits != 2 {
		t.Errorf("hits = %d, want 2", st.CacheHits)
	}

	// Re-send the identical batch: no new compilations, identical bytes.
	resp, body = postJSON(t, srv.URL+"/v1/compile/batch", batchRequest{Requests: reqs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status = %d", resp.StatusCode)
	}
	var br2 batchResponse
	if err := json.Unmarshal(body, &br2); err != nil {
		t.Fatal(err)
	}
	for i := range br2.Jobs {
		if !br2.Jobs[i].Cached {
			t.Errorf("repeat job %d not served from cache", i)
		}
		if !bytes.Equal(stripTrace(t, br2.Jobs[i].Result), stripTrace(t, br.Jobs[i].Result)) {
			t.Errorf("repeat job %d result bytes differ", i)
		}
	}
	getJSON(t, srv.URL+"/v1/stats", &st)
	if st.CacheMisses != 8 {
		t.Errorf("misses after repeat = %d, want 8 (no recompilation)", st.CacheMisses)
	}
	if st.CacheHits != 12 {
		t.Errorf("hits after repeat = %d, want 12", st.CacheHits)
	}
}

func TestHTTPAsyncJobLifecycleAndCancel(t *testing.T) {
	backend := newBlockingBackend()
	e := newEngine(Config{Workers: 1, QueueSize: 4}, backend.compile)
	srv := httptest.NewServer(e.Handler())
	defer func() {
		srv.Close()
		e.Close()
	}()

	resp, body := postJSON(t, srv.URL+"/v1/compile?async=1", Request{Benchmark: "H2-4", Seed: 1})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var j Job
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatal(err)
	}
	<-backend.started

	// Cancel it over HTTP.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+j.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d", dresp.StatusCode)
	}
	final := waitState(t, e, j.ID, StateCancelled)
	if final.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", final.State)
	}
	var got Job
	getJSON(t, srv.URL+"/v1/jobs/"+j.ID, &got)
	if got.State != StateCancelled {
		t.Errorf("GET job state = %s, want cancelled", got.State)
	}
	// Cancelling again conflicts.
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+j.ID, nil)
	dresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusConflict {
		t.Errorf("re-cancel status = %d, want 409", dresp.StatusCode)
	}
}

func TestHTTPBackpressure429(t *testing.T) {
	backend := newBlockingBackend()
	e := newEngine(Config{Workers: 1, QueueSize: 1}, backend.compile)
	srv := httptest.NewServer(e.Handler())
	defer func() {
		srv.Close()
		e.Close()
	}()

	// Occupy the worker, then the queue slot.
	postJSON(t, srv.URL+"/v1/compile?async=1", Request{Benchmark: "H2-4", Seed: 1})
	<-backend.started
	postJSON(t, srv.URL+"/v1/compile?async=1", Request{Benchmark: "H2-4", Seed: 2})

	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, body := postJSON(t, srv.URL+"/v1/compile?async=1", Request{Benchmark: "H2-4", Seed: 3})
		if resp.StatusCode == http.StatusTooManyRequests {
			var eb errorBody
			if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
				t.Errorf("429 body = %s", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saw 429, last status %d", resp.StatusCode)
		}
	}
	var st Stats
	getJSON(t, srv.URL+"/v1/stats", &st)
	if st.Rejected == 0 {
		t.Error("stats rejected = 0, want > 0")
	}
	close(backend.release)
}

func TestHTTPInfoEndpoints(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})

	var health map[string]string
	if resp := getJSON(t, srv.URL+"/v1/healthz", &health); resp.StatusCode != http.StatusOK || health["status"] != "ok" {
		t.Errorf("healthz = %v", health)
	}

	var infos []benchmarkInfo
	getJSON(t, srv.URL+"/v1/benchmarks", &infos)
	if len(infos) < 17 {
		t.Fatalf("benchmarks = %d, want >= 17 (Table II)", len(infos))
	}
	found := false
	for _, b := range infos {
		if b.Name == "QAOA-regu5-40" && b.NQubits == 40 && b.N2Q > 0 {
			found = true
		}
	}
	if !found {
		t.Error("QAOA-regu5-40 missing or malformed in /v1/benchmarks")
	}

	var st Stats
	if resp := getJSON(t, srv.URL+"/v1/stats", &st); resp.StatusCode != http.StatusOK {
		t.Errorf("stats status = %d", resp.StatusCode)
	}
	if st.Workers != 1 || st.QueueCapacity != 64 {
		t.Errorf("stats = %+v", st)
	}
}

// TestHTTPBackendsEndpoint covers GET /v1/backends: every built-in backend
// is listed with capabilities, and exactly one is marked default.
func TestHTTPBackendsEndpoint(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})

	var infos []backendInfo
	if resp := getJSON(t, srv.URL+"/v1/backends", &infos); resp.StatusCode != http.StatusOK {
		t.Fatalf("backends status = %d", resp.StatusCode)
	}
	want := map[string]bool{"atomique": false, "geyser": false, "qpilot": false, "sabre": false, "solverref": false, "zoned": false}
	defaults := 0
	for _, b := range infos {
		if _, ok := want[b.Name]; ok {
			want[b.Name] = true
		}
		if b.Default {
			defaults++
			if b.Name != DefaultBackend {
				t.Errorf("default backend = %q, want %q", b.Name, DefaultBackend)
			}
		}
		if b.Capabilities.Description == "" {
			t.Errorf("backend %q has no description", b.Name)
		}
		if !b.Capabilities.FPQA && !b.Capabilities.Coupling && !b.Capabilities.Zoned {
			t.Errorf("backend %q advertises no target kind", b.Name)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("backend %q missing from /v1/backends", name)
		}
	}
	if defaults != 1 {
		t.Errorf("%d backends marked default, want 1", defaults)
	}
}

// TestHTTPBackendSelection exercises the backend request field end to end:
// a known non-default backend compiles and stamps the envelope, an unknown
// name is a structured 400 (not a 500), and mismatched device options 400.
func TestHTTPBackendSelection(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})

	resp, body := postJSON(t, srv.URL+"/v1/compile", Request{QASM: ghzQASM, Backend: "qpilot", Seed: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("qpilot status = %d, body %s", resp.StatusCode, body)
	}
	var j Job
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatal(err)
	}
	if j.Backend != "qpilot" {
		t.Errorf("job backend = %q, want qpilot", j.Backend)
	}
	var env struct {
		Backend string `json:"backend"`
		Metrics struct {
			Arch string `json:"arch"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(j.Result, &env); err != nil {
		t.Fatal(err)
	}
	if env.Backend != "qpilot" || env.Metrics.Arch != "Q-Pilot" {
		t.Errorf("envelope = %+v, want qpilot/Q-Pilot", env)
	}

	// The sabre backend with an explicit family works through the registry.
	resp, body = postJSON(t, srv.URL+"/v1/compile", Request{QASM: ghzQASM, Backend: "sabre", Family: "triangular"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sabre status = %d, body %s", resp.StatusCode, body)
	}

	// Unknown backend: structured 400 naming the discovery endpoint.
	resp, body = postJSON(t, srv.URL+"/v1/compile", Request{QASM: ghzQASM, Backend: "zap"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown backend status = %d, want 400 (body %s)", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("unknown-backend body not structured JSON: %s", body)
	}
	if !strings.Contains(eb.Error, "zap") || !strings.Contains(eb.Error, "/v1/backends") {
		t.Errorf("error = %q, want backend name and discovery hint", eb.Error)
	}

	// Device options that do not match the backend's target kind: 400.
	if resp, _ := postJSON(t, srv.URL+"/v1/compile", Request{QASM: ghzQASM, Backend: "sabre", SLM: 8}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("sabre+slm status = %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, srv.URL+"/v1/compile", Request{QASM: ghzQASM, Backend: "atomique", Family: "triangular"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("atomique+family status = %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, srv.URL+"/v1/compile", Request{QASM: ghzQASM, Backend: "sabre", Family: "hexagonal"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad family status = %d, want 400", resp.StatusCode)
	}
}

// TestHTTPZonedBackend exercises the zoned backend end to end: the auto
// target compiles, a zone-geometry override threads through, and mismatched
// requests are structured 400s (including options outside the backend's
// declared capabilities).
func TestHTTPZonedBackend(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})

	resp, body := postJSON(t, srv.URL+"/v1/compile", Request{QASM: ghzQASM, Backend: "zoned", Seed: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("zoned status = %d, body %s", resp.StatusCode, body)
	}
	var j Job
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatal(err)
	}
	var env struct {
		Backend string `json:"backend"`
		Metrics struct {
			Arch       string `json:"arch"`
			MoveStages int    `json:"moveStages"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(j.Result, &env); err != nil {
		t.Fatal(err)
	}
	if env.Backend != "zoned" || env.Metrics.Arch != "Zoned-FPQA" {
		t.Errorf("envelope = %+v, want zoned/Zoned-FPQA", env)
	}
	if env.Metrics.MoveStages == 0 {
		t.Error("zoned compile reported no shuttle stages")
	}

	// Zone-geometry override threads through (and alters the cache key: a
	// one-gate-site machine serialises the rounds).
	zones := compiler.ZonedSpec{Geometry: hardware.ZonesFor(4)}
	zones.Geometry.EntangleSites = 1
	resp, body = postJSON(t, srv.URL+"/v1/compile", Request{QASM: ghzQASM, Backend: "zoned", Zones: &zones})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("zoned+zones status = %d, body %s", resp.StatusCode, body)
	}

	// Mismatches: machine/family flags on zoned, zones on non-zoned, an
	// invalid geometry, an undersized storage zone, and an undeclared
	// option.
	for name, req := range map[string]Request{
		"zoned+slm":      {QASM: ghzQASM, Backend: "zoned", SLM: 8},
		"zoned+family":   {QASM: ghzQASM, Backend: "zoned", Family: "triangular"},
		"atomique+zones": {QASM: ghzQASM, Backend: "atomique", Zones: &compiler.ZonedSpec{Geometry: hardware.DefaultZones()}},
		"bad geometry":   {QASM: ghzQASM, Backend: "zoned", Zones: &compiler.ZonedSpec{Geometry: hardware.ZoneGeometry{StorageRows: -1}}},
		"tiny storage": {QASM: ghzQASM, Backend: "zoned", Zones: &compiler.ZonedSpec{
			Geometry: hardware.ZoneGeometry{StorageRows: 1, StorageCols: 2, EntangleSites: 1,
				ZoneGap: 60e-6, ShuttleSpeed: 0.55}}},
		"zoned+exact": {QASM: ghzQASM, Backend: "zoned", Exact: true},
	} {
		if resp, body := postJSON(t, srv.URL+"/v1/compile", req); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s status = %d, want 400 (body %s)", name, resp.StatusCode, body)
		}
	}
}

func TestStatsUptime(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()
	if st := e.Stats(); st.UptimeSeconds < 0 {
		t.Errorf("uptime = %v", st.UptimeSeconds)
	}
}
